package pmsnet

import (
	"fmt"
	"testing"
)

// TestWorkloadSmoke runs every registered generator family, at its schema
// defaults, through the two scheduler-exercising TDM modes. It is the
// `make workload-smoke` gate (run there under -race): a new family cannot
// land without surviving dynamic arbitration and hybrid preload planning
// end to end.
func TestWorkloadSmoke(t *testing.T) {
	configs := []struct {
		label string
		cfg   Config
	}{
		{"tdm-dynamic", Config{Switching: DynamicTDM, N: 16}},
		{"tdm-hybrid", Config{Switching: HybridTDM, N: 16, PreloadSlots: 1}},
	}
	for _, name := range WorkloadNames() {
		wl, err := GenerateWorkload(name, 16, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for _, c := range configs {
			t.Run(fmt.Sprintf("%s/%s", name, c.label), func(t *testing.T) {
				rep, err := Run(c.cfg, wl)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Messages == 0 {
					t.Fatal("run delivered no messages")
				}
				if rep.Efficiency <= 0 || rep.Efficiency > 1 {
					t.Fatalf("efficiency %.3f out of (0,1]", rep.Efficiency)
				}
				if rep.Workload != wl.Name() {
					t.Fatalf("report names workload %q, want %q", rep.Workload, wl.Name())
				}
			})
		}
	}
}
