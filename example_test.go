package pmsnet_test

import (
	"fmt"
	"time"

	"pmsnet"
)

// ExampleRun simulates a compiled-communication stencil exchange on the
// preloaded switch.
func ExampleRun() {
	workload := pmsnet.OrderedMesh(16, 64, 10)
	report, err := pmsnet.Run(pmsnet.Config{
		Switching: pmsnet.PreloadTDM,
		N:         16,
		K:         4,
	}, workload)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s delivered %d messages\n", report.Network, report.Messages)
	// Output:
	// tdm-preload/k=4 delivered 480 messages
}

// ExampleRun_comparison runs the same workload on two paradigms; the
// preloaded switch avoids every per-message arbitration the wormhole
// baseline pays.
func ExampleRun_comparison() {
	workload := pmsnet.OrderedMesh(16, 64, 10)
	wormhole, err := pmsnet.Run(pmsnet.Config{Switching: pmsnet.Wormhole, N: 16}, workload)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	preload, err := pmsnet.Run(pmsnet.Config{Switching: pmsnet.PreloadTDM, N: 16, K: 4}, workload)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("preload beats wormhole on the regular pattern: %v\n",
		preload.Efficiency > wormhole.Efficiency)
	// Output:
	// preload beats wormhole on the regular pattern: true
}

// ExampleAnalyzeWorkload recovers compiler knowledge from a raw trace.
func ExampleAnalyzeWorkload() {
	raw := pmsnet.TwoPhaseWorkload(16, 64, 2)
	_, phases, err := pmsnet.AnalyzeWorkload(raw)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("phases discovered: %d\n", phases)
	// Output:
	// phases discovered: 2
}

// ExampleConfig_hybrid runs partially predictable traffic with one
// preloaded slot and two dynamic slots (the paper's Figure-5 setup).
func ExampleConfig_hybrid() {
	workload := pmsnet.MixWorkload(16, 64, 10, 0.85, 150*time.Nanosecond, 7)
	report, err := pmsnet.Run(pmsnet.Config{
		Switching:       pmsnet.HybridTDM,
		N:               16,
		K:               3,
		PreloadSlots:    1,
		Eviction:        pmsnet.TimeoutEviction,
		EvictionTimeout: 250 * time.Nanosecond,
	}, workload)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("all %v messages delivered: %v\n", report.Messages, report.Messages == workload.Messages())
	// Output:
	// all 160 messages delivered: true
}
