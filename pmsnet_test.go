package pmsnet

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSwitchingStrings(t *testing.T) {
	names := map[Switching]string{
		Wormhole:         "wormhole",
		CircuitSwitching: "circuit",
		DynamicTDM:       "tdm-dynamic",
		PreloadTDM:       "tdm-preload",
		HybridTDM:        "tdm-hybrid",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if Switching(99).String() == "" {
		t.Error("unknown switching should render")
	}
}

func TestRunAllParadigms(t *testing.T) {
	wl := OrderedMesh(16, 64, 5)
	if wl.Processors() != 16 || wl.Messages() == 0 || wl.TotalBytes() == 0 {
		t.Fatal("workload accessors wrong")
	}
	for _, sw := range []Switching{Wormhole, CircuitSwitching, DynamicTDM, PreloadTDM} {
		rep, err := Run(Config{Switching: sw, N: 16, K: 4}, wl)
		if err != nil {
			t.Fatalf("%v: %v", sw, err)
		}
		if rep.Messages != wl.Messages() || rep.Bytes != wl.TotalBytes() {
			t.Fatalf("%v: conservation violated: %+v", sw, rep)
		}
		if rep.Efficiency <= 0 || rep.Efficiency > 1 {
			t.Fatalf("%v: efficiency %v out of range", sw, rep.Efficiency)
		}
		if rep.Makespan <= 0 || rep.LatencyMax < rep.LatencyP50 {
			t.Fatalf("%v: time fields inconsistent: %+v", sw, rep)
		}
	}
}

func TestRunHybrid(t *testing.T) {
	wl := MixWorkload(16, 64, 10, 0.8, 150*time.Nanosecond, 3)
	rep, err := Run(Config{
		Switching: HybridTDM, N: 16, K: 3, PreloadSlots: 1,
		Eviction: TimeoutEviction, EvictionTimeout: 250 * time.Nanosecond,
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sched.Preloads == 0 {
		t.Fatal("hybrid run should preload the static pattern")
	}
	if rep.Sched.Passes == 0 {
		t.Fatal("hybrid run should also schedule dynamically")
	}
}

func TestEvictionPolicies(t *testing.T) {
	wl := RandomMesh(8, 32, 5, 1)
	for _, ev := range []EvictionPolicy{ReleaseOnEmpty, TimeoutEviction, CounterEviction, NeverEvict} {
		rep, err := Run(Config{Switching: DynamicTDM, N: 8, K: 4, Eviction: ev}, wl)
		if err != nil {
			t.Fatalf("policy %d: %v", int(ev), err)
		}
		if rep.Messages != wl.Messages() {
			t.Fatalf("policy %d: lost messages", int(ev))
		}
	}
}

func TestFabricStringsAndParse(t *testing.T) {
	names := map[Fabric]string{
		FabricCrossbar: "crossbar",
		FabricOmega:    "omega",
		FabricClos:     "clos",
		FabricBenes:    "benes",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), want)
		}
		got, err := ParseFabric(want)
		if err != nil || got != f {
			t.Errorf("ParseFabric(%q) = %v, %v; want %v", want, got, err, f)
		}
	}
	if Fabric(99).String() == "" {
		t.Error("unknown fabric should render")
	}
	if _, err := ParseFabric("banyan"); err == nil ||
		!strings.Contains(err.Error(), "crossbar, omega, clos, benes") {
		t.Errorf("ParseFabric should list the vocabulary, got %v", err)
	}
	if got := strings.Join(FabricNames(), ","); got != "crossbar,omega,clos,benes" {
		t.Errorf("FabricNames() = %q", got)
	}
}

func TestSchedulerStringsAndParse(t *testing.T) {
	names := map[Scheduler]string{
		SchedulerPaper:     "paper",
		SchedulerISLIP:     "islip",
		SchedulerWavefront: "wavefront",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
		got, err := ParseScheduler(want)
		if err != nil || got != s {
			t.Errorf("ParseScheduler(%q) = %v, %v; want %v", want, got, err, s)
		}
	}
	if Scheduler(99).String() == "" {
		t.Error("unknown scheduler should render")
	}
	if _, err := ParseScheduler("pim"); err == nil ||
		!strings.Contains(err.Error(), "paper, islip, wavefront") {
		t.Errorf("ParseScheduler should list the vocabulary, got %v", err)
	}
	if got := strings.Join(SchedulerNames(), ","); got != "paper,islip,wavefront" {
		t.Errorf("SchedulerNames() = %q", got)
	}
}

func TestSchedulerConfigValidation(t *testing.T) {
	wl := ScatterWorkload(8, 64)
	var cerr *ConfigError
	if _, err := Run(Config{Switching: DynamicTDM, N: 8, Scheduler: Scheduler(9)}, wl); !errors.As(err, &cerr) {
		t.Errorf("unknown scheduler: got %v, want a *ConfigError", err)
	}
	if _, err := Run(Config{Switching: DynamicTDM, N: 8, SchedShards: -1}, wl); !errors.As(err, &cerr) {
		t.Errorf("negative SchedShards: got %v, want a *ConfigError", err)
	}
	// Sharding and warm starting are paper-scheduler features; asking for
	// them under other schedulers or shard-less fabrics is rejected rather
	// than silently ignored.
	if _, err := Run(Config{Switching: DynamicTDM, N: 8,
		Scheduler: SchedulerISLIP, SchedShards: 4, Fabric: FabricClos}, wl); !errors.As(err, &cerr) {
		t.Errorf("shards + islip: got %v, want a *ConfigError", err)
	} else if cerr.Field != "SchedShards" {
		t.Errorf("shards + islip: field %q, want SchedShards", cerr.Field)
	}
	if _, err := Run(Config{Switching: DynamicTDM, N: 8, SchedShards: 4}, wl); !errors.As(err, &cerr) {
		t.Errorf("shards + crossbar: got %v, want a *ConfigError", err)
	} else if cerr.Field != "SchedShards" {
		t.Errorf("shards + crossbar: field %q, want SchedShards", cerr.Field)
	}
	if _, err := Run(Config{Switching: DynamicTDM, N: 8,
		Scheduler: SchedulerWavefront, SchedWarmStart: true}, wl); !errors.As(err, &cerr) {
		t.Errorf("warm + wavefront: got %v, want a *ConfigError", err)
	} else if cerr.Field != "SchedWarmStart" {
		t.Errorf("warm + wavefront: field %q, want SchedWarmStart", cerr.Field)
	}
	// The supported combinations still validate.
	if err := (Config{Switching: DynamicTDM, N: 8, SchedShards: 4, Fabric: FabricClos}).Validate(); err != nil {
		t.Errorf("shards + clos: %v", err)
	}
	if err := (Config{Switching: DynamicTDM, N: 8, SchedWarmStart: true}).Validate(); err != nil {
		t.Errorf("warm + paper + crossbar: %v", err)
	}
	if err := (Config{Switching: DynamicTDM, N: 8, SchedShards: 1}).Validate(); err != nil {
		t.Errorf("SchedShards=1 (serial) must stay valid on any fabric: %v", err)
	}
}

func TestRunSchedulerAlgorithms(t *testing.T) {
	// End-to-end dynamic TDM through the facade under every matching
	// algorithm. The alternatives deliver the full workload too; only the
	// paper algorithm keeps the undecorated network name.
	wl := RandomMesh(16, 64, 6, 2)
	for _, s := range []Scheduler{SchedulerPaper, SchedulerISLIP, SchedulerWavefront} {
		rep, err := Run(Config{Switching: DynamicTDM, N: 16, K: 4, Scheduler: s}, wl)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if rep.Messages != wl.Messages() || rep.Bytes != wl.TotalBytes() {
			t.Fatalf("%v: conservation violated: %+v", s, rep)
		}
		wantName := "tdm-dynamic/k=4"
		if s != SchedulerPaper {
			wantName += "/" + s.String()
		}
		if rep.Network != wantName {
			t.Fatalf("%v: network name %q, want %q", s, rep.Network, wantName)
		}
	}
}

func TestRunDynamicTDMAllFabrics(t *testing.T) {
	// End-to-end dynamic TDM through the facade on every fabric backend.
	// The rearrangeable fabrics (crossbar, clos, benes) realize any
	// crossbar configuration and must agree bit-for-bit; the blocking
	// Omega fabric spreads conflicting connections over extra slots.
	wl := OrderedMesh(16, 64, 5)
	reports := make(map[Fabric]Report)
	for _, f := range []Fabric{FabricCrossbar, FabricOmega, FabricClos, FabricBenes} {
		rep, err := Run(Config{Switching: DynamicTDM, N: 16, K: 4, Fabric: f}, wl)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if rep.Messages != wl.Messages() || rep.Bytes != wl.TotalBytes() {
			t.Fatalf("%v: conservation violated: %+v", f, rep)
		}
		wantName := "tdm-dynamic"
		if f != FabricCrossbar {
			wantName += "/k=4/" + f.String()
		} else {
			wantName += "/k=4"
		}
		if rep.Network != wantName {
			t.Fatalf("%v: network name %q, want %q", f, rep.Network, wantName)
		}
		reports[f] = rep
	}
	for _, f := range []Fabric{FabricClos, FabricBenes} {
		if reports[f] != recolor(reports[f], reports[FabricCrossbar]) {
			t.Fatalf("%v report diverges from crossbar: %+v vs %+v",
				f, reports[f], reports[FabricCrossbar])
		}
	}
}

// recolor returns b with a's Network name, so rearrangeable-fabric reports
// can be compared to the crossbar's apart from the label.
func recolor(a, b Report) Report {
	b.Network = a.Network
	return b
}

// TestPlannerStaticMatchesDefault pins the facade-level A/B contract: an
// explicit PlannerStatic is the zero value, so it must run the exact same
// simulation as a config that never mentions planners at all.
func TestPlannerStaticMatchesDefault(t *testing.T) {
	wl := TwoPhaseWorkload(16, 64, 3)
	def, err := Run(Config{Switching: PreloadTDM, N: 16, K: 4}, wl)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Run(Config{Switching: PreloadTDM, N: 16, K: 4, Planner: PlannerStatic}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if def != explicit {
		t.Fatalf("explicit PlannerStatic diverges from the default: %+v vs %+v", def, explicit)
	}
	if def.Plan != (PlanReport{}) {
		t.Fatalf("static preload path reported plan stats: %+v", def.Plan)
	}
}

// TestPlannerThroughFacade runs the optimizing planners end to end through
// the public API and checks the Report's Plan block is populated.
func TestPlannerThroughFacade(t *testing.T) {
	wl := TwoPhaseWorkload(16, 64, 3)
	for _, p := range []Planner{PlannerSolstice, PlannerBvN} {
		for _, cfg := range []Config{
			{Switching: PreloadTDM, N: 16, K: 4, Planner: p},
			{Switching: HybridTDM, N: 16, K: 4, PreloadSlots: 2, Planner: p},
		} {
			rep, err := Run(cfg, wl)
			if err != nil {
				t.Fatalf("%v/%v: %v", cfg.Switching, p, err)
			}
			if rep.Messages != wl.Messages() {
				t.Errorf("%v/%v: delivered %d of %d messages", cfg.Switching, p, rep.Messages, wl.Messages())
			}
			if rep.Plan.Planner != p.String() {
				t.Errorf("%v/%v: plan reports planner %q", cfg.Switching, p, rep.Plan.Planner)
			}
			if rep.Plan.Configs == 0 || rep.Plan.Groups == 0 || rep.Plan.DrainSlots == 0 {
				t.Errorf("%v/%v: plan stats empty: %+v", cfg.Switching, p, rep.Plan)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	wl := ScatterWorkload(8, 16)
	if _, err := Run(Config{Switching: Switching(42), N: 8}, wl); err == nil {
		t.Error("unknown paradigm should error")
	}
	if _, err := Run(Config{Switching: DynamicTDM, N: 8, Eviction: EvictionPolicy(42)}, wl); err == nil {
		t.Error("unknown eviction policy should error")
	}
	if _, err := Run(Config{Switching: Wormhole, N: 1}, wl); err == nil {
		t.Error("N=1 should error")
	}
	if _, err := Run(Config{Switching: Wormhole, N: 8}, nil); err == nil {
		t.Error("nil workload should error")
	}
	if _, err := Run(Config{Switching: DynamicTDM, N: 8, Fabric: Fabric(42)}, wl); err == nil {
		t.Error("unknown fabric should error")
	}
	if _, err := Run(Config{Switching: DynamicTDM, N: 8, Planner: PlannerSolstice}, wl); err == nil {
		t.Error("planner on a reactive paradigm should error")
	}
	if _, err := Run(Config{Switching: DynamicTDM, N: 12, Fabric: FabricOmega}, ScatterWorkload(12, 16)); err == nil {
		t.Error("omega fabric with non-power-of-two N should error")
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	wl := TwoPhaseWorkload(8, 32, 5)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, wl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PMSTRACE v1") {
		t.Fatal("trace header missing")
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Messages() != wl.Messages() || got.TotalBytes() != wl.TotalBytes() {
		t.Fatal("trace round trip lost data")
	}
	if err := WriteTrace(&buf, nil); err == nil {
		t.Fatal("nil workload should error")
	}
}

func TestFacadeAndInternalAgree(t *testing.T) {
	// The facade must produce the same simulation as the internal packages:
	// same efficiency for the same configuration and workload.
	wl := ScatterWorkload(16, 64)
	a, err := Run(Config{Switching: PreloadTDM, N: 16, K: 4}, wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Switching: PreloadTDM, N: 16, K: 4}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Efficiency != b.Efficiency || a.Makespan != b.Makespan {
		t.Fatal("facade runs must be deterministic")
	}
}

func TestMarkovPrefetchPolicy(t *testing.T) {
	wl := OrderedMesh(8, 32, 5)
	rep, err := Run(Config{Switching: DynamicTDM, N: 8, K: 4, Eviction: MarkovPrefetch}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != wl.Messages() {
		t.Fatal("lost messages under markov policy")
	}
}

func TestAmplifyBytesEngages(t *testing.T) {
	wl := HotspotWorkload(16, 64, 10, 2048, 20, 1)
	rep, err := Run(Config{Switching: DynamicTDM, N: 16, K: 4,
		Eviction: TimeoutEviction, AmplifyBytes: 256}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != wl.Messages() {
		t.Fatal("lost messages with amplification")
	}
}

func TestAnalyzeWorkloadFacade(t *testing.T) {
	raw := TwoPhaseWorkload(16, 64, 2)
	annotated, phases, err := AnalyzeWorkload(raw)
	if err != nil {
		t.Fatal(err)
	}
	if phases != 2 {
		t.Fatalf("phases = %d, want 2", phases)
	}
	// The analyzed workload must run under preload (coverage satisfied).
	rep, err := Run(Config{Switching: PreloadTDM, N: 16, K: 4}, annotated)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != raw.Messages() {
		t.Fatal("analyzed workload lost messages")
	}
	if _, _, err := AnalyzeWorkload(nil); err == nil {
		t.Fatal("nil workload should error")
	}
}

func TestVOQFacade(t *testing.T) {
	wl := RandomMesh(8, 64, 5, 1)
	rep, err := Run(Config{Switching: VOQISLIP, N: 8}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Network != "voq-islip" || rep.Messages != wl.Messages() {
		t.Fatalf("report = %+v", rep)
	}
	if VOQISLIP.String() != "voq-islip" {
		t.Fatal("string wrong")
	}
}

func TestMeshFacade(t *testing.T) {
	wl := OrderedMesh(16, 64, 3)
	for _, sw := range []Switching{MeshWormhole, MeshTDM} {
		rep, err := Run(Config{Switching: sw, N: 16, K: 4}, wl)
		if err != nil {
			t.Fatalf("%v: %v", sw, err)
		}
		if rep.Messages != wl.Messages() {
			t.Fatalf("%v: lost messages", sw)
		}
	}
	if MeshWormhole.String() != "mesh-wormhole" || MeshTDM.String() != "mesh-tdm" {
		t.Fatal("strings wrong")
	}
}

func TestConcatWorkloadsFacade(t *testing.T) {
	phased := ConcatWorkloads("phased", AllToAll(16, 32), OrderedMesh(16, 32, 2))
	rep, err := Run(Config{Switching: PreloadTDM, N: 16, K: 4}, phased)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Messages != phased.Messages() {
		t.Fatal("lost messages")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil input")
		}
	}()
	ConcatWorkloads("bad", nil)
}

func TestRunManyMatchesRunAndIsOrderIdentical(t *testing.T) {
	cfg := Config{Switching: DynamicTDM, N: 16, K: 4}
	var wls []*Workload
	for seed := int64(1); seed <= 4; seed++ {
		wls = append(wls, RandomMesh(16, 64, 5, seed))
	}
	var want []Report
	for _, wl := range wls {
		rep, err := Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rep)
	}
	for _, par := range []int{0, 1, 3} {
		cfg.Parallelism = par
		got, err := RunMany(cfg, wls)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parallelism %d: %d reports, want %d", par, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d: report %d differs from serial Run", par, i)
			}
		}
	}
}

func TestRunManyRejectsNilWorkload(t *testing.T) {
	cfg := Config{Switching: Wormhole, N: 8}
	if _, err := RunMany(cfg, []*Workload{OrderedMesh(8, 64, 1), nil}); err == nil {
		t.Fatal("expected error for nil workload")
	}
}
