// Package pmsnet is a cycle-accurate simulation library for predictive
// multiplexed switching in multiprocessor interconnection networks,
// reproducing "Switch Design to Enable Predictive Multiplexed Switching in
// Multiprocessor Networks" (Ding et al., IPPS 2005).
//
// The library models a 128-processor system (any N) connected by a single
// central crossbar and a hardware connection scheduler. The switching
// paradigms are implemented on a shared discrete-event engine with the
// paper's timing constants (6.4 Gb/s serial links, 30/20/30 ns serdes and
// wire delays, 10 ns NIC operations, 80 ns scheduler passes at 128 ports,
// 100 ns TDM slots):
//
//   - Wormhole routing (input-queued digital crossbar, 128-byte worms)
//   - Circuit switching (per-message end-to-end circuits)
//   - Dynamic TDM (the paper's switch, scheduled reactively, with pluggable
//     connection-eviction predictors)
//   - Preload TDM (compiled communication: static phases decomposed into
//     conflict-free configurations and preloaded)
//   - Hybrid TDM (k preloaded slots + K−k dynamic slots)
//   - VOQ/iSLIP cell switch (extra baseline beyond the paper)
//   - Multi-hop mesh variants (per-hop wormhole vs end-to-end TDM circuits)
//
// Quick start:
//
//	wl := pmsnet.OrderedMesh(128, 64, 10)
//	rep, err := pmsnet.Run(pmsnet.Config{Switching: pmsnet.PreloadTDM, N: 128, K: 4}, wl)
//	if err != nil { ... }
//	fmt.Printf("efficiency %.3f\n", rep.Efficiency)
//
// The experiment harnesses that regenerate every table and figure of the
// paper live in internal/experiments; `go test -bench .` and cmd/figures
// print them.
package pmsnet

import (
	"fmt"
	"io"
	"strings"
	"time"

	"pmsnet/internal/circuit"
	"pmsnet/internal/compiler"
	"pmsnet/internal/core"
	"pmsnet/internal/fabric"
	"pmsnet/internal/fault"
	"pmsnet/internal/meshnet"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/plan"
	"pmsnet/internal/predictor"
	"pmsnet/internal/runner"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/trace"
	"pmsnet/internal/traffic"
	"pmsnet/internal/voq"
	"pmsnet/internal/wormhole"
)

// Switching selects a network model.
type Switching int

// Switching paradigms.
const (
	// Wormhole is the wormhole-routing baseline.
	Wormhole Switching = iota
	// CircuitSwitching is the per-message circuit baseline.
	CircuitSwitching
	// DynamicTDM is the predictive multiplexed switch with reactive
	// scheduling.
	DynamicTDM
	// PreloadTDM is the predictive multiplexed switch with compiled
	// (preloaded) configurations.
	PreloadTDM
	// HybridTDM splits the slots between preloaded and dynamic use.
	HybridTDM
	// VOQISLIP is an input-queued cell switch with virtual output queues
	// and iSLIP arbitration — a baseline beyond the paper's evaluation (the
	// design that became standard for crossbar routers).
	VOQISLIP
	// MeshWormhole is a multi-hop 2-D router mesh with XY routing and
	// per-hop (virtual cut-through) wormhole switching.
	MeshWormhole
	// MeshTDM is the multi-hop predictive multiplexed network: end-to-end
	// TDM circuits over XY paths through analog LVDS switches.
	MeshTDM
)

// String implements fmt.Stringer.
func (s Switching) String() string {
	switch s {
	case Wormhole:
		return "wormhole"
	case CircuitSwitching:
		return "circuit"
	case DynamicTDM:
		return "tdm-dynamic"
	case PreloadTDM:
		return "tdm-preload"
	case HybridTDM:
		return "tdm-hybrid"
	case VOQISLIP:
		return "voq-islip"
	case MeshWormhole:
		return "mesh-wormhole"
	case MeshTDM:
		return "mesh-tdm"
	default:
		return fmt.Sprintf("Switching(%d)", int(s))
	}
}

// switchingValues lists every valid paradigm, in flag-name order.
var switchingValues = []Switching{
	Wormhole, CircuitSwitching, DynamicTDM, PreloadTDM, HybridTDM,
	VOQISLIP, MeshWormhole, MeshTDM,
}

// SwitchingNames returns the canonical names accepted by ParseSwitching, in
// a stable order — the vocabulary of the cmd/pmsim -net flag.
func SwitchingNames() []string {
	out := make([]string, len(switchingValues))
	for i, v := range switchingValues {
		out[i] = v.String()
	}
	return out
}

// ParseSwitching is the inverse of Switching.String: it maps a canonical
// paradigm name ("wormhole", "tdm-dynamic", ...) back to its value. Unknown
// names produce an error listing every valid name.
func ParseSwitching(name string) (Switching, error) {
	for _, v := range switchingValues {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("pmsnet: unknown switching paradigm %q (valid: %s)",
		name, strings.Join(SwitchingNames(), ", "))
}

// EvictionPolicy selects the connection-eviction predictor for the TDM
// modes (paper §3.2).
type EvictionPolicy int

// Eviction policies.
const (
	// ReleaseOnEmpty releases a connection as soon as its request drops
	// (no latching).
	ReleaseOnEmpty EvictionPolicy = iota
	// TimeoutEviction latches connections and evicts after
	// Config.EvictionTimeout of disuse — the paper's experimental setup.
	TimeoutEviction
	// CounterEviction evicts after Config.EvictionThreshold uses of other
	// connections while this one is idle.
	CounterEviction
	// NeverEvict keeps connections until an explicit flush.
	NeverEvict
	// MarkovPrefetch combines timeout eviction with a first-order
	// destination predictor that pre-establishes the learned next
	// connection of each source before its request arrives.
	MarkovPrefetch
)

// String implements fmt.Stringer with the cmd/pmsim -eviction vocabulary.
func (p EvictionPolicy) String() string {
	switch p {
	case ReleaseOnEmpty:
		return "reactive"
	case TimeoutEviction:
		return "timeout"
	case CounterEviction:
		return "counter"
	case NeverEvict:
		return "never"
	case MarkovPrefetch:
		return "markov"
	default:
		return fmt.Sprintf("EvictionPolicy(%d)", int(p))
	}
}

// evictionValues lists every valid policy, in flag-name order.
var evictionValues = []EvictionPolicy{
	ReleaseOnEmpty, TimeoutEviction, CounterEviction, NeverEvict, MarkovPrefetch,
}

// EvictionNames returns the canonical names accepted by ParseEviction, in a
// stable order — the vocabulary of the cmd/pmsim -eviction flag.
func EvictionNames() []string {
	out := make([]string, len(evictionValues))
	for i, v := range evictionValues {
		out[i] = v.String()
	}
	return out
}

// ParseEviction is the inverse of EvictionPolicy.String: it maps a canonical
// policy name ("reactive", "timeout", ...) back to its value. Unknown names
// produce an error listing every valid name.
func ParseEviction(name string) (EvictionPolicy, error) {
	for _, v := range evictionValues {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("pmsnet: unknown eviction policy %q (valid: %s)",
		name, strings.Join(EvictionNames(), ", "))
}

// Fabric selects the switching-fabric backend for the TDM modes. The
// baselines model their own data paths and ignore it.
type Fabric int

// Fabric backends.
const (
	// FabricCrossbar is the paper's baseline single-stage crosspoint fabric,
	// where every partial permutation is realizable.
	FabricCrossbar Fabric = iota
	// FabricOmega is a blocking log2(N)-stage Omega network: the scheduler
	// only establishes connections that keep each slot Omega-realizable, and
	// the preload controller decomposes working sets under the same
	// constraint. N must be a power of two.
	FabricOmega
	// FabricClos is a three-stage Clos network in its canonical m = n
	// factoring — rearrangeably non-blocking, so every slot configuration
	// routes, at a fraction of the crossbar's crosspoint count.
	FabricClos
	// FabricBenes is the 2·log2(N)−1-stage Benes network, rearrangeably
	// non-blocking via the looping algorithm. N must be a power of two.
	FabricBenes
)

// String implements fmt.Stringer with the cmd/pmsim -fabric vocabulary.
func (f Fabric) String() string {
	switch f {
	case FabricCrossbar:
		return "crossbar"
	case FabricOmega:
		return "omega"
	case FabricClos:
		return "clos"
	case FabricBenes:
		return "benes"
	default:
		return fmt.Sprintf("Fabric(%d)", int(f))
	}
}

// fabricValues lists every valid fabric, in flag-name order.
var fabricValues = []Fabric{FabricCrossbar, FabricOmega, FabricClos, FabricBenes}

// FabricNames returns the canonical names accepted by ParseFabric, in a
// stable order — the vocabulary of the cmd/pmsim -fabric flag.
func FabricNames() []string {
	out := make([]string, len(fabricValues))
	for i, v := range fabricValues {
		out[i] = v.String()
	}
	return out
}

// ParseFabric is the inverse of Fabric.String: it maps a canonical fabric
// name ("crossbar", "omega", "clos", "benes") back to its value. Unknown
// names produce an error listing every valid name.
func ParseFabric(name string) (Fabric, error) {
	for _, v := range fabricValues {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("pmsnet: unknown fabric %q (valid: %s)",
		name, strings.Join(FabricNames(), ", "))
}

// fabricKinds maps the public Fabric vocabulary onto the internal backend
// kinds, indexed by Fabric value.
var fabricKinds = [...]fabric.Kind{
	FabricCrossbar: fabric.KindCrossbar,
	FabricOmega:    fabric.KindOmega,
	FabricClos:     fabric.KindClos,
	FabricBenes:    fabric.KindBenes,
}

// Scheduler selects the matching algorithm the TDM scheduler runs each pass.
// The baselines model their own arbitration and ignore it.
type Scheduler int

// Scheduling algorithms.
const (
	// SchedulerPaper is the paper-exact Tables 1–2 scheduling array (the
	// default): the change matrix L resolved by the N×N scheduling-logic
	// cells against the propagating port-availability signals.
	SchedulerPaper Scheduler = iota
	// SchedulerISLIP is iSLIP (McKeown 1999, the Tiny Tera scheduler):
	// iterative request–grant–accept matching with desynchronizing
	// round-robin pointers, ~log2(N) iterations per pass.
	SchedulerISLIP
	// SchedulerWavefront is wavefront matching (after Tamir & Chi's
	// symmetric crossbar arbiters): requests resolved along conflict-free
	// anti-diagonals swept in rotated order.
	SchedulerWavefront
)

// String implements fmt.Stringer with the cmd/pmsim -sched vocabulary.
func (s Scheduler) String() string {
	switch s {
	case SchedulerPaper:
		return "paper"
	case SchedulerISLIP:
		return "islip"
	case SchedulerWavefront:
		return "wavefront"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// schedulerValues lists every valid scheduler, in flag-name order.
var schedulerValues = []Scheduler{SchedulerPaper, SchedulerISLIP, SchedulerWavefront}

// SchedulerNames returns the canonical names accepted by ParseScheduler, in a
// stable order — the vocabulary of the cmd/pmsim -sched flag.
func SchedulerNames() []string {
	out := make([]string, len(schedulerValues))
	for i, v := range schedulerValues {
		out[i] = v.String()
	}
	return out
}

// ParseScheduler is the inverse of Scheduler.String: it maps a canonical
// algorithm name ("paper", "islip", "wavefront") back to its value. Unknown
// names produce an error listing every valid name.
func ParseScheduler(name string) (Scheduler, error) {
	for _, v := range schedulerValues {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("pmsnet: unknown scheduler %q (valid: %s)",
		name, strings.Join(SchedulerNames(), ", "))
}

// schedulerAlgs maps the public Scheduler vocabulary onto the internal
// algorithm values, indexed by Scheduler value.
var schedulerAlgs = [...]core.Algorithm{
	SchedulerPaper:     core.AlgPaper,
	SchedulerISLIP:     core.AlgISLIP,
	SchedulerWavefront: core.AlgWavefront,
}

// Planner selects the offline preload planner for PreloadTDM/HybridTDM: the
// algorithm that turns each static phase's per-connection demand into the
// configuration groups pinned into the preloaded slots. The reactive modes
// and the baselines have no preloads to plan and reject a non-default value.
type Planner int

// Preload planners.
const (
	// PlannerStatic is the hand-written decomposition (the default): each
	// phase's working set is edge-colored into conflict-free configurations
	// and chunked into groups in order, one slot register each. It is
	// demand-blind and bit-identical to the pre-planner behaviour.
	PlannerStatic Planner = iota
	// PlannerSolstice is the Solstice-style greedy hybrid planner: repeated
	// heaviest-edge-first matchings cover the demand, registers are shared
	// in proportion to per-configuration demand, reconfigurations are
	// charged at the control plane's delay, and connections too light to
	// pay for a pinned register spill to the dynamic slots (HybridTDM).
	PlannerSolstice
	// PlannerBvN is the Birkhoff–von-Neumann planner: the demand matrix is
	// decomposed exactly into weighted partial permutations, so the planned
	// slot budget per connection equals its demand — the natural input for
	// the schedule-slack eviction signal.
	PlannerBvN
)

// String implements fmt.Stringer with the cmd/pmsim -planner vocabulary.
func (p Planner) String() string {
	switch p {
	case PlannerStatic:
		return "static"
	case PlannerSolstice:
		return "solstice"
	case PlannerBvN:
		return "bvn"
	default:
		return fmt.Sprintf("Planner(%d)", int(p))
	}
}

// plannerValues lists every valid planner, in flag-name order.
var plannerValues = []Planner{PlannerStatic, PlannerSolstice, PlannerBvN}

// PlannerNames returns the canonical names accepted by ParsePlanner, in a
// stable order — the vocabulary of the cmd/pmsim -planner flag.
func PlannerNames() []string {
	out := make([]string, len(plannerValues))
	for i, v := range plannerValues {
		out[i] = v.String()
	}
	return out
}

// ParsePlanner is the inverse of Planner.String: it maps a canonical planner
// name ("static", "solstice", "bvn") back to its value. Unknown names produce
// an error listing every valid name.
func ParsePlanner(name string) (Planner, error) {
	for _, v := range plannerValues {
		if v.String() == name {
			return v, nil
		}
	}
	return 0, fmt.Errorf("pmsnet: unknown planner %q (valid: %s)",
		name, strings.Join(PlannerNames(), ", "))
}

// plannerKinds maps the public Planner vocabulary onto the internal planner
// kinds, indexed by Planner value.
var plannerKinds = [...]plan.Kind{
	PlannerStatic:   plan.KindStatic,
	PlannerSolstice: plan.KindSolstice,
	PlannerBvN:      plan.KindBvN,
}

// Config selects and parameterizes a network.
type Config struct {
	// Switching selects the paradigm.
	Switching Switching
	// N is the processor count (at least 2).
	N int
	// K is the TDM multiplexing degree; ignored by the baselines. Zero
	// defaults to 4, the paper's Figure-4 value.
	K int
	// PreloadSlots is the number of pinned slots for HybridTDM.
	PreloadSlots int
	// Eviction selects the predictor for DynamicTDM/HybridTDM.
	Eviction EvictionPolicy
	// EvictionTimeout is the timeout predictor's period; zero defaults to
	// 500 ns.
	EvictionTimeout time.Duration
	// EvictionThreshold is the counter predictor's threshold; zero defaults
	// to 8.
	EvictionThreshold uint64
	// AmplifyBytes enables bandwidth amplification for the TDM modes: a
	// connection whose queue holds more than this many bytes after a slot
	// transfer is granted an additional slot (extension 2 of the switch
	// design). Zero disables amplification.
	AmplifyBytes int
	// Fabric selects the switching-fabric backend for the TDM modes: the
	// baseline crossbar (the zero value), the blocking Omega network, or
	// the rearrangeably non-blocking Clos and Benes networks. The scheduler
	// and preload controller adapt to the fabric's blocking constraints
	// automatically; the baselines ignore the field.
	Fabric Fabric
	// Planner selects the offline preload planner for PreloadTDM and
	// HybridTDM: the default hand-written decomposition (the zero value,
	// bit-identical to the pre-planner behaviour), the Solstice-style greedy
	// hybrid planner, or the Birkhoff–von-Neumann optimizer. A non-default
	// planner on any other switching paradigm fails Validate — there are no
	// preloads to plan. Parse flag vocabulary with ParsePlanner.
	Planner Planner
	// Scheduler selects the matching algorithm for the TDM modes: the
	// paper-exact scheduling array (the zero value), iSLIP, or wavefront
	// matching. Only the paper algorithm is bit-pinned by the golden
	// reports; the alternatives are comparison baselines. The non-TDM
	// baselines ignore the field.
	Scheduler Scheduler
	// SchedShards caps the number of per-leaf scheduler shards for the TDM
	// modes: scheduling passes precompute change cells in parallel across
	// leaf-aligned port shards, then merge grants serially in priority
	// order, so results are bit-identical to unsharded scheduling (the
	// Report does not change; only wall-clock cost does, which is why the
	// field is excluded from Config.Hash). Zero disables sharding. Sharding
	// engages only on fabrics with a leaf seam (Clos, Omega, Benes) under
	// the paper scheduler.
	SchedShards int
	// SchedWarmStart enables warm-started incremental scheduling for the
	// TDM modes: the request matrix keeps a delta journal, and each
	// scheduling pass seeds itself from the previous pass's configuration
	// state, re-evaluating only the rows whose requests or connections
	// changed. Results are bit-identical to cold scheduling (the Report
	// does not change beyond the Sched.Warm* telemetry counters; only
	// wall-clock cost does, which is why the field is excluded from
	// Config.Hash). Warm starting engages only under the paper scheduler;
	// combining it with another Scheduler fails Validate.
	SchedWarmStart bool
	// Faults, when non-nil and active, injects faults per the plan: link
	// failures (MTBF/MTTR or scripted), corrupted payloads caught by the
	// receiving NIC's CRC, lost scheduler request/grant tokens and dead
	// crossbar crosspoints. Recovery is automatic (retries with exponential
	// backoff, rescheduling around dead hardware, preload fallback to
	// dynamic slots) and accounted in the Report's Faults block. A nil or
	// inactive plan leaves every run bit-identical to the fault-free
	// simulation. Build plans directly or with ParseFaults.
	Faults *fault.Plan
	// Parallelism is the worker count for the multi-run entry points
	// (RunMany): 0 defaults to GOMAXPROCS, 1 runs serially, larger values
	// bound the number of simulations in flight. A single Run ignores it —
	// each simulation is single-threaded by design so that runs stay
	// reproducible; parallelism comes from running independent simulations
	// concurrently, with results always in input order.
	Parallelism int
	// SchedCache controls the TDM scheduler's memoized-pass cache: passes
	// repeating a previously seen (scheduler state, request matrix) pair
	// replay the recorded grant set instead of re-running the scheduling
	// array. nil (the default) enables it. Results are bit-identical with
	// the cache on or off — only the Report's Sched.CacheHits/CacheMisses
	// counters and the wall-clock cost differ — so disabling it is only
	// useful for benchmarking the raw array or bisecting a suspected cache
	// defect. Ignored by the non-TDM baselines.
	SchedCache *bool
	// Probe, when non-nil, streams typed simulation events (slot, scheduler,
	// connection, message and fault lifecycle) to the probe's sinks during
	// the run. Probes are purely observational: the Report is bit-identical
	// with or without one. Sinks run synchronously on the simulation
	// goroutine and are not safe to share across concurrent runs, so RunMany
	// rejects a non-nil Probe. Build with NewProbe and the sink
	// constructors (NewCounterSink, NewTimelineSink, NewTraceWriter).
	Probe *Probe
}

// ConfigError reports a Config field that failed validation.
type ConfigError struct {
	// Field is the offending Config field name, e.g. "N" or "Eviction".
	Field string
	// Value is the rejected value; nil when the value adds nothing to the
	// message.
	Value any
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	if e.Value == nil {
		return fmt.Sprintf("pmsnet: invalid Config.%s: %s", e.Field, e.Reason)
	}
	return fmt.Sprintf("pmsnet: invalid Config.%s (%v): %s", e.Field, e.Value, e.Reason)
}

// Validate checks the configuration without building a network. Every
// violation is reported as a *ConfigError naming the offending field; nil
// means Run would accept the configuration (given a valid workload).
// Defaults are applied before checking, so zero values that have documented
// defaults (K, EvictionTimeout, ...) pass.
func (c Config) Validate() error {
	c = c.withDefaults()
	known := false
	for _, v := range switchingValues {
		if c.Switching == v {
			known = true
			break
		}
	}
	if !known {
		return &ConfigError{Field: "Switching", Value: int(c.Switching),
			Reason: fmt.Sprintf("unknown paradigm (valid: %s)", strings.Join(SwitchingNames(), ", "))}
	}
	if c.N < 2 {
		return &ConfigError{Field: "N", Value: c.N, Reason: "need at least 2 processors"}
	}
	if c.K <= 0 {
		return &ConfigError{Field: "K", Value: c.K, Reason: "multiplexing degree must be positive"}
	}
	switch c.Switching {
	case DynamicTDM, PreloadTDM, HybridTDM:
		knownEv := false
		for _, v := range evictionValues {
			if c.Eviction == v {
				knownEv = true
				break
			}
		}
		if !knownEv {
			return &ConfigError{Field: "Eviction", Value: int(c.Eviction),
				Reason: fmt.Sprintf("unknown policy (valid: %s)", strings.Join(EvictionNames(), ", "))}
		}
	}
	if c.Switching == HybridTDM && (c.PreloadSlots < 0 || c.PreloadSlots > c.K) {
		return &ConfigError{Field: "PreloadSlots", Value: c.PreloadSlots,
			Reason: fmt.Sprintf("must be within [0, K=%d]", c.K)}
	}
	if c.AmplifyBytes < 0 {
		return &ConfigError{Field: "AmplifyBytes", Value: c.AmplifyBytes, Reason: "must not be negative"}
	}
	knownFab := false
	for _, v := range fabricValues {
		if c.Fabric == v {
			knownFab = true
			break
		}
	}
	if !knownFab {
		return &ConfigError{Field: "Fabric", Value: int(c.Fabric),
			Reason: fmt.Sprintf("unknown fabric (valid: %s)", strings.Join(FabricNames(), ", "))}
	}
	knownPlanner := false
	for _, v := range plannerValues {
		if c.Planner == v {
			knownPlanner = true
			break
		}
	}
	if !knownPlanner {
		return &ConfigError{Field: "Planner", Value: int(c.Planner),
			Reason: fmt.Sprintf("unknown planner (valid: %s)", strings.Join(PlannerNames(), ", "))}
	}
	if c.Planner != PlannerStatic {
		switch c.Switching {
		case PreloadTDM:
		case HybridTDM:
			if c.PreloadSlots == 0 {
				return &ConfigError{Field: "Planner", Value: c.Planner.String(),
					Reason: "needs at least one preloaded slot (PreloadSlots) to plan for"}
			}
		default:
			return &ConfigError{Field: "Planner", Value: c.Planner.String(),
				Reason: fmt.Sprintf("preload planning needs preloaded slots; %s has none", c.Switching)}
		}
	}
	knownSched := false
	for _, v := range schedulerValues {
		if c.Scheduler == v {
			knownSched = true
			break
		}
	}
	if !knownSched {
		return &ConfigError{Field: "Scheduler", Value: int(c.Scheduler),
			Reason: fmt.Sprintf("unknown scheduler (valid: %s)", strings.Join(SchedulerNames(), ", "))}
	}
	if c.SchedShards < 0 {
		return &ConfigError{Field: "SchedShards", Value: c.SchedShards, Reason: "must not be negative"}
	}
	switch c.Switching {
	case DynamicTDM, PreloadTDM, HybridTDM:
		be, err := fabric.NewBackend(fabricKinds[c.Fabric], c.N)
		if err != nil {
			return &ConfigError{Field: "Fabric", Value: c.Fabric.String(), Reason: err.Error()}
		}
		// Sharding and warm starting are paper-scheduler features: both
		// lean on the Tables 1–2 pass structure (leaf-aligned change cells,
		// rotated-row re-evaluation). Asking for them elsewhere is a
		// misconfiguration, not something to ignore silently.
		if c.SchedShards > 1 && c.Scheduler != SchedulerPaper {
			return &ConfigError{Field: "SchedShards", Value: c.SchedShards,
				Reason: fmt.Sprintf("sharding requires the paper scheduler, not %s", c.Scheduler)}
		}
		if c.SchedShards > 1 && be.Leaves() < 2 {
			return &ConfigError{Field: "SchedShards", Value: c.SchedShards,
				Reason: fmt.Sprintf("fabric %s has a single leaf, no seam to shard on", c.Fabric)}
		}
		if c.SchedWarmStart && c.Scheduler != SchedulerPaper {
			return &ConfigError{Field: "SchedWarmStart", Value: c.Scheduler.String(),
				Reason: "warm-start scheduling requires the paper scheduler"}
		}
	}
	if c.Parallelism < 0 {
		return &ConfigError{Field: "Parallelism", Value: c.Parallelism, Reason: "must not be negative"}
	}
	if err := c.Faults.Validate(); err != nil {
		return &ConfigError{Field: "Faults", Reason: err.Error()}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 4
	}
	if c.EvictionTimeout == 0 {
		c.EvictionTimeout = 500 * time.Nanosecond
	}
	if c.EvictionThreshold == 0 {
		c.EvictionThreshold = 8
	}
	return c
}

func (c Config) predictorFactory() (func() predictor.Predictor, error) {
	switch c.Eviction {
	case ReleaseOnEmpty:
		return nil, nil
	case TimeoutEviction:
		t := sim.Time(c.EvictionTimeout.Nanoseconds())
		return func() predictor.Predictor { return predictor.NewTimeout(t) }, nil
	case CounterEviction:
		th := c.EvictionThreshold
		return func() predictor.Predictor { return predictor.NewCounter(th) }, nil
	case NeverEvict:
		return func() predictor.Predictor { return predictor.NewNever() }, nil
	case MarkovPrefetch:
		t := sim.Time(c.EvictionTimeout.Nanoseconds())
		return func() predictor.Predictor { return predictor.NewMarkov(t, 1) }, nil
	default:
		return nil, fmt.Errorf("pmsnet: unknown eviction policy %d", int(c.Eviction))
	}
}

// network builds the internal model for a configuration.
func (c Config) network() (netmodel.Network, error) {
	c = c.withDefaults()
	if err := c.Faults.Validate(); err != nil {
		return nil, err
	}
	switch c.Switching {
	case Wormhole:
		return wormhole.New(wormhole.Config{N: c.N, Faults: c.Faults, Probe: c.Probe})
	case CircuitSwitching:
		return circuit.New(circuit.Config{N: c.N, Faults: c.Faults, Probe: c.Probe})
	case VOQISLIP:
		return voq.New(voq.Config{N: c.N, Faults: c.Faults, Probe: c.Probe})
	case MeshWormhole:
		return meshnet.NewWormhole(meshnet.WormholeConfig{N: c.N, Faults: c.Faults, Probe: c.Probe})
	case MeshTDM:
		return meshnet.NewTDM(meshnet.TDMConfig{N: c.N, K: c.K, Faults: c.Faults, Probe: c.Probe})
	case DynamicTDM, PreloadTDM, HybridTDM:
		pf, err := c.predictorFactory()
		if err != nil {
			return nil, err
		}
		cfg := tdm.Config{N: c.N, K: c.K, NewPredictor: pf, AmplifyBytes: c.AmplifyBytes, Faults: c.Faults, SchedCache: c.SchedCache, Probe: c.Probe}
		cfg.Fabric = fabricKinds[c.Fabric]
		cfg.Algorithm = schedulerAlgs[c.Scheduler]
		cfg.Shards = c.SchedShards
		cfg.WarmStart = c.SchedWarmStart
		switch c.Switching {
		case PreloadTDM:
			cfg.Mode = tdm.Preload
			cfg.NewPredictor = nil
		case HybridTDM:
			cfg.Mode = tdm.Hybrid
			cfg.PreloadSlots = c.PreloadSlots
		}
		if c.Planner != PlannerStatic {
			cfg.Planner = plan.New(plannerKinds[c.Planner])
		}
		return tdm.New(cfg)
	default:
		return nil, fmt.Errorf("pmsnet: unknown switching paradigm %d", int(c.Switching))
	}
}

// Workload is a simulation input: one command program per processor plus
// the statically-known communication phases. Build workloads with the
// pattern constructors or load them from command files with ReadTrace.
type Workload struct {
	w *traffic.Workload
}

// Name returns the workload label.
func (w *Workload) Name() string { return w.w.Name }

// Spec returns the canonical generator spec that built the workload (see
// ParseWorkloadSpec), or "" for workloads built by constructor or read from
// traces that omit it.
func (w *Workload) Spec() string { return w.w.Spec }

// Processors returns the processor count.
func (w *Workload) Processors() int { return w.w.N }

// Messages returns the total message count.
func (w *Workload) Messages() int { return w.w.MessageCount() }

// TotalBytes returns the total payload bytes.
func (w *Workload) TotalBytes() int64 { return w.w.TotalBytes() }

// Report is the outcome of one simulation run.
type Report struct {
	Network  string
	Workload string

	Messages int
	Bytes    int64
	// Makespan is the simulated time at which the last message arrived.
	Makespan time.Duration
	// Efficiency is the bottleneck-ideal time divided by the makespan.
	Efficiency float64

	LatencyMean time.Duration
	LatencyP50  time.Duration
	LatencyP95  time.Duration
	LatencyMax  time.Duration

	// LatencyHistogram is an ASCII rendering of the run's log-bucketed
	// latency distribution.
	LatencyHistogram string
	// HitRate is the connection-cache hit rate of the TDM modes.
	HitRate float64
	// Sched groups the scheduler-activity counters of the TDM modes.
	Sched SchedReport
	// Plan describes the preload planner's schedule when Config.Planner
	// selected one; the zero value when no planner ran.
	Plan PlanReport

	// Faults carries the fault-injection and recovery accounting; nil when
	// the run had no active fault plan.
	Faults *FaultReport
}

// SchedReport groups the scheduler-activity counters of the TDM modes,
// formerly flat Report fields (SchedulerPasses, Established, Released,
// Evictions, Preloads, SchedCacheHits, SchedCacheMisses).
type SchedReport struct {
	// Passes counts scheduling passes (one per slot-window arbitration).
	Passes uint64
	// Established / Released / Evictions count connection-cache activity.
	Established uint64
	Released    uint64
	Evictions   uint64
	// Preloads counts preloaded configuration groups (PreloadTDM/HybridTDM).
	Preloads uint64
	// CacheHits / CacheMisses count memoized scheduling passes
	// (Config.SchedCache): hits replayed a recorded grant set instead of
	// re-running the scheduling array. Performance counters only — all
	// other Report fields are bit-identical with the cache on or off.
	CacheHits   uint64
	CacheMisses uint64
	// WarmHits / WarmMisses count warm-started scheduling passes
	// (Config.SchedWarmStart): hits repaired the previous pass's masks
	// incrementally from the request journal, misses rebuilt them. DirtyRows
	// totals the rows re-evaluated across incremental passes. Performance
	// counters only — the only Report fields allowed to differ between
	// warm-on and warm-off runs.
	WarmHits   uint64
	WarmMisses uint64
	DirtyRows  uint64
}

// PlanReport describes the preload planner's offline schedule: which planner
// ran and the shape of what it produced. All fields are zero when the run had
// no planner (Config.Planner == PlannerStatic leaves the hand-written preload
// path untouched and unreported).
type PlanReport struct {
	// Planner is the planner's canonical name ("solstice", "bvn"); empty
	// without a planner.
	Planner string
	// Configs counts planned slot configurations (register shares included)
	// and Groups the configuration groups they were packed into, summed
	// over the workload's static phases.
	Configs uint64
	Groups  uint64
	// ResidualConns counts connections the plan spilled to the dynamic
	// slots instead of pinning (HybridTDM residual traffic).
	ResidualConns uint64
	// DrainSlots is the planner's own drain estimate in TDM slots,
	// reconfiguration charges included, rounded up and summed over phases.
	DrainSlots uint64
}

// FaultReport is the fault-injection and recovery accounting of a run with
// an active fault plan. The message accounting is exact: every injected
// message is delivered (possibly after retries) or explicitly dropped, so
// Injected == Delivered + Dropped always holds.
type FaultReport struct {
	// Injected-fault tallies.
	LinkFailures     uint64
	LinkRepairs      uint64
	CrosspointDeaths uint64
	Corrupted        uint64
	RequestsLost     uint64
	GrantsLost       uint64

	// Recovery tallies.
	Retries          uint64
	Reschedules      uint64
	PreloadFallbacks uint64
	MaskedGrants     uint64

	// Message accounting.
	Injected  uint64
	Delivered uint64
	Dropped   uint64

	// DegradedTime is the simulated time with at least one fault active.
	DegradedTime time.Duration
}

func toReport(r metrics.Result) Report {
	hist := ""
	if r.Latencies != nil {
		hist = r.Latencies.String()
	}
	return Report{
		LatencyHistogram: hist,
		Network:          r.Network,
		Workload:         r.Workload,
		Messages:         r.Messages,
		Bytes:            r.Bytes,
		Makespan:         time.Duration(r.Makespan),
		Efficiency:       r.Efficiency,
		LatencyMean:      time.Duration(r.LatencyMean),
		LatencyP50:       time.Duration(r.LatencyP50),
		LatencyP95:       time.Duration(r.LatencyP95),
		LatencyMax:       time.Duration(r.LatencyMax),
		HitRate:          r.Stats.HitRate(),
		Sched: SchedReport{
			Passes:      r.Stats.SchedulerPasses,
			Established: r.Stats.Established,
			Released:    r.Stats.Released,
			Evictions:   r.Stats.Evictions,
			Preloads:    r.Stats.Preloads,
			CacheHits:   r.Stats.SchedCacheHits,
			CacheMisses: r.Stats.SchedCacheMisses,
			WarmHits:    r.Stats.SchedWarmHits,
			WarmMisses:  r.Stats.SchedWarmMisses,
			DirtyRows:   r.Stats.SchedDirtyRows,
		},
		Plan: PlanReport{
			Planner:       r.Stats.Planner,
			Configs:       r.Stats.PlanConfigs,
			Groups:        r.Stats.PlanGroups,
			ResidualConns: r.Stats.PlanResidualConns,
			DrainSlots:    r.Stats.PlanDrainSlots,
		},
		Faults: toFaultReport(r.Stats.Faults),
	}
}

func toFaultReport(f metrics.FaultStats) *FaultReport {
	if !f.Enabled {
		return nil
	}
	return &FaultReport{
		LinkFailures:     f.LinkFailures,
		LinkRepairs:      f.LinkRepairs,
		CrosspointDeaths: f.CrosspointDeaths,
		Corrupted:        f.Corrupted,
		RequestsLost:     f.RequestsLost,
		GrantsLost:       f.GrantsLost,
		Retries:          f.Retries,
		Reschedules:      f.Reschedules,
		PreloadFallbacks: f.PreloadFallbacks,
		MaskedGrants:     f.MaskedGrants,
		Injected:         f.Injected,
		Delivered:        f.Delivered,
		Dropped:          f.Dropped,
		DegradedTime:     time.Duration(f.DegradedTime),
	}
}

// ParseFaults parses a fault-plan spec string (the cmd/pmsim --faults
// syntax) into a plan usable in Config.Faults. The spec is a comma- or
// space-separated list of key=value items, e.g.
// "seed=7,mtbf=1ms,mttr=10us,corrupt=0.001,link=3@50us+20us,xpoint=1:2@80us".
// An empty spec returns an inactive plan.
func ParseFaults(spec string) (*fault.Plan, error) { return fault.Parse(spec) }

// Run simulates the workload on the configured network to completion. The
// configuration is validated first; violations come back as *ConfigError.
func Run(cfg Config, wl *Workload) (Report, error) {
	if wl == nil || wl.w == nil {
		return Report{}, fmt.Errorf("pmsnet: nil workload")
	}
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	nw, err := cfg.network()
	if err != nil {
		return Report{}, err
	}
	res, err := nw.Run(wl.w)
	if err != nil {
		return Report{}, err
	}
	return toReport(res), nil
}

// RunMany simulates every workload under the same configuration, fanning the
// runs across cfg.Parallelism workers (0 = GOMAXPROCS). Each run builds its
// own network instance, so runs share nothing but the read-only workloads and
// fault plan; reports come back in workload order and are bit-identical to
// running each workload through Run serially. The first error cancels the
// remaining runs and is returned.
//
// The configuration is validated first; additionally, cfg.Probe must be nil —
// probe sinks run unsynchronized on each simulation goroutine, so a shared
// probe would race. Attach probes to individual Run calls instead.
func RunMany(cfg Config, wls []*Workload) ([]Report, error) {
	for i, wl := range wls {
		if wl == nil || wl.w == nil {
			return nil, fmt.Errorf("pmsnet: nil workload at index %d", i)
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Probe != nil {
		return nil, &ConfigError{Field: "Probe",
			Reason: "probe sinks are not safe across concurrent runs; use Run for traced simulations"}
	}
	return runner.Map(runner.Options{Parallelism: cfg.Parallelism}, len(wls), func(i int) (Report, error) {
		nw, err := cfg.network()
		if err != nil {
			return Report{}, err
		}
		res, err := nw.Run(wls[i].w)
		if err != nil {
			return Report{}, err
		}
		return toReport(res), nil
	})
}

// --- the workload-generator registry ---

// WorkloadSpec is a parsed workload-generator invocation: a registered
// traffic family plus explicitly set parameters. Specs are strings of the
// form "name[:key=value,...]", e.g. "random-mesh", "all-reduce:algo=tree",
// "perm-churn:rounds=4,msgs=2" — the single pattern vocabulary shared by
// cmd/pmsim, cmd/pmsopt, cmd/pmsd and cmd/figures. WorkloadNames lists the
// registered families.
type WorkloadSpec struct {
	s *traffic.Spec
}

// ParseWorkloadSpec parses a generator spec, validating the family name and
// every parameter against the family's schema. Unknown names produce an
// error listing every valid name.
func ParseWorkloadSpec(spec string) (*WorkloadSpec, error) {
	s, err := traffic.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return &WorkloadSpec{s: s}, nil
}

// Name returns the generator family name.
func (s *WorkloadSpec) Name() string { return s.s.Name() }

// String renders the canonical spec form: parameters in schema order with
// canonical encodings, defaults elided. ParseWorkloadSpec(s.String())
// reproduces s.
func (s *WorkloadSpec) String() string { return s.s.String() }

// Default sets a parameter only when the spec did not set it explicitly —
// the overlay the CLIs use to fold flag values (e.g. -size, -msgs) under an
// explicit spec. Keys the family's schema does not have are ignored;
// invalid values for known keys error.
func (s *WorkloadSpec) Default(key, value string) error { return s.s.Default(key, value) }

// Generate builds the spec's workload for n processors at the given seed.
// Family contract violations (non-square N for transpose, ...) come back as
// errors. The workload carries the canonical spec (Workload.Spec), which
// the PMSTRACE serialization — and therefore Workload.Hash — folds in.
func (s *WorkloadSpec) Generate(n int, seed int64) (*Workload, error) {
	wl, err := s.s.Generate(n, seed)
	if err != nil {
		return nil, err
	}
	return &Workload{w: wl}, nil
}

// GenerateWorkload parses a generator spec and builds its workload in one
// step.
func GenerateWorkload(spec string, n int, seed int64) (*Workload, error) {
	s, err := ParseWorkloadSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Generate(n, seed)
}

// WorkloadNames returns the registered generator-family names in their
// canonical order — the vocabulary of the cmd/pmsim -pattern flag.
func WorkloadNames() []string { return traffic.Names() }

// WorkloadUsage renders the generator catalog as aligned usage lines — one
// per family: the name, its parameter schema with defaults, and a one-line
// description. The first whitespace-separated token of each line is the
// bare family name, so `pmsim -pattern list | awk '{print $1}'` yields the
// machine-readable vocabulary.
func WorkloadUsage() []string {
	gens := traffic.Generators()
	nameW, schemaW := 0, 0
	for _, g := range gens {
		if len(g.Name) > nameW {
			nameW = len(g.Name)
		}
		if len(g.Schema()) > schemaW {
			schemaW = len(g.Schema())
		}
	}
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = fmt.Sprintf("%-*s  %-*s  %s", nameW, g.Name, schemaW, g.Schema(), g.Doc)
	}
	return out
}

// --- workload constructors (paper §5 patterns) ---

// ScatterWorkload builds the Scatter test: processor 0 sends a unique
// message of `bytes` bytes to every other processor.
func ScatterWorkload(n, bytes int) *Workload {
	return &Workload{w: traffic.Scatter(n, bytes)}
}

// OrderedMesh builds the Ordered Mesh test: deterministic nearest-neighbor
// rounds (E, W, N, S) on the 2-D processor mesh.
func OrderedMesh(n, bytes, rounds int) *Workload {
	return &Workload{w: traffic.OrderedMesh(n, bytes, rounds)}
}

// RandomMesh builds the Random Mesh test: `msgs` messages per processor to
// uniformly random mesh neighbors.
func RandomMesh(n, bytes, msgs int, seed int64) *Workload {
	return &Workload{w: traffic.RandomMesh(n, bytes, msgs, seed)}
}

// AllToAll builds a staggered all-to-all exchange.
func AllToAll(n, bytes int) *Workload {
	return &Workload{w: traffic.AllToAll(n, bytes)}
}

// TwoPhaseWorkload builds the Two Phase test: an all-to-all followed by 16
// random nearest-neighbor rounds, with a compiler flush between the phases.
func TwoPhaseWorkload(n, bytes int, seed int64) *Workload {
	return &Workload{w: traffic.TwoPhase(n, bytes, seed)}
}

// HotspotWorkload builds random-mesh background traffic plus a heavy stream
// from processor 0 to processor n-1 — the bandwidth-amplification stressor.
func HotspotWorkload(n, bytes, msgs, hotBytes, hotMsgs int, seed int64) *Workload {
	return &Workload{w: traffic.Hotspot(n, bytes, msgs, hotBytes, hotMsgs, seed)}
}

// MixWorkload builds the Figure-5 determinism mix: blocking sends separated
// by `think` of compute; a `determinism` fraction goes to each processor's
// two fixed favored destinations, the rest to uniformly random processors.
func MixWorkload(n, bytes, msgs int, determinism float64, think time.Duration, seed int64) *Workload {
	return &Workload{w: traffic.Mix(n, bytes, msgs, determinism, sim.Time(think.Nanoseconds()), seed)}
}

// AnalyzeWorkload runs the compile-/load-time communication analysis on a
// workload: it strips any existing annotations, segments every processor's
// send stream into phases, attaches the discovered per-phase working sets
// (so PreloadTDM can run the workload), and inserts FLUSH/PHASEHINT
// directives at the detected boundaries. It returns the annotated workload
// and the number of phases found.
func AnalyzeWorkload(wl *Workload) (*Workload, int, error) {
	if wl == nil || wl.w == nil {
		return nil, 0, fmt.Errorf("pmsnet: nil workload")
	}
	out, an, err := compiler.Analyze(wl.w, compiler.Options{InsertDirectives: true})
	if err != nil {
		return nil, 0, err
	}
	return &Workload{w: out}, an.PhaseCount(), nil
}

// TransposeWorkload builds the matrix-transpose permutation stream (n must
// be a perfect square).
func TransposeWorkload(n, bytes, msgs int) *Workload {
	return &Workload{w: traffic.Transpose(n, bytes, msgs)}
}

// BitReverseWorkload builds the bit-reversal (FFT) permutation stream (n
// must be a power of two).
func BitReverseWorkload(n, bytes, msgs int) *Workload {
	return &Workload{w: traffic.BitReverse(n, bytes, msgs)}
}

// ShiftWorkload builds the uniform-shift permutation stream.
func ShiftWorkload(n, bytes, msgs, distance int) *Workload {
	return &Workload{w: traffic.Shift(n, bytes, msgs, distance)}
}

// ConcatWorkloads joins workloads into one multi-phase program: each input
// becomes a phase, separated by compiler FLUSH directives and phase hints,
// with the per-phase working sets attached for the preload controller.
func ConcatWorkloads(name string, wls ...*Workload) *Workload {
	inner := make([]*traffic.Workload, len(wls))
	for i, w := range wls {
		if w == nil || w.w == nil {
			panic("pmsnet: nil workload in ConcatWorkloads")
		}
		inner[i] = w.w
	}
	return &Workload{w: traffic.Concat(name, inner...)}
}

// ReadTrace parses a PMSTRACE command file into a workload.
func ReadTrace(r io.Reader) (*Workload, error) {
	w, err := trace.Read(r)
	if err != nil {
		return nil, err
	}
	return &Workload{w: w}, nil
}

// WriteTrace serializes a workload as a PMSTRACE command file.
func WriteTrace(w io.Writer, wl *Workload) error {
	if wl == nil || wl.w == nil {
		return fmt.Errorf("pmsnet: nil workload")
	}
	return trace.Write(w, wl.w)
}
