// Package pmsnet is a cycle-accurate simulation library for predictive
// multiplexed switching in multiprocessor interconnection networks,
// reproducing "Switch Design to Enable Predictive Multiplexed Switching in
// Multiprocessor Networks" (Ding et al., IPPS 2005).
//
// The library models a 128-processor system (any N) connected by a single
// central crossbar and a hardware connection scheduler. The switching
// paradigms are implemented on a shared discrete-event engine with the
// paper's timing constants (6.4 Gb/s serial links, 30/20/30 ns serdes and
// wire delays, 10 ns NIC operations, 80 ns scheduler passes at 128 ports,
// 100 ns TDM slots):
//
//   - Wormhole routing (input-queued digital crossbar, 128-byte worms)
//   - Circuit switching (per-message end-to-end circuits)
//   - Dynamic TDM (the paper's switch, scheduled reactively, with pluggable
//     connection-eviction predictors)
//   - Preload TDM (compiled communication: static phases decomposed into
//     conflict-free configurations and preloaded)
//   - Hybrid TDM (k preloaded slots + K−k dynamic slots)
//   - VOQ/iSLIP cell switch (extra baseline beyond the paper)
//   - Multi-hop mesh variants (per-hop wormhole vs end-to-end TDM circuits)
//
// Quick start:
//
//	wl := pmsnet.OrderedMesh(128, 64, 10)
//	rep, err := pmsnet.Run(pmsnet.Config{Switching: pmsnet.PreloadTDM, N: 128, K: 4}, wl)
//	if err != nil { ... }
//	fmt.Printf("efficiency %.3f\n", rep.Efficiency)
//
// The experiment harnesses that regenerate every table and figure of the
// paper live in internal/experiments; `go test -bench .` and cmd/figures
// print them.
package pmsnet

import (
	"fmt"
	"io"
	"time"

	"pmsnet/internal/circuit"
	"pmsnet/internal/compiler"
	"pmsnet/internal/fault"
	"pmsnet/internal/meshnet"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/predictor"
	"pmsnet/internal/runner"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/trace"
	"pmsnet/internal/traffic"
	"pmsnet/internal/voq"
	"pmsnet/internal/wormhole"
)

// Switching selects a network model.
type Switching int

// Switching paradigms.
const (
	// Wormhole is the wormhole-routing baseline.
	Wormhole Switching = iota
	// CircuitSwitching is the per-message circuit baseline.
	CircuitSwitching
	// DynamicTDM is the predictive multiplexed switch with reactive
	// scheduling.
	DynamicTDM
	// PreloadTDM is the predictive multiplexed switch with compiled
	// (preloaded) configurations.
	PreloadTDM
	// HybridTDM splits the slots between preloaded and dynamic use.
	HybridTDM
	// VOQISLIP is an input-queued cell switch with virtual output queues
	// and iSLIP arbitration — a baseline beyond the paper's evaluation (the
	// design that became standard for crossbar routers).
	VOQISLIP
	// MeshWormhole is a multi-hop 2-D router mesh with XY routing and
	// per-hop (virtual cut-through) wormhole switching.
	MeshWormhole
	// MeshTDM is the multi-hop predictive multiplexed network: end-to-end
	// TDM circuits over XY paths through analog LVDS switches.
	MeshTDM
)

// String implements fmt.Stringer.
func (s Switching) String() string {
	switch s {
	case Wormhole:
		return "wormhole"
	case CircuitSwitching:
		return "circuit"
	case DynamicTDM:
		return "tdm-dynamic"
	case PreloadTDM:
		return "tdm-preload"
	case HybridTDM:
		return "tdm-hybrid"
	case VOQISLIP:
		return "voq-islip"
	case MeshWormhole:
		return "mesh-wormhole"
	case MeshTDM:
		return "mesh-tdm"
	default:
		return fmt.Sprintf("Switching(%d)", int(s))
	}
}

// EvictionPolicy selects the connection-eviction predictor for the TDM
// modes (paper §3.2).
type EvictionPolicy int

// Eviction policies.
const (
	// ReleaseOnEmpty releases a connection as soon as its request drops
	// (no latching).
	ReleaseOnEmpty EvictionPolicy = iota
	// TimeoutEviction latches connections and evicts after
	// Config.EvictionTimeout of disuse — the paper's experimental setup.
	TimeoutEviction
	// CounterEviction evicts after Config.EvictionThreshold uses of other
	// connections while this one is idle.
	CounterEviction
	// NeverEvict keeps connections until an explicit flush.
	NeverEvict
	// MarkovPrefetch combines timeout eviction with a first-order
	// destination predictor that pre-establishes the learned next
	// connection of each source before its request arrives.
	MarkovPrefetch
)

// Config selects and parameterizes a network.
type Config struct {
	// Switching selects the paradigm.
	Switching Switching
	// N is the processor count (at least 2).
	N int
	// K is the TDM multiplexing degree; ignored by the baselines. Zero
	// defaults to 4, the paper's Figure-4 value.
	K int
	// PreloadSlots is the number of pinned slots for HybridTDM.
	PreloadSlots int
	// Eviction selects the predictor for DynamicTDM/HybridTDM.
	Eviction EvictionPolicy
	// EvictionTimeout is the timeout predictor's period; zero defaults to
	// 500 ns.
	EvictionTimeout time.Duration
	// EvictionThreshold is the counter predictor's threshold; zero defaults
	// to 8.
	EvictionThreshold uint64
	// AmplifyBytes enables bandwidth amplification for the TDM modes: a
	// connection whose queue holds more than this many bytes after a slot
	// transfer is granted an additional slot (extension 2 of the switch
	// design). Zero disables amplification.
	AmplifyBytes int
	// OmegaFabric runs the TDM modes on a blocking log2(N)-stage Omega
	// network instead of the crossbar: the scheduler only establishes
	// connections that keep each slot Omega-realizable, and the preload
	// controller decomposes working sets under the same constraint. N must
	// be a power of two.
	OmegaFabric bool
	// Faults, when non-nil and active, injects faults per the plan: link
	// failures (MTBF/MTTR or scripted), corrupted payloads caught by the
	// receiving NIC's CRC, lost scheduler request/grant tokens and dead
	// crossbar crosspoints. Recovery is automatic (retries with exponential
	// backoff, rescheduling around dead hardware, preload fallback to
	// dynamic slots) and accounted in the Report's Faults block. A nil or
	// inactive plan leaves every run bit-identical to the fault-free
	// simulation. Build plans directly or with ParseFaults.
	Faults *fault.Plan
	// Parallelism is the worker count for the multi-run entry points
	// (RunMany): 0 defaults to GOMAXPROCS, 1 runs serially, larger values
	// bound the number of simulations in flight. A single Run ignores it —
	// each simulation is single-threaded by design so that runs stay
	// reproducible; parallelism comes from running independent simulations
	// concurrently, with results always in input order.
	Parallelism int
	// SchedCache controls the TDM scheduler's memoized-pass cache: passes
	// repeating a previously seen (scheduler state, request matrix) pair
	// replay the recorded grant set instead of re-running the scheduling
	// array. nil (the default) enables it. Results are bit-identical with
	// the cache on or off — only the Report's SchedCacheHits/Misses
	// counters and the wall-clock cost differ — so disabling it is only
	// useful for benchmarking the raw array or bisecting a suspected cache
	// defect. Ignored by the non-TDM baselines.
	SchedCache *bool
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 4
	}
	if c.EvictionTimeout == 0 {
		c.EvictionTimeout = 500 * time.Nanosecond
	}
	if c.EvictionThreshold == 0 {
		c.EvictionThreshold = 8
	}
	return c
}

func (c Config) predictorFactory() (func() predictor.Predictor, error) {
	switch c.Eviction {
	case ReleaseOnEmpty:
		return nil, nil
	case TimeoutEviction:
		t := sim.Time(c.EvictionTimeout.Nanoseconds())
		return func() predictor.Predictor { return predictor.NewTimeout(t) }, nil
	case CounterEviction:
		th := c.EvictionThreshold
		return func() predictor.Predictor { return predictor.NewCounter(th) }, nil
	case NeverEvict:
		return func() predictor.Predictor { return predictor.NewNever() }, nil
	case MarkovPrefetch:
		t := sim.Time(c.EvictionTimeout.Nanoseconds())
		return func() predictor.Predictor { return predictor.NewMarkov(t, 1) }, nil
	default:
		return nil, fmt.Errorf("pmsnet: unknown eviction policy %d", int(c.Eviction))
	}
}

// network builds the internal model for a configuration.
func (c Config) network() (netmodel.Network, error) {
	c = c.withDefaults()
	if err := c.Faults.Validate(); err != nil {
		return nil, err
	}
	switch c.Switching {
	case Wormhole:
		return wormhole.New(wormhole.Config{N: c.N, Faults: c.Faults})
	case CircuitSwitching:
		return circuit.New(circuit.Config{N: c.N, Faults: c.Faults})
	case VOQISLIP:
		return voq.New(voq.Config{N: c.N, Faults: c.Faults})
	case MeshWormhole:
		return meshnet.NewWormhole(meshnet.WormholeConfig{N: c.N, Faults: c.Faults})
	case MeshTDM:
		return meshnet.NewTDM(meshnet.TDMConfig{N: c.N, K: c.K, Faults: c.Faults})
	case DynamicTDM, PreloadTDM, HybridTDM:
		pf, err := c.predictorFactory()
		if err != nil {
			return nil, err
		}
		cfg := tdm.Config{N: c.N, K: c.K, NewPredictor: pf, AmplifyBytes: c.AmplifyBytes, Faults: c.Faults, SchedCache: c.SchedCache}
		if c.OmegaFabric {
			cfg.Fabric = tdm.OmegaFabric
		}
		switch c.Switching {
		case PreloadTDM:
			cfg.Mode = tdm.Preload
			cfg.NewPredictor = nil
		case HybridTDM:
			cfg.Mode = tdm.Hybrid
			cfg.PreloadSlots = c.PreloadSlots
		}
		return tdm.New(cfg)
	default:
		return nil, fmt.Errorf("pmsnet: unknown switching paradigm %d", int(c.Switching))
	}
}

// Workload is a simulation input: one command program per processor plus
// the statically-known communication phases. Build workloads with the
// pattern constructors or load them from command files with ReadTrace.
type Workload struct {
	w *traffic.Workload
}

// Name returns the workload label.
func (w *Workload) Name() string { return w.w.Name }

// Processors returns the processor count.
func (w *Workload) Processors() int { return w.w.N }

// Messages returns the total message count.
func (w *Workload) Messages() int { return w.w.MessageCount() }

// TotalBytes returns the total payload bytes.
func (w *Workload) TotalBytes() int64 { return w.w.TotalBytes() }

// Report is the outcome of one simulation run.
type Report struct {
	Network  string
	Workload string

	Messages int
	Bytes    int64
	// Makespan is the simulated time at which the last message arrived.
	Makespan time.Duration
	// Efficiency is the bottleneck-ideal time divided by the makespan.
	Efficiency float64

	LatencyMean time.Duration
	LatencyP50  time.Duration
	LatencyP95  time.Duration
	LatencyMax  time.Duration

	// LatencyHistogram is an ASCII rendering of the run's log-bucketed
	// latency distribution.
	LatencyHistogram string
	// HitRate is the connection-cache hit rate of the TDM modes.
	HitRate float64
	// SchedulerPasses, Established, Released, Evictions and Preloads count
	// scheduler activity in the TDM modes.
	SchedulerPasses uint64
	Established     uint64
	Released        uint64
	Evictions       uint64
	Preloads        uint64
	// SchedCacheHits / SchedCacheMisses count memoized scheduling passes
	// (Config.SchedCache): hits replayed a recorded grant set instead of
	// re-running the scheduling array. Performance counters only — all
	// other Report fields are bit-identical with the cache on or off.
	SchedCacheHits   uint64
	SchedCacheMisses uint64

	// Faults carries the fault-injection and recovery accounting; nil when
	// the run had no active fault plan.
	Faults *FaultReport
}

// FaultReport is the fault-injection and recovery accounting of a run with
// an active fault plan. The message accounting is exact: every injected
// message is delivered (possibly after retries) or explicitly dropped, so
// Injected == Delivered + Dropped always holds.
type FaultReport struct {
	// Injected-fault tallies.
	LinkFailures     uint64
	LinkRepairs      uint64
	CrosspointDeaths uint64
	Corrupted        uint64
	RequestsLost     uint64
	GrantsLost       uint64

	// Recovery tallies.
	Retries          uint64
	Reschedules      uint64
	PreloadFallbacks uint64
	MaskedGrants     uint64

	// Message accounting.
	Injected  uint64
	Delivered uint64
	Dropped   uint64

	// DegradedTime is the simulated time with at least one fault active.
	DegradedTime time.Duration
}

func toReport(r metrics.Result) Report {
	hist := ""
	if r.Latencies != nil {
		hist = r.Latencies.String()
	}
	return Report{
		LatencyHistogram: hist,
		Network:          r.Network,
		Workload:         r.Workload,
		Messages:         r.Messages,
		Bytes:            r.Bytes,
		Makespan:         time.Duration(r.Makespan),
		Efficiency:       r.Efficiency,
		LatencyMean:      time.Duration(r.LatencyMean),
		LatencyP50:       time.Duration(r.LatencyP50),
		LatencyP95:       time.Duration(r.LatencyP95),
		LatencyMax:       time.Duration(r.LatencyMax),
		HitRate:          r.Stats.HitRate(),
		SchedulerPasses:  r.Stats.SchedulerPasses,
		Established:      r.Stats.Established,
		Released:         r.Stats.Released,
		Evictions:        r.Stats.Evictions,
		Preloads:         r.Stats.Preloads,
		SchedCacheHits:   r.Stats.SchedCacheHits,
		SchedCacheMisses: r.Stats.SchedCacheMisses,
		Faults:           toFaultReport(r.Stats.Faults),
	}
}

func toFaultReport(f metrics.FaultStats) *FaultReport {
	if !f.Enabled {
		return nil
	}
	return &FaultReport{
		LinkFailures:     f.LinkFailures,
		LinkRepairs:      f.LinkRepairs,
		CrosspointDeaths: f.CrosspointDeaths,
		Corrupted:        f.Corrupted,
		RequestsLost:     f.RequestsLost,
		GrantsLost:       f.GrantsLost,
		Retries:          f.Retries,
		Reschedules:      f.Reschedules,
		PreloadFallbacks: f.PreloadFallbacks,
		MaskedGrants:     f.MaskedGrants,
		Injected:         f.Injected,
		Delivered:        f.Delivered,
		Dropped:          f.Dropped,
		DegradedTime:     time.Duration(f.DegradedTime),
	}
}

// ParseFaults parses a fault-plan spec string (the cmd/pmsim --faults
// syntax) into a plan usable in Config.Faults. The spec is a comma- or
// space-separated list of key=value items, e.g.
// "seed=7,mtbf=1ms,mttr=10us,corrupt=0.001,link=3@50us+20us,xpoint=1:2@80us".
// An empty spec returns an inactive plan.
func ParseFaults(spec string) (*fault.Plan, error) { return fault.Parse(spec) }

// Run simulates the workload on the configured network to completion.
func Run(cfg Config, wl *Workload) (Report, error) {
	if wl == nil || wl.w == nil {
		return Report{}, fmt.Errorf("pmsnet: nil workload")
	}
	nw, err := cfg.network()
	if err != nil {
		return Report{}, err
	}
	res, err := nw.Run(wl.w)
	if err != nil {
		return Report{}, err
	}
	return toReport(res), nil
}

// RunMany simulates every workload under the same configuration, fanning the
// runs across cfg.Parallelism workers (0 = GOMAXPROCS). Each run builds its
// own network instance, so runs share nothing but the read-only workloads and
// fault plan; reports come back in workload order and are bit-identical to
// running each workload through Run serially. The first error cancels the
// remaining runs and is returned.
func RunMany(cfg Config, wls []*Workload) ([]Report, error) {
	for i, wl := range wls {
		if wl == nil || wl.w == nil {
			return nil, fmt.Errorf("pmsnet: nil workload at index %d", i)
		}
	}
	return runner.Map(runner.Options{Parallelism: cfg.Parallelism}, len(wls), func(i int) (Report, error) {
		nw, err := cfg.network()
		if err != nil {
			return Report{}, err
		}
		res, err := nw.Run(wls[i].w)
		if err != nil {
			return Report{}, err
		}
		return toReport(res), nil
	})
}

// --- workload constructors (paper §5 patterns) ---

// ScatterWorkload builds the Scatter test: processor 0 sends a unique
// message of `bytes` bytes to every other processor.
func ScatterWorkload(n, bytes int) *Workload {
	return &Workload{w: traffic.Scatter(n, bytes)}
}

// OrderedMesh builds the Ordered Mesh test: deterministic nearest-neighbor
// rounds (E, W, N, S) on the 2-D processor mesh.
func OrderedMesh(n, bytes, rounds int) *Workload {
	return &Workload{w: traffic.OrderedMesh(n, bytes, rounds)}
}

// RandomMesh builds the Random Mesh test: `msgs` messages per processor to
// uniformly random mesh neighbors.
func RandomMesh(n, bytes, msgs int, seed int64) *Workload {
	return &Workload{w: traffic.RandomMesh(n, bytes, msgs, seed)}
}

// AllToAll builds a staggered all-to-all exchange.
func AllToAll(n, bytes int) *Workload {
	return &Workload{w: traffic.AllToAll(n, bytes)}
}

// TwoPhaseWorkload builds the Two Phase test: an all-to-all followed by 16
// random nearest-neighbor rounds, with a compiler flush between the phases.
func TwoPhaseWorkload(n, bytes int, seed int64) *Workload {
	return &Workload{w: traffic.TwoPhase(n, bytes, seed)}
}

// HotspotWorkload builds random-mesh background traffic plus a heavy stream
// from processor 0 to processor n-1 — the bandwidth-amplification stressor.
func HotspotWorkload(n, bytes, msgs, hotBytes, hotMsgs int, seed int64) *Workload {
	return &Workload{w: traffic.Hotspot(n, bytes, msgs, hotBytes, hotMsgs, seed)}
}

// MixWorkload builds the Figure-5 determinism mix: blocking sends separated
// by `think` of compute; a `determinism` fraction goes to each processor's
// two fixed favored destinations, the rest to uniformly random processors.
func MixWorkload(n, bytes, msgs int, determinism float64, think time.Duration, seed int64) *Workload {
	return &Workload{w: traffic.Mix(n, bytes, msgs, determinism, sim.Time(think.Nanoseconds()), seed)}
}

// AnalyzeWorkload runs the compile-/load-time communication analysis on a
// workload: it strips any existing annotations, segments every processor's
// send stream into phases, attaches the discovered per-phase working sets
// (so PreloadTDM can run the workload), and inserts FLUSH/PHASEHINT
// directives at the detected boundaries. It returns the annotated workload
// and the number of phases found.
func AnalyzeWorkload(wl *Workload) (*Workload, int, error) {
	if wl == nil || wl.w == nil {
		return nil, 0, fmt.Errorf("pmsnet: nil workload")
	}
	out, an, err := compiler.Analyze(wl.w, compiler.Options{InsertDirectives: true})
	if err != nil {
		return nil, 0, err
	}
	return &Workload{w: out}, an.PhaseCount(), nil
}

// TransposeWorkload builds the matrix-transpose permutation stream (n must
// be a perfect square).
func TransposeWorkload(n, bytes, msgs int) *Workload {
	return &Workload{w: traffic.Transpose(n, bytes, msgs)}
}

// BitReverseWorkload builds the bit-reversal (FFT) permutation stream (n
// must be a power of two).
func BitReverseWorkload(n, bytes, msgs int) *Workload {
	return &Workload{w: traffic.BitReverse(n, bytes, msgs)}
}

// ShiftWorkload builds the uniform-shift permutation stream.
func ShiftWorkload(n, bytes, msgs, distance int) *Workload {
	return &Workload{w: traffic.Shift(n, bytes, msgs, distance)}
}

// ConcatWorkloads joins workloads into one multi-phase program: each input
// becomes a phase, separated by compiler FLUSH directives and phase hints,
// with the per-phase working sets attached for the preload controller.
func ConcatWorkloads(name string, wls ...*Workload) *Workload {
	inner := make([]*traffic.Workload, len(wls))
	for i, w := range wls {
		if w == nil || w.w == nil {
			panic("pmsnet: nil workload in ConcatWorkloads")
		}
		inner[i] = w.w
	}
	return &Workload{w: traffic.Concat(name, inner...)}
}

// ReadTrace parses a PMSTRACE command file into a workload.
func ReadTrace(r io.Reader) (*Workload, error) {
	w, err := trace.Read(r)
	if err != nil {
		return nil, err
	}
	return &Workload{w: w}, nil
}

// WriteTrace serializes a workload as a PMSTRACE command file.
func WriteTrace(w io.Writer, wl *Workload) error {
	if wl == nil || wl.w == nil {
		return fmt.Errorf("pmsnet: nil workload")
	}
	return trace.Write(w, wl.w)
}
