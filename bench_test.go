package pmsnet

// One benchmark per table and figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Each figure bench runs its harness
// at the representative 64-byte point (the full 8..2048-byte sweeps are
// printed by cmd/figures) and reports the efficiency of every network as a
// benchmark metric; the rendered table is logged on the first iteration so
// `go test -bench . -v` shows the regenerated rows.

import (
	"strings"
	"sync"
	"testing"

	"pmsnet/internal/experiments"
	"pmsnet/internal/traffic"
)

const benchSize = 64

var logOnce sync.Map

func logTableOnce(b *testing.B, key, table string) {
	if _, loaded := logOnce.LoadOrStore(key, true); !loaded {
		b.Log("\n" + table)
	}
}

func benchFig4Panel(b *testing.B, panel experiments.Panel) {
	b.Helper()
	var rows []experiments.SizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig4Panel(panel, experiments.N, []int{benchSize}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTableOnce(b, string(panel), experiments.Fig4Table(panel, rows).String())
	for _, res := range rows[0].Results {
		b.ReportMetric(res.Efficiency, res.Network+"-eff")
	}
}

// BenchmarkFig4Scatter regenerates Figure 4's Scatter panel.
func BenchmarkFig4Scatter(b *testing.B) { benchFig4Panel(b, experiments.Scatter) }

// BenchmarkFig4RandomMesh regenerates Figure 4's Random Mesh panel.
func BenchmarkFig4RandomMesh(b *testing.B) { benchFig4Panel(b, experiments.RandomMesh) }

// BenchmarkFig4OrderedMesh regenerates Figure 4's Ordered Mesh panel.
func BenchmarkFig4OrderedMesh(b *testing.B) { benchFig4Panel(b, experiments.OrderedMesh) }

// BenchmarkFig4TwoPhase regenerates Figure 4's Two Phase panel.
func BenchmarkFig4TwoPhase(b *testing.B) { benchFig4Panel(b, experiments.TwoPhase) }

// BenchmarkFig5Hybrid regenerates Figure 5 at its two pivotal determinism
// levels (50% and 85%).
func BenchmarkFig5Hybrid(b *testing.B) {
	var rows []experiments.Fig5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig5(experiments.N, []float64{0.5, 0.85}, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTableOnce(b, "fig5", experiments.Fig5Table(rows).String())
	for _, row := range rows {
		for _, res := range row.Results {
			b.ReportMetric(res.Efficiency, res.Network[len("tdm-hybrid/"):]+"-eff")
		}
	}
}

// BenchmarkTable3SchedulerLatency regenerates Table 3: the published FPGA
// figures, the simulated ASIC figures, and this model's software pass time.
func BenchmarkTable3SchedulerLatency(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(200)
	}
	logTableOnce(b, "table3", experiments.Table3Table(rows).String())
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.FPGANs), "fpga-128-ns")
	b.ReportMetric(float64(last.ASICNs), "asic-128-ns")
	b.ReportMetric(last.SoftwareNs, "software-128-ns")
}

// --- ablation benches (design choices beyond the paper's figures) ---

func benchAblation(b *testing.B, key string, run func() ([]experiments.NamedResult, error)) {
	b.Helper()
	var rows []experiments.NamedResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTableOnce(b, key, experiments.AblationTable(key, rows).String())
	for _, r := range rows {
		b.ReportMetric(r.Result.Efficiency, metricUnit(r.Label)+"-eff")
		if hr := r.Result.Stats.HitRate(); hr > 0 {
			b.ReportMetric(hr, metricUnit(r.Label)+"-hit")
		}
	}
}

// metricUnit turns a free-form label into a whitespace-free metric unit.
func metricUnit(label string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '(', ')':
			return '-'
		default:
			return r
		}
	}, label)
}

// BenchmarkAblationPredictors compares eviction policies (§3.2) on the
// random-mesh workload.
func BenchmarkAblationPredictors(b *testing.B) {
	wl := traffic.RandomMesh(experiments.N, benchSize, experiments.MeshMsgs, 1)
	benchAblation(b, "predictor ablation (random mesh)", func() ([]experiments.NamedResult, error) {
		return experiments.PredictorAblation(experiments.N, wl)
	})
}

// BenchmarkAblationDegree sweeps the multiplexing degree K (§2's k-vs-
// bandwidth trade-off; K=1 is the circuit-switching degenerate case).
func BenchmarkAblationDegree(b *testing.B) {
	wl := traffic.RandomMesh(experiments.N, benchSize, experiments.MeshMsgs, 1)
	benchAblation(b, "multiplexing degree sweep (random mesh)", func() ([]experiments.NamedResult, error) {
		return experiments.DegreeSweep(experiments.N, []int{1, 2, 4, 8, 16}, wl)
	})
}

// BenchmarkAblationDegreeSparse sweeps K over sparse fully-deterministic
// traffic with a degree-2 working set: the K=2 optimum demonstrates §2's
// trade-off (K below the working set thrashes, K above it dilutes).
func BenchmarkAblationDegreeSparse(b *testing.B) {
	wl := traffic.Mix(experiments.N, benchSize, experiments.Fig5Msgs, 1.0, experiments.Fig5Think, 7)
	benchAblation(b, "multiplexing degree sweep (sparse deterministic)", func() ([]experiments.NamedResult, error) {
		return experiments.DegreeSweep(experiments.N, []int{1, 2, 3, 4, 8}, wl)
	})
}

// BenchmarkAblationRotation compares fixed vs rotating scheduling priority
// (§4's fairness rotation).
func BenchmarkAblationRotation(b *testing.B) {
	wl := traffic.RandomMesh(experiments.N, benchSize, experiments.MeshMsgs, 1)
	benchAblation(b, "priority rotation ablation", func() ([]experiments.NamedResult, error) {
		return experiments.RotationAblation(experiments.N, wl)
	})
}

// BenchmarkAblationSkipEmpty compares the TDM counter with and without
// empty-slot skipping on a sparse working set (K=8, degree-4 traffic).
func BenchmarkAblationSkipEmpty(b *testing.B) {
	wl := traffic.OrderedMesh(experiments.N, benchSize, experiments.MeshMsgs/4)
	benchAblation(b, "empty-slot skipping ablation (K=8)", func() ([]experiments.NamedResult, error) {
		return experiments.SkipEmptyAblation(experiments.N, 8, wl)
	})
}

// BenchmarkAblationSLCopies sweeps extension 1 (multiple scheduling-logic
// units) on the scheduler-bound all-to-all.
func BenchmarkAblationSLCopies(b *testing.B) {
	wl := traffic.AllToAll(experiments.N, benchSize)
	benchAblation(b, "SL copies sweep (all-to-all)", func() ([]experiments.NamedResult, error) {
		return experiments.SLCopiesSweep(experiments.N, []int{1, 2, 4}, wl)
	})
}

// BenchmarkAblationAmplify measures bandwidth amplification (core extension
// 2) on a hotspot workload.
func BenchmarkAblationAmplify(b *testing.B) {
	wl := traffic.Hotspot(experiments.N, benchSize, experiments.MeshMsgs, 2048, 50, 1)
	benchAblation(b, "bandwidth amplification (hotspot)", func() ([]experiments.NamedResult, error) {
		return experiments.AmplifyAblation(experiments.N, wl)
	})
}

// BenchmarkAblationPrefetch measures the Markov prefetching predictor on
// cyclic sparse traffic.
func BenchmarkAblationPrefetch(b *testing.B) {
	wl := experiments.CyclicWorkload(experiments.N, 8, 8, 1200)
	benchAblation(b, "markov prefetching (cyclic traffic)", func() ([]experiments.NamedResult, error) {
		return experiments.PrefetchAblation(experiments.N, wl)
	})
}

// BenchmarkAblationPayload sweeps the usable slot payload (the guard-band
// complement).
func BenchmarkAblationPayload(b *testing.B) {
	wl := traffic.OrderedMesh(experiments.N, benchSize, experiments.MeshMsgs/4)
	benchAblation(b, "slot payload sweep", func() ([]experiments.NamedResult, error) {
		return experiments.PayloadSweep(experiments.N, []int{32, 48, 64, 80}, wl)
	})
}

// BenchmarkModernBaseline compares the PMS switch against an iSLIP VOQ cell
// switch (beyond the paper's evaluation).
func BenchmarkModernBaseline(b *testing.B) {
	wl := traffic.RandomMesh(experiments.N, benchSize, experiments.MeshMsgs, 1)
	benchAblation(b, "iSLIP VOQ vs PMS (random mesh)", func() ([]experiments.NamedResult, error) {
		return experiments.ModernBaseline(experiments.N, wl)
	})
}

// BenchmarkOmegaFabric runs dynamic TDM on the crossbar and the blocking
// Omega fabric over structured permutations.
func BenchmarkOmegaFabric(b *testing.B) {
	wls := []*traffic.Workload{
		traffic.Shift(experiments.N, benchSize, experiments.MeshMsgs, 1),
		traffic.BitReverse(experiments.N, benchSize, experiments.MeshMsgs),
	}
	benchAblation(b, "omega fabric vs crossbar", func() ([]experiments.NamedResult, error) {
		return experiments.OmegaFabricStudy(experiments.N, wls)
	})
}

// BenchmarkMultiHopMesh runs the multi-hop wormhole and TDM-circuit meshes
// on long-path traffic (the paper's concluding claim).
func BenchmarkMultiHopMesh(b *testing.B) {
	wls := []*traffic.Workload{
		traffic.OrderedMesh(experiments.N, benchSize, experiments.MeshMsgs/4),
		traffic.Transpose(100, benchSize, experiments.MeshMsgs),
	}
	benchAblation(b, "multi-hop mesh: wormhole vs TDM circuits", func() ([]experiments.NamedResult, error) {
		// Each workload declares its own processor count (128 mesh, 100
		// transpose grid); MultiHopStudy builds the matching networks.
		var out []experiments.NamedResult
		for _, wl := range wls {
			rows, err := experiments.MultiHopStudy(wl.N, []*traffic.Workload{wl})
			if err != nil {
				return nil, err
			}
			out = append(out, rows...)
		}
		return out, nil
	})
}

// BenchmarkFabricComparison decomposes the evaluation working sets for
// crossbar vs Omega fabrics.
func BenchmarkFabricComparison(b *testing.B) {
	wls := []*traffic.Workload{
		traffic.OrderedMesh(experiments.N, benchSize, 1),
		traffic.AllToAll(experiments.N, benchSize),
	}
	var rows []experiments.FabricRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.FabricComparison(experiments.N, wls)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTableOnce(b, "fabric", experiments.FabricTable(rows).String())
	for _, r := range rows {
		b.ReportMetric(float64(r.CrossbarSlots), metricUnit(r.Workload)+"-crossbar-slots")
		b.ReportMetric(float64(r.OmegaSlots), metricUnit(r.Workload)+"-omega-slots")
	}
}

// BenchmarkAblationDecomposer compares the exact edge-coloring decomposer
// against greedy first-fit on the evaluation working sets.
func BenchmarkAblationDecomposer(b *testing.B) {
	wls := []*traffic.Workload{
		traffic.OrderedMesh(experiments.N, benchSize, 1),
		traffic.AllToAll(experiments.N, benchSize),
		traffic.Mix(experiments.N, benchSize, 10, 0.8, 0, 1),
	}
	var rows []experiments.DecomposerRow
	for i := 0; i < b.N; i++ {
		rows = experiments.DecomposerComparison(wls)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.ExactConfigs), r.Workload+"-exact")
		b.ReportMetric(float64(r.GreedyConfigs), r.Workload+"-greedy")
	}
}

// benchWorkloadFamily benchmarks one generator family end to end at the
// published scale: build the N=128 workload from its registry spec, then run
// it through dynamic TDM with the paper's time-out predictor. Construction
// is inside the timed loop on purpose — generator cost (RNG draws, phase
// annotation) is part of what these benches track across captures.
func benchWorkloadFamily(b *testing.B, spec string) {
	b.Helper()
	var res Report
	for i := 0; i < b.N; i++ {
		wl, err := GenerateWorkload(spec, experiments.N, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err = Run(Config{Switching: DynamicTDM, N: experiments.N}, wl)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Efficiency, "eff")
	b.ReportMetric(float64(res.Messages), "msgs")
}

// One benchmark per post-seed workload family (same specs as the figures'
// family sweep).
func BenchmarkWorkloadAllReduceRing(b *testing.B) { benchWorkloadFamily(b, "all-reduce:algo=ring") }
func BenchmarkWorkloadAllReduceTree(b *testing.B) { benchWorkloadFamily(b, "all-reduce:algo=tree") }
func BenchmarkWorkloadBroadcast(b *testing.B)     { benchWorkloadFamily(b, "broadcast:msgs=8") }
func BenchmarkWorkloadGather(b *testing.B)        { benchWorkloadFamily(b, "gather:msgs=8") }
func BenchmarkWorkloadPhased(b *testing.B)        { benchWorkloadFamily(b, "phased") }
func BenchmarkWorkloadTiles(b *testing.B)         { benchWorkloadFamily(b, "tiles") }
func BenchmarkWorkloadBursty(b *testing.B)        { benchWorkloadFamily(b, "bursty") }
func BenchmarkWorkloadPermChurn(b *testing.B)     { benchWorkloadFamily(b, "perm-churn") }
func BenchmarkWorkloadIncast(b *testing.B)        { benchWorkloadFamily(b, "incast") }
