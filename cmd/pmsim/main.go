// Command pmsim runs one switching-paradigm simulation over one workload
// and prints its metrics.
//
// Usage:
//
//	pmsim -net tdm-dynamic -pattern random-mesh -n 128 -size 64 -k 4
//	pmsim -net tdm-hybrid -pattern all-reduce:algo=tree -planner solstice
//	pmsim -net wormhole -workload workload.pms
//	pmsim -net tdm-dynamic -pattern perm-churn:rounds=8 -seeds 16 -parallel 8
//	pmsim -net tdm-dynamic -pattern random-mesh -trace run.trace.json
//
// Networks: wormhole, circuit, tdm-dynamic, tdm-preload, tdm-hybrid (and
// more; `pmsim -net list` prints the full vocabulary).
// Patterns come from the shared workload-generator registry: a spec is
// `name[:key=value,...]`, and `pmsim -pattern list` prints every registered
// family with its parameter schema, defaults and description — the one
// authoritative catalog (this header deliberately does not duplicate it).
// Parameters given in the spec win; the classic flags (-size, -msgs,
// -rounds, -determinism, -think) fill in any parameter the spec leaves
// unset, for families that have it.
// Fabrics (TDM modes): crossbar, omega, clos, benes (`pmsim -fabric list`).
// Planners (tdm-preload/tdm-hybrid): static, solstice, bvn
// (`pmsim -planner list`) pick the offline preload planner.
// Schedulers (TDM modes): paper, islip, wavefront (`pmsim -sched list`);
// -shards enables per-leaf sharded scheduling on leafed fabrics and -warm
// enables warm-started incremental scheduling (paper scheduler only) —
// both change wall-clock cost only, never the printed metrics.
//
// Multi-run mode (-seeds N) repeats the pattern at seeds seed..seed+N-1 and
// prints one summary line per seed plus the aggregate. -parallel bounds how
// many of those simulations run concurrently (0 = GOMAXPROCS, 1 = serial);
// output is identical either way, since every run is deterministic and
// results are collected in seed order.
//
// Tracing (-trace FILE) attaches a probe to the run and writes every slot,
// scheduler, connection, message and fault event as Chrome trace-event JSON;
// open the file in Perfetto (ui.perfetto.dev) or chrome://tracing. Tracing
// observes a single run, so it cannot be combined with -seeds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"pmsnet"
)

func main() {
	var (
		netName  = flag.String("net", "tdm-dynamic", "network: wormhole|circuit|voq-islip|tdm-dynamic|tdm-preload|tdm-hybrid|mesh-wormhole|mesh-tdm")
		pattern  = flag.String("pattern", "random-mesh", "workload generator spec name[:key=value,...] ('list' prints the full catalog)")
		workload = flag.String("workload", "", "run a PMSTRACE command file instead of a built-in pattern")
		tracePth = flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to this file")
		n        = flag.Int("n", 128, "processor count")
		size     = flag.Int("size", 64, "message size in bytes (generators with a bytes parameter)")
		msgs     = flag.Int("msgs", 50, "messages per processor (generators with a msgs parameter)")
		rounds   = flag.Int("rounds", 12, "rounds (generators with a rounds parameter)")
		k        = flag.Int("k", 4, "TDM multiplexing degree")
		preload  = flag.Int("preload-slots", 1, "pinned slots (tdm-hybrid)")
		det      = flag.Float64("determinism", 0.85, "statically-known traffic fraction (mix)")
		think    = flag.Duration("think", 150*time.Nanosecond, "compute time between sends (mix)")
		timeout  = flag.Duration("timeout", 500*time.Nanosecond, "eviction timeout (dynamic/hybrid TDM)")
		eviction = flag.String("eviction", "timeout", "eviction policy: reactive|timeout|counter|never|markov")
		amplify  = flag.Int("amplify", 0, "bandwidth-amplification threshold in bytes (0 = off)")
		fabName  = flag.String("fabric", "crossbar", "TDM fabric backend: crossbar|omega|clos|benes ('list' prints the vocabulary)")
		schedNm  = flag.String("sched", "paper", "TDM scheduling algorithm: paper|islip|wavefront ('list' prints the vocabulary)")
		planNm   = flag.String("planner", "static", "preload planner (tdm-preload/tdm-hybrid): static|solstice|bvn ('list' prints the vocabulary)")
		shards   = flag.Int("shards", 0, "per-leaf scheduler shards on leafed fabrics (0 = off; results are identical, only wall-clock changes)")
		warm     = flag.Bool("warm", false, "warm-start incremental scheduling (paper scheduler only; results are identical, only wall-clock changes)")
		hist     = flag.Bool("hist", false, "print the latency histogram")
		faults   = flag.String("faults", "", "fault plan, e.g. 'seed=7,mtbf=1ms,mttr=10us,corrupt=0.001,link=3@50us+20us,xpoint=1:2@80us'")
		seed     = flag.Int64("seed", 1, "workload random seed")
		seeds    = flag.Int("seeds", 1, "multi-run mode: repeat the pattern at this many consecutive seeds")
		parallel = flag.Int("parallel", 0, "concurrent runs in multi-run mode (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	// `-net list` / `-fabric list` / `-sched list` / `-planner list` print
	// the canonical vocabulary, one name per line, and exit — the
	// machine-readable form for scripts. `-pattern list` prints the generator
	// catalog with schemas; its first column is the bare vocabulary.
	if *netName == "list" {
		for _, name := range pmsnet.SwitchingNames() {
			fmt.Println(name)
		}
		return
	}
	if *fabName == "list" {
		for _, name := range pmsnet.FabricNames() {
			fmt.Println(name)
		}
		return
	}
	if *schedNm == "list" {
		for _, name := range pmsnet.SchedulerNames() {
			fmt.Println(name)
		}
		return
	}
	if *planNm == "list" {
		for _, name := range pmsnet.PlannerNames() {
			fmt.Println(name)
		}
		return
	}
	if *pattern == "list" {
		for _, line := range pmsnet.WorkloadUsage() {
			fmt.Println(line)
		}
		return
	}

	var spec *pmsnet.WorkloadSpec
	if *workload == "" {
		var err error
		if spec, err = parsePatternSpec(*pattern, *size, *msgs, *rounds, *det, *think); err != nil {
			fatal(err)
		}
	}

	wl, err := buildWorkload(spec, *workload, *n, *seed)
	if err != nil {
		fatal(err)
	}
	cfg, err := buildConfig(*netName, *eviction, *n, *k, *preload, *timeout)
	if err != nil {
		fatal(err)
	}
	cfg.AmplifyBytes = *amplify
	if cfg.Fabric, err = pmsnet.ParseFabric(*fabName); err != nil {
		fatal(err)
	}
	if cfg.Scheduler, err = pmsnet.ParseScheduler(*schedNm); err != nil {
		fatal(err)
	}
	if cfg.Planner, err = pmsnet.ParsePlanner(*planNm); err != nil {
		fatal(err)
	}
	cfg.SchedShards = *shards
	cfg.SchedWarmStart = *warm
	cfg.Parallelism = *parallel
	if *faults != "" {
		plan, err := pmsnet.ParseFaults(*faults)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = plan
	}

	if *seeds > 1 {
		if *workload != "" {
			fatal(fmt.Errorf("-seeds varies the workload seed and cannot be combined with -workload"))
		}
		if *tracePth != "" {
			fatal(fmt.Errorf("-trace observes a single run and cannot be combined with -seeds"))
		}
		if err := runSeeds(cfg, spec, *n, *seed, *seeds); err != nil {
			fatal(err)
		}
		return
	}

	var traceWriter *pmsnet.TraceWriter
	var traceFile *os.File
	if *tracePth != "" {
		traceFile, err = os.Create(*tracePth)
		if err != nil {
			fatal(err)
		}
		traceWriter = pmsnet.NewTraceWriter(traceFile)
		cfg.Probe = pmsnet.NewProbe(traceWriter)
	}

	rep, err := pmsnet.Run(cfg, wl)
	if err != nil {
		fatal(err)
	}
	if traceWriter != nil {
		if err := traceWriter.Close(); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
		if err := traceFile.Close(); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
		fmt.Fprintf(os.Stderr, "wrote trace to %s (load in ui.perfetto.dev or chrome://tracing)\n", *tracePth)
	}
	fmt.Printf("network:     %s\n", rep.Network)
	fmt.Printf("workload:    %s (%d processors, %d messages, %d bytes)\n",
		rep.Workload, wl.Processors(), rep.Messages, rep.Bytes)
	if s := wl.Spec(); s != "" {
		fmt.Printf("spec:        %s\n", s)
	}
	fmt.Printf("makespan:    %v\n", rep.Makespan)
	fmt.Printf("efficiency:  %.3f\n", rep.Efficiency)
	fmt.Printf("latency:     mean %v  p50 %v  p95 %v  max %v\n",
		rep.LatencyMean, rep.LatencyP50, rep.LatencyP95, rep.LatencyMax)
	if s := rep.Sched; s.Passes > 0 || s.Preloads > 0 {
		fmt.Printf("scheduler:   %d passes, %d established, %d released, %d evicted, %d preloads\n",
			s.Passes, s.Established, s.Released, s.Evictions, s.Preloads)
		fmt.Printf("hit rate:    %.3f\n", rep.HitRate)
		if s.WarmHits+s.WarmMisses > 0 {
			fmt.Printf("warm start:  %d incremental, %d rebuilds, %d rows re-evaluated\n",
				s.WarmHits, s.WarmMisses, s.DirtyRows)
		}
	}
	if p := rep.Plan; p.Planner != "" {
		fmt.Printf("planner:     %s — %d configs in %d groups, %d residual conns, drain estimate %d slots\n",
			p.Planner, p.Configs, p.Groups, p.ResidualConns, p.DrainSlots)
	}
	if f := rep.Faults; f != nil {
		fmt.Printf("faults:      %d link failures (%d repaired), %d dead crosspoints, %d corrupted, %d req lost, %d grants lost\n",
			f.LinkFailures, f.LinkRepairs, f.CrosspointDeaths, f.Corrupted, f.RequestsLost, f.GrantsLost)
		fmt.Printf("recovery:    %d retries, %d reschedules, %d preload fallbacks, %d masked grants\n",
			f.Retries, f.Reschedules, f.PreloadFallbacks, f.MaskedGrants)
		fmt.Printf("accounting:  %d injected = %d delivered + %d dropped; degraded for %v\n",
			f.Injected, f.Delivered, f.Dropped, f.DegradedTime)
	}
	if *hist {
		fmt.Printf("latency histogram:\n%s", rep.LatencyHistogram)
	}
}

// parsePatternSpec parses the -pattern spec and folds the classic workload
// flags in under it: spec parameters win, flags the user actually passed
// fill unset parameters, and everything else takes the family's schema
// defaults. Flags without a matching parameter in the family's schema are
// simply inert, so `-msgs 40` is safe on every pattern.
func parsePatternSpec(pattern string, size, msgs, rounds int, det float64, think time.Duration) (*pmsnet.WorkloadSpec, error) {
	spec, err := pmsnet.ParseWorkloadSpec(pattern)
	if err != nil {
		return nil, err
	}
	overlay := map[string]string{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "size":
			overlay["bytes"] = strconv.Itoa(size)
		case "msgs":
			overlay["msgs"] = strconv.Itoa(msgs)
		case "rounds":
			overlay["rounds"] = strconv.Itoa(rounds)
		case "determinism":
			overlay["determinism"] = strconv.FormatFloat(det, 'g', -1, 64)
		case "think":
			overlay["think"] = think.String()
		}
	})
	for key, value := range overlay {
		if err := spec.Default(key, value); err != nil {
			return nil, err
		}
	}
	return spec, nil
}

// runSeeds is the multi-run mode: the same configuration and pattern at
// `count` consecutive seeds, fanned out through pmsnet.RunMany, with a
// per-seed summary line and the aggregate efficiency statistics.
func runSeeds(cfg pmsnet.Config, spec *pmsnet.WorkloadSpec, n int, seed int64, count int) error {
	wls := make([]*pmsnet.Workload, count)
	for i := range wls {
		wl, err := spec.Generate(n, seed+int64(i))
		if err != nil {
			return err
		}
		wls[i] = wl
	}
	start := time.Now()
	reps, err := pmsnet.RunMany(cfg, wls)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	fmt.Printf("network:     %s\n", reps[0].Network)
	fmt.Printf("workload:    %s x %d seeds (%d..%d)\n", spec, count, seed, seed+int64(count)-1)
	minEff, maxEff, sumEff := reps[0].Efficiency, reps[0].Efficiency, 0.0
	var sumMakespan time.Duration
	for i, rep := range reps {
		fmt.Printf("seed %-6d efficiency %.3f  makespan %-12v p95 %v\n",
			seed+int64(i), rep.Efficiency, rep.Makespan, rep.LatencyP95)
		if rep.Efficiency < minEff {
			minEff = rep.Efficiency
		}
		if rep.Efficiency > maxEff {
			maxEff = rep.Efficiency
		}
		sumEff += rep.Efficiency
		sumMakespan += rep.Makespan
	}
	fmt.Printf("aggregate:   efficiency mean %.3f min %.3f max %.3f  makespan mean %v\n",
		sumEff/float64(count), minEff, maxEff, sumMakespan/time.Duration(count))
	fmt.Fprintf(os.Stderr, "ran %d simulations in %v (parallelism %d)\n", count, wall.Round(time.Millisecond), cfg.Parallelism)
	return nil
}

func buildWorkload(spec *pmsnet.WorkloadSpec, tracePath string, n int, seed int64) (*pmsnet.Workload, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return pmsnet.ReadTrace(f)
	}
	return spec.Generate(n, seed)
}

func buildConfig(netName, eviction string, n, k, preload int, timeout time.Duration) (pmsnet.Config, error) {
	cfg := pmsnet.Config{N: n, K: k, PreloadSlots: preload, EvictionTimeout: timeout}
	var err error
	if cfg.Switching, err = pmsnet.ParseSwitching(netName); err != nil {
		return cfg, err
	}
	if cfg.Eviction, err = pmsnet.ParseEviction(eviction); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmsim:", err)
	os.Exit(1)
}
