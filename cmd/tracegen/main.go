// Command tracegen writes a built-in workload as a PMSTRACE command file —
// the per-processor command-file format the paper's simulator is driven by
// (§5). The output can be edited by hand and replayed with pmsim -workload.
//
// Usage:
//
//	tracegen -pattern two-phase -n 128 -size 64 > twophase.pms
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"pmsnet"
)

func main() {
	var (
		pattern = flag.String("pattern", "two-phase", "workload: scatter|ordered-mesh|random-mesh|all-to-all|two-phase|mix")
		n       = flag.Int("n", 128, "processor count")
		size    = flag.Int("size", 64, "message size in bytes")
		msgs    = flag.Int("msgs", 50, "messages per processor (random-mesh, mix)")
		rounds  = flag.Int("rounds", 12, "rounds (ordered-mesh)")
		det     = flag.Float64("determinism", 0.85, "statically-known fraction (mix)")
		think   = flag.Duration("think", 150*time.Nanosecond, "compute time between sends (mix)")
		seed    = flag.Int64("seed", 1, "workload random seed")
		out     = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()

	var wl *pmsnet.Workload
	switch *pattern {
	case "scatter":
		wl = pmsnet.ScatterWorkload(*n, *size)
	case "ordered-mesh":
		wl = pmsnet.OrderedMesh(*n, *size, *rounds)
	case "random-mesh":
		wl = pmsnet.RandomMesh(*n, *size, *msgs, *seed)
	case "all-to-all":
		wl = pmsnet.AllToAll(*n, *size)
	case "two-phase":
		wl = pmsnet.TwoPhaseWorkload(*n, *size, *seed)
	case "mix":
		wl = pmsnet.MixWorkload(*n, *size, *msgs, *det, *think, *seed)
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := pmsnet.WriteTrace(bw, wl); err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
