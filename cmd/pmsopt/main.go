// Command pmsopt plans preload schedules offline: it turns a demand matrix
// into the configuration groups a Preload/Hybrid TDM run would pin, prints
// the planned schedule, and can A/B the plan against the hand-written static
// preloads in a real simulation.
//
// Demand comes from one of three sources:
//
//	pmsopt -pattern skewed -n 16                demand of a registered generator
//	pmsopt -workload trace.pms                  demand of a PMSTRACE program
//	pmsopt -demand matrix.csv                   an explicit NxN slot matrix
//
// -pattern takes a workload-generator spec `name[:key=value,...]` from the
// same registry as cmd/pmsim; `pmsopt -pattern list` prints the catalog.
//
// With a workload source, planning is per static phase (falling back to the
// compiler's phase analysis via -analyze when the workload carries no
// annotations). -measure replaces the programmed byte counts with demand
// measured by a probed dynamic run — the profile-guided variant.
//
// -compare runs the workload through preload TDM twice, statically chunked
// and planned, and prints both results; -assert-better additionally exits
// non-zero unless the plan strictly improves makespan and efficiency (the
// `make plan-smoke` gate). -o writes the planned schedule as JSON.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pmsnet/internal/compiler"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/plan"
	"pmsnet/internal/probe"
	"pmsnet/internal/tdm"
	"pmsnet/internal/trace"
	"pmsnet/internal/traffic"
)

func main() {
	var (
		planName = flag.String("planner", "solstice", "preload planner: static|solstice|bvn ('list' prints the vocabulary)")
		pattern  = flag.String("pattern", "", "workload generator spec name[:key=value,...] ('list' prints the full catalog)")
		wlPath   = flag.String("workload", "", "plan a PMSTRACE command file")
		dmPath   = flag.String("demand", "", "plan an explicit demand matrix (CSV, one row per source, slots per connection)")
		outPath  = flag.String("o", "", "write the planned schedule as JSON to this file")
		n        = flag.Int("n", 16, "processor count (built-in patterns)")
		size     = flag.Int("size", 64, "message size in bytes (generators with a bytes parameter)")
		msgs     = flag.Int("msgs", 4, "messages per connection (generators with a msgs parameter)")
		rounds   = flag.Int("rounds", 12, "rounds (generators with a rounds parameter)")
		factor   = flag.Int("factor", 8, "hot-shift demand multiplier (skewed)")
		seed     = flag.Int64("seed", 1, "workload random seed")
		k        = flag.Int("k", 4, "TDM multiplexing degree")
		slots    = flag.Int("preload-slots", 0, "pinned slot registers per group (0 = k, pure preload)")
		payload  = flag.Int("payload", 64, "usable payload bytes per slot")
		analyze  = flag.Bool("analyze", false, "discover phases with the compiler analysis instead of workload annotations")
		measure  = flag.Bool("measure", false, "measure demand from a probed dynamic run instead of the programmed byte counts")
		compare  = flag.Bool("compare", false, "simulate static vs planned preloads and print both")
		assert   = flag.Bool("assert-better", false, "with -compare: exit non-zero unless the plan strictly beats static preloads")
	)
	flag.Parse()

	if *planName == "list" {
		for _, name := range plan.Names() {
			fmt.Println(name)
		}
		return
	}
	if *pattern == "list" {
		for _, g := range traffic.Generators() {
			fmt.Printf("%-14s %-42s %s\n", g.Name, g.Schema(), g.Doc)
		}
		return
	}
	kind, err := plan.Parse(*planName)
	if err != nil {
		fatal(err)
	}
	planner := plan.New(kind)
	if *slots == 0 {
		*slots = *k
	}
	if *slots < 0 || *slots > *k {
		fatal(fmt.Errorf("-preload-slots %d must be within [0, k=%d]", *slots, *k))
	}

	// Demand-matrix mode: no workload, no phases, no simulation.
	if *dmPath != "" {
		if *compare || *measure || *analyze {
			fatal(fmt.Errorf("-demand plans a bare matrix; -compare/-measure/-analyze need a workload"))
		}
		d, err := readDemandCSV(*dmPath)
		if err != nil {
			fatal(err)
		}
		sched, err := planner.Plan(d, *k, *slots, planOpts(true))
		if err != nil {
			fatal(err)
		}
		printSchedule(fmt.Sprintf("demand %s", *dmPath), sched)
		writeSchedules(*outPath, []*plan.Schedule{sched})
		return
	}

	wl, err := buildWorkload(*pattern, *wlPath, *n, *size, *msgs, *rounds, *factor, *seed)
	if err != nil {
		fatal(err)
	}
	phases := wl.StaticPhases
	var demands []*plan.Demand
	if *analyze || len(phases) == 0 {
		analyzed, an, err := compiler.Analyze(wl, compiler.Options{PayloadBytes: *payload})
		if err != nil {
			fatal(err)
		}
		wl, phases, demands = analyzed, an.Phases, an.Demands
	} else {
		whole := plan.FromWorkload(wl, *payload)
		for _, phase := range phases {
			demands = append(demands, whole.Restrict(phase))
		}
	}
	if *measure {
		measured, err := measureDemand(wl, *n, *k, *payload)
		if err != nil {
			fatal(err)
		}
		demands = demands[:0]
		for _, phase := range phases {
			demands = append(demands, measured.Restrict(phase))
		}
	}

	var schedules []*plan.Schedule
	for pi, d := range demands {
		sched, err := planner.Plan(d, *k, *slots, planOpts(*slots == *k))
		if err != nil {
			fatal(err)
		}
		printSchedule(fmt.Sprintf("%s phase %d/%d", wl.Name, pi+1, len(demands)), sched)
		schedules = append(schedules, sched)
	}
	writeSchedules(*outPath, schedules)

	if *compare {
		if err := runCompare(wl, planner, *n, *k, *slots, *assert); err != nil {
			fatal(err)
		}
	}
}

// planOpts charges group swaps at the paper control plane's delay in slot
// units (80 ns / 100 ns slots).
func planOpts(coverAll bool) plan.Options {
	return plan.Options{
		ReconfigSlots: float64(link.Paper().ControlDelay()) / 100.0,
		CoverAll:      coverAll,
	}
}

// measureDemand runs the workload through dynamic TDM with a message-creation
// probe and returns the observed per-connection demand in slots — the
// profile-guided alternative to trusting the programmed byte counts.
func measureDemand(wl *traffic.Workload, n, k, payload int) (*plan.Demand, error) {
	sink := &demandSink{d: plan.NewDemand(n), payload: int64(payload)}
	nw, err := tdm.New(tdm.Config{N: n, K: k, Probe: probe.New(sink)})
	if err != nil {
		return nil, err
	}
	if _, err := nw.Run(wl); err != nil {
		return nil, err
	}
	return sink.d, nil
}

// demandSink accumulates MsgCreated events into a slot-unit demand matrix.
type demandSink struct {
	d       *plan.Demand
	payload int64
}

func (s *demandSink) Handle(ev probe.Event) {
	if ev.Kind != probe.MsgCreated {
		return
	}
	slots := (ev.Aux + s.payload - 1) / s.payload
	if slots < 1 {
		slots = 1
	}
	s.d.Add(int(ev.Src), int(ev.Dst), slots)
}

// runCompare simulates the workload under static and planned preloads and
// prints both results; with assert it enforces a strict improvement.
func runCompare(wl *traffic.Workload, planner plan.Planner, n, k, slots int, assert bool) error {
	cfg := tdm.Config{N: n, K: k, Mode: tdm.Preload}
	if slots < k {
		cfg.Mode = tdm.Hybrid
		cfg.PreloadSlots = slots
	}
	static, err := runOnce(cfg, wl)
	if err != nil {
		return fmt.Errorf("static preload: %w", err)
	}
	cfg.Planner = planner
	planned, err := runOnce(cfg, wl)
	if err != nil {
		return fmt.Errorf("%s planner: %w", planner.Name(), err)
	}
	fmt.Printf("\n== static vs %s on %s ==\n", planner.Name(), wl.Name)
	fmt.Printf("%-10s makespan %-12v efficiency %.4f  preloads %d\n",
		"static", static.Makespan, static.Efficiency, static.Stats.Preloads)
	fmt.Printf("%-10s makespan %-12v efficiency %.4f  preloads %d  (%d configs, %d residual conns)\n",
		planner.Name(), planned.Makespan, planned.Efficiency, planned.Stats.Preloads,
		planned.Stats.PlanConfigs, planned.Stats.PlanResidualConns)
	if planned.Makespan < static.Makespan {
		fmt.Printf("plan wins:  makespan -%v (%.1f%%), efficiency +%.4f\n",
			static.Makespan-planned.Makespan,
			100*float64(static.Makespan-planned.Makespan)/float64(static.Makespan),
			planned.Efficiency-static.Efficiency)
	} else {
		fmt.Printf("plan does not improve makespan (+%v)\n", planned.Makespan-static.Makespan)
	}
	if assert && (planned.Makespan >= static.Makespan || planned.Efficiency <= static.Efficiency) {
		return fmt.Errorf("plan did not strictly beat the static preloads")
	}
	return nil
}

func runOnce(cfg tdm.Config, wl *traffic.Workload) (metrics.Result, error) {
	nw, err := tdm.New(cfg)
	if err != nil {
		return metrics.Result{}, err
	}
	return nw.Run(wl)
}

// printSchedule renders one phase's plan.
func printSchedule(title string, s *plan.Schedule) {
	fmt.Printf("== %s: %s plan (k=%d, %d pinned) ==\n", title, s.Planner, s.K, s.PreloadSlots)
	fmt.Printf("%d configurations in %d groups, drain estimate %.1f slots (%d reconfigurations)\n",
		s.NumConfigs(), len(s.Groups), s.DrainSlots, s.Reconfigs)
	for gi, g := range s.Groups {
		var parts []string
		for _, e := range g {
			parts = append(parts, fmt.Sprintf("%d conns x%d (demand %d)", e.Config.Count(), e.Share, e.Demand))
		}
		fmt.Printf("  group %d: %s\n", gi, strings.Join(parts, ", "))
	}
	if rc := s.Residual.Conns(); rc > 0 {
		fmt.Printf("  residual: %d connections, %d slots ride the dynamic path\n", rc, s.Residual.Total())
	}
}

// scheduleJSON is the -o serialization: groups of configurations as
// connection lists with their register shares.
type scheduleJSON struct {
	Planner      string      `json:"planner"`
	K            int         `json:"k"`
	PreloadSlots int         `json:"preload_slots"`
	DrainSlots   float64     `json:"drain_slots"`
	Groups       [][]entryJS `json:"groups"`
	Residual     []connJS    `json:"residual,omitempty"`
}

type entryJS struct {
	Share  int      `json:"share"`
	Demand int64    `json:"demand"`
	Conns  []connJS `json:"conns"`
}

type connJS struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	W   int64 `json:"w,omitempty"`
}

func writeSchedules(path string, scheds []*plan.Schedule) {
	if path == "" {
		return
	}
	out := make([]scheduleJSON, len(scheds))
	for i, s := range scheds {
		js := scheduleJSON{Planner: s.Planner, K: s.K, PreloadSlots: s.PreloadSlots, DrainSlots: s.DrainSlots}
		for _, g := range s.Groups {
			var eg []entryJS
			for _, e := range g {
				ej := entryJS{Share: e.Share, Demand: e.Demand}
				e.Config.Ones(func(u, v int) bool {
					ej.Conns = append(ej.Conns, connJS{Src: u, Dst: v})
					return true
				})
				eg = append(eg, ej)
			}
			js.Groups = append(js.Groups, eg)
		}
		for _, c := range s.Residual.WorkingSet().Conns() {
			js.Residual = append(js.Residual, connJS{Src: c.Src, Dst: c.Dst, W: s.Residual.At(c.Src, c.Dst)})
		}
		out[i] = js
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d planned phase(s) to %s\n", len(out), path)
}

// buildWorkload resolves the demand workload: a PMSTRACE file, or a
// generator spec from the shared registry. Spec parameters win; the classic
// flags (-size, -msgs, -rounds, -factor) fill parameters the spec leaves
// unset, when the user passed them and the family has them.
func buildWorkload(pattern, tracePath string, n, size, msgs, rounds, factor int, seed int64) (*traffic.Workload, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	if pattern == "" {
		return nil, fmt.Errorf("pick a demand source: -pattern, -workload or -demand")
	}
	spec, err := traffic.ParseSpec(pattern)
	if err != nil {
		return nil, err
	}
	overlay := map[string]string{}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "size":
			overlay["bytes"] = strconv.Itoa(size)
		case "msgs":
			overlay["msgs"] = strconv.Itoa(msgs)
		case "rounds":
			overlay["rounds"] = strconv.Itoa(rounds)
		case "factor":
			overlay["factor"] = strconv.Itoa(factor)
		}
	})
	for key, value := range overlay {
		if err := spec.Default(key, value); err != nil {
			return nil, err
		}
	}
	return spec.Generate(n, seed)
}

// readDemandCSV parses an NxN comma-separated integer matrix.
func readDemandCSV(path string) (*plan.Demand, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]int64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var row []int64
		for _, cell := range strings.Split(line, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: row %d: %w", path, len(rows)+1, err)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: empty demand matrix", path)
	}
	d := plan.NewDemand(len(rows))
	for u, row := range rows {
		if len(row) != len(rows) {
			return nil, fmt.Errorf("%s: row %d has %d columns, want %d", path, u+1, len(row), len(rows))
		}
		for v, w := range row {
			if w < 0 {
				return nil, fmt.Errorf("%s: negative demand at (%d,%d)", path, u, v)
			}
			if w > 0 {
				if u == v {
					return nil, fmt.Errorf("%s: self-loop demand at (%d,%d)", path, u, v)
				}
				d.Set(u, v, w)
			}
		}
	}
	return d, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmsopt:", err)
	os.Exit(1)
}
