// Command benchjson converts `go test -bench` output into machine-readable
// JSON. It reads the benchmark output on stdin, echoes every line to stdout
// unchanged (so it can sit at the end of a pipe without hiding progress), and
// writes a JSON document mapping each benchmark to its iteration count and
// metrics — ns/op, B/op, allocs/op and any custom units reported with
// b.ReportMetric, such as the figure harnesses' per-network efficiencies.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_1.json
//
// With -compare BASELINE.json it additionally diffs the fresh run against a
// previously captured JSON document, printing one line per shared benchmark
// and watched metric with its percent delta and an ok/improved/REGRESSION
// verdict, and exits non-zero when any benchmark regressed by more than
// -threshold percent (default 20) in ns/op or allocs/op — the regression
// gate behind `make bench-compare`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped, so keys stay stable across machines.
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value: "ns/op", "B/op", "allocs/op" and any
	// custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write JSON here (default stdout, after the echoed input)")
	compareWith := flag.String("compare", "", "baseline JSON to diff the fresh run against")
	threshold := flag.Float64("threshold", 20, "regression threshold in percent for -compare")
	metrics := flag.String("metrics", "ns/op,allocs/op",
		"comma-separated metric units the -compare gate watches (allocs/op alone suits short-benchtime smoke runs)")
	flag.Parse()
	comparedMetrics = strings.Split(*metrics, ",")

	benches, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if *out != "" || *compareWith == "" {
		doc, err := json.MarshalIndent(map[string]any{"benchmarks": benches}, "", "  ")
		if err != nil {
			fatal(err)
		}
		doc = append(doc, '\n')
		if *out == "" {
			os.Stdout.Write(doc)
		} else {
			if err := os.WriteFile(*out, doc, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %d benchmarks to %s\n", len(benches), *out)
		}
	}
	if *compareWith != "" {
		baseline, err := loadBaseline(*compareWith)
		if err != nil {
			fatal(err)
		}
		regressions := compare(baseline, benches, *threshold, os.Stderr)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %g%% vs %s\n",
				regressions, *threshold, *compareWith)
			os.Exit(1)
		}
	}
}

// loadBaseline reads a JSON document previously written by benchjson.
func loadBaseline(path string) ([]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks []Benchmark `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.Benchmarks, nil
}

// comparedMetrics are the units the regression gate watches (-metrics
// overrides). Custom ReportMetric units (efficiencies) are figures, not
// costs, so they are reported informally but never gate.
var comparedMetrics = []string{"ns/op", "allocs/op"}

// compare diffs the fresh run against the baseline: every shared benchmark
// gets one line per watched metric with its percent delta and a verdict —
// "ok" within the threshold, "improved" below it, "REGRESSION" above it.
// It returns the number of regressed (benchmark, metric) pairs. Benchmarks
// present on only one side are noted but never count as regressions —
// renames and new benchmarks must not break the gate.
func compare(baseline, fresh []Benchmark, threshold float64, w io.Writer) int {
	base := make(map[string]Benchmark, len(baseline))
	for _, b := range baseline {
		base[b.Name] = b
	}
	regressions := 0
	shared := 0
	for _, f := range fresh {
		b, ok := base[f.Name]
		if !ok {
			fmt.Fprintf(w, "  new: %s (not in baseline)\n", f.Name)
			continue
		}
		shared++
		delete(base, f.Name)
		for _, unit := range comparedMetrics {
			old, haveOld := b.Metrics[unit]
			now, haveNow := f.Metrics[unit]
			if !haveOld || !haveNow {
				continue
			}
			pct := deltaPercent(old, now)
			verdict := "ok"
			switch {
			case pct > threshold:
				regressions++
				verdict = "REGRESSION"
			case pct < -threshold:
				verdict = "improved"
			}
			fmt.Fprintf(w, "  %-10s %s %s: %s -> %s (%+.1f%%)\n",
				verdict, f.Name, unit, fmtNum(old), fmtNum(now), pct)
		}
	}
	for name := range base {
		fmt.Fprintf(w, "  gone: %s (baseline only)\n", name)
	}
	fmt.Fprintf(w, "compared %d shared benchmarks, %d regression(s)\n", shared, regressions)
	return regressions
}

// fmtNum renders a metric value without scientific notation: integral
// values as plain integers, fractional ones with two decimals.
func fmtNum(v float64) string {
	if v == math.Trunc(v) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// deltaPercent returns the relative growth from old to now in percent. A
// zero baseline only regresses when the fresh value is non-zero (reported as
// +Inf%); 0 -> 0 is unchanged.
func deltaPercent(old, now float64) float64 {
	if old == 0 {
		if now == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (now - old) / old * 100
}

// parse scans `go test -bench` output, copying every line to echo and
// collecting the result lines. A result line is
//
//	BenchmarkName-8   1234   56.7 ns/op   0 B/op   0 allocs/op   0.95 some-eff
//
// i.e. name, iteration count, then (value, unit) pairs. Non-benchmark lines
// (table logs, PASS/ok, compile noise) are passed through untouched.
func parse(r io.Reader, echo io.Writer) ([]Benchmark, error) {
	var benches []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if b, ok := parseLine(line); ok {
			benches = append(benches, b)
		}
	}
	return benches, sc.Err()
}

func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Shortest real result line: name, iterations, value, unit.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: stripProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// stripProcs removes the trailing -N GOMAXPROCS suffix the testing package
// appends to benchmark names.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
