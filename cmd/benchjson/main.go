// Command benchjson converts `go test -bench` output into machine-readable
// JSON. It reads the benchmark output on stdin, echoes every line to stdout
// unchanged (so it can sit at the end of a pipe without hiding progress), and
// writes a JSON document mapping each benchmark to its iteration count and
// metrics — ns/op, B/op, allocs/op and any custom units reported with
// b.ReportMetric, such as the figure harnesses' per-network efficiencies.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped, so keys stay stable across machines.
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit → value: "ns/op", "B/op", "allocs/op" and any
	// custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "", "write JSON here (default stdout, after the echoed input)")
	flag.Parse()

	benches, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fatal(err)
	}
	doc, err := json.MarshalIndent(map[string]any{"benchmarks": benches}, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d benchmarks to %s\n", len(benches), *out)
}

// parse scans `go test -bench` output, copying every line to echo and
// collecting the result lines. A result line is
//
//	BenchmarkName-8   1234   56.7 ns/op   0 B/op   0 allocs/op   0.95 some-eff
//
// i.e. name, iteration count, then (value, unit) pairs. Non-benchmark lines
// (table logs, PASS/ok, compile noise) are passed through untouched.
func parse(r io.Reader, echo io.Writer) ([]Benchmark, error) {
	var benches []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		if b, ok := parseLine(line); ok {
			benches = append(benches, b)
		}
	}
	return benches, sc.Err()
}

func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Shortest real result line: name, iterations, value, unit.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: stripProcs(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// stripProcs removes the trailing -N GOMAXPROCS suffix the testing package
// appends to benchmark names.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
