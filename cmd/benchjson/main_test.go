package main

import (
	"math"
	"os"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
BenchmarkEngineScheduleFire-8   	41821126	        28.31 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig5Hybrid-8   	       1	  12345678 ns/op	         0.950 k=1-eff	         0.870 k=2-eff
Benchmark output that is not a result line
PASS
ok  	pmsnet	1.234s
`
	var echoed strings.Builder
	benches, err := parse(strings.NewReader(in), &echoed)
	if err != nil {
		t.Fatal(err)
	}
	if echoed.String() != in {
		t.Error("input was not echoed verbatim")
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	eng := benches[0]
	if eng.Name != "BenchmarkEngineScheduleFire" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", eng.Name)
	}
	if eng.Iterations != 41821126 {
		t.Errorf("iterations = %d", eng.Iterations)
	}
	if eng.Metrics["ns/op"] != 28.31 || eng.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", eng.Metrics)
	}
	fig5 := benches[1]
	if fig5.Metrics["k=1-eff"] != 0.95 || fig5.Metrics["k=2-eff"] != 0.87 {
		t.Errorf("custom ReportMetric units not parsed: %v", fig5.Metrics)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := []Benchmark{
		{Name: "BenchmarkFast", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 10}},
		{Name: "BenchmarkSteady", Metrics: map[string]float64{"ns/op": 200, "allocs/op": 4}},
		{Name: "BenchmarkRemoved", Metrics: map[string]float64{"ns/op": 50}},
	}
	fresh := []Benchmark{
		// 50% slower and 2x the allocations: two regressed metrics.
		{Name: "BenchmarkFast", Metrics: map[string]float64{"ns/op": 150, "allocs/op": 20}},
		// Within the 20% threshold either way.
		{Name: "BenchmarkSteady", Metrics: map[string]float64{"ns/op": 230, "allocs/op": 4}},
		// Not in the baseline: must not count as a regression.
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 1e9}},
	}
	var report strings.Builder
	if got := compare(baseline, fresh, 20, &report); got != 2 {
		t.Fatalf("compare returned %d regressions, want 2\nreport:\n%s", got, report.String())
	}
	out := report.String()
	for _, want := range []string{
		"REGRESSION BenchmarkFast ns/op",
		"REGRESSION BenchmarkFast allocs/op",
		"new: BenchmarkNew",
		"gone: BenchmarkRemoved",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Within-threshold drift still gets its delta line, tagged ok.
	if !strings.Contains(out, "ok         BenchmarkSteady ns/op: 200 -> 230 (+15.0%)") {
		t.Errorf("within-threshold delta not reported with an ok verdict:\n%s", out)
	}
}

func TestCompareImprovementsDoNotGate(t *testing.T) {
	baseline := []Benchmark{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 100}},
	}
	fresh := []Benchmark{
		{Name: "BenchmarkHot", Metrics: map[string]float64{"ns/op": 400, "allocs/op": 0}},
	}
	var report strings.Builder
	if got := compare(baseline, fresh, 20, &report); got != 0 {
		t.Fatalf("improvement counted as regression (%d)\n%s", got, report.String())
	}
	if !strings.Contains(report.String(), "improved") {
		t.Errorf("improvement not reported:\n%s", report.String())
	}
}

func TestDeltaPercentZeroBaseline(t *testing.T) {
	if d := deltaPercent(0, 0); d != 0 {
		t.Errorf("0 -> 0 = %v, want 0", d)
	}
	if d := deltaPercent(0, 5); !math.IsInf(d, 1) {
		t.Errorf("0 -> 5 = %v, want +Inf", d)
	}
	// A zero-alloc benchmark that starts allocating must gate at any
	// threshold.
	base := []Benchmark{{Name: "BenchmarkZeroAlloc", Metrics: map[string]float64{"allocs/op": 0}}}
	fresh := []Benchmark{{Name: "BenchmarkZeroAlloc", Metrics: map[string]float64{"allocs/op": 1}}}
	var report strings.Builder
	if got := compare(base, fresh, 20, &report); got != 1 {
		t.Fatalf("0 -> 1 allocs/op not flagged\n%s", report.String())
	}
}

func TestLoadBaselineRoundTrip(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	doc := `{"benchmarks":[{"name":"BenchmarkX","iterations":7,"metrics":{"ns/op":42}}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	benches, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 1 || benches[0].Name != "BenchmarkX" || benches[0].Metrics["ns/op"] != 42 {
		t.Fatalf("loadBaseline = %+v", benches)
	}
	if _, err := loadBaseline(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing baseline file did not error")
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOddFieldCount-8 100 5.0 ns/op trailing",
		"BenchmarkNoIterations-8 fast 5.0 ns/op",
		"BenchmarkTooShort-8 100",
		"not a benchmark at all",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted malformed input", line)
		}
	}
}
