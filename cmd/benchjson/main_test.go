package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
BenchmarkEngineScheduleFire-8   	41821126	        28.31 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig5Hybrid-8   	       1	  12345678 ns/op	         0.950 k=1-eff	         0.870 k=2-eff
Benchmark output that is not a result line
PASS
ok  	pmsnet	1.234s
`
	var echoed strings.Builder
	benches, err := parse(strings.NewReader(in), &echoed)
	if err != nil {
		t.Fatal(err)
	}
	if echoed.String() != in {
		t.Error("input was not echoed verbatim")
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	eng := benches[0]
	if eng.Name != "BenchmarkEngineScheduleFire" {
		t.Errorf("name = %q (GOMAXPROCS suffix should be stripped)", eng.Name)
	}
	if eng.Iterations != 41821126 {
		t.Errorf("iterations = %d", eng.Iterations)
	}
	if eng.Metrics["ns/op"] != 28.31 || eng.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", eng.Metrics)
	}
	fig5 := benches[1]
	if fig5.Metrics["k=1-eff"] != 0.95 || fig5.Metrics["k=2-eff"] != 0.87 {
		t.Errorf("custom ReportMetric units not parsed: %v", fig5.Metrics)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkOddFieldCount-8 100 5.0 ns/op trailing",
		"BenchmarkNoIterations-8 fast 5.0 ns/op",
		"BenchmarkTooShort-8 100",
		"not a benchmark at all",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted malformed input", line)
		}
	}
}
