// Command figures regenerates the paper's evaluation artifacts as text
// tables: the four panels of Figure 4 (link efficiency vs message size for
// wormhole, circuit switching, dynamic TDM and preload TDM), Figure 5
// (preload/dynamic slot splits vs traffic determinism), Table 3 (scheduler
// latency vs system size), and the ablation studies.
//
// Usage:
//
//	figures            # everything
//	figures -fig4      # only Figure 4 (all four panels)
//	figures -fig5      # only Figure 5
//	figures -table3    # only Table 3
//	figures -ablations # only the ablations
//	figures -faults    # only the fault-injection robustness sweep
//	figures -workloads # only the workload-family studies (ROADMAP item 4)
//	figures -quick     # reduced size sweep for a fast look
//	figures -j 8       # run up to 8 simulations in parallel
//	figures -timeline -net tdm-dynamic   # slot-utilization/backlog timeline
//
// Parallel runs (-j, default GOMAXPROCS; -j 1 forces serial) produce
// byte-identical tables: every simulation is a pure function of its inputs
// and the sweep harness collects results by point index. -progress writes
// per-point completion lines (with wall times) to stderr, leaving stdout as
// table output only.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pmsnet"
	"pmsnet/internal/experiments"
	"pmsnet/internal/runner"
	"pmsnet/internal/traffic"
)

func main() {
	var (
		fig4      = flag.Bool("fig4", false, "regenerate Figure 4")
		fig5      = flag.Bool("fig5", false, "regenerate Figure 5")
		table3    = flag.Bool("table3", false, "regenerate Table 3")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		faults    = flag.Bool("faults", false, "run the fault-injection robustness sweep")
		workloads = flag.Bool("workloads", false, "run the workload-family studies (collectives, phased, adversarial)")
		quick     = flag.Bool("quick", false, "reduced sweeps for a fast look")
		csvDir    = flag.String("csv", "", "also write figure data as CSV files into this directory")
		seed      = flag.Int64("seed", 1, "workload random seed")
		jobs      = flag.Int("j", 0, "parallel simulation runs (0 = GOMAXPROCS, 1 = serial)")
		progress  = flag.Bool("progress", false, "report per-point completion and wall time on stderr")
		timeline  = flag.Bool("timeline", false, "print a slot-utilization/queue-depth timeline of one run (probed)")
		netName   = flag.String("net", "tdm-dynamic", "network for -timeline (see pmsim -net)")
		interval  = flag.Duration("interval", time.Microsecond, "bucket width for -timeline")
	)
	flag.Parse()

	if *timeline {
		if err := runTimeline(*netName, *interval, *seed); err != nil {
			fatal(err)
		}
		return
	}
	all := !*fig4 && !*fig5 && !*table3 && !*ablations && !*faults && !*workloads

	ex := experiments.Exec{Parallelism: *jobs}
	if *progress {
		ex.OnPoint = func(p runner.Point) {
			fmt.Fprintf(os.Stderr, "point %d done in %v\n", p.Index, p.Wall)
		}
	}

	if all || *table3 {
		rows := experiments.Table3(0)
		fmt.Println(experiments.Table3Table(rows))
		if *csvDir != "" {
			writeCSV(*csvDir, "table3.csv", func(f *os.File) error {
				return experiments.Table3CSV(f, rows)
			})
		}
	}
	if all || *fig4 {
		sizes := experiments.Fig4Sizes()
		if *quick {
			sizes = []int{8, 64, 512}
		}
		for _, panel := range experiments.Panels() {
			rows, err := experiments.Fig4PanelExec(ex, panel, experiments.N, sizes, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Println(experiments.Fig4Table(panel, rows))
			if *csvDir != "" {
				writeCSV(*csvDir, fmt.Sprintf("fig4_%s.csv", panel), func(f *os.File) error {
					return experiments.Fig4CSV(f, rows)
				})
			}
		}
	}
	if all || *fig5 {
		dets := experiments.Fig5Determinism()
		if *quick {
			dets = []float64{0.5, 0.85, 1.0}
		}
		rows, err := experiments.Fig5Exec(ex, experiments.N, dets, 7)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.Fig5Table(rows))
		if *csvDir != "" {
			writeCSV(*csvDir, "fig5.csv", func(f *os.File) error {
				return experiments.Fig5CSV(f, rows)
			})
		}
	}
	if all || *ablations {
		runAblations(ex, *seed)
	}
	if all || *faults {
		n := experiments.N
		levels := experiments.FaultLevels()
		if *quick {
			levels = levels[:3]
		}
		rows, err := experiments.FaultSweepExec(ex, n, traffic.MustGenerate("random-mesh", n, *seed), levels)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.FaultTable(rows))
	}
	if all || *workloads {
		runWorkloadStudies(ex, *seed)
	}
}

// runWorkloadStudies prints the ROADMAP item-4 workload-family studies: the
// per-family regime sweep, the phased-program planner demonstration, and the
// adversarial sched-cache study.
func runWorkloadStudies(ex experiments.Exec, seed int64) {
	n := experiments.N

	fam, err := experiments.FamilySweepExec(ex, n, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Workload families: reactive dynamic TDM vs Solstice-planned hybrid", fam))

	st, err := experiments.PhasedPlannerStudyExec(ex, n, "phased", seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.PhasedStudyTable(st))

	adv, err := experiments.AdversarySweepExec(ex, n, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AdversaryTable(n, adv))
}

// Ablation workloads are built through the generator registry (the same
// vocabulary as pmsim -pattern); family defaults match the published
// configuration, so only deviations appear in the specs.
func runAblations(ex experiments.Exec, seed int64) {
	n := experiments.N
	mesh := traffic.MustGenerate("random-mesh", n, seed)

	pred, err := experiments.PredictorAblationExec(ex, n, mesh)
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Ablation: eviction predictors (random mesh, 64B)", pred))

	deg, err := experiments.DegreeSweepExec(ex, n, []int{1, 2, 4, 8, 16}, mesh)
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Ablation: multiplexing degree K (random mesh, 64B)", deg))

	degSparse, err := experiments.DegreeSweepExec(ex, n, []int{1, 2, 3, 4, 8},
		traffic.MustGenerate("mix:msgs=40,determinism=1", n, 7))
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Ablation: multiplexing degree K (sparse deterministic, degree-2 working set)", degSparse))

	rot, err := experiments.RotationAblationExec(ex, n, mesh)
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Ablation: priority rotation (random mesh, 64B)", rot))

	skip, err := experiments.SkipEmptyAblationExec(ex, n, 8, traffic.MustGenerate("ordered-mesh", n, seed))
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Ablation: TDM-counter empty-slot skipping (ordered mesh, K=8)", skip))

	sl, err := experiments.SLCopiesSweepExec(ex, n, []int{1, 2, 4}, traffic.MustGenerate("all-to-all", n, seed))
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Ablation: scheduling-logic copies (all-to-all, 64B)", sl))

	dec := experiments.DecomposerComparison([]*traffic.Workload{
		traffic.MustGenerate("ordered-mesh:rounds=1", n, seed),
		traffic.MustGenerate("all-to-all", n, seed),
		traffic.MustGenerate("mix:msgs=10,determinism=0.8,think=0s", n, seed),
	})
	fmt.Println("== Ablation: preload decomposer (exact edge coloring vs greedy first-fit) ==")
	fmt.Printf("%-22s %-8s %-14s %-14s\n", "workload", "degree", "exact configs", "greedy configs")
	for _, d := range dec {
		fmt.Printf("%-22s %-8d %-14d %-14d\n", d.Workload, d.Degree, d.ExactConfigs, d.GreedyConfigs)
	}
	fmt.Println()

	amp, err := experiments.AmplifyAblationExec(ex, n, traffic.MustGenerate("hotspot", n, seed))
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Extension 2: bandwidth amplification (hotspot)", amp))

	pre, err := experiments.PrefetchAblationExec(ex, n, experiments.CyclicWorkload(n, 8, 8, 1200))
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Prefetching predictor (cyclic traffic, 1.2us gaps)", pre))

	pay, err := experiments.PayloadSweepExec(ex, n, []int{32, 48, 64, 72, 80}, traffic.MustGenerate("ordered-mesh", n, seed))
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Slot payload (guard-band complement) sweep", pay))

	fab, err := experiments.FabricComparisonExec(ex, n, []*traffic.Workload{
		traffic.MustGenerate("ordered-mesh:rounds=1", n, seed),
		traffic.MustGenerate("all-to-all", n, seed),
		traffic.MustGenerate("random-mesh:msgs=10", n, seed),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.FabricTable(fab))

	omega, err := experiments.OmegaFabricStudyExec(ex, n, []*traffic.Workload{
		traffic.MustGenerate("shift", n, seed),
		traffic.MustGenerate("bit-reverse", n, seed),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Omega fabric vs crossbar (structured permutations)", omega))

	backends, err := experiments.FabricBackendSweepExec(ex, n, 64, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Fabric backends under dynamic TDM (paper patterns)", backends))

	scheds, err := experiments.SchedulerSweepExec(ex, n, 64, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Matching algorithms under dynamic TDM (paper patterns)", scheds))

	planners, err := experiments.PlannerSweepExec(ex, n, experiments.PlannerDemandWorkloads(n, 64))
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable("Preload planners vs reactive TDM (skewed/sparse demand)", planners))

	for _, wl := range []*traffic.Workload{
		traffic.MustGenerate("random-mesh", n, seed),
		traffic.MustGenerate("ordered-mesh", n, seed),
	} {
		mb, err := experiments.ModernBaselineExec(ex, n, wl)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.AblationTable(
			fmt.Sprintf("Beyond the paper: iSLIP VOQ switch vs PMS (%s)", wl.Name), mb))
	}

	// The transpose permutation needs a square grid; run it on 100 routers
	// (10x10) next to the 128-processor ordered mesh.
	mh, err := experiments.MultiHopStudyExec(ex, n, []*traffic.Workload{
		traffic.MustGenerate("ordered-mesh", n, seed),
	})
	if err != nil {
		fatal(err)
	}
	transpose := traffic.MustGenerate("transpose", 100, seed)
	mh2, err := experiments.MultiHopStudyExec(ex, 100, []*traffic.Workload{
		transpose,
		experiments.SparsePermutation(transpose, 2000),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiments.AblationTable(
		"Multi-hop mesh: wormhole routers vs end-to-end TDM circuits", append(mh, mh2...)))
}

// runTimeline runs one probed random-mesh simulation and prints the sampled
// slot-utilization and queue-depth curves — the timeline view of a run that
// the aggregate tables flatten away.
func runTimeline(netName string, interval time.Duration, seed int64) error {
	sw, err := pmsnet.ParseSwitching(netName)
	if err != nil {
		return err
	}
	n := experiments.N
	wl := pmsnet.RandomMesh(n, 64, experiments.MeshMsgs, seed)
	tl := pmsnet.NewTimelineSink(interval)
	cfg := pmsnet.Config{Switching: sw, N: n, Probe: pmsnet.NewProbe(tl)}
	rep, err := pmsnet.Run(cfg, wl)
	if err != nil {
		return err
	}
	fmt.Printf("== Timeline: %s on random mesh (%d processors, %v buckets) ==\n",
		rep.Network, n, interval)
	fmt.Printf("%-10s %-7s %-7s %-6s %-22s %-8s %-9s %s\n",
		"t", "slots", "used", "util", "", "created", "delivered", "backlog")
	for _, s := range tl.Samples() {
		bar := strings.Repeat("#", int(s.Utilization*20+0.5))
		fmt.Printf("%-10v %-7d %-7d %-6.3f %-22s %-8d %-9d %d\n",
			time.Duration(s.Start), s.Slots, s.SlotsUsed, s.Utilization,
			"|"+bar+strings.Repeat(".", 20-len(bar))+"|", s.Created, s.Delivered, s.MaxDepth)
	}
	fmt.Printf("\nmakespan %v  efficiency %.3f  (%d messages)\n", rep.Makespan, rep.Efficiency, rep.Messages)
	return nil
}

func writeCSV(dir, name string, write func(*os.File) error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
