// Command tracecheck validates a Chrome trace-event JSON file produced by
// pmsim -trace: the file must parse as a JSON array of event objects, every
// event needs the required trace-format fields, and the trace must actually
// cover the simulation (scheduler, connection and message events present).
// It is the CI trace-smoke gate.
//
// Usage:
//
//	tracecheck run.trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) != 2 {
		fatal(fmt.Errorf("usage: tracecheck FILE"))
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		fatal(fmt.Errorf("%s: not a JSON array of events: %w", os.Args[1], err))
	}
	cats := map[string]int{}
	for i, ev := range events {
		ph, ok := ev["ph"].(string)
		if !ok || ph == "" {
			fatal(fmt.Errorf("event %d: missing ph: %v", i, ev))
		}
		if _, ok := ev["name"].(string); !ok {
			fatal(fmt.Errorf("event %d: missing name: %v", i, ev))
		}
		if _, ok := ev["pid"]; !ok {
			fatal(fmt.Errorf("event %d: missing pid: %v", i, ev))
		}
		if _, ok := ev["ts"]; !ok && ph != "M" {
			fatal(fmt.Errorf("event %d: missing ts: %v", i, ev))
		}
		if c, ok := ev["cat"].(string); ok {
			cats[c]++
		}
	}
	for _, cat := range []string{"sched", "conn", "msg"} {
		if cats[cat] == 0 {
			fatal(fmt.Errorf("%s: no %q events (cats: %v)", os.Args[1], cat, cats))
		}
	}
	fmt.Printf("%s: %d events ok (%v)\n", os.Args[1], len(events), cats)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecheck:", err)
	os.Exit(1)
}
