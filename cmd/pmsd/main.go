// Command pmsd is the long-lived simulation service: an HTTP/JSON server
// that accepts pmsnet simulation jobs, executes them on a bounded worker
// pool, and degrades gracefully under overload instead of falling over.
//
// Usage:
//
//	pmsd -addr :8080 -workers 4 -queue 64
//	pmsd -addr 127.0.0.1:0            # ephemeral port, printed on stdout
//
// API:
//
//	POST   /jobs              submit a job (JSON spec); ?wait=1 blocks for the result
//	GET    /jobs/{id}         job status (state, timings, result when done)
//	GET    /jobs/{id}/result  raw result payload (byte-identical across cached replays)
//	DELETE /jobs/{id}         cancel a queued or running job
//	GET    /healthz           liveness (always 200 while the process serves)
//	GET    /readyz            readiness (503 while draining)
//	GET    /metrics           JSON counters: queue depth, wait/run times, cache hit rate
//
// Robustness envelope: jobs are validated at admission (400), refused with
// 429 + Retry-After when the bounded queue is full, bounded by per-job
// deadlines (504), isolated from panics (500 with the stack, the pool
// self-heals), and deduplicated through a deterministic result cache keyed
// on (config hash, workload hash) — simulations are bit-reproducible, so a
// cache hit is byte-identical to a fresh run. SIGINT/SIGTERM triggers a
// graceful drain: admission stops, in-flight jobs get -drain to finish,
// stragglers are cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmsnet/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; :0 picks an ephemeral port)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "job queue capacity; beyond it submissions get 429")
		deadline = flag.Duration("deadline", 30*time.Second, "default per-job deadline")
		maxDl    = flag.Duration("max-deadline", 2*time.Minute, "cap on spec-requested per-job deadlines")
		cache    = flag.Int("cache", 1024, "result cache size in entries (negative disables)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
		retry    = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		testPat  = flag.Bool("test-patterns", false, "enable the 'panic' and 'sleep' test workload patterns (CI smoke only)")
		quiet    = flag.Bool("quiet", false, "suppress per-job log lines")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "pmsd: ", log.LstdFlags|log.Lmicroseconds)
	svcLog := logger
	if *quiet {
		svcLog = nil
	}
	srv := service.New(service.Config{
		QueueCapacity:   *queue,
		Workers:         *workers,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDl,
		CacheSize:       *cache,
		RetryAfter:      *retry,
		TestPatterns:    *testPat,
		Log:             svcLog,
	})

	bound, errc, err := srv.Start(*addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	// The bound address goes to stdout so scripts (make service-smoke) can
	// capture it even with -addr :0.
	fmt.Println(bound)
	logger.Printf("serving on %s (workers %d, queue %d, deadline %v)", bound, *workers, *queue, *deadline)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("%s: draining (deadline %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Printf("drain incomplete: %v", err)
			os.Exit(1)
		}
		logger.Printf("drained; bye")
	case err := <-errc:
		if err != nil {
			logger.Fatalf("serve: %v", err)
		}
	}
}
