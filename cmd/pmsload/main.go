// Command pmsload is the ramping load harness for pmsd: it schedules job
// submissions at a cadence that grows every interval (5 rps, then 10, then
// 15, ...), pushes them through an executor pool, and aggregates latency
// percentiles and success/failure counts, so saturation behavior —
// sustained throughput, 429 backpressure, client backoff and recovery — is
// demonstrable and regression-gateable.
//
// Usage:
//
//	pmsload -addr http://127.0.0.1:8080 -duration 10s -start-rps 5 -growth 5
//	pmsload -addr ... -assert-429 -assert-max-5xx 0    # CI smoke gating
//
// The client honors backpressure the way a well-behaved production client
// should: a 429 or 503 response is retried after max(Retry-After, current
// backoff) plus jitter, with the backoff doubling per attempt up to a cap.
// Every other non-2xx is terminal for that request. With -panic-probe the
// harness first submits one job with the "panic" test pattern (the server
// must run with -test-patterns) and expects exactly the one 500 it
// produces; that 500 is excluded from the -assert-max-5xx gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "pmsd base URL")
		duration  = flag.Duration("duration", 10*time.Second, "total ramp duration")
		startRPS  = flag.Int("start-rps", 5, "submissions per second in the first interval")
		growth    = flag.Int("growth", 5, "submissions per second added each interval")
		interval  = flag.Duration("interval", time.Second, "ramp interval: cadence grows by -growth each one")
		executors = flag.Int("executors", 32, "executor pool size (max in-flight requests)")
		retries   = flag.Int("retries", 5, "max retries per request on 429/503/transport errors")
		backoff   = flag.Duration("backoff", 50*time.Millisecond, "initial retry backoff (doubles per attempt, jittered)")
		backCap   = flag.Duration("backoff-cap", 2*time.Second, "retry backoff cap")
		seedJit   = flag.Int64("seed", 1, "RNG seed for backoff jitter and workload seed spread")
		spread    = flag.Int64("seed-spread", 64, "cycle job workload seeds over this many values (1 = identical jobs, all cache hits)")
		simN      = flag.Int("n", 16, "simulated processor count per job")
		simMsgs   = flag.Int("msgs", 10, "messages per processor per job")
		simSize   = flag.Int("size", 64, "message size in bytes per job")
		network   = flag.String("net", "tdm-dynamic", "switching paradigm for the jobs")
		pattern   = flag.String("pattern", "random-mesh", "workload pattern for the jobs")
		jobDl     = flag.Int64("job-deadline-ms", 0, "per-job deadline_ms in the spec (0 = server default)")
		panicPrb  = flag.Bool("panic-probe", false, "first submit one 'panic' test job and require the isolated 500")
		assert429 = flag.Bool("assert-429", false, "exit nonzero unless the ramp provoked at least one 429")
		assertMax = flag.Int("assert-max-5xx", -1, "exit nonzero if unexpected 5xx responses exceed this (-1 disables)")
		assertOK  = flag.Float64("assert-success-min", 0, "exit nonzero if the success fraction falls below this")
		jsonOut   = flag.Bool("json", false, "emit the final summary as JSON")
	)
	flag.Parse()

	client := &http.Client{Timeout: 60 * time.Second}
	agg := newAggregator()

	if *panicPrb {
		probePanic(client, *addr, agg)
	}

	// The scheduler pushes one token per planned submission into a deep
	// buffer; executors drain it. A full buffer means the executor pool
	// itself is saturated — those submissions are counted as shed, not
	// silently skipped.
	work := make(chan int64, 4096)
	var shed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < *executors; w++ {
		wg.Add(1)
		rng := rand.New(rand.NewSource(*seedJit + int64(w)))
		go func() {
			defer wg.Done()
			for seq := range work {
				runOne(client, *addr, jobSpec(*network, *pattern, *simN, *simSize, *simMsgs, 1+seq%*spread, *jobDl),
					rng, *retries, *backoff, *backCap, agg)
			}
		}()
	}

	// Cadence-ramped scheduler: interval k targets startRPS + k*growth
	// submissions, spaced evenly inside the interval.
	start := time.Now()
	var seq int64
	for k := 0; time.Since(start) < *duration; k++ {
		target := *startRPS + k**growth
		if target < 1 {
			target = 1
		}
		gap := *interval / time.Duration(target)
		intervalEnd := start.Add(time.Duration(k+1) * *interval)
		for i := 0; i < target && time.Since(start) < *duration; i++ {
			select {
			case work <- seq:
			default:
				shed.Add(1)
			}
			seq++
			time.Sleep(gap)
		}
		if d := time.Until(intervalEnd); d > 0 {
			time.Sleep(d)
		}
		fmt.Fprintf(os.Stderr, "pmsload: interval %d done: target %d rps, sent %d, ok %d, 429s %d\n",
			k, target, seq, agg.ok.Load(), agg.status429.Load())
	}
	// The ramp is over: tokens no executor has claimed yet are shed, not
	// executed — otherwise a deeply saturated run would tail off for as
	// long again as the ramp itself. In-flight requests still finish
	// (bounded by one retry budget each).
drain:
	for {
		select {
		case <-work:
			shed.Add(1)
		default:
			break drain
		}
	}
	close(work)
	wg.Wait()

	s := agg.summary(time.Since(start), shed.Load())
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	} else {
		s.print(os.Stdout)
	}

	fail := false
	if *assert429 && s.Responses429 == 0 {
		fmt.Fprintln(os.Stderr, "pmsload: ASSERT FAILED: ramp never provoked a 429 — backpressure untested")
		fail = true
	}
	if *assertMax >= 0 && s.Unexpected5xx > *assertMax {
		fmt.Fprintf(os.Stderr, "pmsload: ASSERT FAILED: %d unexpected 5xx responses (allowed %d)\n", s.Unexpected5xx, *assertMax)
		fail = true
	}
	if *assertOK > 0 && s.SuccessRate < *assertOK {
		fmt.Fprintf(os.Stderr, "pmsload: ASSERT FAILED: success rate %.3f below %.3f\n", s.SuccessRate, *assertOK)
		fail = true
	}
	if *panicPrb && !agg.panicProbeOK.Load() {
		fmt.Fprintln(os.Stderr, "pmsload: ASSERT FAILED: panic probe did not return an isolated 500")
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// jobSpec builds the submission body; seeds cycle so the ramp exercises
// real simulations instead of pure cache hits (seed-spread 1 flips that,
// making the ramp a cache stress test instead).
func jobSpec(network, pattern string, n, size, msgs int, seed int64, deadlineMS int64) []byte {
	spec := map[string]any{
		"config":   map[string]any{"switching": network, "n": n},
		"workload": map[string]any{"pattern": pattern, "size": size, "msgs": msgs, "seed": seed},
	}
	if deadlineMS > 0 {
		spec["deadline_ms"] = deadlineMS
	}
	b, _ := json.Marshal(spec)
	return b
}

// runOne drives one logical submission through retries to a terminal
// outcome and reports it to the aggregator. End-to-end latency includes
// backoff waits: under saturation that is the latency a real client
// experiences.
func runOne(client *http.Client, addr string, body []byte, rng *rand.Rand,
	retries int, backoff, backoffCap time.Duration, agg *aggregator) {
	start := time.Now()
	wait := backoff
	var lastStatus int
	for attempt := 0; ; attempt++ {
		status, retryAfter, err := postJob(client, addr, body)
		switch {
		case err == nil && status == http.StatusOK:
			agg.success(time.Since(start), attempt)
			return
		case err == nil && (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable):
			agg.backpressured(status)
		case err == nil:
			// 4xx/5xx outside the backpressure protocol: terminal.
			agg.failure(status, time.Since(start))
			return
		default:
			agg.transportError()
		}
		if err == nil {
			lastStatus = status
		}
		if attempt >= retries {
			agg.exhausted(lastStatus, time.Since(start))
			return
		}
		// Jittered exponential backoff, floored by the server's
		// Retry-After hint when one was sent.
		sleep := wait
		if retryAfter > sleep {
			sleep = retryAfter
		}
		sleep += time.Duration(rng.Int63n(int64(wait)/2 + 1))
		time.Sleep(sleep)
		if wait *= 2; wait > backoffCap {
			wait = backoffCap
		}
	}
}

// postJob performs one synchronous submission attempt.
func postJob(client *http.Client, addr string, body []byte) (status int, retryAfter time.Duration, err error) {
	resp, err := client.Post(addr+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, perr := strconv.Atoi(ra); perr == nil {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, nil
}

// probePanic submits the single expected-to-crash job and records whether
// the server isolated it into exactly one 500.
func probePanic(client *http.Client, addr string, agg *aggregator) {
	body := []byte(`{"config":{"switching":"tdm-dynamic","n":4},"workload":{"pattern":"panic"}}`)
	status, _, err := postJob(client, addr, body)
	if err == nil && status == http.StatusInternalServerError {
		agg.panicProbeOK.Store(true)
		agg.expected5xx.Add(1)
		fmt.Fprintln(os.Stderr, "pmsload: panic probe isolated correctly (500, server survived)")
		return
	}
	fmt.Fprintf(os.Stderr, "pmsload: panic probe got status %d err %v, want 500\n", status, err)
}

// aggregator collects results from all executors.
type aggregator struct {
	ok           atomic.Uint64
	failures     atomic.Uint64
	exhaustedN   atomic.Uint64
	status429    atomic.Uint64
	status503    atomic.Uint64
	transport    atomic.Uint64
	retriesTotal atomic.Uint64
	expected5xx  atomic.Uint64
	panicProbeOK atomic.Bool

	mu        sync.Mutex
	latencies []time.Duration
	statuses  map[int]uint64
}

func newAggregator() *aggregator {
	return &aggregator{statuses: make(map[int]uint64)}
}

func (a *aggregator) success(lat time.Duration, attempts int) {
	a.ok.Add(1)
	a.retriesTotal.Add(uint64(attempts))
	a.mu.Lock()
	a.latencies = append(a.latencies, lat)
	a.mu.Unlock()
}

func (a *aggregator) backpressured(status int) {
	if status == http.StatusTooManyRequests {
		a.status429.Add(1)
	} else {
		a.status503.Add(1)
	}
}

func (a *aggregator) failure(status int, _ time.Duration) {
	a.failures.Add(1)
	a.mu.Lock()
	a.statuses[status]++
	a.mu.Unlock()
}

func (a *aggregator) exhausted(lastStatus int, _ time.Duration) {
	a.exhaustedN.Add(1)
	a.mu.Lock()
	a.statuses[lastStatus]++
	a.mu.Unlock()
}

func (a *aggregator) transportError() { a.transport.Add(1) }

// Summary is the final report, printable or JSON.
type Summary struct {
	Duration      string         `json:"duration"`
	Submitted     uint64         `json:"submitted"`
	Succeeded     uint64         `json:"succeeded"`
	Failed        uint64         `json:"failed"`
	Exhausted     uint64         `json:"exhausted_retries"`
	Shed          uint64         `json:"shed_client_side"`
	SuccessRate   float64        `json:"success_rate"`
	Throughput    float64        `json:"throughput_rps"`
	Responses429  uint64         `json:"responses_429"`
	Responses503  uint64         `json:"responses_503"`
	Transport     uint64         `json:"transport_errors"`
	Retries       uint64         `json:"retries"`
	Unexpected5xx int            `json:"unexpected_5xx"`
	StatusCounts  map[int]uint64 `json:"terminal_status_counts"`
	P50MS         float64        `json:"latency_p50_ms"`
	P95MS         float64        `json:"latency_p95_ms"`
	P99MS         float64        `json:"latency_p99_ms"`
	MaxMS         float64        `json:"latency_max_ms"`
}

func (a *aggregator) summary(elapsed time.Duration, shed uint64) Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	sort.Slice(a.latencies, func(i, j int) bool { return a.latencies[i] < a.latencies[j] })
	pct := func(p float64) float64 {
		if len(a.latencies) == 0 {
			return 0
		}
		idx := int(p * float64(len(a.latencies)-1))
		return float64(a.latencies[idx]) / 1e6
	}
	ok := a.ok.Load()
	failed := a.failures.Load() + a.exhaustedN.Load()
	total := ok + failed
	var unexpected int
	for status, n := range a.statuses {
		if status >= 500 {
			unexpected += int(n)
		}
	}
	unexpected -= int(a.expected5xx.Load())
	if unexpected < 0 {
		unexpected = 0
	}
	s := Summary{
		Duration:      elapsed.Round(time.Millisecond).String(),
		Submitted:     total,
		Succeeded:     ok,
		Failed:        a.failures.Load(),
		Exhausted:     a.exhaustedN.Load(),
		Shed:          shed,
		Responses429:  a.status429.Load(),
		Responses503:  a.status503.Load(),
		Transport:     a.transport.Load(),
		Retries:       a.retriesTotal.Load(),
		Unexpected5xx: unexpected,
		StatusCounts:  a.statuses,
		P50MS:         pct(0.50),
		P95MS:         pct(0.95),
		P99MS:         pct(0.99),
		MaxMS:         pct(1.0),
	}
	if total > 0 {
		s.SuccessRate = float64(ok) / float64(total)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		s.Throughput = float64(ok) / secs
	}
	return s
}

func (s Summary) print(w io.Writer) {
	fmt.Fprintf(w, "duration:    %s\n", s.Duration)
	fmt.Fprintf(w, "submitted:   %d (shed client-side: %d)\n", s.Submitted, s.Shed)
	fmt.Fprintf(w, "succeeded:   %d (%.1f%%, %.1f jobs/s sustained)\n", s.Succeeded, 100*s.SuccessRate, s.Throughput)
	fmt.Fprintf(w, "failed:      %d terminal, %d retries exhausted\n", s.Failed, s.Exhausted)
	fmt.Fprintf(w, "backpressure: %d x 429, %d x 503, %d retries, %d transport errors\n",
		s.Responses429, s.Responses503, s.Retries, s.Transport)
	fmt.Fprintf(w, "latency:     p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms\n",
		s.P50MS, s.P95MS, s.P99MS, s.MaxMS)
	if len(s.StatusCounts) > 0 {
		fmt.Fprintf(w, "terminal statuses: %v\n", s.StatusCounts)
	}
	fmt.Fprintf(w, "unexpected 5xx: %d\n", s.Unexpected5xx)
}
