# Everything is standard-library Go; no tools beyond the toolchain.

GO ?= go

.PHONY: all build test check vet race fuzz figures clean

all: build test

# Tier-1: the build-and-test gate every change must keep green.
build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Stricter CI tier: static analysis plus the race detector.
check: vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Short fuzzing passes over the text-format parsers.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzRead -fuzztime=30s ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzPlan -fuzztime=30s ./internal/fault/

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
