# Everything is standard-library Go; no tools beyond the toolchain.

GO ?= go

.PHONY: all build test check vet race fuzz bench bench-compare trace-smoke figures clean

all: build test

# Tier-1: the build-and-test gate every change must keep green.
build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Stricter CI tier: static analysis plus the race detector.
check: vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full benchmark suite with allocation stats, captured as machine-readable
# JSON (name -> iterations, ns/op, allocs/op and custom metrics) alongside
# the usual text output. The default 1s benchtime gives the engine
# microbenches real iteration counts (the harness benches exceed it in one
# iteration and run once either way); BENCHTIME=1x does a fastest-possible
# smoke pass.
BENCHTIME ?= 1s
# BENCHOUT is where the fresh capture lands; BENCH_1.json is the committed
# pre-optimization baseline and stays untouched so runs can diff against it.
BENCHOUT ?= BENCH_2.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -o $(BENCHOUT)

# Regression gate: rerun the suite and fail if any benchmark got more than
# 20% worse than the baseline in ns/op or allocs/op.
BASELINE ?= BENCH_1.json
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -compare $(BASELINE)

# End-to-end trace check: run a small probed simulation through pmsim
# -trace and make sure the output parses as a Chrome trace-event JSON array
# with a sane event count.
trace-smoke:
	$(GO) run ./cmd/pmsim -net tdm-dynamic -pattern random-mesh -n 16 -msgs 10 \
		-trace /tmp/pmsnet-trace-smoke.json > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/pmsnet-trace-smoke.json

# Short fuzzing passes over the text-format parsers.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzRead -fuzztime=30s ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzPlan -fuzztime=30s ./internal/fault/

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
