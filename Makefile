# Everything is standard-library Go; no tools beyond the toolchain.

GO ?= go

.PHONY: all build test check vet race fuzz bench bench-compare trace-smoke service-smoke plan-smoke workload-smoke figures clean

all: build test

# Tier-1: the build-and-test gate every change must keep green.
build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Stricter CI tier: static analysis plus the race detector.
check: vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full benchmark suite with allocation stats, captured as machine-readable
# JSON (name -> iterations, ns/op, allocs/op and custom metrics) alongside
# the usual text output. The default 1s benchtime gives the engine
# microbenches real iteration counts (the harness benches exceed it in one
# iteration and run once either way); BENCHTIME=1x does a fastest-possible
# smoke pass.
BENCHTIME ?= 1s
# BENCHOUT is where the fresh capture lands. The committed captures are
# historical baselines and stay untouched so runs can diff against them:
# BENCH_1.json (pre-optimization), BENCH_2.json (post-optimization), and
# BENCH_3.json (after the control-plane/fabric-backend refactor).
BENCHOUT ?= BENCH_NEW.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -o $(BENCHOUT)

# Regression gate: rerun the suite and fail if any benchmark got more than
# 20% worse than the baseline in the gated metrics. BENCH_2.json is the
# most recent pre-refactor capture. Timing needs the full BENCHTIME to be
# meaningful; BENCHMETRICS=allocs/op gates allocations alone, which are
# deterministic even at short benchtimes (CI's smoke setting).
BASELINE ?= BENCH_2.json
BENCHMETRICS ?= ns/op,allocs/op
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -metrics '$(BENCHMETRICS)' -compare $(BASELINE)

# End-to-end trace check: run a small probed simulation through pmsim
# -trace and make sure the output parses as a Chrome trace-event JSON array
# with a sane event count.
trace-smoke:
	$(GO) run ./cmd/pmsim -net tdm-dynamic -pattern random-mesh -n 16 -msgs 10 \
		-trace /tmp/pmsnet-trace-smoke.json > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/pmsnet-trace-smoke.json

# End-to-end service check: start pmsd with a deliberately tiny queue, ramp
# pmsload well past saturation, and assert the degradation contract — the
# server sheds load with 429 + Retry-After (nonzero 429s), never returns a
# 5xx other than the injected panic probe, and the client still lands a
# healthy fraction of jobs by backing off. pmsd binds :0 and prints the
# bound address on stdout, so no fixed port is needed.
service-smoke:
	$(GO) build -o /tmp/pmsd-smoke ./cmd/pmsd
	$(GO) build -o /tmp/pmsload-smoke ./cmd/pmsload
	@set -u; \
	/tmp/pmsd-smoke -addr 127.0.0.1:0 -workers 2 -queue 8 -test-patterns -quiet \
		> /tmp/pmsd-smoke.addr 2> /tmp/pmsd-smoke.log & \
	pmsd_pid=$$!; \
	for i in $$(seq 1 50); do [ -s /tmp/pmsd-smoke.addr ] && break; sleep 0.1; done; \
	addr=$$(head -n 1 /tmp/pmsd-smoke.addr); \
	if [ -z "$$addr" ]; then echo "pmsd did not start:"; cat /tmp/pmsd-smoke.log; \
		kill $$pmsd_pid 2>/dev/null; exit 1; fi; \
	status=0; \
	/tmp/pmsload-smoke -addr "http://$$addr" \
		-duration 5s -start-rps 15 -growth 25 -executors 64 \
		-retries 3 -backoff-cap 500ms \
		-n 64 -size 256 -msgs 200 -seed-spread 1000 \
		-panic-probe -assert-429 -assert-max-5xx 0 -assert-success-min 0.3 \
		|| status=$$?; \
	kill -TERM $$pmsd_pid 2>/dev/null; \
	wait $$pmsd_pid || { echo "pmsd exited nonzero; log:"; cat /tmp/pmsd-smoke.log; \
		[ $$status -eq 0 ] && status=1; }; \
	exit $$status

# End-to-end planner check: plan a skewed demand workload with the Solstice
# planner, run the plan and the hand-chunked static preloads through the
# same preload TDM simulation, and fail unless the plan strictly wins on
# both makespan and efficiency.
plan-smoke:
	$(GO) run ./cmd/pmsopt -planner solstice -pattern skewed -n 16 \
		-compare -assert-better > /dev/null
	$(GO) run ./cmd/pmsopt -planner bvn -pattern skewed -n 16 \
		-o /tmp/pmsnet-plan-smoke.json > /dev/null
	@test -s /tmp/pmsnet-plan-smoke.json

# Workload-registry gate: every registered generator family runs under both
# dynamic and hybrid TDM with the race detector on. New families cannot land
# without passing this.
workload-smoke:
	$(GO) test -race -run TestWorkloadSmoke -count=1 .

# Short fuzzing passes over the text-format parsers, the workload-spec
# grammar, the scheduling-pass cache, the sparse/dense bitmat parity, and
# the Clos spine router.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzWorkloadSpec -fuzztime=30s ./internal/traffic/
	$(GO) test -run=NONE -fuzz=FuzzRead -fuzztime=30s ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzPlan -fuzztime=30s ./internal/fault/
	$(GO) test -run=NONE -fuzz=FuzzSchedCache -fuzztime=30s ./internal/core/
	$(GO) test -run=NONE -fuzz=FuzzSparseParity -fuzztime=30s ./internal/bitmat/
	$(GO) test -run=NONE -fuzz=FuzzWarmStartParity -fuzztime=30s ./internal/core/
	$(GO) test -run=NONE -fuzz=FuzzClosRoute -fuzztime=30s ./internal/multistage/
	$(GO) test -run=NONE -fuzz=FuzzDecompose -fuzztime=30s ./internal/multistage/

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
