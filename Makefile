# Everything is standard-library Go; no tools beyond the toolchain.

GO ?= go

.PHONY: all build test check vet race fuzz bench bench-compare trace-smoke figures clean

all: build test

# Tier-1: the build-and-test gate every change must keep green.
build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Stricter CI tier: static analysis plus the race detector.
check: vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full benchmark suite with allocation stats, captured as machine-readable
# JSON (name -> iterations, ns/op, allocs/op and custom metrics) alongside
# the usual text output. The default 1s benchtime gives the engine
# microbenches real iteration counts (the harness benches exceed it in one
# iteration and run once either way); BENCHTIME=1x does a fastest-possible
# smoke pass.
BENCHTIME ?= 1s
# BENCHOUT is where the fresh capture lands. The committed captures are
# historical baselines and stay untouched so runs can diff against them:
# BENCH_1.json (pre-optimization), BENCH_2.json (post-optimization), and
# BENCH_3.json (after the control-plane/fabric-backend refactor).
BENCHOUT ?= BENCH_NEW.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -o $(BENCHOUT)

# Regression gate: rerun the suite and fail if any benchmark got more than
# 20% worse than the baseline in the gated metrics. BENCH_2.json is the
# most recent pre-refactor capture. Timing needs the full BENCHTIME to be
# meaningful; BENCHMETRICS=allocs/op gates allocations alone, which are
# deterministic even at short benchtimes (CI's smoke setting).
BASELINE ?= BENCH_2.json
BENCHMETRICS ?= ns/op,allocs/op
bench-compare:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -metrics '$(BENCHMETRICS)' -compare $(BASELINE)

# End-to-end trace check: run a small probed simulation through pmsim
# -trace and make sure the output parses as a Chrome trace-event JSON array
# with a sane event count.
trace-smoke:
	$(GO) run ./cmd/pmsim -net tdm-dynamic -pattern random-mesh -n 16 -msgs 10 \
		-trace /tmp/pmsnet-trace-smoke.json > /dev/null
	$(GO) run ./cmd/tracecheck /tmp/pmsnet-trace-smoke.json

# Short fuzzing passes over the text-format parsers, the scheduling-pass
# cache, and the Clos spine router.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzRead -fuzztime=30s ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzPlan -fuzztime=30s ./internal/fault/
	$(GO) test -run=NONE -fuzz=FuzzSchedCache -fuzztime=30s ./internal/core/
	$(GO) test -run=NONE -fuzz=FuzzClosRoute -fuzztime=30s ./internal/multistage/

figures:
	$(GO) run ./cmd/figures

clean:
	$(GO) clean ./...
