// hybrid demonstrates predictive communication with partial compile-time
// knowledge (paper §3.3 and Figure 5): a fraction of each processor's
// messages goes to two fixed favored destinations a compiler can preload,
// the rest is data-dependent.
//
// The switch runs with a multiplexing degree of three; k slots are pinned
// with the favored permutations and 3−k slots schedule the random remainder
// reactively. Sweeping the deterministic fraction shows where giving slots
// to the preloaded pattern wins.
//
// Run with:
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"time"

	"pmsnet"
)

func main() {
	const (
		n    = 128
		k    = 3
		msgs = 40
	)
	fmt.Printf("hybrid preload+dynamic switch, %d processors, K=%d\n\n", n, k)
	fmt.Printf("%-14s %-12s %-12s %-12s\n", "determinism", "0p+3d", "1p+2d", "2p+1d")

	for _, det := range []float64{0.5, 0.7, 0.85, 0.95, 1.0} {
		workload := pmsnet.MixWorkload(n, 64, msgs, det, 150*time.Nanosecond, 7)
		fmt.Printf("%-14.0f", det*100)
		for preloaded := 0; preloaded <= 2; preloaded++ {
			report, err := pmsnet.Run(pmsnet.Config{
				Switching:       pmsnet.HybridTDM,
				N:               n,
				K:               k,
				PreloadSlots:    preloaded,
				Eviction:        pmsnet.TimeoutEviction,
				EvictionTimeout: 250 * time.Nanosecond,
			}, workload)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-12.3f", report.Efficiency)
		}
		fmt.Println()
	}

	fmt.Println("\nPreloading one favored permutation pays off even when only half the")
	fmt.Println("traffic is predictable; pinning both only wins once ~85% of the traffic")
	fmt.Println("follows the static pattern — the paper's argument for predictive")
	fmt.Println("communication with a high-accuracy predictor.")
}
