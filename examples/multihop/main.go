// multihop tests the paper's concluding claim on a 10x10 router mesh: "the
// advantages of our approach are expected to be amplified when multi-hop
// networks are considered since it avoids buffering at intermediate
// switches."
//
// Every processor streams matrix-transpose traffic (long XY paths, up to 18
// hops corner-to-corner). The wormhole mesh deserializes, arbitrates,
// switches and reserializes every worm at every router; the TDM mesh
// reserves whole link-disjoint paths per slot and passes intermediate LVDS
// switches in the analog domain. Two regimes are shown: saturated streaming
// (throughput view) and light-load long-haul messages (latency view).
//
// Run with:
//
//	go run ./examples/multihop
package main

import (
	"fmt"
	"log"

	"pmsnet"
)

const n = 100 // 10x10 router grid

func run(sw pmsnet.Switching, wl *pmsnet.Workload) pmsnet.Report {
	rep, err := pmsnet.Run(pmsnet.Config{Switching: sw, N: n, K: 4}, wl)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	saturated := pmsnet.TransposeWorkload(n, 64, 40)

	fmt.Println("saturated transpose (throughput view):")
	for _, sw := range []pmsnet.Switching{pmsnet.MeshWormhole, pmsnet.MeshTDM} {
		rep := run(sw, saturated)
		fmt.Printf("  %-14s efficiency %.3f  mean latency %v\n",
			rep.Network, rep.Efficiency, rep.LatencyMean)
	}

	fmt.Println("\nlight load, one long-haul message per processor (latency view):")
	single := pmsnet.ShiftWorkload(n, 64, 1, n/2+5) // long fixed-offset paths
	for _, sw := range []pmsnet.Switching{pmsnet.MeshWormhole, pmsnet.MeshTDM} {
		rep := run(sw, single)
		fmt.Printf("  %-14s p50 latency %v  max %v\n", rep.Network, rep.LatencyP50, rep.LatencyMax)
	}

	fmt.Println("\nWormhole pays ~100ns of serdes+arbitration per hop; the end-to-end")
	fmt.Println("TDM circuit pays only the 20ns wire per hop once established, at the")
	fmt.Println("price of reserving the whole path for its slot. Light, long-haul")
	fmt.Println("traffic favors circuits; saturated bisection traffic favors wormhole.")
}
