// compiled demonstrates the compile-/load-time communication analysis
// (paper §3.1/§3.3) on an unannotated program: a raw message trace is
// analyzed into phases, the discovered working sets are handed to the
// preload controller, and the result is compared against running blind.
//
// This is the paper's "compiled communication" workflow end to end: the
// analyzer plays the compiler, the preload controller plays the network's
// configuration registers, and the FLUSH directives it inserts keep the
// dynamic scheduler from mispredicting across phase boundaries.
//
// Run with:
//
//	go run ./examples/compiled
package main

import (
	"fmt"
	"log"

	"pmsnet"
)

func main() {
	const n = 128

	// A raw trace with two hidden communication phases (a global exchange,
	// then local traffic) and no annotations at all — what a plain MPI
	// trace would look like.
	raw := pmsnet.TwoPhaseWorkload(n, 64, 11)
	// AnalyzeWorkload first strips any existing annotations, so this is
	// exactly the "raw trace in, compiled knowledge out" path.
	annotated, phases, err := pmsnet.AnalyzeWorkload(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzer found %d communication phases in the raw trace\n\n", phases)

	// Dynamic switching needs no annotations; preload needs the analyzer.
	dynamic, err := pmsnet.Run(pmsnet.Config{
		Switching: pmsnet.DynamicTDM, N: n, K: 4, Eviction: pmsnet.TimeoutEviction,
	}, raw)
	if err != nil {
		log.Fatal(err)
	}
	preload, err := pmsnet.Run(pmsnet.Config{
		Switching: pmsnet.PreloadTDM, N: n, K: 4,
	}, annotated)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-34s efficiency %.3f  makespan %v\n", "dynamic TDM (no analysis)", dynamic.Efficiency, dynamic.Makespan)
	fmt.Printf("%-34s efficiency %.3f  makespan %v  (%d configuration loads)\n",
		"preload TDM (analyzed trace)", preload.Efficiency, preload.Makespan, preload.Sched.Preloads)

	fmt.Println("\nThe analyzer recovered the phase structure from destination-diversity")
	fmt.Println("regime changes alone, emitted each phase's working set for the preload")
	fmt.Println("controller, and inserted the compiler's FLUSH directives between phases.")
}
