// meshapp simulates the communication phase of an iterative 2-D stencil
// solver (the workload class the paper's introduction motivates: NAS-style
// codes with small, static communication working sets).
//
// Each iteration every processor exchanges halo regions with its four mesh
// neighbors; the halo width — and therefore the message size — is swept to
// show where each switching paradigm pays off. The stencil's communication
// pattern is fully known at compile time, so the preloaded switch runs it
// without any run-time scheduling at all.
//
// Run with:
//
//	go run ./examples/meshapp
package main

import (
	"fmt"
	"log"

	"pmsnet"
)

const (
	processors = 128
	iterations = 10
)

func main() {
	fmt.Printf("2-D stencil halo exchange on %d processors, %d iterations\n\n", processors, iterations)
	fmt.Printf("%-12s %-12s %-12s %-12s %-12s\n", "halo bytes", "wormhole", "circuit", "dynamic-tdm", "preload-tdm")

	for _, halo := range []int{32, 64, 256, 1024} {
		// One ordered neighbor round per iteration.
		workload := pmsnet.OrderedMesh(processors, halo, iterations)
		fmt.Printf("%-12d", halo)
		for _, cfg := range []pmsnet.Config{
			{Switching: pmsnet.Wormhole, N: processors},
			{Switching: pmsnet.CircuitSwitching, N: processors},
			{Switching: pmsnet.DynamicTDM, N: processors, K: 4, Eviction: pmsnet.TimeoutEviction},
			{Switching: pmsnet.PreloadTDM, N: processors, K: 4},
		} {
			report, err := pmsnet.Run(cfg, workload)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-12.3f", report.Efficiency)
		}
		fmt.Println()
	}

	fmt.Println("\nThe nearest-neighbor working set has degree 4, so a multiplexing")
	fmt.Println("degree of 4 caches it completely: the TDM switch never tears a")
	fmt.Println("stencil circuit down between iterations, while wormhole re-arbitrates")
	fmt.Println("every worm and circuit switching rebuilds every circuit.")
}
