// twophase demonstrates compiler-assisted reconfiguration (paper §3.3) on a
// program with two communication phases: a global all-to-all (e.g. an FFT
// transpose) followed by local nearest-neighbor exchanges.
//
// The compiler emits a FLUSH directive between the phases so the dynamic
// scheduler does not mispredict the second phase from the first, and it
// hands both phases' working sets to the preload controller. The example
// compares the dynamic switch, the preloaded switch, and the baselines on
// the same program, then saves the program as a PMSTRACE command file.
//
// Run with:
//
//	go run ./examples/twophase
package main

import (
	"fmt"
	"log"
	"os"

	"pmsnet"
)

func main() {
	const n = 128
	workload := pmsnet.TwoPhaseWorkload(n, 64, 42)
	fmt.Printf("two-phase program: %d messages, %d bytes total\n\n",
		workload.Messages(), workload.TotalBytes())

	for _, cfg := range []pmsnet.Config{
		{Switching: pmsnet.Wormhole, N: n},
		{Switching: pmsnet.CircuitSwitching, N: n},
		{Switching: pmsnet.DynamicTDM, N: n, K: 4, Eviction: pmsnet.TimeoutEviction},
		{Switching: pmsnet.PreloadTDM, N: n, K: 4},
	} {
		report, err := pmsnet.Run(cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s efficiency %.3f  makespan %-10v  preloads %d\n",
			report.Network, report.Efficiency, report.Makespan, report.Sched.Preloads)
	}

	// Persist the program as a command file for pmsim -workload.
	f, err := os.CreateTemp("", "twophase-*.pms")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := pmsnet.WriteTrace(f, workload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommand file written to %s (replay with: go run ./cmd/pmsim -workload %s -net tdm-preload)\n",
		f.Name(), f.Name())

	fmt.Println("\nThe all-to-all working set (127 permutations) dwarfs the 4-slot cache,")
	fmt.Println("so the dynamic scheduler thrashes; the preload controller instead sweeps")
	fmt.Println("the compiler's decomposed configurations through the slots and swaps to")
	fmt.Println("the nearest-neighbor set when the second phase's traffic takes over.")
}
