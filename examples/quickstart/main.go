// Quickstart: simulate one workload on the predictive multiplexed switch
// and on the wormhole baseline, and compare their link efficiency.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pmsnet"
)

func main() {
	// A 128-processor machine exchanging 64-byte messages with its 2-D mesh
	// neighbors in a fixed, compiler-visible order — the paper's Ordered
	// Mesh pattern.
	workload := pmsnet.OrderedMesh(128, 64, 10)

	for _, cfg := range []pmsnet.Config{
		{Switching: pmsnet.Wormhole, N: 128},
		{Switching: pmsnet.DynamicTDM, N: 128, K: 4, Eviction: pmsnet.TimeoutEviction},
		{Switching: pmsnet.PreloadTDM, N: 128, K: 4},
	} {
		report, err := pmsnet.Run(cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s efficiency %.3f  makespan %-10v  p95 latency %v\n",
			report.Network, report.Efficiency, report.Makespan, report.LatencyP95)
	}
	fmt.Println("\nThe preloaded switch caches the whole nearest-neighbor working set")
	fmt.Println("in its four TDM slots, so every message finds its circuit established.")
}
