package pmsnet

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSwitchingParseRoundTrip(t *testing.T) {
	for _, s := range []Switching{
		Wormhole, CircuitSwitching, DynamicTDM, PreloadTDM, HybridTDM,
		VOQISLIP, MeshWormhole, MeshTDM,
	} {
		got, err := ParseSwitching(s.String())
		if err != nil {
			t.Fatalf("ParseSwitching(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseSwitching(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if _, err := ParseSwitching("crossbar"); err == nil {
		t.Fatal("ParseSwitching should reject unknown names")
	} else {
		for _, name := range SwitchingNames() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error %q should list valid name %q", err, name)
			}
		}
	}
}

func TestEvictionParseRoundTrip(t *testing.T) {
	for _, p := range []EvictionPolicy{
		ReleaseOnEmpty, TimeoutEviction, CounterEviction, NeverEvict, MarkovPrefetch,
	} {
		got, err := ParseEviction(p.String())
		if err != nil {
			t.Fatalf("ParseEviction(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParseEviction(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParseEviction("lru"); err == nil {
		t.Fatal("ParseEviction should reject unknown names")
	} else {
		for _, name := range EvictionNames() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error %q should list valid name %q", err, name)
			}
		}
	}
}

func TestPlannerParseRoundTrip(t *testing.T) {
	for _, p := range []Planner{PlannerStatic, PlannerSolstice, PlannerBvN} {
		got, err := ParsePlanner(p.String())
		if err != nil {
			t.Fatalf("ParsePlanner(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParsePlanner(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePlanner("greedy"); err == nil {
		t.Fatal("ParsePlanner should reject unknown names")
	} else {
		for _, name := range PlannerNames() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("error %q should list valid name %q", err, name)
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	base := Config{Switching: DynamicTDM, N: 16}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"unknown switching", Config{Switching: Switching(99), N: 16}, "Switching"},
		{"one processor", Config{Switching: DynamicTDM, N: 1}, "N"},
		{"negative K", Config{Switching: DynamicTDM, N: 16, K: -1}, "K"},
		{"unknown eviction", Config{Switching: DynamicTDM, N: 16, Eviction: EvictionPolicy(42)}, "Eviction"},
		{"preload slots above K", Config{Switching: HybridTDM, N: 16, K: 4, PreloadSlots: 5}, "PreloadSlots"},
		{"negative preload slots", Config{Switching: HybridTDM, N: 16, PreloadSlots: -1}, "PreloadSlots"},
		{"negative amplify", Config{Switching: DynamicTDM, N: 16, AmplifyBytes: -1}, "AmplifyBytes"},
		{"unknown planner", Config{Switching: PreloadTDM, N: 16, Planner: Planner(42)}, "Planner"},
		{"planner on wormhole", Config{Switching: Wormhole, N: 16, Planner: PlannerSolstice}, "Planner"},
		{"planner on dynamic TDM", Config{Switching: DynamicTDM, N: 16, Planner: PlannerBvN}, "Planner"},
		{"planner without pinned slots", Config{Switching: HybridTDM, N: 16, Planner: PlannerSolstice}, "Planner"},
		{"negative parallelism", Config{Switching: DynamicTDM, N: 16, Parallelism: -2}, "Parallelism"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Fatalf("%s: Validate accepted the config", tc.name)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: error %T is not *ConfigError", tc.name, err)
		}
		if ce.Field != tc.field {
			t.Fatalf("%s: got field %q, want %q (err: %v)", tc.name, ce.Field, tc.field, err)
		}
		if !strings.Contains(err.Error(), "Config."+tc.field) {
			t.Fatalf("%s: message %q should name Config.%s", tc.name, err, tc.field)
		}
	}
	// Run surfaces the same typed error.
	_, err := Run(Config{Switching: DynamicTDM, N: 1}, RandomMesh(8, 32, 2, 1))
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "N" {
		t.Fatalf("Run should return the *ConfigError for N, got %v", err)
	}
	// Eviction is irrelevant to (and unchecked for) the non-TDM baselines.
	if err := (Config{Switching: Wormhole, N: 16, Eviction: EvictionPolicy(42)}).Validate(); err != nil {
		t.Fatalf("baseline config should ignore Eviction: %v", err)
	}
}

func TestRunManyRejectsProbe(t *testing.T) {
	wl := RandomMesh(8, 32, 2, 1)
	cfg := Config{Switching: DynamicTDM, N: 8, Probe: NewProbe(NewCounterSink())}
	_, err := RunMany(cfg, []*Workload{wl})
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "Probe" {
		t.Fatalf("RunMany should reject Config.Probe with a *ConfigError, got %v", err)
	}
}

// TestProbeBitIdentity checks the tentpole's core guarantee: attaching a
// probe never changes the simulation. Every switching mode is run bare and
// probed, and the two Reports must be equal field for field.
func TestProbeBitIdentity(t *testing.T) {
	for _, sw := range []Switching{
		Wormhole, CircuitSwitching, DynamicTDM, PreloadTDM, HybridTDM,
		VOQISLIP, MeshWormhole, MeshTDM,
	} {
		t.Run(sw.String(), func(t *testing.T) {
			wl := RandomMesh(16, 64, 5, 2)
			if sw == PreloadTDM || sw == HybridTDM {
				an, _, err := AnalyzeWorkload(wl)
				if err != nil {
					t.Fatal(err)
				}
				wl = an
			}
			cfg := Config{Switching: sw, N: 16, K: 4, PreloadSlots: 1}
			bare, err := Run(cfg, wl)
			if err != nil {
				t.Fatal(err)
			}
			counter := NewCounterSink()
			cfg.Probe = NewProbe(counter)
			probed, err := Run(cfg, wl)
			if err != nil {
				t.Fatal(err)
			}
			// Faults is a pointer; both runs are fault-free so both are nil.
			if bare.Faults != nil || probed.Faults != nil {
				t.Fatal("fault-free runs should have nil FaultReport")
			}
			if bare != probed {
				t.Fatalf("probed report differs:\nbare:   %+v\nprobed: %+v", bare, probed)
			}
			if counter.Total() == 0 {
				t.Fatal("probe saw no events")
			}
		})
	}
}

// TestProbeBitIdentityAcrossFabrics extends the probe-off guarantee over the
// fabric backends: a probed dynamic-TDM run on each fabric must match its
// bare twin field for field.
func TestProbeBitIdentityAcrossFabrics(t *testing.T) {
	for _, f := range []Fabric{FabricCrossbar, FabricOmega, FabricClos, FabricBenes} {
		t.Run(f.String(), func(t *testing.T) {
			wl := RandomMesh(16, 64, 5, 2)
			cfg := Config{Switching: DynamicTDM, N: 16, K: 4, Fabric: f}
			bare, err := Run(cfg, wl)
			if err != nil {
				t.Fatal(err)
			}
			counter := NewCounterSink()
			cfg.Probe = NewProbe(counter)
			probed, err := Run(cfg, wl)
			if err != nil {
				t.Fatal(err)
			}
			if bare != probed {
				t.Fatalf("probed report differs:\nbare:   %+v\nprobed: %+v", bare, probed)
			}
			if counter.Total() == 0 {
				t.Fatal("probe saw no events")
			}
		})
	}
}

// TestTraceIsValidChromeTrace runs a probed DynamicTDM simulation through the
// TraceWriter and checks that the output is a valid Chrome trace-event JSON
// array covering the scheduler, connection and message lifecycles.
func TestTraceIsValidChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	cfg := Config{
		Switching: DynamicTDM, N: 16,
		EvictionTimeout: 250 * time.Nanosecond,
		Probe:           NewProbe(tw),
	}
	rep, err := Run(cfg, RandomMesh(16, 64, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	phases := map[string]int{}
	cats := map[string]int{}
	for _, ev := range events {
		ph, ok := ev["ph"].(string)
		if !ok {
			t.Fatalf("event without ph: %v", ev)
		}
		phases[ph]++
		if c, ok := ev["cat"].(string); ok {
			cats[c]++
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event without pid: %v", ev)
		}
	}
	// One B/E pair per scheduling pass, matching the Report exactly.
	if phases["B"] != int(rep.Sched.Passes) || phases["E"] != int(rep.Sched.Passes) {
		t.Fatalf("got %d B / %d E events, want %d scheduler passes each",
			phases["B"], phases["E"], rep.Sched.Passes)
	}
	for _, cat := range []string{"slot", "sched", "conn", "msg"} {
		if cats[cat] == 0 {
			t.Fatalf("trace has no %q events (cats: %v)", cat, cats)
		}
	}
	// Every message opens and closes an async span; connections add more.
	if phases["b"] < rep.Messages || phases["e"] < rep.Messages {
		t.Fatalf("got %d b / %d e events for %d messages", phases["b"], phases["e"], rep.Messages)
	}
}
