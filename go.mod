module pmsnet

go 1.22
