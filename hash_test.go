package pmsnet

import (
	"testing"
	"time"

	"pmsnet/internal/fault"
)

// hashBaseConfig is a config with every hashed field away from its zero
// value, so each single-field mutation in TestConfigHashFieldSensitivity
// actually flips a covered bit.
func hashBaseConfig() Config {
	return Config{
		Switching:         HybridTDM,
		N:                 32,
		K:                 6,
		PreloadSlots:      2,
		Eviction:          CounterEviction,
		EvictionTimeout:   750 * time.Nanosecond,
		EvictionThreshold: 12,
		AmplifyBytes:      256,
		Fabric:            FabricClos,
		Planner:           PlannerSolstice,
		Scheduler:         SchedulerISLIP,
		Faults: &fault.Plan{
			Seed:            9,
			LinkMTBF:        1_000_000,
			LinkMTTR:        10_000,
			CorruptProb:     0.001,
			RequestLossProb: 0.002,
			GrantLossProb:   0.003,
			RetryBase:       300,
			RetryCap:        4800,
			Links:           []fault.LinkFault{{Port: 3, At: 50_000, For: 20_000}},
			Crosspoints:     []fault.CrosspointFault{{In: 1, Out: 2, At: 80_000}},
		},
		SchedCache: boolPtr(false),
	}
}

func boolPtr(b bool) *bool { return &b }

func TestConfigHashStableAndEqualForEqualConfigs(t *testing.T) {
	a, b := hashBaseConfig(), hashBaseConfig()
	if a.Hash() != b.Hash() {
		t.Fatal("two identical configs hash differently")
	}
	if a.Hash() != a.Hash() {
		t.Fatal("hash is not deterministic across calls")
	}
}

func TestConfigHashSemanticEquivalences(t *testing.T) {
	// Each pair is semantically identical — same Report, bit for bit — and
	// must therefore share a hash: documented defaults spelled out vs left
	// zero, a nil SchedCache vs the enabled default, and an inactive fault
	// plan vs none.
	cases := []struct {
		name string
		a, b Config
	}{
		{
			"defaults spelled out",
			Config{Switching: DynamicTDM, N: 16},
			Config{Switching: DynamicTDM, N: 16, K: 4,
				EvictionTimeout: 500 * time.Nanosecond, EvictionThreshold: 8},
		},
		{
			"nil SchedCache vs enabled",
			Config{Switching: DynamicTDM, N: 16},
			Config{Switching: DynamicTDM, N: 16, SchedCache: boolPtr(true)},
		},
		{
			"inactive fault plan vs none",
			Config{Switching: DynamicTDM, N: 16},
			Config{Switching: DynamicTDM, N: 16, Faults: &fault.Plan{Seed: 99, RetryBase: 7}},
		},
	}
	for _, tc := range cases {
		if tc.a.Hash() != tc.b.Hash() {
			t.Errorf("%s: hashes differ (%#x vs %#x)", tc.name, tc.a.Hash(), tc.b.Hash())
		}
	}
}

func TestConfigHashFieldSensitivity(t *testing.T) {
	// Every single-field mutation away from the base must change the hash —
	// the correctness guarantee of the (config, workload) result-cache key.
	base := hashBaseConfig()
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"Switching", func(c *Config) { c.Switching = DynamicTDM }},
		{"N", func(c *Config) { c.N = 64 }},
		{"K", func(c *Config) { c.K = 8 }},
		{"PreloadSlots", func(c *Config) { c.PreloadSlots = 3 }},
		{"Eviction", func(c *Config) { c.Eviction = TimeoutEviction }},
		{"EvictionTimeout", func(c *Config) { c.EvictionTimeout = time.Microsecond }},
		{"EvictionThreshold", func(c *Config) { c.EvictionThreshold = 13 }},
		{"AmplifyBytes", func(c *Config) { c.AmplifyBytes = 512 }},
		{"Fabric", func(c *Config) { c.Fabric = FabricBenes }},
		{"Planner", func(c *Config) { c.Planner = PlannerBvN }},
		{"Scheduler", func(c *Config) { c.Scheduler = SchedulerWavefront }},
		{"SchedCache", func(c *Config) { c.SchedCache = boolPtr(true) }},
		{"Faults.Seed", func(c *Config) { c.Faults.Seed = 10 }},
		{"Faults.LinkMTBF", func(c *Config) { c.Faults.LinkMTBF = 2_000_000 }},
		{"Faults.LinkMTTR", func(c *Config) { c.Faults.LinkMTTR = 20_000 }},
		{"Faults.CorruptProb", func(c *Config) { c.Faults.CorruptProb = 0.01 }},
		{"Faults.RequestLossProb", func(c *Config) { c.Faults.RequestLossProb = 0.02 }},
		{"Faults.GrantLossProb", func(c *Config) { c.Faults.GrantLossProb = 0.03 }},
		{"Faults.RetryBase", func(c *Config) { c.Faults.RetryBase = 400 }},
		{"Faults.RetryCap", func(c *Config) { c.Faults.RetryCap = 6400 }},
		{"Faults.Links[0].Port", func(c *Config) { c.Faults.Links[0].Port = 4 }},
		{"Faults.Links[0].At", func(c *Config) { c.Faults.Links[0].At = 60_000 }},
		{"Faults.Links[0].For", func(c *Config) { c.Faults.Links[0].For = 30_000 }},
		{"Faults.Links extra", func(c *Config) { c.Faults.Links = append(c.Faults.Links, fault.LinkFault{Port: 5, At: 1}) }},
		{"Faults.Crosspoints[0].In", func(c *Config) { c.Faults.Crosspoints[0].In = 2 }},
		{"Faults.Crosspoints[0].Out", func(c *Config) { c.Faults.Crosspoints[0].Out = 3 }},
		{"Faults.Crosspoints[0].At", func(c *Config) { c.Faults.Crosspoints[0].At = 90_000 }},
		{"Faults dropped", func(c *Config) { c.Faults = nil }},
	}
	want := base.Hash()
	seen := map[uint64]string{want: "base"}
	for _, m := range mutations {
		c := hashBaseConfig()
		m.mut(&c)
		got := c.Hash()
		if got == want {
			t.Errorf("mutating %s did not change the hash", m.name)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("mutations %s and %s collide on %#x", m.name, prev, got)
		}
		seen[got] = m.name
	}
}

func TestConfigHashIgnoresExecutionOnlyFields(t *testing.T) {
	// Parallelism and Probe never change a Report (the identity suites pin
	// that), so they must not fragment the result cache.
	base := hashBaseConfig()
	withPar := hashBaseConfig()
	withPar.Parallelism = 8
	if base.Hash() != withPar.Hash() {
		t.Error("Parallelism changed the hash; it cannot affect a Report")
	}
	withProbe := hashBaseConfig()
	withProbe.Probe = NewProbe(NewCounterSink())
	if base.Hash() != withProbe.Hash() {
		t.Error("Probe changed the hash; probes are observational only")
	}
	withShards := hashBaseConfig()
	withShards.SchedShards = 4
	if base.Hash() != withShards.Hash() {
		t.Error("SchedShards changed the hash; sharded scheduling is bit-identical")
	}
	withWarm := hashBaseConfig()
	withWarm.SchedWarmStart = true
	if base.Hash() != withWarm.Hash() {
		t.Error("SchedWarmStart changed the hash; warm-started scheduling is bit-identical")
	}
}

func TestWorkloadHash(t *testing.T) {
	a, err := RandomMesh(16, 64, 10, 1).Hash()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomMesh(16, 64, 10, 1).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical workloads hash differently")
	}
	otherSeed, err := RandomMesh(16, 64, 10, 2).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if otherSeed == a {
		t.Fatal("workload seed change did not change the hash")
	}
	otherSize, err := RandomMesh(16, 128, 10, 1).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if otherSize == a {
		t.Fatal("workload size change did not change the hash")
	}
	if _, err := (*Workload)(nil).Hash(); err == nil {
		t.Fatal("nil workload must not hash")
	}
}

// TestWorkloadHashFoldsSpec: a registry-generated workload carries its spec
// in the canonical serialization, so it hashes differently from the same
// program built through a constructor (which has no spec) — and the spec
// survives as part of the identity the hash fingerprints.
func TestWorkloadHashFoldsSpec(t *testing.T) {
	gen, err := GenerateWorkload("random-mesh:msgs=10", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Spec() != "random-mesh:msgs=10" {
		t.Fatalf("spec = %q", gen.Spec())
	}
	genHash, err := gen.Hash()
	if err != nil {
		t.Fatal(err)
	}
	ctor := RandomMesh(16, 64, 10, 1)
	if ctor.Spec() != "" {
		t.Fatalf("constructor workload has spec %q", ctor.Spec())
	}
	ctorHash, err := ctor.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if genHash == ctorHash {
		t.Fatal("spec-carrying workload hashes equal to its spec-less twin")
	}
	gen2, err := GenerateWorkload("random-mesh:msgs=10", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := gen2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if again != genHash {
		t.Fatal("identical generated workloads hash differently")
	}
}
