package pmsnet

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenCase is one Switching×workload pair of the bit-identity matrix. The
// golden file was captured at the branch point of the control-plane/fabric
// refactor; the refactor must not change any of these Reports.
type goldenCase struct {
	name string
	cfg  Config
	wl   func(t *testing.T) *Workload
}

func goldenWorkloads(t *testing.T) map[string]*Workload {
	t.Helper()
	analyzed := func(wl *Workload) *Workload {
		an, _, err := AnalyzeWorkload(wl)
		if err != nil {
			t.Fatal(err)
		}
		return an
	}
	m := map[string]*Workload{
		"scatter":      ScatterWorkload(16, 256),
		"ordered-mesh": OrderedMesh(16, 128, 3),
		"random-mesh":  RandomMesh(16, 128, 6, 2),
		"all-to-all":   AllToAll(16, 64),
		"two-phase":    analyzed(TwoPhaseWorkload(16, 64, 3)),
	}
	// The post-seed workload families, pinned through the generator registry
	// at small parameters so the full switching matrix stays fast. Their spec
	// strings ride in the canonical serialization, so these pins also freeze
	// each family's generated program AND its spec vocabulary.
	for key, spec := range goldenFamilySpecs {
		wl, err := GenerateWorkload(spec, 16, 2)
		if err != nil {
			t.Fatal(err)
		}
		m[key] = wl
	}
	return m
}

var goldenFamilySpecs = map[string]string{
	"all-reduce-ring": "all-reduce",
	"all-reduce-tree": "all-reduce:algo=tree",
	"broadcast":       "broadcast:msgs=2",
	"gather":          "gather:msgs=2",
	"phased":          "phased:phases=2,msgs=4",
	"tiles":           "tiles",
	"bursty":          "bursty:msgs=10",
	"perm-churn":      "perm-churn:rounds=4,msgs=2",
	"incast":          "incast:msgs=8,background=4",
}

// legacyOrder lists the five seed workloads whose 40 pins predate the
// registry; testdata/golden_reports.json must never change, byte for byte.
var legacyOrder = []string{"scatter", "ordered-mesh", "random-mesh", "all-to-all", "two-phase"}

// familyOrder lists the registry-built families pinned separately in
// testdata/golden_family_reports.json.
var familyOrder = []string{
	"all-reduce-ring", "all-reduce-tree", "broadcast", "gather",
	"phased", "tiles", "bursty", "perm-churn", "incast",
}

// goldenOrder is every pinned workload, seed pins first.
var goldenOrder = append(append([]string{}, legacyOrder...), familyOrder...)

// runGoldenMatrix produces one Report per (switching mode, workload) pair.
func runGoldenMatrix(t *testing.T, wls map[string]*Workload, order []string) map[string]Report {
	t.Helper()
	got := make(map[string]Report)
	for _, sw := range switchingValues {
		for _, wname := range order {
			wl := wls[wname]
			if sw == PreloadTDM || sw == HybridTDM {
				an, _, err := AnalyzeWorkload(wl)
				if err != nil {
					t.Fatal(err)
				}
				wl = an
			}
			cfg := Config{Switching: sw, N: 16, K: 4, PreloadSlots: 1}
			rep, err := Run(cfg, wl)
			if err != nil {
				t.Fatalf("%s/%s: %v", sw, wname, err)
			}
			got[fmt.Sprintf("%s/%s", sw, wname)] = rep
		}
	}
	return got
}

// checkGolden compares a run matrix against a golden file, rewriting the
// file under -update.
func checkGolden(t *testing.T, path string, got map[string]Report) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", path, len(got))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run GoldenReport -update`): %v", err)
	}
	var want map[string]Report
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d cases, run produced %d", len(want), len(got))
	}
	for name, wrep := range want {
		grep, ok := got[name]
		if !ok {
			t.Errorf("%s: case missing from run", name)
			continue
		}
		if grep != wrep {
			t.Errorf("%s: report drifted from seed\n got: %+v\nwant: %+v", name, grep, wrep)
		}
	}
}

// TestGoldenReportBitIdentity locks every pre-existing Switching mode to the
// Report it produced at the seed commit of the refactor. Any drift in event
// ordering, RNG draws or accounting shows up as a field-level diff here.
//
// These pins double as the Report-level sparse-vs-dense identity check: the
// golden files were captured on the dense request path, and the default
// execution path is now the sparse one, so any sparse-path divergence
// surfaces here field by field. (The tdm-level identity suite additionally
// toggles the Sparse knob directly.)
func TestGoldenReportBitIdentity(t *testing.T) {
	got := runGoldenMatrix(t, goldenWorkloads(t), legacyOrder)
	checkGolden(t, filepath.Join("testdata", "golden_reports.json"), got)
}

// TestGoldenFamilyReportBitIdentity pins the registry-built workload
// families over the same full switching matrix, in their own golden file so
// the seed pins above stay byte-identical forever.
func TestGoldenFamilyReportBitIdentity(t *testing.T) {
	got := runGoldenMatrix(t, goldenWorkloads(t), familyOrder)
	checkGolden(t, filepath.Join("testdata", "golden_family_reports.json"), got)
}

// TestGoldenWarmStartReportBitIdentity extends the 40 golden pins to
// warm-started scheduling: with SchedWarmStart on, every TDM case must still
// reproduce the seed Report byte for byte once the warm telemetry counters —
// the only fields allowed to move — are zeroed. Run with -race in CI.
func TestGoldenWarmStartReportBitIdentity(t *testing.T) {
	want := make(map[string]Report)
	for _, file := range []string{"golden_reports.json", "golden_family_reports.json"} {
		data, err := os.ReadFile(filepath.Join("testdata", file))
		if err != nil {
			t.Fatalf("missing golden file (run `go test -run GoldenReport -update`): %v", err)
		}
		var part map[string]Report
		if err := json.Unmarshal(data, &part); err != nil {
			t.Fatal(err)
		}
		for k, v := range part {
			want[k] = v
		}
	}
	wls := goldenWorkloads(t)
	for _, sw := range []Switching{DynamicTDM, PreloadTDM, HybridTDM} {
		for _, wname := range goldenOrder {
			wl := wls[wname]
			if sw == PreloadTDM || sw == HybridTDM {
				an, _, err := AnalyzeWorkload(wl)
				if err != nil {
					t.Fatal(err)
				}
				wl = an
			}
			cfg := Config{Switching: sw, N: 16, K: 4, PreloadSlots: 1, SchedWarmStart: true}
			rep, err := Run(cfg, wl)
			if err != nil {
				t.Fatalf("%s/%s: %v", sw, wname, err)
			}
			rep.Sched.WarmHits, rep.Sched.WarmMisses, rep.Sched.DirtyRows = 0, 0, 0
			name := fmt.Sprintf("%s/%s", sw, wname)
			if rep != want[name] {
				t.Errorf("%s: warm-started report drifted from seed\n got: %+v\nwant: %+v",
					name, rep, want[name])
			}
		}
	}
}

// TestGoldenShardedReportBitIdentity extends the golden pins to per-leaf
// sharded scheduling: on leafed fabrics, every shard count must reproduce
// the unsharded Report byte for byte, over the same Switching×workload
// matrix the seed goldens pin. Run with -race in CI, this is also the data-
// race gate on the parallel shard phase.
func TestGoldenShardedReportBitIdentity(t *testing.T) {
	wls := goldenWorkloads(t)
	for _, sw := range []Switching{DynamicTDM, PreloadTDM, HybridTDM} {
		for _, fab := range []Fabric{FabricClos, FabricBenes} {
			for wname, wl := range wls {
				if sw == PreloadTDM || sw == HybridTDM {
					an, _, err := AnalyzeWorkload(wl)
					if err != nil {
						t.Fatal(err)
					}
					wl = an
				}
				cfg := Config{Switching: sw, N: 16, K: 4, PreloadSlots: 1, Fabric: fab}
				base, err := Run(cfg, wl)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", sw, fab, wname, err)
				}
				for _, shards := range []int{2, 8} {
					cfgS := cfg
					cfgS.SchedShards = shards
					rep, err := Run(cfgS, wl)
					if err != nil {
						t.Fatalf("%s/%s/%s shards=%d: %v", sw, fab, wname, shards, err)
					}
					if rep != base {
						t.Errorf("%s/%s/%s: %d shards drifted from unsharded\n got: %+v\nwant: %+v",
							sw, fab, wname, shards, rep, base)
					}
				}
			}
		}
	}
}
