package pmsnet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"pmsnet/internal/fault"
	"pmsnet/internal/trace"
)

// Hash returns a stable 64-bit fingerprint of every Config field that can
// influence a Report. Because runs are deterministic, (Config.Hash,
// Workload.Hash) identifies a simulation outcome exactly — it is the result
// cache key of the pmsd service and safe to persist: the encoding is
// FNV-1a over a tagged canonical serialization, not Go's per-process map or
// struct hashing, so equal configs hash equal across processes and restarts.
//
// Semantically equal configurations hash equal: defaults are applied first
// (K=0 hashes like the documented K=4, a nil SchedCache like the enabled
// default), and an inactive fault plan hashes like no plan at all. Fields
// that never change the Report are excluded: Parallelism, SchedShards,
// SchedWarmStart and Probe only affect how a run executes and what observes
// it, all proven bit-identical by the identity test suites.
func (c Config) Hash() uint64 {
	c = c.withDefaults()
	h := fnv.New64a()
	var buf [8]byte
	word := func(tag byte, v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write([]byte{tag})
		h.Write(buf[:])
	}
	word('s', uint64(c.Switching))
	word('n', uint64(c.N))
	word('k', uint64(c.K))
	word('p', uint64(c.PreloadSlots))
	word('e', uint64(c.Eviction))
	word('t', uint64(c.EvictionTimeout.Nanoseconds()))
	word('h', c.EvictionThreshold)
	word('a', uint64(c.AmplifyBytes))
	word('f', uint64(c.Fabric))
	word('P', uint64(c.Planner))
	word('S', uint64(c.Scheduler))
	if c.SchedCache == nil || *c.SchedCache {
		word('c', 1)
	} else {
		word('c', 0)
	}
	hashFaults(word, c.Faults)
	return h.Sum64()
}

// hashFaults feeds an active fault plan into the config hash. Inactive
// plans (nil or zero) inject nothing and leave runs bit-identical to
// fault-free ones, so they contribute nothing. The retry-timer defaults are
// applied so a zero RetryBase hashes like the documented default.
func hashFaults(word func(byte, uint64), p *fault.Plan) {
	if !p.Active() {
		return
	}
	word('F', uint64(p.Seed))
	word('B', uint64(p.LinkMTBF))
	word('R', uint64(p.LinkMTTR))
	word('C', floatBits(p.CorruptProb))
	word('Q', floatBits(p.RequestLossProb))
	word('G', floatBits(p.GrantLossProb))
	rb, rc := p.RetryBase, p.RetryCap
	if rb == 0 {
		rb = fault.DefaultRetryBase
	}
	if rc == 0 {
		rc = fault.DefaultRetryCap
	}
	word('b', uint64(rb))
	word('r', uint64(rc))
	word('L', uint64(len(p.Links)))
	for _, l := range p.Links {
		word('l', uint64(l.Port))
		word('@', uint64(l.At))
		word('d', uint64(l.For))
	}
	word('X', uint64(len(p.Crosspoints)))
	for _, x := range p.Crosspoints {
		word('i', uint64(x.In))
		word('o', uint64(x.Out))
		word('@', uint64(x.At))
	}
}

// floatBits maps a probability to its IEEE-754 bit pattern. Probabilities
// are validated into [0,1] before any hash is consulted, so the only
// bit-distinct equal values (-0 and +0) cannot both occur.
func floatBits(f float64) uint64 { return math.Float64bits(f) }

// Hash returns a stable 64-bit fingerprint of the workload: FNV-1a over its
// canonical PMSTRACE serialization, so two workloads hash equal exactly when
// WriteTrace would emit identical files — name, processor count, per-
// processor programs and static phases all included. The workload must be
// valid (every constructor-produced workload is); invalid workloads error.
func (w *Workload) Hash() (uint64, error) {
	if w == nil || w.w == nil {
		return 0, fmt.Errorf("pmsnet: nil workload")
	}
	h := fnv.New64a()
	if err := trace.Write(h, w.w); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}
