package sim

import "math/rand"

// NewRNG returns a deterministic random source for a (run seed, stream)
// pair. Each model component draws from its own stream so that adding a
// random draw in one component does not perturb the sequence seen by
// another — the classic "random stream per entity" discipline for
// reproducible discrete-event simulation.
func NewRNG(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(mix(seed, stream)))
}

// mix combines a seed and a stream id with the SplitMix64 finalizer so that
// adjacent (seed, stream) pairs map to well-separated generator states.
func mix(seed int64, stream uint64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
