package sim

import "testing"

// The schedule/fire path is amortized zero-alloc: fired and cancelled event
// structs are recycled through the engine's free list, so steady-state
// simulation allocates only what the model's own handlers allocate. The
// benchmarks report allocs/op; TestEngineSteadyStateZeroAlloc enforces zero.

// BenchmarkEngineScheduleFire measures the steady-state schedule-then-fire
// cycle, the inner loop of every simulation run.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	h := func() {}
	for i := 0; i < 64; i++ {
		e.After(1, "warm", h)
	}
	e.RunAll()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, "x", h)
		e.Step()
	}
}

// BenchmarkEngineScheduleCancel measures the schedule-then-cancel cycle —
// the shape of every retry/timeout timer that is disarmed before firing.
// Cancel removes the event from the queue eagerly, so a long run that arms
// and disarms millions of timers holds no dead entries.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	h := func() {}
	for i := 0; i < 64; i++ {
		e.Cancel(e.After(1, "warm", h))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Cancel(e.After(1, "x", h))
	}
}

// BenchmarkEngineTicker measures steady-state ticking (the TDM slot clock
// and the scheduler's SL clock): one fire plus one reschedule per tick.
func BenchmarkEngineTicker(b *testing.B) {
	e := NewEngine()
	ticks := 0
	tk := e.NewTicker(100, "slot", func() {
		ticks++
		if ticks >= b.N {
			e.Stop()
		}
	})
	tk.Start()
	e.Run(100) // warm up one tick's allocations
	b.ReportAllocs()
	b.ResetTimer()
	if ticks < b.N {
		e.RunAll()
	}
}

// BenchmarkEngineMixedQueue measures fire/cancel against a populated queue,
// where heap sift costs are visible.
func BenchmarkEngineMixedQueue(b *testing.B) {
	e := NewEngine()
	h := func() {}
	for i := 0; i < 1024; i++ {
		e.After(Time(1+i%97), "bg", h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.After(Time(1+i%13), "x", h)
		if i%3 == 0 {
			e.Cancel(id)
		} else {
			e.Step()
		}
	}
}

// TestEngineSteadyStateZeroAlloc is the hard guarantee behind the
// benchmarks: after warm-up, a schedule/fire/cancel mix allocates nothing.
func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	h := func() {}
	for i := 0; i < 256; i++ {
		e.After(Time(1+i%17), "warm", h)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			id := e.After(Time(1+i%7), "x", h)
			if i%4 == 0 {
				e.Cancel(id)
			}
		}
		e.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire/cancel allocated %.1f times per run, want 0", allocs)
	}
}

// TestTickerSteadyStateZeroAlloc covers the ticker reschedule path, which
// must not allocate a fresh fire closure per tick.
func TestTickerSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	tk := e.NewTicker(10, "slot", func() {})
	tk.Start()
	e.Run(1000) // warm up
	horizon := e.Now()
	allocs := testing.AllocsPerRun(100, func() {
		horizon += 1000
		e.Run(horizon)
	})
	if allocs != 0 {
		t.Fatalf("steady-state ticking allocated %.1f times per run, want 0", allocs)
	}
}
