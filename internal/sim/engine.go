// Package sim provides a deterministic discrete-event simulation engine with
// an integer-nanosecond clock.
//
// Every network model in this repository (wormhole, circuit switching, and
// the TDM-based predictive multiplexed switch) runs on this engine, so that
// the four curves in each figure are produced by the same clock, the same
// event ordering rules and the same random streams. Determinism matters:
// events scheduled for the same instant fire in scheduling order (FIFO
// tie-break), so a run is a pure function of (model, workload, seed).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulation timestamp in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// MaxTime is the largest representable timestamp; Run without a horizon uses
// it as "forever".
const MaxTime Time = math.MaxInt64

// String renders a Time as nanoseconds with a unit suffix.
func (t Time) String() string {
	switch {
	case t >= Second && t%Second == 0:
		return fmt.Sprintf("%ds", int64(t/Second))
	case t >= Microsecond && t%Microsecond == 0:
		return fmt.Sprintf("%dus", int64(t/Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Handler is the callback attached to an event. It runs with the engine
// clock set to the event's timestamp.
type Handler func()

// ArgHandler is a callback that receives the value it was scheduled with.
// Together with AtArg/AfterArg it lets a model schedule per-message events
// through one long-lived handler (a method value cached at run setup)
// instead of allocating a fresh closure per event — the argument rides in
// the recycled event struct. Passing a pointer as the argument does not
// allocate.
type ArgHandler func(arg any)

type event struct {
	at      Time
	seq     uint64 // FIFO tie-break for equal timestamps
	handler Handler
	argFn   ArgHandler // set instead of handler for AtArg/AfterArg events
	arg     any
	label   string
	gen     uint64 // recycling generation, invalidates stale EventIDs
	index   int    // heap index, -1 when popped
}

// fire runs the event's callback, whichever form it carries.
func (ev *event) fire() {
	if ev.argFn != nil {
		ev.argFn(ev.arg)
		return
	}
	ev.handler()
}

// EventID identifies a scheduled event so it can be cancelled. Fired and
// cancelled events are recycled through a free list, so the ID carries the
// event's generation: an ID that outlives its event (and any later reuse of
// the underlying storage) simply stops matching instead of cancelling an
// unrelated event.
type EventID struct {
	ev  *event
	gen uint64
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; models are sequential by design so that runs are
// reproducible. Distinct engines share nothing, so independent runs can
// execute on separate goroutines (see internal/runner).
type Engine struct {
	now       Time
	seq       uint64
	queue     eventHeap
	free      []*event // recycled event structs; the schedule/fire hot path is amortized zero-alloc
	processed uint64
	stopped   bool
	check     func() error
	err       error
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events still queued. Cancelled events are
// removed from the queue eagerly, so this is O(1).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules handler to run at absolute time at. Scheduling in the past
// panics: it would silently corrupt causality in a model.
func (e *Engine) At(at Time, label string, handler Handler) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", label, at, e.now))
	}
	if handler == nil {
		panic(fmt.Sprintf("sim: event %q has nil handler", label))
	}
	ev := e.alloc(at, label)
	ev.handler = handler
	heap.Push(&e.queue, ev)
	return EventID{ev, ev.gen}
}

// AtArg schedules handler(arg) at absolute time at. See ArgHandler: the
// handler is typically a method value created once per run, so the schedule
// path allocates nothing beyond the recycled event struct.
func (e *Engine) AtArg(at Time, label string, handler ArgHandler, arg any) EventID {
	if at < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %v before now %v", label, at, e.now))
	}
	if handler == nil {
		panic(fmt.Sprintf("sim: event %q has nil handler", label))
	}
	ev := e.alloc(at, label)
	ev.argFn, ev.arg = handler, arg
	heap.Push(&e.queue, ev)
	return EventID{ev, ev.gen}
}

// AfterArg schedules handler(arg) d nanoseconds from now.
func (e *Engine) AfterArg(d Time, label string, handler ArgHandler, arg any) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, label))
	}
	return e.AtArg(e.now+d, label, handler, arg)
}

// alloc takes an event struct off the free list (or makes one) with the
// callback fields cleared.
func (e *Engine) alloc(at Time, label string) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.label = at, e.seq, label
	} else {
		ev = &event{at: at, seq: e.seq, label: label}
	}
	e.seq++
	return ev
}

// release recycles a fired or cancelled event. Bumping the generation
// invalidates every outstanding EventID for it before the struct is reused;
// dropping the handler reference frees the captured closure state now
// instead of at the next reuse.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.handler = nil
	ev.argFn, ev.arg = nil, nil
	ev.index = -1
	e.free = append(e.free, ev)
}

// After schedules handler to run d nanoseconds from now.
func (e *Engine) After(d Time, label string, handler Handler) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for event %q", d, label))
	}
	return e.At(e.now+d, label, handler)
}

// Cancel removes a scheduled event from the queue eagerly (so long fault
// runs that cancel many timers never accumulate dead entries). Cancelling an
// already-fired or already-cancelled event is a no-op and reports false.
func (e *Engine) Cancel(id EventID) bool {
	if id.ev == nil || id.gen != id.ev.gen || id.ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, id.ev.index)
	e.release(id.ev)
	return true
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetInvariantCheck installs a model self-check that runs after every
// executed event — the engine's debug mode. Together with the
// scheduled-in-the-past panic in At, it turns causality and state-consistency
// bugs into immediate, attributable failures instead of silently wrong
// results. When the check returns an error, the engine records it (see Err)
// and stops; the error names the event that broke the invariant. Pass nil to
// disable. The check runs after *every* event, so keep it cheap or reserve
// it for tests.
func (e *Engine) SetInvariantCheck(f func() error) { e.check = f }

// Err returns the first invariant violation detected by the installed check,
// or nil. Once set, the engine stays stopped.
func (e *Engine) Err() error { return e.err }

// afterEvent runs the invariant check, if any, and latches the first
// violation.
func (e *Engine) afterEvent(ev *event) {
	if e.check == nil || e.err != nil {
		return
	}
	if err := e.check(); err != nil {
		e.err = fmt.Errorf("sim: invariant violated after event %q at %v: %w", ev.label, ev.at, err)
		e.stopped = true
	}
}

// Run executes events in timestamp order until the queue drains, the horizon
// is passed, or Stop is called. It returns the time of the last executed
// event (or the current time if nothing ran). Events scheduled exactly at the
// horizon still run.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		if ev.at > horizon {
			// Put it back for a later Run call with a larger horizon.
			heap.Push(&e.queue, ev)
			e.now = horizon
			return e.now
		}
		e.now = ev.at
		e.processed++
		ev.fire()
		e.afterEvent(ev)
		e.release(ev)
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(MaxTime) }

// Step executes exactly one event and reports whether one was available.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.processed++
	ev.fire()
	e.afterEvent(ev)
	e.release(ev)
	return true
}

// Ticker repeatedly schedules a handler with a fixed period. It is the shape
// of the TDM slot clock and the scheduler's SL clock.
type Ticker struct {
	engine  *Engine
	period  Time
	label   string
	handler Handler
	fireFn  Handler // cached t.fire method value so rescheduling allocates nothing per tick
	next    EventID
	active  bool
}

// NewTicker creates a stopped ticker. period must be positive.
func (e *Engine) NewTicker(period Time, label string, handler Handler) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q period %v must be positive", label, period))
	}
	t := &Ticker{engine: e, period: period, label: label, handler: handler}
	t.fireFn = t.fire
	return t
}

// Start begins ticking; the first tick fires after one full period. Starting
// an active ticker is a no-op.
func (t *Ticker) Start() {
	if t.active {
		return
	}
	t.active = true
	t.schedule()
}

// StartAt begins ticking with the first tick at absolute time first.
func (t *Ticker) StartAt(first Time) {
	if t.active {
		return
	}
	t.active = true
	t.next = t.engine.At(first, t.label, t.fireFn)
}

func (t *Ticker) schedule() {
	t.next = t.engine.After(t.period, t.label, t.fireFn)
}

func (t *Ticker) fire() {
	if !t.active {
		return
	}
	t.handler()
	if t.active {
		t.schedule()
	}
}

// Stop halts the ticker; pending tick is cancelled.
func (t *Ticker) Stop() {
	if !t.active {
		return
	}
	t.active = false
	t.engine.Cancel(t.next)
}

// Active reports whether the ticker is running.
func (t *Ticker) Active() bool { return t.active }

// Period returns the tick period.
func (t *Ticker) Period() Time { return t.period }
