package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ns"},
		{5, "5ns"},
		{1500, "1500ns"},
		{2 * Microsecond, "2us"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, "c", func() { order = append(order, 3) })
	e.At(10, "a", func() { order = append(order, 1) })
	e.At(20, "b", func() { order = append(order, 2) })
	end := e.RunAll()
	if end != 30 {
		t.Fatalf("end = %v, want 30ns", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, "tie", func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v: ties must fire FIFO", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, "outer", func() {
		e.After(50, "inner", func() { at = e.Now() })
	})
	e.RunAll()
	if at != 150 {
		t.Fatalf("inner fired at %v, want 150ns", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(50, "past", func() {})
	})
	e.RunAll()
}

func TestNilHandlerPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil handler")
		}
	}()
	e.At(1, "nil", nil)
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	e.After(-1, "neg", func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, "x", func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("first cancel should succeed")
	}
	if e.Cancel(id) {
		t.Fatal("second cancel should report false")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event must not fire")
	}
	if e.Processed() != 0 {
		t.Fatalf("processed = %d, want 0", e.Processed())
	}
}

func TestCancelRemovesEagerly(t *testing.T) {
	e := NewEngine()
	ids := make([]EventID, 0, 8)
	for i := 0; i < 8; i++ {
		ids = append(ids, e.At(Time(10+i), "x", func() {}))
	}
	for _, id := range ids[:5] {
		if !e.Cancel(id) {
			t.Fatal("cancel of a pending event should succeed")
		}
	}
	// Cancelled events leave the queue immediately instead of lingering as
	// dead entries until their timestamp.
	if e.Pending() != 3 {
		t.Fatalf("pending = %d, want 3 right after cancelling", e.Pending())
	}
	e.RunAll()
	if e.Processed() != 3 {
		t.Fatalf("processed = %d, want 3", e.Processed())
	}
}

func TestStaleEventIDDoesNotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	stale := e.At(1, "first", func() {})
	e.RunAll() // fires "first"; its storage returns to the free list
	e.At(2, "second", func() { fired = true })
	if e.Cancel(stale) {
		t.Fatal("stale ID of a fired event must not cancel anything")
	}
	e.RunAll()
	if !fired {
		t.Fatal("second event was cancelled through a stale ID of a recycled event")
	}
}

func TestCancelFromOwnHandlerIsNoop(t *testing.T) {
	e := NewEngine()
	var id EventID
	id = e.At(1, "self", func() {
		if e.Cancel(id) {
			t.Error("cancelling the currently firing event must report false")
		}
	})
	e.RunAll()
	if e.Processed() != 1 {
		t.Fatalf("processed = %d, want 1", e.Processed())
	}
}

func TestEventStormRecycles(t *testing.T) {
	// A long run of schedule/fire/cancel churn must keep working through
	// the free list: ordering, cancellation and the processed count all
	// stay exact.
	e := NewEngine()
	var fired, cancelled int
	for round := 0; round < 50; round++ {
		ids := make([]EventID, 0, 40)
		for i := 0; i < 40; i++ {
			ids = append(ids, e.After(Time(1+(i*7)%23), "storm", func() { fired++ }))
		}
		for i, id := range ids {
			if i%3 == 0 {
				if !e.Cancel(id) {
					t.Fatal("cancel of pending event failed")
				}
				cancelled++
			}
		}
		e.RunAll()
	}
	if want := 50*40 - cancelled; fired != want {
		t.Fatalf("fired = %d, want %d (cancelled %d)", fired, want, cancelled)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 after drain", e.Pending())
	}
}

func TestHorizonStopsAndResumes(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		e.At(at, "x", func() { fired = append(fired, at) })
	}
	e.Run(20)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 10 and 20", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20 after horizon", e.Now())
	}
	e.RunAll()
	if len(fired) != 3 || fired[2] != 30 {
		t.Fatalf("fired = %v, want resumed event at 30", fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, "a", func() { count++; e.Stop() })
	e.At(2, "b", func() { count++ })
	e.RunAll()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (Stop should halt the loop)", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.RunAll()
	if count != 2 {
		t.Fatalf("count = %d after resume, want 2", count)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(5, "a", func() { count++ })
	e.At(6, "b", func() { count++ })
	if !e.Step() || count != 1 || e.Now() != 5 {
		t.Fatalf("after first Step: count=%d now=%v", count, e.Now())
	}
	if !e.Step() || count != 2 {
		t.Fatal("second Step should fire second event")
	}
	if e.Step() {
		t.Fatal("Step on empty queue should report false")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := e.NewTicker(100, "slot", func() { ticks = append(ticks, e.Now()) })
	tk.Start()
	tk.Start() // idempotent
	e.Run(350)
	if len(ticks) != 3 || ticks[0] != 100 || ticks[2] != 300 {
		t.Fatalf("ticks = %v, want [100 200 300]", ticks)
	}
	tk.Stop()
	tk.Stop() // idempotent
	e.RunAll()
	if len(ticks) != 3 {
		t.Fatalf("ticker fired after Stop: %v", ticks)
	}
	if tk.Active() {
		t.Fatal("ticker should be inactive after Stop")
	}
	if tk.Period() != 100 {
		t.Fatalf("Period = %v, want 100", tk.Period())
	}
}

func TestTickerStartAt(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := e.NewTicker(100, "slot", func() { ticks = append(ticks, e.Now()) })
	tk.StartAt(0)
	e.Run(250)
	if len(ticks) != 3 || ticks[0] != 0 || ticks[1] != 100 {
		t.Fatalf("ticks = %v, want [0 100 200]", ticks)
	}
}

func TestTickerStopFromOwnHandler(t *testing.T) {
	e := NewEngine()
	n := 0
	var tk *Ticker
	tk = e.NewTicker(10, "x", func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	tk.Start()
	e.RunAll()
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive period")
		}
	}()
	e.NewTicker(0, "bad", func() {})
}

func TestQuickDeterministicReplay(t *testing.T) {
	// Two engines fed the same schedule must execute identically.
	f := func(delays []uint16) bool {
		run := func() []int {
			e := NewEngine()
			var order []int
			for i, d := range delays {
				i := i
				e.At(Time(d), "x", func() { order = append(order, i) })
			}
			e.RunAll()
			return order
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewRNGStreamsIndependent(t *testing.T) {
	a := NewRNG(42, 0)
	b := NewRNG(42, 1)
	same := true
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("streams 0 and 1 produced identical sequences")
	}
	// Same (seed, stream) must reproduce.
	c, d := NewRNG(7, 3), NewRNG(7, 3)
	for i := 0; i < 16; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("identical (seed,stream) must reproduce")
		}
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := NewEngine()
	var feed func()
	n := 0
	feed = func() {
		n++
		if n < b.N {
			e.After(1, "x", feed)
		}
	}
	e.At(0, "x", feed)
	b.ResetTimer()
	e.RunAll()
}

func TestInvariantCheckLatchesAndStops(t *testing.T) {
	e := NewEngine()
	broken := false
	e.SetInvariantCheck(func() error {
		if broken {
			return errors.New("state went bad")
		}
		return nil
	})
	ran := 0
	e.At(1, "ok", func() { ran++ })
	e.At(2, "breaks-invariant", func() { ran++; broken = true })
	e.At(3, "never-runs", func() { ran++ })
	e.RunAll()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2 (engine must stop at the violation)", ran)
	}
	err := e.Err()
	if err == nil {
		t.Fatal("Err() should report the violation")
	}
	if !strings.Contains(err.Error(), "breaks-invariant") || !strings.Contains(err.Error(), "state went bad") {
		t.Fatalf("error %q should name the event and the cause", err)
	}
	// The first violation is latched: resuming must neither run more events
	// under a broken invariant nor overwrite the recorded error.
	e.RunAll()
	if e.Err() != err {
		t.Fatal("Err() must latch the first violation")
	}
}

func TestInvariantCheckRunsAfterSteps(t *testing.T) {
	e := NewEngine()
	checks := 0
	e.SetInvariantCheck(func() error { checks++; return nil })
	e.At(1, "a", func() {})
	e.At(2, "b", func() {})
	for e.Step() {
	}
	if checks != 2 {
		t.Fatalf("checks = %d, want one per stepped event", checks)
	}
	// Disabling restores the fast path.
	e.SetInvariantCheck(nil)
	e.At(3, "c", func() {})
	e.RunAll()
	if checks != 2 || e.Err() != nil {
		t.Fatalf("disabled check still ran (checks=%d, err=%v)", checks, e.Err())
	}
}
