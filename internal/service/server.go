package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Server. The zero value is usable: every knob has
// a production-shaped default.
type Config struct {
	// QueueCapacity bounds the admission queue; beyond it, submissions get
	// 429 + Retry-After. Default 64.
	QueueCapacity int
	// Workers is the pool size. Default GOMAXPROCS.
	Workers int
	// DefaultDeadline is the per-job deadline when the spec names none.
	// Default 30s.
	DefaultDeadline time.Duration
	// MaxDeadline caps spec-requested deadlines. Default 2m.
	MaxDeadline time.Duration
	// CacheSize bounds the deterministic result cache (entries); negative
	// disables caching. Default 1024.
	CacheSize int
	// MaxJobs bounds the job registry: when exceeded, the oldest terminal
	// jobs are forgotten (GET on them turns 404). Default 4096.
	MaxJobs int
	// RetryAfter is the backoff hint sent with 429/503 responses. Default 1s.
	RetryAfter time.Duration
	// TestPatterns enables the "panic" and "sleep" workload patterns used
	// by the robustness tests and the CI smoke. Never enable in production.
	TestPatterns bool
	// Log, when non-nil, receives one line per job transition and lifecycle
	// event.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 64
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 2 * time.Minute
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = 4096
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the simulation service: an http.Handler plus the queue, worker
// pool, result cache and lifecycle management behind it. Build with New,
// serve it on any listener (or Start one), and Shutdown to drain.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   *queue
	cache   *resultCache
	metrics *metrics

	baseCtx    context.Context // parent of every job context; cancelled to abort
	baseCancel context.CancelFunc
	draining   atomic.Bool
	workerWG   sync.WaitGroup
	nextID     atomic.Uint64

	jobMu    sync.Mutex
	jobs     map[string]*Job
	jobOrder []string // insertion order, for registry pruning

	httpSrv *http.Server
	started time.Time
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   newQueue(cfg.QueueCapacity),
		cache:   newResultCache(cfg.CacheSize),
		metrics: &metrics{},
		jobs:    make(map[string]*Job),
		started: time.Now(),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.startWorkers()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Start listens on addr and serves until Shutdown. It returns the bound
// address (useful with ":0") once the listener is up; serve errors after
// that are reported through the returned channel.
func (s *Server) Start(addr string) (string, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	s.httpSrv = &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
		close(errc)
	}()
	return ln.Addr().String(), errc, nil
}

// Shutdown drains the server gracefully: admission stops first (readyz and
// POST /jobs flip to 503), then the HTTP listener stops accepting and
// in-flight handlers finish, then the queue closes and the pool drains
// buffered and running jobs. Jobs still unfinished when ctx expires are
// aborted — cancelled through their contexts, never silently dropped: every
// admitted job still reaches a terminal state that a final GET would
// report. Shutdown returns nil on a clean drain and ctx.Err() after an
// abort.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.httpSrv != nil {
		// Stop accepting connections and wait for in-flight handlers; a
		// handler mid-enqueue finishes before the queue closes below.
		shutdownErr := s.httpSrv.Shutdown(ctx)
		if shutdownErr != nil && s.cfg.Log != nil {
			s.cfg.Log.Printf("http shutdown: %v", shutdownErr)
		}
	}
	s.queue.close()

	drained := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("drained cleanly (%d jobs completed)", s.metrics.completed.Load())
		}
		return nil
	case <-ctx.Done():
		// Drain deadline: abort everything still queued or running. The
		// pool observes the cancellation and terminates each job as
		// StateCancelled; then the workers exit.
		s.baseCancel()
		<-drained
		if s.cfg.Log != nil {
			s.cfg.Log.Printf("drain deadline hit; outstanding jobs aborted")
		}
		return ctx.Err()
	}
}

// register adds a job to the registry under a fresh ID, pruning the oldest
// terminal jobs past the MaxJobs bound.
func (s *Server) register(j *Job) {
	j.ID = fmt.Sprintf("j-%06d", s.nextID.Add(1))
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	for len(s.jobs) > s.cfg.MaxJobs {
		pruned := false
		for i, id := range s.jobOrder {
			if old, ok := s.jobs[id]; ok {
				if st, _, _, _, _, _, _ := old.snapshot(); st.Terminal() {
					delete(s.jobs, id)
					s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
					pruned = true
					break
				}
			} else {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			break // everything live; let the registry exceed the bound
		}
	}
}

func (s *Server) lookup(id string) (*Job, bool) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// --- handlers ---

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

// JobStatus is the JSON shape of GET /jobs/{id} and of synchronous submit
// responses.
type JobStatus struct {
	ID          string          `json:"id"`
	State       State           `json:"state"`
	Cached      bool            `json:"cached,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	WaitMS      float64         `json:"wait_ms,omitempty"`
	RunMS       float64         `json:"run_ms,omitempty"`
	Error       string          `json:"error,omitempty"`
	Stack       string          `json:"stack,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
}

func (s *Server) status(j *Job) JobStatus {
	state, started, finished, result, cached, errMsg, stack := j.snapshot()
	st := JobStatus{
		ID:          j.ID,
		State:       state,
		Cached:      cached,
		SubmittedAt: j.submitted,
		Error:       errMsg,
		Stack:       stack,
		Result:      result,
	}
	if !started.IsZero() {
		st.StartedAt = &started
		st.WaitMS = float64(started.Sub(j.submitted)) / 1e6
	}
	if !finished.IsZero() {
		st.FinishedAt = &finished
		if !started.IsZero() {
			st.RunMS = float64(finished.Sub(started)) / 1e6
		}
	}
	return st
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeBackoff(w http.ResponseWriter, status int, msg string) {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, status, errorBody{Error: msg})
}

// handleSubmit is the admission path: validate, consult the cache, enqueue
// with backpressure. `?wait=1` blocks until the job is terminal and maps
// its state to a status code; otherwise submission is asynchronous (202).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.submitted.Add(1)
	if s.draining.Load() {
		s.metrics.rejected503.Add(1)
		s.writeBackoff(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 10<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.metrics.rejected400.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid job spec: " + err.Error()})
		return
	}
	j, err := s.buildJob(spec)
	if err != nil {
		s.metrics.rejected400.Add(1)
		var ae *AdmissionError
		if errors.As(err, &ae) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: ae.Error(), Field: ae.Field})
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		}
		return
	}

	// Deterministic replay: a cached result needs no queue slot and no
	// worker — the stored bytes are byte-identical to a fresh run's.
	if payload, ok := s.cache.get(j.key); ok {
		s.metrics.cacheHits.Add(1)
		s.register(j)
		j.submitted = time.Now()
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
		j.finish(StateDone, payload, "", "")
		s.metrics.recordTerminal(StateDone)
		w.Header().Set("X-Cache", "hit")
		writeJSON(w, http.StatusOK, s.status(j))
		return
	}
	s.metrics.cacheMisses.Add(1)

	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	j.submitted = time.Now()
	s.register(j)
	if ok, closed := s.queue.tryPush(j); !ok {
		if closed {
			s.metrics.rejected503.Add(1)
			s.writeBackoff(w, http.StatusServiceUnavailable, "server is draining")
		} else {
			s.metrics.rejected429.Add(1)
			s.writeBackoff(w, http.StatusTooManyRequests,
				fmt.Sprintf("job queue full (%d buffered); retry later", s.queue.capacity()))
		}
		// The job never entered the queue: finish it so a later GET on the
		// ID reports the rejection instead of a forever-queued phantom.
		j.finish(StateCancelled, nil, "rejected: queue full", "")
		return
	}

	if r.URL.Query().Get("wait") == "" {
		w.Header().Set("Location", "/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, s.status(j))
		return
	}
	select {
	case <-j.done:
		st := s.status(j)
		writeJSON(w, submitStatusCode(st.State), st)
	case <-r.Context().Done():
		// Client went away mid-wait. The job keeps running (another GET can
		// still fetch it); there is nobody left to answer.
	}
}

// submitStatusCode maps a terminal state onto the synchronous-submit HTTP
// status: the panic and failure 500s are the only 5xx the service can emit.
func submitStatusCode(st State) int {
	switch st {
	case StateDone:
		return http.StatusOK
	case StateDeadline:
		return http.StatusGatewayTimeout
	case StateCancelled:
		return http.StatusConflict
	default: // StateFailed, StatePanicked
		return http.StatusInternalServerError
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

// handleResult serves the raw result payload — exactly the bytes the run
// produced (and the cache stored), so clients can byte-compare replays.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	state, _, _, result, _, errMsg, _ := j.snapshot()
	if state != StateDone {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job is %s: %s", state, errMsg)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(result)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	if state.Terminal() {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("job already %s", state)})
		return
	}
	// A queued job is finished here directly (the worker will skip it); a
	// running job is cancelled through its context and the worker performs
	// the terminal transition. finish is idempotent, so racing with the
	// worker is safe either way.
	if j.cancel != nil {
		j.cancel()
	}
	if j.finish(StateCancelled, nil, "cancelled by client", "") {
		s.metrics.recordTerminal(StateCancelled)
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up and serving. Always 200; readiness is
	// the endpoint that degrades.
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeBackoff(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ready",
		"queue_depth": s.queue.depth(),
		"queue_free":  s.queue.capacity() - s.queue.depth(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.snapshot()
	snap.Uptime = time.Since(s.started).Round(time.Millisecond).String()
	snap.QueueDepth = s.queue.depth()
	snap.QueueCapacity = s.queue.capacity()
	snap.Workers = s.cfg.Workers
	snap.CacheEntries = s.cache.len()
	writeJSON(w, http.StatusOK, snap)
}
