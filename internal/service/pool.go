package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"pmsnet"
	"pmsnet/internal/runner"
)

// JobResult is the terminal payload of a successful job: one report per
// seed, in seed order. It is marshaled once, stored in the result cache,
// and served verbatim thereafter, so a cached replay is byte-identical to
// the fresh run that produced it.
type JobResult struct {
	Reports []pmsnet.Report `json:"reports"`
}

// startWorkers launches the pool. Each worker is one goroutine pulling
// admitted jobs until the queue closes; a crashing job is contained inside
// runJob, so the loop — and the pool — survives any panic a simulation can
// produce.
func (s *Server) startWorkers() {
	for w := 0; w < s.cfg.Workers; w++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for job := range s.queue.ch {
				s.runJob(job)
			}
		}()
	}
}

// runJob drives one job to a terminal state. The simulation itself runs in
// a child goroutine so the worker can abandon it the instant the per-job
// deadline fires or a cancellation arrives: the worker is freed for the
// next job, the orphaned simulation finishes into a buffered channel and is
// discarded (bounded by one simulation's runtime — acceptable because
// simulations are CPU-bounded and deadlines exist precisely to cap them).
// The recover sits inside the child goroutine, where the panic would
// otherwise crash the whole process.
func (s *Server) runJob(j *Job) {
	if !j.markRunning(time.Now()) {
		// Cancelled while queued (DELETE or shutdown abort): nothing ran,
		// the terminal transition already happened.
		return
	}
	s.metrics.wait.record(time.Since(j.submitted))
	s.metrics.inFlight.Add(1)
	started := time.Now()
	defer func() {
		s.metrics.run.record(time.Since(started))
		s.metrics.inFlight.Add(-1)
	}()

	ctx, cancel := context.WithTimeout(j.ctx, j.deadline)
	defer cancel()

	type outcome struct {
		payload []byte
		err     error
		stack   string
	}
	ch := make(chan outcome, 1) // buffered: an abandoned run must not block
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{
					err:   fmt.Errorf("job panicked: %v", r),
					stack: string(debug.Stack()),
				}
			}
		}()
		payload, err := s.execute(ctx, j)
		ch <- outcome{payload: payload, err: err}
	}()

	var (
		state      State
		transition bool
	)
	select {
	case out := <-ch:
		switch {
		case out.stack != "":
			state = StatePanicked
			transition = j.finish(StatePanicked, nil, out.err.Error(), out.stack)
		case errors.Is(out.err, context.DeadlineExceeded):
			state = StateDeadline
			transition = j.finish(StateDeadline, nil, fmt.Sprintf("deadline %v exceeded", j.deadline), "")
		case errors.Is(out.err, context.Canceled):
			state = StateCancelled
			transition = j.finish(StateCancelled, nil, "cancelled", "")
		case out.err != nil:
			state = StateFailed
			transition = j.finish(StateFailed, nil, out.err.Error(), "")
		default:
			state = StateDone
			s.cache.put(j.key, out.payload)
			transition = j.finish(StateDone, out.payload, "", "")
		}
	case <-ctx.Done():
		// Abandon the run and free the worker. Deadline and cancellation
		// share this path; ctx.Err() tells them apart.
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			state = StateDeadline
			transition = j.finish(StateDeadline, nil, fmt.Sprintf("deadline %v exceeded", j.deadline), "")
		} else {
			state = StateCancelled
			transition = j.finish(StateCancelled, nil, "cancelled", "")
		}
	}
	// finish is exactly-once: when a DELETE raced the worker and performed
	// the terminal transition first, that path already recorded the metric.
	if transition {
		s.metrics.recordTerminal(state)
	}
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("job %s %s (wait %v, run %v)",
			j.ID, state, started.Sub(j.submitted).Round(time.Microsecond), time.Since(started).Round(time.Microsecond))
	}
}

// execute runs the job's simulations and marshals the canonical result
// payload. Multi-seed jobs fan through runner.MapCtx with parallelism 1 —
// one job never occupies more than its one worker — so cancellation and
// deadlines take effect between seeds even though a single simulation,
// once started, runs to completion in the abandoned goroutine.
func (s *Server) execute(ctx context.Context, j *Job) ([]byte, error) {
	switch j.testPattern {
	case "panic":
		panic("injected test panic (pattern \"panic\")")
	case "sleep":
		select {
		case <-time.After(time.Duration(j.Spec.Workload.SleepMS) * time.Millisecond):
			return json.Marshal(JobResult{})
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	reports, err := runner.MapCtx(ctx, runner.Options{Parallelism: 1}, len(j.wls),
		func(i int) (pmsnet.Report, error) {
			return pmsnet.Run(j.cfg, j.wls[i])
		})
	if err != nil {
		return nil, err
	}
	for _, rep := range reports {
		s.metrics.recordSched(rep.Sched.CacheHits, rep.Sched.CacheMisses,
			rep.Sched.WarmHits, rep.Sched.WarmMisses, rep.Sched.DirtyRows)
		s.metrics.recordPlan(rep.Plan.Planner, rep.Plan.Configs, rep.Plan.ResidualConns)
	}
	return json.Marshal(JobResult{Reports: reports})
}
