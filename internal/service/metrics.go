package service

import (
	"sync/atomic"
	"time"
)

// durationStat aggregates a per-job duration (queue wait, run time) with
// lock-free counters: count, sum and max, enough for mean/max reporting on
// /metrics. Full percentile distributions live in the load harness
// (cmd/pmsload), which sees true end-to-end latency.
type durationStat struct {
	count atomic.Uint64
	sum   atomic.Int64 // nanoseconds
	max   atomic.Int64 // nanoseconds
}

func (d *durationStat) record(v time.Duration) {
	d.count.Add(1)
	d.sum.Add(int64(v))
	for {
		cur := d.max.Load()
		if int64(v) <= cur || d.max.CompareAndSwap(cur, int64(v)) {
			return
		}
	}
}

// DurationStatSnapshot is one aggregated duration on /metrics.
type DurationStatSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func (d *durationStat) snapshot() DurationStatSnapshot {
	n := d.count.Load()
	s := DurationStatSnapshot{Count: n, MaxMS: float64(d.max.Load()) / 1e6}
	if n > 0 {
		s.MeanMS = float64(d.sum.Load()) / float64(n) / 1e6
	}
	return s
}

// metrics is the server's structured counter set, updated lock-free on the
// hot paths and snapshotted as JSON by /metrics.
type metrics struct {
	submitted   atomic.Uint64 // POST /jobs requests that parsed as HTTP
	rejected400 atomic.Uint64 // admission failures
	rejected429 atomic.Uint64 // queue-full backpressure
	rejected503 atomic.Uint64 // refused while draining
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	completed   atomic.Uint64 // StateDone
	failed      atomic.Uint64 // StateFailed
	panicked    atomic.Uint64 // StatePanicked
	deadlines   atomic.Uint64 // StateDeadline
	cancelled   atomic.Uint64 // StateCancelled
	inFlight    atomic.Int64  // jobs currently on a worker

	// Scheduler activity aggregated from every report of every freshly
	// completed job (cache replays don't re-run the simulation, so they
	// add nothing here).
	schedCacheHits   atomic.Uint64
	schedCacheMisses atomic.Uint64
	schedWarmHits    atomic.Uint64
	schedWarmMisses  atomic.Uint64
	schedDirtyRows   atomic.Uint64

	// Preload-planner activity aggregated the same way: runs whose config
	// selected a planner, and the schedule shapes those plans produced.
	plannedRuns       atomic.Uint64
	planConfigs       atomic.Uint64
	planResidualConns atomic.Uint64

	wait durationStat // admission -> worker pickup
	run  durationStat // worker pickup -> terminal
}

// MetricsSnapshot is the GET /metrics response body.
type MetricsSnapshot struct {
	Uptime        string  `json:"uptime"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	Workers       int     `json:"workers"`
	InFlight      int64   `json:"in_flight"`
	Submitted     uint64  `json:"submitted"`
	Rejected400   uint64  `json:"rejected_400"`
	Rejected429   uint64  `json:"rejected_429"`
	Rejected503   uint64  `json:"rejected_503"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	CacheEntries  int     `json:"cache_entries"`
	Completed     uint64  `json:"completed"`
	Failed        uint64  `json:"failed"`
	Panicked      uint64  `json:"panicked"`
	Deadlines     uint64  `json:"deadlines"`
	Cancelled     uint64  `json:"cancelled"`

	// Scheduler counters summed over the reports of completed jobs: the
	// memo-cache and warm-start activity of the simulations themselves
	// (as opposed to the service's own result cache above).
	SchedCacheHits   uint64 `json:"sched_cache_hits"`
	SchedCacheMisses uint64 `json:"sched_cache_misses"`
	SchedWarmHits    uint64 `json:"sched_warm_hits"`
	SchedWarmMisses  uint64 `json:"sched_warm_misses"`
	SchedDirtyRows   uint64 `json:"sched_dirty_rows"`

	// Preload-planner counters summed the same way: how many completed
	// runs carried a planned schedule, and that schedule's shape.
	PlannedRuns       uint64 `json:"planned_runs"`
	PlanConfigs       uint64 `json:"plan_configs"`
	PlanResidualConns uint64 `json:"plan_residual_conns"`

	QueueWait DurationStatSnapshot `json:"queue_wait"`
	RunTime   DurationStatSnapshot `json:"run_time"`
}

func (m *metrics) snapshot() MetricsSnapshot {
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	s := MetricsSnapshot{
		InFlight:    m.inFlight.Load(),
		Submitted:   m.submitted.Load(),
		Rejected400: m.rejected400.Load(),
		Rejected429: m.rejected429.Load(),
		Rejected503: m.rejected503.Load(),
		CacheHits:   hits,
		CacheMisses: misses,
		Completed:   m.completed.Load(),
		Failed:      m.failed.Load(),
		Panicked:    m.panicked.Load(),
		Deadlines:   m.deadlines.Load(),
		Cancelled:   m.cancelled.Load(),

		SchedCacheHits:   m.schedCacheHits.Load(),
		SchedCacheMisses: m.schedCacheMisses.Load(),
		SchedWarmHits:    m.schedWarmHits.Load(),
		SchedWarmMisses:  m.schedWarmMisses.Load(),
		SchedDirtyRows:   m.schedDirtyRows.Load(),

		PlannedRuns:       m.plannedRuns.Load(),
		PlanConfigs:       m.planConfigs.Load(),
		PlanResidualConns: m.planResidualConns.Load(),

		QueueWait: m.wait.snapshot(),
		RunTime:   m.run.snapshot(),
	}
	if hits+misses > 0 {
		s.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return s
}

// recordSched folds one completed report's scheduler counters into the
// aggregate /metrics view.
func (m *metrics) recordSched(hits, misses, warmHits, warmMisses, dirtyRows uint64) {
	m.schedCacheHits.Add(hits)
	m.schedCacheMisses.Add(misses)
	m.schedWarmHits.Add(warmHits)
	m.schedWarmMisses.Add(warmMisses)
	m.schedDirtyRows.Add(dirtyRows)
}

// recordPlan folds one completed report's preload-planner counters into the
// aggregate /metrics view; reports without a planner contribute nothing.
func (m *metrics) recordPlan(planner string, configs, residualConns uint64) {
	if planner == "" {
		return
	}
	m.plannedRuns.Add(1)
	m.planConfigs.Add(configs)
	m.planResidualConns.Add(residualConns)
}

// recordTerminal bumps the counter matching a terminal state.
func (m *metrics) recordTerminal(state State) {
	switch state {
	case StateDone:
		m.completed.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StatePanicked:
		m.panicked.Add(1)
	case StateDeadline:
		m.deadlines.Add(1)
	case StateCancelled:
		m.cancelled.Add(1)
	}
}
