package service

import "sync"

// queue is the bounded admission queue between the HTTP front end and the
// worker pool. Backpressure is explicit: when the buffer is full, tryPush
// refuses immediately — the caller turns that into 429 + Retry-After — so
// the server's memory footprint and worst-case queueing delay stay bounded
// no matter the offered load, and no accepted job is ever silently dropped.
//
// The mutex exists only to make close safe against concurrent pushers: a
// pusher holds the read side while sending, close takes the write side, so
// a send on a closed channel cannot happen. Pops contend on the channel
// alone.
type queue struct {
	ch     chan *Job
	mu     sync.RWMutex
	closed bool
}

func newQueue(capacity int) *queue {
	return &queue{ch: make(chan *Job, capacity)}
}

// tryPush enqueues without blocking. It reports false when the queue is
// full (backpressure) or closed (shutdown); the two are distinguished by
// the second result.
func (q *queue) tryPush(j *Job) (ok, closed bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return false, true
	}
	select {
	case q.ch <- j:
		return true, false
	default:
		return false, false
	}
}

// close stops admission; jobs already buffered still drain to the workers.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// depth is the number of buffered jobs right now.
func (q *queue) depth() int { return len(q.ch) }

// capacity is the bound.
func (q *queue) capacity() int { return cap(q.ch) }
