package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// newTestServer builds a Server on the given config and an httptest front
// end; both are torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.TestPatterns = true
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// simSpec is a small real simulation job: fast, deterministic, cacheable.
func simSpec(seed int64) JobSpec {
	return JobSpec{
		Config:   ConfigSpec{Switching: "tdm-dynamic", N: 16, Eviction: "timeout"},
		Workload: WorkloadSpec{Pattern: "random-mesh", Msgs: 5, Seed: seed},
	}
}

// sleepSpec is a test-pattern job that holds a worker for ms milliseconds.
func sleepSpec(ms int64) JobSpec {
	return JobSpec{
		Config:   ConfigSpec{Switching: "tdm-dynamic", N: 4},
		Workload: WorkloadSpec{Pattern: "sleep", SleepMS: ms},
	}
}

// post submits a spec and returns the response; wait selects synchronous
// mode.
func post(t *testing.T, ts *httptest.Server, spec JobSpec, wait bool) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	url := ts.URL + "/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls a job until it leaves the transient states.
func waitTerminal(t *testing.T, ts *httptest.Server, id string, within time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func fetchMetrics(t *testing.T, ts *httptest.Server) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAdmissionRejectsInvalidSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name      string
		spec      JobSpec
		wantField string
	}{
		{"unknown switching", JobSpec{Config: ConfigSpec{Switching: "warp-drive", N: 16},
			Workload: WorkloadSpec{Pattern: "scatter"}}, "config.switching"},
		{"bad N", JobSpec{Config: ConfigSpec{Switching: "tdm-dynamic", N: 1},
			Workload: WorkloadSpec{Pattern: "scatter"}}, "config.n"},
		{"unknown pattern", JobSpec{Config: ConfigSpec{Switching: "tdm-dynamic", N: 16},
			Workload: WorkloadSpec{Pattern: "nonsense"}}, "workload.pattern"},
		{"bad fabric", JobSpec{Config: ConfigSpec{Switching: "tdm-dynamic", N: 16, Fabric: "torus"},
			Workload: WorkloadSpec{Pattern: "scatter"}}, "config.fabric"},
		{"bad planner", JobSpec{Config: ConfigSpec{Switching: "tdm-preload", N: 16, Planner: "greedy"},
			Workload: WorkloadSpec{Pattern: "two-phase"}}, "config.planner"},
		{"planner on reactive mode", JobSpec{Config: ConfigSpec{Switching: "tdm-dynamic", N: 16, Planner: "solstice"},
			Workload: WorkloadSpec{Pattern: "scatter"}}, "config.planner"},
		{"negative deadline", JobSpec{Config: ConfigSpec{Switching: "tdm-dynamic", N: 16},
			Workload: WorkloadSpec{Pattern: "scatter"}, DeadlineMS: -1}, "deadline_ms"},
	}
	for _, tc := range cases {
		resp, body := post(t, ts, tc.spec, true)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, resp.StatusCode, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("%s: undecodable error body %q", tc.name, body)
		}
		if eb.Field != tc.wantField {
			t.Errorf("%s: field %q, want %q", tc.name, eb.Field, tc.wantField)
		}
	}
	if m := fetchMetrics(t, ts); m.Rejected400 != uint64(len(cases)) {
		t.Errorf("rejected_400 = %d, want %d", m.Rejected400, len(cases))
	}
}

func TestRunsRealSimulationJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := post(t, ts, simSpec(1), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state %s, want done", st.State)
	}
	var res JobResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Messages == 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestQueueSaturationBackpressureDropsNothing(t *testing.T) {
	// One worker pinned by a long sleep job, queue capacity 2: the third
	// and later concurrent submissions must get 429 + Retry-After, and
	// every job the server accepted (202) must still reach a terminal
	// state — backpressure refuses at the door, it never sheds admitted
	// work.
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 2, RetryAfter: time.Second})

	resp, body := post(t, ts, sleepSpec(300), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pin job: status %d, body %s", resp.StatusCode, body)
	}
	var pin JobStatus
	if err := json.Unmarshal(body, &pin); err != nil {
		t.Fatal(err)
	}
	// Wait for the pin job to occupy the worker so the queue state is
	// deterministic.
	for getStatus(t, ts, pin.ID).State != StateRunning {
		time.Sleep(time.Millisecond)
	}

	var accepted []string
	var rejected int
	for i := 0; i < 6; i++ {
		resp, body := post(t, ts, sleepSpec(10), false)
		switch resp.StatusCode {
		case http.StatusAccepted:
			var st JobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatal(err)
			}
			accepted = append(accepted, st.ID)
		case http.StatusTooManyRequests:
			rejected++
			if ra := resp.Header.Get("Retry-After"); ra != "1" {
				t.Fatalf("429 without usable Retry-After (got %q)", ra)
			}
		default:
			t.Fatalf("submit %d: unexpected status %d (body %s)", i, resp.StatusCode, body)
		}
	}
	if len(accepted) != 2 {
		t.Fatalf("accepted %d jobs into a capacity-2 queue, want exactly 2", len(accepted))
	}
	if rejected != 4 {
		t.Fatalf("rejected %d submissions, want 4", rejected)
	}

	// Every accepted job completes exactly once; nothing was dropped.
	for _, id := range accepted {
		if st := waitTerminal(t, ts, id, 5*time.Second); st.State != StateDone {
			t.Fatalf("accepted job %s ended %s (%s), want done", id, st.State, st.Error)
		}
	}
	if st := waitTerminal(t, ts, pin.ID, 5*time.Second); st.State != StateDone {
		t.Fatalf("pin job ended %s, want done", st.State)
	}
	m := fetchMetrics(t, ts)
	if m.Rejected429 != 4 {
		t.Errorf("rejected_429 = %d, want 4", m.Rejected429)
	}
	if m.Completed != 3 {
		t.Errorf("completed = %d, want 3 (pin + 2 accepted)", m.Completed)
	}
}

func TestPerJobDeadlineFiresAndFreesWorker(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := sleepSpec(10_000)
	spec.DeadlineMS = 50
	start := time.Now()
	resp, body := post(t, ts, spec, true)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDeadline {
		t.Fatalf("state %s, want deadline", st.State)
	}

	// The single worker must be free for the next job long before the
	// abandoned 10 s sleep would have finished.
	resp, body = post(t, ts, simSpec(1), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up job: status %d (body %s) — worker not freed by deadline", resp.StatusCode, body)
	}
	if m := fetchMetrics(t, ts); m.Deadlines != 1 {
		t.Errorf("deadlines = %d, want 1", m.Deadlines)
	}
}

func TestPanicIsolationPoolSelfHeals(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := JobSpec{
		Config:   ConfigSpec{Switching: "tdm-dynamic", N: 4},
		Workload: WorkloadSpec{Pattern: "panic"},
	}
	resp, body := post(t, ts, spec, true)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %s)", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StatePanicked {
		t.Fatalf("state %s, want panicked", st.State)
	}
	if st.Stack == "" {
		t.Fatal("panicked job carries no stack trace")
	}

	// The pool survived: the same (sole) worker keeps serving.
	for i := int64(0); i < 3; i++ {
		resp, body := post(t, ts, simSpec(10+i), true)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-panic job %d: status %d (body %s)", i, resp.StatusCode, body)
		}
	}
	m := fetchMetrics(t, ts)
	if m.Panicked != 1 {
		t.Errorf("panicked = %d, want 1", m.Panicked)
	}
	if m.Completed != 3 {
		t.Errorf("completed = %d, want 3", m.Completed)
	}
}

func TestCancelQueuedJobNeverExecutes(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCapacity: 4})
	// Pin the worker, then queue a job and cancel it while queued.
	_, pinBody := post(t, ts, sleepSpec(200), false)
	var pin JobStatus
	if err := json.Unmarshal(pinBody, &pin); err != nil {
		t.Fatal(err)
	}
	_, qBody := post(t, ts, sleepSpec(50), false)
	var queued JobStatus
	if err := json.Unmarshal(qBody, &queued); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	if st := getStatus(t, ts, queued.ID); st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", st.State)
	}
	// The pin job still completes, and the cancelled job never ran: its
	// StartedAt stays unset.
	if st := waitTerminal(t, ts, pin.ID, 5*time.Second); st.State != StateDone {
		t.Fatalf("pin job ended %s", st.State)
	}
	if st := getStatus(t, ts, queued.ID); st.StartedAt != nil {
		t.Fatal("cancelled queued job was executed anyway")
	}
}

func TestCancelRunningJobFreesWorker(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, body := post(t, ts, sleepSpec(10_000), false)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	for getStatus(t, ts, st.ID).State != StateRunning {
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := waitTerminal(t, ts, st.ID, 2*time.Second); got.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", got.State)
	}
	// Worker is free immediately, not after the abandoned 10 s sleep.
	if resp, body := post(t, ts, simSpec(2), true); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel job: status %d (body %s)", resp.StatusCode, body)
	}
}

func TestCachedReplayIsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := post(t, ts, simSpec(7), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh run: status %d (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") == "hit" {
		t.Fatal("first run cannot be a cache hit")
	}
	var fresh JobStatus
	if err := json.Unmarshal(body, &fresh); err != nil {
		t.Fatal(err)
	}
	freshBytes := fetchResult(t, ts, fresh.ID)

	resp, body = post(t, ts, simSpec(7), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatal("identical resubmission missed the cache")
	}
	var replay JobStatus
	if err := json.Unmarshal(body, &replay); err != nil {
		t.Fatal(err)
	}
	if !replay.Cached {
		t.Fatal("replay status not marked cached")
	}
	replayBytes := fetchResult(t, ts, replay.ID)
	if !bytes.Equal(freshBytes, replayBytes) {
		t.Fatalf("cached replay diverges from fresh run:\nfresh:  %s\nreplay: %s", freshBytes, replayBytes)
	}

	// A semantically different job (other seed) must not hit.
	resp, _ = post(t, ts, simSpec(8), true)
	if resp.Header.Get("X-Cache") == "hit" {
		t.Fatal("different seed wrongly hit the cache")
	}
	m := fetchMetrics(t, ts)
	if m.CacheHits != 1 || m.CacheMisses != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 1/2", m.CacheHits, m.CacheMisses)
	}
}

func fetchResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGracefulShutdownDrainsUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueCapacity: 16})
	var ids []string
	for i := 0; i < 8; i++ {
		resp, body := post(t, ts, sleepSpec(30), false)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	// Every admitted job drained to done — none aborted, none dropped.
	for _, id := range ids {
		j, ok := s.lookup(id)
		if !ok {
			t.Fatalf("job %s vanished during drain", id)
		}
		if state, _, _, _, _, _, _ := j.snapshot(); state != StateDone {
			t.Fatalf("job %s ended %s after a clean drain, want done", id, state)
		}
	}
	// Post-drain admission refuses with 503.
	if resp, _ := post(t, ts, sleepSpec(1), false); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, want 503", resp.StatusCode)
	}
}

func TestShutdownAbortsAfterDrainDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	_, body := post(t, ts, sleepSpec(30_000), false)
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	for getStatus(t, ts, st.ID).State != StateRunning {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown reported a clean drain with a 30 s job running")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v; the drain deadline is not being honored", elapsed)
	}
	j, ok := s.lookup(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if state, _, _, _, _, _, _ := j.snapshot(); state != StateCancelled {
		t.Fatalf("aborted job ended %s, want cancelled", state)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Liveness stays up while draining/drained; readiness degrades.
	respH := httptest.NewRecorder()
	s.ServeHTTP(respH, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if respH.Code != http.StatusOK {
		t.Fatalf("healthz after shutdown = %d, want 200", respH.Code)
	}
	respR := httptest.NewRecorder()
	s.ServeHTTP(respR, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if respR.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown = %d, want 503", respR.Code)
	}
}

func TestMultiSeedJobReportsInSeedOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := simSpec(1)
	spec.Workload.Seeds = 3
	resp, body := post(t, ts, spec, true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s)", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	var res JobResult
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(res.Reports))
	}
	// Seeds differ, so at least one pair of makespans should too; equal
	// reports across all three would mean the seed was not threaded.
	if res.Reports[0].Makespan == res.Reports[1].Makespan &&
		res.Reports[1].Makespan == res.Reports[2].Makespan {
		t.Fatal("all seeds produced identical makespans; seed fan-out is broken")
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestJobRegistryPrunesTerminalJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxJobs: 4})
	var firstID string
	for i := int64(0); i < 8; i++ {
		resp, body := post(t, ts, simSpec(100+i), true)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("job %d: status %d", i, resp.StatusCode)
		}
		if i == 0 {
			var st JobStatus
			if err := json.Unmarshal(body, &st); err != nil {
				t.Fatal(err)
			}
			firstID = st.ID
		}
	}
	s.jobMu.Lock()
	n := len(s.jobs)
	s.jobMu.Unlock()
	if n > 4 {
		t.Fatalf("registry holds %d jobs, bound is 4", n)
	}
	if _, ok := s.lookup(firstID); ok {
		t.Fatal("oldest terminal job survived pruning")
	}
	_ = fmt.Sprintf("%s", firstID)
}

// TestMetricsAggregateSchedCounters pins the /metrics scheduler aggregation:
// a freshly completed warm-start job contributes its report's sched-cache and
// warm-start counters, and a cached replay of the same job contributes
// nothing (the simulation never re-ran).
func TestMetricsAggregateSchedCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := JobSpec{
		Config:   ConfigSpec{Switching: "tdm-dynamic", N: 16, SchedWarmStart: true},
		Workload: WorkloadSpec{Pattern: "random-mesh", Msgs: 20, Seed: 3},
	}
	if resp, body := post(t, ts, spec, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm job: status %d: %s", resp.StatusCode, body)
	}
	m := fetchMetrics(t, ts)
	if m.SchedCacheHits+m.SchedCacheMisses == 0 {
		t.Error("sched cache counters stayed zero after a completed TDM job")
	}
	if m.SchedWarmHits+m.SchedWarmMisses == 0 {
		t.Error("warm counters stayed zero after a completed warm-start job")
	}
	// The replay is a service-cache hit: aggregates must not move.
	if resp, body := post(t, ts, spec, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d: %s", resp.StatusCode, body)
	}
	m2 := fetchMetrics(t, ts)
	if m2.CacheHits != m.CacheHits+1 {
		t.Fatalf("replay was not a cache hit: %+v -> %+v", m, m2)
	}
	if m2.SchedWarmHits != m.SchedWarmHits || m2.SchedCacheMisses != m.SchedCacheMisses ||
		m2.SchedDirtyRows != m.SchedDirtyRows {
		t.Errorf("cached replay moved the sched aggregates: %+v -> %+v", m, m2)
	}
}

func TestMetricsAggregatePlanCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := JobSpec{
		Config:   ConfigSpec{Switching: "tdm-preload", N: 16, Planner: "solstice"},
		Workload: WorkloadSpec{Pattern: "two-phase", Seed: 3},
	}
	if resp, body := post(t, ts, spec, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("planned job: status %d: %s", resp.StatusCode, body)
	}
	m := fetchMetrics(t, ts)
	if m.PlannedRuns != 1 {
		t.Errorf("planned_runs = %d, want 1", m.PlannedRuns)
	}
	if m.PlanConfigs == 0 {
		t.Error("plan_configs stayed zero after a completed planned job")
	}
	// The replay is a service-cache hit: plan aggregates must not move.
	if resp, body := post(t, ts, spec, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: status %d: %s", resp.StatusCode, body)
	}
	if m2 := fetchMetrics(t, ts); m2.PlannedRuns != m.PlannedRuns || m2.PlanConfigs != m.PlanConfigs {
		t.Errorf("cached replay moved the plan aggregates: %+v -> %+v", m, m2)
	}
	// An unplanned job contributes nothing.
	if resp, body := post(t, ts, simSpec(9), true); resp.StatusCode != http.StatusOK {
		t.Fatalf("unplanned job: status %d: %s", resp.StatusCode, body)
	}
	if m3 := fetchMetrics(t, ts); m3.PlannedRuns != m.PlannedRuns {
		t.Errorf("unplanned job bumped planned_runs to %d", m3.PlannedRuns)
	}
}
