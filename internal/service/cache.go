package service

import "sync"

// resultCache memoizes completed simulation results. Runs are bit-
// reproducible pure functions of (config, workload), so a hit can serve the
// stored bytes verbatim — byte-identical to a fresh run — without touching
// the queue or a worker. That makes repeated requests (parameter sweeps
// re-submitted by many clients, optimizer jobs retrying after a 429)
// nearly free, which is itself a robustness property: a retry storm of
// known-work costs one map lookup per request.
//
// Eviction is FIFO over a bounded entry count: simple, O(1), and fair
// enough for a cache whose entries are all equally valid forever (results
// never go stale — only cold).
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey][]byte
	order   []cacheKey
}

// newResultCache builds a cache bounded to max entries; max <= 0 disables
// caching entirely (every lookup misses, every store is dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, entries: make(map[cacheKey][]byte)}
}

// get returns the stored result bytes for the key. The caller must not
// mutate them.
func (c *resultCache) get(k cacheKey) ([]byte, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[k]
	return v, ok
}

// put stores a result, evicting the oldest entry when full. Storing an
// existing key is a no-op (the bytes are equal by determinism).
func (c *resultCache) put(k cacheKey, v []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[k] = v
	c.order = append(c.order, k)
}

// len is the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
