// Package service is the hardened simulation-as-a-service layer behind
// cmd/pmsd: an HTTP/JSON front end over the pmsnet library with the
// robustness envelope a shared long-lived process needs — admission
// validation, a bounded job queue with explicit backpressure, a worker pool
// with per-job deadlines, cancellation and panic isolation, a deterministic
// result cache keyed on (config hash, workload hash), and graceful drain on
// shutdown. The same disciplines the simulated switch applies to keep a
// shared fabric stable under offered load beyond capacity (bounded VOQs,
// arbitration, degradation instead of collapse) applied to the system that
// runs the simulations.
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"pmsnet"
)

// JobSpec is the JSON body of POST /jobs: which network to simulate and
// what workload to drive it with, plus an optional per-job deadline.
type JobSpec struct {
	Config   ConfigSpec   `json:"config"`
	Workload WorkloadSpec `json:"workload"`
	// DeadlineMS overrides the server's default per-job deadline, capped at
	// the server's maximum. Zero means the default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// ConfigSpec mirrors pmsnet.Config with the string vocabularies of the
// cmd/pmsim flags; zero values take the library defaults.
type ConfigSpec struct {
	Switching         string `json:"switching"`
	N                 int    `json:"n"`
	K                 int    `json:"k,omitempty"`
	PreloadSlots      int    `json:"preload_slots,omitempty"`
	Eviction          string `json:"eviction,omitempty"`
	EvictionTimeoutNS int64  `json:"eviction_timeout_ns,omitempty"`
	EvictionThreshold uint64 `json:"eviction_threshold,omitempty"`
	AmplifyBytes      int    `json:"amplify_bytes,omitempty"`
	Fabric            string `json:"fabric,omitempty"`
	// Faults is a fault-plan spec in the pmsnet.ParseFaults syntax.
	Faults     string `json:"faults,omitempty"`
	SchedCache *bool  `json:"sched_cache,omitempty"`
	// Scheduler selects the TDM scheduling algorithm (paper, islip,
	// wavefront); empty means the paper scheduler.
	Scheduler string `json:"scheduler,omitempty"`
	// Planner selects the preload planner for tdm-preload/tdm-hybrid
	// (static, solstice, bvn); empty means the static decomposition.
	Planner string `json:"planner,omitempty"`
	// SchedShards and SchedWarmStart are the execution-only scheduler
	// knobs: bit-identical results, wall-clock cost only. They do not
	// fragment the result cache (excluded from Config.Hash).
	SchedShards    int  `json:"sched_shards,omitempty"`
	SchedWarmStart bool `json:"sched_warm_start,omitempty"`
}

// WorkloadSpec selects a workload from the shared generator registry (the
// cmd/pmsim -pattern vocabulary) or carries an inline PMSTRACE program.
// Pattern is a generator spec `name[:key=value,...]`; spec parameters win,
// and the flat JSON fields (size, msgs, rounds, distance, determinism,
// think_ns) fill in any matching parameter the spec leaves unset. Unknown
// pattern names are rejected at admission with a 400 naming the full
// vocabulary. Seeds > 1 fans the pattern out over consecutive seeds inside
// one job.
type WorkloadSpec struct {
	Pattern     string  `json:"pattern"`
	N           int     `json:"n,omitempty"` // defaults to Config.N
	Size        int     `json:"size,omitempty"`
	Msgs        int     `json:"msgs,omitempty"`
	Rounds      int     `json:"rounds,omitempty"`
	Distance    int     `json:"distance,omitempty"`
	Determinism float64 `json:"determinism,omitempty"`
	ThinkNS     int64   `json:"think_ns,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	Seeds       int     `json:"seeds,omitempty"`
	// Trace is an inline PMSTRACE command file, used when Pattern is
	// "trace".
	Trace string `json:"trace,omitempty"`
	// SleepMS parameterizes the "sleep" test pattern (Config.TestPatterns
	// servers only).
	SleepMS int64 `json:"sleep_ms,omitempty"`
}

// AdmissionError is a request the service refuses at the door: malformed
// spec, unknown vocabulary, or a config rejected by pmsnet validation. It
// always maps to HTTP 400. Field names the offending spec field when known.
type AdmissionError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *AdmissionError) Error() string {
	if e.Field == "" {
		return "service: " + e.Reason
	}
	return fmt.Sprintf("service: invalid %s: %s", e.Field, e.Reason)
}

// State is a job's position in its lifecycle.
type State string

// Job lifecycle states. Queued and Running are transient; the rest are
// terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"    // the simulation returned an error
	StatePanicked  State = "panicked"  // the simulation crashed; stack captured
	StateDeadline  State = "deadline"  // the per-job deadline fired
	StateCancelled State = "cancelled" // DELETE /jobs/{id} or shutdown abort
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s != StateQueued && s != StateRunning }

// cacheKey identifies a deterministic simulation outcome: the config
// fingerprint and the workload fingerprint (which covers the seed). Two
// jobs with equal keys are bit-reproducible replays of each other.
type cacheKey struct {
	config   uint64
	workload uint64
}

// Job is one admitted simulation request moving through the queue and pool.
type Job struct {
	ID   string
	Spec JobSpec

	cfg      pmsnet.Config
	wls      []*pmsnet.Workload
	key      cacheKey
	deadline time.Duration
	// testPattern is "panic" or "sleep" on test-pattern jobs, else "".
	testPattern string

	ctx    context.Context
	cancel context.CancelFunc

	submitted time.Time
	done      chan struct{} // closed on the terminal transition

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	result   []byte // canonical JobResult JSON, set on StateDone
	cached   bool
	errMsg   string
	stack    string
}

// snapshot returns the mutable job fields under the lock.
func (j *Job) snapshot() (State, time.Time, time.Time, []byte, bool, string, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.started, j.finished, j.result, j.cached, j.errMsg, j.stack
}

// markRunning claims the job for a worker. It fails when the job was
// cancelled while queued, which is how a queued-then-DELETEd job is skipped
// instead of executed.
func (j *Job) markRunning(at time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = at
	return true
}

// finish moves the job to a terminal state exactly once; later calls are
// no-ops (a worker reporting a result after a DELETE already cancelled the
// job, for example). It returns whether this call performed the transition,
// which is what keeps the terminal metrics exactly-once under cancel/worker
// races. The job's context is released on the way out so the server's base
// context does not accumulate dead children.
func (j *Job) finish(state State, result []byte, errMsg, stack string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.finished = time.Now()
	j.result = result
	j.errMsg = errMsg
	j.stack = stack
	close(j.done)
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// buildJob validates and compiles a spec into an executable job. Every
// rejection is an *AdmissionError (HTTP 400).
func (s *Server) buildJob(spec JobSpec) (*Job, error) {
	cfg, err := buildConfig(spec.Config)
	if err != nil {
		return nil, err
	}
	if spec.DeadlineMS < 0 {
		return nil, &AdmissionError{Field: "deadline_ms", Reason: "must not be negative"}
	}
	deadline := s.cfg.DefaultDeadline
	if spec.DeadlineMS > 0 {
		deadline = time.Duration(spec.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}

	j := &Job{
		Spec:     spec,
		cfg:      cfg,
		deadline: deadline,
		state:    StateQueued,
		done:     make(chan struct{}),
	}
	if s.cfg.TestPatterns && (spec.Workload.Pattern == "panic" || spec.Workload.Pattern == "sleep") {
		j.testPattern = spec.Workload.Pattern
		if spec.Workload.Pattern == "sleep" && spec.Workload.SleepMS <= 0 {
			return nil, &AdmissionError{Field: "workload.sleep_ms", Reason: "sleep pattern needs a positive duration"}
		}
		// Test patterns are deliberately uncacheable: give each a unique key.
		j.key = cacheKey{config: cfg.Hash(), workload: s.nextID.Add(1) | 1<<63}
		return j, nil
	}

	if err := cfg.Validate(); err != nil {
		var ce *pmsnet.ConfigError
		if errors.As(err, &ce) {
			return nil, &AdmissionError{Field: "config." + strings.ToLower(ce.Field), Reason: ce.Reason}
		}
		return nil, &AdmissionError{Field: "config", Reason: err.Error()}
	}
	wls, err := buildWorkloads(cfg, spec.Workload)
	if err != nil {
		return nil, err
	}
	j.wls = wls
	// The cache key covers every workload in the job: equal only when the
	// whole (config, workload list) pair replays bit-identically.
	wh, err := combinedWorkloadHash(wls)
	if err != nil {
		return nil, &AdmissionError{Field: "workload", Reason: err.Error()}
	}
	j.key = cacheKey{config: cfg.Hash(), workload: wh}
	return j, nil
}

// buildConfig maps the string-vocabulary spec onto a pmsnet.Config.
func buildConfig(spec ConfigSpec) (pmsnet.Config, error) {
	cfg := pmsnet.Config{
		N:                 spec.N,
		K:                 spec.K,
		PreloadSlots:      spec.PreloadSlots,
		EvictionTimeout:   time.Duration(spec.EvictionTimeoutNS),
		EvictionThreshold: spec.EvictionThreshold,
		AmplifyBytes:      spec.AmplifyBytes,
		SchedCache:        spec.SchedCache,
		SchedShards:       spec.SchedShards,
		SchedWarmStart:    spec.SchedWarmStart,
		Parallelism:       1, // each job owns exactly one worker
	}
	var err error
	if cfg.Switching, err = pmsnet.ParseSwitching(spec.Switching); err != nil {
		return cfg, &AdmissionError{Field: "config.switching", Reason: err.Error()}
	}
	if spec.Scheduler != "" {
		if cfg.Scheduler, err = pmsnet.ParseScheduler(spec.Scheduler); err != nil {
			return cfg, &AdmissionError{Field: "config.scheduler", Reason: err.Error()}
		}
	}
	if spec.Planner != "" {
		if cfg.Planner, err = pmsnet.ParsePlanner(spec.Planner); err != nil {
			return cfg, &AdmissionError{Field: "config.planner", Reason: err.Error()}
		}
	}
	if spec.Eviction != "" {
		if cfg.Eviction, err = pmsnet.ParseEviction(spec.Eviction); err != nil {
			return cfg, &AdmissionError{Field: "config.eviction", Reason: err.Error()}
		}
	}
	if spec.Fabric != "" {
		if cfg.Fabric, err = pmsnet.ParseFabric(spec.Fabric); err != nil {
			return cfg, &AdmissionError{Field: "config.fabric", Reason: err.Error()}
		}
	}
	if spec.Faults != "" {
		plan, err := pmsnet.ParseFaults(spec.Faults)
		if err != nil {
			return cfg, &AdmissionError{Field: "config.faults", Reason: err.Error()}
		}
		cfg.Faults = plan
	}
	return cfg, nil
}

// buildWorkloads compiles the workload spec: one workload per seed. The
// pattern constructors enforce their contracts (perfect-square N for
// transpose, power-of-two N for bit-reverse, N >= 2, ...) by panicking;
// admission must stay panic-free, so those contract violations are caught
// here and surfaced as 400s.
func buildWorkloads(cfg pmsnet.Config, spec WorkloadSpec) (wls []*pmsnet.Workload, err error) {
	defer func() {
		if r := recover(); r != nil {
			wls, err = nil, &AdmissionError{Field: "workload", Reason: fmt.Sprint(r)}
		}
	}()
	return buildWorkloadList(cfg, spec)
}

func buildWorkloadList(cfg pmsnet.Config, spec WorkloadSpec) ([]*pmsnet.Workload, error) {
	n := spec.N
	if n == 0 {
		n = cfg.N
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	seeds := spec.Seeds
	if seeds == 0 {
		seeds = 1
	}
	if seeds < 0 || seeds > 1024 {
		return nil, &AdmissionError{Field: "workload.seeds", Reason: "must be within [1, 1024]"}
	}

	one := func(seed int64) (*pmsnet.Workload, error) {
		if spec.Pattern == "trace" {
			if spec.Trace == "" {
				return nil, &AdmissionError{Field: "workload.trace", Reason: "pattern \"trace\" needs an inline PMSTRACE program"}
			}
			wl, err := pmsnet.ReadTrace(strings.NewReader(spec.Trace))
			if err != nil {
				return nil, &AdmissionError{Field: "workload.trace", Reason: err.Error()}
			}
			return wl, nil
		}
		ws, err := pmsnet.ParseWorkloadSpec(spec.Pattern)
		if err != nil {
			// The parse error names the whole registered vocabulary, so a
			// typo'd pattern 400 tells the client what is valid.
			return nil, &AdmissionError{Field: "workload.pattern", Reason: err.Error()}
		}
		// Fold the flat JSON fields in under the spec: only fields the client
		// set (non-zero), only parameters the family has, spec values win.
		for _, o := range []struct{ key, value, field string }{
			{"bytes", strconv.Itoa(spec.Size), "size"},
			{"msgs", strconv.Itoa(spec.Msgs), "msgs"},
			{"rounds", strconv.Itoa(spec.Rounds), "rounds"},
			{"distance", strconv.Itoa(spec.Distance), "distance"},
			{"determinism", strconv.FormatFloat(spec.Determinism, 'g', -1, 64), "determinism"},
			{"think", time.Duration(spec.ThinkNS).String(), "think_ns"},
		} {
			if o.value == "0" || o.value == "0s" {
				continue
			}
			if err := ws.Default(o.key, o.value); err != nil {
				return nil, &AdmissionError{Field: "workload." + o.field, Reason: err.Error()}
			}
		}
		wl, err := ws.Generate(n, seed)
		if err != nil {
			return nil, &AdmissionError{Field: "workload", Reason: err.Error()}
		}
		return wl, nil
	}

	wls := make([]*pmsnet.Workload, seeds)
	for i := range wls {
		wl, err := one(seed + int64(i))
		if err != nil {
			return nil, err
		}
		wls[i] = wl
	}
	return wls, nil
}

// combinedWorkloadHash folds the per-workload fingerprints of a multi-seed
// job into one, order-sensitively.
func combinedWorkloadHash(wls []*pmsnet.Workload) (uint64, error) {
	var h uint64 = 1469598103934665603 // FNV-64a offset basis
	for _, wl := range wls {
		wh, err := wl.Hash()
		if err != nil {
			return 0, err
		}
		for shift := 0; shift < 64; shift += 8 {
			h ^= (wh >> shift) & 0xff
			h *= 1099511628211
		}
	}
	return h, nil
}
