// Package integration cross-checks every network model against every
// workload family under one set of system-wide invariants: completion, byte
// conservation, causal latencies, bounded efficiency, and bit-for-bit
// determinism. These are the properties that must survive any future change
// to any model.
package integration

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"pmsnet/internal/circuit"
	"pmsnet/internal/fabric"
	"pmsnet/internal/meshnet"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/traffic"
	"pmsnet/internal/voq"
	"pmsnet/internal/wormhole"
)

const n = 16

func networks(t *testing.T) []netmodel.Network {
	t.Helper()
	var nets []netmodel.Network
	add := func(nw netmodel.Network, err error) {
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, nw)
	}
	add(wormhole.New(wormhole.Config{N: n}))
	add(circuit.New(circuit.Config{N: n}))
	add(voq.New(voq.Config{N: n}))
	add(voq.New(voq.Config{N: n, Iterations: 4}))
	add(tdm.New(tdm.Config{N: n, K: 4}))
	add(tdm.New(tdm.Config{N: n, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(500) }}))
	add(tdm.New(tdm.Config{N: n, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewCounter(8) }}))
	add(tdm.New(tdm.Config{N: n, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewMarkov(1000, 1) }}))
	add(tdm.New(tdm.Config{N: n, K: 4, Mode: tdm.Preload}))
	add(tdm.New(tdm.Config{N: n, K: 3, Mode: tdm.Hybrid, PreloadSlots: 1,
		NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(250) }}))
	add(tdm.New(tdm.Config{N: n, K: 4, Fabric: fabric.KindOmega}))
	add(tdm.New(tdm.Config{N: n, K: 4, Mode: tdm.Preload, Fabric: fabric.KindOmega}))
	add(tdm.New(tdm.Config{N: n, K: 4, AmplifyBytes: 256,
		NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(500) }}))
	add(meshnet.NewWormhole(meshnet.WormholeConfig{N: n}))
	add(meshnet.NewTDM(meshnet.TDMConfig{N: n, K: 4}))
	return nets
}

func workloads() []*traffic.Workload {
	return []*traffic.Workload{
		traffic.Scatter(n, 64),
		traffic.Scatter(n, 2048),
		traffic.OrderedMesh(n, 8, 4),
		traffic.OrderedMesh(n, 512, 2),
		traffic.RandomMesh(n, 64, 8, 1),
		traffic.AllToAll(n, 32),
		traffic.TwoPhase(n, 64, 2),
		traffic.Mix(n, 64, 8, 0.7, 150, 3),
		traffic.Hotspot(n, 32, 4, 1024, 6, 5),
		traffic.Transpose(n, 64, 4),
		traffic.BitReverse(n, 64, 4),
		traffic.Shift(n, 64, 4, 3),
		experimentsCyclic(),
	}
}

// experimentsCyclic builds a sparse cyclic workload inline (avoiding a
// dependency on internal/experiments, which imports this package's
// dependents).
func experimentsCyclic() *traffic.Workload {
	w := &traffic.Workload{Name: "cyclic", N: n, Programs: make([]traffic.Program, n)}
	for p := 0; p < n; p++ {
		var ops []traffic.Op
		for c := 0; c < 3; c++ {
			for _, d := range []int{(p + 1) % n, (p + 5) % n} {
				if d == p {
					continue
				}
				ops = append(ops, traffic.Send(d, 16), traffic.Delay(700))
			}
		}
		w.Programs[p] = traffic.Program{Ops: ops}
	}
	return w
}

// TestInvariantsEveryNetworkEveryWorkload is the full cross product.
func TestInvariantsEveryNetworkEveryWorkload(t *testing.T) {
	for _, wl := range workloads() {
		for _, nw := range networks(t) {
			name := fmt.Sprintf("%s/%s", nw.Name(), wl.Name)
			t.Run(name, func(t *testing.T) {
				res, err := nw.Run(wl)
				if err != nil {
					// Preload-only networks legitimately reject workloads
					// whose traffic is not statically covered; everything
					// else is a real failure — and a stall always is.
					if errors.Is(err, netmodel.ErrStalled) {
						t.Fatalf("stalled: %v", err)
					}
					if strings.Contains(err.Error(), "static phase") {
						t.Skipf("not statically servable: %v", err)
					}
					t.Fatalf("run failed: %v", err)
				}
				assertInvariants(t, wl, res)
			})
		}
	}
}

func assertInvariants(t *testing.T, wl *traffic.Workload, res metrics.Result) {
	t.Helper()
	if res.Messages != wl.MessageCount() {
		t.Fatalf("delivered %d of %d messages", res.Messages, wl.MessageCount())
	}
	if res.Bytes != wl.TotalBytes() {
		t.Fatalf("delivered %d of %d bytes", res.Bytes, wl.TotalBytes())
	}
	if res.Efficiency <= 0 || res.Efficiency > 1 {
		t.Fatalf("efficiency %v outside (0,1]", res.Efficiency)
	}
	if res.Makespan <= 0 {
		t.Fatalf("makespan %v", res.Makespan)
	}
	// No message can beat the physical floor: NIC send + one-way pipe +
	// NIC receive (every paradigm pays at least serdes + wire + receive).
	const floor = sim.Time(10 + 80 + 10)
	if res.LatencyP50 < floor {
		t.Fatalf("median latency %v below the physical floor %v", res.LatencyP50, floor)
	}
	if res.LatencyMax < res.LatencyP95 || res.LatencyP95 < res.LatencyP50 {
		t.Fatalf("latency percentiles out of order: %v %v %v",
			res.LatencyP50, res.LatencyP95, res.LatencyMax)
	}
	if res.FairnessJain <= 0 || res.FairnessJain > 1.0000001 {
		t.Fatalf("Jain index %v out of range", res.FairnessJain)
	}
}

// TestDeterminismEveryNetwork re-runs one mixed workload twice per network
// and requires identical results.
func TestDeterminismEveryNetwork(t *testing.T) {
	wl := traffic.TwoPhase(n, 64, 9)
	for _, nw := range networks(t) {
		t.Run(nw.Name(), func(t *testing.T) {
			a, err := nw.Run(wl)
			if err != nil {
				t.Fatal(err)
			}
			b, err := nw.Run(wl)
			if err != nil {
				t.Fatal(err)
			}
			if a.Makespan != b.Makespan || a.Efficiency != b.Efficiency ||
				a.LatencyMean != b.LatencyMean || a.Stats != b.Stats {
				t.Fatalf("runs differ:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestFullScaleSpotCheck runs the paper-scale system once per paradigm to
// catch anything that only breaks at 128 ports.
func TestFullScaleSpotCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale spot check")
	}
	const big = 128
	wl := traffic.RandomMesh(big, 64, 10, 1)
	var nets []netmodel.Network
	wh, _ := wormhole.New(wormhole.Config{N: big})
	cs, _ := circuit.New(circuit.Config{N: big})
	dy, _ := tdm.New(tdm.Config{N: big, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(500) }})
	pr, _ := tdm.New(tdm.Config{N: big, K: 4, Mode: tdm.Preload})
	om, _ := tdm.New(tdm.Config{N: big, K: 4, Fabric: fabric.KindOmega})
	nets = append(nets, wh, cs, dy, pr, om)
	for _, nw := range nets {
		res, err := nw.Run(wl)
		if err != nil {
			t.Fatalf("%s: %v", nw.Name(), err)
		}
		if res.Messages != wl.MessageCount() {
			t.Fatalf("%s: delivered %d of %d", nw.Name(), res.Messages, wl.MessageCount())
		}
	}
}
