package tdm

import (
	"reflect"
	"testing"

	"pmsnet/internal/core"
	"pmsnet/internal/fabric"
	"pmsnet/internal/metrics"
	"pmsnet/internal/traffic"
)

// Identity suites for the scale-out execution knobs: the sparse request
// path and per-leaf sharded scheduling are performance features, so the
// pinned property is a bit-identical metrics.Result against the dense,
// unsharded run — in every mode, with the self-check armed.

func identityRun(t *testing.T, cfg Config, wl *traffic.Workload) metrics.Result {
	t.Helper()
	cfg.SelfCheck = true
	res, err := mustNew(t, cfg).Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func identityWorkloads() map[string]*traffic.Workload {
	return map[string]*traffic.Workload{
		"random-mesh": traffic.RandomMesh(16, 64, 8, 3),
		"all-to-all":  traffic.AllToAll(16, 64),
		"two-phase":   traffic.TwoPhase(16, 32, 5),
	}
}

// TestSparseDenseReportBitIdentical pins the sparse request path: turning
// Sparse off must not change a single field of the Result, across modes and
// fabrics, with and without the scheduler cache.
func TestSparseDenseReportBitIdentical(t *testing.T) {
	off, on := false, true
	configs := map[string]Config{
		"dynamic":          {N: 16, K: 4},
		"hybrid":           {N: 16, K: 4, Mode: Hybrid, PreloadSlots: 1},
		"dynamic/no-cache": {N: 16, K: 4, SchedCache: &off},
		"dynamic/benes":    {N: 16, K: 4, Fabric: fabric.KindBenes},
		"dynamic/omega":    {N: 16, K: 4, Fabric: fabric.KindOmega},
	}
	for mode, cfg := range configs {
		for wname, wl := range identityWorkloads() {
			sparse := cfg
			sparse.Sparse = &on
			dense := cfg
			dense.Sparse = &off
			want := identityRun(t, sparse, wl)
			got := identityRun(t, dense, wl)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: dense path drifted from sparse:\n sparse: %+v\n dense:  %+v",
					mode, wname, want, got)
			}
		}
	}
}

// TestShardedReportBitIdentical pins per-leaf sharded scheduling: any shard
// count — including counts above the leaf count, which clamp — must produce
// the same Result as the unsharded run on every leafed fabric.
func TestShardedReportBitIdentical(t *testing.T) {
	for _, fab := range []fabric.Kind{fabric.KindClos, fabric.KindBenes, fabric.KindOmega} {
		for wname, wl := range identityWorkloads() {
			base := identityRun(t, Config{N: 16, K: 4, Fabric: fab}, wl)
			for _, shards := range []int{2, 4, 64} {
				got := identityRun(t, Config{N: 16, K: 4, Fabric: fab, Shards: shards}, wl)
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s/%s: %d shards drifted from unsharded:\n base: %+v\n got:  %+v",
						fab, wname, shards, base, got)
				}
			}
		}
	}
}

// TestShardingDisengagesCleanly pins the gating: sharding only engages for
// the paper algorithm on the sparse path over a leafed fabric; every other
// combination silently runs unsharded and must stay bit-identical.
func TestShardingDisengagesCleanly(t *testing.T) {
	off := false
	wl := traffic.RandomMesh(16, 64, 6, 1)
	cases := map[string]Config{
		"crossbar has one leaf": {N: 16, K: 4, Shards: 4},
		"dense path":            {N: 16, K: 4, Fabric: fabric.KindClos, Shards: 4, Sparse: &off},
		"islip":                 {N: 16, K: 4, Fabric: fabric.KindClos, Shards: 4, Algorithm: core.AlgISLIP},
	}
	for name, cfg := range cases {
		unsharded := cfg
		unsharded.Shards = 0
		want := identityRun(t, unsharded, wl)
		got := identityRun(t, cfg, wl)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: shard request changed the report:\n want: %+v\n got:  %+v", name, want, got)
		}
	}
}

// TestAlternativeAlgorithmsDeliver smoke-tests the iSLIP and wavefront
// matchers end to end with the engine self-check armed: every message must
// arrive, and the network name must advertise the algorithm.
func TestAlternativeAlgorithmsDeliver(t *testing.T) {
	for _, alg := range []core.Algorithm{core.AlgISLIP, core.AlgWavefront} {
		for wname, wl := range identityWorkloads() {
			cfg := Config{N: 16, K: 4, Algorithm: alg}
			nw := mustNew(t, cfg)
			if name := nw.Name(); !contains(name, alg.String()) {
				t.Errorf("%s: network name %q does not mention the algorithm", alg, name)
			}
			res := identityRun(t, cfg, wl)
			if res.Messages != wl.MessageCount() {
				t.Errorf("%s/%s: delivered %d of %d messages", alg, wname, res.Messages, wl.MessageCount())
			}
		}
	}
	// The default paper algorithm keeps its undecorated name.
	if name := mustNew(t, Config{N: 16, K: 4}).Name(); contains(name, "paper") {
		t.Errorf("default network name %q should not be decorated with the algorithm", name)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
