package tdm

import (
	"reflect"
	"testing"

	"pmsnet/internal/fabric"
	"pmsnet/internal/plan"
	"pmsnet/internal/predictor"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// plannerWorkloads are phased workloads with static knowledge — the inputs
// the preload planners act on.
func plannerWorkloads() map[string]*traffic.Workload {
	return map[string]*traffic.Workload{
		"two-phase": traffic.TwoPhase(16, 32, 5),
		"skewed":    traffic.Skewed("skewed", 16, 64, 3, 8, []int{1, 2, 3, 4, 5, 6, 7, 8}),
	}
}

// TestStaticPlannerMatchesUnplannedPath pins the A/B contract end to end:
// running with the static planner must produce a bit-identical Result to
// running with no planner at all — same decomposition, same chunking, same
// slot registers, slot for slot. Planner and Plan* stats fields are the
// run's only planner-aware telemetry, so they are aligned before comparing.
func TestStaticPlannerMatchesUnplannedPath(t *testing.T) {
	configs := map[string]Config{
		"preload":      {N: 16, K: 4, Mode: Preload},
		"hybrid":       {N: 16, K: 4, Mode: Hybrid, PreloadSlots: 2},
		"preload/clos": {N: 16, K: 4, Mode: Preload, Fabric: fabric.KindClos},
	}
	for mode, cfg := range configs {
		for wname, wl := range plannerWorkloads() {
			planned := cfg
			planned.Planner = plan.Static{}
			want := identityRun(t, cfg, wl)
			got := identityRun(t, planned, wl)
			if got.Stats.Planner != "static" {
				t.Errorf("%s/%s: planner name %q not reported", mode, wname, got.Stats.Planner)
			}
			if got.Stats.PlanConfigs == 0 || got.Stats.PlanGroups == 0 {
				t.Errorf("%s/%s: plan stats empty: %+v", mode, wname, got.Stats)
			}
			got.Network = want.Network // names differ by the /plan= suffix
			got.Stats.Planner = ""
			got.Stats.PlanConfigs = 0
			got.Stats.PlanGroups = 0
			got.Stats.PlanResidualConns = 0
			got.Stats.PlanDrainSlots = 0
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: static planner drifted from the unplanned path:\n unplanned: %+v\n planned:   %+v",
					mode, wname, want, got)
			}
		}
	}
}

// TestOptimizingPlannersRun exercises solstice and bvn through the full
// simulation in both preload and hybrid modes: the run must complete, cover
// all traffic, and report plan statistics.
func TestOptimizingPlannersRun(t *testing.T) {
	for _, p := range []plan.Planner{plan.Solstice{}, plan.BvN{}} {
		for mode, cfg := range map[string]Config{
			"preload": {N: 16, K: 4, Mode: Preload},
			"hybrid":  {N: 16, K: 4, Mode: Hybrid, PreloadSlots: 2},
		} {
			cfg.Planner = p
			for wname, wl := range plannerWorkloads() {
				res := identityRun(t, cfg, wl)
				if res.Messages != wl.MessageCount() {
					t.Errorf("%s/%s/%s: delivered %d of %d messages",
						p.Name(), mode, wname, res.Messages, wl.MessageCount())
				}
				if res.Stats.Planner != p.Name() {
					t.Errorf("%s/%s/%s: planner name %q", p.Name(), mode, wname, res.Stats.Planner)
				}
				if res.Stats.PlanConfigs == 0 || res.Stats.PlanDrainSlots == 0 {
					t.Errorf("%s/%s/%s: plan stats empty: %+v", p.Name(), mode, wname, res.Stats)
				}
			}
		}
	}
}

// TestSolsticeBeatsStaticOnSkewedDemand is the planner's reason to exist:
// on a demand-skewed phased workload whose working-set degree exceeds the
// pinned region, the solstice schedule must drain the traffic in fewer
// simulated slots than the hand-written static preloads (reconfigurations
// charged — both pay the same group-swap machinery).
func TestSolsticeBeatsStaticOnSkewedDemand(t *testing.T) {
	wl := traffic.Skewed("skewed", 16, 64, 4, 8, []int{1, 2, 3, 4, 5, 6, 7, 8})
	static := identityRun(t, Config{N: 16, K: 4, Mode: Preload}, wl)
	planned := identityRun(t, Config{N: 16, K: 4, Mode: Preload, Planner: plan.Solstice{}}, wl)
	if planned.Makespan >= static.Makespan {
		t.Fatalf("solstice makespan %v not better than static %v", planned.Makespan, static.Makespan)
	}
	if planned.Efficiency <= static.Efficiency {
		t.Fatalf("solstice efficiency %.4f not better than static %.4f",
			planned.Efficiency, static.Efficiency)
	}
}

// TestPlannerResidualRidesDynamicPath pins the hybrid spill contract: a
// featherweight connection the plan drops must still be delivered — by the
// dynamic slots.
func TestPlannerResidualRidesDynamicPath(t *testing.T) {
	// A hot ring plus one featherweight straggler that cannot pay for a
	// pinned register.
	wl := traffic.Skewed("spill", 8, 64, 8, 4, []int{1})
	wl.Programs[0].Ops = append(wl.Programs[0].Ops, traffic.Send(5, 64))
	wl.StaticPhases = []*topology.WorkingSet{wl.ConnSet()}
	cfg := Config{N: 8, K: 4, Mode: Hybrid, PreloadSlots: 2, Planner: plan.Solstice{}}
	res := identityRun(t, cfg, wl)
	if res.Stats.PlanResidualConns == 0 {
		t.Fatal("solstice pinned the featherweight connection instead of spilling it")
	}
	if res.Messages != wl.MessageCount() {
		t.Fatalf("delivered %d of %d messages — residual traffic starved", res.Messages, wl.MessageCount())
	}
}

func TestPlannerValidation(t *testing.T) {
	if _, err := New(Config{N: 8, K: 4, Mode: Dynamic, Planner: plan.Solstice{}}); err == nil {
		t.Error("planner in dynamic mode should be rejected")
	}
	if _, err := New(Config{N: 8, K: 4, Mode: Hybrid, PreloadSlots: 0, Planner: plan.Solstice{}}); err == nil {
		t.Error("planner with zero pinned slots should be rejected")
	}
	if _, err := New(Config{N: 8, K: 4, Mode: Hybrid, PreloadSlots: 2, Planner: plan.Solstice{}}); err != nil {
		t.Errorf("valid hybrid planner config rejected: %v", err)
	}
}

// TestScheduleSlackPredictorRuns drives the planner-fed eviction signal
// through a dynamic run: plan the workload offline, feed the planned
// per-connection budgets to predictor.ScheduleSlack, and check the run
// completes with eviction activity.
func TestScheduleSlackPredictorRuns(t *testing.T) {
	wl := traffic.Skewed("skewed", 16, 64, 3, 8, []int{1, 2, 3, 4, 5, 6, 7, 8})
	d := plan.FromWorkload(wl, 64)
	sched, err := plan.Solstice{}.Plan(d, 4, 4, plan.Options{ReconfigSlots: 0.8, CoverAll: true})
	if err != nil {
		t.Fatal(err)
	}
	planned := sched.PlannedUses()
	cfg := Config{N: 16, K: 4, NewPredictor: func() predictor.Predictor {
		return predictor.NewScheduleSlack(planned, 500)
	}}
	res := identityRun(t, cfg, wl)
	if res.Messages != wl.MessageCount() {
		t.Fatalf("delivered %d of %d messages", res.Messages, wl.MessageCount())
	}
	if res.Stats.Evictions == 0 {
		t.Fatal("schedule-slack predictor never evicted on a skewed workload")
	}
}
