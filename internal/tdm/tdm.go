// Package tdm implements the predictive multiplexed switching network — the
// paper's proposed system. A 100 ns slot clock cycles the fabric through
// the scheduler's K configurations; connections are established reactively
// by the scheduling-logic array (internal/core), proactively by preloading
// compiled configurations, or both at once.
//
// Three modes reproduce the paper's evaluation:
//
//   - Dynamic: all K slots are scheduled reactively from the NICs' request
//     matrix ("Dynamic TDM" in Figure 4). An optional predictor latches
//     connections past their last request and evicts them later (§3.2).
//   - Preload: all K slots are pinned with compiled configurations obtained
//     by decomposing the workload's statically-known phases; a preload
//     controller swaps configuration groups as their traffic drains
//     ("Preload" in Figure 4).
//   - Hybrid: k slots are pinned with the static pattern and the remaining
//     K−k slots are scheduled reactively (Figure 5).
//
// The fabric the slots are realized on is pluggable (fabric.Backend): the
// baseline crossbar, the blocking Omega network, or the rearrangeably
// non-blocking Clos and Benes networks. On a blocking fabric the scheduler
// only establishes connections that keep each slot's configuration
// realizable, and the preload controller decomposes working sets under the
// same constraint.
//
// Slot timing: a slot is 100 ns — 80 raw bytes at 6.4 Gb/s — of which 64
// bytes are usable payload; the remainder covers the guard band and slot
// framing (see DESIGN.md for why this reconciles the paper's "8–64 bytes in
// one cycle" and "over 80 bytes fragmented" statements). Grants are issued
// by the scheduler at slot boundaries, so NICs need no slot bookkeeping.
package tdm

import (
	"fmt"
	"runtime"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/core"
	"pmsnet/internal/fabric"
	"pmsnet/internal/fault"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/plan"
	"pmsnet/internal/predictor"
	"pmsnet/internal/probe"
	"pmsnet/internal/runner"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Mode selects how connections enter the network.
type Mode int

// TDM operating modes.
const (
	// Dynamic schedules every slot reactively.
	Dynamic Mode = iota
	// Preload pins every slot with compiled configurations.
	Preload
	// Hybrid pins PreloadSlots slots and schedules the rest reactively.
	Hybrid
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Dynamic:
		return "dynamic"
	case Preload:
		return "preload"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the TDM network.
type Config struct {
	// N is the processor count.
	N int
	// K is the multiplexing degree (number of configuration registers).
	K int
	// Mode selects dynamic, preload or hybrid operation.
	Mode Mode
	// PreloadSlots is the number of pinned slots in Hybrid mode (the
	// paper's k); ignored otherwise.
	PreloadSlots int
	// Planner, when non-nil, computes the preloaded slot schedule from the
	// workload's demand instead of the hand-written static decomposition:
	// per phase, the preloader derives an integer demand matrix (program
	// bytes per connection, restricted to the phase's working set) and pins
	// the planner's configuration groups, register shares included. The
	// plan's residual demand rides the dynamic slots (Hybrid mode; pure
	// Preload plans with CoverAll). Nil keeps today's static preload path
	// bit for bit. Only meaningful in Preload and Hybrid modes.
	Planner plan.Planner
	// NewPredictor, when non-nil, enables request latching (core extension
	// 3): connections survive their request dropping and are evicted by the
	// predictor. When nil, a connection is released as soon as its request
	// disappears (pure reactive operation). A fresh predictor is created
	// per run.
	NewPredictor func() predictor.Predictor
	// Link is the serial-link model; zero value means link.Paper().
	Link link.Model
	// SlotNs is the TDM slot duration; zero means 100 ns.
	SlotNs sim.Time
	// PayloadBytes is the usable payload per slot; zero means 64.
	PayloadBytes int
	// RotatePriority enables fair priority rotation in the scheduler
	// (default on via withDefaults).
	RotatePriority *bool
	// SkipEmptySlots enables TDM-counter empty-slot skipping (default on).
	SkipEmptySlots *bool
	// SchedCache enables the scheduler's memoized-pass cache (default on):
	// passes repeating a previously seen (state, request-matrix) pair replay
	// the recorded grant set instead of re-running the scheduling array.
	// Results are bit-identical either way; turn it off to benchmark the
	// raw array or to bisect a suspected cache defect.
	SchedCache *bool
	// SLCopies is the number of scheduling-logic units (extension 1);
	// zero means 1.
	SLCopies int
	// AmplifyBytes enables bandwidth amplification (core extension 2): a
	// connection whose queue still holds more than this many bytes after a
	// slot transfer is inserted into an additional free slot, multiplying
	// its share of the link. Zero disables amplification.
	AmplifyBytes int
	// Fabric selects the switching-fabric backend (default crossbar).
	Fabric fabric.Kind
	// Algorithm selects the scheduler's matching algorithm (default: the
	// paper-exact Tables 1–2 array). The alternatives (iSLIP, wavefront) are
	// comparison baselines; only the paper algorithm is bit-pinned by the
	// golden reports and memoized.
	Algorithm core.Algorithm
	// Sparse selects the sparse request-matrix path (default on): request
	// wires and scheduling passes carry per-row nonzero lists alongside the
	// dense words, so low-occupancy passes skip the dense word scans. Results
	// are bit-identical either way; turn it off to benchmark the dense path
	// or bisect a suspected sparsity defect.
	Sparse *bool
	// Shards caps the number of per-leaf scheduler shards for the paper
	// algorithm's sparse pass: the pass precomputes change cells in parallel
	// across leaf-aligned row shards, then merges grants serially in priority
	// order, so results stay bit-identical to unsharded scheduling. Zero
	// disables sharding. Sharding engages only on fabrics with a leaf seam
	// (Leaves() > 1) under the paper algorithm with the sparse path on.
	Shards int
	// WarmStart enables warm-started incremental scheduling for the paper
	// algorithm's sparse pass: the request wire carries a delta journal and
	// each pass re-evaluates only the rows that changed since the previous
	// one. Results are bit-identical to cold scheduling; like Shards, the
	// knob engages only for the paper algorithm with the sparse path on and
	// silently runs cold otherwise.
	WarmStart bool
	// Horizon bounds simulated time; zero means netmodel.DefaultHorizon.
	Horizon sim.Time
	// Faults, when non-nil and active, injects link failures, corrupted
	// slots, lost request/grant tokens and dead crosspoints per the plan. A
	// nil or inactive plan leaves the run bit-identical to a fault-free one.
	Faults *fault.Plan
	// SelfCheck runs the scheduler's state invariants after every simulation
	// event (the engine debug mode). Expensive; meant for tests.
	SelfCheck bool
	// Probe, when non-nil, receives the run's observability event stream
	// (slots, scheduler passes, connections, preloads, messages, faults).
	// Emission is purely observational: results are bit-identical with and
	// without a probe.
	Probe *probe.Probe
}

func boolPtr(b bool) *bool { return &b }

func (c Config) withDefaults() Config {
	if c.Link.BitsPerSecond == 0 {
		c.Link = link.Paper()
	}
	if c.SlotNs == 0 {
		c.SlotNs = 100
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 64
	}
	if c.RotatePriority == nil {
		c.RotatePriority = boolPtr(true)
	}
	if c.SkipEmptySlots == nil {
		c.SkipEmptySlots = boolPtr(true)
	}
	if c.SchedCache == nil {
		c.SchedCache = boolPtr(true)
	}
	if c.SLCopies == 0 {
		c.SLCopies = 1
	}
	if c.Sparse == nil {
		c.Sparse = boolPtr(true)
	}
	if c.Horizon == 0 {
		c.Horizon = netmodel.DefaultHorizon
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N <= 1 {
		return fmt.Errorf("tdm: need at least 2 processors, got %d", c.N)
	}
	if c.K <= 0 {
		return fmt.Errorf("tdm: multiplexing degree K=%d must be positive", c.K)
	}
	if c.PayloadBytes <= 0 {
		return fmt.Errorf("tdm: payload %d must be positive", c.PayloadBytes)
	}
	if c.SlotNs <= 0 {
		return fmt.Errorf("tdm: slot duration %v must be positive", c.SlotNs)
	}
	if c.Link.BytesInWindow(c.SlotNs) < c.PayloadBytes {
		return fmt.Errorf("tdm: payload %d B does not fit a %v slot at the line rate", c.PayloadBytes, c.SlotNs)
	}
	if c.AmplifyBytes < 0 {
		return fmt.Errorf("tdm: negative amplification threshold %d", c.AmplifyBytes)
	}
	if c.Shards < 0 {
		return fmt.Errorf("tdm: negative scheduler shard count %d", c.Shards)
	}
	if _, err := fabric.NewBackend(c.Fabric, c.N); err != nil {
		return err
	}
	if _, err := core.ParseAlgorithm(c.Algorithm.String()); err != nil {
		return err
	}
	switch c.Mode {
	case Dynamic:
		if c.Planner != nil {
			return fmt.Errorf("tdm: a preload planner has nothing to plan in dynamic mode")
		}
	case Preload:
	case Hybrid:
		if c.PreloadSlots < 0 || c.PreloadSlots > c.K {
			return fmt.Errorf("tdm: hybrid preload slots %d outside [0,%d]", c.PreloadSlots, c.K)
		}
		if c.Planner != nil && c.PreloadSlots == 0 {
			return fmt.Errorf("tdm: a preload planner needs at least one pinned slot")
		}
	default:
		return fmt.Errorf("tdm: unknown mode %d", int(c.Mode))
	}
	return c.Link.Validate()
}

// Network is the predictive multiplexed switch.
type Network struct {
	cfg Config
}

// New builds a TDM network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{cfg: cfg}, nil
}

// Name implements netmodel.Network.
func (n *Network) Name() string {
	var name string
	switch n.cfg.Mode {
	case Dynamic:
		name = fmt.Sprintf("tdm-dynamic/k=%d", n.cfg.K)
	case Preload:
		name = fmt.Sprintf("tdm-preload/k=%d", n.cfg.K)
	default:
		name = fmt.Sprintf("tdm-hybrid/%dp+%dd", n.cfg.PreloadSlots, n.cfg.K-n.cfg.PreloadSlots)
	}
	if n.cfg.Fabric != fabric.KindCrossbar {
		name += "/" + n.cfg.Fabric.String()
	}
	if n.cfg.Algorithm != core.AlgPaper {
		name += "/" + n.cfg.Algorithm.String()
	}
	if n.cfg.Planner != nil {
		name += "/plan=" + n.cfg.Planner.Name()
	}
	return name
}

type run struct {
	cfg    Config
	eng    *sim.Engine
	driver *netmodel.Driver
	sched  *core.Scheduler
	// fab is the pluggable switching fabric the slots are realized on.
	fab  fabric.Backend
	pred predictor.Predictor

	// cp models the control links toward the scheduler: token signaling with
	// fault-aware loss/backoff, one control delay per signal.
	cp *netmodel.ControlPlane
	// reqWire drives reqView, the request matrix as the scheduler sees it:
	// NIC queue state delayed by the control-line latency, maintained in
	// sparse form (per-row nonzero lists over the dense words).
	reqWire *netmodel.RequestWire
	reqView *bitmat.Sparse
	// specReq holds speculative requests injected by a prefetching
	// predictor (predictor.Prefetcher): they are OR-ed into the request
	// matrix until the connection establishes, then cleared — the latch
	// keeps the connection alive from there.
	specReq *bitmat.Sparse
	// reqMerge is the reusable scratch for reqView|specReq so the per-pass
	// merge does not allocate.
	reqMerge *bitmat.Sparse
	// useSparse selects PassSparse over Pass (Config.Sparse); results are
	// bit-identical either way. useWarm additionally selects PassWarm
	// (Config.WarmStart; implies useSparse).
	useSparse bool
	useWarm   bool
	// connsBuf is the reusable slot-connection snapshot of the data-plane
	// grant loop.
	connsBuf []core.Change
	// pool runs scheduler shards in parallel (nil when sharding is off);
	// closed when the run finishes.
	pool *runner.Pool
	// queued counts messages pending per (src, dst) pair.
	queued *netmodel.PairQueues
	// grantAt[u][v] is the earliest time NIC u may use a dynamically
	// established connection to v: the grant line takes one control delay
	// to reach the NIC, so a slot that starts earlier cannot carry data on
	// a connection established this recently. Preloaded configurations are
	// known to the NICs from load time and have no such penalty.
	grantAt [][]sim.Time

	pre        *preloader
	slotTicker *sim.Ticker
	slTicker   *sim.Ticker
	stats      metrics.NetStats

	// probe observes the run (nil when observability is off).
	probe *probe.Probe

	// inj is the fault injector (nil for fault-free runs); err latches the
	// first unrecoverable model error so it surfaces instead of a misleading
	// stall diagnosis.
	inj *fault.Injector
	err error
	// Fault-recovery tallies owned by the TDM model (the driver owns the
	// rest, see netmodel.Driver.FaultStats).
	reschedules      uint64
	preloadFallbacks uint64
	maskedGrants     uint64
}

// fail latches the first model-level error and stops the engine; Run reports
// it instead of the stall it would otherwise manifest as.
func (r *run) fail(err error) {
	if r.err == nil {
		r.err = err
		r.eng.Stop()
	}
}

// Run implements netmodel.Network.
func (n *Network) Run(wl *traffic.Workload) (metrics.Result, error) {
	cfg := n.cfg
	eng := sim.NewEngine()

	var pred predictor.Predictor
	if cfg.NewPredictor != nil {
		pred = cfg.NewPredictor()
	}
	fab, err := fabric.NewBackend(cfg.Fabric, cfg.N)
	if err != nil {
		return metrics.Result{}, err
	}
	var canEstablish func(b *bitmat.Matrix, u, v int) bool
	if !fab.Rearrangeable() {
		// One reusable trial matrix: the hook stays a pure function of
		// (b, u, v) — required by the scheduler's memoized-pass cache —
		// while avoiding a clone per realizability probe.
		trial := bitmat.NewSquare(cfg.N)
		canEstablish = func(b *bitmat.Matrix, u, v int) bool {
			trial.CopyFrom(b)
			trial.Set(u, v)
			return fab.CanRealize(trial)
		}
	}
	// Per-leaf scheduler sharding engages only where it can help and cannot
	// change results: the paper algorithm's sparse pass, on a fabric with a
	// leaf seam. Shard bounds align to leaf boundaries (contiguous port
	// ranges per leaf), and the shards run on a persistent worker pool.
	var shardBounds []int
	var shardRun func(int, func(int))
	var pool *runner.Pool
	if shards := cfg.Shards; shards > 1 && cfg.Algorithm == core.AlgPaper && *cfg.Sparse {
		if leaves := fab.Leaves(); leaves > 1 {
			if shards > leaves {
				shards = leaves
			}
			portsPerLeaf := cfg.N / leaves
			shardBounds = make([]int, shards+1)
			for i := 1; i < shards; i++ {
				shardBounds[i] = (i * leaves / shards) * portsPerLeaf
			}
			shardBounds[shards] = cfg.N
			workers := shards
			if g := runtime.GOMAXPROCS(0); workers > g {
				workers = g
			}
			pool = runner.NewPool(workers)
			shardRun = pool.Run
		}
	}
	if pool != nil {
		defer pool.Close()
	}
	// Warm-started scheduling has the same engagement rule as sharding:
	// paper algorithm, sparse path. Anything else runs cold, bit-identically.
	useWarm := cfg.WarmStart && cfg.Algorithm == core.AlgPaper && *cfg.Sparse
	sched, err := core.NewScheduler(core.Params{
		N:              cfg.N,
		K:              cfg.K,
		RotatePriority: *cfg.RotatePriority,
		SkipEmptySlots: *cfg.SkipEmptySlots,
		SLCopies:       cfg.SLCopies,
		LatchRequests:  pred != nil,
		CanEstablish:   canEstablish,
		Memoize:        *cfg.SchedCache,
		Algorithm:      cfg.Algorithm,
		ShardBounds:    shardBounds,
		ShardRun:       shardRun,
		WarmStart:      useWarm,
	})
	if err != nil {
		return metrics.Result{}, err
	}
	reqWire := netmodel.NewRequestWire(eng, cfg.N, cfg.Link.ControlDelay(), "request-wire")
	r := &run{
		cfg:       cfg,
		eng:       eng,
		fab:       fab,
		sched:     sched,
		pred:      pred,
		reqWire:   reqWire,
		reqView:   reqWire.ViewSparse(),
		specReq:   bitmat.NewSparse(cfg.N, cfg.N),
		reqMerge:  bitmat.NewSparse(cfg.N, cfg.N),
		useSparse: *cfg.Sparse,
		useWarm:   useWarm,
		pool:      pool,
		queued:    netmodel.NewPairQueues(cfg.N),
		grantAt:   make([][]sim.Time, cfg.N),
		probe:     cfg.Probe,
	}
	if useWarm {
		// The journal feeds the warm pass its dirty-row closure; every
		// request mutation (control wire, completion drops, fault recovery)
		// funnels through the Sparse mutators and lands in it.
		r.reqView.EnableJournal()
	}
	if cfg.Probe != nil {
		sched.SetProbe(cfg.Probe, eng.Now)
	}
	for u := range r.grantAt {
		r.grantAt[u] = make([]sim.Time, cfg.N)
	}

	driver, err := netmodel.NewDriver(eng, cfg.Link, wl, netmodel.Hooks{
		OnEnqueue: r.onEnqueue,
		OnFlush:   r.onFlush,
		OnIdle:    r.onIdle,
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r.driver = driver
	if cfg.Probe != nil {
		driver.SetProbe(cfg.Probe)
	}

	inj, err := fault.NewInjector(cfg.Faults, eng, cfg.N)
	if err != nil {
		return metrics.Result{}, err
	}
	if inj != nil {
		r.inj = inj
		inj.OnPortDown = r.onPortDown
		inj.OnPortUp = r.onPortUp
		inj.OnCrosspointDead = r.onCrosspointDead
		inj.SetProbe(cfg.Probe)
		driver.AttachFaults(inj)
	}
	r.cp = netmodel.NewControlPlane(eng, driver, cfg.Link.ControlDelay(), inj)
	if cfg.SelfCheck {
		eng.SetInvariantCheck(r.checkInvariants)
	}

	// Preloaded slots (Preload: all; Hybrid: the first PreloadSlots).
	if cfg.Mode == Preload || (cfg.Mode == Hybrid && cfg.PreloadSlots > 0) {
		slots := cfg.K
		if cfg.Mode == Hybrid {
			slots = cfg.PreloadSlots
		}
		pre, err := newPreloader(r, wl, slots)
		if err != nil {
			return metrics.Result{}, err
		}
		r.pre = pre
	}

	// The slot clock drives the fabric; the SL clock drives reactive
	// scheduling (absent in pure preload mode, where every slot is pinned).
	r.slotTicker = eng.NewTicker(cfg.SlotNs, "tdm-slot", r.onSlot)
	r.slotTicker.StartAt(0)
	if cfg.Mode != Preload {
		r.slTicker = eng.NewTicker(r.sched.PassLatency(), "tdm-sl-pass", r.onSLPass)
		r.slTicker.Start()
	}

	if inj != nil {
		inj.Start()
	}
	driver.Start()
	res, err := driver.Finish(n.Name(), cfg.Horizon, metrics.NetStats{})
	if r.err != nil {
		return metrics.Result{}, r.err
	}
	if err != nil {
		return metrics.Result{}, err
	}
	// Merge scheduler counters into the run stats.
	st := r.sched.Stats()
	r.stats.SchedulerPasses = st.Passes
	r.stats.Established = st.Established
	r.stats.Released = st.Released
	r.stats.Evictions = st.Evictions
	r.stats.Flushes = st.Flushes
	r.stats.SchedCacheHits = st.CacheHits
	r.stats.SchedCacheMisses = st.CacheMisses
	r.stats.SchedWarmHits = st.WarmHits
	r.stats.SchedWarmMisses = st.WarmMisses
	r.stats.SchedDirtyRows = st.DirtyRows
	if r.inj != nil {
		fs := driver.FaultStats()
		fs.Reschedules = r.reschedules
		fs.PreloadFallbacks = r.preloadFallbacks
		fs.MaskedGrants = r.maskedGrants
		r.stats.Faults = fs
	}
	res.Stats = r.stats
	return res, nil
}

// checkInvariants is the engine debug hook (Config.SelfCheck): scheduler
// state consistency plus the run's own queue bookkeeping.
func (r *run) checkInvariants() error {
	if err := r.sched.CheckInvariants(); err != nil {
		return err
	}
	if err := r.reqView.CheckParity(); err != nil {
		return fmt.Errorf("tdm: request wire: %w", err)
	}
	if err := r.specReq.CheckParity(); err != nil {
		return fmt.Errorf("tdm: speculative requests: %w", err)
	}
	if u, v, q, bad := r.queued.Negative(); bad {
		return fmt.Errorf("tdm: negative queue count %d for %d->%d", q, u, v)
	}
	return nil
}

// onIdle stops the clocks so the event queue can drain.
func (r *run) onIdle() {
	r.slotTicker.Stop()
	if r.slTicker != nil {
		r.slTicker.Stop()
	}
}
