// Package tdm implements the predictive multiplexed switching network — the
// paper's proposed system. A 100 ns slot clock cycles the crossbar through
// the scheduler's K configurations; connections are established reactively
// by the scheduling-logic array (internal/core), proactively by preloading
// compiled configurations, or both at once.
//
// Three modes reproduce the paper's evaluation:
//
//   - Dynamic: all K slots are scheduled reactively from the NICs' request
//     matrix ("Dynamic TDM" in Figure 4). An optional predictor latches
//     connections past their last request and evicts them later (§3.2).
//   - Preload: all K slots are pinned with compiled configurations obtained
//     by decomposing the workload's statically-known phases; a preload
//     controller swaps configuration groups as their traffic drains
//     ("Preload" in Figure 4).
//   - Hybrid: k slots are pinned with the static pattern and the remaining
//     K−k slots are scheduled reactively (Figure 5).
//
// Slot timing: a slot is 100 ns — 80 raw bytes at 6.4 Gb/s — of which 64
// bytes are usable payload; the remainder covers the guard band and slot
// framing (see DESIGN.md for why this reconciles the paper's "8–64 bytes in
// one cycle" and "over 80 bytes fragmented" statements). Grants are issued
// by the scheduler at slot boundaries, so NICs need no slot bookkeeping.
package tdm

import (
	"fmt"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/core"
	"pmsnet/internal/fabric"
	"pmsnet/internal/fault"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/multistage"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/nic"
	"pmsnet/internal/predictor"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// FabricKind selects the switching-fabric technology the TDM slots are
// realized on.
type FabricKind int

// Fabric kinds.
const (
	// CrossbarFabric is the paper's baseline: any partial permutation is
	// realizable.
	CrossbarFabric FabricKind = iota
	// OmegaFabric is a log2(N)-stage Omega network: cheaper hardware, but
	// blocking — the scheduler only establishes connections that keep each
	// slot's configuration Omega-realizable, and the preload controller
	// decomposes working sets under the same constraint (paper §4's
	// "fabrics that have limited permutation capabilities"). Requires N to
	// be a power of two.
	OmegaFabric
)

// String implements fmt.Stringer.
func (f FabricKind) String() string {
	switch f {
	case CrossbarFabric:
		return "crossbar"
	case OmegaFabric:
		return "omega"
	default:
		return fmt.Sprintf("FabricKind(%d)", int(f))
	}
}

// Mode selects how connections enter the network.
type Mode int

// TDM operating modes.
const (
	// Dynamic schedules every slot reactively.
	Dynamic Mode = iota
	// Preload pins every slot with compiled configurations.
	Preload
	// Hybrid pins PreloadSlots slots and schedules the rest reactively.
	Hybrid
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Dynamic:
		return "dynamic"
	case Preload:
		return "preload"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the TDM network.
type Config struct {
	// N is the processor count.
	N int
	// K is the multiplexing degree (number of configuration registers).
	K int
	// Mode selects dynamic, preload or hybrid operation.
	Mode Mode
	// PreloadSlots is the number of pinned slots in Hybrid mode (the
	// paper's k); ignored otherwise.
	PreloadSlots int
	// NewPredictor, when non-nil, enables request latching (core extension
	// 3): connections survive their request dropping and are evicted by the
	// predictor. When nil, a connection is released as soon as its request
	// disappears (pure reactive operation). A fresh predictor is created
	// per run.
	NewPredictor func() predictor.Predictor
	// Link is the serial-link model; zero value means link.Paper().
	Link link.Model
	// SlotNs is the TDM slot duration; zero means 100 ns.
	SlotNs sim.Time
	// PayloadBytes is the usable payload per slot; zero means 64.
	PayloadBytes int
	// RotatePriority enables fair priority rotation in the scheduler
	// (default on via withDefaults).
	RotatePriority *bool
	// SkipEmptySlots enables TDM-counter empty-slot skipping (default on).
	SkipEmptySlots *bool
	// SchedCache enables the scheduler's memoized-pass cache (default on):
	// passes repeating a previously seen (state, request-matrix) pair replay
	// the recorded grant set instead of re-running the scheduling array.
	// Results are bit-identical either way; turn it off to benchmark the
	// raw array or to bisect a suspected cache defect.
	SchedCache *bool
	// SLCopies is the number of scheduling-logic units (extension 1);
	// zero means 1.
	SLCopies int
	// AmplifyBytes enables bandwidth amplification (core extension 2): a
	// connection whose queue still holds more than this many bytes after a
	// slot transfer is inserted into an additional free slot, multiplying
	// its share of the link. Zero disables amplification.
	AmplifyBytes int
	// Fabric selects the switching-fabric technology (default crossbar).
	Fabric FabricKind
	// Horizon bounds simulated time; zero means netmodel.DefaultHorizon.
	Horizon sim.Time
	// Faults, when non-nil and active, injects link failures, corrupted
	// slots, lost request/grant tokens and dead crosspoints per the plan. A
	// nil or inactive plan leaves the run bit-identical to a fault-free one.
	Faults *fault.Plan
	// SelfCheck runs the scheduler's state invariants after every simulation
	// event (the engine debug mode). Expensive; meant for tests.
	SelfCheck bool
	// Probe, when non-nil, receives the run's observability event stream
	// (slots, scheduler passes, connections, preloads, messages, faults).
	// Emission is purely observational: results are bit-identical with and
	// without a probe.
	Probe *probe.Probe
}

func boolPtr(b bool) *bool { return &b }

func (c Config) withDefaults() Config {
	if c.Link.BitsPerSecond == 0 {
		c.Link = link.Paper()
	}
	if c.SlotNs == 0 {
		c.SlotNs = 100
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 64
	}
	if c.RotatePriority == nil {
		c.RotatePriority = boolPtr(true)
	}
	if c.SkipEmptySlots == nil {
		c.SkipEmptySlots = boolPtr(true)
	}
	if c.SchedCache == nil {
		c.SchedCache = boolPtr(true)
	}
	if c.SLCopies == 0 {
		c.SLCopies = 1
	}
	if c.Horizon == 0 {
		c.Horizon = netmodel.DefaultHorizon
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N <= 1 {
		return fmt.Errorf("tdm: need at least 2 processors, got %d", c.N)
	}
	if c.K <= 0 {
		return fmt.Errorf("tdm: multiplexing degree K=%d must be positive", c.K)
	}
	if c.PayloadBytes <= 0 {
		return fmt.Errorf("tdm: payload %d must be positive", c.PayloadBytes)
	}
	if c.SlotNs <= 0 {
		return fmt.Errorf("tdm: slot duration %v must be positive", c.SlotNs)
	}
	if c.Link.BytesInWindow(c.SlotNs) < c.PayloadBytes {
		return fmt.Errorf("tdm: payload %d B does not fit a %v slot at the line rate", c.PayloadBytes, c.SlotNs)
	}
	if c.AmplifyBytes < 0 {
		return fmt.Errorf("tdm: negative amplification threshold %d", c.AmplifyBytes)
	}
	switch c.Fabric {
	case CrossbarFabric:
	case OmegaFabric:
		if _, err := multistage.NewOmega(c.N); err != nil {
			return err
		}
	default:
		return fmt.Errorf("tdm: unknown fabric kind %d", int(c.Fabric))
	}
	switch c.Mode {
	case Dynamic:
	case Preload:
	case Hybrid:
		if c.PreloadSlots < 0 || c.PreloadSlots > c.K {
			return fmt.Errorf("tdm: hybrid preload slots %d outside [0,%d]", c.PreloadSlots, c.K)
		}
	default:
		return fmt.Errorf("tdm: unknown mode %d", int(c.Mode))
	}
	return c.Link.Validate()
}

// Network is the predictive multiplexed switch.
type Network struct {
	cfg Config
}

// New builds a TDM network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{cfg: cfg}, nil
}

// Name implements netmodel.Network.
func (n *Network) Name() string {
	var name string
	switch n.cfg.Mode {
	case Dynamic:
		name = fmt.Sprintf("tdm-dynamic/k=%d", n.cfg.K)
	case Preload:
		name = fmt.Sprintf("tdm-preload/k=%d", n.cfg.K)
	default:
		name = fmt.Sprintf("tdm-hybrid/%dp+%dd", n.cfg.PreloadSlots, n.cfg.K-n.cfg.PreloadSlots)
	}
	if n.cfg.Fabric == OmegaFabric {
		name += "/omega"
	}
	return name
}

type run struct {
	cfg    Config
	eng    *sim.Engine
	driver *netmodel.Driver
	sched  *core.Scheduler
	xbar   *fabric.Crossbar
	pred   predictor.Predictor

	// reqView is the request matrix as the scheduler sees it: NIC queue
	// state delayed by the control-line latency.
	reqView *bitmat.Matrix
	// specReq holds speculative requests injected by a prefetching
	// predictor (predictor.Prefetcher): they are OR-ed into the request
	// matrix until the connection establishes, then cleared — the latch
	// keeps the connection alive from there.
	specReq *bitmat.Matrix
	// reqMerge is the reusable scratch for reqView|specReq so the per-pass
	// merge does not allocate.
	reqMerge *bitmat.Matrix
	// queued[u][v] counts messages pending from u to v.
	queued [][]int
	// grantAt[u][v] is the earliest time NIC u may use a dynamically
	// established connection to v: the grant line takes one control delay
	// to reach the NIC, so a slot that starts earlier cannot carry data on
	// a connection established this recently. Preloaded configurations are
	// known to the NICs from load time and have no such penalty.
	grantAt [][]sim.Time

	// omega is non-nil under OmegaFabric: the realizability oracle for the
	// scheduler constraint and the per-slot invariant check.
	omega *multistage.Omega

	pre        *preloader
	slotTicker *sim.Ticker
	slTicker   *sim.Ticker
	stats      metrics.NetStats

	// probe observes the run (nil when observability is off).
	probe *probe.Probe

	// inj is the fault injector (nil for fault-free runs); err latches the
	// first unrecoverable model error so it surfaces instead of a misleading
	// stall diagnosis.
	inj *fault.Injector
	err error
	// Fault-recovery tallies owned by the TDM model (the driver owns the
	// rest, see netmodel.Driver.FaultStats).
	reschedules      uint64
	preloadFallbacks uint64
	maskedGrants     uint64
}

// fail latches the first model-level error and stops the engine; Run reports
// it instead of the stall it would otherwise manifest as.
func (r *run) fail(err error) {
	if r.err == nil {
		r.err = err
		r.eng.Stop()
	}
}

// Run implements netmodel.Network.
func (n *Network) Run(wl *traffic.Workload) (metrics.Result, error) {
	cfg := n.cfg
	eng := sim.NewEngine()

	var pred predictor.Predictor
	if cfg.NewPredictor != nil {
		pred = cfg.NewPredictor()
	}
	var omega *multistage.Omega
	var canEstablish func(b *bitmat.Matrix, u, v int) bool
	if cfg.Fabric == OmegaFabric {
		var err error
		omega, err = multistage.NewOmega(cfg.N)
		if err != nil {
			return metrics.Result{}, err
		}
		// One reusable trial matrix: the hook stays a pure function of
		// (b, u, v) — required by the scheduler's memoized-pass cache —
		// while avoiding a clone per realizability probe.
		trial := bitmat.NewSquare(cfg.N)
		canEstablish = func(b *bitmat.Matrix, u, v int) bool {
			trial.CopyFrom(b)
			trial.Set(u, v)
			return omega.CanRealize(trial)
		}
	}
	sched, err := core.NewScheduler(core.Params{
		N:              cfg.N,
		K:              cfg.K,
		RotatePriority: *cfg.RotatePriority,
		SkipEmptySlots: *cfg.SkipEmptySlots,
		SLCopies:       cfg.SLCopies,
		LatchRequests:  pred != nil,
		CanEstablish:   canEstablish,
		Memoize:        *cfg.SchedCache,
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r := &run{
		cfg:     cfg,
		eng:     eng,
		omega:   omega,
		sched:   sched,
		xbar:    fabric.NewCrossbar(cfg.N, fabric.LVDS, 0),
		pred:    pred,
		reqView:  bitmat.NewSquare(cfg.N),
		specReq:  bitmat.NewSquare(cfg.N),
		reqMerge: bitmat.NewSquare(cfg.N),
		queued:  make([][]int, cfg.N),
		grantAt: make([][]sim.Time, cfg.N),
		probe:   cfg.Probe,
	}
	if cfg.Probe != nil {
		sched.SetProbe(cfg.Probe, eng.Now)
	}
	for u := range r.queued {
		r.queued[u] = make([]int, cfg.N)
		r.grantAt[u] = make([]sim.Time, cfg.N)
	}

	driver, err := netmodel.NewDriver(eng, cfg.Link, wl, netmodel.Hooks{
		OnEnqueue: r.onEnqueue,
		OnFlush:   r.onFlush,
		OnIdle:    r.onIdle,
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r.driver = driver
	if cfg.Probe != nil {
		driver.SetProbe(cfg.Probe)
	}

	inj, err := fault.NewInjector(cfg.Faults, eng, cfg.N)
	if err != nil {
		return metrics.Result{}, err
	}
	if inj != nil {
		r.inj = inj
		inj.OnPortDown = r.onPortDown
		inj.OnPortUp = r.onPortUp
		inj.OnCrosspointDead = r.onCrosspointDead
		inj.SetProbe(cfg.Probe)
		driver.AttachFaults(inj)
	}
	if cfg.SelfCheck {
		eng.SetInvariantCheck(r.checkInvariants)
	}

	// Preloaded slots (Preload: all; Hybrid: the first PreloadSlots).
	if cfg.Mode == Preload || (cfg.Mode == Hybrid && cfg.PreloadSlots > 0) {
		slots := cfg.K
		if cfg.Mode == Hybrid {
			slots = cfg.PreloadSlots
		}
		pre, err := newPreloader(r, wl, slots)
		if err != nil {
			return metrics.Result{}, err
		}
		r.pre = pre
	}

	// The slot clock drives the fabric; the SL clock drives reactive
	// scheduling (absent in pure preload mode, where every slot is pinned).
	r.slotTicker = eng.NewTicker(cfg.SlotNs, "tdm-slot", r.onSlot)
	r.slotTicker.StartAt(0)
	if cfg.Mode != Preload {
		r.slTicker = eng.NewTicker(r.sched.PassLatency(), "tdm-sl-pass", r.onSLPass)
		r.slTicker.Start()
	}

	if inj != nil {
		inj.Start()
	}
	driver.Start()
	res, err := driver.Finish(n.Name(), cfg.Horizon, metrics.NetStats{})
	if r.err != nil {
		return metrics.Result{}, r.err
	}
	if err != nil {
		return metrics.Result{}, err
	}
	// Merge scheduler counters into the run stats.
	st := r.sched.Stats()
	r.stats.SchedulerPasses = st.Passes
	r.stats.Established = st.Established
	r.stats.Released = st.Released
	r.stats.Evictions = st.Evictions
	r.stats.Flushes = st.Flushes
	r.stats.SchedCacheHits = st.CacheHits
	r.stats.SchedCacheMisses = st.CacheMisses
	if r.inj != nil {
		fs := driver.FaultStats()
		fs.Reschedules = r.reschedules
		fs.PreloadFallbacks = r.preloadFallbacks
		fs.MaskedGrants = r.maskedGrants
		r.stats.Faults = fs
	}
	res.Stats = r.stats
	return res, nil
}

// checkInvariants is the engine debug hook (Config.SelfCheck): scheduler
// state consistency plus the run's own queue bookkeeping.
func (r *run) checkInvariants() error {
	if err := r.sched.CheckInvariants(); err != nil {
		return err
	}
	for u := range r.queued {
		for v, q := range r.queued[u] {
			if q < 0 {
				return fmt.Errorf("tdm: negative queue count %d for %d->%d", q, u, v)
			}
		}
	}
	return nil
}

// onEnqueue tracks queue transitions, drives the delayed request wire and
// counts connection-cache hits and misses.
func (r *run) onEnqueue(m *nic.Message) {
	u, v := m.Src, m.Dst
	if r.inj != nil && r.inj.PairBlocked(u, v) {
		// A dead crosspoint or permanently failed endpoint link: no route
		// will ever exist, so the message is dropped at the source NIC.
		for _, dm := range r.driver.Buffers[u].DrainFor(v) {
			r.driver.Drop(dm)
		}
		return
	}
	r.queued[u][v]++
	if r.queued[u][v] == 1 {
		// The queue was empty: this message must wait for a connection
		// unless one is already cached — the working-set hit/miss the paper
		// discusses.
		if r.sched.Connected(u, v) {
			r.stats.Hits++
		} else {
			r.stats.Misses++
		}
		r.raiseRequest(u, v, 0)
		if r.pre != nil {
			r.pre.pendingUp(topology.Conn{Src: u, Dst: v})
		}
	} else {
		// The message joins a standing backlog and rides the connection the
		// backlog already has (or is already waiting for): a hit.
		r.stats.Hits++
	}
}

// raiseRequest asserts the request wire toward the scheduler. With fault
// injection, the raise transition can be lost; the NIC detects the missing
// grant by timeout and re-raises after an exponential backoff (attempt is the
// backoff exponent). Clears are not subject to loss: the request line is
// level-sampled every pass, so a stale low is corrected by the next sample.
func (r *run) raiseRequest(u, v, attempt int) {
	if r.inj != nil && r.inj.DrawRequestLoss() {
		r.eng.After(r.inj.RetryDelay(attempt), "request-retry", func() {
			if r.queued[u][v] > 0 && !r.sched.Connected(u, v) &&
				!(r.inj.PairBlocked(u, v)) {
				r.driver.CountRetry()
				r.raiseRequest(u, v, attempt+1)
			}
		})
		return
	}
	r.setRequestWire(u, v, true)
}

// setRequestWire propagates a queue-state transition to the scheduler's
// request-matrix view after the control-line delay. The written value is the
// one sampled now; events fire in order, so the view always equals the NIC
// state one control delay ago — wire semantics.
func (r *run) setRequestWire(u, v int, val bool) {
	r.eng.After(r.cfg.Link.ControlDelay(), "request-wire", func() {
		if val {
			r.reqView.Set(u, v)
		} else {
			r.reqView.Clear(u, v)
		}
	})
}

// onFlush handles the compiler's FLUSH directive: the request reaches the
// scheduler after the control delay and clears all dynamic connections.
func (r *run) onFlush(int) {
	r.eng.After(r.cfg.Link.ControlDelay(), "flush", func() {
		if r.pred != nil {
			for _, c := range bstarConns(r.sched) {
				r.pred.OnRelease(c)
			}
		}
		r.sched.Flush()
	})
}

func bstarConns(s *core.Scheduler) []topology.Conn {
	var out []topology.Conn
	s.BStar().Ones(func(u, v int) bool {
		out = append(out, topology.Conn{Src: u, Dst: v})
		return true
	})
	return out
}

// onIdle stops the clocks so the event queue can drain.
func (r *run) onIdle() {
	r.slotTicker.Stop()
	if r.slTicker != nil {
		r.slTicker.Stop()
	}
}

// onSLPass runs one scheduling pass and applies predictor evictions and
// prefetches.
func (r *run) onSLPass() {
	req := r.reqView
	if pf, ok := r.pred.(predictor.Prefetcher); ok {
		for _, c := range pf.Prefetch(r.eng.Now()) {
			if !r.sched.Connected(c.Src, c.Dst) {
				r.specReq.Set(c.Src, c.Dst)
			}
		}
	}
	if !r.specReq.IsZero() {
		r.reqMerge.CopyFrom(r.reqView)
		r.reqMerge.Or(r.specReq)
		req = r.reqMerge
	}
	res := r.sched.Pass(req)
	for _, c := range res.Established {
		r.deliverGrant(c.Src, c.Dst, 0)
		r.specReq.Clear(c.Src, c.Dst)
	}
	if r.pred != nil {
		now := r.eng.Now()
		for _, c := range res.Established {
			r.pred.OnEstablish(topology.Conn{Src: c.Src, Dst: c.Dst}, now)
		}
		for _, c := range res.Released {
			r.pred.OnRelease(topology.Conn{Src: c.Src, Dst: c.Dst})
		}
		for _, c := range r.pred.Evictions(now) {
			// Never evict a connection that still has traffic queued; the
			// predictor only sees usage, not queue occupancy.
			if r.queued[c.Src][c.Dst] == 0 && r.sched.Connected(c.Src, c.Dst) {
				r.sched.Evict(c.Src, c.Dst)
				r.pred.OnRelease(c)
			}
		}
	}
}

// deliverGrant sends the grant signal for a freshly established connection
// toward NIC u. With fault injection, the grant token can be lost: the NIC
// never learns it may transmit, and the scheduler re-sends the grant after an
// exponential-backoff timeout (attempt is the backoff exponent). Until a
// grant arrives, the connection's slots pass unused.
func (r *run) deliverGrant(u, v, attempt int) {
	if r.inj != nil && r.inj.DrawGrantLoss() {
		// The NIC must not use the connection until a grant arrives.
		r.grantAt[u][v] = sim.MaxTime
		r.eng.After(r.inj.RetryDelay(attempt), "grant-retry", func() {
			if r.sched.Connected(u, v) {
				r.driver.CountRetry()
				r.deliverGrant(u, v, attempt+1)
			}
		})
		return
	}
	r.grantAt[u][v] = r.eng.Now() + r.cfg.Link.ControlDelay()
}

// onSlot is the slot-boundary handler: pick the next configuration, copy it
// to the fabric, and let every granted NIC transmit one slot payload.
func (r *run) onSlot() {
	r.stats.SlotsTotal++
	if r.pre != nil {
		// The scheduler writes configuration registers during the data
		// phase of the previous slot, so a group swap takes effect at this
		// boundary without stealing fabric time.
		r.pre.maybeAdvance()
	}
	slot, cfg, ok := r.sched.NextFabricSlot()
	if r.probe != nil {
		s := int32(-1)
		if ok {
			s = int32(slot)
		}
		r.probe.Emit(probe.Event{Kind: probe.SlotStart, At: r.eng.Now(),
			Slot: s, Aux: int64(r.cfg.SlotNs)})
	}
	if !ok {
		if r.probe != nil {
			r.probe.Emit(probe.Event{Kind: probe.SlotEnd, At: r.eng.Now(), Slot: -1})
		}
		return
	}
	if err := r.xbar.Apply(cfg); err != nil {
		r.fail(fmt.Errorf("tdm: scheduler produced unrealizable configuration for slot %d: %w", slot, err))
		return
	}
	if r.omega != nil && !r.omega.CanRealize(cfg) {
		r.fail(fmt.Errorf("tdm: slot %d configuration is not realizable on the omega fabric", slot))
		return
	}
	slotStart := r.eng.Now()
	used := false
	for u := 0; u < r.cfg.N; u++ {
		v := cfg.FirstInRow(u)
		if v < 0 {
			continue
		}
		if r.grantAt[u][v] > slotStart {
			// The grant for this freshly established connection has not
			// reached the NIC yet; the slot passes unused for this port.
			continue
		}
		if r.inj != nil {
			if r.inj.PairDown(u, v) {
				// The pair's link is down or its crosspoint is dead: the
				// grant is wasted and the payload stays queued.
				r.maskedGrants++
				continue
			}
			if r.driver.Buffers[u].HasFor(v) && r.inj.DrawCorrupt() {
				// The slot payload fails the destination NIC's CRC; the
				// bytes stay queued and go out again in the next granted
				// slot — a slot-granularity retransmission.
				if m := r.driver.Buffers[u].Head(v); m != nil {
					m.Retries++
				}
				r.driver.CountRetry()
				continue
			}
		}
		var injected *nic.Message
		if r.probe != nil {
			// The head message's first byte enters the network this slot iff
			// nothing of it has been transmitted yet.
			if h := r.driver.Buffers[u].Head(v); h != nil && h.Remaining() == h.Bytes {
				injected = h
			}
		}
		sent, done := r.driver.Buffers[u].TransmitTo(v, r.cfg.PayloadBytes)
		if sent == 0 {
			// A wasted grant: the connection is established but has nothing
			// to send. If its source NIC is holding traffic for other
			// destinations, tell idle-grant-aware predictors — this is the
			// signal that the connection is squatting on a slot others need.
			if obs, ok := r.pred.(predictor.IdleGrantObserver); ok &&
				r.driver.Buffers[u].Len() > 0 {
				obs.OnIdleGrant(topology.Conn{Src: u, Dst: v}, slotStart)
			}
			continue
		}
		used = true
		if injected != nil {
			r.probe.Emit(probe.Event{Kind: probe.MsgInjected, At: slotStart,
				Src: int32(u), Dst: int32(v), ID: int64(injected.ID)})
		}
		if r.pred != nil {
			r.pred.OnUse(topology.Conn{Src: u, Dst: v}, slotStart)
		}
		if done != nil {
			r.completeMessage(done, slotStart)
		}
		if r.cfg.AmplifyBytes > 0 &&
			r.driver.Buffers[u].BytesFor(v) > int64(r.cfg.AmplifyBytes) {
			// The backlog outruns one slot per cycle: give the connection
			// another slot if ports are free somewhere (extension 2).
			if added := r.sched.AddBandwidth(u, v, 1); added > 0 {
				r.stats.Amplifications += uint64(added)
			}
		}
	}
	if used {
		r.stats.SlotsUsed++
	}
	if r.probe != nil {
		var aux int64
		if used {
			aux = 1
		}
		r.probe.Emit(probe.Event{Kind: probe.SlotEnd, At: slotStart,
			Slot: int32(slot), Aux: aux})
	}
}

// completeMessage retires a message whose last payload was granted in the
// slot starting at slotStart: the last byte clears the pipe one slot plus
// the link latency later, then the destination NIC spends its receive
// overhead.
func (r *run) completeMessage(m *nic.Message, slotStart sim.Time) {
	u, v := m.Src, m.Dst
	if r.probe != nil {
		// TransmitTo already dequeued m, so the current head is its successor
		// reaching the front of the u→v queue.
		if h := r.driver.Buffers[u].Head(v); h != nil {
			r.probe.Emit(probe.Event{Kind: probe.MsgHeadOfQueue, At: slotStart,
				Src: int32(h.Src), Dst: int32(h.Dst), ID: int64(h.ID)})
		}
	}
	r.queued[u][v]--
	if r.queued[u][v] == 0 {
		r.setRequestWire(u, v, false)
		if r.pre != nil {
			r.pre.pendingDown(topology.Conn{Src: u, Dst: v})
		}
	}
	deliverAt := slotStart + r.cfg.SlotNs + r.cfg.Link.PipeLatency() + nic.RecvOverhead
	r.eng.At(deliverAt, "tdm-deliver", func() { r.driver.Deliver(m) })
}

// onPortDown is the injector's link-failure callback. The scheduler evicts
// every dynamic connection touching the port (its cached TDM configurations
// are stale) and forgets the port's pending requests; preloaded
// configurations containing the port are invalidated for good — their
// traffic falls back to dynamic scheduling, the cache-invalidation semantics
// of a broken compiled schedule. A permanent failure additionally drops all
// traffic from and toward the port: no recovery is possible.
func (r *run) onPortDown(p int, permanent bool) {
	changes := r.sched.EvictPort(p)
	r.reschedules += uint64(len(changes))
	if r.pred != nil {
		for _, c := range changes {
			r.pred.OnRelease(topology.Conn{Src: c.Src, Dst: c.Dst})
		}
	}
	for x := 0; x < r.cfg.N; x++ {
		if x == p {
			continue
		}
		r.reqView.Clear(p, x)
		r.reqView.Clear(x, p)
		r.specReq.Clear(p, x)
		r.specReq.Clear(x, p)
	}
	if r.pre != nil {
		if n := r.pre.breakPort(p); n > 0 {
			r.preloadFallbacks += uint64(n)
			r.ensureDynamicFallback()
		}
	}
	if permanent {
		for _, m := range r.driver.Buffers[p].DrainAll() {
			r.retireQueued(m.Src, m.Dst, 1)
			r.driver.Drop(m)
		}
		for u := 0; u < r.cfg.N; u++ {
			if u != p {
				r.dropPair(u, p)
			}
		}
	}
}

// onPortUp is the injector's link-repair callback: the NIC re-raises every
// request the failure suppressed so dynamic scheduling can re-establish the
// connections. Broken preloaded entries stay broken — the compiled schedule
// is not revalidated at run time — so their traffic keeps using dynamic
// slots.
func (r *run) onPortUp(p int) {
	for x := 0; x < r.cfg.N; x++ {
		if x == p {
			continue
		}
		if r.queued[p][x] > 0 {
			r.raiseRequest(p, x, 0)
		}
		if r.queued[x][p] > 0 {
			r.raiseRequest(x, p, 0)
		}
	}
}

// onCrosspointDead is the injector's crosspoint-failure callback: the pair
// (in,out) is permanently unroutable through the central fabric. Cached and
// preloaded configurations using the crosspoint are invalidated and the
// pair's queued traffic is dropped.
func (r *run) onCrosspointDead(in, out int) {
	if r.sched.Connected(in, out) {
		r.sched.Evict(in, out)
		r.reschedules++
		if r.pred != nil {
			r.pred.OnRelease(topology.Conn{Src: in, Dst: out})
		}
	}
	r.reqView.Clear(in, out)
	r.specReq.Clear(in, out)
	if r.pre != nil {
		if r.pre.breakConn(topology.Conn{Src: in, Dst: out}) {
			r.preloadFallbacks++
			r.ensureDynamicFallback()
		}
	}
	r.dropPair(in, out)
}

// retireQueued unwinds the queue bookkeeping for n messages leaving the
// u->v queue without delivery; when the queue drains it clears the request
// wire and the preloader's pending count, exactly as completeMessage does.
func (r *run) retireQueued(u, v, n int) {
	if n == 0 || r.queued[u][v] == 0 {
		return
	}
	r.queued[u][v] -= n
	if r.queued[u][v] < 0 {
		r.fail(fmt.Errorf("tdm: queue count for %d->%d went negative", u, v))
		r.queued[u][v] = 0
		return
	}
	if r.queued[u][v] == 0 {
		r.setRequestWire(u, v, false)
		if r.pre != nil {
			r.pre.pendingDown(topology.Conn{Src: u, Dst: v})
		}
	}
}

// dropPair drops every message queued from u toward v — the bulk-drop path
// when the pair becomes permanently unreachable.
func (r *run) dropPair(u, v int) {
	msgs := r.driver.Buffers[u].DrainFor(v)
	if len(msgs) == 0 {
		return
	}
	r.retireQueued(u, v, len(msgs))
	for _, m := range msgs {
		r.driver.Drop(m)
	}
}

// ensureDynamicFallback guarantees at least one dynamically scheduled slot
// and a running scheduling-logic clock, so traffic orphaned by a broken
// preloaded configuration can still be served. In pure Preload mode this
// releases one pinned slot back to the scheduler and starts the SL ticker —
// the graceful-degradation path; in Hybrid mode dynamic slots already exist
// and this is a no-op.
func (r *run) ensureDynamicFallback() {
	if r.sched.DynamicSlotCount() == 0 {
		if r.pre == nil || !r.pre.releaseSlot() {
			return
		}
	}
	if r.slTicker == nil {
		r.slTicker = r.eng.NewTicker(r.sched.PassLatency(), "tdm-sl-pass", r.onSLPass)
		r.slTicker.Start()
	}
}
