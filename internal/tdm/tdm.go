// Package tdm implements the predictive multiplexed switching network — the
// paper's proposed system. A 100 ns slot clock cycles the crossbar through
// the scheduler's K configurations; connections are established reactively
// by the scheduling-logic array (internal/core), proactively by preloading
// compiled configurations, or both at once.
//
// Three modes reproduce the paper's evaluation:
//
//   - Dynamic: all K slots are scheduled reactively from the NICs' request
//     matrix ("Dynamic TDM" in Figure 4). An optional predictor latches
//     connections past their last request and evicts them later (§3.2).
//   - Preload: all K slots are pinned with compiled configurations obtained
//     by decomposing the workload's statically-known phases; a preload
//     controller swaps configuration groups as their traffic drains
//     ("Preload" in Figure 4).
//   - Hybrid: k slots are pinned with the static pattern and the remaining
//     K−k slots are scheduled reactively (Figure 5).
//
// Slot timing: a slot is 100 ns — 80 raw bytes at 6.4 Gb/s — of which 64
// bytes are usable payload; the remainder covers the guard band and slot
// framing (see DESIGN.md for why this reconciles the paper's "8–64 bytes in
// one cycle" and "over 80 bytes fragmented" statements). Grants are issued
// by the scheduler at slot boundaries, so NICs need no slot bookkeeping.
package tdm

import (
	"fmt"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/core"
	"pmsnet/internal/fabric"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/multistage"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/nic"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// FabricKind selects the switching-fabric technology the TDM slots are
// realized on.
type FabricKind int

// Fabric kinds.
const (
	// CrossbarFabric is the paper's baseline: any partial permutation is
	// realizable.
	CrossbarFabric FabricKind = iota
	// OmegaFabric is a log2(N)-stage Omega network: cheaper hardware, but
	// blocking — the scheduler only establishes connections that keep each
	// slot's configuration Omega-realizable, and the preload controller
	// decomposes working sets under the same constraint (paper §4's
	// "fabrics that have limited permutation capabilities"). Requires N to
	// be a power of two.
	OmegaFabric
)

// String implements fmt.Stringer.
func (f FabricKind) String() string {
	switch f {
	case CrossbarFabric:
		return "crossbar"
	case OmegaFabric:
		return "omega"
	default:
		return fmt.Sprintf("FabricKind(%d)", int(f))
	}
}

// Mode selects how connections enter the network.
type Mode int

// TDM operating modes.
const (
	// Dynamic schedules every slot reactively.
	Dynamic Mode = iota
	// Preload pins every slot with compiled configurations.
	Preload
	// Hybrid pins PreloadSlots slots and schedules the rest reactively.
	Hybrid
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Dynamic:
		return "dynamic"
	case Preload:
		return "preload"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the TDM network.
type Config struct {
	// N is the processor count.
	N int
	// K is the multiplexing degree (number of configuration registers).
	K int
	// Mode selects dynamic, preload or hybrid operation.
	Mode Mode
	// PreloadSlots is the number of pinned slots in Hybrid mode (the
	// paper's k); ignored otherwise.
	PreloadSlots int
	// NewPredictor, when non-nil, enables request latching (core extension
	// 3): connections survive their request dropping and are evicted by the
	// predictor. When nil, a connection is released as soon as its request
	// disappears (pure reactive operation). A fresh predictor is created
	// per run.
	NewPredictor func() predictor.Predictor
	// Link is the serial-link model; zero value means link.Paper().
	Link link.Model
	// SlotNs is the TDM slot duration; zero means 100 ns.
	SlotNs sim.Time
	// PayloadBytes is the usable payload per slot; zero means 64.
	PayloadBytes int
	// RotatePriority enables fair priority rotation in the scheduler
	// (default on via withDefaults).
	RotatePriority *bool
	// SkipEmptySlots enables TDM-counter empty-slot skipping (default on).
	SkipEmptySlots *bool
	// SLCopies is the number of scheduling-logic units (extension 1);
	// zero means 1.
	SLCopies int
	// AmplifyBytes enables bandwidth amplification (core extension 2): a
	// connection whose queue still holds more than this many bytes after a
	// slot transfer is inserted into an additional free slot, multiplying
	// its share of the link. Zero disables amplification.
	AmplifyBytes int
	// Fabric selects the switching-fabric technology (default crossbar).
	Fabric FabricKind
	// Horizon bounds simulated time; zero means netmodel.DefaultHorizon.
	Horizon sim.Time
}

func boolPtr(b bool) *bool { return &b }

func (c Config) withDefaults() Config {
	if c.Link.BitsPerSecond == 0 {
		c.Link = link.Paper()
	}
	if c.SlotNs == 0 {
		c.SlotNs = 100
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 64
	}
	if c.RotatePriority == nil {
		c.RotatePriority = boolPtr(true)
	}
	if c.SkipEmptySlots == nil {
		c.SkipEmptySlots = boolPtr(true)
	}
	if c.SLCopies == 0 {
		c.SLCopies = 1
	}
	if c.Horizon == 0 {
		c.Horizon = netmodel.DefaultHorizon
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.N <= 1 {
		return fmt.Errorf("tdm: need at least 2 processors, got %d", c.N)
	}
	if c.K <= 0 {
		return fmt.Errorf("tdm: multiplexing degree K=%d must be positive", c.K)
	}
	if c.PayloadBytes <= 0 {
		return fmt.Errorf("tdm: payload %d must be positive", c.PayloadBytes)
	}
	if c.SlotNs <= 0 {
		return fmt.Errorf("tdm: slot duration %v must be positive", c.SlotNs)
	}
	if c.Link.BytesInWindow(c.SlotNs) < c.PayloadBytes {
		return fmt.Errorf("tdm: payload %d B does not fit a %v slot at the line rate", c.PayloadBytes, c.SlotNs)
	}
	if c.AmplifyBytes < 0 {
		return fmt.Errorf("tdm: negative amplification threshold %d", c.AmplifyBytes)
	}
	switch c.Fabric {
	case CrossbarFabric:
	case OmegaFabric:
		if _, err := multistage.NewOmega(c.N); err != nil {
			return err
		}
	default:
		return fmt.Errorf("tdm: unknown fabric kind %d", int(c.Fabric))
	}
	switch c.Mode {
	case Dynamic:
	case Preload:
	case Hybrid:
		if c.PreloadSlots < 0 || c.PreloadSlots > c.K {
			return fmt.Errorf("tdm: hybrid preload slots %d outside [0,%d]", c.PreloadSlots, c.K)
		}
	default:
		return fmt.Errorf("tdm: unknown mode %d", int(c.Mode))
	}
	return c.Link.Validate()
}

// Network is the predictive multiplexed switch.
type Network struct {
	cfg Config
}

// New builds a TDM network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{cfg: cfg}, nil
}

// Name implements netmodel.Network.
func (n *Network) Name() string {
	var name string
	switch n.cfg.Mode {
	case Dynamic:
		name = fmt.Sprintf("tdm-dynamic/k=%d", n.cfg.K)
	case Preload:
		name = fmt.Sprintf("tdm-preload/k=%d", n.cfg.K)
	default:
		name = fmt.Sprintf("tdm-hybrid/%dp+%dd", n.cfg.PreloadSlots, n.cfg.K-n.cfg.PreloadSlots)
	}
	if n.cfg.Fabric == OmegaFabric {
		name += "/omega"
	}
	return name
}

type run struct {
	cfg    Config
	eng    *sim.Engine
	driver *netmodel.Driver
	sched  *core.Scheduler
	xbar   *fabric.Crossbar
	pred   predictor.Predictor

	// reqView is the request matrix as the scheduler sees it: NIC queue
	// state delayed by the control-line latency.
	reqView *bitmat.Matrix
	// specReq holds speculative requests injected by a prefetching
	// predictor (predictor.Prefetcher): they are OR-ed into the request
	// matrix until the connection establishes, then cleared — the latch
	// keeps the connection alive from there.
	specReq *bitmat.Matrix
	// queued[u][v] counts messages pending from u to v.
	queued [][]int
	// grantAt[u][v] is the earliest time NIC u may use a dynamically
	// established connection to v: the grant line takes one control delay
	// to reach the NIC, so a slot that starts earlier cannot carry data on
	// a connection established this recently. Preloaded configurations are
	// known to the NICs from load time and have no such penalty.
	grantAt [][]sim.Time

	// omega is non-nil under OmegaFabric: the realizability oracle for the
	// scheduler constraint and the per-slot invariant check.
	omega *multistage.Omega

	pre        *preloader
	slotTicker *sim.Ticker
	slTicker   *sim.Ticker
	stats      metrics.NetStats
}

// Run implements netmodel.Network.
func (n *Network) Run(wl *traffic.Workload) (metrics.Result, error) {
	cfg := n.cfg
	eng := sim.NewEngine()

	var pred predictor.Predictor
	if cfg.NewPredictor != nil {
		pred = cfg.NewPredictor()
	}
	var omega *multistage.Omega
	var canEstablish func(b *bitmat.Matrix, u, v int) bool
	if cfg.Fabric == OmegaFabric {
		var err error
		omega, err = multistage.NewOmega(cfg.N)
		if err != nil {
			return metrics.Result{}, err
		}
		canEstablish = func(b *bitmat.Matrix, u, v int) bool {
			trial := b.Clone()
			trial.Set(u, v)
			return omega.CanRealize(trial)
		}
	}
	r := &run{
		cfg:   cfg,
		eng:   eng,
		omega: omega,
		sched: core.NewScheduler(core.Params{
			N:              cfg.N,
			K:              cfg.K,
			RotatePriority: *cfg.RotatePriority,
			SkipEmptySlots: *cfg.SkipEmptySlots,
			SLCopies:       cfg.SLCopies,
			LatchRequests:  pred != nil,
			CanEstablish:   canEstablish,
		}),
		xbar:    fabric.NewCrossbar(cfg.N, fabric.LVDS, 0),
		pred:    pred,
		reqView: bitmat.NewSquare(cfg.N),
		specReq: bitmat.NewSquare(cfg.N),
		queued:  make([][]int, cfg.N),
		grantAt: make([][]sim.Time, cfg.N),
	}
	for u := range r.queued {
		r.queued[u] = make([]int, cfg.N)
		r.grantAt[u] = make([]sim.Time, cfg.N)
	}

	driver, err := netmodel.NewDriver(eng, cfg.Link, wl, netmodel.Hooks{
		OnEnqueue: r.onEnqueue,
		OnFlush:   r.onFlush,
		OnIdle:    r.onIdle,
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r.driver = driver

	// Preloaded slots (Preload: all; Hybrid: the first PreloadSlots).
	if cfg.Mode == Preload || (cfg.Mode == Hybrid && cfg.PreloadSlots > 0) {
		slots := cfg.K
		if cfg.Mode == Hybrid {
			slots = cfg.PreloadSlots
		}
		pre, err := newPreloader(r, wl, slots)
		if err != nil {
			return metrics.Result{}, err
		}
		r.pre = pre
	}

	// The slot clock drives the fabric; the SL clock drives reactive
	// scheduling (absent in pure preload mode, where every slot is pinned).
	r.slotTicker = eng.NewTicker(cfg.SlotNs, "tdm-slot", r.onSlot)
	r.slotTicker.StartAt(0)
	if cfg.Mode != Preload {
		r.slTicker = eng.NewTicker(r.sched.PassLatency(), "tdm-sl-pass", r.onSLPass)
		r.slTicker.Start()
	}

	driver.Start()
	res, err := driver.Finish(n.Name(), cfg.Horizon, metrics.NetStats{})
	if err != nil {
		return metrics.Result{}, err
	}
	// Merge scheduler counters into the run stats.
	st := r.sched.Stats()
	r.stats.SchedulerPasses = st.Passes
	r.stats.Established = st.Established
	r.stats.Released = st.Released
	r.stats.Evictions = st.Evictions
	r.stats.Flushes = st.Flushes
	res.Stats = r.stats
	return res, nil
}

// onEnqueue tracks queue transitions, drives the delayed request wire and
// counts connection-cache hits and misses.
func (r *run) onEnqueue(m *nic.Message) {
	u, v := m.Src, m.Dst
	r.queued[u][v]++
	if r.queued[u][v] == 1 {
		// The queue was empty: this message must wait for a connection
		// unless one is already cached — the working-set hit/miss the paper
		// discusses.
		if r.sched.Connected(u, v) {
			r.stats.Hits++
		} else {
			r.stats.Misses++
		}
		r.setRequestWire(u, v, true)
		if r.pre != nil {
			r.pre.pendingUp(topology.Conn{Src: u, Dst: v})
		}
	} else {
		// The message joins a standing backlog and rides the connection the
		// backlog already has (or is already waiting for): a hit.
		r.stats.Hits++
	}
}

// setRequestWire propagates a queue-state transition to the scheduler's
// request-matrix view after the control-line delay. The written value is the
// one sampled now; events fire in order, so the view always equals the NIC
// state one control delay ago — wire semantics.
func (r *run) setRequestWire(u, v int, val bool) {
	r.eng.After(r.cfg.Link.ControlDelay(), "request-wire", func() {
		if val {
			r.reqView.Set(u, v)
		} else {
			r.reqView.Clear(u, v)
		}
	})
}

// onFlush handles the compiler's FLUSH directive: the request reaches the
// scheduler after the control delay and clears all dynamic connections.
func (r *run) onFlush(int) {
	r.eng.After(r.cfg.Link.ControlDelay(), "flush", func() {
		if r.pred != nil {
			for _, c := range bstarConns(r.sched) {
				r.pred.OnRelease(c)
			}
		}
		r.sched.Flush()
	})
}

func bstarConns(s *core.Scheduler) []topology.Conn {
	var out []topology.Conn
	s.BStar().Ones(func(u, v int) bool {
		out = append(out, topology.Conn{Src: u, Dst: v})
		return true
	})
	return out
}

// onIdle stops the clocks so the event queue can drain.
func (r *run) onIdle() {
	r.slotTicker.Stop()
	if r.slTicker != nil {
		r.slTicker.Stop()
	}
}

// onSLPass runs one scheduling pass and applies predictor evictions and
// prefetches.
func (r *run) onSLPass() {
	req := r.reqView
	if pf, ok := r.pred.(predictor.Prefetcher); ok {
		for _, c := range pf.Prefetch(r.eng.Now()) {
			if !r.sched.Connected(c.Src, c.Dst) {
				r.specReq.Set(c.Src, c.Dst)
			}
		}
	}
	if !r.specReq.IsZero() {
		req = r.reqView.Clone()
		req.Or(r.specReq)
	}
	res := r.sched.Pass(req)
	for _, c := range res.Established {
		r.grantAt[c.Src][c.Dst] = r.eng.Now() + r.cfg.Link.ControlDelay()
		r.specReq.Clear(c.Src, c.Dst)
	}
	if r.pred != nil {
		now := r.eng.Now()
		for _, c := range res.Established {
			r.pred.OnEstablish(topology.Conn{Src: c.Src, Dst: c.Dst}, now)
		}
		for _, c := range res.Released {
			r.pred.OnRelease(topology.Conn{Src: c.Src, Dst: c.Dst})
		}
		for _, c := range r.pred.Evictions(now) {
			// Never evict a connection that still has traffic queued; the
			// predictor only sees usage, not queue occupancy.
			if r.queued[c.Src][c.Dst] == 0 && r.sched.Connected(c.Src, c.Dst) {
				r.sched.Evict(c.Src, c.Dst)
				r.pred.OnRelease(c)
			}
		}
	}
}

// onSlot is the slot-boundary handler: pick the next configuration, copy it
// to the fabric, and let every granted NIC transmit one slot payload.
func (r *run) onSlot() {
	r.stats.SlotsTotal++
	if r.pre != nil {
		// The scheduler writes configuration registers during the data
		// phase of the previous slot, so a group swap takes effect at this
		// boundary without stealing fabric time.
		r.pre.maybeAdvance()
	}
	slot, cfg, ok := r.sched.NextFabricSlot()
	if !ok {
		return
	}
	_ = slot
	if err := r.xbar.Apply(cfg); err != nil {
		panic(fmt.Sprintf("tdm: scheduler produced unrealizable configuration: %v", err))
	}
	if r.omega != nil && !r.omega.CanRealize(cfg) {
		panic("tdm: scheduler produced a configuration the omega fabric cannot realize")
	}
	slotStart := r.eng.Now()
	used := false
	for u := 0; u < r.cfg.N; u++ {
		v := cfg.FirstInRow(u)
		if v < 0 {
			continue
		}
		if r.grantAt[u][v] > slotStart {
			// The grant for this freshly established connection has not
			// reached the NIC yet; the slot passes unused for this port.
			continue
		}
		sent, done := r.driver.Buffers[u].TransmitTo(v, r.cfg.PayloadBytes)
		if sent == 0 {
			// A wasted grant: the connection is established but has nothing
			// to send. If its source NIC is holding traffic for other
			// destinations, tell idle-grant-aware predictors — this is the
			// signal that the connection is squatting on a slot others need.
			if obs, ok := r.pred.(predictor.IdleGrantObserver); ok &&
				r.driver.Buffers[u].Len() > 0 {
				obs.OnIdleGrant(topology.Conn{Src: u, Dst: v}, slotStart)
			}
			continue
		}
		used = true
		if r.pred != nil {
			r.pred.OnUse(topology.Conn{Src: u, Dst: v}, slotStart)
		}
		if done != nil {
			r.completeMessage(done, slotStart)
		}
		if r.cfg.AmplifyBytes > 0 &&
			r.driver.Buffers[u].BytesFor(v) > int64(r.cfg.AmplifyBytes) {
			// The backlog outruns one slot per cycle: give the connection
			// another slot if ports are free somewhere (extension 2).
			if added := r.sched.AddBandwidth(u, v, 1); added > 0 {
				r.stats.Amplifications += uint64(added)
			}
		}
	}
	if used {
		r.stats.SlotsUsed++
	}
}

// completeMessage retires a message whose last payload was granted in the
// slot starting at slotStart: the last byte clears the pipe one slot plus
// the link latency later, then the destination NIC spends its receive
// overhead.
func (r *run) completeMessage(m *nic.Message, slotStart sim.Time) {
	u, v := m.Src, m.Dst
	r.queued[u][v]--
	if r.queued[u][v] == 0 {
		r.setRequestWire(u, v, false)
		if r.pre != nil {
			r.pre.pendingDown(topology.Conn{Src: u, Dst: v})
		}
	}
	deliverAt := slotStart + r.cfg.SlotNs + r.cfg.Link.PipeLatency() + nic.RecvOverhead
	r.eng.At(deliverAt, "tdm-deliver", func() { r.driver.Deliver(m) })
}
