package tdm

import (
	"reflect"
	"testing"

	"pmsnet/internal/core"
	"pmsnet/internal/fabric"
	"pmsnet/internal/fault"
	"pmsnet/internal/metrics"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Identity suite for warm-started incremental scheduling: like the sparse
// path and sharding, warm starting is a pure performance feature, so the
// pinned property is a bit-identical metrics.Result against the cold run —
// modulo the three warm telemetry counters, which exist only to observe the
// warm path and are zeroed before comparing.

// stripWarm zeroes the warm-start telemetry, the only Result fields allowed
// to differ between warm-on and warm-off runs.
func stripWarm(r metrics.Result) metrics.Result {
	r.Stats.SchedWarmHits = 0
	r.Stats.SchedWarmMisses = 0
	r.Stats.SchedDirtyRows = 0
	return r
}

// TestWarmStartReportBitIdentical pins the warm pass end to end: turning
// WarmStart on must not change a single non-telemetry field of the Result,
// across modes, fabrics, cache settings and workloads.
func TestWarmStartReportBitIdentical(t *testing.T) {
	off := false
	configs := map[string]Config{
		"dynamic":          {N: 16, K: 4},
		"hybrid":           {N: 16, K: 4, Mode: Hybrid, PreloadSlots: 1},
		"preload":          {N: 16, K: 4, Mode: Preload},
		"dynamic/no-cache": {N: 16, K: 4, SchedCache: &off},
		"dynamic/benes":    {N: 16, K: 4, Fabric: fabric.KindBenes},
		"dynamic/omega":    {N: 16, K: 4, Fabric: fabric.KindOmega},
		"dynamic/sharded":  {N: 16, K: 4, Fabric: fabric.KindClos, Shards: 4},
	}
	for mode, cfg := range configs {
		for wname, wl := range identityWorkloads() {
			cold := identityRun(t, cfg, wl)
			warm := cfg
			warm.WarmStart = true
			got := identityRun(t, warm, wl)
			if mode != "preload" && got.Stats.SchedWarmHits+got.Stats.SchedWarmMisses == 0 {
				t.Errorf("%s/%s: warm path never engaged", mode, wname)
			}
			if !reflect.DeepEqual(stripWarm(cold), stripWarm(got)) {
				t.Errorf("%s/%s: warm start changed the report:\n cold: %+v\n warm: %+v",
					mode, wname, cold, got)
			}
		}
	}
}

// TestWarmStartFaultReportBitIdentical composes warm starting with fault
// injection and recovery: evictions, port evictions, preload fallbacks and
// rescheduling all mutate scheduler state behind the warm masks, and the
// Result must still match the cold run bit for bit.
func TestWarmStartFaultReportBitIdentical(t *testing.T) {
	configs := map[string]Config{
		"dynamic": {N: 16, K: 4},
		"hybrid":  {N: 16, K: 4, Mode: Hybrid, PreloadSlots: 1},
	}
	plans := map[string]*fault.Plan{
		"links":  {Seed: 4, LinkMTBF: 50 * sim.Microsecond, LinkMTTR: sim.Microsecond},
		"tokens": {Seed: 2, RequestLossProb: 0.1, GrantLossProb: 0.1},
		"mixed": {Seed: 7, CorruptProb: 0.02, RequestLossProb: 0.05,
			Links: []fault.LinkFault{{Port: 3, At: 10 * sim.Microsecond, For: 5 * sim.Microsecond}}},
	}
	for mode, cfg := range configs {
		for pname, p := range plans {
			cfgP := cfg
			cfgP.Faults = p
			wl := traffic.RandomMesh(16, 64, 8, 3)
			cold := identityRun(t, cfgP, wl)
			warm := cfgP
			warm.WarmStart = true
			got := identityRun(t, warm, traffic.RandomMesh(16, 64, 8, 3))
			if !reflect.DeepEqual(stripWarm(cold), stripWarm(got)) {
				t.Errorf("%s/%s: warm start changed the faulted report:\n cold: %+v\n warm: %+v",
					mode, pname, cold, got)
			}
		}
	}
}

// TestWarmStartDisengagesCleanly pins the gating: warm starting engages only
// for the paper algorithm on the sparse path; every other combination
// silently runs cold — zero warm counters, identical report.
func TestWarmStartDisengagesCleanly(t *testing.T) {
	off := false
	wl := traffic.RandomMesh(16, 64, 6, 1)
	cases := map[string]Config{
		"dense path": {N: 16, K: 4, WarmStart: true, Sparse: &off},
		"islip":      {N: 16, K: 4, WarmStart: true, Algorithm: core.AlgISLIP},
	}
	for name, cfg := range cases {
		coldCfg := cfg
		coldCfg.WarmStart = false
		want := identityRun(t, coldCfg, wl)
		got := identityRun(t, cfg, wl)
		if got.Stats.SchedWarmHits+got.Stats.SchedWarmMisses+got.Stats.SchedDirtyRows != 0 {
			t.Errorf("%s: warm counters moved on a disengaged path: %+v", name, got.Stats)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: warm request changed the report:\n want: %+v\n got:  %+v", name, want, got)
		}
	}
}
