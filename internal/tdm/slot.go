package tdm

// Data-plane handlers: the slot-boundary transfer loop and message
// completion.

import (
	"fmt"

	"pmsnet/internal/netmodel"
	"pmsnet/internal/nic"
	"pmsnet/internal/predictor"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

// onSlot is the slot-boundary handler: pick the next configuration, copy it
// to the fabric, and let every granted NIC transmit one slot payload.
func (r *run) onSlot() {
	r.stats.SlotsTotal++
	if r.pre != nil {
		// The scheduler writes configuration registers during the data
		// phase of the previous slot, so a group swap takes effect at this
		// boundary without stealing fabric time.
		r.pre.maybeAdvance()
	}
	slot, cfg, ok := r.sched.NextFabricSlot()
	if r.probe != nil {
		s := int32(-1)
		if ok {
			s = int32(slot)
		}
		netmodel.EmitSlotStart(r.probe, r.eng.Now(), s, r.cfg.SlotNs)
	}
	if !ok {
		netmodel.EmitSlotEnd(r.probe, r.eng.Now(), -1, false)
		return
	}
	if err := r.fab.Apply(cfg); err != nil {
		r.fail(fmt.Errorf("tdm: scheduler produced unrealizable configuration for slot %d: %w", slot, err))
		return
	}
	slotStart := r.eng.Now()
	used := false
	// Snapshot the slot's connections from the scheduler's slot index —
	// O(connections), in the same ascending-row order as the former
	// first-in-row scan over all N rows.
	r.connsBuf = r.sched.AppendSlotConns(r.connsBuf[:0], slot)
	for _, conn := range r.connsBuf {
		u, v := conn.Src, conn.Dst
		if r.grantAt[u][v] > slotStart {
			// The grant for this freshly established connection has not
			// reached the NIC yet; the slot passes unused for this port.
			continue
		}
		if r.inj != nil {
			if r.inj.PairDown(u, v) {
				// The pair's link is down or its crosspoint is dead: the
				// grant is wasted and the payload stays queued.
				r.maskedGrants++
				continue
			}
			if r.driver.Buffers[u].HasFor(v) && r.inj.DrawCorrupt() {
				// The slot payload fails the destination NIC's CRC; the
				// bytes stay queued and go out again in the next granted
				// slot — a slot-granularity retransmission.
				if m := r.driver.Buffers[u].Head(v); m != nil {
					m.Retries++
				}
				r.driver.CountRetry()
				continue
			}
		}
		var injected *nic.Message
		if r.probe != nil {
			// The head message's first byte enters the network this slot iff
			// nothing of it has been transmitted yet.
			injected = r.driver.HeadUntransmitted(u, v)
		}
		sent, done := r.driver.Buffers[u].TransmitTo(v, r.cfg.PayloadBytes)
		if sent == 0 {
			// A wasted grant: the connection is established but has nothing
			// to send. If its source NIC is holding traffic for other
			// destinations, tell idle-grant-aware predictors — this is the
			// signal that the connection is squatting on a slot others need.
			if obs, ok := r.pred.(predictor.IdleGrantObserver); ok &&
				r.driver.Buffers[u].Len() > 0 {
				obs.OnIdleGrant(topology.Conn{Src: u, Dst: v}, slotStart)
			}
			continue
		}
		used = true
		if injected != nil {
			r.probe.Emit(probe.Event{Kind: probe.MsgInjected, At: slotStart,
				Src: int32(u), Dst: int32(v), ID: int64(injected.ID)})
		}
		if r.pred != nil {
			r.pred.OnUse(topology.Conn{Src: u, Dst: v}, slotStart)
		}
		if done != nil {
			r.completeMessage(done, slotStart)
		}
		if r.cfg.AmplifyBytes > 0 &&
			r.driver.Buffers[u].BytesFor(v) > int64(r.cfg.AmplifyBytes) {
			// The backlog outruns one slot per cycle: give the connection
			// another slot if ports are free somewhere (extension 2).
			if added := r.sched.AddBandwidth(u, v, 1); added > 0 {
				r.stats.Amplifications += uint64(added)
			}
		}
	}
	if used {
		r.stats.SlotsUsed++
	}
	netmodel.EmitSlotEnd(r.probe, slotStart, int32(slot), used)
}

// completeMessage retires a message whose last payload was granted in the
// slot starting at slotStart: the last byte clears the pipe one slot plus
// the link latency later, then the destination NIC spends its receive
// overhead.
func (r *run) completeMessage(m *nic.Message, slotStart sim.Time) {
	u, v := m.Src, m.Dst
	if r.probe != nil {
		// TransmitTo already dequeued m, so the current head is its successor
		// reaching the front of the u→v queue.
		if h := r.driver.Buffers[u].Head(v); h != nil {
			r.probe.Emit(probe.Event{Kind: probe.MsgHeadOfQueue, At: slotStart,
				Src: int32(h.Src), Dst: int32(h.Dst), ID: int64(h.ID)})
		}
	}
	if r.queued.Dec(u, v) {
		r.reqWire.Set(u, v, false)
		if r.pre != nil {
			r.pre.pendingDown(topology.Conn{Src: u, Dst: v})
		}
	}
	deliverAt := slotStart + r.cfg.SlotNs + r.cfg.Link.PipeLatency() + nic.RecvOverhead
	r.eng.At(deliverAt, "tdm-deliver", func() { r.driver.Deliver(m) })
}
