package tdm

// Fault-reaction handlers: link failures and repairs, dead crosspoints, and
// the queue/preload bookkeeping they unwind.

import (
	"fmt"

	"pmsnet/internal/topology"
)

// onPortDown is the injector's link-failure callback. The scheduler evicts
// every dynamic connection touching the port (its cached TDM configurations
// are stale) and forgets the port's pending requests; preloaded
// configurations containing the port are invalidated for good — their
// traffic falls back to dynamic scheduling, the cache-invalidation semantics
// of a broken compiled schedule. A permanent failure additionally drops all
// traffic from and toward the port: no recovery is possible.
func (r *run) onPortDown(p int, permanent bool) {
	changes := r.sched.EvictPort(p)
	r.reschedules += uint64(len(changes))
	if r.pred != nil {
		for _, c := range changes {
			r.pred.OnRelease(topology.Conn{Src: c.Src, Dst: c.Dst})
		}
	}
	for x := 0; x < r.cfg.N; x++ {
		if x == p {
			continue
		}
		r.reqWire.ClearNow(p, x)
		r.reqWire.ClearNow(x, p)
		r.specReq.Clear(p, x)
		r.specReq.Clear(x, p)
	}
	if r.pre != nil {
		if n := r.pre.breakPort(p); n > 0 {
			r.preloadFallbacks += uint64(n)
			r.ensureDynamicFallback()
		}
	}
	if permanent {
		for _, m := range r.driver.Buffers[p].DrainAll() {
			r.retireQueued(m.Src, m.Dst, 1)
			r.driver.Drop(m)
		}
		for u := 0; u < r.cfg.N; u++ {
			if u != p {
				r.dropPair(u, p)
			}
		}
	}
}

// onPortUp is the injector's link-repair callback: the NIC re-raises every
// request the failure suppressed so dynamic scheduling can re-establish the
// connections. Broken preloaded entries stay broken — the compiled schedule
// is not revalidated at run time — so their traffic keeps using dynamic
// slots.
func (r *run) onPortUp(p int) {
	for x := 0; x < r.cfg.N; x++ {
		if x == p {
			continue
		}
		if r.queued.Count(p, x) > 0 {
			r.raiseRequest(p, x, 0)
		}
		if r.queued.Count(x, p) > 0 {
			r.raiseRequest(x, p, 0)
		}
	}
}

// onCrosspointDead is the injector's crosspoint-failure callback: the pair
// (in,out) is permanently unroutable through the central fabric. Cached and
// preloaded configurations using the crosspoint are invalidated and the
// pair's queued traffic is dropped.
func (r *run) onCrosspointDead(in, out int) {
	if r.sched.Connected(in, out) {
		r.sched.Evict(in, out)
		r.reschedules++
		if r.pred != nil {
			r.pred.OnRelease(topology.Conn{Src: in, Dst: out})
		}
	}
	r.reqWire.ClearNow(in, out)
	r.specReq.Clear(in, out)
	if r.pre != nil {
		if r.pre.breakConn(topology.Conn{Src: in, Dst: out}) {
			r.preloadFallbacks++
			r.ensureDynamicFallback()
		}
	}
	r.dropPair(in, out)
}

// retireQueued unwinds the queue bookkeeping for n messages leaving the
// u->v queue without delivery; when the queue drains it clears the request
// wire and the preloader's pending count, exactly as completeMessage does.
func (r *run) retireQueued(u, v, n int) {
	drained, underflow := r.queued.Remove(u, v, n)
	if underflow {
		r.fail(fmt.Errorf("tdm: queue count for %d->%d went negative", u, v))
		return
	}
	if drained {
		r.reqWire.Set(u, v, false)
		if r.pre != nil {
			r.pre.pendingDown(topology.Conn{Src: u, Dst: v})
		}
	}
}

// dropPair drops every message queued from u toward v — the bulk-drop path
// when the pair becomes permanently unreachable.
func (r *run) dropPair(u, v int) {
	msgs := r.driver.Buffers[u].DrainFor(v)
	if len(msgs) == 0 {
		return
	}
	r.retireQueued(u, v, len(msgs))
	for _, m := range msgs {
		r.driver.Drop(m)
	}
}

// ensureDynamicFallback guarantees at least one dynamically scheduled slot
// and a running scheduling-logic clock, so traffic orphaned by a broken
// preloaded configuration can still be served. In pure Preload mode this
// releases one pinned slot back to the scheduler and starts the SL ticker —
// the graceful-degradation path; in Hybrid mode dynamic slots already exist
// and this is a no-op.
func (r *run) ensureDynamicFallback() {
	if r.sched.DynamicSlotCount() == 0 {
		if r.pre == nil || !r.pre.releaseSlot() {
			return
		}
	}
	if r.slTicker == nil {
		r.slTicker = r.eng.NewTicker(r.sched.PassLatency(), "tdm-sl-pass", r.onSLPass)
		r.slTicker.Start()
	}
}
