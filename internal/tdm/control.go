package tdm

// Control-plane handlers: queue-transition tracking, request/grant token
// signaling toward the scheduler, flushes, and the reactive scheduling pass.

import (
	"pmsnet/internal/core"
	"pmsnet/internal/nic"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

// onEnqueue tracks queue transitions, drives the delayed request wire and
// counts connection-cache hits and misses.
func (r *run) onEnqueue(m *nic.Message) {
	u, v := m.Src, m.Dst
	if r.inj != nil && r.inj.PairBlocked(u, v) {
		// A dead crosspoint or permanently failed endpoint link: no route
		// will ever exist, so the message is dropped at the source NIC.
		for _, dm := range r.driver.Buffers[u].DrainFor(v) {
			r.driver.Drop(dm)
		}
		return
	}
	if r.queued.Inc(u, v) {
		// The queue was empty: this message must wait for a connection
		// unless one is already cached — the working-set hit/miss the paper
		// discusses.
		if r.sched.Connected(u, v) {
			r.stats.Hits++
		} else {
			r.stats.Misses++
		}
		r.raiseRequest(u, v, 0)
		if r.pre != nil {
			r.pre.pendingUp(topology.Conn{Src: u, Dst: v})
		}
	} else {
		// The message joins a standing backlog and rides the connection the
		// backlog already has (or is already waiting for): a hit.
		r.stats.Hits++
	}
}

// raiseRequest asserts the request wire toward the scheduler. With fault
// injection, the raise transition can be lost; the NIC detects the missing
// grant by timeout and re-raises after an exponential backoff (attempt is the
// backoff exponent). Clears are not subject to loss: the request line is
// level-sampled every pass, so a stale low is corrected by the next sample.
func (r *run) raiseRequest(u, v, attempt int) {
	if r.cp.RequestTokenLost() {
		r.cp.RetryAfter(attempt, "request-retry", func() {
			if r.queued.Count(u, v) > 0 && !r.sched.Connected(u, v) &&
				!(r.inj.PairBlocked(u, v)) {
				r.driver.CountRetry()
				r.raiseRequest(u, v, attempt+1)
			}
		})
		return
	}
	r.reqWire.Set(u, v, true)
}

// onFlush handles the compiler's FLUSH directive: the request reaches the
// scheduler after the control delay and clears all dynamic connections.
func (r *run) onFlush(int) {
	r.cp.After("flush", func() {
		if r.pred != nil {
			for _, c := range bstarConns(r.sched) {
				r.pred.OnRelease(c)
			}
		}
		r.sched.Flush()
	})
}

func bstarConns(s *core.Scheduler) []topology.Conn {
	var out []topology.Conn
	s.BStar().Ones(func(u, v int) bool {
		out = append(out, topology.Conn{Src: u, Dst: v})
		return true
	})
	return out
}

// onSLPass runs one scheduling pass and applies predictor evictions and
// prefetches.
func (r *run) onSLPass() {
	req := r.reqView
	if pf, ok := r.pred.(predictor.Prefetcher); ok {
		for _, c := range pf.Prefetch(r.eng.Now()) {
			if !r.sched.Connected(c.Src, c.Dst) {
				r.specReq.Set(c.Src, c.Dst)
			}
		}
	}
	if !r.specReq.IsZero() {
		r.reqMerge.CopyFrom(r.reqView)
		r.reqMerge.Or(r.specReq)
		req = r.reqMerge
	}
	var res core.PassResult
	switch {
	case r.useWarm:
		// A merge pass hands the scheduler reqMerge instead of the journaled
		// reqView; PassWarm detects the swap and rebuilds its masks for that
		// pass, staying bit-identical.
		res = r.sched.PassWarm(req)
	case r.useSparse:
		res = r.sched.PassSparse(req)
	default:
		res = r.sched.Pass(req.Matrix())
	}
	for _, c := range res.Established {
		r.deliverGrant(c.Src, c.Dst, 0)
		r.specReq.Clear(c.Src, c.Dst)
	}
	if r.pred != nil {
		now := r.eng.Now()
		for _, c := range res.Established {
			r.pred.OnEstablish(topology.Conn{Src: c.Src, Dst: c.Dst}, now)
		}
		for _, c := range res.Released {
			r.pred.OnRelease(topology.Conn{Src: c.Src, Dst: c.Dst})
		}
		for _, c := range r.pred.Evictions(now) {
			// Never evict a connection that still has traffic queued; the
			// predictor only sees usage, not queue occupancy.
			if r.queued.Count(c.Src, c.Dst) == 0 && r.sched.Connected(c.Src, c.Dst) {
				r.sched.Evict(c.Src, c.Dst)
				r.pred.OnRelease(c)
			}
		}
	}
}

// deliverGrant sends the grant signal for a freshly established connection
// toward NIC u. With fault injection, the grant token can be lost: the NIC
// never learns it may transmit, and the scheduler re-sends the grant after an
// exponential-backoff timeout (attempt is the backoff exponent). Until a
// grant arrives, the connection's slots pass unused.
func (r *run) deliverGrant(u, v, attempt int) {
	if r.cp.GrantTokenLost() {
		// The NIC must not use the connection until a grant arrives.
		r.grantAt[u][v] = sim.MaxTime
		r.cp.RetryAfter(attempt, "grant-retry", func() {
			if r.sched.Connected(u, v) {
				r.driver.CountRetry()
				r.deliverGrant(u, v, attempt+1)
			}
		})
		return
	}
	r.grantAt[u][v] = r.eng.Now() + r.cp.Delay()
}
