package tdm

import (
	"strings"
	"testing"
	"testing/quick"

	"pmsnet/internal/fabric"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

func mustNew(t *testing.T, cfg Config) *Network {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func oneMessageWorkload(n, bytes int) *traffic.Workload {
	progs := make([]traffic.Program, n)
	progs[0] = traffic.Program{Ops: []traffic.Op{traffic.Send(1, bytes)}}
	return &traffic.Workload{Name: "one", N: n, Programs: progs}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 1, K: 4},
		{N: 8, K: 0},
		{N: 8, K: 3, Mode: Hybrid, PreloadSlots: 4},
		{N: 8, K: 3, Mode: Hybrid, PreloadSlots: -1},
		{N: 8, K: 3, Mode: Mode(9)},
		{N: 8, K: 3, SlotNs: 100, PayloadBytes: 100}, // payload exceeds slot capacity
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Config{
		"tdm-dynamic/k=4":  {N: 8, K: 4},
		"tdm-preload/k=4":  {N: 8, K: 4, Mode: Preload},
		"tdm-hybrid/1p+2d": {N: 8, K: 3, Mode: Hybrid, PreloadSlots: 1},
	}
	for want, cfg := range cases {
		if got := mustNew(t, cfg).Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
	if Dynamic.String() != "dynamic" || Preload.String() != "preload" || Hybrid.String() != "hybrid" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}

// TestDynamicSingleMessageTiming pins the reactive path on a 4-port system
// (scheduler pass = 10 ns, pass ticker every 10 ns): the message is enqueued
// at t=0, its request reaches the scheduler at t=80, the pass at t=90
// establishes the connection, and the grant reaches the NIC at t=170 — too
// late for the slot starting at t=100, so the first usable slot is
// 200..300. The payload completes with that slot and the last byte clears
// the 80 ns pipe plus the 10 ns NIC receive at t=390.
func TestDynamicSingleMessageTiming(t *testing.T) {
	nw := mustNew(t, Config{N: 4, K: 4})
	res, err := nw.Run(oneMessageWorkload(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyMax != 390 {
		t.Fatalf("latency = %v, want 390ns", res.LatencyMax)
	}
	if res.Stats.Misses != 1 || res.Stats.Hits != 0 {
		t.Fatalf("hits/misses = %d/%d, want 0/1 (first use is a compulsory miss)",
			res.Stats.Hits, res.Stats.Misses)
	}
	if res.Stats.Established != 1 {
		t.Fatalf("established = %d, want 1", res.Stats.Established)
	}
}

// TestFragmentationAcrossSlots: a 100-byte message needs two slot payloads
// (64 + 36); the connection persists between the slots.
func TestFragmentationAcrossSlots(t *testing.T) {
	nw := mustNew(t, Config{N: 4, K: 4})
	res, err := nw.Run(oneMessageWorkload(4, 100))
	if err != nil {
		t.Fatal(err)
	}
	// The grant reaches the NIC at 170 (see the single-message test), so
	// the slots at 200..300 and 300..400 carry the two fragments; delivery
	// at 400+90 = 490.
	if res.LatencyMax != 490 {
		t.Fatalf("latency = %v, want 490ns", res.LatencyMax)
	}
	if res.Stats.Established != 1 {
		t.Fatalf("established = %d, want 1 (no churn between fragments)", res.Stats.Established)
	}
}

// TestConnectionReusedAcrossMessages: back-to-back messages to the same
// destination hit the cached connection — the paper's working-set effect.
func TestConnectionReusedAcrossMessages(t *testing.T) {
	progs := make([]traffic.Program, 4)
	var ops []traffic.Op
	for i := 0; i < 10; i++ {
		ops = append(ops, traffic.Send(1, 64))
	}
	progs[0] = traffic.Program{Ops: ops}
	wl := &traffic.Workload{Name: "stream", N: 4, Programs: progs}
	nw := mustNew(t, Config{N: 4, K: 4})
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	// One miss (first message), the rest hit the standing connection while
	// the queue stays backlogged. Only one establishment should happen.
	if res.Stats.Established != 1 {
		t.Fatalf("established = %d, want 1", res.Stats.Established)
	}
	if res.Stats.Hits == 0 {
		t.Fatalf("stats = %+v, want queue-backlog hits", res.Stats)
	}
}

func TestReleaseOnRequestDropWithoutPredictor(t *testing.T) {
	// A message, a long silence, then another: without latching, the
	// connection is released after the first queue drain and the second
	// message is a miss again.
	progs := make([]traffic.Program, 4)
	progs[0] = traffic.Program{Ops: []traffic.Op{
		traffic.Send(1, 8), traffic.Delay(5000), traffic.Send(1, 8),
	}}
	wl := &traffic.Workload{Name: "gap", N: 4, Programs: progs}
	nw := mustNew(t, Config{N: 4, K: 4})
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (released during the gap)", res.Stats.Misses)
	}
	if res.Stats.Established != 2 || res.Stats.Released < 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestPredictorLatchingSurvivesGap(t *testing.T) {
	// Same workload, but a timeout predictor latches the connection past
	// the 5 us gap: the second message is a hit.
	progs := make([]traffic.Program, 4)
	progs[0] = traffic.Program{Ops: []traffic.Op{
		traffic.Send(1, 8), traffic.Delay(5000), traffic.Send(1, 8),
	}}
	wl := &traffic.Workload{Name: "gap", N: 4, Programs: progs}
	nw := mustNew(t, Config{N: 4, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(20 * sim.Microsecond) }})
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Hits != 1 || res.Stats.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", res.Stats.Hits, res.Stats.Misses)
	}
	if res.Stats.Established != 1 {
		t.Fatalf("established = %d, want 1 (latched across the gap)", res.Stats.Established)
	}
}

func TestPredictorEvictionFreesSlots(t *testing.T) {
	// With a short timeout, the connection is evicted during the gap.
	progs := make([]traffic.Program, 4)
	progs[0] = traffic.Program{Ops: []traffic.Op{
		traffic.Send(1, 8), traffic.Delay(5000), traffic.Send(1, 8),
	}}
	wl := &traffic.Workload{Name: "gap", N: 4, Programs: progs}
	nw := mustNew(t, Config{N: 4, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(500) }})
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evictions < 1 {
		t.Fatalf("evictions = %d, want at least 1", res.Stats.Evictions)
	}
	if res.Stats.Misses != 2 {
		t.Fatalf("misses = %d, want 2", res.Stats.Misses)
	}
}

func TestPreloadRequiresStaticPhases(t *testing.T) {
	nw := mustNew(t, Config{N: 4, K: 2, Mode: Preload})
	wl := oneMessageWorkload(4, 8) // no static phases
	if _, err := nw.Run(wl); err == nil {
		t.Fatal("expected error: preload mode without static phases")
	}
}

func TestPreloadRequiresCoverage(t *testing.T) {
	nw := mustNew(t, Config{N: 16, K: 2, Mode: Preload})
	wl := traffic.Scatter(16, 8)
	// Corrupt the static knowledge: swap in an unrelated phase so the
	// scatter traffic is not covered by any preloadable configuration.
	wl.StaticPhases[0] = traffic.OrderedMesh(16, 8, 1).StaticPhases[0]
	if _, err := nw.Run(wl); err == nil || !strings.Contains(err.Error(), "not in any static phase") {
		t.Fatalf("err = %v, want coverage error", err)
	}
}

func TestPreloadScatterGroupsCycle(t *testing.T) {
	// 16-node scatter: 15 single-connection configs, K=4 -> 4 groups; the
	// preload controller must sweep them all.
	nw := mustNew(t, Config{N: 16, K: 4, Mode: Preload})
	wl := traffic.Scatter(16, 8)
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 15 {
		t.Fatalf("messages = %d", res.Messages)
	}
	if res.Stats.Preloads < 4 {
		t.Fatalf("preloads = %d, want at least 4 group loads", res.Stats.Preloads)
	}
	// No reactive scheduling in pure preload mode.
	if res.Stats.SchedulerPasses != 0 {
		t.Fatalf("passes = %d, want 0", res.Stats.SchedulerPasses)
	}
}

func TestPreloadOrderedMeshSingleGroup(t *testing.T) {
	// The 16-node ordered mesh working set decomposes into 4 configs = one
	// group at K=4: loaded once, never swapped.
	nw := mustNew(t, Config{N: 16, K: 4, Mode: Preload})
	res, err := nw.Run(traffic.OrderedMesh(16, 64, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Preloads != 1 {
		t.Fatalf("preloads = %d, want exactly 1", res.Stats.Preloads)
	}
	// Every slot should carry traffic while backlogged: high utilization.
	if res.Efficiency < 0.5 {
		t.Fatalf("efficiency = %v, want > 0.5 for a perfectly preloaded mesh", res.Efficiency)
	}
}

func TestPreloadBeatsDynamicOnOrderedMesh(t *testing.T) {
	wl := traffic.OrderedMesh(16, 64, 20)
	dyn := mustNew(t, Config{N: 16, K: 4})
	pre := mustNew(t, Config{N: 16, K: 4, Mode: Preload})
	dres, err := dyn.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := pre.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	// At 16 nodes the dynamic scheduler can cache the whole degree-4
	// working set too, so preload's edge can shrink to zero — but it must
	// never lose (it skips every compulsory miss). The clear separation at
	// 128 nodes is asserted by the Figure-4 experiment tests.
	if pres.Efficiency < dres.Efficiency {
		t.Fatalf("preload %.3f must not lose to dynamic %.3f on a fully regular pattern",
			pres.Efficiency, dres.Efficiency)
	}
}

func TestPreloadBeatsDynamicOnTwoPhase(t *testing.T) {
	// The all-to-all phase thrashes a 4-slot dynamic cache when connections
	// are latched and evicted by the paper's timeout predictor (idle
	// latched connections waste their slots); preload sweeps the decomposed
	// permutations instead. The gap here must be strict.
	wl := traffic.TwoPhase(16, 64, 5)
	dyn := mustNew(t, Config{N: 16, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(500) }})
	pre := mustNew(t, Config{N: 16, K: 4, Mode: Preload})
	dres, err := dyn.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := pre.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Efficiency <= dres.Efficiency {
		t.Fatalf("preload %.3f should beat dynamic %.3f when the working set exceeds K",
			pres.Efficiency, dres.Efficiency)
	}
}

func TestFlushDirectiveReleasesConnections(t *testing.T) {
	progs := make([]traffic.Program, 4)
	progs[0] = traffic.Program{Ops: []traffic.Op{
		traffic.Send(1, 8), traffic.Delay(1000), traffic.Flush(), traffic.Delay(1000), traffic.Send(1, 8),
	}}
	wl := &traffic.Workload{Name: "flush", N: 4, Programs: progs}
	// With a never-evicting predictor the connection would survive forever;
	// only the FLUSH removes it.
	nw := mustNew(t, Config{N: 4, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewNever() }})
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", res.Stats.Flushes)
	}
	if res.Stats.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (connection flushed between sends)", res.Stats.Misses)
	}
}

func TestHybridServesStaticAndDynamicTraffic(t *testing.T) {
	wl := traffic.Mix(16, 64, 20, 0.8, 0, 3)
	nw := mustNew(t, Config{N: 16, K: 3, Mode: Hybrid, PreloadSlots: 1})
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != wl.MessageCount() {
		t.Fatalf("delivered %d of %d", res.Messages, wl.MessageCount())
	}
	if res.Stats.Preloads < 1 {
		t.Fatal("hybrid should have preloaded the static pattern")
	}
	if res.Stats.SchedulerPasses == 0 {
		t.Fatal("hybrid should also schedule dynamically")
	}
}

func TestHybridZeroPreloadEqualsDynamic(t *testing.T) {
	wl := traffic.Mix(8, 32, 10, 0.5, 0, 4)
	hy := mustNew(t, Config{N: 8, K: 3, Mode: Hybrid, PreloadSlots: 0})
	dy := mustNew(t, Config{N: 8, K: 3})
	hres, err := hy.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dy.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Makespan != dres.Makespan {
		t.Fatalf("hybrid with k=0 (%v) must equal dynamic (%v)", hres.Makespan, dres.Makespan)
	}
}

func TestDeterministicRuns(t *testing.T) {
	wl := traffic.RandomMesh(16, 64, 10, 11)
	nw := mustNew(t, Config{N: 16, K: 4})
	a, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Stats != b.Stats {
		t.Fatalf("runs differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestAllWorkloadsCompleteDynamic(t *testing.T) {
	nw := mustNew(t, Config{N: 16, K: 4})
	for _, wl := range []*traffic.Workload{
		traffic.Scatter(16, 64),
		traffic.OrderedMesh(16, 256, 3),
		traffic.RandomMesh(16, 8, 5, 1),
		traffic.AllToAll(16, 32),
		traffic.TwoPhase(16, 64, 2),
	} {
		res, err := nw.Run(wl)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if res.Messages != wl.MessageCount() || res.Bytes != wl.TotalBytes() {
			t.Fatalf("%s: conservation violated", wl.Name)
		}
	}
}

func TestAllWorkloadsCompletePreload(t *testing.T) {
	nw := mustNew(t, Config{N: 16, K: 4, Mode: Preload})
	for _, wl := range []*traffic.Workload{
		traffic.Scatter(16, 64),
		traffic.OrderedMesh(16, 256, 3),
		traffic.RandomMesh(16, 8, 5, 1),
		traffic.AllToAll(16, 32),
		traffic.TwoPhase(16, 64, 2),
	} {
		res, err := nw.Run(wl)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if res.Messages != wl.MessageCount() {
			t.Fatalf("%s: delivered %d of %d", wl.Name, res.Messages, wl.MessageCount())
		}
	}
}

func TestQuickDynamicCompletionAnySeed(t *testing.T) {
	nw := mustNew(t, Config{N: 8, K: 3})
	f := func(seed int64) bool {
		wl := traffic.Mix(8, 16, 6, 0.5, 0, seed)
		res, err := nw.Run(wl)
		if err != nil {
			return false
		}
		return res.Messages == wl.MessageCount() && res.Efficiency > 0 && res.Efficiency <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSLCopiesSpeedUpScheduling(t *testing.T) {
	// All-to-all stresses the scheduler; extra SL units must not slow it
	// down (and normally help).
	wl := traffic.AllToAll(16, 16)
	one := mustNew(t, Config{N: 16, K: 4, SLCopies: 1})
	two := mustNew(t, Config{N: 16, K: 4, SLCopies: 4})
	r1, err := one.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := two.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Makespan > r1.Makespan*11/10 {
		t.Fatalf("4 SL copies (%v) should not be slower than 1 (%v)", r2.Makespan, r1.Makespan)
	}
}

func BenchmarkDynamicRandomMesh128(b *testing.B) {
	nw, err := New(Config{N: 128, K: 4})
	if err != nil {
		b.Fatal(err)
	}
	wl := traffic.RandomMesh(128, 128, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Run(wl); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMarkovPrefetchRaisesHitRate: a processor cycles three destinations
// with 1200 ns of compute between sends; the 2 us timeout is shorter than a
// connection's 3600 ns reuse interval, so the plain timeout predictor
// misses every message after the first cycle. The Markov prefetcher learns
// the cycle and pre-establishes each connection one hop ahead (1200 ns
// before use, inside the timeout window), converting those misses to hits.
func TestMarkovPrefetchRaisesHitRate(t *testing.T) {
	const n, cycles = 8, 6
	progs := make([]traffic.Program, n)
	var ops []traffic.Op
	for c := 0; c < cycles; c++ {
		for _, dst := range []int{1, 2, 3} {
			ops = append(ops, traffic.Send(dst, 8), traffic.Delay(1200))
		}
	}
	progs[0] = traffic.Program{Ops: ops}
	wl := &traffic.Workload{Name: "cycle", N: n, Programs: progs}

	baseline := mustNew(t, Config{N: n, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(2000) }})
	bres, err := baseline.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	markov := mustNew(t, Config{N: n, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewMarkov(2000, 1) }})
	mres, err := markov.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Stats.Hits <= bres.Stats.Hits {
		t.Fatalf("markov hits %d should exceed timeout hits %d (misses %d vs %d)",
			mres.Stats.Hits, bres.Stats.Hits, mres.Stats.Misses, bres.Stats.Misses)
	}
	if mres.LatencyMean >= bres.LatencyMean {
		t.Fatalf("prefetching should cut mean latency: %v vs %v", mres.LatencyMean, bres.LatencyMean)
	}
}

func TestOmegaFabricValidation(t *testing.T) {
	if _, err := New(Config{N: 12, K: 4, Fabric: fabric.KindOmega}); err == nil {
		t.Fatal("non-power-of-two N should fail under omega fabric")
	}
	if _, err := New(Config{N: 16, K: 4, Fabric: fabric.Kind(9)}); err == nil {
		t.Fatal("unknown fabric should fail")
	}
	if fabric.KindCrossbar.String() != "crossbar" || fabric.KindOmega.String() != "omega" {
		t.Fatal("fabric strings wrong")
	}
	if fabric.Kind(9).String() == "" {
		t.Fatal("unknown fabric should render")
	}
	nw := mustNew(t, Config{N: 16, K: 4, Fabric: fabric.KindOmega})
	if nw.Name() != "tdm-dynamic/k=4/omega" {
		t.Fatalf("Name = %q", nw.Name())
	}
}

func TestRearrangeableFabricsMatchCrossbar(t *testing.T) {
	// Clos (m = n) and Benes are rearrangeably non-blocking: the scheduler
	// runs unconstrained, so every mode must produce the crossbar's exact
	// Result on these fabrics.
	wl := traffic.OrderedMesh(16, 64, 5)
	for _, mode := range []Mode{Dynamic, Preload} {
		base := mustNew(t, Config{N: 16, K: 4, Mode: mode})
		want, err := base.Run(wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []fabric.Kind{fabric.KindClos, fabric.KindBenes} {
			nw := mustNew(t, Config{N: 16, K: 4, Mode: mode, Fabric: kind})
			got, err := nw.Run(wl)
			if err != nil {
				t.Fatalf("%s/%s: %v", mode, kind, err)
			}
			if got.Makespan != want.Makespan || got.Messages != want.Messages ||
				got.Stats != want.Stats {
				t.Fatalf("%s/%s diverged from the crossbar: makespan %v vs %v",
					mode, kind, got.Makespan, want.Makespan)
			}
		}
	}
}

func TestFabricNamesInNetworkName(t *testing.T) {
	for _, kind := range []fabric.Kind{fabric.KindClos, fabric.KindBenes} {
		nw := mustNew(t, Config{N: 16, K: 4, Fabric: kind})
		want := "tdm-dynamic/k=4/" + kind.String()
		if nw.Name() != want {
			t.Fatalf("Name = %q, want %q", nw.Name(), want)
		}
	}
}

func TestOmegaFabricDynamicCompletes(t *testing.T) {
	// Every workload must still complete under the blocking fabric: blocked
	// establishments retry in other slots, and progress is guaranteed as
	// connections release.
	nw := mustNew(t, Config{N: 16, K: 4, Fabric: fabric.KindOmega})
	for _, wl := range []*traffic.Workload{
		traffic.OrderedMesh(16, 64, 5),
		traffic.AllToAll(16, 16),
		traffic.RandomMesh(16, 32, 5, 3),
	} {
		res, err := nw.Run(wl)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if res.Messages != wl.MessageCount() {
			t.Fatalf("%s: delivered %d of %d", wl.Name, res.Messages, wl.MessageCount())
		}
	}
}

func TestOmegaFabricPreloadCompletes(t *testing.T) {
	nw := mustNew(t, Config{N: 16, K: 4, Mode: Preload, Fabric: fabric.KindOmega})
	wl := traffic.AllToAll(16, 32)
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != wl.MessageCount() {
		t.Fatalf("delivered %d of %d", res.Messages, wl.MessageCount())
	}
}

func TestOmegaFabricNoFasterThanCrossbar(t *testing.T) {
	// The blocking constraint can only delay establishments, so the omega
	// switch never beats the crossbar on the same workload.
	wl := traffic.AllToAll(16, 32)
	xb := mustNew(t, Config{N: 16, K: 4})
	om := mustNew(t, Config{N: 16, K: 4, Fabric: fabric.KindOmega})
	xres, err := xb.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := om.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if ores.Makespan < xres.Makespan {
		t.Fatalf("omega (%v) finished before the crossbar (%v)", ores.Makespan, xres.Makespan)
	}
}

// TestCounterPredictorLivenessOnScatter: scatter fills the slots with
// single-use connections that are never "used" again, so a purely
// usage-driven counter would freeze and starve the remaining fan-out. The
// idle-grant feedback (wasted grants while the source has other traffic)
// must keep the run live.
func TestCounterPredictorLivenessOnScatter(t *testing.T) {
	nw := mustNew(t, Config{N: 16, K: 4,
		NewPredictor: func() predictor.Predictor { return predictor.NewCounter(8) }})
	wl := traffic.Scatter(16, 64)
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != wl.MessageCount() {
		t.Fatalf("delivered %d of %d", res.Messages, wl.MessageCount())
	}
	if res.Stats.Evictions == 0 {
		t.Fatal("idle-grant feedback should have driven evictions")
	}
}

// TestQuickEfficiencyRespectsPayloadBound: a TDM switch can never exceed
// PayloadBytes per slot of raw slot capacity, so measured efficiency is
// bounded by payload/slot-capacity (64/80 = 0.8 at the paper's constants)
// for every workload and mode.
func TestQuickEfficiencyRespectsPayloadBound(t *testing.T) {
	const bound = 64.0/80.0 + 0.001
	configs := []Config{
		{N: 16, K: 4},
		{N: 16, K: 4, Mode: Preload},
		{N: 16, K: 3, Mode: Hybrid, PreloadSlots: 1,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(250) }},
	}
	f := func(seed int64) bool {
		wl := traffic.RandomMesh(16, 64, 8, seed)
		for _, cfg := range configs {
			nw, err := New(cfg)
			if err != nil {
				return false
			}
			res, err := nw.Run(wl)
			if err != nil {
				return false
			}
			if res.Efficiency > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
