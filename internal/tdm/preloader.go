package tdm

import (
	"fmt"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/multistage"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// preloader is the compiled-communication controller (paper §3.1, §4
// extension 5). It decomposes each statically-known phase into conflict-free
// configurations (an exact bipartite edge coloring), chunks them into groups
// that fit the pinned slots, and swaps the loaded group when the traffic it
// serves has drained while other static traffic is still waiting.
//
// Group swaps are free of fabric time: the scheduler writes the
// configuration registers during the data phase of the preceding slot, and
// the new group takes effect at the next slot boundary.
type preloader struct {
	r     *run
	slots int
	// groups holds the configuration groups in phase order.
	groups [][]*bitmat.Matrix
	// groupsOf maps a connection to every group containing it.
	groupsOf map[topology.Conn][]int
	// pendingInGroup counts pending connections per group;
	// pendingStatic counts pending connections covered by any group.
	pendingInGroup []int
	pendingStatic  int
	cur            int
	// slotsSinceLoad counts slot boundaries since the current group was
	// loaded; a group keeps the fabric for at least one full TDM cycle.
	slotsSinceLoad int
}

// newPreloader builds the controller and pins the first group. The workload
// must carry static phases; in pure Preload mode every connection of the
// workload must be covered by them (otherwise uncovered traffic would never
// be granted a slot).
func newPreloader(r *run, wl *traffic.Workload, slots int) (*preloader, error) {
	if len(wl.StaticPhases) == 0 {
		return nil, fmt.Errorf("tdm: %s mode needs static phases in the workload", r.cfg.Mode)
	}
	p := &preloader{
		r:        r,
		slots:    slots,
		groupsOf: make(map[topology.Conn][]int),
	}
	for _, phase := range wl.StaticPhases {
		var configs []*bitmat.Matrix
		if r.omega != nil {
			var err error
			configs, err = multistage.DecomposeOmega(phase, r.omega)
			if err != nil {
				return nil, fmt.Errorf("tdm: %w", err)
			}
		} else {
			configs = topology.Decompose(phase)
		}
		for start := 0; start < len(configs); start += slots {
			end := start + slots
			if end > len(configs) {
				end = len(configs)
			}
			gi := len(p.groups)
			group := configs[start:end]
			p.groups = append(p.groups, group)
			for _, cfg := range group {
				cfg.Ones(func(u, v int) bool {
					c := topology.Conn{Src: u, Dst: v}
					p.groupsOf[c] = append(p.groupsOf[c], gi)
					return true
				})
			}
		}
	}
	p.pendingInGroup = make([]int, len(p.groups))

	if r.cfg.Mode == Preload {
		// Every connection the programs use must be statically covered.
		for _, c := range wl.ConnSet().Conns() {
			if len(p.groupsOf[c]) == 0 {
				return nil, fmt.Errorf("tdm: preload mode cannot serve %v: not in any static phase", c)
			}
		}
	}
	p.load(0)
	return p, nil
}

// load pins group gi into the managed slots; slots beyond the group's size
// are pinned empty.
func (p *preloader) load(gi int) {
	p.cur = gi
	p.slotsSinceLoad = 0
	group := p.groups[gi]
	for i := 0; i < p.slots; i++ {
		cfg := bitmat.NewSquare(p.r.cfg.N)
		if i < len(group) {
			cfg = group[i]
		}
		if err := p.r.sched.LoadConfig(i, cfg, true); err != nil {
			panic(fmt.Sprintf("tdm: preloader produced invalid configuration: %v", err))
		}
	}
	p.r.stats.Preloads++
}

// pendingUp records that connection c now has traffic queued.
func (p *preloader) pendingUp(c topology.Conn) {
	gs := p.groupsOf[c]
	for _, g := range gs {
		p.pendingInGroup[g]++
	}
	if len(gs) > 0 {
		p.pendingStatic++
	}
}

// pendingDown records that connection c's queue drained.
func (p *preloader) pendingDown(c topology.Conn) {
	gs := p.groupsOf[c]
	for _, g := range gs {
		p.pendingInGroup[g]--
	}
	if len(gs) > 0 {
		p.pendingStatic--
	}
}

// maybeAdvance swaps the loaded group when another group serves
// substantially more pending traffic than the current one. The 2x hysteresis
// keeps the controller from thrashing between comparably-loaded groups
// (every swap costs a slot); a drained current group (zero pending) always
// loses to any group with work. Candidates are scanned cyclically from the
// current group so equally-loaded groups are served round-robin.
//
// It reports whether a swap happened.
func (p *preloader) maybeAdvance() bool {
	p.slotsSinceLoad++
	if len(p.groups) < 2 || p.pendingStatic == 0 {
		return false
	}
	cur := p.pendingInGroup[p.cur]
	// Minimum residence: a fully drained group is abandoned immediately,
	// but a group that still has traffic keeps the fabric for at least one
	// whole TDM cycle, so every configuration in it gets at least one slot
	// before a swap decision is made.
	if cur > 0 && p.slotsSinceLoad < p.slots {
		return false
	}
	best, bestIdx := cur, p.cur
	for step := 1; step < len(p.groups); step++ {
		g := (p.cur + step) % len(p.groups)
		if p.pendingInGroup[g] > best {
			best, bestIdx = p.pendingInGroup[g], g
		}
	}
	if bestIdx == p.cur || best <= 2*cur {
		return false
	}
	p.load(bestIdx)
	return true
}
