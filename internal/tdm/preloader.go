package tdm

import (
	"fmt"
	"math"
	"sort"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/plan"
	"pmsnet/internal/probe"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// preloader is the compiled-communication controller (paper §3.1, §4
// extension 5). It decomposes each statically-known phase into conflict-free
// configurations (an exact bipartite edge coloring), chunks them into groups
// that fit the pinned slots, and swaps the loaded group when the traffic it
// serves has drained while other static traffic is still waiting.
//
// Group swaps are free of fabric time: the scheduler writes the
// configuration registers during the data phase of the preceding slot, and
// the new group takes effect at the next slot boundary.
type preloader struct {
	r     *run
	slots int
	// groups holds the configuration groups in phase order.
	groups [][]*bitmat.Matrix
	// groupsOf maps a connection to every group containing it.
	groupsOf map[topology.Conn][]int
	// pendingInGroup counts pending connections per group;
	// pendingStatic counts pending connections covered by any group.
	pendingInGroup []int
	pendingStatic  int
	cur            int
	// slotsSinceLoad counts slot boundaries since the current group was
	// loaded; a group keeps the fabric for at least one full TDM cycle.
	slotsSinceLoad int
}

// newPreloader builds the controller and pins the first group. The workload
// must carry static phases; in pure Preload mode every connection of the
// workload must be covered by them (otherwise uncovered traffic would never
// be granted a slot).
func newPreloader(r *run, wl *traffic.Workload, slots int) (*preloader, error) {
	if len(wl.StaticPhases) == 0 {
		return nil, fmt.Errorf("tdm: %s mode needs static phases in the workload", r.cfg.Mode)
	}
	p := &preloader{
		r:        r,
		slots:    slots,
		groupsOf: make(map[topology.Conn][]int),
	}
	if r.cfg.Planner != nil {
		if err := p.planPhases(wl); err != nil {
			return nil, err
		}
	} else {
		for _, phase := range wl.StaticPhases {
			configs, err := r.fab.Decompose(phase)
			if err != nil {
				return nil, fmt.Errorf("tdm: %w", err)
			}
			for start := 0; start < len(configs); start += slots {
				end := start + slots
				if end > len(configs) {
					end = len(configs)
				}
				gi := len(p.groups)
				group := configs[start:end]
				p.groups = append(p.groups, group)
				p.indexGroup(gi, group)
			}
		}
	}
	p.pendingInGroup = make([]int, len(p.groups))

	if r.cfg.Mode == Preload {
		// Every connection the programs use must be statically covered.
		for _, c := range wl.ConnSet().Conns() {
			if len(p.groupsOf[c]) == 0 {
				return nil, fmt.Errorf("tdm: preload mode cannot serve %v: not in any static phase", c)
			}
		}
	}
	if err := p.load(0); err != nil {
		return nil, err
	}
	return p, nil
}

// indexGroup records group membership for every connection in the group. A
// planned configuration can occupy several of the group's slot registers
// (register shares), so the same matrix — and thus the same connection — may
// repeat within a group; membership is recorded once per (connection, group)
// so the pending accounting weighs each group by distinct waiting
// connections, exactly as on the unplanned path.
func (p *preloader) indexGroup(gi int, group []*bitmat.Matrix) {
	for _, cfg := range group {
		cfg.Ones(func(u, v int) bool {
			c := topology.Conn{Src: u, Dst: v}
			gs := p.groupsOf[c]
			if len(gs) == 0 || gs[len(gs)-1] != gi {
				p.groupsOf[c] = append(gs, gi)
			}
			return true
		})
	}
}

// planPhases builds the groups through the configured planner instead of the
// hand-written decomposition: each static phase's demand (program bytes per
// connection, restricted to the phase's working set) is planned into
// configuration groups with register shares, charging group swaps at the
// control plane's reconfiguration delay in slot units. Residual demand the
// plan spilled is simply left out of the groups — it rides the dynamic slots
// like any unpinned traffic.
func (p *preloader) planPhases(wl *traffic.Workload) error {
	cfg := p.r.cfg
	demand := plan.FromWorkload(wl, cfg.PayloadBytes)
	opts := plan.Options{
		ReconfigSlots: float64(cfg.Link.ControlDelay()) / float64(cfg.SlotNs),
		CoverAll:      cfg.Mode == Preload,
		Decompose:     p.r.fab.Decompose,
	}
	if !p.r.fab.Rearrangeable() {
		opts.CanRealize = p.r.fab.CanRealize
	}
	for _, phase := range wl.StaticPhases {
		sched, err := cfg.Planner.Plan(demand.Restrict(phase), cfg.K, p.slots, opts)
		if err != nil {
			return fmt.Errorf("tdm: %s planner: %w", cfg.Planner.Name(), err)
		}
		for _, group := range sched.Configs() {
			gi := len(p.groups)
			p.groups = append(p.groups, group)
			p.indexGroup(gi, group)
		}
		p.r.stats.PlanConfigs += uint64(sched.NumConfigs())
		p.r.stats.PlanGroups += uint64(len(sched.Groups))
		p.r.stats.PlanResidualConns += uint64(sched.Residual.Conns())
		p.r.stats.PlanDrainSlots += uint64(math.Ceil(sched.DrainSlots))
	}
	p.r.stats.Planner = cfg.Planner.Name()
	return nil
}

// load pins group gi into the managed slots; slots beyond the group's size
// are pinned empty.
func (p *preloader) load(gi int) error {
	p.cur = gi
	p.slotsSinceLoad = 0
	group := p.groups[gi]
	for i := 0; i < p.slots; i++ {
		cfg := bitmat.NewSquare(p.r.cfg.N)
		if i < len(group) {
			cfg = group[i]
		}
		if err := p.r.sched.LoadConfig(i, cfg, true); err != nil {
			return fmt.Errorf("tdm: preloader produced invalid configuration for slot %d of group %d: %w", i, gi, err)
		}
	}
	p.r.stats.Preloads++
	if p.r.probe != nil {
		pinned := len(group)
		if pinned > p.slots {
			pinned = p.slots
		}
		p.r.probe.Emit(probe.Event{Kind: probe.Preload, At: p.r.eng.Now(),
			Slot: int32(gi), Aux: int64(pinned)})
	}
	return nil
}

// pendingUp records that connection c now has traffic queued.
func (p *preloader) pendingUp(c topology.Conn) {
	gs := p.groupsOf[c]
	for _, g := range gs {
		p.pendingInGroup[g]++
	}
	if len(gs) > 0 {
		p.pendingStatic++
	}
}

// pendingDown records that connection c's queue drained.
func (p *preloader) pendingDown(c topology.Conn) {
	gs := p.groupsOf[c]
	for _, g := range gs {
		p.pendingInGroup[g]--
	}
	if len(gs) > 0 {
		p.pendingStatic--
	}
}

// maybeAdvance swaps the loaded group when another group serves
// substantially more pending traffic than the current one. The 2x hysteresis
// keeps the controller from thrashing between comparably-loaded groups
// (every swap costs a slot); a drained current group (zero pending) always
// loses to any group with work. Candidates are scanned cyclically from the
// current group so equally-loaded groups are served round-robin.
//
// It reports whether a swap happened.
func (p *preloader) maybeAdvance() bool {
	p.slotsSinceLoad++
	if len(p.groups) < 2 || p.pendingStatic == 0 {
		return false
	}
	cur := p.pendingInGroup[p.cur]
	// Minimum residence: a fully drained group is abandoned immediately,
	// but a group that still has traffic keeps the fabric for at least one
	// whole TDM cycle, so every configuration in it gets at least one slot
	// before a swap decision is made.
	if cur > 0 && p.slotsSinceLoad < p.slots {
		return false
	}
	best, bestIdx := cur, p.cur
	for step := 1; step < len(p.groups); step++ {
		g := (p.cur + step) % len(p.groups)
		if p.pendingInGroup[g] > best {
			best, bestIdx = p.pendingInGroup[g], g
		}
	}
	if bestIdx == p.cur || best <= 2*cur {
		return false
	}
	if err := p.load(bestIdx); err != nil {
		p.r.fail(err)
		return false
	}
	return true
}

// breakConn invalidates every preloaded configuration entry carrying
// connection c after a fault (dead crosspoint or failed endpoint link). The
// entry is removed from its group matrices for the rest of the run — the
// compiled schedule is not revalidated at run time, so a repaired link does
// not restore it — and the currently loaded group is re-pinned if it was
// affected. From here on c's traffic is served only by dynamic slots. It
// reports whether any preloaded entry was broken.
func (p *preloader) breakConn(c topology.Conn) bool {
	gs := p.groupsOf[c]
	if len(gs) == 0 {
		return false
	}
	if p.r.queued.Count(c.Src, c.Dst) > 0 {
		// Retire c's pending contribution while its group membership still
		// exists; the eventual real pendingDown will then be a no-op.
		p.pendingDown(c)
	}
	delete(p.groupsOf, c)
	reload := false
	for _, g := range gs {
		for _, cfg := range p.groups[g] {
			if cfg.Get(c.Src, c.Dst) {
				cfg.Clear(c.Src, c.Dst)
			}
		}
		if g == p.cur {
			reload = true
		}
	}
	if reload && p.slots > 0 {
		if err := p.load(p.cur); err != nil {
			p.r.fail(err)
		}
	}
	return true
}

// breakPort invalidates every preloaded entry whose connection uses port and
// returns how many were broken.
func (p *preloader) breakPort(port int) int {
	var broken []topology.Conn
	for c := range p.groupsOf {
		if c.Src == port || c.Dst == port {
			broken = append(broken, c)
		}
	}
	// Map iteration order is random; sort so the run stays deterministic.
	sort.Slice(broken, func(i, j int) bool {
		if broken[i].Src != broken[j].Src {
			return broken[i].Src < broken[j].Src
		}
		return broken[i].Dst < broken[j].Dst
	})
	for _, c := range broken {
		p.breakConn(c)
	}
	return len(broken)
}

// releaseSlot hands the highest managed slot back to the dynamic scheduler:
// the slot is cleared and unpinned, shrinking the preloaded region by one.
// This is the graceful-degradation move for pure Preload mode, where no
// dynamic slot exists until a fault makes one necessary. It reports whether
// a slot was released.
func (p *preloader) releaseSlot() bool {
	if p.slots == 0 {
		return false
	}
	p.slots--
	if err := p.r.sched.LoadConfig(p.slots, bitmat.NewSquare(p.r.cfg.N), false); err != nil {
		p.r.fail(err)
		return false
	}
	return true
}
