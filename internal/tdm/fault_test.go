package tdm

import (
	"reflect"
	"testing"

	"pmsnet/internal/fabric"
	"pmsnet/internal/fault"
	"pmsnet/internal/metrics"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// faultRun runs the network with the engine self-check armed, verifies the
// exact message-accounting invariant, and returns the result.
func faultRun(t *testing.T, cfg Config, wl *traffic.Workload) metrics.Result {
	t.Helper()
	cfg.SelfCheck = true
	res, err := mustNew(t, cfg).Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Stats.Faults; f.Enabled && !f.Reconciles() {
		t.Fatalf("accounting broken: %d injected != %d delivered + %d dropped",
			f.Injected, f.Delivered, f.Dropped)
	}
	return res
}

// TestZeroFaultPlanBitIdentical is the acceptance criterion for the fault
// layer's fast path: a nil plan, an inactive plan, and no plan at all must
// produce bit-identical reports in every mode.
func TestZeroFaultPlanBitIdentical(t *testing.T) {
	wl := traffic.TwoPhase(8, 32, 3)
	configs := map[string]Config{
		"dynamic": {N: 8, K: 4},
		"preload": {N: 8, K: 4, Mode: Preload},
		"hybrid":  {N: 8, K: 4, Mode: Hybrid, PreloadSlots: 2},
	}
	plans := map[string]*fault.Plan{
		"nil":      nil,
		"zero":     {},
		"inactive": {Seed: 42, RetryBase: 100, RetryCap: 200},
	}
	for mode, cfg := range configs {
		base := faultRun(t, cfg, wl)
		if base.Stats.Faults.Enabled {
			t.Errorf("%s: fault stats enabled without a plan", mode)
		}
		for name, p := range plans {
			cfgP := cfg
			cfgP.Faults = p
			got := faultRun(t, cfgP, wl)
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s: plan %q changed the report:\n  base: %+v\n  got:  %+v", mode, name, base, got)
			}
		}
	}
}

// TestCorruptionRetransmitsAndDelivers checks the CRC/retransmit path: with
// slot-payload corruption every message still arrives, the extra work shows
// up as retries, and the accounting reconciles with zero drops.
func TestCorruptionRetransmitsAndDelivers(t *testing.T) {
	wl := traffic.OrderedMesh(8, 64, 20)
	res := faultRun(t, Config{
		N: 8, K: 4,
		Faults: &fault.Plan{Seed: 1, CorruptProb: 0.05},
	}, wl)
	f := res.Stats.Faults
	if !f.Enabled {
		t.Fatal("fault stats not enabled")
	}
	if res.Messages != wl.MessageCount() {
		t.Fatalf("messages = %d, want %d", res.Messages, wl.MessageCount())
	}
	if f.Corrupted == 0 || f.Retries == 0 {
		t.Fatalf("corrupted = %d, retries = %d; want both > 0 at 5%% corruption", f.Corrupted, f.Retries)
	}
	if f.Retries < f.Corrupted {
		t.Fatalf("retries = %d < corrupted = %d: every corrupted payload must be retransmitted", f.Retries, f.Corrupted)
	}
	if f.Dropped != 0 || f.Delivered != uint64(wl.MessageCount()) {
		t.Fatalf("delivered = %d, dropped = %d; corruption alone must not drop traffic", f.Delivered, f.Dropped)
	}
}

// TestControlTokenLossRecovers checks the lost request/grant path: the NIC's
// timeout-and-backoff retry must deliver everything despite 10% token loss.
func TestControlTokenLossRecovers(t *testing.T) {
	wl := traffic.RandomMesh(8, 64, 60, 5)
	res := faultRun(t, Config{
		N: 8, K: 4,
		Faults: &fault.Plan{Seed: 2, RequestLossProb: 0.1, GrantLossProb: 0.1},
	}, wl)
	f := res.Stats.Faults
	if f.RequestsLost == 0 && f.GrantsLost == 0 {
		t.Fatal("no control tokens lost at 10% loss — injector not wired")
	}
	if f.Retries == 0 {
		t.Fatal("lost tokens must be retried")
	}
	if f.Dropped != 0 || res.Messages != wl.MessageCount() {
		t.Fatalf("delivered %d of %d with %d drops; token loss alone must not drop traffic",
			res.Messages, wl.MessageCount(), f.Dropped)
	}
}

// TestPreloadFallbackOnLinkFault is the graceful-degradation acceptance
// criterion: in pure Preload mode (no dynamic slots at all), a link failure
// invalidates the preloaded configurations using it, and their traffic must
// fall back to dynamically scheduled slots instead of stalling.
func TestPreloadFallbackOnLinkFault(t *testing.T) {
	wl := traffic.OrderedMesh(8, 64, 20)
	// Port 2's link drops out mid-run and repairs much later; the broken
	// preloaded entries are not revalidated, so its traffic finishes on
	// dynamic slots.
	res := faultRun(t, Config{
		N: 8, K: 4, Mode: Preload,
		Faults: &fault.Plan{
			Links: []fault.LinkFault{{Port: 2, At: 2 * sim.Microsecond, For: 4 * sim.Microsecond}},
		},
	}, wl)
	f := res.Stats.Faults
	if f.PreloadFallbacks == 0 {
		t.Fatal("link fault on an in-use port must invalidate preloaded entries")
	}
	if res.Stats.Established == 0 || res.Stats.SchedulerPasses == 0 {
		t.Fatalf("established = %d, passes = %d: fallback traffic must use dynamic scheduling",
			res.Stats.Established, res.Stats.SchedulerPasses)
	}
	if res.Messages != wl.MessageCount() || f.Dropped != 0 {
		t.Fatalf("delivered %d of %d (dropped %d): transient fault must not lose traffic",
			res.Messages, wl.MessageCount(), f.Dropped)
	}
	if f.DegradedTime == 0 {
		t.Fatal("degraded time not recorded")
	}
}

// TestHybridFallbackOnCrosspointDeath: a dead crosspoint invalidates the
// preloaded entry carrying it; hybrid mode already has dynamic slots, which
// must absorb the traffic.
func TestHybridFallbackOnCrosspointDeath(t *testing.T) {
	wl := traffic.OrderedMesh(8, 64, 20)
	// OrderedMesh round 1 sends i -> (i+1)%8, so crosspoint 0:1 carries
	// preloaded traffic.
	res := faultRun(t, Config{
		N: 8, K: 4, Mode: Hybrid, PreloadSlots: 2,
		Faults: &fault.Plan{
			Crosspoints: []fault.CrosspointFault{{In: 0, Out: 1, At: sim.Microsecond}},
		},
	}, wl)
	f := res.Stats.Faults
	if f.CrosspointDeaths != 1 {
		t.Fatalf("crosspoint deaths = %d, want 1", f.CrosspointDeaths)
	}
	if f.Dropped == 0 {
		t.Fatal("a dead crosspoint permanently blocks its pair: 0->1 traffic must be dropped")
	}
	if f.Delivered+f.Dropped != f.Injected {
		t.Fatalf("accounting broken: %d + %d != %d", f.Delivered, f.Dropped, f.Injected)
	}
	if f.PreloadFallbacks == 0 {
		t.Fatal("the preloaded 0:1 entry must be invalidated")
	}
}

// TestPermanentLinkFaultDropsExactly: a permanently dead port drops exactly
// the messages that need it — everything else still arrives.
func TestPermanentLinkFaultDropsExactly(t *testing.T) {
	n := 8
	wl := traffic.OrderedMesh(n, 64, 10)
	res := faultRun(t, Config{
		N: n, K: 4,
		Faults: &fault.Plan{Links: []fault.LinkFault{{Port: 3, At: 0}}}, // For == 0: permanent
	}, wl)
	f := res.Stats.Faults
	if f.LinkFailures != 1 || f.LinkRepairs != 0 {
		t.Fatalf("failures = %d, repairs = %d; want one permanent failure", f.LinkFailures, f.LinkRepairs)
	}
	// Exactly the messages sent by or addressed to port 3 die with its
	// serial link; count them from the workload itself.
	var wantDropped uint64
	for p, prog := range wl.Programs {
		for _, op := range prog.Ops {
			if op.Kind == traffic.OpSend && (p == 3 || op.Dst == 3) {
				wantDropped++
			}
		}
	}
	if wantDropped == 0 {
		t.Fatal("workload never touches port 3; test is vacuous")
	}
	if f.Dropped != wantDropped {
		t.Fatalf("dropped = %d, want %d (port 3's sends and receives)", f.Dropped, wantDropped)
	}
	if f.Delivered != f.Injected-wantDropped {
		t.Fatalf("delivered = %d, want %d", f.Delivered, f.Injected-wantDropped)
	}
}

// TestTransientLinkChurnDeliversAll: random link up/down churn slows the run
// but, with no permanent faults, every message must still be delivered.
func TestTransientLinkChurnDeliversAll(t *testing.T) {
	wl := traffic.RandomMesh(8, 64, 60, 9)
	res := faultRun(t, Config{
		N: 8, K: 4,
		Faults: &fault.Plan{Seed: 4, LinkMTBF: 50 * sim.Microsecond, LinkMTTR: sim.Microsecond},
	}, wl)
	f := res.Stats.Faults
	if f.Dropped != 0 || res.Messages != wl.MessageCount() {
		t.Fatalf("delivered %d of %d (dropped %d): transient churn must not lose traffic",
			res.Messages, wl.MessageCount(), f.Dropped)
	}
	if f.LinkFailures == 0 {
		t.Skip("no failure fired within the run; churn too slow for this workload length")
	}
	if f.LinkRepairs > f.LinkFailures {
		t.Fatalf("repairs = %d > failures = %d", f.LinkRepairs, f.LinkFailures)
	}
}

// TestFaultRecoveryAcrossFabrics runs the combined fault cocktail — payload
// corruption, control-token loss, and transient link churn — on each
// multistage fabric backend. Recovery must not depend on the fabric: every
// message is delivered, the accounting reconciles, and the run stays
// deterministic.
func TestFaultRecoveryAcrossFabrics(t *testing.T) {
	wl := traffic.RandomMesh(8, 64, 40, 7)
	for _, fab := range []fabric.Kind{fabric.KindOmega, fabric.KindClos, fabric.KindBenes} {
		t.Run(fab.String(), func(t *testing.T) {
			cfg := Config{
				N: 8, K: 4, Fabric: fab,
				Faults: &fault.Plan{
					Seed:            11,
					CorruptProb:     0.02,
					RequestLossProb: 0.02,
					GrantLossProb:   0.02,
					LinkMTBF:        100 * sim.Microsecond,
					LinkMTTR:        2 * sim.Microsecond,
				},
			}
			a := faultRun(t, cfg, wl)
			if a.Messages != wl.MessageCount() || a.Stats.Faults.Dropped != 0 {
				t.Fatalf("delivered %d of %d (dropped %d): transient faults must not lose traffic",
					a.Messages, wl.MessageCount(), a.Stats.Faults.Dropped)
			}
			if a.Stats.Faults.Retries == 0 {
				t.Fatal("fault cocktail produced no retries — injector not wired on this fabric")
			}
			b := faultRun(t, cfg, wl)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("faulty run on %s not deterministic:\n  a: %+v\n  b: %+v", fab, a, b)
			}
		})
	}
}

// TestFaultRunsDeterministic: a faulty run is a pure function of
// (model, workload, seed, plan) — two identical runs give identical reports.
func TestFaultRunsDeterministic(t *testing.T) {
	wl := traffic.RandomMesh(8, 64, 40, 7)
	cfg := Config{
		N: 8, K: 4,
		Faults: &fault.Plan{
			Seed:            11,
			CorruptProb:     0.02,
			RequestLossProb: 0.02,
			GrantLossProb:   0.02,
			LinkMTBF:        100 * sim.Microsecond,
			LinkMTTR:        2 * sim.Microsecond,
		},
	}
	a := faultRun(t, cfg, wl)
	b := faultRun(t, cfg, wl)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical faulty runs diverged:\n  a: %+v\n  b: %+v", a, b)
	}
}
