// Package wormhole implements the paper's wormhole-routing baseline: an
// input-queued switch on a conventional digital crossbar.
//
// Timing model (paper §5):
//
//   - Messages are segmented into worms of at most 128 bytes "to ensure
//     fairness within the network"; the flit size is 8 bytes, which
//     serializes in exactly 10 ns at the 6.4 Gb/s line rate.
//   - The delay through the switch includes scheduling the first flit of
//     each worm: 80 ns. All subsequent flits are routed in 10 ns each.
//   - The path to the switch costs 30 ns parallel→serial, 20 ns of wire and
//     30 ns serial→parallel (the digital crossbar operates on parallel
//     data); the path from the switch to the destination NIC costs the same
//     again, plus the 10 ns NIC receive operation.
//   - When a message is broken into multiple worms, the cable delay is seen
//     once: later worms are buffered within the crossbar switch while
//     earlier worms drain, so they pipeline behind it.
//
// Contention: a worm needs both its switch input port and its output port
// for the duration of its transfer (arbitration + flits); outputs serve
// worms in arrival order, and a worm at the head of its output queue whose
// input port is still draining an earlier worm blocks that output —
// wormhole's head-of-line blocking. A source holds back its next worm until
// the previous one has begun moving through the switch (single-worm input
// buffering).
package wormhole

import (
	"fmt"

	"pmsnet/internal/fabric"
	"pmsnet/internal/fault"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/nic"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Paper §5 constants.
const (
	// MaxWormBytes limits worm size for fairness.
	MaxWormBytes = 128
	// FlitBytes is the flit size.
	FlitBytes = 8
	// ArbitrationNs is the time to schedule the first flit of a worm.
	ArbitrationNs sim.Time = 80
)

// Config parameterizes the wormhole network.
type Config struct {
	// N is the processor count.
	N int
	// Link is the serial-link model; zero value means link.Paper().
	Link link.Model
	// Horizon bounds simulated time; zero means netmodel.DefaultHorizon.
	Horizon sim.Time
	// Faults, when non-nil and active, injects link failures and corrupted
	// worms per the plan; nil leaves the run bit-identical to a fault-free
	// one.
	Faults *fault.Plan
}

func (c Config) withDefaults() Config {
	if c.Link.BitsPerSecond == 0 {
		c.Link = link.Paper()
	}
	if c.Horizon == 0 {
		c.Horizon = netmodel.DefaultHorizon
	}
	return c
}

// Network is the wormhole baseline.
type Network struct {
	cfg Config
}

// New builds a wormhole network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 1 {
		return nil, fmt.Errorf("wormhole: need at least 2 processors, got %d", cfg.N)
	}
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	return &Network{cfg: cfg}, nil
}

// Name implements netmodel.Network.
func (n *Network) Name() string { return "wormhole" }

// worm is one in-flight segment of a message.
type worm struct {
	bytes   int
	msg     *nic.Message
	last    bool
	onStart func() // called when the worm begins moving through the switch
}

type run struct {
	cfg    Config
	eng    *sim.Engine
	driver *netmodel.Driver
	xbar   *fabric.Crossbar

	outQueue [][]*worm
	outBusy  []bool
	// inBusy marks switch input ports currently draining a worm; a worm
	// needs both ports.
	inBusy []bool
	// waitingOnInput lists outputs whose head worm is blocked on an input.
	waitingOnInput [][]int
	// srcActive tracks whether a source's transmit process is running.
	srcActive []bool
	// inputPipe is the one-way latency from a source NIC to the switch
	// input (serialize + wire + deserialize at the digital switch).
	inputPipe sim.Time
	// outputPipe is switch-output to destination-NIC latency.
	outputPipe sim.Time
}

// Run implements netmodel.Network.
func (n *Network) Run(wl *traffic.Workload) (metrics.Result, error) {
	eng := sim.NewEngine()
	r := &run{
		cfg:            n.cfg,
		eng:            eng,
		xbar:           fabric.NewCrossbar(n.cfg.N, fabric.Digital, 0),
		outQueue:       make([][]*worm, n.cfg.N),
		outBusy:        make([]bool, n.cfg.N),
		inBusy:         make([]bool, n.cfg.N),
		waitingOnInput: make([][]int, n.cfg.N),
		srcActive:      make([]bool, n.cfg.N),
	}
	lm := n.cfg.Link
	r.inputPipe = lm.SerializeNs + lm.WireNs + lm.DeserializeNs
	r.outputPipe = lm.SerializeNs + lm.WireNs + lm.DeserializeNs

	driver, err := netmodel.NewDriver(eng, lm, wl, netmodel.Hooks{
		OnEnqueue: func(m *nic.Message) { r.kickSource(m.Src) },
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r.driver = driver
	inj, err := fault.NewInjector(n.cfg.Faults, eng, n.cfg.N)
	if err != nil {
		return metrics.Result{}, err
	}
	if inj != nil {
		driver.AttachFaults(inj)
		inj.Start()
	}
	driver.Start()
	return driver.Finish(n.Name(), n.cfg.Horizon, metrics.NetStats{})
}

// kickSource starts the source's transmit process if it is idle.
func (r *run) kickSource(s int) {
	if r.srcActive[s] {
		return
	}
	r.srcActive[s] = true
	r.startMessage(s)
}

// startMessage pops the next message in FIFO order and transmits its worms.
func (r *run) startMessage(s int) {
	m := r.driver.Buffers[s].PopFIFO()
	if m == nil {
		r.srcActive[s] = false
		return
	}
	r.sendWorm(s, m, splitWorms(m.Bytes), 0)
}

// splitWorms segments a message into worm sizes.
func splitWorms(bytes int) []int {
	var out []int
	for bytes > 0 {
		w := bytes
		if w > MaxWormBytes {
			w = MaxWormBytes
		}
		out = append(out, w)
		bytes -= w
	}
	return out
}

// sendWorm transmits worm i of the message from source s. The source may
// move to the next worm only when (a) the current worm has fully left the
// source link and (b) it has begun its switch traversal, freeing the input
// buffer.
func (r *run) sendWorm(s int, m *nic.Message, worms []int, i int) {
	bytes := worms[i]
	serDone := r.eng.Now() + r.cfg.Link.SerializationTime(bytes)
	headArrives := r.eng.Now() + r.inputPipe

	pendingConditions := 2
	var readyAt sim.Time
	conditionMet := func() {
		if now := r.eng.Now(); now > readyAt {
			readyAt = now
		}
		pendingConditions--
		if pendingConditions == 0 {
			r.eng.At(readyAt, "worm-next", func() {
				if i+1 < len(worms) {
					r.sendWorm(s, m, worms, i+1)
				} else {
					r.startMessage(s)
				}
			})
		}
	}

	w := &worm{bytes: bytes, msg: m, last: i == len(worms)-1, onStart: conditionMet}
	r.eng.At(serDone, "worm-serialized", conditionMet)
	r.eng.At(headArrives, "worm-at-switch", func() {
		r.outQueue[m.Dst] = append(r.outQueue[m.Dst], w)
		r.kickOutput(m.Dst)
	})
}

// kickOutput serves the next waiting worm on an idle output port. The worm
// also needs its switch input port; if that is still draining an earlier
// worm, this output stalls until the input frees (head-of-line blocking).
func (r *run) kickOutput(v int) {
	if r.outBusy[v] || len(r.outQueue[v]) == 0 {
		return
	}
	w := r.outQueue[v][0]
	u := w.msg.Src
	if r.inBusy[u] {
		r.waitingOnInput[u] = append(r.waitingOnInput[u], v)
		return
	}
	r.outQueue[v] = r.outQueue[v][1:]
	r.outBusy[v] = true
	r.inBusy[u] = true
	w.onStart()
	// Scheduling the head flit (80 ns) + one switch traversal per flit.
	flits := (w.bytes + FlitBytes - 1) / FlitBytes
	xfer := ArbitrationNs + sim.Time(flits)*r.xbar.TraversalDelay()
	r.eng.After(xfer, "worm-through-switch", func() {
		r.outBusy[v] = false
		r.inBusy[u] = false
		if w.last {
			// Remaining path: switch output to destination NIC, plus the
			// NIC's receive operation.
			r.eng.After(r.outputPipe+nic.RecvOverhead, "deliver", func() {
				// Arrive runs the end-to-end CRC/fault check; a failed
				// check retransmits the whole message from the source.
				r.driver.Arrive(w.msg)
			})
		}
		waiting := r.waitingOnInput[u]
		r.waitingOnInput[u] = nil
		r.kickOutput(v)
		for _, wv := range waiting {
			r.kickOutput(wv)
		}
	})
}
