// Package wormhole implements the paper's wormhole-routing baseline: an
// input-queued switch on a conventional digital crossbar.
//
// Timing model (paper §5):
//
//   - Messages are segmented into worms of at most 128 bytes "to ensure
//     fairness within the network"; the flit size is 8 bytes, which
//     serializes in exactly 10 ns at the 6.4 Gb/s line rate.
//   - The delay through the switch includes scheduling the first flit of
//     each worm: 80 ns. All subsequent flits are routed in 10 ns each.
//   - The path to the switch costs 30 ns parallel→serial, 20 ns of wire and
//     30 ns serial→parallel (the digital crossbar operates on parallel
//     data); the path from the switch to the destination NIC costs the same
//     again, plus the 10 ns NIC receive operation.
//   - When a message is broken into multiple worms, the cable delay is seen
//     once: later worms are buffered within the crossbar switch while
//     earlier worms drain, so they pipeline behind it.
//
// Contention: a worm needs both its switch input port and its output port
// for the duration of its transfer (arbitration + flits); outputs serve
// worms in arrival order, and a worm at the head of its output queue whose
// input port is still draining an earlier worm blocks that output —
// wormhole's head-of-line blocking. A source holds back its next worm until
// the previous one has begun moving through the switch (single-worm input
// buffering).
package wormhole

import (
	"fmt"

	"pmsnet/internal/fabric"
	"pmsnet/internal/fault"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/nic"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Paper §5 constants.
const (
	// MaxWormBytes limits worm size for fairness.
	MaxWormBytes = 128
	// FlitBytes is the flit size.
	FlitBytes = 8
	// ArbitrationNs is the time to schedule the first flit of a worm.
	ArbitrationNs sim.Time = 80
)

// Config parameterizes the wormhole network.
type Config struct {
	// N is the processor count.
	N int
	// Link is the serial-link model; zero value means link.Paper().
	Link link.Model
	// Horizon bounds simulated time; zero means netmodel.DefaultHorizon.
	Horizon sim.Time
	// Faults, when non-nil and active, injects link failures and corrupted
	// worms per the plan; nil leaves the run bit-identical to a fault-free
	// one.
	Faults *fault.Plan
	// Probe, when non-nil, receives the run's observability event stream.
	Probe *probe.Probe
}

func (c Config) withDefaults() Config {
	if c.Link.BitsPerSecond == 0 {
		c.Link = link.Paper()
	}
	if c.Horizon == 0 {
		c.Horizon = netmodel.DefaultHorizon
	}
	return c
}

// Network is the wormhole baseline.
type Network struct {
	cfg Config
}

// New builds a wormhole network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 1 {
		return nil, fmt.Errorf("wormhole: need at least 2 processors, got %d", cfg.N)
	}
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	return &Network{cfg: cfg}, nil
}

// Name implements netmodel.Network.
func (n *Network) Name() string { return "wormhole" }

// worm is one in-flight segment of a message. Worm structs are recycled
// through the run's free list: a worm's last event is its switch traversal
// completing, after which the struct returns to the pool.
type worm struct {
	bytes int
	msg   *nic.Message
	idx   int // worm index within the message
	last  bool
	// pending counts the conditions gating the source's next worm: the
	// current worm fully serialized, and its switch traversal begun.
	pending int
	readyAt sim.Time
}

type run struct {
	cfg    Config
	eng    *sim.Engine
	driver *netmodel.Driver
	xbar   *fabric.Crossbar

	outQueue [][]*worm
	outBusy  []bool
	// inBusy marks switch input ports currently draining a worm; a worm
	// needs both ports.
	inBusy []bool
	// waitingOnInput lists outputs whose head worm is blocked on an input.
	waitingOnInput [][]int
	// ports serializes each source's transmit process.
	ports *netmodel.PortEngine
	// inputPipe is the one-way latency from a source NIC to the switch
	// input (serialize + wire + deserialize at the digital switch).
	inputPipe sim.Time
	// outputPipe is switch-output to destination-NIC latency.
	outputPipe sim.Time

	// wormFree recycles worm structs; waitScratch is reused when draining a
	// blocked-output list. The cached ArgHandler method values carry each
	// worm through its event chain without per-event closures.
	wormFree    []*worm
	waitScratch []int
	probe       *probe.Probe
	condMetFn   sim.ArgHandler
	atSwitchFn  sim.ArgHandler
	wormNextFn  sim.ArgHandler
	throughFn   sim.ArgHandler
	deliverFn   sim.ArgHandler
}

// Run implements netmodel.Network.
func (n *Network) Run(wl *traffic.Workload) (metrics.Result, error) {
	eng := sim.NewEngine()
	r := &run{
		cfg:            n.cfg,
		eng:            eng,
		xbar:           fabric.NewCrossbar(n.cfg.N, fabric.Digital, 0),
		outQueue:       make([][]*worm, n.cfg.N),
		outBusy:        make([]bool, n.cfg.N),
		inBusy:         make([]bool, n.cfg.N),
		waitingOnInput: make([][]int, n.cfg.N),
		probe:          n.cfg.Probe,
	}
	lm := n.cfg.Link
	r.inputPipe = lm.SerializeNs + lm.WireNs + lm.DeserializeNs
	r.outputPipe = lm.SerializeNs + lm.WireNs + lm.DeserializeNs
	r.condMetFn = r.conditionMet
	r.atSwitchFn = r.atSwitch
	r.wormNextFn = r.wormNext
	r.throughFn = r.throughSwitch
	r.deliverFn = r.deliver

	driver, err := netmodel.NewDriver(eng, lm, wl, netmodel.Hooks{
		OnEnqueue: func(m *nic.Message) { r.ports.Kick(m.Src) },
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r.driver = driver
	r.ports = netmodel.NewPortEngine(driver, n.cfg.N, r.startMessage)
	if n.cfg.Probe != nil {
		driver.SetProbe(n.cfg.Probe)
	}
	inj, err := fault.NewInjector(n.cfg.Faults, eng, n.cfg.N)
	if err != nil {
		return metrics.Result{}, err
	}
	if inj != nil {
		inj.SetProbe(n.cfg.Probe)
		driver.AttachFaults(inj)
		inj.Start()
	}
	driver.Start()
	return driver.Finish(n.Name(), n.cfg.Horizon, metrics.NetStats{})
}

// startMessage transmits a freshly popped message's worms; the port engine
// serializes calls per source.
func (r *run) startMessage(s int, m *nic.Message) {
	r.sendWorm(s, m, 0)
}

// wormCount returns the number of worms a message of the given size splits
// into; wormBytes returns the size of worm i. Pure index math — the hot
// path never materializes the split as a slice.
func wormCount(bytes int) int { return (bytes + MaxWormBytes - 1) / MaxWormBytes }

func wormBytes(bytes, i int) int {
	w := bytes - i*MaxWormBytes
	if w > MaxWormBytes {
		w = MaxWormBytes
	}
	return w
}

// splitWorms segments a message into worm sizes — the reference form of the
// wormCount/wormBytes index math, kept for tests and documentation.
func splitWorms(bytes int) []int {
	var out []int
	for i := 0; i < wormCount(bytes); i++ {
		out = append(out, wormBytes(bytes, i))
	}
	return out
}

// newWorm takes a worm struct off the free list or makes one.
func (r *run) newWorm() *worm {
	if n := len(r.wormFree); n > 0 {
		w := r.wormFree[n-1]
		r.wormFree = r.wormFree[:n-1]
		return w
	}
	return &worm{}
}

// freeWorm recycles a worm whose last event has fired.
func (r *run) freeWorm(w *worm) {
	w.msg = nil
	r.wormFree = append(r.wormFree, w)
}

// sendWorm transmits worm i of the message from its source. The source may
// move to the next worm only when (a) the current worm has fully left the
// source link and (b) it has begun its switch traversal, freeing the input
// buffer.
func (r *run) sendWorm(s int, m *nic.Message, i int) {
	if i == 0 && r.probe != nil {
		r.probe.Emit(probe.Event{Kind: probe.MsgInjected, At: r.eng.Now(),
			Src: int32(m.Src), Dst: int32(m.Dst), ID: int64(m.ID)})
	}
	bytes := wormBytes(m.Bytes, i)
	serDone := r.eng.Now() + r.cfg.Link.SerializationTime(bytes)
	headArrives := r.eng.Now() + r.inputPipe

	w := r.newWorm()
	w.bytes, w.msg, w.idx = bytes, m, i
	w.last = i == wormCount(m.Bytes)-1
	w.pending, w.readyAt = 2, 0
	r.eng.AtArg(serDone, "worm-serialized", r.condMetFn, w)
	r.eng.AtArg(headArrives, "worm-at-switch", r.atSwitchFn, w)
}

// conditionMet retires one of the worm's two source-gating conditions; when
// both have passed, the source's next step runs at the later of the two.
func (r *run) conditionMet(arg any) {
	w := arg.(*worm)
	if now := r.eng.Now(); now > w.readyAt {
		w.readyAt = now
	}
	w.pending--
	if w.pending == 0 {
		r.eng.AtArg(w.readyAt, "worm-next", r.wormNextFn, w)
	}
}

// wormNext advances the source: the next worm of the same message, or the
// next message.
func (r *run) wormNext(arg any) {
	w := arg.(*worm)
	m := w.msg
	if w.idx+1 < wormCount(m.Bytes) {
		r.sendWorm(m.Src, m, w.idx+1)
	} else {
		r.ports.Next(m.Src)
	}
}

// atSwitch queues the worm's head at its output port.
func (r *run) atSwitch(arg any) {
	w := arg.(*worm)
	r.outQueue[w.msg.Dst] = append(r.outQueue[w.msg.Dst], w)
	r.kickOutput(w.msg.Dst)
}

// kickOutput serves the next waiting worm on an idle output port. The worm
// also needs its switch input port; if that is still draining an earlier
// worm, this output stalls until the input frees (head-of-line blocking).
func (r *run) kickOutput(v int) {
	if r.outBusy[v] || len(r.outQueue[v]) == 0 {
		return
	}
	w := r.outQueue[v][0]
	u := w.msg.Src
	if r.inBusy[u] {
		r.waitingOnInput[u] = append(r.waitingOnInput[u], v)
		return
	}
	r.outQueue[v] = r.outQueue[v][1:]
	r.outBusy[v] = true
	r.inBusy[u] = true
	r.conditionMet(w) // traversal begins: the source input buffer frees
	// Scheduling the head flit (80 ns) + one switch traversal per flit.
	flits := (w.bytes + FlitBytes - 1) / FlitBytes
	xfer := ArbitrationNs + sim.Time(flits)*r.xbar.TraversalDelay()
	r.eng.AfterArg(xfer, "worm-through-switch", r.throughFn, w)
}

// throughSwitch fires when the worm's tail clears the crossbar: both ports
// free, the last worm heads for the destination NIC, and any outputs that
// stalled on this input get another chance. This is the worm's final event,
// so the struct returns to the pool here.
func (r *run) throughSwitch(arg any) {
	w := arg.(*worm)
	u, v := w.msg.Src, w.msg.Dst
	r.outBusy[v] = false
	r.inBusy[u] = false
	if w.last {
		// Remaining path: switch output to destination NIC, plus the NIC's
		// receive operation. Arrive runs the end-to-end CRC/fault check; a
		// failed check retransmits the whole message from the source.
		r.eng.AfterArg(r.outputPipe+nic.RecvOverhead, "deliver", r.deliverFn, w.msg)
	}
	r.freeWorm(w)
	// Drain the blocked-output list through the reusable scratch buffer:
	// kickOutput may re-append to waitingOnInput[u] while we iterate.
	waiting := append(r.waitScratch[:0], r.waitingOnInput[u]...)
	r.waitScratch = waiting
	r.waitingOnInput[u] = r.waitingOnInput[u][:0]
	r.kickOutput(v)
	for _, wv := range waiting {
		r.kickOutput(wv)
	}
}

func (r *run) deliver(arg any) {
	r.driver.Arrive(arg.(*nic.Message))
}
