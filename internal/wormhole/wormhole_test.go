package wormhole

import (
	"testing"
	"testing/quick"

	"pmsnet/internal/traffic"
)

func mustNew(t *testing.T, n int) *Network {
	t.Helper()
	nw, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestSplitWorms(t *testing.T) {
	cases := []struct {
		bytes int
		want  []int
	}{
		{8, []int{8}},
		{128, []int{128}},
		{129, []int{128, 1}},
		{200, []int{128, 72}},
		{2048, []int{128, 128, 128, 128, 128, 128, 128, 128, 128, 128, 128, 128, 128, 128, 128, 128}},
	}
	for _, c := range cases {
		got := splitWorms(c.bytes)
		if len(got) != len(c.want) {
			t.Fatalf("splitWorms(%d) = %v, want %v", c.bytes, got, c.want)
		}
		total := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("splitWorms(%d) = %v, want %v", c.bytes, got, c.want)
			}
			total += got[i]
		}
		if total != c.bytes {
			t.Fatalf("splitWorms(%d) loses bytes: %v", c.bytes, got)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Fatal("expected error for N=1")
	}
	nw := mustNew(t, 4)
	if nw.Name() != "wormhole" {
		t.Fatalf("Name = %q", nw.Name())
	}
}

// TestSingleMessageLatency pins the end-to-end timing of one uncontended
// 8-byte message: 80 ns to the switch (30+20+30), 80 ns arbitration, one
// 10 ns flit, 80 ns to the destination, 10 ns NIC receive = 260 ns.
func TestSingleMessageLatency(t *testing.T) {
	nw := mustNew(t, 4)
	wl := &traffic.Workload{Name: "one", N: 4,
		Programs: []traffic.Program{{Ops: []traffic.Op{traffic.Send(1, 8)}}, {}, {}, {}}}
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyMax != 260 {
		t.Fatalf("latency = %v, want 260ns", res.LatencyMax)
	}
	if res.Messages != 1 {
		t.Fatalf("messages = %d", res.Messages)
	}
}

// TestTwoWormMessageLatency pins a 200-byte message (worms of 128 and 72
// bytes). Worm 1: serialization done at 160, switch transfer 80..320
// (arb 80 + 16 flits). Worm 2 starts serializing at 160 (worm 1 already
// moving), reaches the switch at 240, transfers 320..490 (arb 80 + 9
// flits), delivery at 490+80+10 = 580.
func TestTwoWormMessageLatency(t *testing.T) {
	nw := mustNew(t, 4)
	wl := &traffic.Workload{Name: "two-worm", N: 4,
		Programs: []traffic.Program{{Ops: []traffic.Op{traffic.Send(1, 200)}}, {}, {}, {}}}
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyMax != 580 {
		t.Fatalf("latency = %v, want 580ns", res.LatencyMax)
	}
}

func TestOutputContentionSerializes(t *testing.T) {
	// Two sources, one destination: worms must take turns on the output.
	nw := mustNew(t, 4)
	wl := &traffic.Workload{Name: "incast", N: 4, Programs: []traffic.Program{
		{Ops: []traffic.Op{traffic.Send(2, 128)}},
		{Ops: []traffic.Op{traffic.Send(2, 128)}},
		{}, {},
	}}
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	// First worm: arrives 80, occupies the output 80..320 (80 ns arb + 16
	// flits x 10 ns), delivered 410. The second worm (same arrival time)
	// waits until 320, finishes at 560, delivered 650.
	if res.LatencyMax != 650 {
		t.Fatalf("second message latency = %v, want 650ns", res.LatencyMax)
	}
}

func TestPipeliningBeatsStoreAndForward(t *testing.T) {
	// 2048-byte message = 16 worms: worms pipeline through the switch, so
	// the makespan is far below 16 x (full per-worm latency).
	nw := mustNew(t, 4)
	wl := &traffic.Workload{Name: "big", N: 4,
		Programs: []traffic.Program{{Ops: []traffic.Op{traffic.Send(1, 2048)}}, {}, {}, {}}}
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	// Each worm occupies the output for 80+160 = 240 ns; 16 worms back to
	// back from 80 ns: last done at 80+16*240 = 3920, delivered 4010.
	if res.LatencyMax != 4010 {
		t.Fatalf("latency = %v, want 4010ns", res.LatencyMax)
	}
	// Efficiency = ideal/makespan = 2560/4010.
	if res.Efficiency < 0.63 || res.Efficiency > 0.65 {
		t.Fatalf("efficiency = %v, want ~0.638", res.Efficiency)
	}
}

func TestDeterministicRuns(t *testing.T) {
	nw := mustNew(t, 16)
	a, err := nw.Run(traffic.RandomMesh(16, 128, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Run(traffic.RandomMesh(16, 128, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Efficiency != b.Efficiency {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
}

func TestAllWorkloadsComplete(t *testing.T) {
	nw := mustNew(t, 16)
	for _, wl := range []*traffic.Workload{
		traffic.Scatter(16, 64),
		traffic.OrderedMesh(16, 256, 3),
		traffic.RandomMesh(16, 8, 5, 1),
		traffic.AllToAll(16, 32),
		traffic.TwoPhase(16, 64, 2),
	} {
		res, err := nw.Run(wl)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if res.Messages != wl.MessageCount() {
			t.Fatalf("%s: delivered %d of %d", wl.Name, res.Messages, wl.MessageCount())
		}
		if res.Efficiency <= 0 || res.Efficiency > 1 {
			t.Fatalf("%s: efficiency %v out of range", wl.Name, res.Efficiency)
		}
	}
}

func TestQuickConservationAndCausality(t *testing.T) {
	nw := mustNew(t, 8)
	f := func(seed int64) bool {
		wl := traffic.RandomMesh(8, 64, 4, seed)
		res, err := nw.Run(wl)
		if err != nil {
			return false
		}
		return res.Messages == wl.MessageCount() &&
			res.Bytes == wl.TotalBytes() &&
			res.LatencyMax >= 260 // no message can beat the uncontended minimum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWormholeRandomMesh128(b *testing.B) {
	nw, err := New(Config{N: 128})
	if err != nil {
		b.Fatal(err)
	}
	wl := traffic.RandomMesh(128, 128, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Run(wl); err != nil {
			b.Fatal(err)
		}
	}
}
