package plan

import (
	"fmt"
	"sort"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/multistage"
)

// BvN plans by Birkhoff–von-Neumann-style decomposition, after Minaeva et
// al. ("Scalable and Efficient Configuration of Time-Division Multiplexed
// Resources"): multistage.DecomposeBvN splits the integer demand matrix
// exactly into weighted partial permutations, so the sum of the terms
// reproduces the input entry for entry. Each term becomes one planned
// configuration whose drain requirement is the term's weight; heavy terms
// come first and collect proportionally more register shares. Unlike
// solstice, a connection may appear in several configurations (one per
// weight layer), which lets BvN shape service rates more finely at the cost
// of more configurations.
type BvN struct{}

// Name implements Planner.
func (BvN) Name() string { return "bvn" }

// Plan implements Planner.
func (BvN) Plan(d *Demand, k, preloadSlots int, opts Options) (*Schedule, error) {
	if err := checkPlanArgs(d, k, preloadSlots); err != nil {
		return nil, err
	}
	terms, err := multistage.DecomposeBvN(d.N(), d.At)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	var entries []Entry
	for _, t := range terms {
		for _, cfg := range splitRealizable(t.Config, opts.CanRealize) {
			entries = append(entries, Entry{
				Config:  cfg,
				Demand:  t.Weight,
				Covered: t.Weight * int64(cfg.Count()),
			})
		}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Demand > entries[j].Demand
	})
	s := &Schedule{
		Planner:      "bvn",
		N:            d.N(),
		K:            k,
		PreloadSlots: preloadSlots,
		Residual:     NewDemand(d.N()),
	}
	// Spill trailing light terms to the dynamic path. A dropped term removes
	// only its own weight from each of its connections — earlier kept terms
	// may still cover the rest of the connection's demand.
	kept := entries
	if !opts.CoverAll {
		thr := residualThreshold(k, opts.ReconfigSlots)
		for len(kept) > 1 && kept[len(kept)-1].Covered < thr {
			e := kept[len(kept)-1]
			e.Config.Ones(func(u, v int) bool {
				s.Residual.Add(u, v, e.Demand)
				return true
			})
			kept = kept[:len(kept)-1]
		}
	}
	s.Covered = coveredDemand(d, s.Residual)
	s.Groups, s.DrainSlots, s.Reconfigs = packGroups(kept, k, preloadSlots, opts.ReconfigSlots)
	return s, nil
}

// splitRealizable returns cfg itself when the fabric can route it, or splits
// it first-fit into realizable sub-configurations (mirroring
// multistage.DecomposeRealizable) when it cannot. A single connection is
// always realizable, so the split terminates.
func splitRealizable(cfg *bitmat.Matrix, canRealize func(*bitmat.Matrix) bool) []*bitmat.Matrix {
	if canRealize == nil || canRealize(cfg) {
		return []*bitmat.Matrix{cfg}
	}
	n := cfg.Rows()
	var parts []*bitmat.Matrix
	cfg.Ones(func(u, v int) bool {
		for _, p := range parts {
			if p.RowAny(u) || p.ColAny(v) {
				continue
			}
			p.Set(u, v)
			if canRealize(p) {
				return true
			}
			p.Clear(u, v)
		}
		p := bitmat.NewSquare(n)
		p.Set(u, v)
		parts = append(parts, p)
		return true
	})
	return parts
}
