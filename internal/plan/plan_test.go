package plan

import (
	"testing"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// skewedDemand builds the canonical planner test input: every port sends to
// shift-1 heavily and to a few further shifts lightly.
func skewedDemand(n int, heavy, light int64, shifts ...int) *Demand {
	d := NewDemand(n)
	for u := 0; u < n; u++ {
		for i, s := range shifts {
			w := light
			if i == 0 {
				w = heavy
			}
			d.Add(u, (u+s)%n, w)
		}
	}
	return d
}

func planOrDie(t *testing.T, p Planner, d *Demand, k, slots int, opts Options) *Schedule {
	t.Helper()
	s, err := p.Plan(d, k, slots, opts)
	if err != nil {
		t.Fatalf("%s.Plan: %v", p.Name(), err)
	}
	return s
}

// checkSchedule asserts the structural invariants every planner must keep:
// conflict-free configurations, shares filling each group within the pinned
// region, and covered+residual == input.
func checkSchedule(t *testing.T, s *Schedule, d *Demand) {
	t.Helper()
	for gi, g := range s.Groups {
		shares := 0
		for ei, e := range g {
			if !e.Config.IsPartialPermutation() {
				t.Fatalf("group %d entry %d is not conflict-free", gi, ei)
			}
			if e.Share < 1 {
				t.Fatalf("group %d entry %d has share %d", gi, ei, e.Share)
			}
			shares += e.Share
		}
		if shares > s.PreloadSlots {
			t.Fatalf("group %d uses %d shares, only %d slots pinned", gi, shares, s.PreloadSlots)
		}
	}
	for u := 0; u < d.N(); u++ {
		for v := 0; v < d.N(); v++ {
			if got := s.Covered.At(u, v) + s.Residual.At(u, v); got != d.At(u, v) {
				t.Fatalf("(%d,%d): covered %d + residual %d != demand %d",
					u, v, s.Covered.At(u, v), s.Residual.At(u, v), d.At(u, v))
			}
		}
	}
	flat := s.Configs()
	if len(flat) != len(s.Groups) {
		t.Fatalf("Configs returned %d groups, schedule has %d", len(flat), len(s.Groups))
	}
	for gi := range flat {
		if len(flat[gi]) > s.PreloadSlots {
			t.Fatalf("flattened group %d has %d configs for %d slots", gi, len(flat[gi]), s.PreloadSlots)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindStatic, KindSolstice, KindBvN} {
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("Parse(%q) = %v, want %v", k.String(), got, k)
		}
		if New(k).Name() != k.String() {
			t.Fatalf("New(%v).Name() = %q, want %q", k, New(k).Name(), k.String())
		}
	}
	if _, err := Parse("greedy"); err == nil {
		t.Fatal("Parse should reject unknown planners")
	}
	if len(Names()) != 3 {
		t.Fatalf("Names() = %v, want 3 planners", Names())
	}
}

func TestFromWorkload(t *testing.T) {
	wl := &traffic.Workload{
		Name: "t", N: 4,
		Programs: []traffic.Program{
			{Ops: []traffic.Op{traffic.Send(1, 64), traffic.Send(1, 65), traffic.SendWait(2, 1)}},
			{Ops: []traffic.Op{traffic.Delay(10), traffic.Flush()}},
			{}, {},
		},
	}
	d := FromWorkload(wl, 64)
	if got := d.At(0, 1); got != 3 { // 1 slot + 2 slots (65 bytes)
		t.Fatalf("demand(0,1) = %d, want 3", got)
	}
	if got := d.At(0, 2); got != 1 {
		t.Fatalf("demand(0,2) = %d, want 1", got)
	}
	if got := d.Total(); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	if d.Conns() != 2 {
		t.Fatalf("conns = %d, want 2", d.Conns())
	}
}

func TestDemandRestrict(t *testing.T) {
	d := NewDemand(4)
	d.Set(0, 1, 5)
	d.Set(1, 2, 7)
	ws := topology.NewWorkingSet(4)
	ws.Add(topology.Conn{Src: 0, Dst: 1})
	r := d.Restrict(ws)
	if r.At(0, 1) != 5 || r.At(1, 2) != 0 {
		t.Fatalf("restrict kept wrong entries: %d, %d", r.At(0, 1), r.At(1, 2))
	}
}

// TestStaticMatchesDecomposeChunks pins the A/B contract: the static planner
// reproduces the unplanned preload path — the exact edge coloring chunked in
// order, one register per configuration.
func TestStaticMatchesDecomposeChunks(t *testing.T) {
	d := skewedDemand(16, 20, 2, 1, 2, 5, 7, 9, 11)
	want := topology.Decompose(d.WorkingSet())
	s := planOrDie(t, Static{}, d, 4, 4, Options{})
	checkSchedule(t, s, d)
	flat := s.Configs()
	var got []*bitmat.Matrix
	for _, g := range flat {
		got = append(got, g...)
	}
	if len(got) != len(want) {
		t.Fatalf("static planned %d configs, decomposition has %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("config %d differs from the plain decomposition", i)
		}
	}
	if !s.Residual.IsZero() {
		t.Fatal("static planner must not spill to the dynamic path")
	}
}

func TestSolsticeCoversAndBeatsStatic(t *testing.T) {
	// Heavy shift-1 plus 7 light shifts: degree 8 against 4 pinned slots.
	d := skewedDemand(16, 64, 4, 1, 2, 3, 4, 5, 6, 7, 8)
	opts := Options{ReconfigSlots: 0.8, CoverAll: true}
	sol := planOrDie(t, Solstice{}, d, 4, 4, opts)
	checkSchedule(t, sol, d)
	if !sol.Residual.IsZero() {
		t.Fatal("CoverAll must cover everything")
	}
	// The planner's own drain estimate must beat the hand-written static
	// schedule on this skewed demand — the whole point of planning.
	st := planOrDie(t, Static{}, d, 4, 4, opts)
	if sol.DrainSlots >= st.DrainSlots {
		t.Fatalf("solstice drain %.1f not better than static %.1f", sol.DrainSlots, st.DrainSlots)
	}
	// The heaviest configuration must hold more than one register share.
	first := sol.Groups[0][0]
	if first.Demand != 64 {
		t.Fatalf("first planned config has per-cycle demand %d, want the hot 64", first.Demand)
	}
	if first.Share < 2 {
		t.Fatalf("hot config got share %d, want >1", first.Share)
	}
}

func TestSolsticeResidualSpill(t *testing.T) {
	// One heavy permutation plus a single featherweight connection: in
	// hybrid mode the featherweight cannot pay for a pinned register.
	d := NewDemand(8)
	for u := 0; u < 8; u++ {
		d.Set(u, (u+1)%8, 100)
	}
	d.Set(0, 5, 1)
	opts := Options{ReconfigSlots: 0.8}
	s := planOrDie(t, Solstice{}, d, 4, 2, opts)
	checkSchedule(t, s, d)
	if s.Residual.At(0, 5) != 1 {
		t.Fatalf("featherweight connection not spilled: residual=%d", s.Residual.At(0, 5))
	}
	if s.Residual.Total() != 1 {
		t.Fatalf("residual total %d, want 1", s.Residual.Total())
	}
	// CoverAll forces it back in.
	s = planOrDie(t, Solstice{}, d, 4, 2, Options{ReconfigSlots: 0.8, CoverAll: true})
	if !s.Residual.IsZero() {
		t.Fatal("CoverAll still spilled")
	}
}

func TestBvNExactCover(t *testing.T) {
	d := skewedDemand(12, 40, 3, 1, 3, 5)
	s := planOrDie(t, BvN{}, d, 4, 4, Options{ReconfigSlots: 0.8, CoverAll: true})
	checkSchedule(t, s, d)
	// With CoverAll, the planned per-connection budget is exactly the demand.
	uses := s.PlannedUses()
	for u := 0; u < d.N(); u++ {
		for v := 0; v < d.N(); v++ {
			want := uint64(d.At(u, v))
			if got := uses[topology.Conn{Src: u, Dst: v}]; got != want {
				t.Fatalf("planned uses (%d,%d) = %d, want %d", u, v, got, want)
			}
		}
	}
}

func TestPlannersRespectRealizability(t *testing.T) {
	// Oracle: at most 2 connections per configuration — a harshly blocking
	// fabric. Every planned configuration must satisfy it.
	canRealize := func(cfg *bitmat.Matrix) bool { return cfg.Count() <= 2 }
	d := skewedDemand(8, 10, 2, 1, 2, 3)
	for _, p := range []Planner{Solstice{}, BvN{}} {
		s := planOrDie(t, p, d, 4, 4, Options{CoverAll: true, CanRealize: canRealize})
		checkSchedule(t, s, d)
		for gi, g := range s.Groups {
			for ei, e := range g {
				if e.Config.Count() > 2 {
					t.Fatalf("%s group %d entry %d violates the realizability oracle", p.Name(), gi, ei)
				}
			}
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	d := skewedDemand(16, 64, 4, 1, 2, 3, 4, 5, 6, 7, 8)
	for _, p := range []Planner{Static{}, Solstice{}, BvN{}} {
		a := planOrDie(t, p, d, 4, 4, Options{ReconfigSlots: 0.8, CoverAll: true})
		b := planOrDie(t, p, d, 4, 4, Options{ReconfigSlots: 0.8, CoverAll: true})
		if len(a.Groups) != len(b.Groups) || a.DrainSlots != b.DrainSlots || a.Reconfigs != b.Reconfigs {
			t.Fatalf("%s: two identical plans differ structurally", p.Name())
		}
		for gi := range a.Groups {
			if len(a.Groups[gi]) != len(b.Groups[gi]) {
				t.Fatalf("%s: group %d sizes differ", p.Name(), gi)
			}
			for ei := range a.Groups[gi] {
				x, y := a.Groups[gi][ei], b.Groups[gi][ei]
				if x.Share != y.Share || x.Demand != y.Demand || !x.Config.Equal(y.Config) {
					t.Fatalf("%s: group %d entry %d differs", p.Name(), gi, ei)
				}
			}
		}
	}
}

func TestPlanArgErrors(t *testing.T) {
	d := NewDemand(4)
	d.Set(0, 1, 1)
	for _, p := range []Planner{Static{}, Solstice{}, BvN{}} {
		if _, err := p.Plan(nil, 4, 4, Options{}); err == nil {
			t.Errorf("%s: nil demand accepted", p.Name())
		}
		if _, err := p.Plan(d, 0, 0, Options{}); err == nil {
			t.Errorf("%s: zero frame accepted", p.Name())
		}
		if _, err := p.Plan(d, 4, 5, Options{}); err == nil {
			t.Errorf("%s: preloadSlots > k accepted", p.Name())
		}
	}
}

func TestEmptyDemandPlansEmpty(t *testing.T) {
	d := NewDemand(8)
	for _, p := range []Planner{Static{}, Solstice{}, BvN{}} {
		s := planOrDie(t, p, d, 4, 4, Options{})
		if s.NumConfigs() != 0 {
			t.Errorf("%s planned %d configs for empty demand", p.Name(), s.NumConfigs())
		}
	}
}
