// Package plan computes preload schedules from demand matrices.
//
// The paper's preload and hybrid modes (§3.1, Fig 5) pin hand-written
// configuration groups: each static phase is edge-colored into conflict-free
// configurations and every configuration gets exactly one slot register,
// regardless of how much traffic it carries. This package closes the loop
// the other way — given an integer demand matrix (slots of traffic per
// connection), a Planner decides *which* configurations to pin, *how many*
// of the pinned slot registers each one occupies, and *what* to spill onto
// the dynamic path, charging every configuration-group swap at the control
// plane's reconfiguration delay.
//
// Three planners are provided:
//
//   - Static reproduces today's hand-written preloads bit for bit (exact
//     edge coloring, one register per configuration, groups in decomposition
//     order) so planned and unplanned runs can be A/B'd.
//   - Solstice runs a greedy submodular-style cover in the spirit of
//     "Costly Circuits, Submodular Schedules" (Solstice): repeatedly extract
//     the heaviest conflict-free matching from the remaining demand, charge
//     each extra configuration at the reconfiguration cost, and route
//     leftovers that cannot pay for a pinned register to the dynamic slots.
//   - BvN performs a Birkhoff–von-Neumann-style weighted decomposition
//     (per Minaeva et al.) via multistage.DecomposeBvN: the demand splits
//     exactly into weighted partial permutations and register shares follow
//     the weights.
//
// All planners are deterministic: identical inputs produce identical
// schedules, independent of map iteration order or parallelism.
package plan

import (
	"fmt"
	"sort"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// Demand is a non-negative integer N×N demand matrix: entry (u,v) is the
// number of TDM slots connection u→v needs to drain its traffic. The boolean
// request matrices elsewhere in the repo (bitmat.Matrix) cannot express skew;
// planning is exactly the place where magnitudes matter.
type Demand struct {
	n int
	d []int64 // row-major
}

// NewDemand returns an all-zero n×n demand matrix.
func NewDemand(n int) *Demand {
	if n <= 0 {
		panic(fmt.Sprintf("plan: invalid demand size %d", n))
	}
	return &Demand{n: n, d: make([]int64, n*n)}
}

// N returns the port count.
func (d *Demand) N() int { return d.n }

func (d *Demand) idx(u, v int) int {
	if u < 0 || u >= d.n || v < 0 || v >= d.n {
		panic(fmt.Sprintf("plan: demand index (%d,%d) out of range for n=%d", u, v, d.n))
	}
	return u*d.n + v
}

// At returns the demand of connection u→v in slots.
func (d *Demand) At(u, v int) int64 { return d.d[d.idx(u, v)] }

// Set replaces the demand of u→v.
func (d *Demand) Set(u, v int, w int64) {
	if w < 0 {
		panic("plan: negative demand")
	}
	d.d[d.idx(u, v)] = w
}

// Add adds w slots of demand to u→v.
func (d *Demand) Add(u, v int, w int64) {
	if w < 0 {
		panic("plan: negative demand")
	}
	d.d[d.idx(u, v)] += w
}

// Clone returns a deep copy.
func (d *Demand) Clone() *Demand {
	c := NewDemand(d.n)
	copy(c.d, d.d)
	return c
}

// Total returns the summed demand in slots.
func (d *Demand) Total() int64 {
	var t int64
	for _, w := range d.d {
		t += w
	}
	return t
}

// Conns returns the number of connections with positive demand.
func (d *Demand) Conns() int {
	c := 0
	for _, w := range d.d {
		if w > 0 {
			c++
		}
	}
	return c
}

// IsZero reports whether no connection has demand.
func (d *Demand) IsZero() bool {
	for _, w := range d.d {
		if w > 0 {
			return false
		}
	}
	return true
}

// WorkingSet returns the support of the demand as a topology working set.
func (d *Demand) WorkingSet() *topology.WorkingSet {
	ws := topology.NewWorkingSet(d.n)
	for u := 0; u < d.n; u++ {
		for v := 0; v < d.n; v++ {
			if d.d[u*d.n+v] > 0 {
				ws.Add(topology.Conn{Src: u, Dst: v})
			}
		}
	}
	return ws
}

// Restrict returns a copy of d keeping only the connections present in ws.
func (d *Demand) Restrict(ws *topology.WorkingSet) *Demand {
	c := NewDemand(d.n)
	for _, conn := range ws.Conns() {
		c.Set(conn.Src, conn.Dst, d.At(conn.Src, conn.Dst))
	}
	return c
}

// FromWorkload builds the whole-workload demand matrix: every OpSend /
// OpSendWait contributes ceil(bytes/payloadBytes) slots to its connection.
// payloadBytes must be positive (use the network's slot payload).
func FromWorkload(wl *traffic.Workload, payloadBytes int) *Demand {
	if payloadBytes <= 0 {
		panic(fmt.Sprintf("plan: invalid payload size %d", payloadBytes))
	}
	d := NewDemand(wl.N)
	for src, prog := range wl.Programs {
		for _, op := range prog.Ops {
			if op.Kind != traffic.OpSend && op.Kind != traffic.OpSendWait {
				continue
			}
			slots := (int64(op.Bytes) + int64(payloadBytes) - 1) / int64(payloadBytes)
			if slots < 1 {
				slots = 1
			}
			d.Add(src, op.Dst, slots)
		}
	}
	return d
}

// Options tunes a planning run.
type Options struct {
	// ReconfigSlots is the cost of one configuration-group swap, in slots.
	// The paper's control plane needs 80 ns to move a configuration through
	// request/schedule/grant (link.Model.ControlDelay); at the default
	// 100 ns slot that is 0.8 slots. Zero means swaps are free.
	ReconfigSlots float64
	// CoverAll forces the planner to cover every connection with positive
	// demand (pure Preload mode, where an uncovered connection would never
	// be granted a slot). When false (hybrid mode), configurations that
	// cannot pay for a pinned register spill to Schedule.Residual and ride
	// the dynamic slots.
	CoverAll bool
	// CanRealize, when non-nil, restricts configurations to those the
	// fabric backend can route (blocking multistage fabrics). Nil means
	// every partial permutation is realizable (crossbar, rearrangeable
	// fabrics).
	CanRealize func(*bitmat.Matrix) bool
	// Decompose overrides the static planner's decomposition (defaults to
	// the exact edge coloring). The tdm preloader passes the fabric
	// backend's Decompose so static planning is bit-identical to the
	// unplanned path.
	Decompose func(*topology.WorkingSet) ([]*bitmat.Matrix, error)
}

// Entry is one planned configuration.
type Entry struct {
	// Config is the conflict-free (partial permutation) configuration.
	Config *bitmat.Matrix
	// Share is the number of pinned slot registers the configuration
	// occupies within its group's TDM cycle (≥1 once grouped).
	Share int
	// Demand is the per-cycle drain requirement: the configuration must
	// stay loaded for ceil(Demand/Share) cycles. For the matching-based
	// planners this is the heaviest connection in the configuration; for
	// BvN it is the term's weight.
	Demand int64
	// Covered is the total demand in slots this configuration serves.
	Covered int64
}

// Schedule is a planner's output: configuration groups ready for the tdm
// preload controller, the residual demand left to the dynamic path, and the
// planner's own drain estimate under its cost model.
type Schedule struct {
	// Planner is the producing planner's name.
	Planner string
	// N is the port count; K the TDM frame size; PreloadSlots the pinned
	// registers per group (equal to K in pure preload mode).
	N, K, PreloadSlots int
	// Groups holds the planned configuration groups in load order. Shares
	// within a group sum to at most PreloadSlots.
	Groups [][]Entry
	// Residual is the demand spilled to the dynamic slots (never nil;
	// all-zero when everything is covered).
	Residual *Demand
	// Covered is the demand served by the groups (input minus residual).
	Covered *Demand
	// DrainSlots is the planner's estimate of the wall-clock slots needed
	// to drain Covered, reconfiguration charges included.
	DrainSlots float64
	// Reconfigs counts the charged configuration-group loads.
	Reconfigs int
}

// Configs flattens the schedule for the preload controller: one slice of
// configurations per group, where an entry with Share s appears s times so it
// occupies s of the pinned slot registers.
func (s *Schedule) Configs() [][]*bitmat.Matrix {
	out := make([][]*bitmat.Matrix, len(s.Groups))
	for gi, g := range s.Groups {
		var flat []*bitmat.Matrix
		for _, e := range g {
			share := e.Share
			if share < 1 {
				share = 1
			}
			for i := 0; i < share; i++ {
				flat = append(flat, e.Config)
			}
		}
		out[gi] = flat
	}
	return out
}

// NumConfigs returns the number of distinct planned configurations.
func (s *Schedule) NumConfigs() int {
	n := 0
	for _, g := range s.Groups {
		n += len(g)
	}
	return n
}

// PlannedUses returns the planner's per-connection service budget in slots —
// the demand it planned to serve through the pinned registers. This is the
// slack signal predictor.ScheduleSlack consumes: once a connection has used
// its budget, the plan says it is done and its cache entry can be evicted.
func (s *Schedule) PlannedUses() map[topology.Conn]uint64 {
	uses := make(map[topology.Conn]uint64)
	n := s.Covered.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if w := s.Covered.At(u, v); w > 0 {
				uses[topology.Conn{Src: u, Dst: v}] += uint64(w)
			}
		}
	}
	return uses
}

// Planner computes a preload schedule from a demand matrix. k is the TDM
// frame size (slot registers per port) and preloadSlots how many of them are
// pinned; 0 < preloadSlots ≤ k.
type Planner interface {
	// Name returns the planner's parseable name.
	Name() string
	// Plan computes the schedule. The demand is not mutated.
	Plan(d *Demand, k, preloadSlots int, opts Options) (*Schedule, error)
}

// Kind enumerates the built-in planners.
type Kind int

const (
	// KindStatic is today's hand-written preload path.
	KindStatic Kind = iota
	// KindSolstice is the greedy cover with reconfiguration charging.
	KindSolstice
	// KindBvN is the Birkhoff–von-Neumann weighted decomposition.
	KindBvN
)

var kindNames = []string{"static", "solstice", "bvn"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Names returns the parseable planner names in declaration order.
func Names() []string {
	return append([]string(nil), kindNames...)
}

// Parse is the inverse of Kind.String.
func Parse(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("plan: unknown planner %q (valid: %v)", name, kindNames)
}

// New builds the planner for a kind.
func New(k Kind) Planner {
	switch k {
	case KindStatic:
		return Static{}
	case KindSolstice:
		return Solstice{}
	case KindBvN:
		return BvN{}
	default:
		panic(fmt.Sprintf("plan: unknown planner kind %d", int(k)))
	}
}

func checkPlanArgs(d *Demand, k, preloadSlots int) error {
	if d == nil {
		return fmt.Errorf("plan: nil demand")
	}
	if k <= 0 {
		return fmt.Errorf("plan: invalid frame size k=%d", k)
	}
	if preloadSlots <= 0 || preloadSlots > k {
		return fmt.Errorf("plan: invalid preload slots %d (frame size %d)", preloadSlots, k)
	}
	return nil
}

// weightedEdge is one positive demand entry during matching extraction.
type weightedEdge struct {
	u, v int
	w    int64
}

// heaviestMatching greedily extracts a conflict-free configuration from the
// remaining demand, heaviest edges first (ties break on (src,dst) so the
// result is deterministic). When canRealize is non-nil every tentative edge
// addition is checked against the fabric. It returns the configuration, the
// heaviest single connection in it, and the total demand it covers; the
// configuration is nil when rem is zero.
func heaviestMatching(rem *Demand, canRealize func(*bitmat.Matrix) bool) (cfg *bitmat.Matrix, maxConn, covered int64) {
	var edges []weightedEdge
	n := rem.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if w := rem.At(u, v); w > 0 {
				edges = append(edges, weightedEdge{u, v, w})
			}
		}
	}
	if len(edges) == 0 {
		return nil, 0, 0
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].u != edges[j].u {
			return edges[i].u < edges[j].u
		}
		return edges[i].v < edges[j].v
	})
	cfg = bitmat.NewSquare(n)
	rowUsed := make([]bool, n)
	colUsed := make([]bool, n)
	for _, e := range edges {
		if rowUsed[e.u] || colUsed[e.v] {
			continue
		}
		cfg.Set(e.u, e.v)
		if canRealize != nil && !canRealize(cfg) {
			cfg.Clear(e.u, e.v)
			continue
		}
		rowUsed[e.u], colUsed[e.v] = true, true
		covered += e.w
		if e.w > maxConn {
			maxConn = e.w
		}
	}
	if cfg.IsZero() {
		// Nothing realizable — should not happen (a single edge is always a
		// valid partial permutation), but guard against a hostile oracle.
		return nil, 0, 0
	}
	return cfg, maxConn, covered
}

// assignShares distributes exactly `slots` registers over the group's
// entries, each getting at least one, minimizing the group's drain cycles
// max_i ceil(Demand_i/Share_i). Greedy: hand each spare register to the
// entry currently bounding the cycle count (ties to the lowest index).
// It returns the resulting cycle count.
func assignShares(group []Entry, slots int) int64 {
	for i := range group {
		group[i].Share = 1
	}
	cycles := func(e Entry) int64 {
		c := (e.Demand + int64(e.Share) - 1) / int64(e.Share)
		if c < 1 {
			c = 1
		}
		return c
	}
	for spare := slots - len(group); spare > 0; spare-- {
		worst, worstC := 0, cycles(group[0])
		for i := 1; i < len(group); i++ {
			if c := cycles(group[i]); c > worstC {
				worst, worstC = i, c
			}
		}
		group[worst].Share++
	}
	var max int64 = 1
	for i := range group {
		if c := cycles(group[i]); c > max {
			max = c
		}
	}
	return max
}

// packGroups splits the ordered entries into configuration groups of at most
// preloadSlots entries each, choosing the boundaries by dynamic programming
// under the drain cost model: a group costs k slots per cycle for
// max ceil(Demand/Share) cycles (shares assigned by assignShares), and every
// group load is charged reconfig slots. Entries are expected
// heaviest-first; the DP preserves their order.
func packGroups(entries []Entry, k, preloadSlots int, reconfig float64) (groups [][]Entry, drain float64, reconfigs int) {
	n := len(entries)
	if n == 0 {
		return nil, 0, 0
	}
	groupCost := func(i, j int) float64 {
		g := append([]Entry(nil), entries[i:j]...)
		cycles := assignShares(g, preloadSlots)
		return float64(cycles)*float64(k) + reconfig
	}
	// best[i] = minimal cost to schedule entries[i:]; cut[i] = end of the
	// first group in that optimum.
	best := make([]float64, n+1)
	cut := make([]int, n+1)
	for i := n - 1; i >= 0; i-- {
		best[i] = -1
		for m := 1; m <= preloadSlots && i+m <= n; m++ {
			if c := groupCost(i, i+m) + best[i+m]; best[i] < 0 || c < best[i] {
				best[i], cut[i] = c, i+m
			}
		}
	}
	for i := 0; i < n; i = cut[i] {
		g := append([]Entry(nil), entries[i:cut[i]]...)
		assignShares(g, preloadSlots)
		groups = append(groups, g)
	}
	return groups, best[0], len(groups)
}

// residualThreshold is the minimum demand a configuration must cover to earn
// a pinned register in hybrid mode: one full TDM cycle of the frame plus the
// reconfiguration charge. Anything lighter is served faster by the dynamic
// slots than by cycling a nearly-empty pinned group.
func residualThreshold(k int, reconfig float64) int64 {
	return int64(reconfig) + int64(k)
}

// splitResidual drops trailing light entries into the residual demand. The
// entries must be ordered by decreasing usefulness; at least one entry is
// kept. CoverAll disables spilling entirely.
func splitResidual(entries []Entry, d *Demand, k int, opts Options) (kept []Entry, residual *Demand) {
	residual = NewDemand(d.N())
	if opts.CoverAll {
		return entries, residual
	}
	thr := residualThreshold(k, opts.ReconfigSlots)
	kept = entries
	for len(kept) > 1 && kept[len(kept)-1].Covered < thr {
		e := kept[len(kept)-1]
		e.Config.Ones(func(u, v int) bool {
			residual.Set(u, v, d.At(u, v))
			return true
		})
		kept = kept[:len(kept)-1]
	}
	return kept, residual
}

// coveredDemand returns d minus residual, elementwise (clamped at zero).
// The solstice residual holds a spilled connection's full demand; the BvN
// residual can hold just the dropped terms' weights, leaving the connection
// partially covered.
func coveredDemand(d, residual *Demand) *Demand {
	c := d.Clone()
	n := c.N()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if r := residual.At(u, v); r > 0 {
				w := c.At(u, v) - r
				if w < 0 {
					w = 0
				}
				c.Set(u, v, w)
			}
		}
	}
	return c
}
