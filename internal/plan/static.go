package plan

import (
	"fmt"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/topology"
)

// Static reproduces the repo's hand-written preload path: the demand's
// support is decomposed (exact edge coloring by default, or the fabric
// backend's Decompose via Options.Decompose), every configuration gets
// exactly one slot register, and groups are formed by chunking the
// decomposition in order. Planned this way, the tdm preloader pins exactly
// the groups it would have built without a planner — the A/B baseline the
// optimizing planners are measured against.
type Static struct{}

// Name implements Planner.
func (Static) Name() string { return "static" }

// Plan implements Planner.
func (Static) Plan(d *Demand, k, preloadSlots int, opts Options) (*Schedule, error) {
	if err := checkPlanArgs(d, k, preloadSlots); err != nil {
		return nil, err
	}
	decompose := opts.Decompose
	if decompose == nil {
		decompose = func(ws *topology.WorkingSet) ([]*bitmat.Matrix, error) {
			return topology.Decompose(ws), nil
		}
	}
	configs, err := decompose(d.WorkingSet())
	if err != nil {
		return nil, fmt.Errorf("plan: static decomposition failed: %w", err)
	}
	s := &Schedule{
		Planner:      "static",
		N:            d.N(),
		K:            k,
		PreloadSlots: preloadSlots,
		Residual:     NewDemand(d.N()),
		Covered:      d.Clone(),
	}
	for start := 0; start < len(configs); start += preloadSlots {
		end := start + preloadSlots
		if end > len(configs) {
			end = len(configs)
		}
		var group []Entry
		for _, cfg := range configs[start:end] {
			e := Entry{Config: cfg, Share: 1}
			cfg.Ones(func(u, v int) bool {
				w := d.At(u, v)
				e.Covered += w
				if w > e.Demand {
					e.Demand = w
				}
				return true
			})
			group = append(group, e)
		}
		s.Groups = append(s.Groups, group)
	}
	// Cost the hand-written schedule under the same model the optimizing
	// planners use, so DrainSlots values are comparable.
	s.Reconfigs = len(s.Groups)
	for _, g := range s.Groups {
		var cycles int64 = 1
		for _, e := range g {
			if e.Demand > cycles {
				cycles = e.Demand
			}
		}
		s.DrainSlots += float64(cycles)*float64(k) + opts.ReconfigSlots
	}
	return s, nil
}
