package plan

// Solstice plans by greedy cover, after "Costly Circuits, Submodular
// Schedules" (Liu et al., CoNEXT'15): each round extracts the conflict-free
// configuration covering the most remaining demand (heaviest-edge-first
// greedy matching — the classic 1/2-approximation to the submodular
// max-weight matching step), until the demand is exhausted. Because a pinned
// configuration keeps serving its connections every cycle, each connection
// is covered by exactly one configuration, and configurations extracted
// later carry strictly less traffic — the natural heaviest-first order the
// group packer expects.
//
// Two departures from today's static preloads make the schedule
// demand-aware:
//
//   - Register shares. A group's pinned registers are divided in proportion
//     to each configuration's drain requirement (assignShares), so a hot
//     matching can hold several of the slot registers per cycle while light
//     matchings share the rest — instead of everyone getting exactly one.
//   - Reconfiguration charging. Group boundaries come from a dynamic
//     program that prices every extra group at Options.ReconfigSlots (the
//     80 ns control-plane delay in slot units), and in hybrid mode trailing
//     configurations too light to pay for a register (less than one TDM
//     cycle of coverage, residualThreshold) spill to the dynamic path.
type Solstice struct{}

// Name implements Planner.
func (Solstice) Name() string { return "solstice" }

// Plan implements Planner.
func (Solstice) Plan(d *Demand, k, preloadSlots int, opts Options) (*Schedule, error) {
	if err := checkPlanArgs(d, k, preloadSlots); err != nil {
		return nil, err
	}
	rem := d.Clone()
	var entries []Entry
	for !rem.IsZero() {
		cfg, maxConn, covered := heaviestMatching(rem, opts.CanRealize)
		if cfg == nil {
			break
		}
		entries = append(entries, Entry{Config: cfg, Demand: maxConn, Covered: covered})
		cfg.Ones(func(u, v int) bool {
			rem.Set(u, v, 0)
			return true
		})
	}
	s := &Schedule{
		Planner:      "solstice",
		N:            d.N(),
		K:            k,
		PreloadSlots: preloadSlots,
	}
	var kept []Entry
	kept, s.Residual = splitResidual(entries, d, k, opts)
	s.Covered = coveredDemand(d, s.Residual)
	s.Groups, s.DrainSlots, s.Reconfigs = packGroups(kept, k, preloadSlots, opts.ReconfigSlots)
	return s, nil
}
