package meshnet

import (
	"fmt"

	"pmsnet/internal/fault"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/nic"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
	"pmsnet/internal/wormhole"
)

// WormholeConfig parameterizes the multi-hop wormhole mesh.
type WormholeConfig struct {
	// N is the processor count (one router per processor).
	N int
	// Link is the serial-link model; zero value means link.Paper().
	Link link.Model
	// Horizon bounds simulated time; zero means netmodel.DefaultHorizon.
	Horizon sim.Time
	// Faults, when non-nil and active, injects link failures and corrupted
	// worms per the plan; nil leaves the run bit-identical to a fault-free
	// one.
	Faults *fault.Plan
	// Probe, when non-nil, receives the run's observability event stream.
	Probe *probe.Probe
}

func (c WormholeConfig) withDefaults() WormholeConfig {
	if c.Link.BitsPerSecond == 0 {
		c.Link = link.Paper()
	}
	if c.Horizon == 0 {
		c.Horizon = netmodel.DefaultHorizon
	}
	return c
}

// Wormhole is the multi-hop baseline: virtual cut-through wormhole on a 2-D
// router mesh with XY routing. Every hop deserializes the worm, arbitrates
// the 5-port router (Table 3 latency model scaled to the port count),
// switches and reserializes — the per-hop digital cost the paper's
// connection-oriented approach avoids.
type Wormhole struct {
	cfg  WormholeConfig
	grid Grid
}

// NewWormhole builds the mesh wormhole network.
func NewWormhole(cfg WormholeConfig) (*Wormhole, error) {
	cfg = cfg.withDefaults()
	grid, err := NewGrid(cfg.N)
	if err != nil {
		return nil, err
	}
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	return &Wormhole{cfg: cfg, grid: grid}, nil
}

// Name implements netmodel.Network.
func (w *Wormhole) Name() string { return "mesh-wormhole" }

type meshWorm struct {
	bytes   int
	msg     *nic.Message
	last    bool
	path    []Hop
	hop     int
	onStart func() // fires when the worm is granted its first mesh link
}

type wormholeRun struct {
	common
	cfg WormholeConfig
	// busy and waiting model each directed mesh link as a FIFO resource.
	busy    map[Hop]bool
	waiting map[Hop][]*meshWorm
	// ports serializes each source's transmit process.
	ports *netmodel.PortEngine
	// flit transfer time for one hop's stream (per flit, at link rate).
	flitNs sim.Time

	probe *probe.Probe
}

// Run implements netmodel.Network.
func (w *Wormhole) Run(wl *traffic.Workload) (metrics.Result, error) {
	eng := sim.NewEngine()
	r := &wormholeRun{
		common: common{
			grid: w.grid,
			tm:   newTiming(w.cfg.Link, 5),
			eng:  eng,
		},
		cfg:     w.cfg,
		busy:    make(map[Hop]bool),
		waiting: make(map[Hop][]*meshWorm),
		flitNs:  w.cfg.Link.SerializationTime(wormhole.FlitBytes),
		probe:   w.cfg.Probe,
	}
	driver, err := netmodel.NewDriver(eng, w.cfg.Link, wl, netmodel.Hooks{
		OnEnqueue: func(m *nic.Message) { r.ports.Kick(m.Src) },
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r.driver = driver
	r.ports = netmodel.NewPortEngine(driver, w.cfg.N, r.startMessage)
	if w.cfg.Probe != nil {
		driver.SetProbe(w.cfg.Probe)
	}
	inj, err := fault.NewInjector(w.cfg.Faults, eng, w.cfg.N)
	if err != nil {
		return metrics.Result{}, err
	}
	if inj != nil {
		inj.SetProbe(w.cfg.Probe)
		driver.AttachFaults(inj)
		inj.Start()
	}
	driver.Start()
	return driver.Finish(w.Name(), w.cfg.Horizon, metrics.NetStats{})
}

// startMessage segments a freshly popped message into worms; the port
// engine serializes calls per source.
func (r *wormholeRun) startMessage(s int, m *nic.Message) {
	r.sendWorm(s, m, splitWorms(m.Bytes), 0)
}

func splitWorms(bytes int) []int {
	var out []int
	for bytes > 0 {
		w := bytes
		if w > wormhole.MaxWormBytes {
			w = wormhole.MaxWormBytes
		}
		out = append(out, w)
		bytes -= w
	}
	return out
}

// sendWorm injects worm i of a message: the head reaches the source router
// after the NIC-to-router pipe, then traverses the XY path hop by hop. The
// source starts the next worm when the current one has both fully left the
// source link and been granted its first mesh link.
func (r *wormholeRun) sendWorm(s int, m *nic.Message, worms []int, i int) {
	if i == 0 && r.probe != nil {
		r.probe.Emit(probe.Event{Kind: probe.MsgInjected, At: r.eng.Now(),
			Src: int32(m.Src), Dst: int32(m.Dst), ID: int64(m.ID)})
	}
	bytes := worms[i]
	serDone := r.eng.Now() + r.cfg.Link.SerializationTime(bytes)
	headAtRouter := r.eng.Now() + r.cfg.Link.PipeLatency()

	// The worm's resource path ends with the destination's ejection link,
	// which serializes concurrent arrivals from different mesh directions.
	path := append(r.grid.Path(m.Src, m.Dst), Hop{From: m.Dst, Dir: DirEject})
	pending := 2
	var readyAt sim.Time
	conditionMet := func() {
		if now := r.eng.Now(); now > readyAt {
			readyAt = now
		}
		pending--
		if pending == 0 {
			r.eng.At(readyAt, "mesh-worm-next", func() {
				if i+1 < len(worms) {
					r.sendWorm(s, m, worms, i+1)
				} else {
					r.ports.Next(s)
				}
			})
		}
	}
	w := &meshWorm{
		bytes: bytes, msg: m, last: i == len(worms)-1,
		path: path, onStart: conditionMet,
	}
	r.eng.At(serDone, "mesh-worm-serialized", conditionMet)
	r.eng.At(headAtRouter, "mesh-worm-at-router", func() { r.requestHop(w) })
}

// requestHop queues the worm for its current hop's link.
func (r *wormholeRun) requestHop(w *meshWorm) {
	if w.hop >= len(w.path) {
		panic(fmt.Sprintf("meshnet: worm for %d->%d ran out of path", w.msg.Src, w.msg.Dst))
	}
	h := w.path[w.hop]
	r.waiting[h] = append(r.waiting[h], w)
	r.kickLink(h)
}

// kickLink grants the link to the next waiting worm.
func (r *wormholeRun) kickLink(h Hop) {
	if r.busy[h] || len(r.waiting[h]) == 0 {
		return
	}
	w := r.waiting[h][0]
	r.waiting[h] = r.waiting[h][1:]
	r.busy[h] = true
	if w.hop == 0 {
		w.onStart()
	}
	flits := (w.bytes + wormhole.FlitBytes - 1) / wormhole.FlitBytes
	stream := sim.Time(flits) * r.flitNs

	if h.Dir == DirEject {
		// The router-to-NIC link: no arbitration, just the serialized
		// drain, then the pipe to the NIC and its receive overhead.
		r.eng.After(stream, "mesh-eject-free", func() {
			r.busy[h] = false
			r.kickLink(h)
		})
		r.eng.After(stream+r.cfg.Link.PipeLatency()+nic.RecvOverhead, "mesh-deliver", func() {
			if w.last {
				r.driver.Arrive(w.msg)
			}
		})
		return
	}

	// A mesh link streams the worm after the router's arbitration; the head
	// reaches the next router after arbitration, one switch traversal, and
	// the reserialize/wire/deserialize pipe.
	occupancy := r.tm.routerArb + stream
	headNext := r.tm.routerArb + 10 + r.cfg.Link.PipeLatency()
	r.eng.After(occupancy, "mesh-link-free", func() {
		r.busy[h] = false
		r.kickLink(h)
	})
	r.eng.After(headNext, "mesh-worm-advance", func() {
		w.hop++
		if w.hop >= len(w.path) {
			panic("meshnet: worm advanced past its ejection hop")
		}
		r.requestHop(w)
	})
}
