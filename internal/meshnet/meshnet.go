// Package meshnet models multi-hop direct networks: a 2-D mesh of small
// routers with XY (dimension-ordered) routing. It exists to test the
// paper's concluding claim that "the advantages of our approach are expected
// to be amplified when multi-hop networks are considered since it avoids
// buffering at intermediate switches":
//
//   - Wormhole (the conventional choice for such meshes) pays per hop: every
//     router deserializes the flit stream, arbitrates the output, switches
//     it and reserializes — 30+10+10+30 ns of digital processing plus the
//     20 ns wire, for every worm, at every hop.
//   - Multi-hop TDM circuits pass through intermediate LVDS switches in the
//     analog domain: an end-to-end pipe costs one serialization, 20 ns of
//     wire per hop, and one deserialization — no buffering, no per-hop
//     arbitration. The price is that a TDM slot must reserve *every link on
//     the path* simultaneously, so path conflicts consume multiplexing
//     degree instead of router buffers.
//
// Both models share the engine, the driver and the timing constants of the
// single-crossbar models; the scheduler here packs link-disjoint XY paths
// into slots (the path generalization of the crossbar's partial-permutation
// constraint).
package meshnet

import (
	"fmt"

	"pmsnet/internal/core"
	"pmsnet/internal/link"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

// Hop is one directed link of the mesh: from router From in direction Dir.
// Two pseudo-directions model the serial NIC links, which are resources like
// any mesh link: a node can inject at most one circuit's worth of traffic
// per slot and eject at most one.
type Hop struct {
	From int
	Dir  topology.Direction
}

// Pseudo-directions for the NIC-to-router and router-to-NIC serial links.
const (
	DirInject topology.Direction = 100
	DirEject  topology.Direction = 101
)

// Grid wraps the logical mesh with routing helpers.
type Grid struct {
	Mesh topology.Mesh
}

// NewGrid builds the routing grid for n processors (near-square mesh,
// no wraparound — XY routing on a torus needs virtual channels, which the
// paper-era systems avoided).
func NewGrid(n int) (Grid, error) {
	if n < 2 {
		return Grid{}, fmt.Errorf("meshnet: need at least 2 processors, got %d", n)
	}
	return Grid{Mesh: topology.MeshFor(n, false)}, nil
}

// Path returns the XY route from src to dst as directed hops: first the X
// dimension, then Y. Deterministic and minimal.
func (g Grid) Path(src, dst int) []Hop {
	if src == dst {
		return nil
	}
	var hops []Hop
	x1, y1 := g.Mesh.Coord(src)
	x2, y2 := g.Mesh.Coord(dst)
	cur := src
	for x1 != x2 {
		d := topology.East
		if x2 < x1 {
			d = topology.West
		}
		hops = append(hops, Hop{From: cur, Dir: d})
		cur = g.Mesh.Neighbor(cur, d)
		x1, _ = g.Mesh.Coord(cur)
	}
	for y1 != y2 {
		d := topology.South
		if y2 < y1 {
			d = topology.North
		}
		hops = append(hops, Hop{From: cur, Dir: d})
		cur = g.Mesh.Neighbor(cur, d)
		_, y1 = g.Mesh.Coord(cur)
	}
	return hops
}

// Hops returns the XY hop count between two processors.
func (g Grid) Hops(src, dst int) int { return len(g.Path(src, dst)) }

// FullPath returns the complete resource list of a circuit: the source's
// injection link, the XY mesh hops, and the destination's ejection link.
func (g Grid) FullPath(src, dst int) []Hop {
	hops := []Hop{{From: src, Dir: DirInject}}
	hops = append(hops, g.Path(src, dst)...)
	return append(hops, Hop{From: dst, Dir: DirEject})
}

// Timing shared by both mesh models (paper §5 constants).
type timing struct {
	lm link.Model
	// hopWire is the wire delay of one router-to-router link.
	hopWire sim.Time
	// routerDigital is the per-hop digital processing of the wormhole
	// router: deserialize + arbitrate + switch + reserialize.
	routerArb sim.Time
}

func newTiming(lm link.Model, routers int) timing {
	return timing{
		lm:        lm,
		hopWire:   lm.WireNs,
		routerArb: core.ASICLatency(routers),
	}
}

// common embeds the pieces both models share.
type common struct {
	grid   Grid
	tm     timing
	eng    *sim.Engine
	driver *netmodel.Driver
}
