package meshnet

import (
	"fmt"
	"sort"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/core"
	"pmsnet/internal/fault"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/nic"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// TDMConfig parameterizes the multi-hop TDM circuit mesh.
type TDMConfig struct {
	// N is the processor count.
	N int
	// K is the multiplexing degree.
	K int
	// SlotNs is the TDM slot duration; zero means 100 ns.
	SlotNs sim.Time
	// PayloadBytes is the usable payload per slot; zero means 64.
	PayloadBytes int
	// Link is the serial-link model; zero value means link.Paper().
	Link link.Model
	// Horizon bounds simulated time; zero means netmodel.DefaultHorizon.
	Horizon sim.Time
	// Faults, when non-nil and active, injects link failures and corrupted
	// slots per the plan; nil leaves the run bit-identical to a fault-free
	// one.
	Faults *fault.Plan
	// Probe, when non-nil, receives the run's observability event stream.
	Probe *probe.Probe
}

func (c TDMConfig) withDefaults() TDMConfig {
	if c.K == 0 {
		c.K = 4
	}
	if c.SlotNs == 0 {
		c.SlotNs = 100
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 64
	}
	if c.Link.BitsPerSecond == 0 {
		c.Link = link.Paper()
	}
	if c.Horizon == 0 {
		c.Horizon = netmodel.DefaultHorizon
	}
	return c
}

// TDM is the multi-hop predictive multiplexed network: end-to-end circuits
// over XY paths through LVDS switches, time-multiplexed across K slots. A
// slot's configuration is a set of link-disjoint paths (the path
// generalization of the crossbar's partial permutation); the signal stays in
// the analog domain at every intermediate router, so the end-to-end pipe
// costs one serialization, 20 ns of wire per hop and one deserialization —
// no per-hop buffering or arbitration, the property the paper's conclusions
// highlight for multi-hop networks.
type TDM struct {
	cfg  TDMConfig
	grid Grid
}

// NewTDM builds the multi-hop TDM network.
func NewTDM(cfg TDMConfig) (*TDM, error) {
	cfg = cfg.withDefaults()
	grid, err := NewGrid(cfg.N)
	if err != nil {
		return nil, err
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("meshnet: multiplexing degree K=%d must be positive", cfg.K)
	}
	if cfg.PayloadBytes <= 0 || cfg.Link.BytesInWindow(cfg.SlotNs) < cfg.PayloadBytes {
		return nil, fmt.Errorf("meshnet: payload %d B does not fit a %v slot", cfg.PayloadBytes, cfg.SlotNs)
	}
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	return &TDM{cfg: cfg, grid: grid}, nil
}

// Name implements netmodel.Network.
func (t *TDM) Name() string { return fmt.Sprintf("mesh-tdm/k=%d", t.cfg.K) }

// pathConn is one established end-to-end circuit.
type pathConn struct {
	src, dst int
	path     []Hop
}

type tdmRun struct {
	common
	cfg TDMConfig
	// reqWire drives reqView, the delayed request matrix, as in the
	// crossbar switch.
	reqWire *netmodel.RequestWire
	reqView *bitmat.Matrix
	queued  *netmodel.PairQueues
	// occupied[s] holds the links reserved in slot s; estab[s] the circuits.
	occupied []map[Hop]bool
	estab    []map[[2]int]*pathConn
	// slotOf maps a connection to its slot, or -1.
	slotOf map[[2]int]int

	slCursor   int
	tdmCursor  int
	slotTicker *sim.Ticker
	slTicker   *sim.Ticker
	stats      metrics.NetStats

	// Reusable scratch for the per-pass and per-slot scans.
	connBuf [][2]int
	rowBuf  []int

	probe *probe.Probe
}

// Run implements netmodel.Network.
func (t *TDM) Run(wl *traffic.Workload) (metrics.Result, error) {
	eng := sim.NewEngine()
	reqWire := netmodel.NewRequestWire(eng, t.cfg.N, t.cfg.Link.ControlDelay(), "mesh-request-wire")
	r := &tdmRun{
		common:   common{grid: t.grid, tm: newTiming(t.cfg.Link, 5), eng: eng},
		cfg:      t.cfg,
		reqWire:  reqWire,
		reqView:  reqWire.View(),
		queued:   netmodel.NewPairQueues(t.cfg.N),
		occupied: make([]map[Hop]bool, t.cfg.K),
		estab:    make([]map[[2]int]*pathConn, t.cfg.K),
		slotOf:   make(map[[2]int]int),
		probe:    t.cfg.Probe,
	}
	for s := 0; s < t.cfg.K; s++ {
		r.occupied[s] = make(map[Hop]bool)
		r.estab[s] = make(map[[2]int]*pathConn)
	}
	driver, err := netmodel.NewDriver(eng, t.cfg.Link, wl, netmodel.Hooks{
		OnEnqueue: r.onEnqueue,
		OnIdle: func() {
			r.slotTicker.Stop()
			r.slTicker.Stop()
		},
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r.driver = driver
	if t.cfg.Probe != nil {
		driver.SetProbe(t.cfg.Probe)
	}
	inj, err := fault.NewInjector(t.cfg.Faults, eng, t.cfg.N)
	if err != nil {
		return metrics.Result{}, err
	}
	if inj != nil {
		inj.SetProbe(t.cfg.Probe)
		driver.AttachFaults(inj)
		inj.Start()
	}
	r.slotTicker = eng.NewTicker(t.cfg.SlotNs, "mesh-slot", r.onSlot)
	r.slotTicker.StartAt(0)
	// The central path scheduler runs at the crossbar scheduler's cadence
	// for the same port count.
	r.slTicker = eng.NewTicker(core.ASICLatency(t.cfg.N), "mesh-sl", r.onPass)
	r.slTicker.Start()
	driver.Start()
	return driver.Finish(t.Name(), t.cfg.Horizon, r.stats)
}

func (r *tdmRun) onEnqueue(m *nic.Message) {
	u, v := m.Src, m.Dst
	if r.queued.Inc(u, v) {
		if _, ok := r.slotOf[[2]int{u, v}]; ok {
			r.stats.Hits++
		} else {
			r.stats.Misses++
		}
		r.reqWire.Set(u, v, true)
	} else {
		r.stats.Hits++
	}
}

// onPass is one scheduling pass: release circuits whose requests dropped
// from the cursor slot, then establish pending requests whose whole XY path
// is free in that slot.
func (r *tdmRun) onPass() {
	r.stats.SchedulerPasses++
	var passAt sim.Time
	var est, rel int64
	if r.probe != nil {
		passAt = r.eng.Now()
		r.probe.Emit(probe.Event{Kind: probe.SchedPassBegin, At: passAt})
	}
	s := r.slCursor
	r.slCursor = (r.slCursor + 1) % r.cfg.K

	// Releases, in deterministic connection order.
	r.connBuf = appendSortedConns(r.connBuf[:0], r.estab[s])
	for _, key := range r.connBuf {
		pc := r.estab[s][key]
		if !r.reqView.Get(pc.src, pc.dst) {
			for _, h := range pc.path {
				delete(r.occupied[s], h)
			}
			delete(r.estab[s], key)
			delete(r.slotOf, key)
			r.stats.Released++
			if r.probe != nil {
				rel++
				r.probe.Emit(probe.Event{Kind: probe.ConnReleased, At: passAt,
					Src: int32(pc.src), Dst: int32(pc.dst), Slot: int32(s)})
			}
		}
	}
	// Establishments: scan requests in row-major order (the hardware scan),
	// word-level through a reusable column buffer.
	for u := 0; u < r.cfg.N; u++ {
		r.rowBuf = r.reqView.AppendRowOnes(r.rowBuf[:0], u)
		for _, v := range r.rowBuf {
			key := [2]int{u, v}
			if _, ok := r.slotOf[key]; ok {
				continue
			}
			path := r.grid.FullPath(u, v)
			free := true
			for _, h := range path {
				if r.occupied[s][h] {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			for _, h := range path {
				r.occupied[s][h] = true
			}
			pc := &pathConn{src: u, dst: v, path: path}
			r.estab[s][key] = pc
			r.slotOf[key] = s
			r.stats.Established++
			if r.probe != nil {
				est++
				r.probe.Emit(probe.Event{Kind: probe.ConnEstablished, At: passAt,
					Src: int32(u), Dst: int32(v), Slot: int32(s)})
			}
		}
	}
	if r.probe != nil {
		r.probe.Emit(probe.Event{Kind: probe.SchedPassEnd, At: passAt, Aux: est, ID: rel})
	}
}

// onSlot advances the TDM counter (skipping empty slots) and lets every
// circuit of the selected slot carry one payload.
func (r *tdmRun) onSlot() {
	r.stats.SlotsTotal++
	s := -1
	for tried := 0; tried < r.cfg.K; tried++ {
		cand := r.tdmCursor
		r.tdmCursor = (r.tdmCursor + 1) % r.cfg.K
		if len(r.estab[cand]) > 0 {
			s = cand
			break
		}
	}
	netmodel.EmitSlotStart(r.probe, r.eng.Now(), int32(s), r.cfg.SlotNs)
	if s < 0 {
		netmodel.EmitSlotEnd(r.probe, r.eng.Now(), -1, false)
		return
	}
	slotStart := r.eng.Now()
	used := false
	r.connBuf = appendSortedConns(r.connBuf[:0], r.estab[s])
	for _, key := range r.connBuf {
		pc := r.estab[s][key]
		var injected *nic.Message
		if r.probe != nil {
			injected = r.driver.HeadUntransmitted(pc.src, pc.dst)
		}
		sent, done := r.driver.Buffers[pc.src].TransmitTo(pc.dst, r.cfg.PayloadBytes)
		if sent == 0 {
			continue
		}
		used = true
		if injected != nil {
			r.probe.Emit(probe.Event{Kind: probe.MsgInjected, At: slotStart,
				Src: int32(pc.src), Dst: int32(pc.dst), ID: int64(injected.ID)})
		}
		if done != nil {
			if r.probe != nil {
				if h := r.driver.Buffers[pc.src].Head(pc.dst); h != nil {
					r.probe.Emit(probe.Event{Kind: probe.MsgHeadOfQueue, At: slotStart,
						Src: int32(h.Src), Dst: int32(h.Dst), ID: int64(h.ID)})
				}
			}
			if r.queued.Dec(pc.src, pc.dst) {
				r.reqWire.Set(pc.src, pc.dst, false)
			}
			// End-to-end analog pipe: serialize once, one wire delay per
			// mesh hop (the two NIC pseudo-hops carry no extra wire),
			// deserialize once, NIC receive.
			meshHops := len(pc.path) - 2
			pipe := r.cfg.Link.SerializeNs +
				sim.Time(meshHops)*r.tm.hopWire +
				r.cfg.Link.DeserializeNs + nic.RecvOverhead
			m := done
			r.eng.At(slotStart+r.cfg.SlotNs+pipe, "mesh-tdm-deliver", func() {
				r.driver.Arrive(m)
			})
		}
	}
	if used {
		r.stats.SlotsUsed++
	}
	netmodel.EmitSlotEnd(r.probe, slotStart, int32(s), used)
}

// appendSortedConns appends the map's connection keys to dst in (src, dst)
// order so every pass and slot iterates deterministically; callers pass a
// reusable buffer to keep the per-tick scans allocation-free.
func appendSortedConns(dst [][2]int, m map[[2]int]*pathConn) [][2]int {
	dst = dst[:0]
	for k := range m {
		dst = append(dst, k)
	}
	sort.Slice(dst, func(i, j int) bool {
		if dst[i][0] != dst[j][0] {
			return dst[i][0] < dst[j][0]
		}
		return dst[i][1] < dst[j][1]
	})
	return dst
}
