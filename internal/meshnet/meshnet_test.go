package meshnet

import (
	"testing"
	"testing/quick"

	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

func TestGridPathXY(t *testing.T) {
	g, err := NewGrid(16) // 4x4
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) -> (2,1): two hops east, one hop south.
	src := g.Mesh.Rank(0, 0)
	dst := g.Mesh.Rank(2, 1)
	path := g.Path(src, dst)
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3", len(path))
	}
	if path[0].Dir != topology.East || path[1].Dir != topology.East || path[2].Dir != topology.South {
		t.Fatalf("path = %v, want E,E,S (XY order)", path)
	}
	if g.Hops(src, dst) != 3 {
		t.Fatal("Hops inconsistent with Path")
	}
	if g.Path(src, src) != nil {
		t.Fatal("self path should be empty")
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(1); err == nil {
		t.Fatal("single processor should fail")
	}
}

// TestQuickPathsAreMinimalAndConnected: every XY path walks adjacent
// routers, ends at the destination, and has Manhattan-distance length.
func TestQuickPathsAreMinimalAndConnected(t *testing.T) {
	g, _ := NewGrid(64) // 8x8
	f := func(rawS, rawD uint8) bool {
		src, dst := int(rawS)%64, int(rawD)%64
		path := g.Path(src, dst)
		x1, y1 := g.Mesh.Coord(src)
		x2, y2 := g.Mesh.Coord(dst)
		manhattan := abs(x1-x2) + abs(y1-y2)
		if len(path) != manhattan {
			return false
		}
		cur := src
		for _, h := range path {
			if h.From != cur {
				return false
			}
			cur = g.Mesh.Neighbor(cur, h.Dir)
			if cur < 0 {
				return false
			}
		}
		return cur == dst
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestWormholeMeshSingleMessage(t *testing.T) {
	nw, err := NewWormhole(WormholeConfig{N: 16})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name() != "mesh-wormhole" {
		t.Fatal("name wrong")
	}
	// One 64-byte message across one hop (neighbors).
	progs := make([]traffic.Program, 16)
	progs[0] = traffic.Program{Ops: []traffic.Op{traffic.Send(1, 64)}}
	wl := &traffic.Workload{Name: "one-hop", N: 16, Programs: progs}
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 {
		t.Fatal("message lost")
	}
	// Head at router 80, arb 10, +10 switch +80 pipe => next router at 180;
	// body drains 80, ejection pipe 80 + NIC 10: delivery at 350.
	if res.LatencyMax != 350 {
		t.Fatalf("one-hop latency = %v, want 350ns", res.LatencyMax)
	}
}

func TestWormholeMeshLatencyGrowsPerHop(t *testing.T) {
	nw, _ := NewWormhole(WormholeConfig{N: 64})
	g, _ := NewGrid(64)
	// Corner-to-corner: 14 hops on an 8x8 grid.
	src, dst := g.Mesh.Rank(0, 0), g.Mesh.Rank(7, 7)
	if g.Hops(src, dst) != 14 {
		t.Fatalf("hops = %d, want 14", g.Hops(src, dst))
	}
	one := oneMsg(64, src, g.Mesh.Rank(1, 0), 64)
	far := oneMsg(64, src, dst, 64)
	r1, err := nw.Run(one)
	if err != nil {
		t.Fatal(err)
	}
	r14, err := nw.Run(far)
	if err != nil {
		t.Fatal(err)
	}
	// Each extra hop costs arbitration + switch + serdes pipe (~100 ns).
	perHop := (r14.LatencyMax - r1.LatencyMax) / 13
	if perHop < 80 || perHop > 120 {
		t.Fatalf("per-hop wormhole cost = %v, want ~100ns", perHop)
	}
}

func oneMsg(n, src, dst, bytes int) *traffic.Workload {
	progs := make([]traffic.Program, n)
	progs[src] = traffic.Program{Ops: []traffic.Op{traffic.Send(dst, bytes)}}
	return &traffic.Workload{Name: "one", N: n, Programs: progs}
}

func TestTDMMeshSingleMessage(t *testing.T) {
	nw, err := NewTDM(TDMConfig{N: 16, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name() != "mesh-tdm/k=4" {
		t.Fatal("name wrong")
	}
	res, err := nw.Run(oneMsg(16, 0, 1, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 1 {
		t.Fatal("message lost")
	}
}

func TestTDMMeshLatencyNearlyFlatInHops(t *testing.T) {
	// The paper's multi-hop claim: an end-to-end analog circuit pays only
	// 20 ns of wire per extra hop, so corner-to-corner costs barely more
	// than one hop — unlike wormhole's ~100 ns per hop.
	nw, _ := NewTDM(TDMConfig{N: 64, K: 4})
	g, _ := NewGrid(64)
	src, dst := g.Mesh.Rank(0, 0), g.Mesh.Rank(7, 7)
	r1, err := nw.Run(oneMsg(64, src, g.Mesh.Rank(1, 0), 64))
	if err != nil {
		t.Fatal(err)
	}
	r14, err := nw.Run(oneMsg(64, src, dst, 64))
	if err != nil {
		t.Fatal(err)
	}
	extra := r14.LatencyMax - r1.LatencyMax
	// 13 extra hops x 20 ns wire = 260 ns, plus slot-phase jitter.
	if extra > 400 {
		t.Fatalf("13 extra hops cost %v on the TDM mesh, want ~260ns (wire only)", extra)
	}
}

func TestMeshModelsCompleteAllWorkloads(t *testing.T) {
	wh, _ := NewWormhole(WormholeConfig{N: 16})
	td, _ := NewTDM(TDMConfig{N: 16, K: 4})
	for _, wl := range []*traffic.Workload{
		traffic.OrderedMesh(16, 64, 5),
		traffic.RandomMesh(16, 64, 8, 1),
		traffic.Transpose(16, 64, 5),
		traffic.Scatter(16, 64),
	} {
		rw, err := wh.Run(wl)
		if err != nil {
			t.Fatalf("mesh-wormhole on %s: %v", wl.Name, err)
		}
		rt, err := td.Run(wl)
		if err != nil {
			t.Fatalf("mesh-tdm on %s: %v", wl.Name, err)
		}
		if rw.Messages != wl.MessageCount() || rt.Messages != wl.MessageCount() {
			t.Fatalf("%s: conservation violated", wl.Name)
		}
	}
}

func TestMeshDeterminism(t *testing.T) {
	td, _ := NewTDM(TDMConfig{N: 16, K: 4})
	wl := traffic.RandomMesh(16, 64, 10, 5)
	a, err := td.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := td.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Stats != b.Stats {
		t.Fatal("mesh TDM runs differ")
	}
}

func TestTDMMeshValidation(t *testing.T) {
	if _, err := NewTDM(TDMConfig{N: 1}); err == nil {
		t.Fatal("N=1 should fail")
	}
	if _, err := NewTDM(TDMConfig{N: 16, K: -1}); err == nil {
		t.Fatal("negative K should fail")
	}
	if _, err := NewTDM(TDMConfig{N: 16, SlotNs: 100, PayloadBytes: 100}); err == nil {
		t.Fatal("oversized payload should fail")
	}
}
