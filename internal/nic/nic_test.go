package nic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func msg(id, src, dst, bytes int) *Message {
	return &Message{ID: id, Src: src, Dst: dst, Bytes: bytes}
}

func TestEnqueueAndRequestBits(t *testing.T) {
	b := NewOutBuffer(0, 4)
	if b.Len() != 0 || b.BytesPending() != 0 {
		t.Fatal("new buffer should be empty")
	}
	b.Enqueue(msg(1, 0, 2, 64))
	b.Enqueue(msg(2, 0, 2, 32))
	b.Enqueue(msg(3, 0, 3, 16))
	if b.Len() != 3 || b.BytesPending() != 112 {
		t.Fatalf("Len=%d BytesPending=%d", b.Len(), b.BytesPending())
	}
	if !b.HasFor(2) || !b.HasFor(3) || b.HasFor(1) {
		t.Fatal("request bits wrong")
	}
	dsts := b.PendingDsts()
	if len(dsts) != 2 || dsts[0] != 2 || dsts[1] != 3 {
		t.Fatalf("PendingDsts = %v, want [2 3]", dsts)
	}
	if b.Head(2).ID != 1 || b.Head(3).ID != 3 || b.Head(1) != nil {
		t.Fatal("Head wrong")
	}
}

func TestTransmitToFragments(t *testing.T) {
	b := NewOutBuffer(0, 4)
	b.Enqueue(msg(1, 0, 2, 100))
	sent, done := b.TransmitTo(2, 64)
	if sent != 64 || done != nil {
		t.Fatalf("first slot: sent=%d done=%v", sent, done)
	}
	if b.Head(2).Remaining() != 36 {
		t.Fatalf("remaining = %d, want 36", b.Head(2).Remaining())
	}
	sent, done = b.TransmitTo(2, 64)
	if sent != 36 || done == nil || done.ID != 1 {
		t.Fatalf("second slot: sent=%d done=%v", sent, done)
	}
	if b.Len() != 0 || b.HasFor(2) || b.BytesPending() != 0 {
		t.Fatal("buffer should be empty after completion")
	}
	// Transmit on an empty queue: nothing.
	sent, done = b.TransmitTo(2, 64)
	if sent != 0 || done != nil {
		t.Fatal("empty queue transmit should be a no-op")
	}
}

func TestTransmitServesQueueInOrder(t *testing.T) {
	b := NewOutBuffer(0, 4)
	b.Enqueue(msg(1, 0, 2, 10))
	b.Enqueue(msg(2, 0, 2, 10))
	_, done := b.TransmitTo(2, 64)
	if done == nil || done.ID != 1 {
		t.Fatalf("done = %v, want message 1 first", done)
	}
	_, done = b.TransmitTo(2, 64)
	if done == nil || done.ID != 2 {
		t.Fatalf("done = %v, want message 2 second", done)
	}
}

func TestFIFOOrderAcrossDestinations(t *testing.T) {
	b := NewOutBuffer(1, 4)
	b.Enqueue(msg(1, 1, 2, 8))
	b.Enqueue(msg(2, 1, 3, 8))
	b.Enqueue(msg(3, 1, 2, 8))
	if b.NextFIFO().ID != 1 {
		t.Fatal("NextFIFO should be the oldest message")
	}
	if got := b.PopFIFO(); got.ID != 1 {
		t.Fatalf("PopFIFO = %d, want 1", got.ID)
	}
	if got := b.PopFIFO(); got.ID != 2 {
		t.Fatalf("PopFIFO = %d, want 2", got.ID)
	}
	// After popping message 2, destination 3 has nothing left.
	if b.HasFor(3) {
		t.Fatal("queue 3 should be empty")
	}
	if got := b.PopFIFO(); got.ID != 3 {
		t.Fatalf("PopFIFO = %d, want 3", got.ID)
	}
	if b.PopFIFO() != nil || b.NextFIFO() != nil {
		t.Fatal("empty buffer should return nil")
	}
	if b.Len() != 0 || b.BytesPending() != 0 {
		t.Fatal("counters should be zero")
	}
}

func TestMixedDisciplinesStayConsistent(t *testing.T) {
	// TransmitTo completing a message must also remove it from the FIFO,
	// and PopFIFO must remove from the destination queue.
	b := NewOutBuffer(0, 4)
	b.Enqueue(msg(1, 0, 2, 8))
	b.Enqueue(msg(2, 0, 3, 8))
	if _, done := b.TransmitTo(2, 64); done == nil {
		t.Fatal("message 1 should complete")
	}
	if b.NextFIFO().ID != 2 {
		t.Fatal("FIFO head should now be message 2")
	}
	if b.PopFIFO().ID != 2 {
		t.Fatal("PopFIFO should return message 2")
	}
	if b.Len() != 0 {
		t.Fatal("buffer should be empty")
	}
}

func TestPanics(t *testing.T) {
	b := NewOutBuffer(0, 4)
	good := msg(1, 0, 1, 8)
	b.Enqueue(good)
	for i, fn := range []func(){
		func() { NewOutBuffer(4, 4) },
		func() { NewOutBuffer(-1, 4) },
		func() { NewOutBuffer(0, 0) },
		func() { b.Enqueue(msg(2, 1, 0, 8)) }, // wrong source
		func() { b.Enqueue(msg(3, 0, 0, 8)) }, // self
		func() { b.Enqueue(msg(4, 0, 9, 8)) }, // out of range
		func() { b.Enqueue(msg(5, 0, 1, 0)) }, // empty
		func() { b.Enqueue(good) },            // double enqueue
		func() { b.TransmitTo(1, 0) },         // zero budget
		func() { b.TransmitTo(9, 8) },         // bad dst
		func() { b.HasFor(-1) },
		func() { b.Head(4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestQuickConservation drives a buffer with random enqueues and transmits
// and checks that byte and message counts are conserved.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewOutBuffer(0, 8)
		enqueuedBytes, sentBytes := int64(0), int64(0)
		enqueued, completed := 0, 0
		id := 0
		for step := 0; step < 200; step++ {
			switch rng.Intn(3) {
			case 0:
				id++
				size := 1 + rng.Intn(200)
				b.Enqueue(msg(id, 0, 1+rng.Intn(7), size))
				enqueued++
				enqueuedBytes += int64(size)
			case 1:
				dst := 1 + rng.Intn(7)
				sent, done := b.TransmitTo(dst, 1+rng.Intn(64))
				sentBytes += int64(sent)
				if done != nil {
					completed++
				}
			case 2:
				if head := b.NextFIFO(); head != nil {
					rem := head.Remaining()
					if m := b.PopFIFO(); m != head {
						return false
					}
					completed++
					// PopFIFO hands the whole remainder to the caller.
					sentBytes += int64(rem)
				}
			}
			if b.BytesPending() != enqueuedBytes-sentBytes {
				return false
			}
			if b.Len() != enqueued-completed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
