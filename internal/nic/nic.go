// Package nic models the network interface card of each processor.
//
// Per paper §4, each NIC's output buffer implements N logical queues, one
// per destination; the request signal R_u it raises toward the scheduler has
// one bit per non-empty logical queue. The same buffer structure serves the
// baseline networks, which drain it in plain FIFO order (wormhole and
// circuit switching send whole messages one at a time), while the TDM
// network drains per-destination queues a slot's payload at a time.
//
// The NIC hardware cost is the paper's synthesized figure: a single-cycle
// 10 ns delay to send or receive data.
package nic

import (
	"fmt"

	"pmsnet/internal/sim"
)

// Paper §5 NIC timing: "requires a single-cycle delay of 10 ns to send or
// receive data".
const (
	SendOverhead sim.Time = 10
	RecvOverhead sim.Time = 10
)

// Message is one in-flight message. A Message is created when the program's
// SEND op executes and retired when the last byte reaches the destination
// NIC.
type Message struct {
	ID      int
	Src     int
	Dst     int
	Bytes   int
	Created sim.Time
	// Delivered is set by the network model when the message completes.
	Delivered sim.Time
	// Retries counts how many times the message (or a part of it) was
	// retransmitted after a fault; it doubles as the backoff exponent of the
	// next retry timer.
	Retries int

	remaining int
	queued    bool
	dropped   bool
}

// Dropped reports whether the message was explicitly dropped by the fault
// layer instead of delivered.
func (m *Message) Dropped() bool { return m.dropped }

// MarkDropped records the drop; a message cannot be dropped twice or after
// delivery.
func (m *Message) MarkDropped() error {
	if m.Delivered != 0 {
		return fmt.Errorf("nic: message %d dropped after delivery", m.ID)
	}
	if m.dropped {
		return fmt.Errorf("nic: message %d dropped twice", m.ID)
	}
	m.dropped = true
	return nil
}

// Remaining returns the bytes not yet transmitted.
func (m *Message) Remaining() int { return m.remaining }

// OutBuffer is a NIC's output buffer: N logical destination queues plus the
// global arrival order.
type OutBuffer struct {
	id     int
	n      int
	queues [][]*Message
	fifo   []*Message
	// pending counts queued messages; bytesPending counts their unsent bytes.
	pending      int
	bytesPending int64
}

// NewOutBuffer creates the output buffer of NIC `id` in an N-processor
// system.
func NewOutBuffer(id, n int) *OutBuffer {
	if n <= 0 || id < 0 || id >= n {
		panic(fmt.Sprintf("nic: invalid NIC id %d for %d processors", id, n))
	}
	return &OutBuffer{id: id, n: n, queues: make([][]*Message, n)}
}

// ID returns the NIC's processor id.
func (b *OutBuffer) ID() int { return b.id }

// Enqueue admits a message into its destination's logical queue.
func (b *OutBuffer) Enqueue(m *Message) {
	if m.Src != b.id {
		panic(fmt.Sprintf("nic %d: enqueue of message from %d", b.id, m.Src))
	}
	if m.Dst < 0 || m.Dst >= b.n || m.Dst == b.id {
		panic(fmt.Sprintf("nic %d: bad destination %d", b.id, m.Dst))
	}
	if m.Bytes <= 0 {
		panic(fmt.Sprintf("nic %d: message size %d", b.id, m.Bytes))
	}
	if m.queued {
		panic(fmt.Sprintf("nic %d: message %d enqueued twice", b.id, m.ID))
	}
	m.remaining = m.Bytes
	m.queued = true
	b.queues[m.Dst] = append(b.queues[m.Dst], m)
	b.fifo = append(b.fifo, m)
	b.pending++
	b.bytesPending += int64(m.Bytes)
}

// Len returns the number of queued messages.
func (b *OutBuffer) Len() int { return b.pending }

// BytesPending returns the unsent bytes across all queues.
func (b *OutBuffer) BytesPending() int64 { return b.bytesPending }

// HasFor reports whether the logical queue toward dst is non-empty — the
// R_{u,dst} request bit.
func (b *OutBuffer) HasFor(dst int) bool {
	b.checkDst(dst)
	return len(b.queues[dst]) > 0
}

// PendingDsts returns the destinations with non-empty logical queues in
// ascending order: the set bits of the NIC's request vector R_u.
func (b *OutBuffer) PendingDsts() []int {
	var out []int
	for d, q := range b.queues {
		if len(q) > 0 {
			out = append(out, d)
		}
	}
	return out
}

// BytesFor returns the unsent bytes queued toward dst.
func (b *OutBuffer) BytesFor(dst int) int64 {
	b.checkDst(dst)
	var n int64
	for _, m := range b.queues[dst] {
		n += int64(m.remaining)
	}
	return n
}

// Head returns the oldest message queued toward dst, or nil.
func (b *OutBuffer) Head(dst int) *Message {
	b.checkDst(dst)
	if len(b.queues[dst]) == 0 {
		return nil
	}
	return b.queues[dst][0]
}

// TransmitTo sends up to maxBytes of the head message toward dst (the TDM
// per-slot transfer). It returns the bytes sent and, when the message
// finished, the completed message (already removed from the buffer).
func (b *OutBuffer) TransmitTo(dst, maxBytes int) (sent int, completed *Message) {
	b.checkDst(dst)
	if maxBytes <= 0 {
		panic(fmt.Sprintf("nic %d: non-positive transfer budget %d", b.id, maxBytes))
	}
	q := b.queues[dst]
	if len(q) == 0 {
		return 0, nil
	}
	m := q[0]
	sent = maxBytes
	if sent > m.remaining {
		sent = m.remaining
	}
	m.remaining -= sent
	b.bytesPending -= int64(sent)
	if m.remaining == 0 {
		b.queues[dst] = q[1:]
		b.removeFromFIFO(m)
		b.pending--
		m.queued = false
		completed = m
	}
	return sent, completed
}

// NextFIFO returns the oldest queued message across all destinations, or
// nil. Wormhole and circuit switching serve messages in this order.
func (b *OutBuffer) NextFIFO() *Message {
	if len(b.fifo) == 0 {
		return nil
	}
	return b.fifo[0]
}

// PopFIFO removes and returns the oldest queued message; the caller becomes
// responsible for transmitting it. It returns nil when the buffer is empty.
func (b *OutBuffer) PopFIFO() *Message {
	if len(b.fifo) == 0 {
		return nil
	}
	m := b.fifo[0]
	b.fifo = b.fifo[1:]
	q := b.queues[m.Dst]
	for i, qm := range q {
		if qm == m {
			b.queues[m.Dst] = append(q[:i], q[i+1:]...)
			break
		}
	}
	b.pending--
	b.bytesPending -= int64(m.remaining)
	m.remaining = 0
	m.queued = false
	return m
}

// DrainFor removes and returns every message queued toward dst — the fault
// layer's bulk-drop path when dst becomes unreachable. The returned messages
// are no longer queued; the caller owns their accounting.
func (b *OutBuffer) DrainFor(dst int) []*Message {
	b.checkDst(dst)
	q := b.queues[dst]
	if len(q) == 0 {
		return nil
	}
	out := make([]*Message, len(q))
	copy(out, q)
	b.queues[dst] = nil
	for _, m := range out {
		b.removeFromFIFO(m)
		b.pending--
		b.bytesPending -= int64(m.remaining)
		m.remaining = 0
		m.queued = false
	}
	return out
}

// DrainAll removes and returns every queued message — the bulk-drop path
// when this NIC's own link permanently fails.
func (b *OutBuffer) DrainAll() []*Message {
	out := make([]*Message, len(b.fifo))
	copy(out, b.fifo)
	b.fifo = b.fifo[:0]
	for d := range b.queues {
		b.queues[d] = nil
	}
	for _, m := range out {
		b.pending--
		b.bytesPending -= int64(m.remaining)
		m.remaining = 0
		m.queued = false
	}
	return out
}

func (b *OutBuffer) removeFromFIFO(m *Message) {
	for i, fm := range b.fifo {
		if fm == m {
			b.fifo = append(b.fifo[:i], b.fifo[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("nic %d: message %d missing from FIFO", b.id, m.ID))
}

func (b *OutBuffer) checkDst(dst int) {
	if dst < 0 || dst >= b.n {
		panic(fmt.Sprintf("nic %d: destination %d outside [0,%d)", b.id, dst, b.n))
	}
}
