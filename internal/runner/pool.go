package runner

import (
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker pool for repeated small fan-outs inside a hot
// loop — the per-leaf scheduler shards that match in parallel inside one
// simulated TDM slot. Map spawns fresh goroutines per call, which is fine
// for sweeps of whole simulations but too heavy to run every scheduling
// pass; Pool keeps its workers parked between runs.
//
// Run is a barrier: it returns only after fn(i) completed for every
// i in [0, n). Indices are claimed atomically, so fn must be safe to call
// concurrently for distinct indices; the work itself must keep outputs
// disjoint per index for the result to be deterministic.
type Pool struct {
	jobs    chan *poolJob
	wg      sync.WaitGroup
	workers int
	closed  bool
}

type poolJob struct {
	fn   func(int)
	n    int
	next atomic.Int64
	done sync.WaitGroup
}

// NewPool starts a pool with the given number of worker goroutines (minimum
// 1). Callers must Close it when done.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{jobs: make(chan *poolJob, workers), workers: workers}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				for {
					i := int(job.next.Add(1)) - 1
					if i >= job.n {
						break
					}
					job.fn(i)
					job.done.Done()
				}
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(i) for every i in [0, n) across the pool's workers and
// returns once all calls completed. The calling goroutine participates, so a
// Run never deadlocks even if the workers are saturated by another job.
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	job := &poolJob{fn: fn, n: n}
	job.done.Add(n)
	// Wake up to n-1 parked workers; the caller claims indices too, below.
	for w := 0; w < p.workers && w < n-1; w++ {
		select {
		case p.jobs <- job:
		default:
			// Queue full: every worker already has the chance to pick work up.
		}
	}
	for {
		i := int(job.next.Add(1)) - 1
		if i >= job.n {
			break
		}
		job.fn(i)
		job.done.Done()
	}
	job.done.Wait()
}

// Close stops the workers. Run must not be called after Close; Close is
// idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	close(p.jobs)
	p.wg.Wait()
}
