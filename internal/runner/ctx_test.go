package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapCtxCancellationStopsSerialSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	_, err := MapCtx(ctx, Options{Parallelism: 1}, 100, func(i int) (int, error) {
		calls++
		if i == 4 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 5 {
		t.Fatalf("serial path ran %d points after cancellation at point 4, want 5", calls)
	}
}

func TestMapCtxCancellationStopsParallelSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1000
	var started atomic.Int64
	_, err := MapCtx(ctx, Options{Parallelism: 2}, n, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			cancel()
			return 0, nil
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Point 0 cancels immediately; with 2 workers and 1 ms per surviving
	// point, dispatch must stop long before the full sweep.
	if s := started.Load(); s >= n/2 {
		t.Fatalf("%d of %d points started after cancellation; MapCtx is not honoring the context", s, n)
	}
}

func TestMapCtxPointErrorWinsOverCancellation(t *testing.T) {
	// A point failure observed before the context is cancelled must keep
	// Map's first-error semantics: MapCtx reports the point error, not the
	// cancellation that raced in after it.
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCtx(ctx, Options{Parallelism: 1}, 10, func(i int) (int, error) {
		if i == 2 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the point error %v", err, boom)
	}
}

func TestMapCtxDeadlineAlreadyExpired(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	var calls atomic.Int64
	for _, par := range []int{1, 4} {
		_, err := MapCtx(ctx, Options{Parallelism: par}, 8, func(i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("parallelism %d: err = %v, want context.DeadlineExceeded", par, err)
		}
	}
	if c := calls.Load(); c != 0 {
		t.Fatalf("%d points ran under an already-expired context, want 0", c)
	}
}

func TestMapCtxUncancelledMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return 7*i + 2, nil }
	want, err := Map(Options{Parallelism: 4}, 25, fn)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MapCtx(context.Background(), Options{Parallelism: 4}, 25, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, got[i], want[i])
		}
	}
}
