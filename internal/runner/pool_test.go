package runner

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryIndexOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for trial := 0; trial < 50; trial++ {
		n := 1 + trial%17
		hits := make([]atomic.Int32, n)
		p.Run(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("trial %d: index %d ran %d times", trial, i, got)
			}
		}
	}
}

func TestPoolZeroAndSingle(t *testing.T) {
	p := NewPool(0) // clamps to 1
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("workers %d, want 1", p.Workers())
	}
	p.Run(0, func(int) { t.Fatal("fn called for n=0") })
	ran := false
	p.Run(1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("single index did not run")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Run(8, func(int) {})
	p.Close()
	p.Close()
}
