// Package runner is the deterministic parallel sweep executor behind every
// multi-point experiment harness (cmd/figures -j, cmd/pmsim --parallel,
// pmsnet.Config.Parallelism).
//
// A sweep is a list of independent points — each a pure function of its
// index, like one (network, workload, size, seed) simulation — so the points
// can fan out across a worker pool while the collected output stays
// bit-identical to a serial run: results are keyed by point index and
// returned in index order, never in completion order. Parallelism 1 is not
// merely "one worker": it degenerates to a plain serial loop in the calling
// goroutine, which is the reference semantics the parallel path is tested
// against.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Point reports one completed sweep point to a progress callback.
type Point struct {
	// Index is the point's position in the sweep.
	Index int
	// Wall is the host wall-clock time the point's function took.
	Wall time.Duration
	// Err is the point's error, nil on success.
	Err error
}

// Options configure a Map call.
type Options struct {
	// Parallelism is the worker count: 1 runs the points serially in the
	// calling goroutine (the reference path), anything <= 0 defaults to
	// GOMAXPROCS, and larger values bound the number of points in flight.
	Parallelism int
	// OnPoint, when non-nil, observes every completed point (including
	// failed ones). Calls are serialized by the runner, so the callback may
	// update shared progress state without locking; it must not block for
	// long or it throttles the pool.
	OnPoint func(Point)
}

// Workers resolves the option to an actual worker count.
func (o Options) Workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// Map runs fn(i) for every i in [0, n) and returns the n results in index
// order. With Parallelism 1 the points run serially and the first error
// stops the sweep immediately. Otherwise a pool of workers pulls point
// indices in order; the first error cancels all not-yet-started points
// (points already in flight run to completion, their results are discarded)
// and Map returns the error of the lowest-index failed point, which is the
// error the serial path would have hit first among those observed.
//
// Map cannot be cancelled externally: it is MapCtx with a background
// context.
func Map[T any](opts Options, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), opts, n, fn)
}

// MapCtx is Map with external cancellation: when ctx is cancelled, no
// further points start — points already in flight run to completion and
// their results are discarded — and MapCtx returns ctx.Err(). A point error
// observed before the cancellation still wins, preserving Map's
// first-error semantics. The context is consulted between points only;
// cancelling a single long-running point requires the point function itself
// to watch ctx.
func MapCtx[T any](ctx context.Context, opts Options, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := opts.Workers()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return mapSerial(ctx, opts, n, fn)
	}

	results := make([]T, n)
	var (
		next     atomic.Int64 // next point index to claim
		stop     atomic.Bool  // set on first error: no new points start
		mu       sync.Mutex   // guards firstErr/firstIdx and OnPoint calls
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() || ctx.Err() != nil {
					return
				}
				start := time.Now()
				res, err := fn(i)
				wall := time.Since(start)
				if err != nil {
					stop.Store(true)
				} else {
					results[i] = res
				}
				mu.Lock()
				if err != nil && (firstErr == nil || i < firstIdx) {
					firstErr, firstIdx = err, i
				}
				if opts.OnPoint != nil {
					opts.OnPoint(Point{Index: i, Wall: wall, Err: err})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// mapSerial is the reference path: points run one at a time, in order, in
// the calling goroutine, and the first error — or a context cancellation
// observed between points — stops the sweep.
func mapSerial[T any](ctx context.Context, opts Options, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := fn(i)
		if opts.OnPoint != nil {
			opts.OnPoint(Point{Index: i, Wall: time.Since(start), Err: err})
		}
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}
