package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	const n = 64
	got, err := Map(Options{Parallelism: 8}, n, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapOrderingUnderAdversarialLatencies(t *testing.T) {
	// Early points are the slowest, so completion order is roughly the
	// reverse of index order — the collected results must not care.
	const n = 16
	got, err := Map(Options{Parallelism: 4}, n, func(i int) (string, error) {
		time.Sleep(time.Duration(n-i) * time.Millisecond)
		return fmt.Sprintf("point-%d", i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if want := fmt.Sprintf("point-%d", i); v != want {
			t.Fatalf("got[%d] = %q, want %q", i, v, want)
		}
	}
}

func TestMapFirstErrorCancelsOutstandingPoints(t *testing.T) {
	boom := errors.New("boom")
	const n = 1000
	var started atomic.Int64
	_, err := Map(Options{Parallelism: 2}, n, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Point 0 fails immediately; with 2 workers and 1 ms per surviving
	// point, dispatch must stop long before the full sweep.
	if s := started.Load(); s >= n/2 {
		t.Fatalf("%d of %d points started after the first error; cancellation is not working", s, n)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Every point fails; whatever interleaving the pool produces, the
	// reported error must be the lowest-index one among those observed —
	// with every point failing, that is always point 0's.
	_, err := Map(Options{Parallelism: 4}, 4, func(i int) (int, error) {
		return 0, fmt.Errorf("point %d failed", i)
	})
	if err == nil || err.Error() != "point 0 failed" {
		t.Fatalf("err = %v, want point 0's error", err)
	}
}

func TestMapParallelismOneIsStrictlySerial(t *testing.T) {
	boom := errors.New("boom")
	var calls []int
	_, err := Map(Options{Parallelism: 1}, 10, func(i int) (int, error) {
		calls = append(calls, i) // no locking: the serial path runs in one goroutine
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(calls) != 4 {
		t.Fatalf("calls = %v: serial path must stop at the first error", calls)
	}
	for i, v := range calls {
		if v != i {
			t.Fatalf("calls = %v: serial path must run points in order", calls)
		}
	}
}

func TestMapSerialAndParallelAgree(t *testing.T) {
	fn := func(i int) (int, error) { return 3*i + 1, nil }
	serial, err := Map(Options{Parallelism: 1}, 33, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(Options{Parallelism: 7}, 33, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, serial[i], parallel[i])
		}
	}
}

func TestMapOnPointProgress(t *testing.T) {
	var pts []Point
	_, err := Map(Options{Parallelism: 4, OnPoint: func(p Point) {
		pts = append(pts, p) // OnPoint calls are serialized by the runner
	}}, 20, func(i int) (int, error) {
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("OnPoint fired %d times, want 20", len(pts))
	}
	seen := make(map[int]bool)
	for _, p := range pts {
		if p.Err != nil {
			t.Fatalf("point %d reported err %v", p.Index, p.Err)
		}
		if p.Wall < 0 {
			t.Fatalf("point %d reported negative wall time", p.Index)
		}
		if seen[p.Index] {
			t.Fatalf("point %d reported twice", p.Index)
		}
		seen[p.Index] = true
	}
}

func TestMapZeroPoints(t *testing.T) {
	got, err := Map(Options{}, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty sweep: got %v, %v", got, err)
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if w := (Options{}).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", w, runtime.GOMAXPROCS(0))
	}
	if w := (Options{Parallelism: 3}).Workers(); w != 3 {
		t.Fatalf("Workers() = %d, want 3", w)
	}
}
