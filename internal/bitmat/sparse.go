// Sparse matrices: the dense packed-word representation extended with
// per-row sorted nonzero-column lists and a row-occupancy bitmask.
//
// At the scale the paper evaluates (N ≤ 128) the dense word scans are
// effectively free, but at N = 1024–4096 a request matrix is overwhelmingly
// sparse — a permutation pattern has one bit per row, 0.1% occupancy at
// N = 1024 — and every dense operation still touches all N²/64 words. A
// Sparse keeps the dense Matrix authoritative (word-level consumers keep
// working, bit-identically) while the lists let row iteration cost O(row
// nonzeros) instead of O(N/64) and whole-matrix iteration cost O(nonzeros)
// instead of O(N²/64).
package bitmat

import (
	"fmt"
	"math/bits"
)

// Sparse is a boolean matrix maintained in two synchronized forms: the dense
// packed Matrix and per-row sorted column lists plus a row-occupancy mask.
// All mutation goes through Set/Clear/Reset/CopyFrom/Or so the forms cannot
// diverge; FuzzSparseParity verifies that invariant word-for-word.
type Sparse struct {
	m       *Matrix
	rowMask []uint64  // bit i set when row i has any nonzero
	rows    [][]int32 // rows[i]: sorted column indices of row i's set bits
	count   int
	j       *Journal // delta journal (journal.go); nil unless EnableJournal
}

// NewSparse returns an all-zero rows x cols sparse matrix.
func NewSparse(rows, cols int) *Sparse {
	return &Sparse{
		m:       New(rows, cols),
		rowMask: make([]uint64, (rows+wordBits-1)/wordBits),
		rows:    make([][]int32, rows),
	}
}

// Matrix returns the dense form. It is live — the same storage the Sparse
// maintains — so callers may read it freely but must never mutate it
// directly; use the Sparse mutators.
func (s *Sparse) Matrix() *Matrix { return s.m }

// RowMask returns the live row-occupancy bitmask: bit i is set when row i
// has at least one set bit. Read-only for callers.
func (s *Sparse) RowMask() []uint64 { return s.rowMask }

// Row returns row i's sorted column indices. The slice is live and
// read-only; it is invalidated by the next mutation of row i.
func (s *Sparse) Row(i int) []int32 { return s.rows[i] }

// Get reports whether bit (i, j) is set.
func (s *Sparse) Get(i, j int) bool { return s.m.Get(i, j) }

// IsZero reports whether no bit is set.
func (s *Sparse) IsZero() bool { return s.count == 0 }

// Count returns the number of set bits.
func (s *Sparse) Count() int { return s.count }

// Set sets bit (i, j), keeping the row list sorted. Setting an already-set
// bit is a no-op.
func (s *Sparse) Set(i, j int) {
	if s.m.Get(i, j) {
		return
	}
	s.m.Set(i, j)
	row := s.rows[i]
	at := searchInt32(row, int32(j))
	row = append(row, 0)
	copy(row[at+1:], row[at:])
	row[at] = int32(j)
	s.rows[i] = row
	s.rowMask[i>>6] |= 1 << (uint(i) & 63)
	s.count++
	if s.j != nil {
		s.j.record(i, j, true)
	}
}

// Clear clears bit (i, j). Clearing an already-clear bit is a no-op.
func (s *Sparse) Clear(i, j int) {
	if !s.m.Get(i, j) {
		return
	}
	s.m.Clear(i, j)
	row := s.rows[i]
	at := searchInt32(row, int32(j))
	copy(row[at:], row[at+1:])
	s.rows[i] = row[:len(row)-1]
	if len(s.rows[i]) == 0 {
		s.rowMask[i>>6] &^= 1 << (uint(i) & 63)
	}
	s.count--
	if s.j != nil {
		s.j.record(i, j, false)
	}
}

// Reset clears every bit. Row-list capacity is retained for reuse.
func (s *Sparse) Reset() {
	if s.count == 0 {
		return
	}
	s.m.Reset()
	for i := range s.rows {
		s.rows[i] = s.rows[i][:0]
	}
	for i := range s.rowMask {
		s.rowMask[i] = 0
	}
	s.count = 0
	if s.j != nil {
		s.j.bulk()
	}
}

// CopyFrom overwrites s with src. Shapes must match.
func (s *Sparse) CopyFrom(src *Sparse) {
	s.m.CopyFrom(src.m)
	copy(s.rowMask, src.rowMask)
	for i := range s.rows {
		s.rows[i] = append(s.rows[i][:0], src.rows[i]...)
	}
	s.count = src.count
	if s.j != nil {
		s.j.bulk()
	}
}

// Or sets s to s | o element-wise. Shapes must match. Cost is O(o.Count)
// list insertions, not a dense scan, so OR-ing a small matrix into a large
// one is cheap.
func (s *Sparse) Or(o *Sparse) {
	if o.count == 0 {
		return
	}
	for i := range o.rows {
		for _, j := range o.rows[i] {
			s.Set(i, int(j))
		}
	}
}

// CheckParity verifies that the dense and list forms agree, returning an
// error describing the first divergence. Tests and the fuzzer call it; it is
// O(rows x cols).
func (s *Sparse) CheckParity() error {
	n := 0
	for i := 0; i < s.m.Rows(); i++ {
		row := s.rows[i]
		for k, j := range row {
			if k > 0 && row[k-1] >= j {
				return fmt.Errorf("bitmat: sparse row %d not strictly sorted at %d", i, k)
			}
			if !s.m.Get(i, int(j)) {
				return fmt.Errorf("bitmat: sparse row %d lists (%d,%d) but dense bit is clear", i, i, j)
			}
		}
		if got := s.m.RowCount(i); got != len(row) {
			return fmt.Errorf("bitmat: row %d has %d dense bits but %d listed", i, got, len(row))
		}
		if want := len(row) > 0; MaskTest(s.rowMask, i) != want {
			return fmt.Errorf("bitmat: row-mask bit %d is %v, want %v", i, MaskTest(s.rowMask, i), want)
		}
		n += len(row)
	}
	if n != s.count {
		return fmt.Errorf("bitmat: count %d, lists hold %d", s.count, n)
	}
	return nil
}

// searchInt32 returns the insertion index of v in the sorted slice a.
func searchInt32(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// MaskTest reports whether bit i of the bitmask is set.
func MaskTest(m []uint64, i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// MaskSet sets bit i of the bitmask.
func MaskSet(m []uint64, i int) { m[i>>6] |= 1 << (uint(i) & 63) }

// MaskClear clears bit i of the bitmask.
func MaskClear(m []uint64, i int) { m[i>>6] &^= 1 << (uint(i) & 63) }

// AppendMaskOnesFrom appends the set bit positions of an n-bit bitmask to
// dst in rotated order — positions [from, n) ascending, then [0, from)
// ascending — and returns the extended slice. Bits at positions >= n must be
// zero. It is the mask counterpart of Matrix.AppendRowOnesFrom, used by the
// scheduler's rotated row scans.
func AppendMaskOnesFrom(dst []int, m []uint64, n, from int) []int {
	return appendOnesFrom(dst, m, from)
}

// appendOnesFrom is the shared two-segment rotated word scan over a packed
// bit slice: positions [from, len*64) ascending, then [0, from) ascending.
func appendOnesFrom(dst []int, words []uint64, from int) []int {
	wFrom := from / wordBits
	lowMask := (uint64(1) << (uint(from) % wordBits)) - 1
	// Segment 1: positions [from, end).
	for w := wFrom; w < len(words); w++ {
		word := words[w]
		if w == wFrom {
			word &^= lowMask
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*wordBits+b)
			word &= word - 1
		}
	}
	// Segment 2: positions [0, from).
	for w := 0; w <= wFrom && from > 0; w++ {
		word := words[w]
		if w == wFrom {
			word &= lowMask
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*wordBits+b)
			word &= word - 1
		}
	}
	return dst
}
