package bitmat

import "testing"

// checkJournal verifies journal coherence of s against the snapshot taken at
// its last ResetJournal: while the journal is complete, the dirty-row mask
// must cover every row that differs from the snapshot, and — unless the cell
// log truncated — replaying the log over the snapshot must reproduce s.
func checkJournal(t *testing.T, s, snap *Sparse) {
	t.Helper()
	j := s.Journal()
	if j == nil {
		t.Fatal("journal not attached")
	}
	if !j.Complete() {
		return // a bulk mutation voided it; consumers rebuild
	}
	for i := 0; i < s.Matrix().Rows(); i++ {
		if MaskTest(j.DirtyRows(), i) {
			continue
		}
		sw, nw := s.Matrix().RowWords(i), snap.Matrix().RowWords(i)
		for k := range sw {
			if sw[k] != nw[k] {
				t.Fatalf("row %d drifted from snapshot but is not journal-dirty", i)
			}
		}
	}
	if j.Truncated() {
		return
	}
	replayed := NewSparse(snap.Matrix().Rows(), snap.Matrix().Cols())
	replayed.CopyFrom(snap)
	for k := 0; k < j.Len(); k++ {
		c := j.Cell(k)
		if c.Set {
			replayed.Set(c.Row, c.Col)
		} else {
			replayed.Clear(c.Row, c.Col)
		}
	}
	if !replayed.Matrix().Equal(s.Matrix()) {
		t.Fatal("cell-log replay of the snapshot does not reproduce the matrix")
	}
}

func TestJournalRecordsAndResets(t *testing.T) {
	s := NewSparse(70, 70)
	if s.Journal() != nil {
		t.Fatal("journal attached before EnableJournal")
	}
	s.EnableJournal()
	j := s.Journal()
	if !j.Complete() || j.Len() != 0 {
		t.Fatalf("fresh journal: complete=%v len=%d", j.Complete(), j.Len())
	}

	s.Set(3, 5)
	s.Set(3, 5) // no-op: must not be recorded
	s.Set(65, 1)
	s.Clear(3, 5)
	if j.Len() != 3 {
		t.Fatalf("recorded %d cells, want 3", j.Len())
	}
	wantCells := []JournalCell{{3, 5, true}, {65, 1, true}, {3, 5, false}}
	for k, want := range wantCells {
		if got := j.Cell(k); got != want {
			t.Errorf("cell %d: got %+v, want %+v", k, got, want)
		}
	}
	for _, row := range []int{3, 65} {
		if !MaskTest(j.DirtyRows(), row) {
			t.Errorf("row %d not dirty", row)
		}
	}
	if MaskTest(j.DirtyRows(), 5) {
		t.Error("row 5 dirty without a mutation")
	}

	s.ResetJournal()
	if j.Len() != 0 || !j.Complete() || j.Truncated() {
		t.Fatalf("after reset: len=%d complete=%v truncated=%v", j.Len(), j.Complete(), j.Truncated())
	}
	for _, row := range []int{3, 65} {
		if MaskTest(j.DirtyRows(), row) {
			t.Errorf("row %d still dirty after reset", row)
		}
	}
}

func TestJournalBulkMutationsVoidIt(t *testing.T) {
	s := NewSparse(8, 8)
	s.EnableJournal()
	s.Set(1, 1)
	s.Reset()
	if s.Journal().Complete() {
		t.Error("Reset left the journal complete")
	}
	s.ResetJournal()
	other := NewSparse(8, 8)
	other.Set(2, 2)
	s.CopyFrom(other)
	if s.Journal().Complete() {
		t.Error("CopyFrom left the journal complete")
	}
	// Or funnels through Set, so it stays journaled cell by cell.
	s.ResetJournal()
	s.Or(other) // already set: no-op, nothing recorded
	third := NewSparse(8, 8)
	third.Set(4, 7)
	s.Or(third)
	j := s.Journal()
	if !j.Complete() || j.Len() != 1 || j.Cell(0) != (JournalCell{4, 7, true}) {
		t.Errorf("Or journaling: complete=%v len=%d", j.Complete(), j.Len())
	}
}

func TestJournalCellCapKeepsDirtyMaskExact(t *testing.T) {
	s := NewSparse(64, 64)
	s.EnableJournal()
	for k := 0; k < journalCellCap+10; k++ {
		i, jj := k%64, (k/64)%64
		if s.Get(i, jj) {
			s.Clear(i, jj)
		} else {
			s.Set(i, jj)
		}
	}
	j := s.Journal()
	if !j.Truncated() {
		t.Fatal("cell log did not truncate past the cap")
	}
	if !j.Complete() {
		t.Fatal("truncation must not void the dirty-row mask")
	}
	if j.Len() != journalCellCap {
		t.Fatalf("cell log holds %d entries, cap is %d", j.Len(), journalCellCap)
	}
}
