// Delta journal: an opt-in record of the cell mutations applied to a Sparse
// since the last snapshot, consumed by the scheduler's warm-started pass
// (internal/core/warmpass.go) to re-evaluate only the rows that changed
// between two passes instead of rescanning the whole matrix.
//
// The journal funnels through Set/Clear — the only cell mutators — so it can
// never miss a change. Bulk mutators (Reset, CopyFrom) cannot enumerate their
// deltas cheaply; they mark the journal incomplete instead, and the consumer
// falls back to a full rebuild. Or funnels through Set and needs no special
// handling.
package bitmat

// journalCellCap bounds the per-cell log. The dirty-row mask is exact
// regardless; beyond the cap only the cell list stops growing (Truncated),
// so a burst of churn between snapshots degrades the log, never correctness.
const journalCellCap = 4096

// JournalCell is one recorded mutation: bit (Row, Col) transitioned to Set.
type JournalCell struct {
	Row, Col int
	Set      bool
}

// Journal records the mutations applied to its Sparse since the last
// ResetJournal. All views are live and read-only for callers.
type Journal struct {
	cells     []uint64 // packed row<<32 | col<<1 | set, in mutation order
	dirty     []uint64 // row mask: rows with at least one recorded mutation
	dirtyRows []int32  // rows in first-dirtied order, for O(changes) reset
	complete  bool     // dirty covers every change since the last reset
	truncated bool     // cell log hit journalCellCap and stopped recording
}

// EnableJournal attaches a delta journal to the matrix. Mutations from this
// point on are recorded until ResetJournal; enabling twice is a no-op.
func (s *Sparse) EnableJournal() {
	if s.j != nil {
		return
	}
	s.j = &Journal{
		dirty:    make([]uint64, len(s.rowMask)),
		complete: true,
	}
}

// Journal returns the attached journal, or nil when journaling is off.
func (s *Sparse) Journal() *Journal { return s.j }

// ResetJournal snapshots the matrix: the journal forgets all recorded
// mutations and starts clean. Cost is O(changes since the last reset), not
// O(rows). A no-op without a journal.
func (s *Sparse) ResetJournal() {
	j := s.j
	if j == nil {
		return
	}
	for _, r := range j.dirtyRows {
		MaskClear(j.dirty, int(r))
	}
	j.dirtyRows = j.dirtyRows[:0]
	j.cells = j.cells[:0]
	j.complete = true
	j.truncated = false
}

// record logs one cell mutation. Callers (Set/Clear) guarantee the bit
// actually changed.
func (j *Journal) record(i, jj int, set bool) {
	if !MaskTest(j.dirty, i) {
		MaskSet(j.dirty, i)
		j.dirtyRows = append(j.dirtyRows, int32(i))
	}
	if len(j.cells) < journalCellCap {
		v := uint64(i)<<32 | uint64(uint32(jj))<<1
		if set {
			v |= 1
		}
		j.cells = append(j.cells, v)
	} else {
		j.truncated = true
	}
}

// bulk marks the journal incomplete after a mutation whose deltas were not
// enumerated (Reset, CopyFrom). Consumers must treat the whole matrix as
// changed until the next ResetJournal.
func (j *Journal) bulk() {
	j.complete = false
	j.truncated = true
}

// DirtyRows returns the live row mask of rows mutated since the last reset.
// Meaningful only while Complete reports true.
func (j *Journal) DirtyRows() []uint64 { return j.dirty }

// Complete reports whether the dirty-row mask covers every change since the
// last reset. Bulk mutations (Reset, CopyFrom) make it false.
func (j *Journal) Complete() bool { return j.complete }

// Truncated reports whether the per-cell log overflowed (or a bulk mutation
// voided it); the dirty-row mask stays exact while Complete holds.
func (j *Journal) Truncated() bool { return j.truncated }

// Len returns the number of recorded cells.
func (j *Journal) Len() int { return len(j.cells) }

// Cell returns recorded cell k in mutation order.
func (j *Journal) Cell(k int) JournalCell {
	v := j.cells[k]
	return JournalCell{Row: int(v >> 32), Col: int(uint32(v) >> 1), Set: v&1 != 0}
}
