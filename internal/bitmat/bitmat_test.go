package bitmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	m := New(5, 7)
	if !m.IsZero() {
		t.Fatal("new matrix should be zero")
	}
	if m.Rows() != 5 || m.Cols() != 7 {
		t.Fatalf("shape = %dx%d, want 5x7", m.Rows(), m.Cols())
	}
	if m.Count() != 0 {
		t.Fatalf("Count = %d, want 0", m.Count())
	}
}

func TestSetGetClear(t *testing.T) {
	m := New(3, 130) // spans 3 words per row
	coords := [][2]int{{0, 0}, {0, 63}, {0, 64}, {1, 127}, {2, 128}, {2, 129}}
	for _, c := range coords {
		m.Set(c[0], c[1])
	}
	for _, c := range coords {
		if !m.Get(c[0], c[1]) {
			t.Errorf("Get(%d,%d) = false after Set", c[0], c[1])
		}
	}
	if m.Count() != len(coords) {
		t.Fatalf("Count = %d, want %d", m.Count(), len(coords))
	}
	if m.Get(1, 126) {
		t.Error("Get(1,126) = true, never set")
	}
	for _, c := range coords {
		m.Clear(c[0], c[1])
	}
	if !m.IsZero() {
		t.Fatal("matrix should be zero after clearing all set bits")
	}
}

func TestToggle(t *testing.T) {
	m := New(2, 2)
	if got := m.Toggle(1, 1); !got {
		t.Fatal("Toggle of clear bit should return true")
	}
	if !m.Get(1, 1) {
		t.Fatal("bit should be set after toggle")
	}
	if got := m.Toggle(1, 1); got {
		t.Fatal("Toggle of set bit should return false")
	}
	if m.Get(1, 1) {
		t.Fatal("bit should be clear after second toggle")
	}
}

func TestSetAllRespectsTail(t *testing.T) {
	m := New(2, 70)
	m.SetAll()
	if got, want := m.Count(), 140; got != want {
		t.Fatalf("Count after SetAll = %d, want %d", got, want)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 70; j++ {
			if !m.Get(i, j) {
				t.Fatalf("Get(%d,%d) = false after SetAll", i, j)
			}
		}
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(6)
	if m.Count() != 6 {
		t.Fatalf("identity count = %d, want 6", m.Count())
	}
	if !m.IsPartialPermutation() {
		t.Fatal("identity must be a partial permutation")
	}
	for i := 0; i < 6; i++ {
		if m.FirstInRow(i) != i {
			t.Fatalf("FirstInRow(%d) = %d, want %d", i, m.FirstInRow(i), i)
		}
	}
}

func TestFromPermutation(t *testing.T) {
	m := FromPermutation([]int{2, -1, 0, 1})
	if !m.IsPartialPermutation() {
		t.Fatal("expected a partial permutation")
	}
	if m.Count() != 3 {
		t.Fatalf("count = %d, want 3", m.Count())
	}
	if m.FirstInRow(1) != -1 {
		t.Fatalf("row 1 should be empty, FirstInRow = %d", m.FirstInRow(1))
	}
	if !m.Get(0, 2) || !m.Get(2, 0) || !m.Get(3, 1) {
		t.Fatalf("unexpected contents:\n%v", m)
	}
}

func TestFromPermutationDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate output")
		}
	}()
	FromPermutation([]int{1, 1})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]bool{
		{true, false, false},
		{false, false, true},
	})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if !m.Get(0, 0) || !m.Get(1, 2) || m.Get(0, 1) {
		t.Fatalf("unexpected contents:\n%v", m)
	}
}

func TestOrAndNot(t *testing.T) {
	a := FromRows([][]bool{{true, false}, {false, true}})
	b := FromRows([][]bool{{true, true}, {false, false}})
	u := a.Clone()
	u.Or(b)
	if u.Count() != 3 || !u.Get(0, 1) {
		t.Fatalf("Or wrong:\n%v", u)
	}
	u.AndNot(a)
	if u.Count() != 1 || !u.Get(0, 1) {
		t.Fatalf("AndNot wrong:\n%v", u)
	}
	w := a.Clone()
	w.And(b)
	if w.Count() != 1 || !w.Get(0, 0) {
		t.Fatalf("And wrong:\n%v", w)
	}
}

func TestRowColAnyAndCounts(t *testing.T) {
	m := New(4, 4)
	m.Set(1, 2)
	m.Set(3, 2)
	if !m.RowAny(1) || m.RowAny(0) {
		t.Fatal("RowAny wrong")
	}
	if !m.ColAny(2) || m.ColAny(3) {
		t.Fatal("ColAny wrong")
	}
	if m.ColCount(2) != 2 || m.RowCount(1) != 1 || m.RowCount(0) != 0 {
		t.Fatal("counts wrong")
	}
	if m.IsPartialPermutation() {
		t.Fatal("two bits in one column is not a partial permutation")
	}
}

func TestRowOnesAndIteration(t *testing.T) {
	m := New(2, 200)
	want := []int{0, 64, 65, 128, 199}
	for _, j := range want {
		m.Set(1, j)
	}
	got := m.RowOnes(1)
	if len(got) != len(want) {
		t.Fatalf("RowOnes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RowOnes = %v, want %v", got, want)
		}
	}
	var visited [][2]int
	m.Ones(func(i, j int) bool {
		visited = append(visited, [2]int{i, j})
		return true
	})
	if len(visited) != len(want) {
		t.Fatalf("Ones visited %d bits, want %d", len(visited), len(want))
	}
	// Early stop.
	n := 0
	m.Ones(func(i, j int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Ones early stop visited %d, want 2", n)
	}
}

func TestCloneAndCopyIndependence(t *testing.T) {
	a := Identity(4)
	b := a.Clone()
	b.Clear(0, 0)
	if !a.Get(0, 0) {
		t.Fatal("Clone must not alias the original")
	}
	c := New(4, 4)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Fatal("CopyFrom should make matrices equal")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestContainedIn(t *testing.T) {
	sub := FromRows([][]bool{{true, false}, {false, false}})
	sup := FromRows([][]bool{{true, true}, {false, false}})
	if !sub.ContainedIn(sup) {
		t.Fatal("sub should be contained in sup")
	}
	if sup.ContainedIn(sub) {
		t.Fatal("sup should not be contained in sub")
	}
}

func TestString(t *testing.T) {
	m := FromRows([][]bool{{true, false}, {false, true}})
	if got, want := m.String(), "1.\n.1"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	cases := []func(){
		func() { m.Get(2, 0) },
		func() { m.Get(0, -1) },
		func() { m.Set(-1, 0) },
		func() { m.RowAny(5) },
		func() { m.ColAny(-2) },
		func() { m.RowOnes(2) },
		func() { m.FirstInRow(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a, b := New(2, 2), New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	a.Or(b)
}

// randomMatrix builds a matrix with each bit set with probability p.
func randomMatrix(rng *rand.Rand, rows, cols int, p float64) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < p {
				m.Set(i, j)
			}
		}
	}
	return m
}

func TestPropertyCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		rows, cols := 1+rng.Intn(10), 1+rng.Intn(150)
		m := randomMatrix(rng, rows, cols, 0.3)
		naive := 0
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if m.Get(i, j) {
					naive++
				}
			}
		}
		if m.Count() != naive {
			t.Fatalf("Count = %d, naive = %d", m.Count(), naive)
		}
	}
}

func TestPropertyRowColOnesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(100)
		m := randomMatrix(rng, n, n, 0.1)
		total := 0
		for i := 0; i < n; i++ {
			ones := m.RowOnes(i)
			total += len(ones)
			if len(ones) != m.RowCount(i) {
				t.Fatalf("RowOnes len %d != RowCount %d", len(ones), m.RowCount(i))
			}
			if m.RowAny(i) != (len(ones) > 0) {
				t.Fatal("RowAny inconsistent with RowOnes")
			}
			if len(ones) > 0 && m.FirstInRow(i) != ones[0] {
				t.Fatal("FirstInRow inconsistent with RowOnes")
			}
			if len(ones) == 0 && m.FirstInRow(i) != -1 {
				t.Fatal("FirstInRow of empty row should be -1")
			}
		}
		if total != m.Count() {
			t.Fatalf("sum of row counts %d != Count %d", total, m.Count())
		}
		colTotal := 0
		for j := 0; j < n; j++ {
			colTotal += m.ColCount(j)
			if m.ColAny(j) != (m.ColCount(j) > 0) {
				t.Fatal("ColAny inconsistent with ColCount")
			}
		}
		if colTotal != m.Count() {
			t.Fatalf("sum of col counts %d != Count %d", colTotal, m.Count())
		}
	}
}

func TestQuickOrIsUnion(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := randomMatrix(ra, 8, 8, 0.4)
		b := randomMatrix(rb, 8, 8, 0.4)
		u := a.Clone()
		u.Or(b)
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if u.Get(i, j) != (a.Get(i, j) || b.Get(i, j)) {
					return false
				}
			}
		}
		return a.ContainedIn(u) && b.ContainedIn(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndNotDisjoint(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := randomMatrix(ra, 8, 8, 0.4)
		b := randomMatrix(rb, 8, 8, 0.4)
		d := a.Clone()
		d.AndNot(b)
		ok := true
		d.Ones(func(i, j int) bool {
			if b.Get(i, j) || !a.Get(i, j) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPartialPermutationFromPerm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		perm := rng.Perm(n)
		// Blank out a random subset of rows.
		for i := range perm {
			if rng.Float64() < 0.3 {
				perm[i] = -1
			}
		}
		// Re-deduplicate after blanking is unnecessary: blanking only removes.
		m := FromPermutation(perm)
		return m.IsPartialPermutation()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCount128(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 128, 128, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Count() < 0 {
			b.Fatal("impossible")
		}
	}
}

func BenchmarkOr128(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 128, 128, 0.05)
	o := randomMatrix(rng, 128, 128, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Or(o)
	}
}

// --- word-level iteration and fingerprint APIs ---

func TestAppendRowOnesFromRotation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		cols := 1 + rng.Intn(200)
		m := randomMatrix(rng, 3, cols, 0.2)
		i := rng.Intn(3)
		from := rng.Intn(cols)

		// Naive reference: scan columns (from+j)%cols for j=0..cols-1.
		var want []int
		for j := 0; j < cols; j++ {
			v := (from + j) % cols
			if m.Get(i, v) {
				want = append(want, v)
			}
		}
		got := m.AppendRowOnesFrom(nil, i, from)
		if len(got) != len(want) {
			t.Fatalf("cols=%d from=%d: got %v, want %v", cols, from, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("cols=%d from=%d: got %v, want %v", cols, from, got, want)
			}
		}
		// from=0 must agree with the plain ascending scan.
		asc := m.AppendRowOnes(nil, i)
		zero := m.AppendRowOnesFrom(nil, i, 0)
		if len(asc) != len(zero) {
			t.Fatalf("from=0 disagrees with AppendRowOnes: %v vs %v", zero, asc)
		}
		for k := range asc {
			if asc[k] != zero[k] {
				t.Fatalf("from=0 disagrees with AppendRowOnes: %v vs %v", zero, asc)
			}
		}
	}
}

func TestAppendRowOnesReusesBuffer(t *testing.T) {
	m := New(2, 70)
	m.Set(0, 3)
	m.Set(0, 69)
	buf := make([]int, 0, 8)
	got := m.AppendRowOnes(buf, 0)
	if &got[0] != &buf[:1][0] {
		t.Fatal("AppendRowOnes did not reuse the provided buffer")
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 69 {
		t.Fatalf("AppendRowOnes = %v, want [3 69]", got)
	}
}

func TestColumnUnionAndRowOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		rows := 1 + rng.Intn(80)
		cols := 1 + rng.Intn(200)
		m := randomMatrix(rng, rows, cols, 0.1)

		colOcc := m.ColumnUnion(nil)
		for j := 0; j < cols; j++ {
			got := colOcc[j/64]&(1<<(uint(j)%64)) != 0
			if got != m.ColAny(j) {
				t.Fatalf("ColumnUnion bit %d = %v, ColAny = %v", j, got, m.ColAny(j))
			}
		}
		rowOcc := m.RowOccupancy(nil)
		for i := 0; i < rows; i++ {
			got := rowOcc[i/64]&(1<<(uint(i)%64)) != 0
			if got != m.RowAny(i) {
				t.Fatalf("RowOccupancy bit %d = %v, RowAny = %v", i, got, m.RowAny(i))
			}
		}
	}
}

func TestOrAndNotFused(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(150)
		m := randomMatrix(rng, rows, cols, 0.3)
		a := randomMatrix(rng, rows, cols, 0.3)
		b := randomMatrix(rng, rows, cols, 0.3)

		want := m.Clone()
		diff := a.Clone()
		diff.AndNot(b)
		want.Or(diff)

		m.OrAndNot(a, b)
		if !m.Equal(want) {
			t.Fatalf("OrAndNot disagrees with Or(AndNot) composition")
		}
	}
}

func TestHash64AndPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(150)
		m := randomMatrix(rng, rows, cols, 0.15)
		c := m.Clone()
		if m.Hash64(42) != c.Hash64(42) {
			t.Fatal("equal matrices hash differently")
		}
		if m.Hash64(1) == m.Hash64(2) && !m.IsZero() {
			// Different seeds should almost surely differ; tolerate the
			// astronomically unlikely collision only for the zero matrix.
			t.Fatal("seed does not perturb hash")
		}

		packed := m.AppendPacked(nil)
		if len(packed) != m.Count() {
			t.Fatalf("packed %d entries, Count = %d", len(packed), m.Count())
		}
		if !m.MatchesPacked(packed) {
			t.Fatal("matrix does not match its own packing")
		}
		// Any single-bit perturbation must break the match.
		i, j := rng.Intn(rows), rng.Intn(cols)
		before := m.Get(i, j)
		m.Toggle(i, j)
		if m.MatchesPacked(packed) {
			t.Fatalf("MatchesPacked true after toggling (%d,%d)", i, j)
		}
		m.Toggle(i, j)
		if m.Get(i, j) != before {
			t.Fatal("toggle round trip failed")
		}
		if !m.MatchesPacked(packed) {
			t.Fatal("restore did not restore the match")
		}
	}
}

func TestMatchesPackedPrefixAndSuffix(t *testing.T) {
	m := New(4, 4)
	m.Set(1, 2)
	m.Set(3, 0)
	packed := m.AppendPacked(nil)
	if !m.MatchesPacked(packed) {
		t.Fatal("self match failed")
	}
	if m.MatchesPacked(packed[:1]) {
		t.Fatal("matched a strict prefix")
	}
	if m.MatchesPacked(append(append([]uint32{}, packed...), 3<<16|3)) {
		t.Fatal("matched a strict superset")
	}
	if m.MatchesPacked(nil) {
		t.Fatal("non-empty matrix matched empty packing")
	}
	if !New(4, 4).MatchesPacked(nil) {
		t.Fatal("empty matrix should match empty packing")
	}
}

func TestOnesWordLevelMatchesGet(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := randomMatrix(rng, 9, 131, 0.2)
	var got [][2]int
	m.Ones(func(i, j int) bool {
		got = append(got, [2]int{i, j})
		return true
	})
	var want [][2]int
	for i := 0; i < 9; i++ {
		for j := 0; j < 131; j++ {
			if m.Get(i, j) {
				want = append(want, [2]int{i, j})
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Ones visited %d bits, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Ones order mismatch at %d: %v vs %v", k, got[k], want[k])
		}
	}
}
