// Package bitmat provides dense boolean matrices backed by machine words.
//
// The predictive-multiplexed-switching scheduler manipulates three kinds of
// NxN boolean matrices: the request matrix R (which NIC wants which output),
// the per-slot configuration matrices B(s) (which crossbar connections are
// realized during TDM slot s), and the aggregate matrix B* (the bitwise OR of
// all configuration matrices). Rows index crossbar input ports, columns index
// output ports. A configuration is valid for a crossbar when it is a partial
// permutation: at most one set bit per row and per column.
//
// The representation is a packed row-major bitset so that the row/column OR
// reductions the scheduler needs (the paper's AI and AO availability vectors)
// are word-parallel.
package bitmat

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Matrix is a dense rows x cols boolean matrix. The zero value is unusable;
// create instances with New. Methods panic on out-of-range indices and on
// shape mismatches, mirroring the slice-indexing behaviour of the language:
// these are programmer errors, not runtime conditions.
type Matrix struct {
	rows, cols  int
	wordsPerRow int
	bits        []uint64
}

// New returns an all-zero rows x cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitmat: negative dimensions %dx%d", rows, cols))
	}
	wpr := (cols + wordBits - 1) / wordBits
	return &Matrix{
		rows:        rows,
		cols:        cols,
		wordsPerRow: wpr,
		bits:        make([]uint64, rows*wpr),
	}
}

// NewSquare returns an all-zero n x n matrix.
func NewSquare(n int) *Matrix { return New(n, n) }

// FromRows builds a matrix from a [][]bool literal. All rows must have equal
// length.
func FromRows(rows [][]bool) *Matrix {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("bitmat: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		for j, v := range row {
			if v {
				m.Set(i, j)
			}
		}
	}
	return m
}

// Identity returns the n x n identity matrix (the "straight-through"
// crossbar configuration: input i connected to output i).
func Identity(n int) *Matrix {
	m := NewSquare(n)
	for i := 0; i < n; i++ {
		m.Set(i, i)
	}
	return m
}

// FromPermutation builds an n x n matrix with bit (i, perm[i]) set for every
// i with perm[i] >= 0. Entries with perm[i] < 0 leave row i empty. It panics
// if two rows map to the same output (the result would not be a partial
// permutation).
func FromPermutation(perm []int) *Matrix {
	n := len(perm)
	m := NewSquare(n)
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 {
			continue
		}
		if p >= n {
			panic(fmt.Sprintf("bitmat: permutation entry %d out of range [0,%d)", p, n))
		}
		if seen[p] {
			panic(fmt.Sprintf("bitmat: duplicate output %d in permutation", p))
		}
		seen[p] = true
		m.Set(i, p)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("bitmat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// RowWords returns row i's packed words. The slice is live — the Matrix's
// own storage — and read-only for callers; bits past Cols are zero. It
// exists for word-parallel row computations (the scheduler's adaptive
// dense-row fallback) that per-bit Get calls would dominate.
func (m *Matrix) RowWords(i int) []uint64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range %dx%d", i, m.rows, m.cols))
	}
	return m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow]
}

// Get reports whether bit (i, j) is set.
func (m *Matrix) Get(i, j int) bool {
	m.check(i, j)
	w := m.bits[i*m.wordsPerRow+j/wordBits]
	return w&(1<<(uint(j)%wordBits)) != 0
}

// Set sets bit (i, j).
func (m *Matrix) Set(i, j int) {
	m.check(i, j)
	m.bits[i*m.wordsPerRow+j/wordBits] |= 1 << (uint(j) % wordBits)
}

// Clear clears bit (i, j).
func (m *Matrix) Clear(i, j int) {
	m.check(i, j)
	m.bits[i*m.wordsPerRow+j/wordBits] &^= 1 << (uint(j) % wordBits)
}

// Toggle flips bit (i, j) and returns its new value. This is the T(u,v)
// update the scheduling array applies to B(s).
func (m *Matrix) Toggle(i, j int) bool {
	m.check(i, j)
	idx := i*m.wordsPerRow + j/wordBits
	mask := uint64(1) << (uint(j) % wordBits)
	m.bits[idx] ^= mask
	return m.bits[idx]&mask != 0
}

// SetAll sets every bit.
func (m *Matrix) SetAll() {
	for i := 0; i < m.rows; i++ {
		row := m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow]
		for w := range row {
			row[w] = ^uint64(0)
		}
		m.maskTail(row)
	}
}

func (m *Matrix) maskTail(row []uint64) {
	if tail := uint(m.cols) % wordBits; tail != 0 && len(row) > 0 {
		row[len(row)-1] &= (1 << tail) - 1
	}
}

// Reset clears every bit.
func (m *Matrix) Reset() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.bits, m.bits)
	return c
}

// CopyFrom overwrites m with src. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	m.sameShape(src)
	copy(m.bits, src.bits)
}

func (m *Matrix) sameShape(o *Matrix) {
	if m.rows != o.rows || m.cols != o.cols {
		panic(fmt.Sprintf("bitmat: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
}

// Equal reports whether m and o have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, w := range m.bits {
		if w != o.bits[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether no bit is set. The TDM counter uses this to skip
// empty configurations.
func (m *Matrix) IsZero() bool {
	for _, w := range m.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits (established connections).
func (m *Matrix) Count() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Or sets m to m | o element-wise. Shapes must match.
func (m *Matrix) Or(o *Matrix) {
	m.sameShape(o)
	for i := range m.bits {
		m.bits[i] |= o.bits[i]
	}
}

// AndNot sets m to m &^ o element-wise. Shapes must match.
func (m *Matrix) AndNot(o *Matrix) {
	m.sameShape(o)
	for i := range m.bits {
		m.bits[i] &^= o.bits[i]
	}
}

// And sets m to m & o element-wise. Shapes must match.
func (m *Matrix) And(o *Matrix) {
	m.sameShape(o)
	for i := range m.bits {
		m.bits[i] &= o.bits[i]
	}
}

// RowAny reports whether any bit in row i is set. For a configuration matrix
// this is the paper's AI(i): input port i is occupied in this slot.
func (m *Matrix) RowAny(i int) bool {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range %d", i, m.rows))
	}
	for _, w := range m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow] {
		if w != 0 {
			return true
		}
	}
	return false
}

// ColAny reports whether any bit in column j is set. For a configuration
// matrix this is the paper's AO(j): output port j is occupied in this slot.
func (m *Matrix) ColAny(j int) bool {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("bitmat: col %d out of range %d", j, m.cols))
	}
	word, mask := j/wordBits, uint64(1)<<(uint(j)%wordBits)
	for i := 0; i < m.rows; i++ {
		if m.bits[i*m.wordsPerRow+word]&mask != 0 {
			return true
		}
	}
	return false
}

// RowOnes returns the column indices of set bits in row i, ascending.
func (m *Matrix) RowOnes(i int) []int {
	return m.AppendRowOnes(nil, i)
}

// AppendRowOnes appends the column indices of set bits in row i to dst,
// ascending, and returns the extended slice. Hot paths pass a reusable
// buffer (dst[:0]) to avoid the per-call allocation of RowOnes.
func (m *Matrix) AppendRowOnes(dst []int, i int) []int {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range %d", i, m.rows))
	}
	row := m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow]
	for w, word := range row {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			dst = append(dst, w*wordBits+b)
			word &= word - 1
		}
	}
	return dst
}

// AppendRowOnesFrom appends the set columns of row i to dst in rotated
// order: columns [from, cols) ascending, then [0, from) ascending. This is
// the scheduling array's rotated-priority column scan done word-at-a-time
// instead of bit-at-a-time.
func (m *Matrix) AppendRowOnesFrom(dst []int, i, from int) []int {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range %d", i, m.rows))
	}
	if from < 0 || from >= m.cols {
		panic(fmt.Sprintf("bitmat: column origin %d out of range %d", from, m.cols))
	}
	return appendOnesFrom(dst, m.bits[i*m.wordsPerRow:(i+1)*m.wordsPerRow], from)
}

// ColumnUnion ORs every row of m into dst, a bitmask with bit j set when
// any row has column j set — the paper's AO occupancy vector for a
// configuration, computed word-parallel. dst is grown if needed and
// returned; contents are overwritten.
func (m *Matrix) ColumnUnion(dst []uint64) []uint64 {
	if cap(dst) < m.wordsPerRow {
		dst = make([]uint64, m.wordsPerRow)
	}
	dst = dst[:m.wordsPerRow]
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		row := m.bits[r*m.wordsPerRow : (r+1)*m.wordsPerRow]
		for w, word := range row {
			dst[w] |= word
		}
	}
	return dst
}

// RowOccupancy writes a bitmask with bit i set when row i has any bit set —
// the paper's AI occupancy vector for a configuration. dst is grown if
// needed and returned; contents are overwritten.
func (m *Matrix) RowOccupancy(dst []uint64) []uint64 {
	words := (m.rows + wordBits - 1) / wordBits
	if cap(dst) < words {
		dst = make([]uint64, words)
	}
	dst = dst[:words]
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.rows; r++ {
		row := m.bits[r*m.wordsPerRow : (r+1)*m.wordsPerRow]
		for _, word := range row {
			if word != 0 {
				dst[r/wordBits] |= 1 << (uint(r) % wordBits)
				break
			}
		}
	}
	return dst
}

// FirstInRow returns the first set column in row i, or -1 if the row is
// empty. In a partial permutation this is *the* connection of input i.
func (m *Matrix) FirstInRow(i int) int {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range %d", i, m.rows))
	}
	row := m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow]
	for w, word := range row {
		if word != 0 {
			return w*wordBits + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// RowCount returns the number of set bits in row i.
func (m *Matrix) RowCount(i int) int {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("bitmat: row %d out of range %d", i, m.rows))
	}
	n := 0
	for _, w := range m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow] {
		n += bits.OnesCount64(w)
	}
	return n
}

// ColCount returns the number of set bits in column j.
func (m *Matrix) ColCount(j int) int {
	word, mask := j/wordBits, uint64(1)<<(uint(j)%wordBits)
	n := 0
	for i := 0; i < m.rows; i++ {
		if m.bits[i*m.wordsPerRow+word]&mask != 0 {
			n++
		}
	}
	return n
}

// IsPartialPermutation reports whether m has at most one set bit per row and
// per column — the crossbar-realizability constraint on a configuration.
// It runs in O(rows x words-per-row): each row must hold at most one bit,
// and the running OR of previous rows detects any column reuse.
func (m *Matrix) IsPartialPermutation() bool {
	seen := make([]uint64, m.wordsPerRow)
	for i := 0; i < m.rows; i++ {
		row := m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow]
		ones := 0
		for w, word := range row {
			ones += bits.OnesCount64(word)
			if word&seen[w] != 0 {
				return false
			}
			seen[w] |= word
		}
		if ones > 1 {
			return false
		}
	}
	return true
}

// Ones calls fn for every set bit in row-major order. If fn returns false the
// iteration stops. The scan is word-level and does not allocate.
func (m *Matrix) Ones(fn func(i, j int) bool) {
	for i := 0; i < m.rows; i++ {
		row := m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow]
		for w, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				if !fn(i, w*wordBits+b) {
					return
				}
				word &= word - 1
			}
		}
	}
}

// OrAndNot sets m to m | (a &^ b) element-wise in one fused scan. The
// pre-scheduling logic uses it to build the change matrix
// L = (B(s) &^ Reff) | (Reff &^ B*) without temporaries. Shapes must match.
func (m *Matrix) OrAndNot(a, b *Matrix) {
	m.sameShape(a)
	m.sameShape(b)
	for i := range m.bits {
		m.bits[i] |= a.bits[i] &^ b.bits[i]
	}
}

// fnv64 constants (FNV-1a).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hash64 returns a 64-bit FNV-1a hash of the matrix contents, folding seed
// in first. Word positions are implicit (every word is hashed, zeros
// included), so equal-shape matrices hash equally iff their bits match.
// Callers that need exact matching (the scheduling cache) must still verify
// with MatchesPacked or Equal; the hash only buckets.
func (m *Matrix) Hash64(seed uint64) uint64 {
	h := uint64(fnvOffset)
	h = (h ^ seed) * fnvPrime
	for _, w := range m.bits {
		h = (h ^ w) * fnvPrime
	}
	return h
}

// AppendPacked appends every set bit as a packed uint32 (i<<16 | j) in
// row-major order and returns the extended slice — a compact exact
// fingerprint of a sparse matrix. It panics if either dimension exceeds
// 65535.
func (m *Matrix) AppendPacked(dst []uint32) []uint32 {
	if m.rows > 1<<16 || m.cols > 1<<16 {
		panic(fmt.Sprintf("bitmat: %dx%d too large to pack into uint32 pairs", m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		row := m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow]
		for w, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				dst = append(dst, uint32(i)<<16|uint32(w*wordBits+b))
				word &= word - 1
			}
		}
	}
	return dst
}

// MatchesPacked reports whether the set bits of m are exactly the packed
// (i<<16 | j) entries, which must be in row-major order as produced by
// AppendPacked. It walks m's words and never allocates.
func (m *Matrix) MatchesPacked(packed []uint32) bool {
	idx := 0
	for i := 0; i < m.rows; i++ {
		row := m.bits[i*m.wordsPerRow : (i+1)*m.wordsPerRow]
		for w, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				if idx >= len(packed) || packed[idx] != uint32(i)<<16|uint32(w*wordBits+b) {
					return false
				}
				idx++
				word &= word - 1
			}
		}
	}
	return idx == len(packed)
}

// ContainedIn reports whether every set bit of m is also set in o.
func (m *Matrix) ContainedIn(o *Matrix) bool {
	m.sameShape(o)
	for i, w := range m.bits {
		if w&^o.bits[i] != 0 {
			return false
		}
	}
	return true
}

// String renders the matrix as rows of '.' and '1' characters, for debugging
// and golden tests.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if m.Get(i, j) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('.')
			}
		}
		if i != m.rows-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
