package bitmat

import (
	"math/rand"
	"testing"
)

func TestSparseBasics(t *testing.T) {
	s := NewSparse(8, 8)
	if !s.IsZero() || s.Count() != 0 {
		t.Fatal("fresh sparse not zero")
	}
	s.Set(3, 5)
	s.Set(3, 1)
	s.Set(3, 5) // idempotent
	s.Set(0, 7)
	if s.Count() != 3 {
		t.Fatalf("count %d, want 3", s.Count())
	}
	if got := s.Row(3); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("row 3 = %v, want [1 5]", got)
	}
	if !MaskTest(s.RowMask(), 3) || MaskTest(s.RowMask(), 2) {
		t.Fatal("row mask wrong")
	}
	s.Clear(3, 1)
	s.Clear(3, 1) // idempotent
	if got := s.Row(3); len(got) != 1 || got[0] != 5 {
		t.Fatalf("row 3 = %v, want [5]", got)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if !s.IsZero() || MaskTest(s.RowMask(), 3) {
		t.Fatal("reset did not clear")
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseCopyOr(t *testing.T) {
	a, b := NewSparse(6, 6), NewSparse(6, 6)
	a.Set(1, 2)
	a.Set(4, 0)
	b.Set(1, 3)
	b.Set(4, 0)
	c := NewSparse(6, 6)
	c.CopyFrom(a)
	c.Or(b)
	want := New(6, 6)
	want.Set(1, 2)
	want.Set(1, 3)
	want.Set(4, 0)
	if !c.Matrix().Equal(want) {
		t.Fatalf("or result:\n%v\nwant:\n%v", c.Matrix(), want)
	}
	if c.Count() != 3 {
		t.Fatalf("count %d, want 3", c.Count())
	}
	if err := c.CheckParity(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendMaskOnesFrom(t *testing.T) {
	n := 130
	m := make([]uint64, (n+63)/64)
	for _, i := range []int{0, 63, 64, 100, 129} {
		MaskSet(m, i)
	}
	got := AppendMaskOnesFrom(nil, m, n, 64)
	want := []int{64, 100, 129, 0, 63}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	MaskClear(m, 100)
	if MaskTest(m, 100) {
		t.Fatal("MaskClear failed")
	}
}

// TestSparseMatchesDenseRandom mirrors a random op sequence onto a plain
// Matrix and checks word-for-word agreement plus list coherence.
func TestSparseMatchesDenseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(70), 1+rng.Intn(70)
		s := NewSparse(rows, cols)
		d := New(rows, cols)
		for op := 0; op < 500; op++ {
			i, j := rng.Intn(rows), rng.Intn(cols)
			switch rng.Intn(5) {
			case 0, 1, 2:
				s.Set(i, j)
				d.Set(i, j)
			case 3:
				s.Clear(i, j)
				d.Clear(i, j)
			case 4:
				s.Reset()
				d.Reset()
			}
		}
		if !s.Matrix().Equal(d) {
			t.Fatalf("trial %d: dense forms diverged", trial)
		}
		if err := s.CheckParity(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Count() != d.Count() {
			t.Fatalf("trial %d: count %d vs %d", trial, s.Count(), d.Count())
		}
	}
}

// FuzzSparseParity drives a Sparse and a plain Matrix through the same
// fuzzer-chosen op sequence and requires word-for-word agreement, list/mask
// coherence, rotated-iteration agreement between AppendMaskOnesFrom over
// the row mask and a dense row-occupancy recomputation, and delta-journal
// coherence: the dirty-row mask must cover every row that drifted from the
// last snapshot, and the cell log must replay the snapshot into the current
// state.
func FuzzSparseParity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(8), uint8(8))
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f}, uint8(65), uint8(3))
	f.Add([]byte{}, uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, ops []byte, rows8, cols8 uint8) {
		rows := 1 + int(rows8)%96
		cols := 1 + int(cols8)%96
		s := NewSparse(rows, cols)
		s.EnableJournal()
		d := New(rows, cols)
		snap := NewSparse(rows, cols) // state at the last ResetJournal
		for k := 0; k+2 < len(ops); k += 3 {
			i := int(ops[k]) % rows
			j := int(ops[k+1]) % cols
			switch ops[k+2] % 9 {
			case 0, 1, 2, 3:
				s.Set(i, j)
				d.Set(i, j)
			case 4, 5, 6:
				s.Clear(i, j)
				d.Clear(i, j)
			case 7:
				s.Reset()
				d.Reset()
			case 8:
				s.ResetJournal()
				snap.CopyFrom(s)
			}
		}
		if !s.Matrix().Equal(d) {
			t.Fatal("dense forms diverged")
		}
		checkJournal(t, s, snap)
		if err := s.CheckParity(); err != nil {
			t.Fatal(err)
		}
		// Rotated mask iteration must visit exactly the dense occupied rows.
		from := 0
		if len(ops) > 0 {
			from = int(ops[0]) % rows
		}
		got := AppendMaskOnesFrom(nil, s.RowMask(), rows, from)
		occ := d.RowOccupancy(nil)
		want := AppendMaskOnesFrom(nil, occ, rows, from)
		if len(got) != len(want) {
			t.Fatalf("mask iteration %v, dense occupancy %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mask iteration %v, dense occupancy %v", got, want)
			}
		}
		// Per-row lists must match the dense rotated column scan.
		for i := 0; i < rows; i++ {
			dense := d.AppendRowOnes(nil, i)
			row := s.Row(i)
			if len(dense) != len(row) {
				t.Fatalf("row %d: sparse %v, dense %v", i, row, dense)
			}
			for k := range dense {
				if int(row[k]) != dense[k] {
					t.Fatalf("row %d: sparse %v, dense %v", i, row, dense)
				}
			}
		}
	})
}
