package compiler

import (
	"testing"
	"testing/quick"

	"pmsnet/internal/tdm"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

func TestStripRemovesAnnotations(t *testing.T) {
	wl := traffic.TwoPhase(16, 64, 1)
	stripped := Strip(wl)
	if len(stripped.StaticPhases) != 0 {
		t.Fatal("Strip must drop static phases")
	}
	for p, prog := range stripped.Programs {
		for _, op := range prog.Ops {
			if op.Kind == traffic.OpFlush || op.Kind == traffic.OpPhase {
				t.Fatalf("proc %d still has directive %v", p, op.Kind)
			}
		}
	}
	if stripped.MessageCount() != wl.MessageCount() {
		t.Fatal("Strip must keep every send")
	}
	// Strip is a deep copy: mutating it must not touch the original.
	stripped.Programs[0].Ops[0] = traffic.Delay(1)
	if wl.Programs[0].Ops[0].Kind == traffic.OpDelay {
		t.Fatal("Strip must not alias the input programs")
	}
}

// TestAnalyzeRecoversTwoPhases: the analyzer must find the all-to-all →
// nearest-neighbor boundary of the TwoPhase program from the raw send
// streams alone.
func TestAnalyzeRecoversTwoPhases(t *testing.T) {
	const n = 32
	annotated := traffic.TwoPhase(n, 64, 3)
	stripped := Strip(annotated)
	out, an, err := Analyze(stripped, Options{InsertDirectives: true})
	if err != nil {
		t.Fatal(err)
	}
	if an.PhaseCount() != 2 {
		t.Fatalf("discovered %d phases, want 2", an.PhaseCount())
	}
	// Phase 0 must be the big all-to-all set, phase 1 the small local set.
	if an.Phases[0].Len() <= an.Phases[1].Len() {
		t.Fatalf("phase sizes %d, %d: the global phase should come first",
			an.Phases[0].Len(), an.Phases[1].Len())
	}
	if got, want := an.Phases[0].Degree(), n-1; got != want {
		t.Fatalf("phase 0 degree = %d, want all-to-all degree %d", got, want)
	}
	if got := an.Phases[1].Degree(); got > 4 {
		t.Fatalf("phase 1 degree = %d, want nearest-neighbor (<= 4)", got)
	}
	// Every processor got exactly one boundary (one flush).
	for p, bs := range an.Boundaries {
		if len(bs) != 1 {
			t.Fatalf("proc %d: %d boundaries, want 1", p, len(bs))
		}
		flushes := 0
		for _, op := range out.Programs[p].Ops {
			if op.Kind == traffic.OpFlush {
				flushes++
			}
		}
		if flushes != 1 {
			t.Fatalf("proc %d: %d flush directives, want 1", p, flushes)
		}
	}
}

// TestAnalyzeDemandsAlignWithPhases checks the planner bridge: Analyze emits
// one slot-unit demand matrix per phase, with support exactly the phase's
// working set and totals matching the phase's traffic at the payload size.
func TestAnalyzeDemandsAlignWithPhases(t *testing.T) {
	const n = 32
	stripped := Strip(traffic.TwoPhase(n, 64, 3))
	_, an, err := Analyze(stripped, Options{PayloadBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Demands) != an.PhaseCount() {
		t.Fatalf("%d demand matrices for %d phases", len(an.Demands), an.PhaseCount())
	}
	for k, d := range an.Demands {
		for _, c := range d.WorkingSet().Conns() {
			if !an.Phases[k].Contains(c) {
				t.Fatalf("phase %d: demand on %v outside the phase's working set", k, c)
			}
		}
		for _, c := range an.Phases[k].Conns() {
			if d.At(c.Src, c.Dst) <= 0 {
				t.Fatalf("phase %d: working-set connection %v carries no demand", k, c)
			}
		}
		if d.Total() <= 0 {
			t.Fatalf("phase %d: empty demand", k)
		}
	}
	// 64-byte sends at 64-byte payload: one slot per send, so the first
	// (all-to-all) phase outweighs the local phase.
	if an.Demands[0].Total() <= an.Demands[1].Total() {
		t.Fatalf("demand totals %d, %d: the global phase should dominate",
			an.Demands[0].Total(), an.Demands[1].Total())
	}
}

func TestAnalyzeSinglePhaseWorkloads(t *testing.T) {
	for _, wl := range []*traffic.Workload{
		traffic.OrderedMesh(16, 64, 10),
		traffic.RandomMesh(16, 64, 40, 2),
		traffic.Scatter(16, 64),
	} {
		out, an, err := Analyze(Strip(wl), Options{})
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if an.PhaseCount() != 1 {
			t.Errorf("%s: discovered %d phases, want 1 (steady pattern)", wl.Name, an.PhaseCount())
		}
		// The single phase must cover the whole working set.
		ws := wl.ConnSet()
		for _, c := range ws.Conns() {
			if !an.Phases[0].Contains(c) {
				t.Fatalf("%s: phase 0 missing %v", wl.Name, c)
			}
		}
		if out.MessageCount() != wl.MessageCount() {
			t.Fatalf("%s: messages lost in analysis", wl.Name)
		}
	}
}

// TestAnalyzedWorkloadRunsOnPreload: the analyzer's output must satisfy the
// preload controller's coverage requirement and run to completion — i.e. it
// is a drop-in replacement for hand-written compiler annotations.
func TestAnalyzedWorkloadRunsOnPreload(t *testing.T) {
	const n = 32
	stripped := Strip(traffic.TwoPhase(n, 64, 3))
	analyzed, _, err := Analyze(stripped, Options{InsertDirectives: true})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := tdm.New(tdm.Config{N: n, K: 4, Mode: tdm.Preload})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(analyzed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != analyzed.MessageCount() {
		t.Fatalf("delivered %d of %d", res.Messages, analyzed.MessageCount())
	}
	// And the performance should be in the same league as the hand-
	// annotated workload.
	hand, err := nw.Run(traffic.TwoPhase(n, 64, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency < hand.Efficiency*0.9 {
		t.Fatalf("analyzed preload efficiency %.3f below 90%% of hand-annotated %.3f",
			res.Efficiency, hand.Efficiency)
	}
}

func TestAnalyzeRejectsInvalidWorkload(t *testing.T) {
	bad := &traffic.Workload{Name: "bad", N: 2,
		Programs: []traffic.Program{{Ops: []traffic.Op{traffic.Send(0, 8)}}, {}}}
	if _, _, err := Analyze(bad, Options{}); err == nil {
		t.Fatal("invalid workload should be rejected")
	}
}

func TestAnalyzeEmptyAndTinyPrograms(t *testing.T) {
	wl := &traffic.Workload{Name: "tiny", N: 4, Programs: []traffic.Program{
		{Ops: []traffic.Op{traffic.Send(1, 8)}},
		{},
		{Ops: []traffic.Op{traffic.Delay(10)}},
		{},
	}}
	out, an, err := Analyze(wl, Options{InsertDirectives: true})
	if err != nil {
		t.Fatal(err)
	}
	if an.PhaseCount() != 1 {
		t.Fatalf("phases = %d, want 1", an.PhaseCount())
	}
	if !an.Phases[0].Contains(topology.Conn{Src: 0, Dst: 1}) {
		t.Fatal("phase must contain the single connection")
	}
	if out.MessageCount() != 1 {
		t.Fatal("message lost")
	}
}

// TestQuickAnalyzePreservesTraffic: whatever the input, analysis never
// loses or reorders a processor's sends, and the union of discovered phases
// covers the workload's connection set.
func TestQuickAnalyzePreservesTraffic(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := 8 + int(rawN)%24
		wl := traffic.TwoPhase(n, 32, seed)
		out, an, err := Analyze(Strip(wl), Options{InsertDirectives: seed%2 == 0})
		if err != nil {
			return false
		}
		if out.MessageCount() != wl.MessageCount() || out.TotalBytes() != wl.TotalBytes() {
			return false
		}
		// Sends per processor keep their order.
		for p := range wl.Programs {
			var want, got []traffic.Op
			for _, op := range wl.Programs[p].Ops {
				if op.Kind == traffic.OpSend || op.Kind == traffic.OpSendWait {
					want = append(want, op)
				}
			}
			for _, op := range out.Programs[p].Ops {
				if op.Kind == traffic.OpSend || op.Kind == traffic.OpSendWait {
					got = append(got, op)
				}
			}
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		// Coverage.
		union := topology.NewWorkingSet(n)
		for _, ph := range an.Phases {
			union = union.Union(ph)
		}
		for _, c := range wl.ConnSet().Conns() {
			if !union.Contains(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyzeThreePhases: a global → local → global program must come back
// as three phases with the right shapes, purely from the send streams.
func TestAnalyzeThreePhases(t *testing.T) {
	const n = 32
	program := traffic.Concat("three-phase",
		traffic.AllToAll(n, 64),
		traffic.OrderedMesh(n, 64, 8),
		traffic.AllToAll(n, 64),
	)
	analyzed, an, err := Analyze(Strip(program), Options{InsertDirectives: true})
	if err != nil {
		t.Fatal(err)
	}
	if an.PhaseCount() != 3 {
		t.Fatalf("discovered %d phases, want 3", an.PhaseCount())
	}
	// Boundary detection works at window granularity, so a couple of
	// connections can be attributed to the neighboring phase; the outer
	// phases must still be essentially all-to-all.
	if an.Phases[0].Degree() < n-3 || an.Phases[2].Degree() < n-3 {
		t.Fatalf("outer phases should be near-all-to-all (degree ~%d): got %d and %d",
			n-1, an.Phases[0].Degree(), an.Phases[2].Degree())
	}
	if got := an.Phases[1].Degree(); got > 4 {
		t.Fatalf("middle phase degree = %d, want nearest-neighbor", got)
	}
	// The analyzed program must be a drop-in preload workload.
	nw, err := tdm.New(tdm.Config{N: n, K: 4, Mode: tdm.Preload})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(analyzed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != program.MessageCount() {
		t.Fatalf("delivered %d of %d", res.Messages, program.MessageCount())
	}
}
