// Package compiler implements the compile-/load-time communication analysis
// of paper §3.1 and §3.3.
//
// The paper assumes "the compiler can identify the appropriate communication
// working sets when such an identification is possible" and can insert
// directives — a flush between loops with different communication patterns,
// hints about the phase being entered — so the network is configured
// proactively. This package provides that front end for command-file
// programs: given a workload whose programs carry no annotations, Analyze
//
//  1. segments every processor's send stream into phases by detecting
//     regime changes in destination diversity (the trace-level shadow of a
//     loop boundary: an all-to-all loop touches a new destination every
//     send, a stencil loop cycles over a handful),
//  2. aligns the per-processor segments into global phases and emits each
//     phase's union working set as the workload's StaticPhases, and
//  3. optionally inserts the §3.3 directives (FLUSH + PHASEHINT) at the
//     detected boundaries.
//
// The result is a workload the preload controller can run exactly as if a
// real compiler had annotated the source program. Strip removes existing
// annotations, so round-trip tests can verify the analysis recovers them.
package compiler

import (
	"fmt"

	"pmsnet/internal/plan"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// Options tunes the analyzer.
type Options struct {
	// Window is the number of consecutive sends summarized per diversity
	// sample; zero defaults to 8.
	Window int
	// Ratio is the regime-change threshold: adjacent windows whose distinct
	// destination counts differ by at least this factor (and by at least
	// two destinations) mark a phase boundary. Zero defaults to 2.0.
	Ratio float64
	// InsertDirectives adds FLUSH and PHASEHINT ops at detected boundaries,
	// mimicking the compiler-inserted instructions of §3.3.
	InsertDirectives bool
	// PayloadBytes is the usable payload per TDM slot used to convert each
	// phase's traffic into the slot-unit demand matrices of Analysis.Demands;
	// zero defaults to 64, the slot model's default.
	PayloadBytes int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 8
	}
	if o.Ratio <= 0 {
		o.Ratio = 2.0
	}
	if o.PayloadBytes <= 0 {
		o.PayloadBytes = 64
	}
	return o
}

// Analysis reports what the analyzer found.
type Analysis struct {
	// Boundaries[p] lists the op indices (in the *output* program of
	// processor p, before directive insertion) at which new phases start;
	// it never includes index 0.
	Boundaries [][]int
	// Phases holds the global per-phase working sets, in phase order.
	Phases []*topology.WorkingSet
	// Demands holds each phase's per-connection demand in TDM slots
	// (payload-sized chunks per send, summed over the phase), aligned with
	// Phases — the input the preload planners (internal/plan) consume for
	// exact per-phase planning.
	Demands []*plan.Demand
}

// PhaseCount returns the number of global phases discovered.
func (a Analysis) PhaseCount() int { return len(a.Phases) }

// Strip returns a deep copy of the workload with all FLUSH/PHASEHINT
// directives and static phases removed — an unannotated program, as a
// plain message-passing trace would arrive.
func Strip(wl *traffic.Workload) *traffic.Workload {
	out := &traffic.Workload{
		Name:     wl.Name,
		N:        wl.N,
		Programs: make([]traffic.Program, wl.N),
	}
	for p, prog := range wl.Programs {
		var ops []traffic.Op
		for _, op := range prog.Ops {
			switch op.Kind {
			case traffic.OpFlush, traffic.OpPhase:
				// dropped
			default:
				ops = append(ops, op)
			}
		}
		out.Programs[p] = traffic.Program{Ops: ops}
	}
	return out
}

// Analyze segments the workload into communication phases and attaches the
// discovered working sets (and, optionally, boundary directives). The input
// is not modified. It returns an error for invalid workloads.
func Analyze(wl *traffic.Workload, opt Options) (*traffic.Workload, Analysis, error) {
	if err := wl.Validate(); err != nil {
		return nil, Analysis{}, fmt.Errorf("compiler: %w", err)
	}
	opt = opt.withDefaults()

	// Work on a stripped copy: existing annotations would double up.
	base := Strip(wl)

	an := Analysis{Boundaries: make([][]int, base.N)}
	segments := make([][]segment, base.N)
	candidates := make([][]int, base.N)
	maxSegments := 0
	withBoundary := 0
	for p := range base.Programs {
		segs, cand := segmentProgram(base.Programs[p].Ops, opt)
		segments[p] = segs
		candidates[p] = cand
		if len(segs) > 1 {
			withBoundary++
		}
		if len(segs) > maxSegments {
			maxSegments = len(segs)
		}
	}
	// Consensus pass: a phase boundary is a global program property (a loop
	// boundary every processor crosses), but a processor whose transition
	// window happens to straddle it can miss the local diversity drop. When
	// the majority of processors detected boundaries, processors without
	// one adopt their best sub-threshold candidate, so their later-phase
	// traffic is attributed to the right working set.
	if withBoundary*2 > base.N {
		for p := range segments {
			if len(segments[p]) <= 1 && len(candidates[p]) > 0 {
				b := candidates[p][0]
				segments[p] = []segment{{0, b}, {b, len(base.Programs[p].Ops)}}
			}
		}
	}
	for p, segs := range segments {
		if len(segs) > 1 {
			for _, s := range segs[1:] {
				an.Boundaries[p] = append(an.Boundaries[p], s.start)
			}
		}
		if len(segs) > maxSegments {
			maxSegments = len(segs)
		}
	}
	if maxSegments == 0 {
		maxSegments = 1
	}

	// Global phase k = union over processors of their k-th segment's
	// connections; processors with fewer segments fold their tail into
	// their last segment's phase.
	phases := make([]*topology.WorkingSet, maxSegments)
	demands := make([]*plan.Demand, maxSegments)
	for k := range phases {
		phases[k] = topology.NewWorkingSet(base.N)
		demands[k] = plan.NewDemand(base.N)
	}
	for p, segs := range segments {
		for k, seg := range segs {
			phase := k
			if phase >= maxSegments {
				phase = maxSegments - 1
			}
			for _, op := range base.Programs[p].Ops[seg.start:seg.end] {
				if op.Kind == traffic.OpSend || op.Kind == traffic.OpSendWait {
					phases[phase].Add(topology.Conn{Src: p, Dst: op.Dst})
					slots := (int64(op.Bytes) + int64(opt.PayloadBytes) - 1) / int64(opt.PayloadBytes)
					if slots < 1 {
						slots = 1
					}
					demands[phase].Add(p, op.Dst, slots)
				}
			}
		}
	}
	// Drop empty trailing phases (processors may be silent).
	for len(phases) > 1 && phases[len(phases)-1].Len() == 0 {
		phases = phases[:len(phases)-1]
	}
	an.Phases = phases
	an.Demands = demands[:len(phases)]
	base.StaticPhases = phases

	if opt.InsertDirectives {
		for p := range base.Programs {
			base.Programs[p] = insertDirectives(base.Programs[p], segments[p], len(phases))
		}
	}
	if err := base.Validate(); err != nil {
		return nil, Analysis{}, fmt.Errorf("compiler: produced invalid workload: %w", err)
	}
	return base, an, nil
}

// segment is a half-open op-index range [start, end).
type segment struct {
	start, end int
}

// segmentProgram finds phase boundaries in one program by sampling the
// distinct-destination count of consecutive windows of sends and splitting
// where the diversity regime changes. It also returns sub-threshold
// boundary candidates (the largest diversity drops), for the consensus
// pass.
func segmentProgram(ops []traffic.Op, opt Options) (segs []segment, candidates []int) {
	// Positions of sends within the op slice.
	var sendIdx []int
	var dsts []int
	for i, op := range ops {
		if op.Kind == traffic.OpSend || op.Kind == traffic.OpSendWait {
			sendIdx = append(sendIdx, i)
			dsts = append(dsts, op.Dst)
		}
	}
	if len(ops) == 0 {
		return nil, nil
	}
	if len(sendIdx) <= opt.Window {
		return []segment{{0, len(ops)}}, nil
	}

	// Diversity per full window of sends.
	type window struct {
		firstSend int // index into sendIdx
		diversity int
	}
	var windows []window
	for w := 0; w+opt.Window <= len(dsts); w += opt.Window {
		seen := map[int]bool{}
		for _, d := range dsts[w : w+opt.Window] {
			seen[d] = true
		}
		windows = append(windows, window{firstSend: w, diversity: len(seen)})
	}

	var boundaries []int // op indices where a new segment starts
	bestDrop, bestAt := 0, -1
	for i := 1; i < len(windows); i++ {
		a, b := windows[i-1].diversity, windows[i].diversity
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		// A regime change needs both a large ratio and an absolute gap of
		// at least half the window: random fluctuation inside a small
		// neighbor set (2 vs 4 distinct destinations) is not a phase
		// boundary, while an all-to-all window (diversity = window size)
		// against a stencil window (<= 4) always is.
		if hi-lo >= opt.Window/2 && float64(hi) >= opt.Ratio*float64(lo) {
			boundaries = append(boundaries, sendIdx[windows[i].firstSend])
		} else if hi-lo >= 2 && hi-lo > bestDrop {
			bestDrop, bestAt = hi-lo, sendIdx[windows[i].firstSend]
		}
	}
	if len(boundaries) == 0 && bestAt >= 0 {
		candidates = append(candidates, bestAt)
	}

	segs = []segment{}
	start := 0
	for _, b := range boundaries {
		segs = append(segs, segment{start, b})
		start = b
	}
	segs = append(segs, segment{start, len(ops)})
	return segs, candidates
}

// insertDirectives rewrites a program with PHASEHINT at each segment start
// and FLUSH between segments, adjusting for previously inserted ops.
func insertDirectives(prog traffic.Program, segs []segment, phaseCount int) traffic.Program {
	if len(segs) == 0 {
		return prog
	}
	var out []traffic.Op
	for k, seg := range segs {
		phase := k
		if phase >= phaseCount {
			phase = phaseCount - 1
		}
		if k > 0 {
			out = append(out, traffic.Flush())
		}
		out = append(out, traffic.Phase(phase))
		out = append(out, prog.Ops[seg.start:seg.end]...)
	}
	return traffic.Program{Ops: out}
}
