package fault

import (
	"fmt"
	"math/rand"

	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
)

// Counters tallies injected fault events.
type Counters struct {
	LinkFailures     uint64
	LinkRepairs      uint64
	CrosspointDeaths uint64
	Corrupted        uint64
	RequestsLost     uint64
	GrantsLost       uint64
}

// Random-stream ids. Each fault class draws from its own stream so that, for
// a fixed plan seed, enabling one class never perturbs the event sequence of
// another.
const (
	streamCorrupt = 1
	streamRequest = 2
	streamGrant   = 3
	streamLink    = 1000 // +port
)

// Injector realizes a Plan on a simulation engine. All methods are safe on a
// nil receiver (a nil injector injects nothing), so models can hold one
// unconditionally.
type Injector struct {
	plan Plan
	eng  *sim.Engine
	n    int

	rngCorrupt *rand.Rand
	rngRequest *rand.Rand
	rngGrant   *rand.Rand

	portDown []bool // link currently down
	portDead []bool // link permanently down
	deadX    map[[2]int]bool

	// Callbacks, invoked at the simulated instant a fault fires. Set them
	// before Start; nil callbacks are skipped.
	OnPortDown       func(port int, permanent bool)
	OnPortUp         func(port int)
	OnCrosspointDead func(in, out int)

	counters Counters

	// probe observes fault events (nil when observability is off).
	probe *probe.Probe

	// Degraded-mode accounting: the run is degraded while at least one link
	// is down or one crosspoint is dead.
	activeFaults  int
	degradedSince sim.Time
	degradedTotal sim.Time
}

// NewInjector builds an injector for an N-port system, or returns (nil, nil)
// when the plan is nil or inactive — the fault-free fast path that keeps
// zero-fault runs bit-identical to runs without a plan.
func NewInjector(p *Plan, eng *sim.Engine, n int) (*Injector, error) {
	if !p.Active() {
		return nil, p.Validate()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	plan := p.withDefaults()
	for i, l := range plan.Links {
		if l.Port >= n {
			return nil, fmt.Errorf("fault: link fault %d names port %d of an %d-port system", i, l.Port, n)
		}
	}
	for i, x := range plan.Crosspoints {
		if x.In >= n || x.Out >= n {
			return nil, fmt.Errorf("fault: crosspoint fault %d names %d:%d of an %d-port system", i, x.In, x.Out, n)
		}
	}
	return &Injector{
		plan:       plan,
		eng:        eng,
		n:          n,
		rngCorrupt: sim.NewRNG(plan.Seed, streamCorrupt),
		rngRequest: sim.NewRNG(plan.Seed, streamRequest),
		rngGrant:   sim.NewRNG(plan.Seed, streamGrant),
		portDown:   make([]bool, n),
		portDead:   make([]bool, n),
		deadX:      make(map[[2]int]bool),
	}, nil
}

// SetProbe attaches an observability probe for fault injected/recovered
// events. Safe on a nil receiver; nil detaches.
func (inj *Injector) SetProbe(p *probe.Probe) {
	if inj != nil {
		inj.probe = p
	}
}

// Start schedules the plan's fault events: every scripted link and crosspoint
// fault, plus one stochastic fail/repair process per port when MTBF is set.
// Call it after the callbacks are installed and before the engine runs.
func (inj *Injector) Start() {
	if inj == nil {
		return
	}
	for _, l := range inj.plan.Links {
		l := l
		inj.eng.At(l.At, "fault-link-down", func() { inj.portFail(l.Port, l.For) })
	}
	for _, x := range inj.plan.Crosspoints {
		x := x
		inj.eng.At(x.At, "fault-xpoint-dead", func() { inj.crosspointDie(x.In, x.Out) })
	}
	if inj.plan.LinkMTBF > 0 {
		for p := 0; p < inj.n; p++ {
			rng := sim.NewRNG(inj.plan.Seed, streamLink+uint64(p))
			inj.scheduleNextFailure(p, rng)
		}
	}
}

// expDraw returns an exponential time with the given mean, at least 1 ns.
func expDraw(rng *rand.Rand, mean sim.Time) sim.Time {
	d := sim.Time(rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

func (inj *Injector) scheduleNextFailure(port int, rng *rand.Rand) {
	inj.eng.After(expDraw(rng, inj.plan.LinkMTBF), "fault-link-down", func() {
		if inj.portDead[port] {
			return // a scripted permanent failure got there first
		}
		repair := expDraw(rng, inj.plan.LinkMTTR)
		inj.portFail(port, repair)
		inj.eng.After(repair, "fault-link-next", func() { inj.scheduleNextFailure(port, rng) })
	})
}

func (inj *Injector) portFail(port int, dur sim.Time) {
	if inj.portDead[port] || inj.portDown[port] {
		return // already down; overlapping faults merge
	}
	inj.portDown[port] = true
	if dur == 0 {
		inj.portDead[port] = true
	}
	inj.counters.LinkFailures++
	inj.faultBegan()
	if inj.probe != nil {
		permanent := int64(0)
		if dur == 0 {
			permanent = 1
		}
		inj.probe.Emit(probe.Event{Kind: probe.FaultInjected, At: inj.eng.Now(),
			Src: int32(port), Dst: -1, Aux: permanent})
	}
	if inj.OnPortDown != nil {
		inj.OnPortDown(port, dur == 0)
	}
	if dur > 0 {
		inj.eng.After(dur, "fault-link-up", func() { inj.portRepair(port) })
	}
}

func (inj *Injector) portRepair(port int) {
	if inj.portDead[port] || !inj.portDown[port] {
		return
	}
	inj.portDown[port] = false
	inj.counters.LinkRepairs++
	inj.faultEnded()
	if inj.probe != nil {
		inj.probe.Emit(probe.Event{Kind: probe.FaultRecovered, At: inj.eng.Now(),
			Src: int32(port), Dst: -1})
	}
	if inj.OnPortUp != nil {
		inj.OnPortUp(port)
	}
}

func (inj *Injector) crosspointDie(u, v int) {
	key := [2]int{u, v}
	if inj.deadX[key] {
		return
	}
	inj.deadX[key] = true
	inj.counters.CrosspointDeaths++
	inj.faultBegan()
	if inj.probe != nil {
		inj.probe.Emit(probe.Event{Kind: probe.FaultInjected, At: inj.eng.Now(),
			Src: int32(u), Dst: int32(v), ID: 1, Aux: 1})
	}
	if inj.OnCrosspointDead != nil {
		inj.OnCrosspointDead(u, v)
	}
}

func (inj *Injector) faultBegan() {
	if inj.activeFaults == 0 {
		inj.degradedSince = inj.eng.Now()
	}
	inj.activeFaults++
}

func (inj *Injector) faultEnded() {
	inj.activeFaults--
	if inj.activeFaults == 0 {
		inj.degradedTotal += inj.eng.Now() - inj.degradedSince
	}
}

// --- state queries (all nil-safe) ---

// PortUp reports whether the port's serial link is currently usable.
func (inj *Injector) PortUp(port int) bool {
	return inj == nil || !inj.portDown[port]
}

// PortDead reports whether the port's link failed permanently.
func (inj *Injector) PortDead(port int) bool {
	return inj != nil && inj.portDead[port]
}

// CrosspointDead reports whether the crossbar can no longer connect in→out.
func (inj *Injector) CrosspointDead(in, out int) bool {
	return inj != nil && inj.deadX[[2]int{in, out}]
}

// PairDown reports whether traffic in→out cannot move right now: an endpoint
// link is down or the crosspoint is dead.
func (inj *Injector) PairDown(in, out int) bool {
	if inj == nil {
		return false
	}
	return inj.portDown[in] || inj.portDown[out] || inj.deadX[[2]int{in, out}]
}

// PairBlocked reports whether traffic in→out can never move again: a
// permanently failed endpoint link or a dead crosspoint. Messages for a
// blocked pair must be dropped, not retried.
func (inj *Injector) PairBlocked(in, out int) bool {
	if inj == nil {
		return false
	}
	return inj.portDead[in] || inj.portDead[out] || inj.deadX[[2]int{in, out}]
}

// --- stochastic draws (all nil-safe; a zero probability consumes no
// randomness, so enabling one fault class never shifts another's stream) ---

// DrawCorrupt decides whether one transferred payload arrives corrupted.
func (inj *Injector) DrawCorrupt() bool {
	if inj == nil || inj.plan.CorruptProb == 0 {
		return false
	}
	if inj.rngCorrupt.Float64() < inj.plan.CorruptProb {
		inj.counters.Corrupted++
		return true
	}
	return false
}

// DrawRequestLoss decides whether one scheduler-request token is lost.
func (inj *Injector) DrawRequestLoss() bool {
	if inj == nil || inj.plan.RequestLossProb == 0 {
		return false
	}
	if inj.rngRequest.Float64() < inj.plan.RequestLossProb {
		inj.counters.RequestsLost++
		return true
	}
	return false
}

// DrawGrantLoss decides whether one scheduler-grant token is lost.
func (inj *Injector) DrawGrantLoss() bool {
	if inj == nil || inj.plan.GrantLossProb == 0 {
		return false
	}
	if inj.rngGrant.Float64() < inj.plan.GrantLossProb {
		inj.counters.GrantsLost++
		return true
	}
	return false
}

// RetryDelay returns the NIC retry-timer delay for attempt number `attempt`
// (0-based), following the plan's exponential backoff.
func (inj *Injector) RetryDelay(attempt int) sim.Time {
	if inj == nil {
		return Backoff(0, 0, attempt)
	}
	return Backoff(inj.plan.RetryBase, inj.plan.RetryCap, attempt)
}

// Counters returns the injected-fault tallies so far.
func (inj *Injector) Counters() Counters {
	if inj == nil {
		return Counters{}
	}
	return inj.counters
}

// DegradedTime returns the total simulated time (up to now) during which at
// least one fault was active — the run's time in degraded mode.
func (inj *Injector) DegradedTime() sim.Time {
	if inj == nil {
		return 0
	}
	total := inj.degradedTotal
	if inj.activeFaults > 0 {
		total += inj.eng.Now() - inj.degradedSince
	}
	return total
}
