package fault

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzPlan feeds arbitrary text to the fault-plan spec parser. The parser
// must never panic; when it accepts an input, the resulting plan must pass
// Validate (Parse promises a validated plan) and survive a String/Parse
// round trip unchanged.
func FuzzPlan(f *testing.F) {
	seeds := []string{
		"",
		"seed=7",
		"corrupt=0.01",
		"mtbf=50us,mttr=5us",
		"seed=3,corrupt=0.005,reqloss=0.01,grantloss=0.02,retry=100,retrycap=1600",
		"link=3@10us",
		"link=3@10us+5us",
		"xpoint=2:9@1us",
		"seed=1,mtbf=200us,mttr=2us,link=0@5us+1us,link=7@80us,xpoint=1:2@3us",
		"corrupt=1.5",
		"link=3",
		"xpoint=a:b@1us",
		"seed=-1,corrupt=1",
		"retry=1h,retrycap=2h",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		// Pathologically long inputs only test the allocator.
		if len(spec) > 4096 {
			t.Skip()
		}
		p, err := Parse(spec)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted a plan that fails Validate: %v", spec, err)
		}
		// Exotic float spellings ("1e-300", hex floats) can render to a form
		// that parses back to a bit-different value; the canonical form must
		// still be stable from the second pass on.
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", spec, canon, err)
		}
		p3, err := Parse(p2.String())
		if err != nil {
			t.Fatalf("second canonical form %q does not re-parse: %v", p2.String(), err)
		}
		if !reflect.DeepEqual(p2, p3) {
			t.Fatalf("canonical form is not a fixed point:\n  spec: %q\n  p2:   %+v\n  p3:   %+v", spec, p2, p3)
		}
		if strings.Contains(canon, ",,") || strings.HasPrefix(canon, ",") || strings.HasSuffix(canon, ",") {
			t.Fatalf("malformed canonical form %q", canon)
		}
	})
}
