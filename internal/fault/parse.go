package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pmsnet/internal/sim"
)

// Parse builds a Plan from a compact textual spec — the format of the
// pmsim --faults flag. The spec is a comma-separated list of key=value
// items:
//
//	seed=7                 random-stream seed (default 1)
//	mtbf=50us mttr=5us     stochastic per-port link failures
//	corrupt=0.01           payload-corruption probability
//	reqloss=0.05           scheduler-request loss probability
//	grantloss=0.02         scheduler-grant loss probability
//	retry=200ns            NIC retry-timer base
//	retrycap=3200ns        NIC retry-timer backoff cap
//	link=3@10us            port 3's link fails permanently at 10 us
//	link=3@10us+5us        ... and repairs 5 us later (transient)
//	xpoint=2:9@1us         crosspoint 2->9 dies at 1 us
//
// Durations accept Go syntax ("50us", "200ns") or a bare integer nanosecond
// count. An empty spec parses to the inactive zero plan. The returned plan
// is already validated.
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, item := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == ' ' }) {
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("fault: item %q is not key=value", item)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "mtbf":
			p.LinkMTBF, err = parseDur(val)
		case "mttr":
			p.LinkMTTR, err = parseDur(val)
		case "corrupt":
			p.CorruptProb, err = strconv.ParseFloat(val, 64)
		case "reqloss":
			p.RequestLossProb, err = strconv.ParseFloat(val, 64)
		case "grantloss":
			p.GrantLossProb, err = strconv.ParseFloat(val, 64)
		case "retry":
			p.RetryBase, err = parseDur(val)
		case "retrycap":
			p.RetryCap, err = parseDur(val)
		case "link":
			var lf LinkFault
			lf, err = parseLinkFault(val)
			p.Links = append(p.Links, lf)
		case "xpoint":
			var xf CrosspointFault
			xf, err = parseCrosspointFault(val)
			p.Crosspoints = append(p.Crosspoints, xf)
		default:
			return nil, fmt.Errorf("fault: unknown key %q in %q", key, item)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: bad value in %q: %w", item, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseDur accepts Go duration syntax or a bare integer nanosecond count and
// returns a simulation time.
func parseDur(s string) (sim.Time, error) {
	if ns, err := strconv.ParseInt(s, 10, 64); err == nil {
		if ns < 0 {
			return 0, fmt.Errorf("negative duration %d", ns)
		}
		return sim.Time(ns), nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %v", d)
	}
	return sim.Time(d.Nanoseconds()), nil
}

// parseLinkFault parses PORT@AT or PORT@AT+DUR.
func parseLinkFault(s string) (LinkFault, error) {
	portStr, when, ok := strings.Cut(s, "@")
	if !ok {
		return LinkFault{}, fmt.Errorf("want PORT@AT or PORT@AT+DUR, got %q", s)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return LinkFault{}, err
	}
	atStr, durStr, transient := strings.Cut(when, "+")
	at, err := parseDur(atStr)
	if err != nil {
		return LinkFault{}, err
	}
	lf := LinkFault{Port: port, At: at}
	if transient {
		if lf.For, err = parseDur(durStr); err != nil {
			return LinkFault{}, err
		}
		if lf.For == 0 {
			return LinkFault{}, fmt.Errorf("transient link fault %q needs a positive duration", s)
		}
	}
	return lf, nil
}

// parseCrosspointFault parses IN:OUT@AT.
func parseCrosspointFault(s string) (CrosspointFault, error) {
	ports, atStr, ok := strings.Cut(s, "@")
	if !ok {
		return CrosspointFault{}, fmt.Errorf("want IN:OUT@AT, got %q", s)
	}
	inStr, outStr, ok := strings.Cut(ports, ":")
	if !ok {
		return CrosspointFault{}, fmt.Errorf("want IN:OUT@AT, got %q", s)
	}
	in, err := strconv.Atoi(inStr)
	if err != nil {
		return CrosspointFault{}, err
	}
	out, err := strconv.Atoi(outStr)
	if err != nil {
		return CrosspointFault{}, err
	}
	at, err := parseDur(atStr)
	if err != nil {
		return CrosspointFault{}, err
	}
	return CrosspointFault{In: in, Out: out, At: at}, nil
}

// String renders the plan in the Parse format (canonical key order), so that
// Parse(p.String()) reproduces the plan.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var items []string
	add := func(format string, args ...any) { items = append(items, fmt.Sprintf(format, args...)) }
	if p.Seed != 0 {
		add("seed=%d", p.Seed)
	}
	if p.LinkMTBF > 0 {
		add("mtbf=%d", int64(p.LinkMTBF))
	}
	if p.LinkMTTR > 0 {
		add("mttr=%d", int64(p.LinkMTTR))
	}
	if p.CorruptProb > 0 {
		add("corrupt=%s", strconv.FormatFloat(p.CorruptProb, 'g', -1, 64))
	}
	if p.RequestLossProb > 0 {
		add("reqloss=%s", strconv.FormatFloat(p.RequestLossProb, 'g', -1, 64))
	}
	if p.GrantLossProb > 0 {
		add("grantloss=%s", strconv.FormatFloat(p.GrantLossProb, 'g', -1, 64))
	}
	if p.RetryBase > 0 {
		add("retry=%d", int64(p.RetryBase))
	}
	if p.RetryCap > 0 {
		add("retrycap=%d", int64(p.RetryCap))
	}
	links := append([]LinkFault(nil), p.Links...)
	sort.SliceStable(links, func(i, j int) bool { return links[i].At < links[j].At })
	for _, l := range links {
		if l.For > 0 {
			add("link=%d@%d+%d", l.Port, int64(l.At), int64(l.For))
		} else {
			add("link=%d@%d", l.Port, int64(l.At))
		}
	}
	xs := append([]CrosspointFault(nil), p.Crosspoints...)
	sort.SliceStable(xs, func(i, j int) bool { return xs[i].At < xs[j].At })
	for _, x := range xs {
		add("xpoint=%d:%d@%d", x.In, x.Out, int64(x.At))
	}
	return strings.Join(items, ",")
}
