package fault

import (
	"reflect"
	"testing"

	"pmsnet/internal/sim"
)

func TestBackoffTable(t *testing.T) {
	cases := []struct {
		base, cap sim.Time
		attempt   int
		want      sim.Time
	}{
		// Defaults (base 200, cap 3200): 200, 400, 800, 1600, 3200, 3200...
		{0, 0, 0, 200},
		{0, 0, 1, 400},
		{0, 0, 2, 800},
		{0, 0, 3, 1600},
		{0, 0, 4, 3200},
		{0, 0, 5, 3200},
		{0, 0, 100, 3200},
		// Custom base/cap.
		{100, 1000, 0, 100},
		{100, 1000, 1, 200},
		{100, 1000, 3, 800},
		{100, 1000, 4, 1000}, // 1600 saturates at the cap
		{100, 1000, 50, 1000},
		// Base above cap: always the cap.
		{5000, 1000, 0, 1000},
		// Huge attempt counts must not overflow.
		{200, 3200, 1 << 20, 3200},
	}
	for _, c := range cases {
		if got := Backoff(c.base, c.cap, c.attempt); got != c.want {
			t.Errorf("Backoff(%d, %d, %d) = %d, want %d", c.base, c.cap, c.attempt, got, c.want)
		}
	}
}

func TestRetryDelayFollowsPlan(t *testing.T) {
	eng := sim.NewEngine()
	inj, err := NewInjector(&Plan{CorruptProb: 0.5, RetryBase: 50, RetryCap: 400}, eng, 4)
	if err != nil || inj == nil {
		t.Fatalf("NewInjector: %v (inj=%v)", err, inj)
	}
	want := []sim.Time{50, 100, 200, 400, 400}
	for attempt, w := range want {
		if got := inj.RetryDelay(attempt); got != w {
			t.Errorf("RetryDelay(%d) = %d, want %d", attempt, got, w)
		}
	}
	// A nil injector still yields the package-default schedule.
	var nilInj *Injector
	if got := nilInj.RetryDelay(2); got != 800 {
		t.Errorf("nil RetryDelay(2) = %d, want 800", got)
	}
}

func TestPlanActive(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Error("nil plan reports active")
	}
	if (&Plan{Seed: 7, RetryBase: 100}).Active() {
		t.Error("plan with only seed/retry knobs reports active")
	}
	actives := []*Plan{
		{LinkMTBF: 1000, LinkMTTR: 10},
		{CorruptProb: 0.1},
		{RequestLossProb: 0.1},
		{GrantLossProb: 0.1},
		{Links: []LinkFault{{Port: 0, At: 5}}},
		{Crosspoints: []CrosspointFault{{In: 0, Out: 1, At: 5}}},
	}
	for i, p := range actives {
		if !p.Active() {
			t.Errorf("plan %d should be active", i)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []*Plan{
		{CorruptProb: -0.1},
		{CorruptProb: 1.5},
		{RequestLossProb: 2},
		{GrantLossProb: -1},
		{LinkMTBF: -5, LinkMTTR: 5},
		{LinkMTBF: 100},              // MTBF without MTTR
		{LinkMTTR: 100},              // MTTR without MTBF
		{RetryBase: 500, RetryCap: 100}, // cap below base
		{Links: []LinkFault{{Port: -1, At: 0}}},
		{Crosspoints: []CrosspointFault{{In: -1, Out: 0, At: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v) should fail validation", i, p)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan should validate: %v", err)
	}
	if err := (&Plan{}).Validate(); err != nil {
		t.Errorf("zero plan should validate: %v", err)
	}
}

func TestNewInjectorFastPath(t *testing.T) {
	eng := sim.NewEngine()
	for _, p := range []*Plan{nil, {}, {Seed: 42, RetryBase: 100, RetryCap: 200}} {
		inj, err := NewInjector(p, eng, 8)
		if err != nil {
			t.Fatalf("inactive plan %+v: %v", p, err)
		}
		if inj != nil {
			t.Fatalf("inactive plan %+v produced a live injector", p)
		}
	}
	// An inactive but structurally broken plan still reports its error.
	if _, err := NewInjector(&Plan{RetryBase: 500, RetryCap: 100}, eng, 8); err == nil {
		t.Error("broken inactive plan should error")
	}
	// Port-range checks need the system size, so they live in NewInjector.
	if _, err := NewInjector(&Plan{Links: []LinkFault{{Port: 8, At: 1}}}, eng, 8); err == nil {
		t.Error("link fault on port 8 of an 8-port system should error")
	}
	if _, err := NewInjector(&Plan{Crosspoints: []CrosspointFault{{In: 2, Out: 9, At: 1}}}, eng, 8); err == nil {
		t.Error("crosspoint fault 2:9 of an 8-port system should error")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	inj.Start()
	if !inj.PortUp(3) || inj.PortDead(3) || inj.CrosspointDead(1, 2) ||
		inj.PairDown(0, 1) || inj.PairBlocked(0, 1) {
		t.Error("nil injector reports faults")
	}
	if inj.DrawCorrupt() || inj.DrawRequestLoss() || inj.DrawGrantLoss() {
		t.Error("nil injector draws faults")
	}
	if inj.Counters() != (Counters{}) {
		t.Error("nil injector counts faults")
	}
	if inj.DegradedTime() != 0 {
		t.Error("nil injector reports degraded time")
	}
}

// TestScriptedFaultTimeline drives a scripted plan under a deterministic
// clock and checks the exact fault state and degraded-time accounting at
// every phase boundary.
func TestScriptedFaultTimeline(t *testing.T) {
	eng := sim.NewEngine()
	plan := &Plan{
		Links: []LinkFault{
			{Port: 1, At: 100, For: 50}, // transient: down [100,150)
			{Port: 2, At: 120},          // permanent from 120
		},
		Crosspoints: []CrosspointFault{{In: 0, Out: 3, At: 40}},
	}
	inj, err := NewInjector(plan, eng, 4)
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		kind string
		a, b int
	}
	var log []ev
	inj.OnPortDown = func(p int, perm bool) {
		b := 0
		if perm {
			b = 1
		}
		log = append(log, ev{"down", p, b})
	}
	inj.OnPortUp = func(p int) { log = append(log, ev{"up", p, 0}) }
	inj.OnCrosspointDead = func(in, out int) { log = append(log, ev{"xdead", in, out}) }
	inj.Start()

	eng.Run(60)
	if !inj.CrosspointDead(0, 3) || !inj.PairBlocked(0, 3) {
		t.Error("crosspoint 0:3 should be dead by t=60")
	}
	if !inj.PortUp(1) || !inj.PortUp(2) {
		t.Error("links should still be up at t=60")
	}
	if got := inj.DegradedTime(); got != 20 {
		t.Errorf("degraded time at t=60 = %d, want 20 (since the crosspoint died at 40)", got)
	}

	eng.Run(130)
	if inj.PortUp(1) || inj.PortDead(1) {
		t.Error("port 1 should be transiently down at t=130")
	}
	if !inj.PairDown(1, 0) || inj.PairBlocked(1, 0) {
		t.Error("pair 1->0 should be down but not blocked at t=130")
	}
	if !inj.PortDead(2) || !inj.PairBlocked(2, 0) || !inj.PairBlocked(0, 2) {
		t.Error("port 2 should be permanently dead at t=130")
	}

	eng.Run(1000)
	if !inj.PortUp(1) {
		t.Error("port 1 should have repaired")
	}
	if !inj.PortDead(2) {
		t.Error("permanent failure must not repair")
	}
	want := []ev{{"xdead", 0, 3}, {"down", 1, 0}, {"down", 2, 1}, {"up", 1, 0}}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("callback log = %v, want %v", log, want)
	}
	c := inj.Counters()
	if c.LinkFailures != 2 || c.LinkRepairs != 1 || c.CrosspointDeaths != 1 {
		t.Errorf("counters = %+v, want 2 failures / 1 repair / 1 crosspoint death", c)
	}
	// The crosspoint death and the permanent link failure never end, so the
	// run is degraded from t=40 through the clock's final value — the last
	// event (port 1's repair at t=150): 150 - 40 = 110.
	if got := inj.DegradedTime(); got != 110 {
		t.Errorf("degraded time after drain = %d, want 110", got)
	}
}

// TestInjectorDeterminism checks that two injectors with the same plan make
// identical draw sequences, and a different seed makes a different one.
func TestInjectorDeterminism(t *testing.T) {
	plan := &Plan{Seed: 7, CorruptProb: 0.3, RequestLossProb: 0.2, GrantLossProb: 0.1}
	draw := func(p *Plan) [3][]bool {
		inj, err := NewInjector(p, sim.NewEngine(), 4)
		if err != nil {
			t.Fatal(err)
		}
		var out [3][]bool
		for i := 0; i < 200; i++ {
			out[0] = append(out[0], inj.DrawCorrupt())
			out[1] = append(out[1], inj.DrawRequestLoss())
			out[2] = append(out[2], inj.DrawGrantLoss())
		}
		return out
	}
	a, b := draw(plan), draw(plan)
	if !reflect.DeepEqual(a, b) {
		t.Error("same plan produced different draw sequences")
	}
	other := *plan
	other.Seed = 8
	if reflect.DeepEqual(a, draw(&other)) {
		t.Error("different seeds produced identical draw sequences")
	}
}

// TestStreamsIndependent checks that each fault class draws from its own
// random stream: enabling or exercising one class never shifts another's
// sequence, and zero-probability draws consume no randomness at all.
func TestStreamsIndependent(t *testing.T) {
	corruptOnly := &Plan{Seed: 3, CorruptProb: 0.4}
	both := &Plan{Seed: 3, CorruptProb: 0.4, RequestLossProb: 0.5}

	seqA := corruptSeq(t, corruptOnly, false)
	// Same plan, but with request-loss draws interleaved between corrupt
	// draws: CorruptProb's stream must not notice.
	seqB := corruptSeq(t, both, true)
	if !reflect.DeepEqual(seqA, seqB) {
		t.Error("interleaved request-loss draws shifted the corruption stream")
	}
}

func corruptSeq(t *testing.T, p *Plan, interleave bool) []bool {
	t.Helper()
	inj, err := NewInjector(p, sim.NewEngine(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var out []bool
	for i := 0; i < 200; i++ {
		if interleave {
			inj.DrawRequestLoss()
			inj.DrawGrantLoss() // zero probability: must consume nothing
		}
		out = append(out, inj.DrawCorrupt())
	}
	return out
}

// TestOverlappingFaultsMerge checks that a second failure of an
// already-down port neither double-counts nor double-repairs.
func TestOverlappingFaultsMerge(t *testing.T) {
	eng := sim.NewEngine()
	plan := &Plan{Links: []LinkFault{
		{Port: 0, At: 10, For: 100}, // down [10,110)
		{Port: 0, At: 50, For: 10},  // swallowed by the first
	}}
	inj, err := NewInjector(plan, eng, 2)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	eng.Run(70)
	if inj.PortUp(0) {
		t.Error("port 0 should still be down at t=70 despite the nested fault's repair")
	}
	eng.Run(1000)
	c := inj.Counters()
	if c.LinkFailures != 1 || c.LinkRepairs != 1 {
		t.Errorf("counters = %+v, want exactly 1 failure and 1 repair", c)
	}
	if got := inj.DegradedTime(); got != 100 {
		t.Errorf("degraded time = %d, want 100", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"seed=7",
		"corrupt=0.01",
		"mtbf=50us,mttr=5us",
		"seed=3,corrupt=0.005,reqloss=0.01,grantloss=0.02,retry=100,retrycap=1600",
		"link=3@10000",
		"link=3@10us+5us",
		"xpoint=2:9@1us",
		"seed=1,mtbf=200us,mttr=2us,link=0@5us+1us,link=7@80us,xpoint=1:2@3us",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
			continue
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Errorf("re-Parse(%q -> %q): %v", spec, p.String(), err)
			continue
		}
		if !reflect.DeepEqual(p, p2) {
			t.Errorf("round trip of %q changed the plan:\n  first:  %+v\n  second: %+v", spec, p, p2)
		}
	}
}

func TestParseValues(t *testing.T) {
	p, err := Parse("seed=9,mtbf=50us,mttr=5us,corrupt=0.01,reqloss=0.02,grantloss=0.03,retry=100ns,retrycap=1600,link=3@10us+5us,xpoint=2:1@1us")
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{
		Seed:            9,
		LinkMTBF:        50 * sim.Microsecond,
		LinkMTTR:        5 * sim.Microsecond,
		CorruptProb:     0.01,
		RequestLossProb: 0.02,
		GrantLossProb:   0.03,
		RetryBase:       100,
		RetryCap:        1600,
		Links:           []LinkFault{{Port: 3, At: 10 * sim.Microsecond, For: 5 * sim.Microsecond}},
		Crosspoints:     []CrosspointFault{{In: 2, Out: 1, At: sim.Microsecond}},
	}
	if !reflect.DeepEqual(p, want) {
		t.Errorf("Parse = %+v, want %+v", p, want)
	}
	if !p.Active() {
		t.Error("parsed plan should be active")
	}
}

func TestParseRejections(t *testing.T) {
	bad := []string{
		"bogus",               // not key=value
		"speed=1",             // unknown key
		"seed=abc",            // bad int
		"corrupt=lots",        // bad float
		"corrupt=1.5",         // fails validation
		"mtbf=50us",           // MTBF without MTTR
		"retry=-5",            // negative duration
		"link=3",              // missing @AT
		"link=x@10",           // bad port
		"link=3@10+0",         // zero-duration transient
		"xpoint=2@1us",        // missing :OUT
		"xpoint=a:b@1us",      // bad ports
		"retry=500,retrycap=100", // cap below base
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}
