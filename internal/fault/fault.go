// Package fault provides a deterministic, seeded fault-event layer for the
// simulated interconnect. A Plan declares which hardware faults occur —
// transient or permanent link failures (stochastic MTBF/MTTR processes or
// scripted events), payload corruption detected by the receiving NIC's CRC,
// lost scheduler request/grant tokens, and dead crossbar crosspoints — and an
// Injector realizes the plan against a sim.Engine so that a faulty run stays
// a pure function of (model, workload, seed, plan).
//
// The zero Plan is inactive: NewInjector returns a nil Injector for it, so a
// fault-free run schedules no extra events and is bit-identical to a run that
// never imported this package.
package fault

import (
	"fmt"

	"pmsnet/internal/sim"
)

// Default retry-timer parameters: a NIC that loses a control token or a CRC
// check re-tries after RetryBase, doubling up to RetryCap (exponential
// backoff). 200 ns is 2.5 scheduler passes at 128 ports — long enough that a
// slow grant is not mistaken for a lost one.
const (
	DefaultRetryBase sim.Time = 200
	DefaultRetryCap  sim.Time = 3200
)

// LinkFault is a scripted failure of one port's serial link. The link goes
// down at At and repairs after For; For == 0 means the failure is permanent
// (the port never comes back, and its traffic is dropped).
type LinkFault struct {
	Port int
	At   sim.Time
	For  sim.Time
}

// CrosspointFault is a scripted permanent death of one crossbar crosspoint:
// from At on, input port In can never be connected to output port Out, and
// any cached configuration using the crosspoint is invalid.
type CrosspointFault struct {
	In, Out int
	At      sim.Time
}

// Plan declares the faults injected into one run. The zero value injects
// nothing.
type Plan struct {
	// Seed feeds the plan's random streams; independent of the workload seed.
	Seed int64

	// LinkMTBF/LinkMTTR drive a stochastic per-port failure process: each
	// port's link fails after an exponential time with mean LinkMTBF and
	// repairs after an exponential time with mean LinkMTTR, forever. Both
	// must be set together; these failures are always transient.
	LinkMTBF sim.Time
	LinkMTTR sim.Time

	// CorruptProb is the probability that one transferred payload (a TDM
	// slot payload, or a whole message in the store-and-forward baselines)
	// arrives corrupted. The receiving NIC's CRC detects it and the payload
	// is retransmitted.
	CorruptProb float64

	// RequestLossProb / GrantLossProb are the probabilities that one
	// scheduler request or grant token is lost on its control line. The NIC
	// re-sends after a timeout with exponential backoff.
	RequestLossProb float64
	GrantLossProb   float64

	// RetryBase / RetryCap parameterize the NIC retry timer; zero means the
	// package defaults.
	RetryBase sim.Time
	RetryCap  sim.Time

	// Links and Crosspoints script deterministic fault events.
	Links       []LinkFault
	Crosspoints []CrosspointFault
}

// Active reports whether the plan injects anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.LinkMTBF > 0 || p.CorruptProb > 0 ||
		p.RequestLossProb > 0 || p.GrantLossProb > 0 ||
		len(p.Links) > 0 || len(p.Crosspoints) > 0
}

// withDefaults fills the retry-timer defaults.
func (p Plan) withDefaults() Plan {
	if p.RetryBase == 0 {
		p.RetryBase = DefaultRetryBase
	}
	if p.RetryCap == 0 {
		p.RetryCap = DefaultRetryCap
	}
	return p
}

// Validate reports the first structural error in the plan: probabilities
// outside [0,1], negative times, an MTBF without an MTTR, or malformed
// scripted events. Port ranges are checked against N by NewInjector, which
// knows the system size.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"corrupt", p.CorruptProb},
		{"reqloss", p.RequestLossProb},
		{"grantloss", p.GrantLossProb},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s probability %g outside [0,1]", pr.name, pr.v)
		}
	}
	if p.LinkMTBF < 0 || p.LinkMTTR < 0 {
		return fmt.Errorf("fault: negative MTBF/MTTR (%v, %v)", p.LinkMTBF, p.LinkMTTR)
	}
	if p.LinkMTBF > 0 && p.LinkMTTR == 0 {
		return fmt.Errorf("fault: link MTBF %v needs a positive MTTR", p.LinkMTBF)
	}
	if p.LinkMTTR > 0 && p.LinkMTBF == 0 {
		return fmt.Errorf("fault: link MTTR %v needs a positive MTBF", p.LinkMTTR)
	}
	if p.RetryBase < 0 || p.RetryCap < 0 {
		return fmt.Errorf("fault: negative retry timer (%v, %v)", p.RetryBase, p.RetryCap)
	}
	if p.RetryBase > 0 && p.RetryCap > 0 && p.RetryCap < p.RetryBase {
		return fmt.Errorf("fault: retry cap %v below base %v", p.RetryCap, p.RetryBase)
	}
	for i, l := range p.Links {
		if l.Port < 0 {
			return fmt.Errorf("fault: link fault %d has negative port %d", i, l.Port)
		}
		if l.At < 0 || l.For < 0 {
			return fmt.Errorf("fault: link fault %d has negative time (%v, %v)", i, l.At, l.For)
		}
	}
	for i, x := range p.Crosspoints {
		if x.In < 0 || x.Out < 0 {
			return fmt.Errorf("fault: crosspoint fault %d has negative port (%d:%d)", i, x.In, x.Out)
		}
		if x.At < 0 {
			return fmt.Errorf("fault: crosspoint fault %d at negative time %v", i, x.At)
		}
	}
	return nil
}

// Backoff returns the exponential-backoff delay for retry number `attempt`
// (0-based): base << attempt, saturating at cap. It never overflows.
func Backoff(base, cap sim.Time, attempt int) sim.Time {
	if base <= 0 {
		base = DefaultRetryBase
	}
	if cap <= 0 {
		cap = DefaultRetryCap
	}
	d := base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}
