// Package voq implements an input-queued cell switch with virtual output
// queues and iSLIP arbitration — the scheduler that became the standard for
// crossbar routers shortly after the paper's era (McKeown, "The iSLIP
// Scheduling Algorithm for Input-Queued Switches", 1999).
//
// This baseline is NOT part of the paper's evaluation; it is included so the
// predictive multiplexed switch can be judged against the design that
// actually won in packet switching. The contrast is instructive: iSLIP
// recomputes a maximal matching from scratch every cell time (paying
// per-cell arbitration but adapting instantly), while the TDM switch
// amortizes scheduling over cached connections (paying multiplexing dilution
// but nothing per message once a connection is cached).
//
// Model: time is slotted in cell times (the serialization time of one cell,
// 64 bytes = 80 ns at 6.4 Gb/s). Each cell time, the switch runs the
// three-phase iSLIP handshake (request, rotating-priority grant,
// rotating-priority accept; pointers advance only on first-iteration
// matches) over the VOQ occupancy, then matched inputs transfer one cell.
// Arbitration is pipelined one cell time ahead, as in the hardware, so it
// adds latency but not occupancy. The path to and from the digital switch
// costs the same serdes/wire/NIC delays as the wormhole baseline.
package voq

import (
	"fmt"

	"pmsnet/internal/fault"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/nic"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Config parameterizes the iSLIP switch.
type Config struct {
	// N is the processor count.
	N int
	// CellBytes is the fixed cell payload; zero means 64 (one 80 ns cell
	// time at the paper's line rate).
	CellBytes int
	// Iterations is the number of iSLIP iterations per cell time; zero
	// means 1 (the classic single-iteration iSLIP).
	Iterations int
	// Link is the serial-link model; zero value means link.Paper().
	Link link.Model
	// Horizon bounds simulated time; zero means netmodel.DefaultHorizon.
	Horizon sim.Time
	// Faults, when non-nil and active, injects link failures and corrupted
	// cells per the plan; nil leaves the run bit-identical to a fault-free
	// one.
	Faults *fault.Plan
	// Probe, when non-nil, receives the run's observability event stream.
	Probe *probe.Probe
}

func (c Config) withDefaults() Config {
	if c.CellBytes == 0 {
		c.CellBytes = 64
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
	if c.Link.BitsPerSecond == 0 {
		c.Link = link.Paper()
	}
	if c.Horizon == 0 {
		c.Horizon = netmodel.DefaultHorizon
	}
	return c
}

// Network is the iSLIP VOQ baseline.
type Network struct {
	cfg Config
}

// New builds an iSLIP switch.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 1 {
		return nil, fmt.Errorf("voq: need at least 2 processors, got %d", cfg.N)
	}
	if cfg.CellBytes <= 0 {
		return nil, fmt.Errorf("voq: cell size %d must be positive", cfg.CellBytes)
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("voq: iterations %d must be positive", cfg.Iterations)
	}
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	return &Network{cfg: cfg}, nil
}

// Name implements netmodel.Network.
func (n *Network) Name() string {
	if n.cfg.Iterations == 1 {
		return "voq-islip"
	}
	return fmt.Sprintf("voq-islip/i=%d", n.cfg.Iterations)
}

type run struct {
	cfg       Config
	eng       *sim.Engine
	driver    *netmodel.Driver
	grantPtr  []int
	acceptPtr []int
	ticker    *sim.Ticker
	cellTime  sim.Time
	// outPipe is the switch-to-destination latency plus NIC receive.
	outPipe sim.Time
	stats   metrics.NetStats
	probe   *probe.Probe
}

// Run implements netmodel.Network.
func (n *Network) Run(wl *traffic.Workload) (metrics.Result, error) {
	eng := sim.NewEngine()
	lm := n.cfg.Link
	r := &run{
		cfg:       n.cfg,
		eng:       eng,
		grantPtr:  make([]int, n.cfg.N),
		acceptPtr: make([]int, n.cfg.N),
		cellTime:  lm.SerializationTime(n.cfg.CellBytes),
		outPipe:   lm.SerializeNs + lm.WireNs + lm.DeserializeNs + nic.RecvOverhead,
		probe:     n.cfg.Probe,
	}
	driver, err := netmodel.NewDriver(eng, lm, wl, netmodel.Hooks{
		OnIdle: func() { r.ticker.Stop() },
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r.driver = driver
	if n.cfg.Probe != nil {
		driver.SetProbe(n.cfg.Probe)
	}
	inj, err := fault.NewInjector(n.cfg.Faults, eng, n.cfg.N)
	if err != nil {
		return metrics.Result{}, err
	}
	if inj != nil {
		inj.SetProbe(n.cfg.Probe)
		driver.AttachFaults(inj)
		inj.Start()
	}
	r.ticker = eng.NewTicker(r.cellTime, "voq-cell", r.onCell)
	// The first cell slot starts after one input-pipe latency (cells must
	// reach the switch) plus one cell time of pipelined arbitration.
	r.ticker.StartAt(lm.PipeLatency() + r.cellTime)
	driver.Start()
	return driver.Finish(n.Name(), n.cfg.Horizon, r.stats)
}

// onCell runs one iSLIP arbitration and transfers the matched cells.
func (r *run) onCell() {
	n := r.cfg.N
	r.stats.SlotsTotal++
	netmodel.EmitSlotStart(r.probe, r.eng.Now(), 0, r.cellTime)
	if r.probe != nil {
		r.probe.Emit(probe.Event{Kind: probe.SchedPassBegin, At: r.eng.Now()})
	}
	matchIn := make([]int, n) // matchIn[i] = output matched to input i, or -1
	matchOut := make([]int, n)
	for i := 0; i < n; i++ {
		matchIn[i] = -1
		matchOut[i] = -1
	}

	for iter := 0; iter < r.cfg.Iterations; iter++ {
		// Grant phase: each unmatched output grants the first requesting
		// unmatched input at or after its grant pointer.
		grants := make([]int, n) // grants[i] collects one grant per output; index by output
		for j := 0; j < n; j++ {
			grants[j] = -1
			if matchOut[j] != -1 {
				continue
			}
			for step := 0; step < n; step++ {
				i := (r.grantPtr[j] + step) % n
				if matchIn[i] != -1 || i == j {
					continue
				}
				if r.driver.Buffers[i].HasFor(j) {
					grants[j] = i
					break
				}
			}
		}
		// Accept phase: each input accepts the granting output closest to
		// its accept pointer.
		accepted := false
		for i := 0; i < n; i++ {
			if matchIn[i] != -1 {
				continue
			}
			best := -1
			for step := 0; step < n; step++ {
				j := (r.acceptPtr[i] + step) % n
				if grants[j] == i {
					best = j
					break
				}
			}
			if best == -1 {
				continue
			}
			matchIn[i] = best
			matchOut[best] = i
			accepted = true
			if iter == 0 {
				// Pointers move only on first-iteration matches — the rule
				// that gives iSLIP its desynchronization and fairness.
				r.grantPtr[best] = (i + 1) % n
				r.acceptPtr[i] = (best + 1) % n
			}
		}
		if !accepted {
			break
		}
	}

	slotStart := r.eng.Now()
	if r.probe != nil {
		matches := 0
		for i := 0; i < n; i++ {
			if matchIn[i] != -1 {
				matches++
			}
		}
		r.probe.Emit(probe.Event{Kind: probe.SchedPassEnd, At: slotStart,
			Aux: int64(matches)})
	}
	used := false
	for i := 0; i < n; i++ {
		j := matchIn[i]
		if j == -1 {
			continue
		}
		var injected *nic.Message
		if r.probe != nil {
			injected = r.driver.HeadUntransmitted(i, j)
		}
		sent, done := r.driver.Buffers[i].TransmitTo(j, r.cfg.CellBytes)
		if sent == 0 {
			continue
		}
		used = true
		if injected != nil {
			r.probe.Emit(probe.Event{Kind: probe.MsgInjected, At: slotStart,
				Src: int32(i), Dst: int32(j), ID: int64(injected.ID)})
		}
		if done != nil {
			deliverAt := slotStart + r.cellTime + r.outPipe
			m := done
			r.eng.At(deliverAt, "voq-deliver", func() { r.driver.Arrive(m) })
		}
	}
	if used {
		r.stats.SlotsUsed++
	}
	netmodel.EmitSlotEnd(r.probe, slotStart, 0, used)
}
