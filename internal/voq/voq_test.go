package voq

import (
	"testing"
	"testing/quick"

	"pmsnet/internal/traffic"
)

func mustNew(t *testing.T, cfg Config) *Network {
	t.Helper()
	nw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewValidation(t *testing.T) {
	for i, cfg := range []Config{
		{N: 1},
		{N: 8, CellBytes: -1},
		{N: 8, Iterations: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	if mustNew(t, Config{N: 8}).Name() != "voq-islip" {
		t.Fatal("name wrong")
	}
	if mustNew(t, Config{N: 8, Iterations: 3}).Name() != "voq-islip/i=3" {
		t.Fatal("multi-iteration name wrong")
	}
}

// TestSingleMessageTiming pins one uncontended 64-byte message: the cell
// reaches the switch after the 80 ns input pipe, arbitration is pipelined
// one 80 ns cell time, the cell transfers during the next cell slot
// (80 ns), then crosses the 80 ns output pipe and the 10 ns NIC receive:
// delivery at 160 + 80 + 90 = 330 ns.
func TestSingleMessageTiming(t *testing.T) {
	nw := mustNew(t, Config{N: 4})
	wl := &traffic.Workload{Name: "one", N: 4,
		Programs: []traffic.Program{{Ops: []traffic.Op{traffic.Send(1, 64)}}, {}, {}, {}}}
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyMax != 330 {
		t.Fatalf("latency = %v, want 330ns", res.LatencyMax)
	}
}

func TestIncastSharesOutputFairly(t *testing.T) {
	// Three inputs flooding one output: iSLIP's rotating pointers must
	// serve them round-robin, so per-source delivered counts stay equal.
	const n, msgs = 4, 30
	progs := make([]traffic.Program, n)
	for p := 0; p < 3; p++ {
		var ops []traffic.Op
		for m := 0; m < msgs; m++ {
			ops = append(ops, traffic.Send(3, 64))
		}
		progs[p] = traffic.Program{Ops: ops}
	}
	wl := &traffic.Workload{Name: "incast", N: n, Programs: progs}
	res, err := mustNew(t, Config{N: n}).Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 3*msgs {
		t.Fatalf("delivered %d of %d", res.Messages, 3*msgs)
	}
	// Perfect rotation keeps per-source latency nearly identical.
	if res.FairnessJain < 0.99 {
		t.Fatalf("Jain fairness = %v, want ~1 under round-robin pointers", res.FairnessJain)
	}
}

func TestPermutationTrafficSaturates(t *testing.T) {
	// Under a pure permutation, iSLIP matches every input every cell time:
	// near-100% throughput (its celebrated property).
	const n = 16
	wl := traffic.Shift(n, 64, 50, 1)
	res, err := mustNew(t, Config{N: n}).Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency < 0.7 {
		t.Fatalf("efficiency = %v, want near line rate on a permutation", res.Efficiency)
	}
}

func TestAllWorkloadsComplete(t *testing.T) {
	nw := mustNew(t, Config{N: 16})
	for _, wl := range []*traffic.Workload{
		traffic.Scatter(16, 64),
		traffic.Scatter(16, 100), // non-multiple of the cell size
		traffic.OrderedMesh(16, 256, 3),
		traffic.RandomMesh(16, 8, 5, 1),
		traffic.AllToAll(16, 32),
		traffic.TwoPhase(16, 64, 2),
	} {
		res, err := nw.Run(wl)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if res.Messages != wl.MessageCount() || res.Bytes != wl.TotalBytes() {
			t.Fatalf("%s: conservation violated", wl.Name)
		}
	}
}

func TestMoreIterationsNeverHurt(t *testing.T) {
	wl := traffic.RandomMesh(16, 64, 20, 3)
	one, err := mustNew(t, Config{N: 16, Iterations: 1}).Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	four, err := mustNew(t, Config{N: 16, Iterations: 4}).Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if four.Makespan > one.Makespan*11/10 {
		t.Fatalf("4 iterations (%v) should not be materially slower than 1 (%v)",
			four.Makespan, one.Makespan)
	}
}

func TestDeterministic(t *testing.T) {
	nw := mustNew(t, Config{N: 16})
	wl := traffic.RandomMesh(16, 64, 10, 7)
	a, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	b, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatal("runs differ")
	}
}

func TestQuickCompletionAnySeed(t *testing.T) {
	nw := mustNew(t, Config{N: 8})
	f := func(seed int64) bool {
		wl := traffic.RandomMesh(8, 48, 5, seed)
		res, err := nw.Run(wl)
		if err != nil {
			return false
		}
		return res.Messages == wl.MessageCount() && res.LatencyMax >= 330
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
