package circuit

import (
	"testing"
	"testing/quick"

	"pmsnet/internal/traffic"
)

func mustNew(t *testing.T, n int) *Network {
	t.Helper()
	nw, err := New(Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 0}); err == nil {
		t.Fatal("expected error for N=0")
	}
	if mustNew(t, 4).Name() != "circuit" {
		t.Fatal("Name wrong")
	}
}

// TestSingleMessageLatency pins the circuit-establishment cost on a 4-port
// system: the request takes 80 ns to reach the scheduler, scheduling a 4x4
// array takes 10 ns (Table 3 ASIC model; the paper's 80 ns figure is for
// 128x128), the grant takes 80 ns back; then the 8-byte payload serializes
// in 10 ns and crosses the 30+20+0+20+30 = 100 ns pipe, plus the 10 ns NIC
// receive: 170 + 10 + 100 + 10 = 290 ns.
func TestSingleMessageLatency(t *testing.T) {
	nw := mustNew(t, 4)
	wl := &traffic.Workload{Name: "one", N: 4,
		Programs: []traffic.Program{{Ops: []traffic.Op{traffic.Send(1, 8)}}, {}, {}, {}}}
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyMax != 290 {
		t.Fatalf("latency = %v, want 290ns", res.LatencyMax)
	}
}

// TestLargeMessageAmortizesSetup: a 2048-byte message pays the same 170 ns
// setup but streams for 2560 ns, so its latency is 170+2560+100+10 = 2840 ns
// and its efficiency (ideal 2560 / makespan 2840) is ~0.90 — the paper's
// "performance of circuit switching improves when the message size is
// large".
func TestLargeMessageAmortizesSetup(t *testing.T) {
	nw := mustNew(t, 4)
	wl := &traffic.Workload{Name: "big", N: 4,
		Programs: []traffic.Program{{Ops: []traffic.Op{traffic.Send(1, 2048)}}, {}, {}, {}}}
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyMax != 2840 {
		t.Fatalf("latency = %v, want 2840ns", res.LatencyMax)
	}
	if res.Efficiency < 0.87 || res.Efficiency > 0.93 {
		t.Fatalf("efficiency = %v, want ~0.90", res.Efficiency)
	}
}

func TestEfficiencyGrowsWithMessageSize(t *testing.T) {
	nw := mustNew(t, 16)
	var prev float64
	for _, size := range []int{8, 64, 512, 2048} {
		res, err := nw.Run(traffic.Scatter(16, size))
		if err != nil {
			t.Fatal(err)
		}
		if res.Efficiency <= prev {
			t.Fatalf("efficiency at %dB = %v, not above %v: circuit switching must improve with size",
				size, res.Efficiency, prev)
		}
		prev = res.Efficiency
	}
}

func TestOutputContentionQueuesGrants(t *testing.T) {
	nw := mustNew(t, 4)
	wl := &traffic.Workload{Name: "incast", N: 4, Programs: []traffic.Program{
		{Ops: []traffic.Op{traffic.Send(2, 800)}},
		{Ops: []traffic.Op{traffic.Send(2, 800)}},
		{}, {},
	}}
	res, err := nw.Run(wl)
	if err != nil {
		t.Fatal(err)
	}
	// First circuit: granted at 170 (request 80 + schedule 10 + grant 80),
	// data 1000 ns, delivered 170+1000+100+10 = 1280. The output port frees
	// at 170+1000+50 = 1220 (tail clears the fabric), then the second
	// circuit is scheduled (10) and granted (80): data starts at 1310,
	// delivered 1310+1000+110 = 2420.
	if res.LatencyMax != 2420 {
		t.Fatalf("second message latency = %v, want 2420ns", res.LatencyMax)
	}
}

func TestAllWorkloadsComplete(t *testing.T) {
	nw := mustNew(t, 16)
	for _, wl := range []*traffic.Workload{
		traffic.Scatter(16, 64),
		traffic.OrderedMesh(16, 256, 3),
		traffic.RandomMesh(16, 8, 5, 1),
		traffic.TwoPhase(16, 64, 2),
	} {
		res, err := nw.Run(wl)
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if res.Messages != wl.MessageCount() || res.Bytes != wl.TotalBytes() {
			t.Fatalf("%s: delivered %d/%dB of %d/%dB", wl.Name,
				res.Messages, res.Bytes, wl.MessageCount(), wl.TotalBytes())
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	nw := mustNew(t, 16)
	a, _ := nw.Run(traffic.RandomMesh(16, 128, 8, 42))
	b, _ := nw.Run(traffic.RandomMesh(16, 128, 8, 42))
	if a.Makespan != b.Makespan {
		t.Fatalf("runs differ: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestQuickCompletion(t *testing.T) {
	nw := mustNew(t, 8)
	f := func(seed int64) bool {
		wl := traffic.RandomMesh(8, 32, 4, seed)
		res, err := nw.Run(wl)
		if err != nil {
			return false
		}
		return res.Messages == wl.MessageCount() && res.LatencyMax >= 290
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCircuitRandomMesh128(b *testing.B) {
	nw, err := New(Config{N: 128})
	if err != nil {
		b.Fatal(err)
	}
	wl := traffic.RandomMesh(128, 128, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Run(wl); err != nil {
			b.Fatal(err)
		}
	}
}
