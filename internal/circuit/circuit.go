// Package circuit implements the paper's circuit-switching baseline: a
// dedicated end-to-end pipe is established per message and torn down when
// the message completes. In the framework of paper §3, this is TDM with a
// multiplexing degree of one.
//
// Timing model (paper §5): "the delay to schedule a message includes the
// cable delay of 80 ns to send the request, 80 ns to schedule the request,
// and another 80 ns to send the grant back to the NIC. After that, the
// point-to-point delay is 30+20+20+30 ns" — the data stays serial through
// the LVDS/optical crossbar, so no serdes is needed at the switch and the
// propagation through the fabric itself is negligible.
package circuit

import (
	"fmt"

	"pmsnet/internal/core"
	"pmsnet/internal/fabric"
	"pmsnet/internal/fault"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/nic"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Config parameterizes the circuit-switched network.
type Config struct {
	// N is the processor count.
	N int
	// Link is the serial-link model; zero value means link.Paper().
	Link link.Model
	// Horizon bounds simulated time; zero means netmodel.DefaultHorizon.
	Horizon sim.Time
	// Faults, when non-nil and active, injects link failures, corrupted
	// payloads and lost request/grant tokens per the plan; nil leaves the
	// run bit-identical to a fault-free one.
	Faults *fault.Plan
	// Probe, when non-nil, receives the run's observability event stream.
	Probe *probe.Probe
}

func (c Config) withDefaults() Config {
	if c.Link.BitsPerSecond == 0 {
		c.Link = link.Paper()
	}
	if c.Horizon == 0 {
		c.Horizon = netmodel.DefaultHorizon
	}
	return c
}

// Network is the circuit-switching baseline.
type Network struct {
	cfg Config
}

// New builds a circuit-switched network.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.N <= 1 {
		return nil, fmt.Errorf("circuit: need at least 2 processors, got %d", cfg.N)
	}
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	return &Network{cfg: cfg}, nil
}

// Name implements netmodel.Network.
func (n *Network) Name() string { return "circuit" }

type run struct {
	cfg      Config
	eng      *sim.Engine
	driver   *netmodel.Driver
	xbar     *fabric.Crossbar
	cp       *netmodel.ControlPlane
	ports    *netmodel.PortEngine
	schedNs  sim.Time
	dataPipe sim.Time
	// outQueue holds pending circuit requests per output port; messages
	// queue directly (the request token carries no other state).
	outQueue [][]*nic.Message
	outBusy  []bool
	stats    metrics.NetStats
	inj      *fault.Injector
	probe    *probe.Probe

	// Cached ArgHandler method values: the fault-free per-message event
	// chain schedules through these instead of allocating closures.
	requestArrivedFn sim.ArgHandler
	scheduledFn      sim.ArgHandler
	grantArrivedFn   sim.ArgHandler
	deliverFn        sim.ArgHandler
	teardownFn       sim.ArgHandler
	sourceNextFn     sim.ArgHandler
	// Cached resend callbacks for the control plane's token-loss path.
	resendRequestFn func(arg any, attempt int)
	resendGrantFn   func(arg any, attempt int)
}

// Run implements netmodel.Network.
func (n *Network) Run(wl *traffic.Workload) (metrics.Result, error) {
	eng := sim.NewEngine()
	lm := n.cfg.Link
	r := &run{
		cfg:     n.cfg,
		eng:     eng,
		xbar:    fabric.NewCrossbar(n.cfg.N, fabric.LVDS, 0),
		schedNs: core.ASICLatency(n.cfg.N),
		// Source serdes + wire to switch + (LVDS switch: 0) + wire to
		// destination + destination serdes: 30+20+20+30.
		dataPipe: lm.SerializeNs + lm.WireNs + n.xbarDelay() + lm.WireNs + lm.DeserializeNs,
		outQueue: make([][]*nic.Message, n.cfg.N),
		outBusy:  make([]bool, n.cfg.N),
		probe:    n.cfg.Probe,
	}
	r.requestArrivedFn = r.requestArrived
	r.scheduledFn = r.scheduled
	r.grantArrivedFn = r.grantArrived
	r.deliverFn = r.deliver
	r.teardownFn = r.teardown
	r.sourceNextFn = r.sourceNext
	r.resendRequestFn = r.resendRequest
	r.resendGrantFn = r.resendGrant
	driver, err := netmodel.NewDriver(eng, lm, wl, netmodel.Hooks{
		OnEnqueue: func(m *nic.Message) { r.ports.Kick(m.Src) },
	})
	if err != nil {
		return metrics.Result{}, err
	}
	r.driver = driver
	r.ports = netmodel.NewPortEngine(driver, n.cfg.N, r.startMessage)
	if n.cfg.Probe != nil {
		driver.SetProbe(n.cfg.Probe)
	}
	inj, err := fault.NewInjector(n.cfg.Faults, eng, n.cfg.N)
	if err != nil {
		return metrics.Result{}, err
	}
	if inj != nil {
		r.inj = inj
		inj.SetProbe(n.cfg.Probe)
		driver.AttachFaults(inj)
	}
	r.cp = netmodel.NewControlPlane(eng, driver, lm.ControlDelay(), inj)
	if inj != nil {
		inj.Start()
	}
	driver.Start()
	return driver.Finish(n.Name(), n.cfg.Horizon, r.stats)
}

func (n *Network) xbarDelay() sim.Time { return fabric.LVDS.TraversalDelay() }

// startMessage raises a circuit request for a freshly popped message; the
// port engine serializes calls per source.
func (r *run) startMessage(_ int, m *nic.Message) {
	r.requestCircuit(m, 0)
}

// requestCircuit sends the circuit-request token toward the scheduler. With
// fault injection the token can be lost in transit; the NIC detects the
// missing grant by timeout and re-requests after an exponential backoff
// (attempt is the backoff exponent). Fault-free runs take the closure-free
// path: the message pointer rides the event, the handler is cached.
func (r *run) requestCircuit(m *nic.Message, attempt int) {
	// The request token travels to the scheduler over a control line.
	r.cp.SendRequest("request-at-scheduler", r.requestArrivedFn, m, attempt, r.resendRequestFn)
}

func (r *run) resendRequest(arg any, attempt int) {
	r.requestCircuit(arg.(*nic.Message), attempt)
}

// requestArrived queues the request token at the scheduler.
func (r *run) requestArrived(arg any) {
	m := arg.(*nic.Message)
	r.outQueue[m.Dst] = append(r.outQueue[m.Dst], m)
	r.kickOutput(m.Dst)
}

// kickOutput grants the circuit for the next queued request once the output
// port is free.
func (r *run) kickOutput(v int) {
	if r.outBusy[v] || len(r.outQueue[v]) == 0 {
		return
	}
	m := r.outQueue[v][0]
	r.outQueue[v] = r.outQueue[v][1:]
	r.outBusy[v] = true
	r.stats.SchedulerPasses++
	r.stats.Established++
	if r.probe != nil {
		now := r.eng.Now()
		r.probe.Emit(probe.Event{Kind: probe.SchedPassBegin, At: now})
		r.probe.Emit(probe.Event{Kind: probe.ConnEstablished, At: now,
			Src: int32(m.Src), Dst: int32(v)})
		r.probe.Emit(probe.Event{Kind: probe.SchedPassEnd, At: now, Aux: 1})
	}
	// 80 ns to schedule, then the grant token travels back to the NIC.
	r.eng.AfterArg(r.schedNs, "circuit-scheduled", r.scheduledFn, m)
}

// scheduled fires when the scheduler has allocated the circuit; the grant
// token starts its trip back to the source NIC.
func (r *run) scheduled(arg any) {
	m := arg.(*nic.Message)
	r.sendGrant(m, 0)
}

// sendGrant carries the grant token from the scheduler back to the source
// NIC (80 ns control delay). With fault injection the token can be lost; the
// scheduler detects the unused circuit by timeout and re-sends the grant
// after an exponential backoff. The circuit's output port stays reserved
// throughout — a lost grant wastes port time, which is the point.
func (r *run) sendGrant(m *nic.Message, attempt int) {
	r.cp.SendGrant("grant-at-nic", r.grantArrivedFn, m, attempt, r.resendGrantFn)
}

func (r *run) resendGrant(arg any, attempt int) {
	r.sendGrant(arg.(*nic.Message), attempt)
}

// grantArrived starts the transfer: the source NIC holds the circuit and
// streams the whole message through it.
func (r *run) grantArrived(arg any) {
	m := arg.(*nic.Message)
	if r.probe != nil {
		r.probe.Emit(probe.Event{Kind: probe.MsgInjected, At: r.eng.Now(),
			Src: int32(m.Src), Dst: int32(m.Dst), ID: int64(m.ID)})
	}
	ser := r.cfg.Link.SerializationTime(m.Bytes)
	// The last byte leaves the source at +ser and reaches the destination
	// NIC one data-pipe latency later.
	r.eng.AfterArg(ser+r.dataPipe+nic.RecvOverhead, "deliver", r.deliverFn, m)
	// The circuit (and its output port) is held until the tail has cleared
	// the fabric; then it is torn down and the port can be granted again.
	r.eng.AfterArg(ser+r.cfg.Link.SerializeNs+r.cfg.Link.WireNs, "teardown", r.teardownFn, m)
	// The source NIC is free to request its next circuit as soon as it has
	// pushed the last byte into the serializer.
	r.eng.AfterArg(ser+nic.SendOverhead, "source-next", r.sourceNextFn, m)
}

func (r *run) deliver(arg any) {
	r.driver.Arrive(arg.(*nic.Message))
}

func (r *run) teardown(arg any) {
	m := arg.(*nic.Message)
	v := m.Dst
	r.stats.Released++
	if r.probe != nil {
		r.probe.Emit(probe.Event{Kind: probe.ConnReleased, At: r.eng.Now(),
			Src: int32(m.Src), Dst: int32(v)})
	}
	r.outBusy[v] = false
	r.kickOutput(v)
}

func (r *run) sourceNext(arg any) {
	r.ports.Next(arg.(*nic.Message).Src)
}
