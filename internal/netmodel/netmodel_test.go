package netmodel

import (
	"errors"
	"testing"

	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/nic"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

func twoNodeWorkload(ops ...traffic.Op) *traffic.Workload {
	return &traffic.Workload{
		Name:     "test",
		N:        2,
		Programs: []traffic.Program{{Ops: ops}, {}},
	}
}

func TestDriverExecutesSendsWithNICOverhead(t *testing.T) {
	eng := sim.NewEngine()
	var enq []sim.Time
	wl := twoNodeWorkload(traffic.Send(1, 8), traffic.Send(1, 8), traffic.Send(1, 8))
	d, err := NewDriver(eng, link.Paper(), wl, Hooks{
		OnEnqueue: func(m *nic.Message) { enq = append(enq, eng.Now()) },
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.RunAll()
	// Sends are spaced by the 10 ns NIC send overhead.
	want := []sim.Time{0, 10, 20}
	if len(enq) != 3 {
		t.Fatalf("enqueues = %v", enq)
	}
	for i := range want {
		if enq[i] != want[i] {
			t.Fatalf("enqueues = %v, want %v", enq, want)
		}
	}
	if d.Buffers[0].Len() != 3 {
		t.Fatal("messages should be in the buffer")
	}
}

func TestDriverDelayAndDirectives(t *testing.T) {
	eng := sim.NewEngine()
	var flushAt, phaseAt sim.Time
	phaseArg := -1
	wl := &traffic.Workload{
		Name: "test",
		N:    2,
		Programs: []traffic.Program{
			{Ops: []traffic.Op{traffic.Delay(500), traffic.Flush(), traffic.Phase(0), traffic.Send(1, 8)}},
			{},
		},
		StaticPhases: nil,
	}
	// Phase(0) with no static phases fails validation; add one op-free path:
	wl.Programs[0].Ops[2] = traffic.Delay(5)
	d, err := NewDriver(eng, link.Paper(), wl, Hooks{
		OnFlush: func(p int) { flushAt = eng.Now() },
		OnPhase: func(p, ph int) { phaseAt, phaseArg = eng.Now(), ph },
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.RunAll()
	if flushAt != 500 {
		t.Fatalf("flush at %v, want 500", flushAt)
	}
	_ = phaseAt
	_ = phaseArg
	if d.Remaining() != 1 {
		t.Fatalf("Remaining = %d, want 1 (send queued, never delivered)", d.Remaining())
	}
}

func TestDriverPhaseHook(t *testing.T) {
	eng := sim.NewEngine()
	wl := traffic.TwoPhase(4, 8, 1)
	got := map[int]bool{}
	d, err := NewDriver(eng, link.Paper(), wl, Hooks{
		OnPhase: func(p, ph int) { got[ph] = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.RunAll()
	if !got[0] || !got[1] {
		t.Fatalf("phase hooks seen: %v, want both phases", got)
	}
}

func TestDriverRejectsInvalidWorkload(t *testing.T) {
	eng := sim.NewEngine()
	bad := &traffic.Workload{Name: "bad", N: 2, Programs: []traffic.Program{{Ops: []traffic.Op{traffic.Send(0, 8)}}, {}}}
	if _, err := NewDriver(eng, link.Paper(), bad, Hooks{}); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := NewDriver(eng, link.Model{}, twoNodeWorkload(), Hooks{}); err == nil {
		t.Fatal("expected link validation error")
	}
}

func TestDeliverAndFinish(t *testing.T) {
	eng := sim.NewEngine()
	wl := twoNodeWorkload(traffic.Send(1, 800))
	var d *Driver
	idleFired := false
	d, err := NewDriver(eng, link.Paper(), wl, Hooks{
		OnEnqueue: func(m *nic.Message) {
			eng.After(1000, "fake-deliver", func() {
				d.Buffers[0].PopFIFO()
				d.Deliver(m)
			})
		},
		OnIdle: func() { idleFired = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	res, err := d.Finish("fake", DefaultHorizon, metrics.NetStats{})
	if err != nil {
		t.Fatal(err)
	}
	if !idleFired {
		t.Fatal("OnIdle should fire when the last message lands")
	}
	if res.Messages != 1 || res.Makespan != 1000 {
		t.Fatalf("result = %+v", res)
	}
	// 800 B ideal = 1000 ns; makespan 1000 -> efficiency 1.
	if res.Efficiency != 1.0 {
		t.Fatalf("efficiency = %v, want 1.0", res.Efficiency)
	}
}

func TestFinishReportsStall(t *testing.T) {
	eng := sim.NewEngine()
	wl := twoNodeWorkload(traffic.Send(1, 8))
	d, err := NewDriver(eng, link.Paper(), wl, Hooks{}) // nothing ever delivers
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	_, err = d.Finish("dead", DefaultHorizon, metrics.NetStats{})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestDoubleDeliverPanics(t *testing.T) {
	eng := sim.NewEngine()
	wl := twoNodeWorkload(traffic.Send(1, 8), traffic.Send(1, 8))
	var d *Driver
	d, err := NewDriver(eng, link.Paper(), wl, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	eng.RunAll()
	m := d.Buffers[0].PopFIFO()
	eng.At(eng.Now()+1, "x", func() {})
	eng.Step()
	d.Deliver(m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double delivery")
		}
	}()
	d.Deliver(m)
}
