// Shared control-plane components. Every switching model performs the same
// request→grant→transfer handshake over out-of-band control links: tokens
// that take one control delay to propagate and (under fault injection) can be
// lost and re-sent after an exponential backoff; request wires that sample
// NIC queue state one control delay late; per-port source processes that
// serialize a NIC's output; and per-pair queue-depth counters. These types
// extract that machinery so the models keep only their paradigm-specific
// scheduling logic.
package netmodel

import (
	"pmsnet/internal/bitmat"
	"pmsnet/internal/fault"
	"pmsnet/internal/nic"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
)

// ControlPlane models the control links between the NICs and the central
// scheduler: signals propagate in one control delay, and with fault injection
// a token can be lost in flight and re-sent after an exponential backoff.
// Retries are tallied through the driver so the recovery accounting lives in
// one place.
//
// Two loss models coexist, matching the hardware being modeled. Wire-level
// token signaling (the TDM request/grant lines) draws loss at send time — the
// transition either makes it onto the wire or it doesn't — via
// RequestTokenLost/GrantTokenLost plus RetryAfter. Message-style tokens (the
// circuit-switched request/grant round trip) draw loss at arrival time, after
// the propagation delay, via SendRequest/SendGrant. The distinction is
// load-bearing: it fixes where in the event stream the injector's RNG is
// consumed, which fault-run bit-identity depends on.
type ControlPlane struct {
	eng    *sim.Engine
	driver *Driver
	delay  sim.Time
	inj    *fault.Injector
}

// NewControlPlane builds a control plane with the given one-way signal delay.
// inj may be nil (fault-free run).
func NewControlPlane(eng *sim.Engine, driver *Driver, delay sim.Time, inj *fault.Injector) *ControlPlane {
	return &ControlPlane{eng: eng, driver: driver, delay: delay, inj: inj}
}

// Delay returns the one-way control-signal propagation delay.
func (cp *ControlPlane) Delay() sim.Time { return cp.delay }

// After runs f one control delay from now — a bare control signal with no
// loss model (level-sampled lines such as FLUSH correct themselves on the
// next sample, so token loss does not apply).
func (cp *ControlPlane) After(label string, f func()) {
	cp.eng.After(cp.delay, label, f)
}

// RequestTokenLost draws the send-time loss of a request-wire transition.
// Always false on fault-free runs.
func (cp *ControlPlane) RequestTokenLost() bool {
	return cp.inj != nil && cp.inj.DrawRequestLoss()
}

// GrantTokenLost draws the send-time loss of a grant token. Always false on
// fault-free runs.
func (cp *ControlPlane) GrantTokenLost() bool {
	return cp.inj != nil && cp.inj.DrawGrantLoss()
}

// RetryAfter schedules f after the exponential-backoff delay for the given
// attempt. Only meaningful after a *TokenLost draw returned true (which
// implies an injector is attached). The caller counts the retry through
// Driver.CountRetry when it actually re-sends, so conditional retries (the
// queue drained meanwhile) don't inflate the tally.
func (cp *ControlPlane) RetryAfter(attempt int, label string, f func()) {
	cp.eng.After(cp.inj.RetryDelay(attempt), label, f)
}

// SendRequest carries a request token to the scheduler: deliver(arg) runs one
// control delay from now. With fault injection the token can be lost in
// transit — detected by timeout, the sender re-issues via resend(arg,
// attempt+1) after an exponential backoff. Fault-free runs take the
// closure-free path: arg rides the event and deliver is the caller's cached
// handler.
func (cp *ControlPlane) SendRequest(label string, deliver sim.ArgHandler, arg any, attempt int, resend func(arg any, attempt int)) {
	cp.sendToken(label, "request-retry", false, deliver, arg, attempt, resend)
}

// SendGrant carries a grant token back to a NIC, with the same loss/backoff
// semantics as SendRequest.
func (cp *ControlPlane) SendGrant(label string, deliver sim.ArgHandler, arg any, attempt int, resend func(arg any, attempt int)) {
	cp.sendToken(label, "grant-retry", true, deliver, arg, attempt, resend)
}

func (cp *ControlPlane) sendToken(label, retryLabel string, grant bool, deliver sim.ArgHandler, arg any, attempt int, resend func(any, int)) {
	if cp.inj == nil {
		cp.eng.AfterArg(cp.delay, label, deliver, arg)
		return
	}
	cp.eng.After(cp.delay, label, func() {
		var lost bool
		if grant {
			lost = cp.inj.DrawGrantLoss()
		} else {
			lost = cp.inj.DrawRequestLoss()
		}
		if lost {
			cp.eng.After(cp.inj.RetryDelay(attempt), retryLabel, func() {
				cp.driver.CountRetry()
				resend(arg, attempt+1)
			})
			return
		}
		deliver(arg)
	})
}

// RequestWire is the scheduler's view of the NIC request matrix: queue-state
// transitions written through Set appear in View one control delay later.
// Events fire in order, so the view always equals the NIC state one control
// delay ago — wire semantics. Fault reactions that must take effect
// immediately (a failed port's requests vanishing with it) clear the view
// through ClearNow, which keeps the sparse form in sync.
type RequestWire struct {
	eng   *sim.Engine
	delay sim.Time
	label string
	view  *bitmat.Sparse
}

// NewRequestWire builds an n×n request wire with the given propagation delay
// and event label.
func NewRequestWire(eng *sim.Engine, n int, delay sim.Time, label string) *RequestWire {
	return &RequestWire{eng: eng, delay: delay, label: label, view: bitmat.NewSparse(n, n)}
}

// View returns the delayed request matrix (live; do not retain across runs,
// and do not mutate — use Set/ClearNow).
func (w *RequestWire) View() *bitmat.Matrix { return w.view.Matrix() }

// ViewSparse returns the delayed request matrix in sparse form, same aliasing
// rules as View.
func (w *RequestWire) ViewSparse() *bitmat.Sparse { return w.view }

// Set propagates a queue-state transition to the view after the wire delay.
// The written value is the one sampled now.
func (w *RequestWire) Set(u, v int, val bool) {
	w.eng.After(w.delay, w.label, func() {
		if val {
			w.view.Set(u, v)
		} else {
			w.view.Clear(u, v)
		}
	})
}

// ClearNow clears a view bit immediately, bypassing the wire delay — the
// fault path where a failed port's requests vanish with the port.
func (w *RequestWire) ClearNow(u, v int) {
	w.view.Clear(u, v)
}

// PortEngine serializes each source NIC's output port: one message in flight
// per source at a time, the next popped in FIFO order when the model reports
// the port free. The start callback launches the model's per-message pipeline
// (raise a circuit request, segment into worms, ...).
type PortEngine struct {
	driver *Driver
	active []bool
	start  func(src int, m *nic.Message)
}

// NewPortEngine builds a port engine over the driver's output buffers.
func NewPortEngine(driver *Driver, n int, start func(src int, m *nic.Message)) *PortEngine {
	return &PortEngine{driver: driver, active: make([]bool, n), start: start}
}

// Kick starts the source's transmit process if it is idle; models call it
// from their OnEnqueue hook.
func (pe *PortEngine) Kick(src int) {
	if pe.active[src] {
		return
	}
	pe.active[src] = true
	pe.Next(src)
}

// Next pops the source's next message and starts it, or parks the process
// when the buffer is empty; models call it when the port frees.
func (pe *PortEngine) Next(src int) {
	m := pe.driver.Buffers[src].PopFIFO()
	if m == nil {
		pe.active[src] = false
		return
	}
	pe.start(src, m)
}

// PairQueues counts messages pending per (src, dst) pair — the NIC-side queue
// bookkeeping behind the request wires.
type PairQueues struct {
	count [][]int
}

// NewPairQueues builds an n×n counter matrix.
func NewPairQueues(n int) *PairQueues {
	q := &PairQueues{count: make([][]int, n)}
	for u := range q.count {
		q.count[u] = make([]int, n)
	}
	return q
}

// Count returns the pending count for the pair.
func (q *PairQueues) Count(u, v int) int { return q.count[u][v] }

// Inc counts one more pending message and reports whether the queue was
// empty before (the 0→1 transition that raises the request wire).
func (q *PairQueues) Inc(u, v int) bool {
	q.count[u][v]++
	return q.count[u][v] == 1
}

// Dec retires one pending message and reports whether the queue drained (the
// 1→0 transition that clears the request wire).
func (q *PairQueues) Dec(u, v int) bool {
	q.count[u][v]--
	return q.count[u][v] == 0
}

// Remove retires n pending messages at once (the bulk-drop fault path). It
// reports whether the queue drained, and whether the removal underflowed —
// bookkeeping corruption the caller should surface; the count is clamped to
// zero and the drain transition suppressed in that case. Removing from an
// already-empty queue is a no-op.
func (q *PairQueues) Remove(u, v, n int) (drained, underflow bool) {
	if n == 0 || q.count[u][v] == 0 {
		return false, false
	}
	q.count[u][v] -= n
	if q.count[u][v] < 0 {
		q.count[u][v] = 0
		return false, true
	}
	return q.count[u][v] == 0, false
}

// Negative returns the first negative counter in row-major order, for
// invariant checks. ok is false when every counter is non-negative.
func (q *PairQueues) Negative() (u, v, n int, ok bool) {
	for u := range q.count {
		for v, c := range q.count[u] {
			if c < 0 {
				return u, v, c, true
			}
		}
	}
	return 0, 0, 0, false
}

// HeadUntransmitted returns the head of the u→v queue iff none of its bytes
// have been transmitted yet — the message whose first byte enters the network
// in the current slot. Probe emission helper for the slotted models.
func (d *Driver) HeadUntransmitted(u, v int) *nic.Message {
	if h := d.Buffers[u].Head(v); h != nil && h.Remaining() == h.Bytes {
		return h
	}
	return nil
}

// EmitSlotStart emits a slot-start probe event (nil probe = no-op). slot is
// -1 for an empty boundary, dur the slot duration.
func EmitSlotStart(p *probe.Probe, at sim.Time, slot int32, dur sim.Time) {
	if p == nil {
		return
	}
	p.Emit(probe.Event{Kind: probe.SlotStart, At: at, Slot: slot, Aux: int64(dur)})
}

// EmitSlotEnd emits a slot-end probe event (nil probe = no-op); Aux encodes
// whether any payload moved.
func EmitSlotEnd(p *probe.Probe, at sim.Time, slot int32, used bool) {
	if p == nil {
		return
	}
	var aux int64
	if used {
		aux = 1
	}
	p.Emit(probe.Event{Kind: probe.SlotEnd, At: at, Slot: slot, Aux: aux})
}
