// Package netmodel defines the common contract of the switching-paradigm
// simulators (wormhole, circuit switching, TDM) and the shared
// program-execution driver that feeds them.
//
// Every model simulates the same physical system from paper §5: 128
// processors (N configurable), one central crossbar, one scheduler, 6.4 Gb/s
// serial links. The driver executes each processor's command file — a 10 ns
// NIC operation per send, explicit compute delays, flush/phase directives —
// and hands enqueued messages to the model; the model decides when bytes
// move and reports deliveries back.
package netmodel

import (
	"errors"
	"fmt"

	"pmsnet/internal/fault"
	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/nic"
	"pmsnet/internal/probe"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Network is a switching-paradigm simulator.
type Network interface {
	// Name identifies the paradigm in results ("wormhole", "circuit",
	// "tdm-dynamic", "tdm-preload", "tdm-hybrid/k=1", ...).
	Name() string
	// Run simulates the workload to completion and returns its metrics.
	Run(wl *traffic.Workload) (metrics.Result, error)
}

// ErrStalled is returned when a model stops making progress before
// delivering every message — a deadlock or a starved connection.
var ErrStalled = errors.New("netmodel: simulation stalled with undelivered messages")

// DefaultHorizon bounds simulated time; a run that needs more than this is
// treated as stalled. 10 s of simulated time is ~7 orders of magnitude above
// any workload in the benchmark suite.
const DefaultHorizon = 10 * sim.Second

// Hooks are the model callbacks the driver invokes as programs execute.
type Hooks struct {
	// OnEnqueue fires after a message enters its source NIC's output buffer.
	OnEnqueue func(m *nic.Message)
	// OnFlush fires when a program executes FLUSH (nil = ignore).
	OnFlush func(proc int)
	// OnPhase fires when a program executes a phase hint (nil = ignore).
	OnPhase func(proc, phase int)
	// OnIdle fires once when the last message has been delivered; models
	// stop their tickers here so the event queue can drain.
	OnIdle func()
}

// Driver executes workload programs against NIC output buffers and collects
// delivery records.
type Driver struct {
	Engine  *sim.Engine
	Link    link.Model
	Buffers []*nic.OutBuffer

	wl        *traffic.Workload
	hooks     Hooks
	nextID    int
	remaining int
	records   []metrics.Record
	// progIdx is each processor's program counter. Programs are sequential —
	// at most one continuation per processor is ever outstanding — so one
	// cursor plus one cached step closure (stepFns) per processor replaces a
	// closure allocation per executed op.
	progIdx []int
	stepFns []func()
	// resume maps a blocking message's ID to the processor whose program
	// continues when it is delivered.
	resume map[int]int

	// inj is the run's fault injector (nil for fault-free runs); retries and
	// dropped tally the driver-level recovery accounting.
	inj     *fault.Injector
	retries uint64
	dropped uint64

	// probe observes message lifecycle events (nil when observability is off).
	probe *probe.Probe
}

// NewDriver builds a driver for a validated workload.
func NewDriver(engine *sim.Engine, lm link.Model, wl *traffic.Workload, hooks Hooks) (*Driver, error) {
	if err := wl.Validate(); err != nil {
		return nil, fmt.Errorf("netmodel: %w", err)
	}
	if err := lm.Validate(); err != nil {
		return nil, fmt.Errorf("netmodel: %w", err)
	}
	d := &Driver{
		Engine:    engine,
		Link:      lm,
		Buffers:   make([]*nic.OutBuffer, wl.N),
		wl:        wl,
		hooks:     hooks,
		remaining: wl.MessageCount(),
		progIdx:   make([]int, wl.N),
		stepFns:   make([]func(), wl.N),
		resume:    make(map[int]int),
	}
	for p := 0; p < wl.N; p++ {
		d.Buffers[p] = nic.NewOutBuffer(p, wl.N)
		p := p
		d.stepFns[p] = func() { d.step(p) }
	}
	return d, nil
}

// SetProbe attaches an observability probe for message lifecycle events
// (created, head-of-queue, delivered). Nil detaches.
func (d *Driver) SetProbe(p *probe.Probe) { d.probe = p }

// Start schedules every processor's program from time zero.
func (d *Driver) Start() {
	for p := range d.wl.Programs {
		if len(d.wl.Programs[p].Ops) > 0 {
			d.Engine.At(0, "program-start", d.stepFns[p])
		}
	}
}

// advance schedules processor p's next program step.
func (d *Driver) advance(p int, after sim.Time) {
	d.Engine.After(after, "program-step", d.stepFns[p])
}

// step executes the next op of processor p's program and schedules the one
// after it.
func (d *Driver) step(p int) {
	ops := d.wl.Programs[p].Ops
	idx := d.progIdx[p]
	if idx >= len(ops) {
		return
	}
	d.progIdx[p] = idx + 1
	op := ops[idx]
	switch op.Kind {
	case traffic.OpSend, traffic.OpSendWait:
		m := &nic.Message{
			ID:      d.nextID,
			Src:     p,
			Dst:     op.Dst,
			Bytes:   op.Bytes,
			Created: d.Engine.Now(),
		}
		d.nextID++
		d.Buffers[p].Enqueue(m)
		if d.probe != nil {
			d.probe.Emit(probe.Event{Kind: probe.MsgCreated, At: m.Created,
				Src: int32(m.Src), Dst: int32(m.Dst), ID: int64(m.ID), Aux: int64(m.Bytes)})
			if d.Buffers[p].Head(m.Dst) == m {
				d.probe.Emit(probe.Event{Kind: probe.MsgHeadOfQueue, At: m.Created,
					Src: int32(m.Src), Dst: int32(m.Dst), ID: int64(m.ID)})
			}
		}
		if op.Kind == traffic.OpSendWait {
			// Block: the program continues when the message is delivered.
			d.resume[m.ID] = p
		}
		if d.hooks.OnEnqueue != nil {
			d.hooks.OnEnqueue(m)
		}
		if op.Kind == traffic.OpSend {
			d.advance(p, nic.SendOverhead)
		}
	case traffic.OpDelay:
		d.advance(p, op.Delay)
	case traffic.OpFlush:
		if d.hooks.OnFlush != nil {
			d.hooks.OnFlush(p)
		}
		d.advance(p, 0)
	case traffic.OpPhase:
		if d.hooks.OnPhase != nil {
			d.hooks.OnPhase(p, op.Arg)
		}
		d.advance(p, 0)
	default:
		panic(fmt.Sprintf("netmodel: unknown op kind %d", int(op.Kind)))
	}
}

// AttachFaults installs the run's fault injector. Arrive consults it for the
// generic end-to-end fault path, and Finish folds its counters into the
// result. A nil injector (fault-free run) is a no-op.
func (d *Driver) AttachFaults(inj *fault.Injector) { d.inj = inj }

// Faults returns the attached injector (nil for fault-free runs).
func (d *Driver) Faults() *fault.Injector { return d.inj }

// CountRetry tallies one fault-recovery retransmission or control-token
// re-send; models with their own retry machinery (the TDM request/grant
// timers) report through it so the accounting lives in one place.
func (d *Driver) CountRetry() { d.retries++ }

// Deliver records a completed message. Models call it exactly once per
// message, at the simulated instant the last byte enters the destination
// NIC.
func (d *Driver) Deliver(m *nic.Message) {
	if m.Delivered != 0 {
		panic(fmt.Sprintf("netmodel: message %d delivered twice", m.ID))
	}
	if m.Dropped() {
		panic(fmt.Sprintf("netmodel: message %d delivered after drop", m.ID))
	}
	m.Delivered = d.Engine.Now()
	if d.probe != nil {
		d.probe.Emit(probe.Event{Kind: probe.MsgDelivered, At: m.Delivered,
			Src: int32(m.Src), Dst: int32(m.Dst), ID: int64(m.ID),
			Aux: int64(m.Delivered - m.Created)})
	}
	d.records = append(d.records, metrics.Record{
		Src: m.Src, Dst: m.Dst, Bytes: m.Bytes,
		Created: m.Created, Delivered: m.Delivered,
	})
	d.remaining--
	if p, ok := d.resume[m.ID]; ok {
		delete(d.resume, m.ID)
		d.advance(p, nic.SendOverhead)
	}
	if d.remaining == 0 && d.hooks.OnIdle != nil {
		d.hooks.OnIdle()
	}
}

// Drop retires a message the fault layer declared undeliverable (dead
// crosspoint or permanently failed link). The message counts toward the
// run's completion — Injected == Delivered + Dropped — and a blocked sender
// waiting on it is resumed, but no delivery record is produced.
func (d *Driver) Drop(m *nic.Message) {
	if err := m.MarkDropped(); err != nil {
		panic(fmt.Sprintf("netmodel: %v", err))
	}
	d.dropped++
	d.remaining--
	if p, ok := d.resume[m.ID]; ok {
		delete(d.resume, m.ID)
		d.advance(p, nic.SendOverhead)
	}
	if d.remaining == 0 && d.hooks.OnIdle != nil {
		d.hooks.OnIdle()
	}
}

// Arrive is the fault-aware delivery point for the store-and-forward models
// (wormhole, circuit, VOQ, mesh): they call it instead of Deliver at the
// instant the message would complete. Fault-free runs pass straight through
// to Deliver. Otherwise the receiving NIC's CRC and the link state decide
// the outcome:
//
//   - a dead crosspoint or permanently failed endpoint link drops the
//     message (no recovery is possible);
//   - a corrupted payload or a transiently down link fails the end-to-end
//     check, and the source NIC retransmits the whole message after an
//     exponential-backoff timeout (the message re-enters its output buffer
//     and the model's OnEnqueue hook fires again);
//   - otherwise the message is delivered.
func (d *Driver) Arrive(m *nic.Message) {
	if d.inj == nil {
		d.Deliver(m)
		return
	}
	if d.inj.PairBlocked(m.Src, m.Dst) {
		d.Drop(m)
		return
	}
	if !d.inj.PortUp(m.Src) || !d.inj.PortUp(m.Dst) || d.inj.DrawCorrupt() {
		delay := d.inj.RetryDelay(m.Retries)
		m.Retries++
		d.retries++
		d.Engine.After(delay, "fault-retransmit", func() {
			// The pair may have become permanently unreachable while the
			// retry timer ran.
			if d.inj.PairBlocked(m.Src, m.Dst) {
				d.Drop(m)
				return
			}
			d.Buffers[m.Src].Enqueue(m)
			if d.hooks.OnEnqueue != nil {
				d.hooks.OnEnqueue(m)
			}
		})
		return
	}
	d.Deliver(m)
}

// Remaining returns the number of undelivered messages.
func (d *Driver) Remaining() int { return d.remaining }

// Records returns the delivery records collected so far.
func (d *Driver) Records() []metrics.Record { return d.records }

// ProgressWindow is the stall-detection granularity: if a full window of
// simulated time passes without a single delivery while messages remain,
// the run is declared stalled. One millisecond of simulated time is four
// orders of magnitude above any legitimate inter-delivery gap in the
// benchmark suite (preload group sweeps, think times), and it keeps a
// stalled model from grinding through the full horizon at 100 ns ticker
// granularity.
const ProgressWindow = sim.Millisecond

// Finish runs the engine to the horizon and assembles the result. It
// returns ErrStalled if messages remain undelivered when the event queue
// drains, a progress window elapses without any delivery, or the horizon
// passes.
func (d *Driver) Finish(name string, horizon sim.Time, stats metrics.NetStats) (metrics.Result, error) {
	for d.remaining > 0 && d.Engine.Now() < horizon {
		before := d.remaining
		beforeTime := d.Engine.Now()
		next := beforeTime + ProgressWindow
		if next > horizon {
			next = horizon
		}
		d.Engine.Run(next)
		if d.Engine.Now() == beforeTime && d.remaining == before {
			// The event queue drained with nothing left to do.
			break
		}
		if d.remaining == before && d.Engine.Now() >= next {
			// A whole progress window without a single delivery: stalled.
			break
		}
	}
	if err := d.Engine.Err(); err != nil {
		return metrics.Result{}, err
	}
	if d.remaining > 0 {
		return metrics.Result{}, fmt.Errorf("%w: %d of %d messages undelivered at %v (network %s, workload %s)",
			ErrStalled, d.remaining, d.wl.MessageCount(), d.Engine.Now(), name, d.wl.Name)
	}
	if d.inj != nil {
		base := d.FaultStats()
		// Preserve the recovery counters only the model knows.
		base.Reschedules = stats.Faults.Reschedules
		base.PreloadFallbacks = stats.Faults.PreloadFallbacks
		base.MaskedGrants = stats.Faults.MaskedGrants
		stats.Faults = base
	}
	return metrics.Compute(name, d.wl.Name, d.wl.N, d.Link, d.records, stats), nil
}

// FaultStats assembles the driver's share of the fault accounting: injector
// tallies, retries, and the Injected == Delivered + Dropped reconciliation.
// Models that rebuild their NetStats after Finish (the TDM network) call it
// again and graft their own recovery counters on top.
func (d *Driver) FaultStats() metrics.FaultStats {
	if d.inj == nil {
		return metrics.FaultStats{}
	}
	c := d.inj.Counters()
	return metrics.FaultStats{
		Enabled:          true,
		LinkFailures:     c.LinkFailures,
		LinkRepairs:      c.LinkRepairs,
		CrosspointDeaths: c.CrosspointDeaths,
		Corrupted:        c.Corrupted,
		RequestsLost:     c.RequestsLost,
		GrantsLost:       c.GrantsLost,
		Retries:          d.retries,
		Injected:         uint64(d.wl.MessageCount()),
		Delivered:        uint64(len(d.records)),
		Dropped:          d.dropped,
		DegradedTime:     d.inj.DegradedTime(),
	}
}
