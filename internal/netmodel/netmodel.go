// Package netmodel defines the common contract of the switching-paradigm
// simulators (wormhole, circuit switching, TDM) and the shared
// program-execution driver that feeds them.
//
// Every model simulates the same physical system from paper §5: 128
// processors (N configurable), one central crossbar, one scheduler, 6.4 Gb/s
// serial links. The driver executes each processor's command file — a 10 ns
// NIC operation per send, explicit compute delays, flush/phase directives —
// and hands enqueued messages to the model; the model decides when bytes
// move and reports deliveries back.
package netmodel

import (
	"errors"
	"fmt"

	"pmsnet/internal/link"
	"pmsnet/internal/metrics"
	"pmsnet/internal/nic"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Network is a switching-paradigm simulator.
type Network interface {
	// Name identifies the paradigm in results ("wormhole", "circuit",
	// "tdm-dynamic", "tdm-preload", "tdm-hybrid/k=1", ...).
	Name() string
	// Run simulates the workload to completion and returns its metrics.
	Run(wl *traffic.Workload) (metrics.Result, error)
}

// ErrStalled is returned when a model stops making progress before
// delivering every message — a deadlock or a starved connection.
var ErrStalled = errors.New("netmodel: simulation stalled with undelivered messages")

// DefaultHorizon bounds simulated time; a run that needs more than this is
// treated as stalled. 10 s of simulated time is ~7 orders of magnitude above
// any workload in the benchmark suite.
const DefaultHorizon = 10 * sim.Second

// Hooks are the model callbacks the driver invokes as programs execute.
type Hooks struct {
	// OnEnqueue fires after a message enters its source NIC's output buffer.
	OnEnqueue func(m *nic.Message)
	// OnFlush fires when a program executes FLUSH (nil = ignore).
	OnFlush func(proc int)
	// OnPhase fires when a program executes a phase hint (nil = ignore).
	OnPhase func(proc, phase int)
	// OnIdle fires once when the last message has been delivered; models
	// stop their tickers here so the event queue can drain.
	OnIdle func()
}

// Driver executes workload programs against NIC output buffers and collects
// delivery records.
type Driver struct {
	Engine  *sim.Engine
	Link    link.Model
	Buffers []*nic.OutBuffer

	wl        *traffic.Workload
	hooks     Hooks
	nextID    int
	remaining int
	records   []metrics.Record
	// resume maps a blocking message's ID to the program continuation that
	// runs when it is delivered.
	resume map[int]func()
}

// NewDriver builds a driver for a validated workload.
func NewDriver(engine *sim.Engine, lm link.Model, wl *traffic.Workload, hooks Hooks) (*Driver, error) {
	if err := wl.Validate(); err != nil {
		return nil, fmt.Errorf("netmodel: %w", err)
	}
	if err := lm.Validate(); err != nil {
		return nil, fmt.Errorf("netmodel: %w", err)
	}
	d := &Driver{
		Engine:    engine,
		Link:      lm,
		Buffers:   make([]*nic.OutBuffer, wl.N),
		wl:        wl,
		hooks:     hooks,
		remaining: wl.MessageCount(),
		resume:    make(map[int]func()),
	}
	for p := 0; p < wl.N; p++ {
		d.Buffers[p] = nic.NewOutBuffer(p, wl.N)
	}
	return d, nil
}

// Start schedules every processor's program from time zero.
func (d *Driver) Start() {
	for p := range d.wl.Programs {
		p := p
		if len(d.wl.Programs[p].Ops) > 0 {
			d.Engine.At(0, "program-start", func() { d.step(p, 0) })
		}
	}
}

// step executes op idx of processor p's program and schedules the next one.
func (d *Driver) step(p, idx int) {
	ops := d.wl.Programs[p].Ops
	if idx >= len(ops) {
		return
	}
	op := ops[idx]
	next := func(after sim.Time) {
		d.Engine.After(after, "program-step", func() { d.step(p, idx+1) })
	}
	switch op.Kind {
	case traffic.OpSend, traffic.OpSendWait:
		m := &nic.Message{
			ID:      d.nextID,
			Src:     p,
			Dst:     op.Dst,
			Bytes:   op.Bytes,
			Created: d.Engine.Now(),
		}
		d.nextID++
		d.Buffers[p].Enqueue(m)
		if op.Kind == traffic.OpSendWait {
			// Block: the continuation runs when the message is delivered.
			d.resume[m.ID] = func() { next(nic.SendOverhead) }
		}
		if d.hooks.OnEnqueue != nil {
			d.hooks.OnEnqueue(m)
		}
		if op.Kind == traffic.OpSend {
			next(nic.SendOverhead)
		}
	case traffic.OpDelay:
		next(op.Delay)
	case traffic.OpFlush:
		if d.hooks.OnFlush != nil {
			d.hooks.OnFlush(p)
		}
		next(0)
	case traffic.OpPhase:
		if d.hooks.OnPhase != nil {
			d.hooks.OnPhase(p, op.Arg)
		}
		next(0)
	default:
		panic(fmt.Sprintf("netmodel: unknown op kind %d", int(op.Kind)))
	}
}

// Deliver records a completed message. Models call it exactly once per
// message, at the simulated instant the last byte enters the destination
// NIC.
func (d *Driver) Deliver(m *nic.Message) {
	if m.Delivered != 0 {
		panic(fmt.Sprintf("netmodel: message %d delivered twice", m.ID))
	}
	m.Delivered = d.Engine.Now()
	d.records = append(d.records, metrics.Record{
		Src: m.Src, Dst: m.Dst, Bytes: m.Bytes,
		Created: m.Created, Delivered: m.Delivered,
	})
	d.remaining--
	if cont, ok := d.resume[m.ID]; ok {
		delete(d.resume, m.ID)
		cont()
	}
	if d.remaining == 0 && d.hooks.OnIdle != nil {
		d.hooks.OnIdle()
	}
}

// Remaining returns the number of undelivered messages.
func (d *Driver) Remaining() int { return d.remaining }

// Records returns the delivery records collected so far.
func (d *Driver) Records() []metrics.Record { return d.records }

// ProgressWindow is the stall-detection granularity: if a full window of
// simulated time passes without a single delivery while messages remain,
// the run is declared stalled. One millisecond of simulated time is four
// orders of magnitude above any legitimate inter-delivery gap in the
// benchmark suite (preload group sweeps, think times), and it keeps a
// stalled model from grinding through the full horizon at 100 ns ticker
// granularity.
const ProgressWindow = sim.Millisecond

// Finish runs the engine to the horizon and assembles the result. It
// returns ErrStalled if messages remain undelivered when the event queue
// drains, a progress window elapses without any delivery, or the horizon
// passes.
func (d *Driver) Finish(name string, horizon sim.Time, stats metrics.NetStats) (metrics.Result, error) {
	for d.remaining > 0 && d.Engine.Now() < horizon {
		before := d.remaining
		beforeTime := d.Engine.Now()
		next := beforeTime + ProgressWindow
		if next > horizon {
			next = horizon
		}
		d.Engine.Run(next)
		if d.Engine.Now() == beforeTime && d.remaining == before {
			// The event queue drained with nothing left to do.
			break
		}
		if d.remaining == before && d.Engine.Now() >= next {
			// A whole progress window without a single delivery: stalled.
			break
		}
	}
	if d.remaining > 0 {
		return metrics.Result{}, fmt.Errorf("%w: %d of %d messages undelivered at %v (network %s, workload %s)",
			ErrStalled, d.remaining, d.wl.MessageCount(), d.Engine.Now(), name, d.wl.Name)
	}
	return metrics.Compute(name, d.wl.Name, d.wl.N, d.Link, d.records, stats), nil
}
