package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmsnet/internal/bitmat"
)

func TestTechnologyDelays(t *testing.T) {
	if Digital.TraversalDelay() != 10 {
		t.Fatalf("digital traversal = %v, want 10ns", Digital.TraversalDelay())
	}
	if LVDS.TraversalDelay() != 0 {
		t.Fatalf("lvds traversal = %v, want 0ns", LVDS.TraversalDelay())
	}
	if Digital.String() != "digital" || LVDS.String() != "lvds" {
		t.Fatal("Technology.String wrong")
	}
	if Technology(99).String() == "" {
		t.Fatal("unknown technology should still render")
	}
}

func TestUnknownTechnologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown technology delay")
		}
	}()
	Technology(99).TraversalDelay()
}

func TestApplyAndQuery(t *testing.T) {
	c := NewCrossbar(4, LVDS, 0)
	if c.Ports() != 4 || c.Technology() != LVDS || c.ReconfigTime() != 0 {
		t.Fatal("constructor fields wrong")
	}
	cfg := bitmat.FromPermutation([]int{2, -1, 0, 3})
	if err := c.Apply(cfg); err != nil {
		t.Fatal(err)
	}
	if c.Applied() != 1 {
		t.Fatalf("Applied = %d, want 1", c.Applied())
	}
	if c.OutputFor(0) != 2 || c.OutputFor(1) != -1 {
		t.Fatal("OutputFor wrong")
	}
	if !c.Connected(3, 3) || c.Connected(3, 0) {
		t.Fatal("Connected wrong")
	}
	if c.Connections() != 3 {
		t.Fatalf("Connections = %d, want 3", c.Connections())
	}
	got := c.Config()
	if !got.Equal(cfg) {
		t.Fatal("Config copy should equal applied configuration")
	}
	// Returned config is a copy; mutating it must not affect the fabric.
	got.Reset()
	if c.Connections() != 3 {
		t.Fatal("Config must return a copy, not an alias")
	}
}

func TestApplyRejectsNonPermutation(t *testing.T) {
	c := NewCrossbar(3, Digital, 10)
	bad := bitmat.NewSquare(3)
	bad.Set(0, 1)
	bad.Set(2, 1) // two inputs to one output
	if err := c.Apply(bad); err == nil {
		t.Fatal("expected error for conflicting configuration")
	}
	if c.Connections() != 0 {
		t.Fatal("failed Apply must leave register unchanged")
	}
}

func TestApplyRejectsWrongShape(t *testing.T) {
	c := NewCrossbar(3, Digital, 10)
	if err := c.Apply(bitmat.NewSquare(4)); err == nil {
		t.Fatal("expected error for wrong-shaped configuration")
	}
}

func TestConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewCrossbar(0, LVDS, 0) },
		func() { NewCrossbar(4, LVDS, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGuardBand(t *testing.T) {
	// Paper example: 50 ns reconfig, 50 ns grant skew -> 50 ns guard band.
	if got := GuardBand(50, 50); got != 50 {
		t.Fatalf("GuardBand(50,50) = %v, want 50", got)
	}
	if got := GuardBand(10, 30); got != 30 {
		t.Fatalf("GuardBand(10,30) = %v, want 30", got)
	}
	if got := GuardBand(40, 5); got != 40 {
		t.Fatalf("GuardBand(40,5) = %v, want 40", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative inputs")
		}
	}()
	GuardBand(-1, 0)
}

func TestQuickApplyPermutationsAlwaysSucceed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		c := NewCrossbar(n, LVDS, 0)
		perm := rng.Perm(n)
		for i := range perm {
			if rng.Float64() < 0.25 {
				perm[i] = -1
			}
		}
		cfg := bitmat.FromPermutation(perm)
		if err := c.Apply(cfg); err != nil {
			return false
		}
		// Every connection in the permutation must be realized.
		for u, v := range perm {
			if v >= 0 && c.OutputFor(u) != v {
				return false
			}
			if v < 0 && c.OutputFor(u) != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
