// Package fabric models the passive switching fabric of the interconnect.
//
// The fabric has no buffering and no control logic of its own (paper §4): it
// realizes whatever input→output mapping is currently held in its
// configuration register. The scheduler copies one of its K configuration
// matrices into that register at every TDM slot boundary.
//
// Two fabric technologies from the paper are modeled:
//
//   - Digital: a conventional digital crossbar with serial→parallel
//     conversion at the ports and a 10 ns traversal (used by the wormhole
//     baseline).
//   - LVDS/optical: a Low-Voltage Differential Signal (or optical) crosspoint
//     where the signal stays in the analog domain; traversal is under 2 ns
//     and is neglected, and no serdes is needed at the switch (used by the
//     circuit-switched and TDM networks).
package fabric

import (
	"fmt"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/sim"
)

// Technology selects the crossbar implementation.
type Technology int

const (
	// Digital is a conventional digital crossbar: 10 ns traversal, serdes at
	// the switch ports.
	Digital Technology = iota
	// LVDS is an LVDS or optical crosspoint: negligible traversal, no serdes
	// at the switch.
	LVDS
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case Digital:
		return "digital"
	case LVDS:
		return "lvds"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// TraversalDelay returns the propagation delay through the crossbar for the
// technology, per paper §5.
func (t Technology) TraversalDelay() sim.Time {
	switch t {
	case Digital:
		return 10
	case LVDS:
		return 0
	default:
		panic(fmt.Sprintf("fabric: unknown technology %d", int(t)))
	}
}

// Crossbar is an NxN passive crossbar with a configuration register.
type Crossbar struct {
	n          int
	tech       Technology
	reconfigNs sim.Time
	config     *bitmat.Matrix
	applied    int // number of Apply calls, for stats/tests
}

// NewCrossbar builds an NxN crossbar. reconfigNs is the time needed to change
// the setting of the fabric (the paper's example uses 50 ns for large optical
// fabrics; the simulated 128-port LVDS system reconfigures within the slot's
// guard band).
func NewCrossbar(n int, tech Technology, reconfigNs sim.Time) *Crossbar {
	if n <= 0 {
		panic(fmt.Sprintf("fabric: invalid port count %d", n))
	}
	if reconfigNs < 0 {
		panic(fmt.Sprintf("fabric: negative reconfiguration time %v", reconfigNs))
	}
	return &Crossbar{
		n:          n,
		tech:       tech,
		reconfigNs: reconfigNs,
		config:     bitmat.NewSquare(n),
	}
}

// Ports returns N.
func (c *Crossbar) Ports() int { return c.n }

// Technology returns the fabric technology.
func (c *Crossbar) Technology() Technology { return c.tech }

// ReconfigTime returns the fabric's reconfiguration time.
func (c *Crossbar) ReconfigTime() sim.Time { return c.reconfigNs }

// TraversalDelay returns the propagation delay through the fabric.
func (c *Crossbar) TraversalDelay() sim.Time { return c.tech.TraversalDelay() }

// Applied returns how many configurations have been loaded so far.
func (c *Crossbar) Applied() int { return c.applied }

// Apply copies a configuration into the fabric's configuration register. The
// configuration must be an NxN partial permutation; anything else is not
// realizable on a crossbar and indicates a scheduler bug, so Apply returns an
// error and leaves the register unchanged.
func (c *Crossbar) Apply(cfg *bitmat.Matrix) error {
	if cfg.Rows() != c.n || cfg.Cols() != c.n {
		return fmt.Errorf("fabric: configuration is %dx%d, fabric is %dx%d",
			cfg.Rows(), cfg.Cols(), c.n, c.n)
	}
	if !cfg.IsPartialPermutation() {
		return fmt.Errorf("fabric: configuration is not a partial permutation (%d connections)", cfg.Count())
	}
	c.config.CopyFrom(cfg)
	c.applied++
	return nil
}

// OutputFor returns the output port currently connected to input u, or -1.
func (c *Crossbar) OutputFor(u int) int {
	return c.config.FirstInRow(u)
}

// Connected reports whether input u is currently connected to output v.
func (c *Crossbar) Connected(u, v int) bool {
	return c.config.Get(u, v)
}

// Connections returns the number of point-to-point connections currently
// realized.
func (c *Crossbar) Connections() int { return c.config.Count() }

// Config returns a copy of the current configuration register.
func (c *Crossbar) Config() *bitmat.Matrix { return c.config.Clone() }

// GuardBand computes the slot guard band for the paper's formula: circuits
// must stay idle while the fabric state is uncertain, which covers the
// fabric reconfiguration time plus the worst-case skew of the grant lines
// (paper §4: 50 ns reconfig + 50 ns grant propagation on a 50-foot line for a
// 1 us slot gives a 50 ns guard band, i.e. max of the two overlapping terms).
func GuardBand(reconfig, grantSkew sim.Time) sim.Time {
	if reconfig < 0 || grantSkew < 0 {
		panic(fmt.Sprintf("fabric: negative guard-band inputs %v, %v", reconfig, grantSkew))
	}
	if reconfig > grantSkew {
		return reconfig
	}
	return grantSkew
}
