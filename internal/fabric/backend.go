package fabric

import (
	"fmt"
	"strings"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/multistage"
	"pmsnet/internal/topology"
)

// Kind identifies a switching-fabric backend. The zero value is the paper's
// baseline crossbar, so zero-valued configurations keep their meaning.
type Kind int

// Fabric backends.
const (
	// KindCrossbar is the paper's baseline: a single-stage crosspoint where
	// any partial permutation is realizable.
	KindCrossbar Kind = iota
	// KindOmega is a log2(N)-stage Omega network: cheaper hardware, but
	// blocking — the scheduler may only establish connections that keep each
	// slot's configuration Omega-realizable, and preload decomposition runs
	// under the same constraint (paper §4's "fabrics that have limited
	// permutation capabilities"). Requires N to be a power of two.
	KindOmega
	// KindClos is a three-stage Clos network in its canonical m = n
	// factoring: rearrangeably non-blocking (Clos 1953), so every slot
	// configuration routes, at a fraction of the crossbar's crosspoint count.
	// Requires N to have a divisor d with d*d >= N (always true).
	KindClos
	// KindBenes is the 2·log2(N)−1-stage Benes network: rearrangeably
	// non-blocking via the looping algorithm, accepting every crossbar
	// configuration. Requires N to be a power of two.
	KindBenes
)

// kindNames holds the canonical lower-case names, indexed by Kind.
var kindNames = [...]string{"crossbar", "omega", "clos", "benes"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// KindNames returns the canonical fabric vocabulary in declaration order.
func KindNames() []string {
	out := make([]string, len(kindNames))
	copy(out, kindNames[:])
	return out
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for i, name := range kindNames {
		if s == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("fabric: unknown fabric %q (valid: %s)", s, strings.Join(kindNames[:], ", "))
}

// Backend is a pluggable switching fabric: a configuration register the
// scheduler writes at every slot boundary, plus the routing/blocking
// semantics of the technology behind it. The TDM network drives any Backend;
// the scheduler consults CanRealize (through its CanEstablish hook) on
// blocking fabrics so it never produces a configuration the fabric cannot
// carry.
type Backend interface {
	// Kind identifies the backend.
	Kind() Kind
	// Ports returns the port count N.
	Ports() int
	// Rearrangeable reports whether every partial permutation is realizable.
	// On a rearrangeable backend CanRealize never fails for a valid partial
	// permutation, so the scheduler needs no establishment constraint.
	Rearrangeable() bool
	// CanRealize reports whether the configuration routes through the fabric
	// — the blocking check.
	CanRealize(cfg *bitmat.Matrix) bool
	// Apply loads the configuration into the register for the next slot,
	// routing it through the fabric. It fails on a malformed configuration or
	// one the fabric cannot realize — a scheduler bug either way.
	Apply(cfg *bitmat.Matrix) error
	// Applied returns how many configurations have been loaded so far.
	Applied() int
	// Decompose splits a working set into realizable configurations for the
	// preload controller: an exact edge coloring on rearrangeable fabrics, a
	// first-fit under CanRealize on blocking ones.
	Decompose(ws *topology.WorkingSet) ([]*bitmat.Matrix, error)
	// Leaves returns the number of input-stage switch elements — the natural
	// sharding grain for per-leaf parallel scheduling. Ports are assigned to
	// leaves contiguously (leaf i owns ports [i·N/Leaves, (i+1)·N/Leaves)).
	// The single-stage crossbar has no leaf seam and reports 1.
	Leaves() int
}

// NewBackend builds the backend for a kind and port count. Construction
// errors surface the underlying fabric's constraint (e.g. the power-of-two
// requirement of Omega and Benes networks).
func NewBackend(kind Kind, n int) (Backend, error) {
	switch kind {
	case KindCrossbar:
		return crossbarBackend{NewCrossbar(n, LVDS, 0)}, nil
	case KindOmega:
		o, err := multistage.NewOmega(n)
		if err != nil {
			return nil, err
		}
		return &multistageBackend{
			Crossbar:   NewCrossbar(n, LVDS, 0),
			kind:       KindOmega,
			leaves:     o.Leaves(),
			canRealize: o.CanRealize,
			decompose: func(ws *topology.WorkingSet) ([]*bitmat.Matrix, error) {
				return multistage.DecomposeOmega(ws, o)
			},
		}, nil
	case KindClos:
		c, err := multistage.DefaultClos(n)
		if err != nil {
			return nil, err
		}
		canRealize := func(cfg *bitmat.Matrix) bool {
			_, err := c.Route(cfg)
			return err == nil
		}
		b := &multistageBackend{
			Crossbar:      NewCrossbar(n, LVDS, 0),
			kind:          KindClos,
			rearrangeable: c.Rearrangeable(),
			leaves:        c.Leaves(),
			canRealize:    canRealize,
		}
		if b.rearrangeable {
			b.decompose = decomposeExact
		} else {
			b.decompose = func(ws *topology.WorkingSet) ([]*bitmat.Matrix, error) {
				return multistage.DecomposeRealizable(ws, c.Ports(), "clos", canRealize)
			}
		}
		return b, nil
	case KindBenes:
		bn, err := multistage.NewBenes(n)
		if err != nil {
			return nil, err
		}
		return &multistageBackend{
			Crossbar:      NewCrossbar(n, LVDS, 0),
			kind:          KindBenes,
			rearrangeable: true,
			leaves:        bn.Leaves(),
			canRealize: func(cfg *bitmat.Matrix) bool {
				_, err := bn.Route(cfg)
				return err == nil
			},
			decompose: decomposeExact,
		}, nil
	default:
		return nil, fmt.Errorf("fabric: unknown fabric kind %d", int(kind))
	}
}

// decomposeExact is the rearrangeable-fabric decomposition: the exact
// bipartite edge coloring, identical to the crossbar's.
func decomposeExact(ws *topology.WorkingSet) ([]*bitmat.Matrix, error) {
	return topology.Decompose(ws), nil
}

// crossbarBackend adapts the baseline Crossbar to the Backend interface.
type crossbarBackend struct {
	*Crossbar
}

func (b crossbarBackend) Kind() Kind          { return KindCrossbar }
func (b crossbarBackend) Rearrangeable() bool { return true }
func (b crossbarBackend) Leaves() int         { return 1 }

func (b crossbarBackend) CanRealize(cfg *bitmat.Matrix) bool {
	return cfg.Rows() == b.Ports() && cfg.Cols() == b.Ports() && cfg.IsPartialPermutation()
}

func (b crossbarBackend) Decompose(ws *topology.WorkingSet) ([]*bitmat.Matrix, error) {
	return decomposeExact(ws)
}

// multistageBackend wraps a multistage network behind a crossbar-style
// configuration register: Apply validates the partial permutation through the
// register, then (on blocking fabrics) routes it through the stage model.
type multistageBackend struct {
	*Crossbar
	kind          Kind
	rearrangeable bool
	leaves        int
	canRealize    func(*bitmat.Matrix) bool
	decompose     func(*topology.WorkingSet) ([]*bitmat.Matrix, error)
}

func (b *multistageBackend) Kind() Kind          { return b.kind }
func (b *multistageBackend) Rearrangeable() bool { return b.rearrangeable }
func (b *multistageBackend) Leaves() int         { return b.leaves }

func (b *multistageBackend) CanRealize(cfg *bitmat.Matrix) bool { return b.canRealize(cfg) }

func (b *multistageBackend) Apply(cfg *bitmat.Matrix) error {
	if err := b.Crossbar.Apply(cfg); err != nil {
		return err
	}
	// Rearrangeable stages realize every partial permutation, which the
	// register just validated; only blocking fabrics need the routing check.
	if !b.rearrangeable && !b.canRealize(cfg) {
		return fmt.Errorf("fabric: configuration is not realizable on the %s fabric", b.kind)
	}
	return nil
}

func (b *multistageBackend) Decompose(ws *topology.WorkingSet) ([]*bitmat.Matrix, error) {
	return b.decompose(ws)
}
