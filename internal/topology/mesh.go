// Package topology provides processor-grid geometry and working-set
// manipulation for the predictive multiplexed switch.
//
// The paper evaluates nearest-neighbor patterns on a 2-D mesh of 128
// processors attached to a single central crossbar, and preloads compiled
// communication patterns by decomposing a connection working set C into k
// conflict-free crossbar configurations C_1 ... C_k (paper §2). This package
// supplies both: the mesh coordinate system used by the traffic generators,
// and the decomposition algorithms used by the preload controller.
package topology

import "fmt"

// Mesh is a logical 2-D processor grid mapped onto crossbar ports in
// row-major order. Wrap selects torus (wraparound) neighbor semantics.
type Mesh struct {
	Cols, Rows int
	Wrap       bool
}

// NewMesh returns a cols x rows mesh. Both dimensions must be positive.
func NewMesh(cols, rows int, wrap bool) Mesh {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("topology: invalid mesh %dx%d", cols, rows))
	}
	return Mesh{Cols: cols, Rows: rows, Wrap: wrap}
}

// MeshFor returns a near-square mesh for n processors: the widest cols x rows
// factorization of n with cols >= rows. For n = 128 this is the paper's 16x8
// grid. It panics if n is not factorable into a grid (n <= 0).
func MeshFor(n int, wrap bool) Mesh {
	if n <= 0 {
		panic(fmt.Sprintf("topology: invalid processor count %d", n))
	}
	best := Mesh{Cols: n, Rows: 1, Wrap: wrap}
	for r := 1; r*r <= n; r++ {
		if n%r == 0 {
			best = Mesh{Cols: n / r, Rows: r, Wrap: wrap}
		}
	}
	return best
}

// Size returns the number of processors.
func (m Mesh) Size() int { return m.Cols * m.Rows }

// Rank returns the crossbar port for grid coordinate (x, y).
func (m Mesh) Rank(x, y int) int {
	if x < 0 || x >= m.Cols || y < 0 || y >= m.Rows {
		panic(fmt.Sprintf("topology: coordinate (%d,%d) outside %dx%d mesh", x, y, m.Cols, m.Rows))
	}
	return y*m.Cols + x
}

// Coord returns the grid coordinate of a rank.
func (m Mesh) Coord(rank int) (x, y int) {
	if rank < 0 || rank >= m.Size() {
		panic(fmt.Sprintf("topology: rank %d outside mesh of %d", rank, m.Size()))
	}
	return rank % m.Cols, rank / m.Cols
}

// Direction names a mesh neighbor. The fixed E,W,N,S order defines the
// deterministic round used by the Ordered Mesh pattern.
type Direction int

// Neighbor directions in the deterministic ordered-mesh round order.
const (
	East Direction = iota
	West
	North
	South
	numDirections
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case East:
		return "east"
	case West:
		return "west"
	case North:
		return "north"
	case South:
		return "south"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Directions lists all four directions in round order.
func Directions() []Direction { return []Direction{East, West, North, South} }

// Neighbor returns the rank of the neighbor of `rank` in direction d, or -1
// if the mesh does not wrap and the neighbor falls off the edge.
func (m Mesh) Neighbor(rank int, d Direction) int {
	x, y := m.Coord(rank)
	switch d {
	case East:
		x++
	case West:
		x--
	case North:
		y--
	case South:
		y++
	default:
		panic(fmt.Sprintf("topology: unknown direction %d", int(d)))
	}
	if m.Wrap {
		x = (x + m.Cols) % m.Cols
		y = (y + m.Rows) % m.Rows
	} else if x < 0 || x >= m.Cols || y < 0 || y >= m.Rows {
		return -1
	}
	return m.Rank(x, y)
}

// Neighbors returns the distinct existing neighbors of rank in E,W,N,S
// order. On a torus with a dimension of size 1 or 2, duplicates collapse.
func (m Mesh) Neighbors(rank int) []int {
	var out []int
	for _, d := range Directions() {
		nb := m.Neighbor(rank, d)
		if nb < 0 || nb == rank {
			continue
		}
		dup := false
		for _, prev := range out {
			if prev == nb {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, nb)
		}
	}
	return out
}
