package topology

import (
	"fmt"

	"pmsnet/internal/bitmat"
)

// Decompose splits a working set C into the minimum number of conflict-free
// crossbar configurations C_1 ... C_k with C = C_1 ∪ ... ∪ C_k (paper §2).
//
// The working set is a bipartite graph between input ports and output ports;
// a conflict-free configuration is a matching of that graph. By König's
// edge-coloring theorem a bipartite graph with maximum degree Δ can be edge
// colored with exactly Δ colors, so k = Degree() configurations always
// suffice and none fewer can. The implementation is the classical
// alternating-path (Kempe chain) recoloring: O(|C| · (N + Δ)).
//
// The returned configurations are partial permutations ordered by color
// index; their union equals the working set exactly.
func Decompose(w *WorkingSet) []*bitmat.Matrix {
	n := w.Ports()
	delta := w.Degree()
	if delta == 0 {
		return nil
	}

	// colorAtSrc[u][c] = output port of the edge at input u colored c, or -1.
	// colorAtDst[v][c] = input port of the edge at output v colored c, or -1.
	colorAtSrc := make([][]int, n)
	colorAtDst := make([][]int, n)
	for i := 0; i < n; i++ {
		colorAtSrc[i] = newFilled(delta, -1)
		colorAtDst[i] = newFilled(delta, -1)
	}

	for _, e := range w.Conns() {
		a := firstFree(colorAtSrc[e.Src])
		b := firstFree(colorAtDst[e.Dst])
		if a == -1 || b == -1 {
			// Impossible: at most delta edges touch each port.
			panic(fmt.Sprintf("topology: no free color for %v with degree %d", e, delta))
		}
		if colorAtDst[e.Dst][a] == -1 {
			// Color a is free at both endpoints; take it.
			colorAtSrc[e.Src][a] = e.Dst
			colorAtDst[e.Dst][a] = e.Src
			continue
		}
		// a is free at the source but taken at the destination, and b is
		// free at the destination. Swap colors a and b along the maximal
		// alternating path that starts with the destination's a-colored
		// edge. The path cannot reach e.Src (the standard Kempe-chain
		// argument: it would have to arrive via a b-colored edge, making the
		// path a cycle back through e.Dst, impossible since b is free
		// there), so afterwards a is free at both endpoints.
		flipAlternatingPath(colorAtSrc, colorAtDst, e.Dst, a, b)
		if colorAtDst[e.Dst][a] != -1 || colorAtSrc[e.Src][a] != -1 {
			panic(fmt.Sprintf("topology: alternating-path flip failed to free color %d for %v", a, e))
		}
		colorAtSrc[e.Src][a] = e.Dst
		colorAtDst[e.Dst][a] = e.Src
	}

	configs := make([]*bitmat.Matrix, delta)
	for c := 0; c < delta; c++ {
		configs[c] = bitmat.NewSquare(n)
	}
	for u := 0; u < n; u++ {
		for c := 0; c < delta; c++ {
			if v := colorAtSrc[u][c]; v != -1 {
				configs[c].Set(u, v)
			}
		}
	}
	return configs
}

func newFilled(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func firstFree(slots []int) int {
	for c, occ := range slots {
		if occ == -1 {
			return c
		}
	}
	return -1
}

// flipAlternatingPath swaps colors a and b along the maximal alternating
// path that starts at destination vertex start with its a-colored edge:
// start -(a)- u1 -(b)- v1 -(a)- u2 -(b)- ... The walk is collected first and
// recolored in a second phase so intermediate states never alias.
func flipAlternatingPath(colorAtSrc, colorAtDst [][]int, start, a, b int) {
	type pathEdge struct{ u, v, color int }
	var path []pathEdge

	other := func(c int) int {
		if c == a {
			return b
		}
		return a
	}

	v, color := start, a
	for {
		u := colorAtDst[v][color]
		if u == -1 {
			break
		}
		path = append(path, pathEdge{u: u, v: v, color: color})
		color = other(color)
		nv := colorAtSrc[u][color]
		if nv == -1 {
			break
		}
		path = append(path, pathEdge{u: u, v: nv, color: color})
		v = nv
		color = other(color)
	}

	for _, e := range path {
		colorAtSrc[e.u][e.color] = -1
		colorAtDst[e.v][e.color] = -1
	}
	for _, e := range path {
		nc := other(e.color)
		colorAtSrc[e.u][nc] = e.v
		colorAtDst[e.v][nc] = e.u
	}
}

// GreedyDecompose is the first-fit alternative decomposer: each connection
// goes into the first configuration whose input and output ports are both
// free, opening a new configuration when none fits. It can use up to
// 2Δ−1 configurations in the worst case but runs in O(|C| · k) with no
// recoloring, which is the shape of what a simple hardware preloader would
// do. Used by the ablation benchmarks against the exact decomposer.
func GreedyDecompose(w *WorkingSet) []*bitmat.Matrix {
	n := w.Ports()
	var configs []*bitmat.Matrix
	for _, e := range w.Conns() {
		placed := false
		for _, cfg := range configs {
			if !cfg.RowAny(e.Src) && !cfg.ColAny(e.Dst) {
				cfg.Set(e.Src, e.Dst)
				placed = true
				break
			}
		}
		if !placed {
			cfg := bitmat.NewSquare(n)
			cfg.Set(e.Src, e.Dst)
			configs = append(configs, cfg)
		}
	}
	return configs
}
