package topology

import (
	"fmt"
	"sort"

	"pmsnet/internal/bitmat"
)

// Conn is one end-to-end connection (a crossbar input→output pair).
type Conn struct {
	Src, Dst int
}

// String implements fmt.Stringer.
func (c Conn) String() string { return fmt.Sprintf("%d->%d", c.Src, c.Dst) }

// WorkingSet is a communication working set W(j): the set of connections a
// program phase uses (paper §2). It deduplicates connections and tracks the
// port count so it can be rendered as a request matrix.
type WorkingSet struct {
	n     int
	conns map[Conn]struct{}
}

// NewWorkingSet creates an empty working set over n ports.
func NewWorkingSet(n int) *WorkingSet {
	if n <= 0 {
		panic(fmt.Sprintf("topology: invalid port count %d", n))
	}
	return &WorkingSet{n: n, conns: make(map[Conn]struct{})}
}

// Ports returns the port count N.
func (w *WorkingSet) Ports() int { return w.n }

// Add inserts a connection; duplicates are ignored. Self-connections and
// out-of-range ports panic: they cannot exist on the crossbar.
func (w *WorkingSet) Add(c Conn) {
	if c.Src < 0 || c.Src >= w.n || c.Dst < 0 || c.Dst >= w.n {
		panic(fmt.Sprintf("topology: connection %v outside %d ports", c, w.n))
	}
	if c.Src == c.Dst {
		panic(fmt.Sprintf("topology: self-connection %v", c))
	}
	w.conns[c] = struct{}{}
}

// Contains reports whether the set holds c.
func (w *WorkingSet) Contains(c Conn) bool {
	_, ok := w.conns[c]
	return ok
}

// Len returns the number of distinct connections.
func (w *WorkingSet) Len() int { return len(w.conns) }

// Conns returns the connections sorted by (Src, Dst) for deterministic
// iteration.
func (w *WorkingSet) Conns() []Conn {
	out := make([]Conn, 0, len(w.conns))
	for c := range w.conns {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Union returns a new working set containing both sets' connections.
func (w *WorkingSet) Union(o *WorkingSet) *WorkingSet {
	if w.n != o.n {
		panic(fmt.Sprintf("topology: union of working sets over %d and %d ports", w.n, o.n))
	}
	u := NewWorkingSet(w.n)
	for c := range w.conns {
		u.conns[c] = struct{}{}
	}
	for c := range o.conns {
		u.conns[c] = struct{}{}
	}
	return u
}

// Matrix renders the working set as an NxN boolean matrix (a request matrix
// in which every connection of the set is requested).
func (w *WorkingSet) Matrix() *bitmat.Matrix {
	m := bitmat.NewSquare(w.n)
	for c := range w.conns {
		m.Set(c.Src, c.Dst)
	}
	return m
}

// Degree returns the maximum port degree: the larger of the highest
// out-degree over sources and the highest in-degree over destinations. By
// König's theorem this is exactly the minimum number of conflict-free
// configurations the set decomposes into — the minimum multiplexing degree
// k_j needed to cache the whole working set (paper §2).
func (w *WorkingSet) Degree() int {
	out := make([]int, w.n)
	in := make([]int, w.n)
	max := 0
	for c := range w.conns {
		out[c.Src]++
		in[c.Dst]++
		if out[c.Src] > max {
			max = out[c.Src]
		}
		if in[c.Dst] > max {
			max = in[c.Dst]
		}
	}
	return max
}
