package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmsnet/internal/bitmat"
)

func TestMeshFor128IsPaperGrid(t *testing.T) {
	m := MeshFor(128, false)
	if m.Cols != 16 || m.Rows != 8 {
		t.Fatalf("MeshFor(128) = %dx%d, want 16x8", m.Cols, m.Rows)
	}
	if m.Size() != 128 {
		t.Fatalf("Size = %d, want 128", m.Size())
	}
}

func TestMeshForSquareAndPrime(t *testing.T) {
	if m := MeshFor(16, false); m.Cols != 4 || m.Rows != 4 {
		t.Fatalf("MeshFor(16) = %dx%d, want 4x4", m.Cols, m.Rows)
	}
	if m := MeshFor(7, false); m.Cols != 7 || m.Rows != 1 {
		t.Fatalf("MeshFor(7) = %dx%d, want 7x1", m.Cols, m.Rows)
	}
}

func TestRankCoordRoundTrip(t *testing.T) {
	m := NewMesh(5, 3, false)
	for r := 0; r < m.Size(); r++ {
		x, y := m.Coord(r)
		if m.Rank(x, y) != r {
			t.Fatalf("Rank(Coord(%d)) = %d", r, m.Rank(x, y))
		}
	}
}

func TestCoordRankPanics(t *testing.T) {
	m := NewMesh(4, 4, false)
	for i, fn := range []func(){
		func() { m.Rank(4, 0) },
		func() { m.Rank(0, -1) },
		func() { m.Coord(16) },
		func() { m.Coord(-1) },
		func() { NewMesh(0, 3, false) },
		func() { MeshFor(0, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestNeighborsInterior(t *testing.T) {
	m := NewMesh(4, 4, false)
	r := m.Rank(1, 1)
	nbs := m.Neighbors(r)
	want := []int{m.Rank(2, 1), m.Rank(0, 1), m.Rank(1, 0), m.Rank(1, 2)}
	if len(nbs) != 4 {
		t.Fatalf("interior node has %d neighbors, want 4", len(nbs))
	}
	for i := range want {
		if nbs[i] != want[i] {
			t.Fatalf("Neighbors = %v, want E,W,N,S order %v", nbs, want)
		}
	}
}

func TestNeighborsCornerNoWrap(t *testing.T) {
	m := NewMesh(4, 4, false)
	nbs := m.Neighbors(m.Rank(0, 0))
	if len(nbs) != 2 {
		t.Fatalf("corner has %d neighbors without wrap, want 2", len(nbs))
	}
	if m.Neighbor(m.Rank(0, 0), West) != -1 {
		t.Fatal("West of corner should be -1 without wrap")
	}
	if m.Neighbor(m.Rank(0, 0), North) != -1 {
		t.Fatal("North of corner should be -1 without wrap")
	}
}

func TestNeighborsWrap(t *testing.T) {
	m := NewMesh(4, 4, true)
	r := m.Rank(0, 0)
	if m.Neighbor(r, West) != m.Rank(3, 0) {
		t.Fatal("torus West wrap wrong")
	}
	if m.Neighbor(r, North) != m.Rank(0, 3) {
		t.Fatal("torus North wrap wrong")
	}
	if len(m.Neighbors(r)) != 4 {
		t.Fatal("torus corner should have 4 neighbors")
	}
}

func TestNeighborsCollapseOnTinyTorus(t *testing.T) {
	m := NewMesh(2, 1, true)
	// On a 2x1 torus, East and West of node 0 are both node 1, and North =
	// South = self.
	nbs := m.Neighbors(0)
	if len(nbs) != 1 || nbs[0] != 1 {
		t.Fatalf("Neighbors on 2x1 torus = %v, want [1]", nbs)
	}
}

func TestDirectionString(t *testing.T) {
	names := map[Direction]string{East: "east", West: "west", North: "north", South: "south"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), want)
		}
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction should render something")
	}
}

func TestWorkingSetBasics(t *testing.T) {
	w := NewWorkingSet(4)
	w.Add(Conn{0, 1})
	w.Add(Conn{0, 1}) // duplicate
	w.Add(Conn{2, 3})
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2", w.Len())
	}
	if !w.Contains(Conn{0, 1}) || w.Contains(Conn{1, 0}) {
		t.Fatal("Contains wrong")
	}
	conns := w.Conns()
	if len(conns) != 2 || conns[0] != (Conn{0, 1}) || conns[1] != (Conn{2, 3}) {
		t.Fatalf("Conns = %v, want sorted [0->1 2->3]", conns)
	}
	m := w.Matrix()
	if !m.Get(0, 1) || !m.Get(2, 3) || m.Count() != 2 {
		t.Fatal("Matrix wrong")
	}
}

func TestWorkingSetPanics(t *testing.T) {
	w := NewWorkingSet(4)
	for i, fn := range []func(){
		func() { w.Add(Conn{0, 4}) },
		func() { w.Add(Conn{-1, 0}) },
		func() { w.Add(Conn{2, 2}) },
		func() { NewWorkingSet(0) },
		func() { w.Union(NewWorkingSet(5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestWorkingSetUnionAndDegree(t *testing.T) {
	a := NewWorkingSet(4)
	a.Add(Conn{0, 1})
	a.Add(Conn{0, 2})
	b := NewWorkingSet(4)
	b.Add(Conn{0, 3})
	b.Add(Conn{1, 3})
	u := a.Union(b)
	if u.Len() != 4 {
		t.Fatalf("union Len = %d, want 4", u.Len())
	}
	// Node 0 has out-degree 3 in the union.
	if u.Degree() != 3 {
		t.Fatalf("union Degree = %d, want 3", u.Degree())
	}
	if a.Degree() != 2 || b.Degree() != 2 {
		t.Fatal("component degrees wrong")
	}
	if NewWorkingSet(4).Degree() != 0 {
		t.Fatal("empty set degree should be 0")
	}
}

// assertExactCover verifies the decomposition contracts: every configuration
// is a partial permutation, configurations are pairwise disjoint, and their
// union equals the working set.
func assertExactCover(t *testing.T, w *WorkingSet, configs []*bitmat.Matrix) {
	t.Helper()
	union := w.Matrix()
	union.Reset()
	total := 0
	for i, cfg := range configs {
		if !cfg.IsPartialPermutation() {
			t.Fatalf("config %d is not a partial permutation:\n%v", i, cfg)
		}
		total += cfg.Count()
		union.Or(cfg)
	}
	if total != w.Len() {
		t.Fatalf("configs hold %d edges, working set has %d (overlap or loss)", total, w.Len())
	}
	if !union.Equal(w.Matrix()) {
		t.Fatal("union of configs must equal the working set")
	}
}

func TestDecomposeEmpty(t *testing.T) {
	if got := Decompose(NewWorkingSet(8)); got != nil {
		t.Fatalf("Decompose(empty) = %d configs, want nil", len(got))
	}
}

func TestDecomposeSinglePermutation(t *testing.T) {
	w := NewWorkingSet(4)
	w.Add(Conn{0, 1})
	w.Add(Conn{1, 2})
	w.Add(Conn{2, 3})
	w.Add(Conn{3, 0})
	configs := Decompose(w)
	if len(configs) != 1 {
		t.Fatalf("a permutation should decompose into 1 config, got %d", len(configs))
	}
	if !configs[0].Equal(w.Matrix()) {
		t.Fatal("single config should equal the working set matrix")
	}
}

func TestDecomposeAllToAll(t *testing.T) {
	// All-to-all on n nodes has degree n-1 and decomposes into exactly n-1
	// permutations — the preload schedule for the Two-Phase global phase.
	const n = 8
	w := NewWorkingSet(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				w.Add(Conn{s, d})
			}
		}
	}
	configs := Decompose(w)
	if len(configs) != n-1 {
		t.Fatalf("all-to-all(%d) decomposed into %d configs, want %d", n, len(configs), n-1)
	}
	union := w.Matrix()
	union.Reset()
	total := 0
	for i, cfg := range configs {
		if !cfg.IsPartialPermutation() {
			t.Fatalf("config %d is not a partial permutation", i)
		}
		// Full permutations, in fact: n(n-1) edges over n-1 configs.
		if cfg.Count() != n {
			t.Fatalf("config %d has %d connections, want full permutation of %d", i, cfg.Count(), n)
		}
		total += cfg.Count()
		union.Or(cfg)
	}
	if total != n*(n-1) {
		t.Fatalf("edges across configs = %d, want %d (no duplicates)", total, n*(n-1))
	}
	if !union.Equal(w.Matrix()) {
		t.Fatal("union of configs must equal the working set")
	}
}

func TestDecomposeTriggersRecoloring(t *testing.T) {
	// A star plus a chain engineered so that the greedy first-free choice
	// collides and the Kempe-chain flip must run.
	w := NewWorkingSet(6)
	w.Add(Conn{0, 1})
	w.Add(Conn{0, 2})
	w.Add(Conn{3, 2})
	w.Add(Conn{3, 1})
	w.Add(Conn{4, 1})
	w.Add(Conn{4, 2})
	configs := Decompose(w)
	if len(configs) != w.Degree() {
		t.Fatalf("got %d configs, want Degree()=%d", len(configs), w.Degree())
	}
	assertExactCover(t, w, configs)
}

func TestGreedyDecomposeCoversSet(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := randomWorkingSet(rng, 16, 40)
	configs := GreedyDecompose(w)
	if len(configs) < w.Degree() {
		t.Fatalf("greedy used %d configs, below lower bound %d", len(configs), w.Degree())
	}
	union := w.Matrix()
	union.Reset()
	total := 0
	for i, cfg := range configs {
		if !cfg.IsPartialPermutation() {
			t.Fatalf("greedy config %d not a partial permutation", i)
		}
		total += cfg.Count()
		union.Or(cfg)
	}
	if total != w.Len() || !union.Equal(w.Matrix()) {
		t.Fatal("greedy decomposition must exactly cover the set")
	}
}

func randomWorkingSet(rng *rand.Rand, n, edges int) *WorkingSet {
	w := NewWorkingSet(n)
	for w.Len() < edges {
		s, d := rng.Intn(n), rng.Intn(n)
		if s != d {
			w.Add(Conn{s, d})
		}
	}
	return w
}

func TestQuickDecomposeIsOptimalExactCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		maxEdges := n * (n - 1)
		edges := rng.Intn(maxEdges + 1)
		w := NewWorkingSet(n)
		for i := 0; i < edges; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s != d {
				w.Add(Conn{s, d})
			}
		}
		configs := Decompose(w)
		if len(configs) != w.Degree() {
			return false
		}
		union := w.Matrix()
		union.Reset()
		total := 0
		for _, cfg := range configs {
			if !cfg.IsPartialPermutation() {
				return false
			}
			total += cfg.Count()
			union.Or(cfg)
		}
		return total == w.Len() && union.Equal(w.Matrix())
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGreedyNeverBeatsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		w := NewWorkingSet(n)
		for i := 0; i < n*2; i++ {
			s, d := rng.Intn(n), rng.Intn(n)
			if s != d {
				w.Add(Conn{s, d})
			}
		}
		return len(GreedyDecompose(w)) >= len(Decompose(w))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeMeshNeighborsDegree(t *testing.T) {
	// The full nearest-neighbor working set on the paper's 16x8 mesh has
	// degree 4 (interior nodes talk to 4 neighbors) and therefore fits a
	// multiplexing degree of 4 — exactly the K the paper uses in Figure 4.
	m := MeshFor(128, false)
	w := NewWorkingSet(m.Size())
	for r := 0; r < m.Size(); r++ {
		for _, nb := range m.Neighbors(r) {
			w.Add(Conn{r, nb})
		}
	}
	if w.Degree() != 4 {
		t.Fatalf("mesh working-set degree = %d, want 4", w.Degree())
	}
	configs := Decompose(w)
	if len(configs) != 4 {
		t.Fatalf("mesh decomposes into %d configs, want 4", len(configs))
	}
}

func BenchmarkDecomposeAllToAll128(b *testing.B) {
	const n = 128
	w := NewWorkingSet(n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				w.Add(Conn{s, d})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Decompose(w)) != n-1 {
			b.Fatal("wrong decomposition")
		}
	}
}
