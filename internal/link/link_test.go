package link

import (
	"testing"
	"testing/quick"

	"pmsnet/internal/sim"
)

func TestPaperConstants(t *testing.T) {
	m := Paper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// An 8-byte flit serializes in exactly 10 ns at 6.4 Gb/s (paper §5).
	if got := m.SerializationTime(8); got != 10 {
		t.Fatalf("8-byte flit = %v, want 10ns", got)
	}
	// 125 bytes in 1 us per Gb/s link scaled: the paper's example says 125 B
	// per serial Gb/s link in 1 us, i.e. 800 B at 6.4 Gb/s.
	if got := m.BytesInWindow(sim.Microsecond); got != 800 {
		t.Fatalf("bytes in 1us = %d, want 800", got)
	}
	// 80 bytes fit in a 100 ns TDM slot.
	if got := m.BytesInWindow(100); got != 80 {
		t.Fatalf("bytes in 100ns = %d, want 80", got)
	}
	// Control (request/grant) line: 30+20+30 = 80 ns.
	if got := m.ControlDelay(); got != 80 {
		t.Fatalf("control delay = %v, want 80ns", got)
	}
	if got := m.PipeLatency(); got != 80 {
		t.Fatalf("pipe latency = %v, want 80ns", got)
	}
}

func TestSerializationTimeRoundsUp(t *testing.T) {
	m := Paper()
	// 1 byte = 8 bits = 1.25 ns -> rounds to 2 ns.
	if got := m.SerializationTime(1); got != 2 {
		t.Fatalf("1 byte = %v, want 2ns (rounded up)", got)
	}
	if got := m.SerializationTime(0); got != 0 {
		t.Fatalf("0 bytes = %v, want 0", got)
	}
	// 2048-byte message: 16384 bits / 6.4 = 2560 ns exactly.
	if got := m.SerializationTime(2048); got != 2560 {
		t.Fatalf("2048 bytes = %v, want 2560ns", got)
	}
}

func TestTransferTime(t *testing.T) {
	m := Paper()
	// Paper circuit-switching data path: 30+20+20+30 includes the switch's
	// second wire segment; a single link transfer is 80 ns + payload.
	if got := m.TransferTime(2048); got != 80+2560 {
		t.Fatalf("TransferTime(2048) = %v, want 2640ns", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{BitsPerSecond: 0},
		{BitsPerSecond: 1, SerializeNs: -1},
		{BitsPerSecond: 1, WireNs: -5},
		{BitsPerSecond: 1, DeserializeNs: -5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, m)
		}
	}
}

func TestNegativePanics(t *testing.T) {
	m := Paper()
	for i, fn := range []func(){
		func() { m.SerializationTime(-1) },
		func() { m.BytesInWindow(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestQuickSerializationMonotonic(t *testing.T) {
	m := Paper()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.SerializationTime(x) <= m.SerializationTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWindowInvertsSerialization(t *testing.T) {
	m := Paper()
	// If `bytes` serialize in time T, then a window of T ns must fit at
	// least `bytes` bytes (rounding can only help the window).
	f := func(n uint16) bool {
		bytes := int(n)
		tt := m.SerializationTime(bytes)
		return m.BytesInWindow(tt) >= bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
