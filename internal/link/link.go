// Package link models the serial point-to-point links of the evaluated
// system: 6.4 Gb/s high-speed serial over 10-foot cables, with explicit
// parallel-to-serial and serial-to-parallel conversion stages.
//
// All constants come from Section 5 of the paper:
//
//   - 6.4 Gb/s line rate (an 8-byte flit serializes in exactly 10 ns)
//   - 30 ns parallel→serial conversion
//   - 20 ns propagation down a 10-foot wire
//   - 30 ns serial→parallel conversion
//
// A control line (request or grant) carries a small fixed-size token over the
// same kind of link, so its one-way delay is 30+20+30 = 80 ns — which is the
// "cable delay of 80 ns to send the request" the paper charges circuit
// switching for.
package link

import (
	"fmt"

	"pmsnet/internal/sim"
)

// Model captures the timing of one serial link technology.
type Model struct {
	// BitsPerSecond is the serial line rate.
	BitsPerSecond int64
	// SerializeNs is the parallel→serial conversion time at the sender.
	SerializeNs sim.Time
	// WireNs is the propagation delay down the cable.
	WireNs sim.Time
	// DeserializeNs is the serial→parallel conversion time at the receiver.
	DeserializeNs sim.Time
}

// Paper returns the link model used throughout the paper's evaluation.
func Paper() Model {
	return Model{
		BitsPerSecond: 6_400_000_000,
		SerializeNs:   30,
		WireNs:        20,
		DeserializeNs: 30,
	}
}

// Validate reports an error for non-physical parameters.
func (m Model) Validate() error {
	if m.BitsPerSecond <= 0 {
		return fmt.Errorf("link: non-positive line rate %d", m.BitsPerSecond)
	}
	if m.SerializeNs < 0 || m.WireNs < 0 || m.DeserializeNs < 0 {
		return fmt.Errorf("link: negative delay in %+v", m)
	}
	return nil
}

// SerializationTime returns the time to clock `bytes` bytes onto the wire at
// the line rate, rounded up to a whole nanosecond.
func (m Model) SerializationTime(bytes int) sim.Time {
	if bytes < 0 {
		panic(fmt.Sprintf("link: negative byte count %d", bytes))
	}
	bits := int64(bytes) * 8
	ns := (bits*1_000_000_000 + m.BitsPerSecond - 1) / m.BitsPerSecond
	return sim.Time(ns)
}

// PipeLatency returns the cut-through latency of the link: the time between
// the first bit entering the serializer and the first bit leaving the
// deserializer (serialize + wire + deserialize), excluding the payload
// serialization time itself.
func (m Model) PipeLatency() sim.Time {
	return m.SerializeNs + m.WireNs + m.DeserializeNs
}

// ControlDelay returns the one-way latency of a request or grant token. The
// token is small enough that its serialization time is folded into the
// conversion stages, matching the paper's flat 80 ns figure.
func (m Model) ControlDelay() sim.Time { return m.PipeLatency() }

// TransferTime returns the total time for a store-and-forward transfer of
// `bytes` bytes over the link: pipe latency plus payload serialization.
func (m Model) TransferTime(bytes int) sim.Time {
	return m.PipeLatency() + m.SerializationTime(bytes)
}

// BytesInWindow returns how many whole bytes the link can carry in a window
// of w nanoseconds at the line rate.
func (m Model) BytesInWindow(w sim.Time) int {
	if w < 0 {
		panic(fmt.Sprintf("link: negative window %v", w))
	}
	bits := int64(w) * m.BitsPerSecond / 1_000_000_000
	return int(bits / 8)
}
