package predictor

import (
	"fmt"

	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

// Prefetcher is the optional interface for predictors that also *add*
// connections ahead of their first request — the direction of Sakr et al.
// and Kaxiras & Young that paper §3.2 discusses ("predict the connections in
// the working set W(j+1) while W(j) is being used"). A network that finds a
// predictor implementing Prefetcher pre-establishes the returned
// connections speculatively.
type Prefetcher interface {
	Predictor
	// Prefetch returns connections likely to be used soon that are worth
	// establishing ahead of their request. The caller establishes (some of)
	// them and reports outcomes via OnEstablish/OnRelease as usual.
	Prefetch(now sim.Time) []topology.Conn
}

// Markov is a first-order per-source destination predictor with time-out
// eviction. For every source it learns the transition counts between
// consecutive destinations; after source u talks to v, the most frequent
// successor destination v' (if seen at least MinSupport times) is nominated
// for pre-establishment. Eviction behaves exactly like the Timeout
// predictor.
type Markov struct {
	Timeout *Timeout
	// MinSupport is the minimum observation count before a transition is
	// trusted.
	MinSupport int

	// trans[u][v][v'] counts v -> v' transitions at source u.
	trans map[int]map[int]map[int]int
	last  map[int]int // last destination per source
	// pending holds the current prediction per source.
	pending map[int]topology.Conn
}

// NewMarkov builds a Markov prefetching predictor with the given eviction
// timeout and transition support threshold.
func NewMarkov(timeout sim.Time, minSupport int) *Markov {
	if minSupport <= 0 {
		panic(fmt.Sprintf("predictor: markov support %d must be positive", minSupport))
	}
	return &Markov{
		Timeout:    NewTimeout(timeout),
		MinSupport: minSupport,
		trans:      make(map[int]map[int]map[int]int),
		last:       make(map[int]int),
		pending:    make(map[int]topology.Conn),
	}
}

// Name implements Predictor.
func (m *Markov) Name() string {
	return fmt.Sprintf("markov(%v,%d)", m.Timeout.timeout, m.MinSupport)
}

// OnEstablish implements Predictor.
func (m *Markov) OnEstablish(c topology.Conn, now sim.Time) { m.Timeout.OnEstablish(c, now) }

// OnUse implements Predictor. It learns the destination transition and
// prepares the next prediction for the source.
func (m *Markov) OnUse(c topology.Conn, now sim.Time) {
	m.Timeout.OnUse(c, now)
	if prev, ok := m.last[c.Src]; ok && prev != c.Dst {
		byPrev, ok := m.trans[c.Src]
		if !ok {
			byPrev = make(map[int]map[int]int)
			m.trans[c.Src] = byPrev
		}
		succ, ok := byPrev[prev]
		if !ok {
			succ = make(map[int]int)
			byPrev[prev] = succ
		}
		succ[c.Dst]++
	}
	m.last[c.Src] = c.Dst
	if next, ok := m.predictNext(c.Src, c.Dst); ok {
		m.pending[c.Src] = topology.Conn{Src: c.Src, Dst: next}
	} else {
		delete(m.pending, c.Src)
	}
}

// predictNext returns the learned most-frequent successor of dst at src.
// Ties break toward the lowest destination for determinism.
func (m *Markov) predictNext(src, dst int) (int, bool) {
	succ := m.trans[src][dst]
	best, bestCount := -1, 0
	for v, count := range succ {
		if count > bestCount || (count == bestCount && best >= 0 && v < best) {
			best, bestCount = v, count
		}
	}
	if bestCount < m.MinSupport {
		return 0, false
	}
	return best, true
}

// OnRelease implements Predictor.
func (m *Markov) OnRelease(c topology.Conn) { m.Timeout.OnRelease(c) }

// Evictions implements Predictor.
func (m *Markov) Evictions(now sim.Time) []topology.Conn { return m.Timeout.Evictions(now) }

// Prefetch implements Prefetcher: the current per-source predictions, each
// returned once.
func (m *Markov) Prefetch(sim.Time) []topology.Conn {
	if len(m.pending) == 0 {
		return nil
	}
	out := make([]topology.Conn, 0, len(m.pending))
	for _, c := range m.pending {
		out = append(out, c)
	}
	m.pending = make(map[int]topology.Conn)
	sortConns(out)
	return out
}

// interface checks
var (
	_ Predictor  = (*Markov)(nil)
	_ Prefetcher = (*Markov)(nil)
)
