package predictor

import (
	"testing"

	"pmsnet/internal/topology"
)

func TestMarkovLearnsCycle(t *testing.T) {
	m := NewMarkov(1000, 1)
	if m.Name() == "" {
		t.Fatal("name empty")
	}
	a := topology.Conn{Src: 0, Dst: 1}
	b := topology.Conn{Src: 0, Dst: 2}
	c := topology.Conn{Src: 0, Dst: 3}
	// Teach the cycle a -> b -> c -> a twice.
	for i := 0; i < 2; i++ {
		m.OnUse(a, 0)
		m.OnUse(b, 0)
		m.OnUse(c, 0)
	}
	// After using a again, the prediction must be b.
	m.OnUse(a, 0)
	got := m.Prefetch(0)
	if len(got) != 1 || got[0] != b {
		t.Fatalf("Prefetch = %v, want [%v]", got, b)
	}
	// Prefetch drains: a second call returns nothing until the next use.
	if again := m.Prefetch(0); len(again) != 0 {
		t.Fatalf("second Prefetch = %v, want empty", again)
	}
}

func TestMarkovNeedsSupport(t *testing.T) {
	m := NewMarkov(1000, 2)
	a := topology.Conn{Src: 0, Dst: 1}
	b := topology.Conn{Src: 0, Dst: 2}
	m.OnUse(a, 0)
	m.OnUse(b, 0) // one a->b observation: below support 2
	m.OnUse(a, 0)
	if got := m.Prefetch(0); len(got) != 0 {
		t.Fatalf("Prefetch = %v, want none below support", got)
	}
	m.OnUse(b, 0) // second observation
	m.OnUse(a, 0)
	if got := m.Prefetch(0); len(got) != 1 || got[0] != b {
		t.Fatalf("Prefetch = %v, want [%v] at support 2", got, b)
	}
}

func TestMarkovPicksMostFrequentSuccessor(t *testing.T) {
	m := NewMarkov(1000, 1)
	a := topology.Conn{Src: 0, Dst: 1}
	b := topology.Conn{Src: 0, Dst: 2}
	c := topology.Conn{Src: 0, Dst: 3}
	m.OnUse(a, 0)
	m.OnUse(b, 0)
	m.OnUse(a, 0)
	m.OnUse(c, 0)
	m.OnUse(a, 0)
	m.OnUse(c, 0)
	m.OnUse(a, 0)
	// a -> c seen twice, a -> b once.
	if got := m.Prefetch(0); len(got) != 1 || got[0] != c {
		t.Fatalf("Prefetch = %v, want [%v]", got, c)
	}
}

func TestMarkovSourcesIndependent(t *testing.T) {
	m := NewMarkov(1000, 1)
	m.OnUse(topology.Conn{Src: 0, Dst: 1}, 0)
	m.OnUse(topology.Conn{Src: 1, Dst: 2}, 0) // a different source in between
	m.OnUse(topology.Conn{Src: 0, Dst: 3}, 0) // source 0: 1 -> 3
	m.OnUse(topology.Conn{Src: 0, Dst: 1}, 0)
	got := m.Prefetch(0)
	// Source 0 predicts 3 after 1; source 1 has no transition history.
	want := topology.Conn{Src: 0, Dst: 3}
	found := false
	for _, c := range got {
		if c.Src == 1 {
			t.Fatalf("source 1 has no learnable transition, got %v", c)
		}
		if c == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("Prefetch = %v, want it to contain %v", got, want)
	}
}

func TestMarkovEvictionDelegatesToTimeout(t *testing.T) {
	m := NewMarkov(100, 1)
	c := topology.Conn{Src: 0, Dst: 1}
	m.OnEstablish(c, 0)
	if got := m.Evictions(99); len(got) != 0 {
		t.Fatalf("premature eviction %v", got)
	}
	if got := m.Evictions(100); len(got) != 1 || got[0] != c {
		t.Fatalf("Evictions = %v, want [%v]", got, c)
	}
	m.OnRelease(c)
	if got := m.Evictions(1000); len(got) != 0 {
		t.Fatalf("after release: %v", got)
	}
}

func TestMarkovBadSupportPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMarkov(100, 0)
}
