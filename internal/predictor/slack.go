package predictor

import (
	"fmt"

	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

// ScheduleSlack is the first *principled* eviction signal: instead of
// guessing from observed idleness (Timeout) or relative use counts
// (Counter), it consumes the preload planner's per-connection service budget
// (plan.Schedule.PlannedUses) — the number of slots the plan says each
// connection needs. A connection that has used up its budget has, according
// to the plan, no future traffic, and is nominated for eviction immediately;
// its slack is gone. Connections the plan never saw, and planned connections
// whose traffic diverges from the plan (demand is an estimate, not an
// oracle), fall back to the classic idle timeout so the predictor can never
// starve the cache by trusting a stale plan.
type ScheduleSlack struct {
	planned  map[topology.Conn]uint64
	used     map[topology.Conn]uint64
	lastUse  map[topology.Conn]sim.Time
	fallback sim.Time
	spent    []topology.Conn
}

// NewScheduleSlack builds the predictor from a plan's per-connection slot
// budget (copied, not retained) and an idle-timeout fallback for unplanned
// or misplanned connections. fallback must be positive.
func NewScheduleSlack(planned map[topology.Conn]uint64, fallback sim.Time) *ScheduleSlack {
	if fallback <= 0 {
		panic(fmt.Sprintf("predictor: schedule-slack fallback %v must be positive", fallback))
	}
	p := &ScheduleSlack{
		planned:  make(map[topology.Conn]uint64, len(planned)),
		used:     make(map[topology.Conn]uint64),
		lastUse:  make(map[topology.Conn]sim.Time),
		fallback: fallback,
	}
	for c, n := range planned {
		if n > 0 {
			p.planned[c] = n
		}
	}
	return p
}

// Name implements Predictor.
func (p *ScheduleSlack) Name() string { return fmt.Sprintf("schedule-slack(%v)", p.fallback) }

// Slack returns the connection's remaining planned budget in slots, or 0
// when the budget is spent or the plan never covered it.
func (p *ScheduleSlack) Slack(c topology.Conn) uint64 {
	total, ok := p.planned[c]
	if !ok || p.used[c] >= total {
		return 0
	}
	return total - p.used[c]
}

// OnEstablish implements Predictor.
func (p *ScheduleSlack) OnEstablish(c topology.Conn, now sim.Time) {
	p.lastUse[c] = now
}

// OnUse implements Predictor.
func (p *ScheduleSlack) OnUse(c topology.Conn, now sim.Time) {
	p.lastUse[c] = now
	if _, ok := p.planned[c]; !ok {
		return
	}
	p.used[c]++
	if p.used[c] == p.planned[c] {
		// Crossing the budget exactly once keeps the nomination list
		// duplicate-free even when traffic overshoots the plan.
		p.spent = append(p.spent, c)
	}
}

// OnRelease implements Predictor.
func (p *ScheduleSlack) OnRelease(c topology.Conn) {
	delete(p.lastUse, c)
	for i, s := range p.spent {
		if s == c {
			p.spent = append(p.spent[:i], p.spent[i+1:]...)
			break
		}
	}
}

// Evictions implements Predictor.
func (p *ScheduleSlack) Evictions(now sim.Time) []topology.Conn {
	out := make([]topology.Conn, len(p.spent))
	copy(out, p.spent)
	for c, last := range p.lastUse {
		if p.Slack(c) == 0 && now-last >= p.fallback {
			// Either unplanned, or the budget is spent but the connection was
			// already nominated and not yet released — the spent list covers
			// the latter, so avoid duplicates.
			if !p.inSpent(c) {
				out = append(out, c)
			}
		}
	}
	sortConns(out)
	return out
}

func (p *ScheduleSlack) inSpent(c topology.Conn) bool {
	for _, s := range p.spent {
		if s == c {
			return true
		}
	}
	return false
}
