// Package predictor implements the connection-eviction predictors of paper
// §3.2.
//
// In the predictive multiplexed switch, *adding* a connection to the working
// set costs only its first use (a compulsory miss); the interesting decision
// is when to *remove* one so the multiplexing degree stays small. A
// Predictor observes connection usage and nominates connections for
// eviction. The paper's experiments use the simple time-out predictor; the
// counter predictor from §3.2 (reset on use, incremented when other
// connections are used, evict at a threshold) and two reference points
// (never-evict, and an oracle that knows the future) are provided for the
// ablation benchmarks.
package predictor

import (
	"fmt"
	"sort"

	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

// Predictor decides when established connections should be evicted from the
// network's configuration registers. Implementations are not safe for
// concurrent use.
type Predictor interface {
	// Name identifies the predictor in results.
	Name() string
	// OnEstablish tells the predictor a connection entered the working set.
	OnEstablish(c topology.Conn, now sim.Time)
	// OnUse tells the predictor a connection carried traffic.
	OnUse(c topology.Conn, now sim.Time)
	// OnRelease tells the predictor a connection left the working set for
	// any reason (eviction it requested, a flush, or a scheduler release),
	// so it can drop its state.
	OnRelease(c topology.Conn)
	// Evictions returns the connections that should be evicted now. The
	// caller is expected to evict them and then call OnRelease for each.
	Evictions(now sim.Time) []topology.Conn
}

// sortConns orders connections for deterministic eviction order.
func sortConns(cs []topology.Conn) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Src != cs[j].Src {
			return cs[i].Src < cs[j].Src
		}
		return cs[i].Dst < cs[j].Dst
	})
}

// --- Never ---

// Never keeps every connection forever; the multiplexing degree only shrinks
// via explicit flushes. Baseline for ablations.
type Never struct{}

// NewNever returns the never-evict predictor.
func NewNever() *Never { return &Never{} }

// Name implements Predictor.
func (*Never) Name() string { return "never" }

// OnEstablish implements Predictor.
func (*Never) OnEstablish(topology.Conn, sim.Time) {}

// OnUse implements Predictor.
func (*Never) OnUse(topology.Conn, sim.Time) {}

// OnRelease implements Predictor.
func (*Never) OnRelease(topology.Conn) {}

// Evictions implements Predictor.
func (*Never) Evictions(sim.Time) []topology.Conn { return nil }

// --- Timeout ---

// Timeout evicts a connection that has not been used for a fixed period —
// the predictor used in the paper's experiments ("a connection is removed if
// it is not used for a certain period of time").
type Timeout struct {
	timeout sim.Time
	lastUse map[topology.Conn]sim.Time
}

// NewTimeout builds a time-out predictor. timeout must be positive.
func NewTimeout(timeout sim.Time) *Timeout {
	if timeout <= 0 {
		panic(fmt.Sprintf("predictor: timeout %v must be positive", timeout))
	}
	return &Timeout{timeout: timeout, lastUse: make(map[topology.Conn]sim.Time)}
}

// Name implements Predictor.
func (p *Timeout) Name() string { return fmt.Sprintf("timeout(%v)", p.timeout) }

// OnEstablish implements Predictor.
func (p *Timeout) OnEstablish(c topology.Conn, now sim.Time) { p.lastUse[c] = now }

// OnUse implements Predictor.
func (p *Timeout) OnUse(c topology.Conn, now sim.Time) { p.lastUse[c] = now }

// OnRelease implements Predictor.
func (p *Timeout) OnRelease(c topology.Conn) { delete(p.lastUse, c) }

// Evictions implements Predictor.
func (p *Timeout) Evictions(now sim.Time) []topology.Conn {
	var out []topology.Conn
	for c, last := range p.lastUse {
		if now-last >= p.timeout {
			out = append(out, c)
		}
	}
	sortConns(out)
	return out
}

// Tracked returns the number of connections under observation.
func (p *Timeout) Tracked() int { return len(p.lastUse) }

// --- Counter ---

// IdleGrantObserver is an optional predictor interface: the network reports
// a TDM slot that granted a connection which had nothing to send while its
// source NIC had traffic waiting for other destinations — a provably wasted
// grant. Counting these closes the liveness hole of purely usage-driven
// predictors: with a network full of single-use stale connections nothing
// is ever "used", so a pure use-counter would freeze and starve the waiting
// traffic forever.
type IdleGrantObserver interface {
	// OnIdleGrant reports one wasted slot grant for connection c.
	OnIdleGrant(c topology.Conn, now sim.Time)
}

// Counter is the paper's alternative predictor: each connection has a
// counter that resets to zero when the connection is used and increments
// every time *another* connection is used; the connection is evicted when
// the counter reaches a threshold. Unlike Timeout, it does not evict during
// pure computation phases when no communication happens at all.
//
// Counter also implements IdleGrantObserver: a slot grant wasted on an idle
// connection while its source has other traffic pending counts against the
// connection as well. Without this, a working set of single-use connections
// deadlocks the switch (no use anywhere → no counter movement → no eviction
// → waiting requests starve); during pure compute phases no traffic is
// pending, so the paper's no-eviction-while-computing property still holds.
type Counter struct {
	threshold uint64
	totalUses uint64
	atLastUse map[topology.Conn]uint64
	idle      map[topology.Conn]uint64
}

// NewCounter builds a counter predictor. threshold must be positive.
func NewCounter(threshold uint64) *Counter {
	if threshold == 0 {
		panic("predictor: counter threshold must be positive")
	}
	return &Counter{
		threshold: threshold,
		atLastUse: make(map[topology.Conn]uint64),
		idle:      make(map[topology.Conn]uint64),
	}
}

// Name implements Predictor.
func (p *Counter) Name() string { return fmt.Sprintf("counter(%d)", p.threshold) }

// OnEstablish implements Predictor.
func (p *Counter) OnEstablish(c topology.Conn, _ sim.Time) { p.atLastUse[c] = p.totalUses }

// OnUse implements Predictor.
func (p *Counter) OnUse(c topology.Conn, _ sim.Time) {
	p.totalUses++
	p.atLastUse[c] = p.totalUses
	delete(p.idle, c)
}

// OnIdleGrant implements IdleGrantObserver.
func (p *Counter) OnIdleGrant(c topology.Conn, _ sim.Time) {
	p.idle[c]++
}

// OnRelease implements Predictor.
func (p *Counter) OnRelease(c topology.Conn) {
	delete(p.atLastUse, c)
	delete(p.idle, c)
}

// Evictions implements Predictor.
func (p *Counter) Evictions(sim.Time) []topology.Conn {
	var out []topology.Conn
	for c, at := range p.atLastUse {
		// Uses by other connections since c's last use (c's own last use is
		// included in totalUses and in at, so the difference counts exactly
		// the *other* uses since then) plus the slot grants c wasted while
		// other traffic waited.
		if p.totalUses-at+p.idle[c] >= p.threshold {
			out = append(out, c)
		}
	}
	sortConns(out)
	return out
}

var _ IdleGrantObserver = (*Counter)(nil)

// --- Oracle ---

// Oracle knows each connection's total use count in advance (extracted from
// the workload) and evicts a connection immediately after its final use.
// It is the eviction upper bound for ablation comparisons.
type Oracle struct {
	remaining map[topology.Conn]int
	done      []topology.Conn
}

// NewOracle builds an oracle from the per-connection total use counts of the
// workload that will run.
func NewOracle(uses map[topology.Conn]int) *Oracle {
	rem := make(map[topology.Conn]int, len(uses))
	for c, n := range uses {
		if n < 0 {
			panic(fmt.Sprintf("predictor: negative use count for %v", c))
		}
		rem[c] = n
	}
	return &Oracle{remaining: rem}
}

// Name implements Predictor.
func (*Oracle) Name() string { return "oracle" }

// OnEstablish implements Predictor.
func (p *Oracle) OnEstablish(c topology.Conn, _ sim.Time) {
	if _, ok := p.remaining[c]; !ok {
		// A connection the oracle never saw in the plan has zero future
		// uses; evict as soon as possible.
		p.done = append(p.done, c)
	}
}

// OnUse implements Predictor.
func (p *Oracle) OnUse(c topology.Conn, _ sim.Time) {
	n, ok := p.remaining[c]
	if !ok {
		return
	}
	n--
	p.remaining[c] = n
	if n <= 0 {
		p.done = append(p.done, c)
		delete(p.remaining, c)
	}
}

// OnRelease implements Predictor.
func (p *Oracle) OnRelease(c topology.Conn) {
	for i, d := range p.done {
		if d == c {
			p.done = append(p.done[:i], p.done[i+1:]...)
			break
		}
	}
}

// Evictions implements Predictor.
func (p *Oracle) Evictions(sim.Time) []topology.Conn {
	out := make([]topology.Conn, len(p.done))
	copy(out, p.done)
	sortConns(out)
	return out
}
