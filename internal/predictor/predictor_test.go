package predictor

import (
	"testing"
	"testing/quick"

	"pmsnet/internal/sim"
	"pmsnet/internal/topology"
)

var (
	c01 = topology.Conn{Src: 0, Dst: 1}
	c12 = topology.Conn{Src: 1, Dst: 2}
	c23 = topology.Conn{Src: 2, Dst: 3}
)

func TestNever(t *testing.T) {
	p := NewNever()
	p.OnEstablish(c01, 0)
	p.OnUse(c01, 10)
	if got := p.Evictions(1 << 40); got != nil {
		t.Fatalf("never predictor evicted %v", got)
	}
	if p.Name() != "never" {
		t.Fatal("name wrong")
	}
	p.OnRelease(c01) // must not panic
}

func TestTimeoutEvictsIdleConnections(t *testing.T) {
	p := NewTimeout(100)
	p.OnEstablish(c01, 0)
	p.OnEstablish(c12, 0)
	p.OnUse(c01, 50)
	// At t=120: c12 idle for 120 >= 100, c01 idle for 70 < 100.
	got := p.Evictions(120)
	if len(got) != 1 || got[0] != c12 {
		t.Fatalf("Evictions = %v, want [%v]", got, c12)
	}
	// Use refreshes.
	p.OnUse(c12, 121)
	if got := p.Evictions(149); len(got) != 0 {
		t.Fatalf("Evictions after refresh = %v, want none", got)
	}
	// At 250 both are idle long enough; order is deterministic.
	got = p.Evictions(250)
	if len(got) != 2 || got[0] != c01 || got[1] != c12 {
		t.Fatalf("Evictions = %v, want sorted [%v %v]", got, c01, c12)
	}
	p.OnRelease(c01)
	if p.Tracked() != 1 {
		t.Fatalf("Tracked = %d, want 1", p.Tracked())
	}
}

func TestTimeoutExactBoundary(t *testing.T) {
	p := NewTimeout(100)
	p.OnEstablish(c01, 0)
	if got := p.Evictions(99); len(got) != 0 {
		t.Fatal("must not evict before the timeout")
	}
	if got := p.Evictions(100); len(got) != 1 {
		t.Fatal("must evict exactly at the timeout")
	}
}

func TestTimeoutPanicsOnBadTimeout(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTimeout(0)
}

func TestCounterEvictsOnOtherUses(t *testing.T) {
	p := NewCounter(3)
	p.OnEstablish(c01, 0)
	p.OnEstablish(c12, 0)
	// Three uses of c12: c01's counter reaches 3.
	p.OnUse(c12, 1)
	p.OnUse(c12, 2)
	if got := p.Evictions(2); len(got) != 0 {
		t.Fatalf("premature eviction: %v", got)
	}
	p.OnUse(c12, 3)
	got := p.Evictions(3)
	if len(got) != 1 || got[0] != c01 {
		t.Fatalf("Evictions = %v, want [%v]", got, c01)
	}
}

func TestCounterDoesNotEvictDuringComputePhase(t *testing.T) {
	// The paper's motivation for the counter predictor: no eviction while
	// the application computes and nothing communicates — unlike Timeout.
	p := NewCounter(2)
	p.OnEstablish(c01, 0)
	p.OnUse(c01, 1)
	if got := p.Evictions(1 << 40); len(got) != 0 {
		t.Fatalf("counter predictor evicted %v with no intervening uses", got)
	}
	tp := NewTimeout(100)
	tp.OnEstablish(c01, 0)
	tp.OnUse(c01, 1)
	if got := tp.Evictions(1 << 40); len(got) != 1 {
		t.Fatal("timeout predictor should evict during a long compute phase")
	}
}

func TestCounterUseResets(t *testing.T) {
	p := NewCounter(2)
	p.OnEstablish(c01, 0)
	p.OnUse(c12, 1)
	p.OnUse(c01, 2) // reset
	p.OnUse(c12, 3)
	if got := p.Evictions(3); len(got) != 0 {
		t.Fatalf("counter should be 1 for c01 after reset, got eviction %v", got)
	}
	p.OnUse(c23, 4)
	got := p.Evictions(4)
	if len(got) != 1 || got[0] != c01 {
		t.Fatalf("Evictions = %v, want [%v]", got, c01)
	}
}

func TestCounterPanicsOnZeroThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCounter(0)
}

func TestOracleEvictsAfterLastUse(t *testing.T) {
	p := NewOracle(map[topology.Conn]int{c01: 2, c12: 1})
	p.OnEstablish(c01, 0)
	p.OnEstablish(c12, 0)
	p.OnUse(c01, 1)
	if got := p.Evictions(1); len(got) != 0 {
		t.Fatalf("c01 has one use left, got eviction %v", got)
	}
	p.OnUse(c01, 2)
	p.OnUse(c12, 3)
	got := p.Evictions(3)
	if len(got) != 2 {
		t.Fatalf("Evictions = %v, want both exhausted connections", got)
	}
	p.OnRelease(c01)
	p.OnRelease(c12)
	if got := p.Evictions(4); len(got) != 0 {
		t.Fatalf("after release: %v", got)
	}
}

func TestOracleUnplannedConnectionEvictedImmediately(t *testing.T) {
	p := NewOracle(map[topology.Conn]int{c01: 1})
	p.OnEstablish(c23, 0) // never in the plan
	got := p.Evictions(0)
	if len(got) != 1 || got[0] != c23 {
		t.Fatalf("Evictions = %v, want [%v]", got, c23)
	}
}

func TestOraclePanicsOnNegativeUses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOracle(map[topology.Conn]int{c01: -1})
}

func TestNamesAreDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Predictor{NewNever(), NewTimeout(100), NewCounter(4), NewOracle(nil)} {
		if names[p.Name()] {
			t.Fatalf("duplicate name %q", p.Name())
		}
		names[p.Name()] = true
	}
}

// TestQuickTimeoutNeverEvictsRecentlyUsed: whatever the interleaving, a
// connection used within the timeout window is never nominated.
func TestQuickTimeoutNeverEvictsRecentlyUsed(t *testing.T) {
	f := func(events []uint16, window uint8) bool {
		timeout := sim.Time(int64(window)%500 + 1)
		p := NewTimeout(timeout)
		last := map[topology.Conn]sim.Time{}
		now := sim.Time(0)
		for _, e := range events {
			now += sim.Time(e % 50)
			c := topology.Conn{Src: int(e % 4), Dst: int(e%4) + 1}
			p.OnUse(c, now)
			last[c] = now
		}
		for _, c := range p.Evictions(now) {
			if now-last[c] < timeout {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCounterMatchesNaive compares the counter predictor against a
// naive per-connection recount of "other uses since my last use".
func TestQuickCounterMatchesNaive(t *testing.T) {
	f := func(events []uint8, rawThreshold uint8) bool {
		threshold := uint64(rawThreshold)%10 + 1
		p := NewCounter(threshold)
		var log []topology.Conn
		seen := map[topology.Conn]bool{}
		for _, e := range events {
			c := topology.Conn{Src: int(e % 5), Dst: int(e%5) + 1}
			if !seen[c] {
				p.OnEstablish(c, 0)
				seen[c] = true
			}
			p.OnUse(c, 0)
			log = append(log, c)
		}
		evicted := map[topology.Conn]bool{}
		for _, c := range p.Evictions(0) {
			evicted[c] = true
		}
		for c := range seen {
			othersSince := 0
			for i := len(log) - 1; i >= 0; i-- {
				if log[i] == c {
					break
				}
				othersSince++
			}
			if evicted[c] != (uint64(othersSince) >= threshold) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterIdleGrants(t *testing.T) {
	p := NewCounter(3)
	p.OnEstablish(c01, 0)
	p.OnIdleGrant(c01, 1)
	p.OnIdleGrant(c01, 2)
	if got := p.Evictions(2); len(got) != 0 {
		t.Fatalf("2 idle grants below threshold 3, got %v", got)
	}
	p.OnIdleGrant(c01, 3)
	if got := p.Evictions(3); len(got) != 1 || got[0] != c01 {
		t.Fatalf("Evictions = %v, want [%v]", got, c01)
	}
	// A use resets the idle count.
	p.OnUse(c01, 4)
	p.OnIdleGrant(c01, 5)
	if got := p.Evictions(5); len(got) != 0 {
		t.Fatalf("use should reset idle grants, got %v", got)
	}
	// Idle grants and other-uses combine.
	p.OnIdleGrant(c01, 6)
	p.OnUse(c12, 7)
	if got := p.Evictions(7); len(got) != 1 || got[0] != c01 {
		t.Fatalf("2 idle + 1 other-use should reach threshold 3, got %v", got)
	}
	p.OnRelease(c01)
	if got := p.Evictions(8); len(got) != 0 {
		t.Fatalf("after release: %v", got)
	}
}
