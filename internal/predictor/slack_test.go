package predictor

import (
	"testing"

	"pmsnet/internal/topology"
)

func TestScheduleSlackEvictsOnSpentBudget(t *testing.T) {
	a := topology.Conn{Src: 0, Dst: 1}
	b := topology.Conn{Src: 1, Dst: 2}
	p := NewScheduleSlack(map[topology.Conn]uint64{a: 2, b: 5}, 100)
	p.OnEstablish(a, 0)
	p.OnEstablish(b, 0)
	if got := p.Slack(a); got != 2 {
		t.Fatalf("initial slack = %d, want 2", got)
	}
	p.OnUse(a, 10)
	if len(p.Evictions(10)) != 0 {
		t.Fatal("evicted with budget remaining")
	}
	if got := p.Slack(a); got != 1 {
		t.Fatalf("slack after one use = %d, want 1", got)
	}
	p.OnUse(a, 20)
	got := p.Evictions(20)
	if len(got) != 1 || got[0] != a {
		t.Fatalf("Evictions = %v, want [%v]", got, a)
	}
	// The plan says a is done — no waiting for a timeout.
	p.OnRelease(a)
	if len(p.Evictions(21)) != 0 {
		t.Fatal("released connection still nominated")
	}
}

func TestScheduleSlackFallbackTimeout(t *testing.T) {
	unplanned := topology.Conn{Src: 3, Dst: 4}
	p := NewScheduleSlack(nil, 50)
	p.OnEstablish(unplanned, 0)
	if len(p.Evictions(49)) != 0 {
		t.Fatal("unplanned connection evicted before the fallback timeout")
	}
	got := p.Evictions(50)
	if len(got) != 1 || got[0] != unplanned {
		t.Fatalf("Evictions = %v, want the idle unplanned connection", got)
	}
	// Use refreshes the clock.
	p.OnUse(unplanned, 60)
	if len(p.Evictions(100)) != 0 {
		t.Fatal("recently used connection evicted")
	}
}

func TestScheduleSlackOverBudgetNoDuplicates(t *testing.T) {
	a := topology.Conn{Src: 0, Dst: 1}
	p := NewScheduleSlack(map[topology.Conn]uint64{a: 1}, 10)
	p.OnEstablish(a, 0)
	p.OnUse(a, 1)
	p.OnUse(a, 2) // plan was wrong; extra traffic arrived
	got := p.Evictions(500)
	if len(got) != 1 || got[0] != a {
		t.Fatalf("Evictions = %v, want exactly one nomination of %v", got, a)
	}
}

func TestScheduleSlackDeterministicOrder(t *testing.T) {
	p := NewScheduleSlack(map[topology.Conn]uint64{
		{Src: 5, Dst: 1}: 1,
		{Src: 0, Dst: 2}: 1,
		{Src: 0, Dst: 1}: 1,
	}, 1000)
	for _, c := range []topology.Conn{{Src: 5, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 1}} {
		p.OnEstablish(c, 0)
		p.OnUse(c, 1)
	}
	got := p.Evictions(2)
	want := []topology.Conn{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 5, Dst: 1}}
	if len(got) != len(want) {
		t.Fatalf("Evictions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Evictions = %v, want sorted %v", got, want)
		}
	}
}
