package experiments

import (
	"fmt"
	"time"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/core"
	"pmsnet/internal/metrics"
	"pmsnet/internal/sim"
)

// Table3Sizes are the system sizes of the paper's Table 3.
func Table3Sizes() []int { return []int{4, 8, 16, 32, 64, 128} }

// Table3Row holds one Table 3 entry: the published FPGA latency of the
// scheduling circuit, the derived conservative ASIC figure the simulations
// use, and — as a reproduction sanity check — the wall-clock time of one
// bit-exact software pass of this repository's scheduler model.
type Table3Row struct {
	N          int
	FPGANs     sim.Time
	ASICNs     sim.Time
	SoftwareNs float64
}

// Table3 regenerates the scheduler-latency table. The software column
// measures this model's Pass on a random single-request-per-input matrix,
// averaged over iters iterations (iters <= 0 selects a default).
func Table3(iters int) []Table3Row {
	if iters <= 0 {
		iters = 2000
	}
	var rows []Table3Row
	for _, n := range Table3Sizes() {
		s := core.MustScheduler(core.Params{N: n, K: Fig4K, RotatePriority: true})
		rng := sim.NewRNG(3, uint64(n))
		r := bitmat.NewSquare(n)
		for i := 0; i < n; i++ {
			v := rng.Intn(n)
			if v != i {
				r.Set(i, v)
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			s.Pass(r)
		}
		elapsed := time.Since(start)
		rows = append(rows, Table3Row{
			N:          n,
			FPGANs:     core.FPGALatency(n),
			ASICNs:     core.ASICLatency(n),
			SoftwareNs: float64(elapsed.Nanoseconds()) / float64(iters),
		})
	}
	return rows
}

// Table3Table renders the rows.
func Table3Table(rows []Table3Row) *metrics.Table {
	t := metrics.NewTable("Table 3: scheduling-circuit latency vs system size",
		"N", "FPGA (paper, ns)", "ASIC (simulated, ns)", "software pass (ns)")
	for _, r := range rows {
		t.AddRowf(r.N, int64(r.FPGANs), int64(r.ASICNs), fmt.Sprintf("%.0f", r.SoftwareNs))
	}
	return t
}
