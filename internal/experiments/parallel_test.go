package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"

	"pmsnet/internal/fault"
	"pmsnet/internal/metrics"
	"pmsnet/internal/runner"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Serial-vs-parallel bit-identity: every run is a pure function of (model,
// workload, seed, plan) and the runner collects results by point index, so
// the rows a parallel sweep produces must deep-equal a serial run's —
// including every latency histogram bucket, scheduler counter and fault
// tally. These tests are the contract behind cmd/figures -j.

// identityN keeps the identity sweeps fast while still exercising every
// model; determinism does not depend on the processor count.
const identityN = 32

func TestFig4PanelParallelIdentity(t *testing.T) {
	sizes := []int{8, 64}
	for _, panel := range Panels() {
		panel := panel
		t.Run(string(panel), func(t *testing.T) {
			t.Parallel()
			serial, err := Fig4Panel(panel, identityN, sizes, 1)
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Fig4PanelExec(Parallel(4), panel, identityN, sizes, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("panel %s: parallel rows differ from serial rows", panel)
			}
		})
	}
}

func TestFig5ParallelIdentity(t *testing.T) {
	dets := []float64{0.5, 0.85, 1.0}
	serial, err := Fig5(identityN, dets, 7)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig5Exec(Parallel(4), identityN, dets, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel Fig5 rows differ from serial rows")
	}
}

func TestFaultSweepParallelIdentity(t *testing.T) {
	// An active fault plan is the hardest determinism case: every run
	// realizes the plan through its own seeded injector, so concurrent
	// points must not perturb each other's fault streams.
	levels := []FaultLevel{
		{"none", nil},
		{"corrupt 1%", &fault.Plan{Seed: 1, CorruptProb: 0.01}},
		{"link churn", &fault.Plan{Seed: 1, LinkMTBF: 200 * sim.Microsecond, LinkMTTR: 2 * sim.Microsecond}},
	}
	wl := traffic.RandomMesh(identityN, 64, 10, 1)
	serial, err := FaultSweep(identityN, wl, levels)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := FaultSweepExec(Parallel(4), identityN, wl, levels)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel fault-sweep rows differ from serial rows")
	}
}

func TestFig4PanelWithFaultyNetworkPropagatesError(t *testing.T) {
	// A sweep error must surface through the parallel path just as through
	// the serial one (here: an invalid panel).
	if _, err := Fig4PanelExec(Parallel(4), Panel("no-such-panel"), identityN, []int{8}, 1); err == nil {
		t.Fatal("expected workload construction error to propagate")
	}
}

func TestAblationParallelIdentity(t *testing.T) {
	wl := traffic.RandomMesh(identityN, 64, 10, 1)
	serial, err := DegreeSweep(identityN, []int{1, 2, 4}, wl)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := DegreeSweepExec(Parallel(3), identityN, []int{1, 2, 4}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel degree-sweep results differ from serial results")
	}
}

func TestSeedSweepParallelIdentity(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	fn := func(seed int64) (metrics.Result, error) {
		nets, err := Fig4Networks(identityN)
		if err != nil {
			return metrics.Result{}, err
		}
		return nets[2].Run(traffic.RandomMesh(identityN, 64, 10, seed))
	}
	serial, err := SeedSweep(seeds, fn)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SeedSweepExec(Parallel(4), seeds, fn)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("seed stats diverge: serial %+v, parallel %+v", serial, parallel)
	}
}

func TestExecReportsProgress(t *testing.T) {
	var points atomic.Int64
	ex := Exec{Parallelism: 2, OnPoint: func(p runner.Point) {
		if p.Err != nil {
			t.Errorf("point %d failed: %v", p.Index, p.Err)
		}
		points.Add(1)
	}}
	if _, err := Fig4PanelExec(ex, Scatter, identityN, []int{8}, 1); err != nil {
		t.Fatal(err)
	}
	// One point per (size, network) pair: 1 size x 4 networks.
	if got := points.Load(); got != 4 {
		t.Fatalf("OnPoint fired %d times, want 4", got)
	}
}
