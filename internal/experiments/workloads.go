package experiments

import (
	"fmt"

	"pmsnet/internal/compiler"
	"pmsnet/internal/metrics"
	"pmsnet/internal/plan"
	"pmsnet/internal/predictor"
	"pmsnet/internal/tdm"
	"pmsnet/internal/traffic"
)

// The workload-family studies: sweeps over the post-paper generator
// families (collectives, phased programs, arrival-process and adversarial
// patterns) that ROADMAP item 4 calls for. Three harnesses:
//
//   - FamilySweep runs every new family under reactive dynamic TDM and a
//     planned hybrid, so each family's predictor hit rate and planner
//     makespan land in one table.
//   - PhasedPlannerStudy demonstrates the compiled-communication path end
//     to end: the phased family's program is stripped, re-discovered by the
//     compiler analysis, and its per-phase demand matrices drive the
//     Solstice planner.
//   - AdversarySweep pits the scheduler's memoized-pass cache and
//     warm-started incremental scheduling against the permutation-churn
//     adversary, with a stable permutation as the control.

// FamilySpecs lists the post-paper workload families the family sweep
// covers, as generator specs in the shared registry vocabulary.
func FamilySpecs() []string {
	return []string{
		"all-reduce:algo=ring",
		"all-reduce:algo=tree",
		"broadcast:msgs=8",
		"gather:msgs=8",
		"phased",
		"tiles",
		"bursty",
		"perm-churn",
		"incast",
	}
}

// FamilySweep is the serial reference for FamilySweepExec.
func FamilySweep(n int, seed int64) ([]NamedResult, error) {
	return FamilySweepExec(Serial, n, seed)
}

// FamilySweepExec runs every FamilySpecs workload under two TDM regimes —
// reactive dynamic TDM with the paper's time-out predictor, and a hybrid
// with half the slots pinned by the Solstice planner — one sweep point per
// (family, regime) pair. The table answers, per family: what hit rate does
// the predictor reach, and what makespan does the planned hybrid deliver?
func FamilySweepExec(ex Exec, n int, seed int64) ([]NamedResult, error) {
	specs := FamilySpecs()
	cases := []tdmCase{
		{"dynamic/timeout", tdm.Config{N: n, K: Fig4K,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) }}},
		{"hybrid/solstice", tdm.Config{N: n, K: Fig4K, Mode: tdm.Hybrid, PreloadSlots: Fig4K / 2,
			Planner:      plan.Solstice{},
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) }}},
	}
	return sweep(ex, len(specs)*len(cases), func(i int) (NamedResult, error) {
		spec, c := specs[i/len(cases)], cases[i%len(cases)]
		wl, err := traffic.Generate(spec, n, seed)
		if err != nil {
			return NamedResult{}, fmt.Errorf("experiments: %w", err)
		}
		nw, err := newTDM(c.cfg)
		if err != nil {
			return NamedResult{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return NamedResult{}, fmt.Errorf("experiments: %s on %s: %w", c.label, spec, err)
		}
		return NamedResult{Label: fmt.Sprintf("%s: %s", spec, c.label), Result: res}, nil
	})
}

// PhasedStudy is the outcome of the phased-family planner demonstration.
type PhasedStudy struct {
	// Spec is the generator spec the study analyzed.
	Spec string
	// PhaseCount is the number of phases the compiler analysis discovered
	// in the stripped program.
	PhaseCount int
	// PhaseDemands holds the total demand (TDM slots) of each discovered
	// phase — the matrices handed to the planner, summarized.
	PhaseDemands []int64
	// Rows compares static preload, Solstice-planned preload, and the
	// reactive dynamic baseline on the analyzed workload.
	Rows []NamedResult
}

// PhasedPlannerStudy is the serial reference for PhasedPlannerStudyExec.
func PhasedPlannerStudy(n int, spec string, seed int64) (PhasedStudy, error) {
	return PhasedPlannerStudyExec(Serial, n, spec, seed)
}

// PhasedPlannerStudyExec is the compiled-communication demonstration for
// the phase-alternating families: generate the workload, strip its own
// annotations, let compiler.Analyze re-discover the phase structure and
// emit per-phase demand matrices, then run the re-annotated program under
// static preload, Solstice-planned preload, and reactive dynamic TDM. The
// planner consumes exactly the analysis's demand — the full paper §3 path
// (compile, plan, preload) on traffic the compiler has never seen.
func PhasedPlannerStudyExec(ex Exec, n int, spec string, seed int64) (PhasedStudy, error) {
	wl, err := traffic.Generate(spec, n, seed)
	if err != nil {
		return PhasedStudy{}, fmt.Errorf("experiments: %w", err)
	}
	// Strip happens inside Analyze; InsertDirectives re-annotates at the
	// discovered boundaries, and PayloadBytes converts traffic to slots.
	analyzed, an, err := compiler.Analyze(wl, compiler.Options{InsertDirectives: true, PayloadBytes: 64})
	if err != nil {
		return PhasedStudy{}, fmt.Errorf("experiments: analyzing %s: %w", spec, err)
	}
	study := PhasedStudy{Spec: spec, PhaseCount: an.PhaseCount()}
	for _, d := range an.Demands {
		study.PhaseDemands = append(study.PhaseDemands, d.Total())
	}
	cases := []tdmCase{
		{"preload/static", tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload}},
		{"preload/solstice", tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload, Planner: plan.Solstice{}}},
		{"dynamic/reactive", tdm.Config{N: n, K: Fig4K,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) }}},
	}
	rows, err := runTDMCases(ex, analyzed, cases)
	if err != nil {
		return PhasedStudy{}, err
	}
	study.Rows = rows
	return study, nil
}

// PhasedStudyTable renders the study: the discovered phase structure, then
// the comparison rows.
func PhasedStudyTable(s PhasedStudy) *metrics.Table {
	t := AblationTable(fmt.Sprintf("Phased families through the compiler: %s (%d phases discovered, demand %v slots)",
		s.Spec, s.PhaseCount, s.PhaseDemands), s.Rows)
	return t
}

// AdversaryPair holds the sched-cache/warm-start telemetry of one
// adversary-sweep run.
type AdversaryPair struct {
	Label  string
	Result metrics.Result
}

// AdversarySweep is the serial reference for AdversarySweepExec.
func AdversarySweep(n int, seed int64) ([]AdversaryPair, error) {
	return AdversarySweepExec(Serial, n, seed)
}

// AdversarySweepExec runs dynamic TDM — memoized-pass cache on, warm-started
// incremental scheduling on — over a stable permutation (shift, the control)
// and the permutation-churn adversary. The stable workload repeats one
// request matrix, so passes replay from the cache and warm passes touch few
// rows; the churn workload presents a fresh permutation every round, so the
// cache misses and nearly every row re-evaluates. The Sched telemetry gap
// between the two rows is the cost of losing predictability.
//
// Priority rotation is disabled: the pass cache keys on the full scheduler
// state including the rotation cursor, so with rotation on no key can recur
// until N passes have elapsed and short runs at large N would show zero
// hits for every workload — including perfectly stable ones. A permutation
// needs no fairness rotation (one requester per output), so turning it off
// isolates the variable under study.
func AdversarySweepExec(ex Exec, n int, seed int64) ([]AdversaryPair, error) {
	// Equal per-connection message counts, so the runs differ only in how
	// the working set moves: one fixed permutation vs a fresh one per round.
	specs := []string{
		"shift:msgs=64",
		"perm-churn:rounds=16,msgs=4",
	}
	norot := false
	results, err := sweep(ex, len(specs), func(i int) (AdversaryPair, error) {
		wl, err := traffic.Generate(specs[i], n, seed)
		if err != nil {
			return AdversaryPair{}, fmt.Errorf("experiments: %w", err)
		}
		cfg := tdm.Config{N: n, K: Fig4K, WarmStart: true, RotatePriority: &norot,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) }}
		nw, err := newTDM(cfg)
		if err != nil {
			return AdversaryPair{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return AdversaryPair{}, fmt.Errorf("experiments: adversary %s: %w", specs[i], err)
		}
		return AdversaryPair{Label: specs[i], Result: res}, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// CacheHitRatio returns the memoized-pass cache hit ratio of a run's
// scheduler telemetry (0 when the run scheduled nothing).
func CacheHitRatio(r metrics.Result) float64 {
	total := r.Stats.SchedCacheHits + r.Stats.SchedCacheMisses
	if total == 0 {
		return 0
	}
	return float64(r.Stats.SchedCacheHits) / float64(total)
}

// WarmRowFraction returns the mean fraction of rows re-evaluated per
// warm-started pass, normalized by the port count (1.0 = every warm pass
// re-evaluated every row; 0 = warm passes repaired nothing).
func WarmRowFraction(r metrics.Result, n int) float64 {
	if r.Stats.SchedWarmHits == 0 {
		return 0
	}
	return float64(r.Stats.SchedDirtyRows) / float64(r.Stats.SchedWarmHits*uint64(n))
}

// AdversaryTable renders the adversary sweep with the scheduler-economy
// columns the ablation table flattens away.
func AdversaryTable(n int, rows []AdversaryPair) *metrics.Table {
	t := metrics.NewTable("Adversarial traffic vs the scheduler caches (dynamic TDM, warm start on)",
		"workload", "makespan", "efficiency", "cache hit", "warm dirty-row frac", "evictions")
	for _, r := range rows {
		t.AddRowf(r.Label, r.Result.Makespan.String(), r.Result.Efficiency,
			CacheHitRatio(r.Result), WarmRowFraction(r.Result, n), r.Result.Stats.Evictions)
	}
	return t
}
