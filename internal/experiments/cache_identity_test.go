package experiments

import (
	"reflect"
	"testing"

	"pmsnet/internal/fault"
	"pmsnet/internal/metrics"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// Cache-on vs cache-off bit-identity: the scheduler's memoized-pass cache is
// an exact memoization, so every figure, ablation and fault sweep must
// produce byte-for-byte the same rows with the cache enabled as with the raw
// scheduling array — the only permitted difference is the SchedCacheHits /
// SchedCacheMisses performance counters, which these tests zero before
// comparing. This is the contract DESIGN.md §10 states and the reason
// pmsnet.Config.SchedCache can default to on.
//
// The tests flip the package-level SchedCacheOverride, so they must not run
// in parallel with each other or with the rest of the package (no
// t.Parallel here).

// withSchedCache runs fn once with the pass cache forced off and once forced
// on, restoring the override afterwards.
func withSchedCache(t *testing.T, fn func() any) (off, on any) {
	t.Helper()
	prev := SchedCacheOverride
	defer func() { SchedCacheOverride = prev }()
	v := false
	SchedCacheOverride = &v
	off = fn()
	v2 := true
	SchedCacheOverride = &v2
	on = fn()
	return off, on
}

// scrubResults zeroes the cache performance counters in place so DeepEqual
// compares only model-observable state.
func scrubResults(rs []metrics.Result) {
	for i := range rs {
		rs[i].Stats.SchedCacheHits = 0
		rs[i].Stats.SchedCacheMisses = 0
	}
}

func scrubSizeRows(rows []SizeRow) {
	for i := range rows {
		scrubResults(rows[i].Results)
	}
}

func scrubNamed(rows []NamedResult) {
	for i := range rows {
		rows[i].Result.Stats.SchedCacheHits = 0
		rows[i].Result.Stats.SchedCacheMisses = 0
	}
}

func TestFig4PanelCacheIdentity(t *testing.T) {
	sizes := []int{8, 64}
	for _, panel := range Panels() {
		panel := panel
		t.Run(string(panel), func(t *testing.T) {
			off, on := withSchedCache(t, func() any {
				rows, err := Fig4Panel(panel, identityN, sizes, 1)
				if err != nil {
					t.Fatal(err)
				}
				scrubSizeRows(rows)
				return rows
			})
			if !reflect.DeepEqual(off, on) {
				t.Fatalf("panel %s: cached rows differ from uncached rows", panel)
			}
		})
	}
}

func TestFig4PanelParallelCacheIdentity(t *testing.T) {
	// The parallel runner with the cache on must still match an uncached
	// serial run: each point owns its scheduler (and thus its cache), so
	// parallelism cannot leak cache state between points.
	sizes := []int{8, 64}
	off, on := withSchedCache(t, func() any {
		rows, err := Fig4PanelExec(Parallel(4), OrderedMesh, identityN, sizes, 1)
		if err != nil {
			t.Fatal(err)
		}
		scrubSizeRows(rows)
		return rows
	})
	if !reflect.DeepEqual(off, on) {
		t.Fatal("parallel cached rows differ from parallel uncached rows")
	}
	serial, err := Fig4Panel(OrderedMesh, identityN, sizes, 1)
	if err != nil {
		t.Fatal(err)
	}
	scrubSizeRows(serial)
	if !reflect.DeepEqual(on, any(serial)) {
		t.Fatal("parallel cached rows differ from serial rows")
	}
}

func TestFig5CacheIdentity(t *testing.T) {
	dets := []float64{0.5, 0.85, 1.0}
	off, on := withSchedCache(t, func() any {
		rows, err := Fig5(identityN, dets, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			scrubResults(rows[i].Results)
		}
		return rows
	})
	if !reflect.DeepEqual(off, on) {
		t.Fatal("cached Fig5 rows differ from uncached rows")
	}
}

func TestAblationsCacheIdentity(t *testing.T) {
	wl := traffic.RandomMesh(identityN, 64, 10, 1)
	cases := []struct {
		name string
		run  func() ([]NamedResult, error)
	}{
		{"predictor", func() ([]NamedResult, error) { return PredictorAblation(identityN, wl) }},
		{"degree", func() ([]NamedResult, error) { return DegreeSweep(identityN, []int{2, 4}, wl) }},
		{"rotation", func() ([]NamedResult, error) { return RotationAblation(identityN, wl) }},
		{"sl-copies", func() ([]NamedResult, error) { return SLCopiesSweep(identityN, []int{1, 2}, wl) }},
		{"amplify", func() ([]NamedResult, error) { return AmplifyAblation(identityN, wl) }},
		{"prefetch", func() ([]NamedResult, error) { return PrefetchAblation(identityN, wl) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			off, on := withSchedCache(t, func() any {
				rows, err := tc.run()
				if err != nil {
					t.Fatal(err)
				}
				scrubNamed(rows)
				return rows
			})
			if !reflect.DeepEqual(off, on) {
				t.Fatalf("%s ablation: cached rows differ from uncached rows", tc.name)
			}
		})
	}
}

func TestFaultSweepCacheIdentity(t *testing.T) {
	// Fault masking evicts connections mid-run — the hardest invalidation
	// case for the pass cache, since a masked grant changes scheduler state
	// outside a normal pass.
	levels := []FaultLevel{
		{"none", nil},
		{"corrupt 1%", &fault.Plan{Seed: 1, CorruptProb: 0.01}},
		{"link churn", &fault.Plan{Seed: 1, LinkMTBF: 200 * sim.Microsecond, LinkMTTR: 2 * sim.Microsecond}},
	}
	wl := traffic.RandomMesh(identityN, 64, 10, 1)
	off, on := withSchedCache(t, func() any {
		rows, err := FaultSweep(identityN, wl, levels)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rows {
			scrubResults(rows[i].Results)
		}
		return rows
	})
	if !reflect.DeepEqual(off, on) {
		t.Fatal("cached fault-sweep rows differ from uncached rows")
	}
}
