package experiments

import (
	"strings"
	"testing"

	"pmsnet/internal/fault"
	"pmsnet/internal/sim"
	"pmsnet/internal/traffic"
)

// TestFaultSweepSmall runs the robustness sweep on a small system and checks
// its contract: one row per level, one result per paradigm, exact message
// accounting everywhere (FaultSweep itself rejects a non-reconciling run),
// and a fault-free first row with clean counters.
func TestFaultSweepSmall(t *testing.T) {
	n := 16
	wl := traffic.RandomMesh(n, 64, 10, 1)
	levels := []FaultLevel{
		{"none", nil},
		{"corrupt", &fault.Plan{Seed: 1, CorruptProb: 0.02}},
		{"churn", &fault.Plan{Seed: 1, LinkMTBF: 100 * sim.Microsecond, LinkMTTR: 2 * sim.Microsecond}},
	}
	rows, err := FaultSweep(n, wl, levels)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(levels) {
		t.Fatalf("rows = %d, want %d", len(rows), len(levels))
	}
	for _, row := range rows {
		if len(row.Results) != 4 {
			t.Fatalf("level %q has %d results, want 4 paradigms", row.Level.Label, len(row.Results))
		}
	}
	clean := rows[0]
	for _, res := range clean.Results {
		if res.Stats.Faults.Enabled {
			t.Errorf("%s: fault stats enabled in the fault-free row", res.Network)
		}
	}
	// The corruption row must actually have injected something somewhere.
	var corrupted uint64
	for _, res := range rows[1].Results {
		corrupted += res.Stats.Faults.Corrupted
	}
	if corrupted == 0 {
		t.Error("corruption level injected nothing across all four paradigms")
	}
}

func TestFaultLevelsAreValid(t *testing.T) {
	levels := FaultLevels()
	if len(levels) == 0 || levels[0].Plan != nil {
		t.Fatal("default sweep must start with a fault-free level")
	}
	for _, lv := range levels {
		if err := lv.Plan.Validate(); err != nil {
			t.Errorf("level %q: %v", lv.Label, err)
		}
		if lv.Plan != nil && !lv.Plan.Active() {
			t.Errorf("level %q has an inactive non-nil plan", lv.Label)
		}
	}
}

func TestFaultTableRenders(t *testing.T) {
	n := 16
	rows, err := FaultSweep(n, traffic.RandomMesh(n, 64, 5, 2), []FaultLevel{
		{"none", nil},
		{"corrupt", &fault.Plan{Seed: 1, CorruptProb: 0.05}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := FaultTable(rows).String()
	for _, want := range []string{"wormhole", "circuit", "tdm-dynamic", "tdm-preload", "none", "corrupt", "retries"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
