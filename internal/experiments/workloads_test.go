package experiments

import (
	"strings"
	"testing"

	"pmsnet/internal/plan"
	"pmsnet/internal/tdm"
	"pmsnet/internal/traffic"
)

// The tests in this file pin the acceptance contract of the workload-family
// studies: every family runs under both regimes, the phased family's
// compiler analysis demonstrably feeds per-phase demand into the Solstice
// planner, and permutation churn measurably degrades the scheduler's
// memoized-pass cache relative to a stable permutation. Small n keeps the
// suite fast; the properties are scale-free.

func TestFamilySweepCoversEveryFamily(t *testing.T) {
	rows, err := FamilySweep(16, seed)
	if err != nil {
		t.Fatal(err)
	}
	specs := FamilySpecs()
	if want := len(specs) * 2; len(rows) != want {
		t.Fatalf("got %d rows, want %d (every family under both regimes)", len(rows), want)
	}
	for _, spec := range specs {
		if _, err := traffic.ParseSpec(spec); err != nil {
			t.Errorf("FamilySpecs entry does not parse: %v", err)
		}
	}
	for _, r := range rows {
		if r.Result.Messages == 0 {
			t.Errorf("%s: delivered no messages", r.Label)
		}
		if r.Result.Efficiency <= 0 || r.Result.Efficiency > 1 {
			t.Errorf("%s: efficiency %.3f out of (0,1]", r.Label, r.Result.Efficiency)
		}
	}
}

// TestPhasedFeedsPlanner is the compiled-communication acceptance test: the
// phased family's program, stripped and re-analyzed, must yield multiple
// per-phase demand matrices, and the Solstice preload run must consume them
// (a named planner with planned configurations in its telemetry).
func TestPhasedFeedsPlanner(t *testing.T) {
	st, err := PhasedPlannerStudy(16, "phased", seed)
	if err != nil {
		t.Fatal(err)
	}
	if st.PhaseCount < 2 {
		t.Fatalf("analysis found %d phases, want >= 2", st.PhaseCount)
	}
	if len(st.PhaseDemands) != st.PhaseCount {
		t.Fatalf("got %d demand matrices for %d phases", len(st.PhaseDemands), st.PhaseCount)
	}
	for i, d := range st.PhaseDemands {
		if d <= 0 {
			t.Errorf("phase %d: empty demand matrix", i)
		}
	}
	var solstice *NamedResult
	for i := range st.Rows {
		if strings.Contains(st.Rows[i].Label, "solstice") {
			solstice = &st.Rows[i]
		}
	}
	if solstice == nil {
		t.Fatal("study has no solstice row")
	}
	if solstice.Result.Stats.Planner != "solstice" {
		t.Fatalf("solstice row ran planner %q", solstice.Result.Stats.Planner)
	}
	if solstice.Result.Stats.PlanConfigs == 0 {
		t.Fatal("solstice planner produced no slot configurations from the analysis demand")
	}
	if solstice.Result.Stats.PlanGroups < uint64(st.PhaseCount) {
		t.Errorf("planner packed %d configuration groups for %d phases, want >= one per phase",
			solstice.Result.Stats.PlanGroups, st.PhaseCount)
	}
}

// TestTilesFeedPlannerToo: the SDM-NoC tile family carries its own PHASEHINT
// annotations (each processor participates in a single layer-to-layer phase,
// so the diversity analyzer has no per-program boundary to re-discover), and
// the planner consumes those native per-phase demands directly.
func TestTilesFeedPlannerToo(t *testing.T) {
	wl, err := traffic.Generate("tiles", 16, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.StaticPhases) < 2 {
		t.Fatalf("tiles carries %d static phases, want >= 2", len(wl.StaticPhases))
	}
	rows, err := runTDMCases(Serial, wl, []tdmCase{
		{"preload/solstice", tdm.Config{N: 16, K: Fig4K, Mode: tdm.Preload, Planner: plan.Solstice{}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0].Result
	if r.Stats.Planner != "solstice" || r.Stats.PlanConfigs == 0 {
		t.Fatalf("planner %q produced %d configs on tiles, want solstice with > 0", r.Stats.Planner, r.Stats.PlanConfigs)
	}
	if r.Stats.PlanGroups < uint64(len(wl.StaticPhases)) {
		t.Errorf("planner packed %d groups for %d declared phases", r.Stats.PlanGroups, len(wl.StaticPhases))
	}
}

// TestPermChurnDegradesSchedCaches is the adversarial acceptance test: with
// equal per-connection message volume, the churn workload's memoized-pass
// cache hit ratio must fall far below the stable permutation's, and its warm
// passes must re-evaluate many more rows in total.
func TestPermChurnDegradesSchedCaches(t *testing.T) {
	rows, err := AdversarySweep(16, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want stable + churn", len(rows))
	}
	stable, churn := rows[0], rows[1]
	if !strings.HasPrefix(stable.Label, "shift") || !strings.HasPrefix(churn.Label, "perm-churn") {
		t.Fatalf("unexpected row order: %q, %q", stable.Label, churn.Label)
	}
	sHit, cHit := CacheHitRatio(stable.Result), CacheHitRatio(churn.Result)
	// "Measurable degradation": at least 30 points of hit ratio. Observed:
	// ~0.92 stable vs ~0.08 churn at n=16.
	if cHit > sHit-0.3 {
		t.Errorf("cache hit ratio: churn %.3f vs stable %.3f, want churn lower by >= 0.3", cHit, sHit)
	}
	sDirty, cDirty := stable.Result.Stats.SchedDirtyRows, churn.Result.Stats.SchedDirtyRows
	if cDirty <= 2*sDirty {
		t.Errorf("warm-start dirty rows: churn %d vs stable %d, want churn > 2x", cDirty, sDirty)
	}
	// Both runs must actually exercise the warm path, or the comparison is
	// vacuous.
	if stable.Result.Stats.SchedWarmHits == 0 || churn.Result.Stats.SchedWarmHits == 0 {
		t.Errorf("warm hits: stable %d, churn %d — warm start not exercised",
			stable.Result.Stats.SchedWarmHits, churn.Result.Stats.SchedWarmHits)
	}
}

func TestAdversaryTableRenders(t *testing.T) {
	rows, err := AdversarySweep(16, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := AdversaryTable(16, rows).String()
	for _, want := range []string{"shift", "perm-churn", "cache hit"} {
		if !strings.Contains(out, want) {
			t.Errorf("adversary table missing %q:\n%s", want, out)
		}
	}
	st, err := PhasedPlannerStudy(16, "phased", seed)
	if err != nil {
		t.Fatal(err)
	}
	if s := PhasedStudyTable(st).String(); !strings.Contains(s, "phases discovered") {
		t.Errorf("phased study table missing phase summary:\n%s", s)
	}
}
