package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV emitters for the figure harnesses, so the regenerated series can be
// plotted with any external tool (cmd/figures -csv).

// Fig4CSV writes one Figure-4 panel as CSV: a header of network names and
// one row per message size.
func Fig4CSV(w io.Writer, rows []SizeRow) error {
	cw := csv.NewWriter(w)
	if len(rows) == 0 {
		cw.Flush()
		return cw.Error()
	}
	header := []string{"bytes"}
	for _, r := range rows[0].Results {
		header = append(header, r.Network)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		rec := []string{strconv.Itoa(row.Bytes)}
		for _, r := range row.Results {
			rec = append(rec, formatEff(r.Efficiency))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fig5CSV writes Figure 5 as CSV: determinism against the k=0,1,2 schemes.
func Fig5CSV(w io.Writer, rows []Fig5Row) error {
	cw := csv.NewWriter(w)
	if len(rows) == 0 {
		cw.Flush()
		return cw.Error()
	}
	header := []string{"determinism"}
	for _, r := range rows[0].Results {
		header = append(header, r.Network)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		rec := []string{fmt.Sprintf("%.2f", row.Determinism)}
		for _, r := range row.Results {
			rec = append(rec, formatEff(r.Efficiency))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table3CSV writes the scheduler-latency table as CSV.
func Table3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"n", "fpga_ns", "asic_ns", "software_ns"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.N),
			strconv.FormatInt(int64(r.FPGANs), 10),
			strconv.FormatInt(int64(r.ASICNs), 10),
			fmt.Sprintf("%.0f", r.SoftwareNs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatEff(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
