package experiments

import (
	"testing"

	"pmsnet/internal/traffic"
)

// The tests in this file assert the *published shape* of every figure: who
// wins, by roughly what factor, and where crossovers fall (the reproduction
// contract in DESIGN.md). All runs are deterministic (fixed seeds, single-
// threaded event simulation), so exact orderings are stable.

const seed = 1

// indices into Fig4Networks results
const (
	iWormhole = 0
	iCircuit  = 1
	iDynamic  = 2
	iPreload  = 3
)

func fig4(t *testing.T, p Panel, sizes []int) []SizeRow {
	t.Helper()
	rows, err := Fig4Panel(p, N, sizes, seed)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func eff(row SizeRow, i int) float64 { return row.Results[i].Efficiency }

// TestFig4ScatterStepAndFlattening: "there is a notable increase in
// bandwidth utilization between 32 and 64 bytes ... the efficiency flattens
// out from 64 to 2048 bytes" — the fixed 100 ns slot carries at most 64
// usable bytes.
func TestFig4ScatterStepAndFlattening(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure test")
	}
	rows := fig4(t, Scatter, []int{32, 64, 2048})
	at32, at64, at2048 := rows[0], rows[1], rows[2]
	for _, i := range []int{iDynamic, iPreload} {
		step := eff(at64, i) / eff(at32, i)
		if step < 1.6 {
			t.Errorf("%s: 32->64B step = %.2fx, want a notable (>1.6x) increase",
				at64.Results[i].Network, step)
		}
	}
	// Flattening: preload's efficiency at 2048 B stays within 15% of 64 B.
	flat := eff(at2048, iPreload) / eff(at64, iPreload)
	if flat < 0.85 || flat > 1.15 {
		t.Errorf("preload 64B->2048B ratio = %.2f, want flat (0.85..1.15)", flat)
	}
}

// TestFig4RandomMesh: "both Preload and Dynamic TDM outperform Wormhole and
// Circuit switching by 10 to 25% but are within 10% of each other."
func TestFig4RandomMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure test")
	}
	rows := fig4(t, RandomMesh, []int{64})
	row := rows[0]
	for _, i := range []int{iDynamic, iPreload} {
		name := row.Results[i].Network
		if eff(row, i) < eff(row, iWormhole)*1.10 {
			t.Errorf("%s (%.3f) should beat wormhole (%.3f) by at least 10%%",
				name, eff(row, i), eff(row, iWormhole))
		}
		if eff(row, i) < eff(row, iCircuit)*1.10 {
			t.Errorf("%s (%.3f) should beat circuit (%.3f) by at least 10%%",
				name, eff(row, i), eff(row, iCircuit))
		}
	}
	ratio := eff(row, iDynamic) / eff(row, iPreload)
	if ratio < 1/1.12 || ratio > 1.12 {
		t.Errorf("dynamic (%.3f) and preload (%.3f) should be within ~10%% of each other",
			eff(row, iDynamic), eff(row, iPreload))
	}
}

// TestFig4CircuitImprovesWithSize: "the performance of Circuit switching
// improves when the message size is large" — the 240 ns circuit setup
// amortizes.
func TestFig4CircuitImprovesWithSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure test")
	}
	rows := fig4(t, RandomMesh, []int{8, 64, 512, 2048})
	prev := 0.0
	for _, row := range rows {
		if eff(row, iCircuit) <= prev {
			t.Fatalf("circuit efficiency not increasing at %dB: %.3f after %.3f",
				row.Bytes, eff(row, iCircuit), prev)
		}
		prev = eff(row, iCircuit)
	}
}

// TestFig4OrderedMesh: "The Ordered Mesh, as one would expect does very well
// with Preload. The regularity of the pattern also shows good efficiency for
// TDM but is not exploited for Wormhole or Circuit switching."
func TestFig4OrderedMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure test")
	}
	rows := fig4(t, OrderedMesh, []int{64})
	row := rows[0]
	if eff(row, iPreload) < eff(row, iDynamic)*0.98 {
		t.Errorf("preload (%.3f) should be at least on par with dynamic (%.3f)",
			eff(row, iPreload), eff(row, iDynamic))
	}
	for _, i := range []int{iDynamic, iPreload} {
		if eff(row, i) < eff(row, iWormhole)*1.5 {
			t.Errorf("%s (%.3f) should far exceed wormhole (%.3f) on the regular pattern",
				row.Results[i].Network, eff(row, i), eff(row, iWormhole))
		}
	}
}

// TestFig4TwoPhase: "Preload does better than the rest and the performance
// of dynamically scheduled TDM drops below Wormhole."
func TestFig4TwoPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure test")
	}
	rows := fig4(t, TwoPhase, []int{64})
	row := rows[0]
	for _, i := range []int{iWormhole, iCircuit, iDynamic} {
		if eff(row, iPreload) <= eff(row, i) {
			t.Errorf("preload (%.3f) should beat %s (%.3f)",
				eff(row, iPreload), row.Results[i].Network, eff(row, i))
		}
	}
	if eff(row, iDynamic) >= eff(row, iWormhole) {
		t.Errorf("dynamic TDM (%.3f) should drop below wormhole (%.3f) on two-phase",
			eff(row, iDynamic), eff(row, iWormhole))
	}
}

// TestFig5Claims: "The 1-preload/2-dynamic outperforms the pure dynamic
// scheme even for low determinism (50%). For 85% or greater determinism, the
// 2-preload/1-dynamic scheme performed over 10% better than the
// 1-preload/2-dynamic."
func TestFig5Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale figure test")
	}
	rows, err := Fig5(N, []float64{0.5, 0.85}, 7)
	if err != nil {
		t.Fatal(err)
	}
	low, high := rows[0], rows[1]
	if low.Results[1].Efficiency <= low.Results[0].Efficiency {
		t.Errorf("at 50%% determinism, 1p/2d (%.3f) should outperform 0p/3d (%.3f)",
			low.Results[1].Efficiency, low.Results[0].Efficiency)
	}
	if low.Results[2].Efficiency >= low.Results[1].Efficiency {
		t.Errorf("at 50%% determinism, 2p/1d (%.3f) should trail 1p/2d (%.3f)",
			low.Results[2].Efficiency, low.Results[1].Efficiency)
	}
	if high.Results[2].Efficiency < high.Results[1].Efficiency*1.10 {
		t.Errorf("at 85%% determinism, 2p/1d (%.3f) should beat 1p/2d (%.3f) by over 10%%",
			high.Results[2].Efficiency, high.Results[1].Efficiency)
	}
}

func TestTable3ModelMatchesPaper(t *testing.T) {
	rows := Table3(50)
	want := map[int]int64{4: 34, 8: 49, 16: 76, 32: 120, 64: 213, 128: 385}
	for _, r := range rows {
		if int64(r.FPGANs) != want[r.N] {
			t.Errorf("N=%d: FPGA latency %v, want %d", r.N, r.FPGANs, want[r.N])
		}
		if r.SoftwareNs <= 0 {
			t.Errorf("N=%d: software pass time not measured", r.N)
		}
	}
	if rows[len(rows)-1].ASICNs != 80 {
		t.Errorf("ASIC latency at 128 = %v, want the paper's 80ns", rows[len(rows)-1].ASICNs)
	}
	tbl := Table3Table(rows)
	if tbl.Rows() != len(rows) {
		t.Fatal("table rendering lost rows")
	}
}

func TestPanelsAndTables(t *testing.T) {
	if len(Panels()) != 4 {
		t.Fatal("Figure 4 has four panels")
	}
	if _, err := Panel("bogus").Workload(8, 64, 1); err == nil {
		t.Fatal("unknown panel should error")
	}
	rows, err := Fig4Panel(Scatter, 16, []int{32}, seed)
	if err != nil {
		t.Fatal(err)
	}
	tbl := Fig4Table(Scatter, rows)
	if tbl.Rows() != 1 {
		t.Fatal("panel table should have one row per size")
	}
	frows, err := Fig5(16, []float64{0.5}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if Fig5Table(frows).Rows() != 1 {
		t.Fatal("fig5 table should have one row per determinism")
	}
}

func TestAblationsRun(t *testing.T) {
	wl := traffic.RandomMesh(16, 64, 10, seed)
	pred, err := PredictorAblation(16, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != 5 {
		t.Fatalf("predictor ablation rows = %d, want 5", len(pred))
	}
	if AblationTable("predictors", pred).Rows() != 5 {
		t.Fatal("ablation table lost rows")
	}
	deg, err := DegreeSweep(16, []int{1, 2, 4, 8}, wl)
	if err != nil {
		t.Fatal(err)
	}
	// More multiplexing must not hurt the mesh working set (degree 4): K=4
	// should beat K=1 (circuit-switching degenerate case) clearly.
	var k1, k4 float64
	for _, r := range deg {
		switch r.Label {
		case "K=1":
			k1 = r.Result.Efficiency
		case "K=4":
			k4 = r.Result.Efficiency
		}
	}
	if k4 <= k1 {
		t.Errorf("K=4 (%.3f) should beat K=1 (%.3f) on the degree-4 working set", k4, k1)
	}
	rot, err := RotationAblation(16, traffic.OrderedMesh(16, 64, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(rot) != 2 {
		t.Fatal("rotation ablation rows")
	}
	skip, err := SkipEmptyAblation(16, 8, traffic.OrderedMesh(16, 64, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Empty-slot skipping must help (or at least not hurt) when the working
	// set is far smaller than K.
	if skip[1].Result.Efficiency < skip[0].Result.Efficiency {
		t.Errorf("skip-empty=true (%.3f) should not lose to false (%.3f)",
			skip[1].Result.Efficiency, skip[0].Result.Efficiency)
	}
	sl, err := SLCopiesSweep(16, []int{1, 2, 4}, traffic.AllToAll(16, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(sl) != 3 {
		t.Fatal("sl sweep rows")
	}
	dec := DecomposerComparison([]*traffic.Workload{wl, traffic.AllToAll(16, 8)})
	for _, d := range dec {
		if d.ExactConfigs != d.Degree {
			t.Errorf("%s: exact decomposer used %d configs, want degree %d", d.Workload, d.ExactConfigs, d.Degree)
		}
		if d.GreedyConfigs < d.ExactConfigs {
			t.Errorf("%s: greedy (%d) cannot beat exact (%d)", d.Workload, d.GreedyConfigs, d.ExactConfigs)
		}
	}
}
