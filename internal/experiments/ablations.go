package experiments

import (
	"fmt"

	"pmsnet/internal/metrics"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// Ablation studies for the design choices the paper motivates but does not
// quantify: the eviction predictor (§3.2), the multiplexing degree (§2),
// priority rotation and empty-slot skipping (§4), multiple SL copies
// (extension 1), and the preload decomposer (exact vs greedy coloring).

// NamedResult pairs a configuration label with its run result.
type NamedResult struct {
	Label  string
	Result metrics.Result
}

// PredictorAblation runs dynamic TDM over one workload under each eviction
// policy: pure reactive release (no latching), the paper's timeout, the
// counter predictor, never-evict, and the clairvoyant oracle.
func PredictorAblation(n int, wl *traffic.Workload) ([]NamedResult, error) {
	uses := connUses(wl)
	cases := []struct {
		label string
		pred  func() predictor.Predictor
	}{
		{"reactive (release on empty)", nil},
		{"timeout(500ns)", func() predictor.Predictor { return predictor.NewTimeout(500) }},
		{"timeout(2us)", func() predictor.Predictor { return predictor.NewTimeout(2 * sim.Microsecond) }},
		{"counter(8)", func() predictor.Predictor { return predictor.NewCounter(8) }},
		{"oracle", func() predictor.Predictor { return predictor.NewOracle(uses) }},
	}
	var out []NamedResult
	for _, c := range cases {
		nw, err := tdm.New(tdm.Config{N: n, K: Fig4K, NewPredictor: c.pred})
		if err != nil {
			return nil, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: predictor %q: %w", c.label, err)
		}
		out = append(out, NamedResult{Label: c.label, Result: res})
	}
	return out, nil
}

// connUses counts messages per connection — the oracle's plan.
func connUses(wl *traffic.Workload) map[topology.Conn]int {
	uses := make(map[topology.Conn]int)
	for p, prog := range wl.Programs {
		for _, op := range prog.Ops {
			if op.Kind == traffic.OpSend || op.Kind == traffic.OpSendWait {
				uses[topology.Conn{Src: p, Dst: op.Dst}]++
			}
		}
	}
	return uses
}

// DegreeSweep runs dynamic TDM with multiplexing degrees ks over one
// workload, using the paper's timeout-predictor configuration. K=1 is the
// circuit-switching degenerate case of the framework (§3: "circuit switching
// amounts to TDM with a multiplexing degree of one"): with only one
// configuration register, a working set larger than one connection per port
// thrashes, which is exactly the caching argument for multiplexing. Note the
// trade-off the paper states in §2 — each connection gets 1/k of the link
// bandwidth — so K far above the working-set degree wastes bandwidth too.
func DegreeSweep(n int, ks []int, wl *traffic.Workload) ([]NamedResult, error) {
	var out []NamedResult
	for _, k := range ks {
		nw, err := tdm.New(tdm.Config{N: n, K: k,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) }})
		if err != nil {
			return nil, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: K=%d: %w", k, err)
		}
		out = append(out, NamedResult{Label: fmt.Sprintf("K=%d", k), Result: res})
	}
	return out, nil
}

// RotationAblation compares rotating vs fixed scheduling priority on a
// hotspot workload where low-numbered ports would otherwise starve
// high-numbered ones. It reports per-configuration results; the interesting
// output is the p95 latency spread.
func RotationAblation(n int, wl *traffic.Workload) ([]NamedResult, error) {
	var out []NamedResult
	for _, rot := range []bool{false, true} {
		rot := rot
		nw, err := tdm.New(tdm.Config{N: n, K: Fig4K, RotatePriority: &rot})
		if err != nil {
			return nil, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: rotate=%v: %w", rot, err)
		}
		out = append(out, NamedResult{Label: fmt.Sprintf("rotate=%v", rot), Result: res})
	}
	return out, nil
}

// SkipEmptyAblation compares the TDM counter with and without empty-slot
// skipping on a workload whose active working set is far smaller than K —
// the feature's motivating case (§4: the counter "skips over empty
// configurations and allows the scheduler to reduce the multiplexing
// degrees").
func SkipEmptyAblation(n, k int, wl *traffic.Workload) ([]NamedResult, error) {
	var out []NamedResult
	for _, skip := range []bool{false, true} {
		skip := skip
		nw, err := tdm.New(tdm.Config{N: n, K: k, SkipEmptySlots: &skip})
		if err != nil {
			return nil, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: skip=%v: %w", skip, err)
		}
		out = append(out, NamedResult{Label: fmt.Sprintf("skip-empty=%v", skip), Result: res})
	}
	return out, nil
}

// SLCopiesSweep measures extension 1 (multiple scheduling-logic units) on a
// scheduler-bound workload.
func SLCopiesSweep(n int, copies []int, wl *traffic.Workload) ([]NamedResult, error) {
	var out []NamedResult
	for _, c := range copies {
		nw, err := tdm.New(tdm.Config{N: n, K: Fig4K, SLCopies: c})
		if err != nil {
			return nil, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: SLCopies=%d: %w", c, err)
		}
		out = append(out, NamedResult{Label: fmt.Sprintf("sl-copies=%d", c), Result: res})
	}
	return out, nil
}

// DecomposerRow compares the exact edge-coloring decomposer against the
// greedy first-fit decomposer on one working set.
type DecomposerRow struct {
	Workload      string
	Degree        int
	ExactConfigs  int
	GreedyConfigs int
}

// DecomposerComparison decomposes each workload's union working set both
// ways. The exact decomposer always achieves the degree lower bound; the
// greedy one may exceed it, which translates into more preload groups.
func DecomposerComparison(wls []*traffic.Workload) []DecomposerRow {
	var out []DecomposerRow
	for _, wl := range wls {
		ws := wl.ConnSet()
		out = append(out, DecomposerRow{
			Workload:      wl.Name,
			Degree:        ws.Degree(),
			ExactConfigs:  len(topology.Decompose(ws)),
			GreedyConfigs: len(topology.GreedyDecompose(ws)),
		})
	}
	return out
}

// AblationTable renders named results with efficiency, latency and hit-rate
// columns.
func AblationTable(title string, rows []NamedResult) *metrics.Table {
	t := metrics.NewTable(title, "config", "efficiency", "makespan", "p95 latency", "hit rate", "fairness", "evictions")
	for _, r := range rows {
		t.AddRowf(r.Label, r.Result.Efficiency, r.Result.Makespan.String(),
			r.Result.LatencyP95.String(), r.Result.Stats.HitRate(), r.Result.FairnessJain,
			r.Result.Stats.Evictions)
	}
	return t
}
