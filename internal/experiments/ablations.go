package experiments

import (
	"fmt"

	"pmsnet/internal/metrics"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
)

// Ablation studies for the design choices the paper motivates but does not
// quantify: the eviction predictor (§3.2), the multiplexing degree (§2),
// priority rotation and empty-slot skipping (§4), multiple SL copies
// (extension 1), and the preload decomposer (exact vs greedy coloring).

// NamedResult pairs a configuration label with its run result.
type NamedResult struct {
	Label  string
	Result metrics.Result
}

// tdmCase is one point of a TDM-configuration ablation: a label and the
// configuration it stands for.
type tdmCase struct {
	label string
	cfg   tdm.Config
}

// runTDMCases runs one workload through each configuration, fanning the
// points out through the executor — the shared backbone of the ablation
// sweeps. Each point constructs its own network from the (read-only) case
// config, so points share nothing but the workload, which runs never
// mutate.
func runTDMCases(ex Exec, wl *traffic.Workload, cases []tdmCase) ([]NamedResult, error) {
	return sweep(ex, len(cases), func(i int) (NamedResult, error) {
		c := cases[i]
		nw, err := newTDM(c.cfg)
		if err != nil {
			return NamedResult{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return NamedResult{}, fmt.Errorf("experiments: %s on %s: %w", c.label, wl.Name, err)
		}
		return NamedResult{Label: c.label, Result: res}, nil
	})
}

// PredictorAblation runs dynamic TDM over one workload under each eviction
// policy: pure reactive release (no latching), the paper's timeout, the
// counter predictor, never-evict, and the clairvoyant oracle.
func PredictorAblation(n int, wl *traffic.Workload) ([]NamedResult, error) {
	return PredictorAblationExec(Serial, n, wl)
}

// PredictorAblationExec is PredictorAblation with an explicit executor.
func PredictorAblationExec(ex Exec, n int, wl *traffic.Workload) ([]NamedResult, error) {
	uses := connUses(wl)
	preds := []struct {
		label string
		pred  func() predictor.Predictor
	}{
		{"reactive (release on empty)", nil},
		{"timeout(500ns)", func() predictor.Predictor { return predictor.NewTimeout(500) }},
		{"timeout(2us)", func() predictor.Predictor { return predictor.NewTimeout(2 * sim.Microsecond) }},
		{"counter(8)", func() predictor.Predictor { return predictor.NewCounter(8) }},
		{"oracle", func() predictor.Predictor { return predictor.NewOracle(uses) }},
	}
	cases := make([]tdmCase, len(preds))
	for i, p := range preds {
		cases[i] = tdmCase{label: p.label, cfg: tdm.Config{N: n, K: Fig4K, NewPredictor: p.pred}}
	}
	return runTDMCases(ex, wl, cases)
}

// connUses counts messages per connection — the oracle's plan.
func connUses(wl *traffic.Workload) map[topology.Conn]int {
	uses := make(map[topology.Conn]int)
	for p, prog := range wl.Programs {
		for _, op := range prog.Ops {
			if op.Kind == traffic.OpSend || op.Kind == traffic.OpSendWait {
				uses[topology.Conn{Src: p, Dst: op.Dst}]++
			}
		}
	}
	return uses
}

// DegreeSweep runs dynamic TDM with multiplexing degrees ks over one
// workload, using the paper's timeout-predictor configuration. K=1 is the
// circuit-switching degenerate case of the framework (§3: "circuit switching
// amounts to TDM with a multiplexing degree of one"): with only one
// configuration register, a working set larger than one connection per port
// thrashes, which is exactly the caching argument for multiplexing. Note the
// trade-off the paper states in §2 — each connection gets 1/k of the link
// bandwidth — so K far above the working-set degree wastes bandwidth too.
func DegreeSweep(n int, ks []int, wl *traffic.Workload) ([]NamedResult, error) {
	return DegreeSweepExec(Serial, n, ks, wl)
}

// DegreeSweepExec is DegreeSweep with an explicit executor.
func DegreeSweepExec(ex Exec, n int, ks []int, wl *traffic.Workload) ([]NamedResult, error) {
	cases := make([]tdmCase, len(ks))
	for i, k := range ks {
		cases[i] = tdmCase{label: fmt.Sprintf("K=%d", k), cfg: tdm.Config{N: n, K: k,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) }}}
	}
	return runTDMCases(ex, wl, cases)
}

// RotationAblation compares rotating vs fixed scheduling priority on a
// hotspot workload where low-numbered ports would otherwise starve
// high-numbered ones. It reports per-configuration results; the interesting
// output is the p95 latency spread.
func RotationAblation(n int, wl *traffic.Workload) ([]NamedResult, error) {
	return RotationAblationExec(Serial, n, wl)
}

// RotationAblationExec is RotationAblation with an explicit executor.
func RotationAblationExec(ex Exec, n int, wl *traffic.Workload) ([]NamedResult, error) {
	var cases []tdmCase
	for _, rot := range []bool{false, true} {
		rot := rot
		cases = append(cases, tdmCase{label: fmt.Sprintf("rotate=%v", rot),
			cfg: tdm.Config{N: n, K: Fig4K, RotatePriority: &rot}})
	}
	return runTDMCases(ex, wl, cases)
}

// SkipEmptyAblation compares the TDM counter with and without empty-slot
// skipping on a workload whose active working set is far smaller than K —
// the feature's motivating case (§4: the counter "skips over empty
// configurations and allows the scheduler to reduce the multiplexing
// degrees").
func SkipEmptyAblation(n, k int, wl *traffic.Workload) ([]NamedResult, error) {
	return SkipEmptyAblationExec(Serial, n, k, wl)
}

// SkipEmptyAblationExec is SkipEmptyAblation with an explicit executor.
func SkipEmptyAblationExec(ex Exec, n, k int, wl *traffic.Workload) ([]NamedResult, error) {
	var cases []tdmCase
	for _, skip := range []bool{false, true} {
		skip := skip
		cases = append(cases, tdmCase{label: fmt.Sprintf("skip-empty=%v", skip),
			cfg: tdm.Config{N: n, K: k, SkipEmptySlots: &skip}})
	}
	return runTDMCases(ex, wl, cases)
}

// SLCopiesSweep measures extension 1 (multiple scheduling-logic units) on a
// scheduler-bound workload.
func SLCopiesSweep(n int, copies []int, wl *traffic.Workload) ([]NamedResult, error) {
	return SLCopiesSweepExec(Serial, n, copies, wl)
}

// SLCopiesSweepExec is SLCopiesSweep with an explicit executor.
func SLCopiesSweepExec(ex Exec, n int, copies []int, wl *traffic.Workload) ([]NamedResult, error) {
	cases := make([]tdmCase, len(copies))
	for i, c := range copies {
		cases[i] = tdmCase{label: fmt.Sprintf("sl-copies=%d", c), cfg: tdm.Config{N: n, K: Fig4K, SLCopies: c}}
	}
	return runTDMCases(ex, wl, cases)
}

// DecomposerRow compares the exact edge-coloring decomposer against the
// greedy first-fit decomposer on one working set.
type DecomposerRow struct {
	Workload      string
	Degree        int
	ExactConfigs  int
	GreedyConfigs int
}

// DecomposerComparison decomposes each workload's union working set both
// ways. The exact decomposer always achieves the degree lower bound; the
// greedy one may exceed it, which translates into more preload groups.
func DecomposerComparison(wls []*traffic.Workload) []DecomposerRow {
	var out []DecomposerRow
	for _, wl := range wls {
		ws := wl.ConnSet()
		out = append(out, DecomposerRow{
			Workload:      wl.Name,
			Degree:        ws.Degree(),
			ExactConfigs:  len(topology.Decompose(ws)),
			GreedyConfigs: len(topology.GreedyDecompose(ws)),
		})
	}
	return out
}

// AblationTable renders named results with efficiency, latency and hit-rate
// columns.
func AblationTable(title string, rows []NamedResult) *metrics.Table {
	t := metrics.NewTable(title, "config", "efficiency", "makespan", "p95 latency", "hit rate", "fairness", "evictions")
	for _, r := range rows {
		t.AddRowf(r.Label, r.Result.Efficiency, r.Result.Makespan.String(),
			r.Result.LatencyP95.String(), r.Result.Stats.HitRate(), r.Result.FairnessJain,
			r.Result.Stats.Evictions)
	}
	return t
}
