package experiments

import (
	"fmt"
	"math"

	"pmsnet/internal/meshnet"
	"pmsnet/internal/metrics"
	"pmsnet/internal/multistage"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
	"pmsnet/internal/voq"
)

// Extension studies: bandwidth amplification (core extension 2), predictive
// pre-establishment (§3.2's forward-prediction direction), the slot-payload
// (guard-band) fraction, multi-seed robustness, and multistage fabrics.

// AmplifyAblation compares dynamic TDM with and without bandwidth
// amplification on a hotspot workload whose hot stream outruns a single
// slot's share.
func AmplifyAblation(n int, wl *traffic.Workload) ([]NamedResult, error) {
	var out []NamedResult
	for _, amplify := range []int{0, 256} {
		nw, err := tdm.New(tdm.Config{N: n, K: Fig4K, AmplifyBytes: amplify,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) }})
		if err != nil {
			return nil, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: amplify=%d: %w", amplify, err)
		}
		label := "amplify=off"
		if amplify > 0 {
			label = fmt.Sprintf("amplify>%dB", amplify)
		}
		out = append(out, NamedResult{Label: label, Result: res})
	}
	return out, nil
}

// PrefetchAblation compares the plain timeout predictor against the Markov
// prefetching predictor on a workload with a learnable destination cycle
// and inter-send compute gaps.
func PrefetchAblation(n int, wl *traffic.Workload) ([]NamedResult, error) {
	cases := []struct {
		label string
		pred  func() predictor.Predictor
	}{
		{"timeout(2us)", func() predictor.Predictor { return predictor.NewTimeout(2000) }},
		{"markov-prefetch(2us)", func() predictor.Predictor { return predictor.NewMarkov(2000, 1) }},
	}
	var out []NamedResult
	for _, c := range cases {
		nw, err := tdm.New(tdm.Config{N: n, K: Fig4K, NewPredictor: c.pred})
		if err != nil {
			return nil, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", c.label, err)
		}
		out = append(out, NamedResult{Label: c.label, Result: res})
	}
	return out, nil
}

// CyclicWorkload builds the prefetch ablation's traffic: every processor
// cycles deterministically over three distant destinations with `gap` of
// compute between sends — regular enough for a Markov predictor, too sparse
// for a timeout latch to survive a full cycle.
func CyclicWorkload(n, bytes, cycles int, gap sim.Time) *traffic.Workload {
	if n < 8 {
		panic(fmt.Sprintf("experiments: cyclic workload needs n >= 8, got %d", n))
	}
	w := &traffic.Workload{Name: fmt.Sprintf("cyclic/%dB", bytes), N: n, Programs: make([]traffic.Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		dsts := []int{(p + 1) % n, (p + n/2) % n, (p + n - 3) % n}
		var ops []traffic.Op
		for c := 0; c < cycles; c++ {
			for _, d := range dsts {
				if d == p {
					continue
				}
				ops = append(ops, traffic.Send(d, bytes), traffic.Delay(gap))
			}
		}
		for _, d := range dsts {
			if d != p {
				phase.Add(topology.Conn{Src: p, Dst: d})
			}
		}
		w.Programs[p] = traffic.Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// PayloadSweep varies the usable payload per 100 ns slot — the complement of
// the guard-band + framing fraction (DESIGN.md models 64 of 80 raw bytes).
// A larger guard band wastes line rate; the sweep quantifies the
// sensitivity.
func PayloadSweep(n int, payloads []int, wl *traffic.Workload) ([]NamedResult, error) {
	var out []NamedResult
	for _, p := range payloads {
		nw, err := tdm.New(tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload, PayloadBytes: p})
		if err != nil {
			return nil, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: payload=%d: %w", p, err)
		}
		out = append(out, NamedResult{Label: fmt.Sprintf("payload=%dB", p), Result: res})
	}
	return out, nil
}

// SeedStats summarizes a metric across seeds.
type SeedStats struct {
	Mean, StdDev, Min, Max float64
	Seeds                  int
}

// SeedSweep runs fn for every seed and aggregates the efficiencies —
// the robustness check that single-seed figures are representative.
func SeedSweep(seeds []int64, fn func(seed int64) (metrics.Result, error)) (SeedStats, error) {
	if len(seeds) == 0 {
		return SeedStats{}, fmt.Errorf("experiments: no seeds")
	}
	var values []float64
	for _, s := range seeds {
		res, err := fn(s)
		if err != nil {
			return SeedStats{}, fmt.Errorf("experiments: seed %d: %w", s, err)
		}
		values = append(values, res.Efficiency)
	}
	st := SeedStats{Seeds: len(values), Min: values[0], Max: values[0]}
	var sum float64
	for _, v := range values {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(values))
	var sq float64
	for _, v := range values {
		sq += (v - st.Mean) * (v - st.Mean)
	}
	if len(values) > 1 {
		st.StdDev = math.Sqrt(sq / float64(len(values)-1))
	}
	return st, nil
}

// ModernBaseline compares the paper's switch against an iSLIP VOQ cell
// switch (the post-paper standard for crossbar routers) on one workload:
// wormhole, iSLIP, dynamic TDM (paper config) and preload TDM. This
// comparison goes beyond the paper's evaluation; see internal/voq.
func ModernBaseline(n int, wl *traffic.Workload) ([]NamedResult, error) {
	islip, err := voq.New(voq.Config{N: n})
	if err != nil {
		return nil, err
	}
	nets, err := Fig4Networks(n)
	if err != nil {
		return nil, err
	}
	// wormhole, islip, dynamic, preload (skip the circuit baseline: it is
	// dominated everywhere except very large messages).
	ordered := []netmodel.Network{nets[0], islip, nets[2], nets[3]}
	var out []NamedResult
	for _, nw := range ordered {
		res, err := nw.Run(wl)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", nw.Name(), err)
		}
		out = append(out, NamedResult{Label: nw.Name(), Result: res})
	}
	return out, nil
}

// OmegaFabricStudy runs dynamic TDM on the crossbar and on the blocking
// Omega fabric over each workload. Structured permutations separate the
// fabrics: a uniform shift routes through the Omega in one pass, while bit
// reversal conflicts heavily and must spread across TDM slots — the
// crossbar treats both identically. n must be a power of two.
func OmegaFabricStudy(n int, wls []*traffic.Workload) ([]NamedResult, error) {
	var out []NamedResult
	for _, wl := range wls {
		for _, fab := range []tdm.FabricKind{tdm.CrossbarFabric, tdm.OmegaFabric} {
			nw, err := tdm.New(tdm.Config{N: n, K: Fig4K, Fabric: fab})
			if err != nil {
				return nil, err
			}
			res, err := nw.Run(wl)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", fab, wl.Name, err)
			}
			out = append(out, NamedResult{
				Label:  fmt.Sprintf("%s on %s", wl.Name, fab),
				Result: res,
			})
		}
	}
	return out, nil
}

// SparsePermutation builds a light-load permutation workload: every
// processor sends `msgs` messages to its fixed permutation partner with
// `gap` of compute between sends. Light load isolates the per-hop latency
// difference between multi-hop paradigms from congestion effects.
func SparsePermutation(base *traffic.Workload, gap sim.Time) *traffic.Workload {
	out := &traffic.Workload{
		Name:         base.Name + "/sparse",
		N:            base.N,
		Programs:     make([]traffic.Program, base.N),
		StaticPhases: base.StaticPhases,
	}
	for p, prog := range base.Programs {
		var ops []traffic.Op
		for _, op := range prog.Ops {
			if op.Kind == traffic.OpSend || op.Kind == traffic.OpSendWait {
				ops = append(ops, traffic.Delay(gap), op)
			}
		}
		out.Programs[p] = traffic.Program{Ops: ops}
	}
	return out
}

// MultiHopStudy tests the paper's concluding claim that the
// connection-oriented approach is "amplified when multi-hop networks are
// considered since it avoids buffering at intermediate switches": it runs
// the multi-hop wormhole mesh and the multi-hop TDM-circuit mesh
// (internal/meshnet) on each workload. Long-path traffic (e.g. Transpose)
// maximizes the per-hop cost difference; run both a saturated workload (the
// throughput view, where whole-path slot reservation costs the TDM mesh
// capacity) and a SparsePermutation variant (the latency view, where the
// end-to-end analog pipe pays ~20 ns per extra hop against wormhole's
// ~100 ns of per-hop serdes + arbitration).
func MultiHopStudy(n int, wls []*traffic.Workload) ([]NamedResult, error) {
	wh, err := meshnet.NewWormhole(meshnet.WormholeConfig{N: n})
	if err != nil {
		return nil, err
	}
	td, err := meshnet.NewTDM(meshnet.TDMConfig{N: n, K: Fig4K})
	if err != nil {
		return nil, err
	}
	var out []NamedResult
	for _, wl := range wls {
		for _, nw := range []netmodel.Network{wh, td} {
			res, err := nw.Run(wl)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s: %w", nw.Name(), wl.Name, err)
			}
			out = append(out, NamedResult{Label: fmt.Sprintf("%s on %s", wl.Name, nw.Name()), Result: res})
		}
	}
	return out, nil
}

// FabricRow compares fabric families on one working set: the slots a
// crossbar needs (the degree-optimal decomposition), the slots an Omega
// network needs under its blocking constraints, and the Benes network's
// stage cost for the same capability as the crossbar.
type FabricRow struct {
	Workload      string
	Degree        int
	CrossbarSlots int
	OmegaSlots    int
	OmegaStages   int
	BenesStages   int
}

// FabricComparison quantifies paper §4's remark that "more complicated
// constraints may be derived for fabrics that have limited permutation
// capabilities": the extra multiplexing degree an Omega fabric pays, versus
// the extra stages a non-blocking Benes fabric pays. n must be a power of
// two.
func FabricComparison(n int, wls []*traffic.Workload) ([]FabricRow, error) {
	omega, err := multistage.NewOmega(n)
	if err != nil {
		return nil, err
	}
	benes, err := multistage.NewBenes(n)
	if err != nil {
		return nil, err
	}
	var out []FabricRow
	for _, wl := range wls {
		ws := wl.ConnSet()
		oc, err := multistage.DecomposeOmega(ws, omega)
		if err != nil {
			return nil, err
		}
		out = append(out, FabricRow{
			Workload:      wl.Name,
			Degree:        ws.Degree(),
			CrossbarSlots: len(topology.Decompose(ws)),
			OmegaSlots:    len(oc),
			OmegaStages:   omega.Stages(),
			BenesStages:   benes.Stages(),
		})
	}
	return out, nil
}

// FabricTable renders fabric-comparison rows.
func FabricTable(rows []FabricRow) *metrics.Table {
	t := metrics.NewTable("Fabric comparison: TDM slots needed per working set",
		"workload", "degree", "crossbar slots", "omega slots", "omega stages", "benes stages")
	for _, r := range rows {
		t.AddRowf(r.Workload, r.Degree, r.CrossbarSlots, r.OmegaSlots, r.OmegaStages, r.BenesStages)
	}
	return t
}
