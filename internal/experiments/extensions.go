package experiments

import (
	"fmt"
	"math"

	"pmsnet/internal/core"
	"pmsnet/internal/fabric"
	"pmsnet/internal/meshnet"
	"pmsnet/internal/metrics"
	"pmsnet/internal/multistage"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/topology"
	"pmsnet/internal/traffic"
	"pmsnet/internal/voq"
)

// Extension studies: bandwidth amplification (core extension 2), predictive
// pre-establishment (§3.2's forward-prediction direction), the slot-payload
// (guard-band) fraction, multi-seed robustness, and multistage fabrics.

// AmplifyAblation compares dynamic TDM with and without bandwidth
// amplification on a hotspot workload whose hot stream outruns a single
// slot's share.
func AmplifyAblation(n int, wl *traffic.Workload) ([]NamedResult, error) {
	return AmplifyAblationExec(Serial, n, wl)
}

// AmplifyAblationExec is AmplifyAblation with an explicit executor.
func AmplifyAblationExec(ex Exec, n int, wl *traffic.Workload) ([]NamedResult, error) {
	var cases []tdmCase
	for _, amplify := range []int{0, 256} {
		label := "amplify=off"
		if amplify > 0 {
			label = fmt.Sprintf("amplify>%dB", amplify)
		}
		cases = append(cases, tdmCase{label: label, cfg: tdm.Config{N: n, K: Fig4K, AmplifyBytes: amplify,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) }}})
	}
	return runTDMCases(ex, wl, cases)
}

// PrefetchAblation compares the plain timeout predictor against the Markov
// prefetching predictor on a workload with a learnable destination cycle
// and inter-send compute gaps.
func PrefetchAblation(n int, wl *traffic.Workload) ([]NamedResult, error) {
	return PrefetchAblationExec(Serial, n, wl)
}

// PrefetchAblationExec is PrefetchAblation with an explicit executor.
func PrefetchAblationExec(ex Exec, n int, wl *traffic.Workload) ([]NamedResult, error) {
	preds := []struct {
		label string
		pred  func() predictor.Predictor
	}{
		{"timeout(2us)", func() predictor.Predictor { return predictor.NewTimeout(2000) }},
		{"markov-prefetch(2us)", func() predictor.Predictor { return predictor.NewMarkov(2000, 1) }},
	}
	cases := make([]tdmCase, len(preds))
	for i, p := range preds {
		cases[i] = tdmCase{label: p.label, cfg: tdm.Config{N: n, K: Fig4K, NewPredictor: p.pred}}
	}
	return runTDMCases(ex, wl, cases)
}

// CyclicWorkload builds the prefetch ablation's traffic: every processor
// cycles deterministically over three distant destinations with `gap` of
// compute between sends — regular enough for a Markov predictor, too sparse
// for a timeout latch to survive a full cycle.
func CyclicWorkload(n, bytes, cycles int, gap sim.Time) *traffic.Workload {
	if n < 8 {
		panic(fmt.Sprintf("experiments: cyclic workload needs n >= 8, got %d", n))
	}
	w := &traffic.Workload{Name: fmt.Sprintf("cyclic/%dB", bytes), N: n, Programs: make([]traffic.Program, n)}
	phase := topology.NewWorkingSet(n)
	for p := 0; p < n; p++ {
		dsts := []int{(p + 1) % n, (p + n/2) % n, (p + n - 3) % n}
		var ops []traffic.Op
		for c := 0; c < cycles; c++ {
			for _, d := range dsts {
				if d == p {
					continue
				}
				ops = append(ops, traffic.Send(d, bytes), traffic.Delay(gap))
			}
		}
		for _, d := range dsts {
			if d != p {
				phase.Add(topology.Conn{Src: p, Dst: d})
			}
		}
		w.Programs[p] = traffic.Program{Ops: ops}
	}
	w.StaticPhases = []*topology.WorkingSet{phase}
	return w
}

// PayloadSweep varies the usable payload per 100 ns slot — the complement of
// the guard-band + framing fraction (DESIGN.md models 64 of 80 raw bytes).
// A larger guard band wastes line rate; the sweep quantifies the
// sensitivity.
func PayloadSweep(n int, payloads []int, wl *traffic.Workload) ([]NamedResult, error) {
	return PayloadSweepExec(Serial, n, payloads, wl)
}

// PayloadSweepExec is PayloadSweep with an explicit executor.
func PayloadSweepExec(ex Exec, n int, payloads []int, wl *traffic.Workload) ([]NamedResult, error) {
	cases := make([]tdmCase, len(payloads))
	for i, p := range payloads {
		cases[i] = tdmCase{label: fmt.Sprintf("payload=%dB", p),
			cfg: tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload, PayloadBytes: p}}
	}
	return runTDMCases(ex, wl, cases)
}

// SeedStats summarizes a metric across seeds.
type SeedStats struct {
	Mean, StdDev, Min, Max float64
	Seeds                  int
}

// SeedSweep runs fn for every seed and aggregates the efficiencies —
// the robustness check that single-seed figures are representative.
func SeedSweep(seeds []int64, fn func(seed int64) (metrics.Result, error)) (SeedStats, error) {
	return SeedSweepExec(Serial, seeds, fn)
}

// SeedSweepExec is SeedSweep with an explicit executor: seeds run
// independently, and the aggregation consumes them in seed order, so the
// statistics are identical at any parallelism. fn must be safe for
// concurrent calls when the executor is parallel (the harness closures in
// this package all are: each call builds its own workload and network).
func SeedSweepExec(ex Exec, seeds []int64, fn func(seed int64) (metrics.Result, error)) (SeedStats, error) {
	if len(seeds) == 0 {
		return SeedStats{}, fmt.Errorf("experiments: no seeds")
	}
	values, err := sweep(ex, len(seeds), func(i int) (float64, error) {
		res, err := fn(seeds[i])
		if err != nil {
			return 0, fmt.Errorf("experiments: seed %d: %w", seeds[i], err)
		}
		return res.Efficiency, nil
	})
	if err != nil {
		return SeedStats{}, err
	}
	st := SeedStats{Seeds: len(values), Min: values[0], Max: values[0]}
	var sum float64
	for _, v := range values {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(values))
	var sq float64
	for _, v := range values {
		sq += (v - st.Mean) * (v - st.Mean)
	}
	if len(values) > 1 {
		st.StdDev = math.Sqrt(sq / float64(len(values)-1))
	}
	return st, nil
}

// ModernBaseline compares the paper's switch against an iSLIP VOQ cell
// switch (the post-paper standard for crossbar routers) on one workload:
// wormhole, iSLIP, dynamic TDM (paper config) and preload TDM. This
// comparison goes beyond the paper's evaluation; see internal/voq.
func ModernBaseline(n int, wl *traffic.Workload) ([]NamedResult, error) {
	return ModernBaselineExec(Serial, n, wl)
}

// ModernBaselineExec is ModernBaseline with an explicit executor.
func ModernBaselineExec(ex Exec, n int, wl *traffic.Workload) ([]NamedResult, error) {
	fig4 := fig4Builders(n)
	// wormhole, islip, dynamic, preload (skip the circuit baseline: it is
	// dominated everywhere except very large messages).
	builders := []func() (netmodel.Network, error){
		fig4[0],
		func() (netmodel.Network, error) { return voq.New(voq.Config{N: n}) },
		fig4[2],
		fig4[3],
	}
	return sweep(ex, len(builders), func(i int) (NamedResult, error) {
		nw, err := builders[i]()
		if err != nil {
			return NamedResult{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return NamedResult{}, fmt.Errorf("experiments: %s: %w", nw.Name(), err)
		}
		return NamedResult{Label: nw.Name(), Result: res}, nil
	})
}

// OmegaFabricStudy runs dynamic TDM on the crossbar and on the blocking
// Omega fabric over each workload. Structured permutations separate the
// fabrics: a uniform shift routes through the Omega in one pass, while bit
// reversal conflicts heavily and must spread across TDM slots — the
// crossbar treats both identically. n must be a power of two.
func OmegaFabricStudy(n int, wls []*traffic.Workload) ([]NamedResult, error) {
	return OmegaFabricStudyExec(Serial, n, wls)
}

// OmegaFabricStudyExec is OmegaFabricStudy with an explicit executor; each
// (workload, fabric) pair is one sweep point.
func OmegaFabricStudyExec(ex Exec, n int, wls []*traffic.Workload) ([]NamedResult, error) {
	fabrics := []fabric.Kind{fabric.KindCrossbar, fabric.KindOmega}
	return sweep(ex, len(wls)*len(fabrics), func(i int) (NamedResult, error) {
		wl, fab := wls[i/len(fabrics)], fabrics[i%len(fabrics)]
		nw, err := newTDM(tdm.Config{N: n, K: Fig4K, Fabric: fab})
		if err != nil {
			return NamedResult{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return NamedResult{}, fmt.Errorf("experiments: %s on %s: %w", fab, wl.Name, err)
		}
		return NamedResult{
			Label:  fmt.Sprintf("%s on %s", wl.Name, fab),
			Result: res,
		}, nil
	})
}

// FabricBackendSweep runs dynamic TDM end-to-end on every fabric backend —
// crossbar, Omega, Clos, and Benes — over the paper's four Figure 4 traffic
// patterns. The rearrangeable fabrics (crossbar, Clos, Benes) realize every
// scheduler configuration and so report identical figures; the blocking
// Omega pays extra TDM slots whenever a pass conflicts in its single-path
// routing.
func FabricBackendSweep(n, bytes int, seed int64) ([]NamedResult, error) {
	return FabricBackendSweepExec(Serial, n, bytes, seed)
}

// FabricBackendSweepExec is FabricBackendSweep with an explicit executor;
// each (pattern, fabric) pair is one sweep point.
func FabricBackendSweepExec(ex Exec, n, bytes int, seed int64) ([]NamedResult, error) {
	panels := Panels()
	fabrics := []fabric.Kind{fabric.KindCrossbar, fabric.KindOmega, fabric.KindClos, fabric.KindBenes}
	return sweep(ex, len(panels)*len(fabrics), func(i int) (NamedResult, error) {
		p, fab := panels[i/len(fabrics)], fabrics[i%len(fabrics)]
		wl, err := p.Workload(n, bytes, seed)
		if err != nil {
			return NamedResult{}, err
		}
		nw, err := newTDM(tdm.Config{N: n, K: Fig4K, Fabric: fab})
		if err != nil {
			return NamedResult{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return NamedResult{}, fmt.Errorf("experiments: %s on %s: %w", p, fab, err)
		}
		return NamedResult{
			Label:  fmt.Sprintf("%s on %s", p, fab),
			Result: res,
		}, nil
	})
}

// SchedulerSweep runs dynamic TDM under every matching algorithm — the
// paper's Tables 1–2 scheduler, iSLIP, and wavefront — over the paper's
// four Figure 4 traffic patterns. All three produce maximal matchings, so
// efficiency figures land close together; the interesting deltas are in the
// scheduler counters (establishments vs evictions) where the rotation
// disciplines differ.
func SchedulerSweep(n, bytes int, seed int64) ([]NamedResult, error) {
	return SchedulerSweepExec(Serial, n, bytes, seed)
}

// SchedulerSweepExec is SchedulerSweep with an explicit executor; each
// (pattern, algorithm) pair is one sweep point.
func SchedulerSweepExec(ex Exec, n, bytes int, seed int64) ([]NamedResult, error) {
	panels := Panels()
	algs := []core.Algorithm{core.AlgPaper, core.AlgISLIP, core.AlgWavefront}
	return sweep(ex, len(panels)*len(algs), func(i int) (NamedResult, error) {
		p, alg := panels[i/len(algs)], algs[i%len(algs)]
		wl, err := p.Workload(n, bytes, seed)
		if err != nil {
			return NamedResult{}, err
		}
		nw, err := newTDM(tdm.Config{N: n, K: Fig4K, Algorithm: alg})
		if err != nil {
			return NamedResult{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return NamedResult{}, fmt.Errorf("experiments: %s with %s: %w", p, alg, err)
		}
		return NamedResult{
			Label:  fmt.Sprintf("%s with %s", p, alg),
			Result: res,
		}, nil
	})
}

// SparsePermutation builds a light-load permutation workload: every
// processor sends `msgs` messages to its fixed permutation partner with
// `gap` of compute between sends. Light load isolates the per-hop latency
// difference between multi-hop paradigms from congestion effects.
func SparsePermutation(base *traffic.Workload, gap sim.Time) *traffic.Workload {
	out := &traffic.Workload{
		Name:         base.Name + "/sparse",
		N:            base.N,
		Programs:     make([]traffic.Program, base.N),
		StaticPhases: base.StaticPhases,
	}
	for p, prog := range base.Programs {
		var ops []traffic.Op
		for _, op := range prog.Ops {
			if op.Kind == traffic.OpSend || op.Kind == traffic.OpSendWait {
				ops = append(ops, traffic.Delay(gap), op)
			}
		}
		out.Programs[p] = traffic.Program{Ops: ops}
	}
	return out
}

// MultiHopStudy tests the paper's concluding claim that the
// connection-oriented approach is "amplified when multi-hop networks are
// considered since it avoids buffering at intermediate switches": it runs
// the multi-hop wormhole mesh and the multi-hop TDM-circuit mesh
// (internal/meshnet) on each workload. Long-path traffic (e.g. Transpose)
// maximizes the per-hop cost difference; run both a saturated workload (the
// throughput view, where whole-path slot reservation costs the TDM mesh
// capacity) and a SparsePermutation variant (the latency view, where the
// end-to-end analog pipe pays ~20 ns per extra hop against wormhole's
// ~100 ns of per-hop serdes + arbitration).
func MultiHopStudy(n int, wls []*traffic.Workload) ([]NamedResult, error) {
	return MultiHopStudyExec(Serial, n, wls)
}

// MultiHopStudyExec is MultiHopStudy with an explicit executor; each
// (workload, mesh paradigm) pair is one sweep point building its own mesh.
func MultiHopStudyExec(ex Exec, n int, wls []*traffic.Workload) ([]NamedResult, error) {
	builders := []func() (netmodel.Network, error){
		func() (netmodel.Network, error) { return meshnet.NewWormhole(meshnet.WormholeConfig{N: n}) },
		func() (netmodel.Network, error) { return meshnet.NewTDM(meshnet.TDMConfig{N: n, K: Fig4K}) },
	}
	return sweep(ex, len(wls)*len(builders), func(i int) (NamedResult, error) {
		wl := wls[i/len(builders)]
		nw, err := builders[i%len(builders)]()
		if err != nil {
			return NamedResult{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return NamedResult{}, fmt.Errorf("experiments: %s on %s: %w", nw.Name(), wl.Name, err)
		}
		return NamedResult{Label: fmt.Sprintf("%s on %s", wl.Name, nw.Name()), Result: res}, nil
	})
}

// FabricRow compares fabric families on one working set: the slots a
// crossbar needs (the degree-optimal decomposition), the slots an Omega
// network needs under its blocking constraints, and the Benes network's
// stage cost for the same capability as the crossbar.
type FabricRow struct {
	Workload      string
	Degree        int
	CrossbarSlots int
	OmegaSlots    int
	OmegaStages   int
	BenesStages   int
}

// FabricComparison quantifies paper §4's remark that "more complicated
// constraints may be derived for fabrics that have limited permutation
// capabilities": the extra multiplexing degree an Omega fabric pays, versus
// the extra stages a non-blocking Benes fabric pays. n must be a power of
// two.
func FabricComparison(n int, wls []*traffic.Workload) ([]FabricRow, error) {
	return FabricComparisonExec(Serial, n, wls)
}

// FabricComparisonExec is FabricComparison with an explicit executor; each
// workload's decompositions are one sweep point (pure computation, but the
// exact edge coloring is expensive enough on dense working sets to be worth
// fanning out).
func FabricComparisonExec(ex Exec, n int, wls []*traffic.Workload) ([]FabricRow, error) {
	return sweep(ex, len(wls), func(i int) (FabricRow, error) {
		wl := wls[i]
		omega, err := multistage.NewOmega(n)
		if err != nil {
			return FabricRow{}, err
		}
		benes, err := multistage.NewBenes(n)
		if err != nil {
			return FabricRow{}, err
		}
		ws := wl.ConnSet()
		oc, err := multistage.DecomposeOmega(ws, omega)
		if err != nil {
			return FabricRow{}, err
		}
		return FabricRow{
			Workload:      wl.Name,
			Degree:        ws.Degree(),
			CrossbarSlots: len(topology.Decompose(ws)),
			OmegaSlots:    len(oc),
			OmegaStages:   omega.Stages(),
			BenesStages:   benes.Stages(),
		}, nil
	})
}

// FabricTable renders fabric-comparison rows.
func FabricTable(rows []FabricRow) *metrics.Table {
	t := metrics.NewTable("Fabric comparison: TDM slots needed per working set",
		"workload", "degree", "crossbar slots", "omega slots", "omega stages", "benes stages")
	for _, r := range rows {
		t.AddRowf(r.Workload, r.Degree, r.CrossbarSlots, r.OmegaSlots, r.OmegaStages, r.BenesStages)
	}
	return t
}
