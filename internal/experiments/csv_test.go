package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestFig4CSV(t *testing.T) {
	rows, err := Fig4Panel(Scatter, 16, []int{32, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig4CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + two sizes
		t.Fatalf("records = %d, want 3", len(recs))
	}
	if recs[0][0] != "bytes" || len(recs[0]) != 5 {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != "32" || recs[2][0] != "64" {
		t.Fatalf("size column wrong: %v", recs)
	}
	// Empty input is fine.
	if err := Fig4CSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFig5CSV(t *testing.T) {
	rows, err := Fig5(16, []float64{0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Fig5CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][0] != "0.50" {
		t.Fatalf("records = %v", recs)
	}
	if err := Fig5CSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable3CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3CSV(&buf, Table3(10)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "n,fpga_ns,asic_ns,software_ns\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	if !strings.Contains(out, "128,385,80,") {
		t.Fatalf("128-port row missing:\n%s", out)
	}
}
