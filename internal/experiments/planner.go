package experiments

import (
	"fmt"

	"pmsnet/internal/plan"
	"pmsnet/internal/predictor"
	"pmsnet/internal/tdm"
	"pmsnet/internal/traffic"
)

// PlannerDemandWorkloads builds the demand matrices the planner sweep runs
// on: a skewed phase whose working-set degree (8 shifts) exceeds the
// multiplexing degree and concentrates most bytes on one shift — the regime
// where demand-aware register shares pay off — and a sparse phase with two
// connections per processor, one of them 16x hotter, where a demand-blind
// decomposition wastes half its registers on featherweight traffic.
func PlannerDemandWorkloads(n, bytes int) []*traffic.Workload {
	return []*traffic.Workload{
		traffic.Skewed("skewed", n, bytes, 4, 8, []int{1, 2, 3, 4, 5, 6, 7, 8}),
		traffic.Skewed("sparse", n, bytes, 8, 16, []int{1, n / 2}),
	}
}

// PlannerSweep compares the preload planners against the reactive baseline
// on demand-skewed phased workloads: static preload (the demand-blind
// hand-written decomposition), solstice and BvN preload (demand-aware
// planned schedules), and dynamic TDM (no static knowledge at all). The
// planners' case: on skewed demand the static chunking alternates groups
// that serve mostly-drained traffic, and the reactive path pays cache
// thrash; a demand-weighted schedule pins the hot connections with register
// shares and drains in fewer slots.
func PlannerSweep(n int, wls []*traffic.Workload) ([]NamedResult, error) {
	return PlannerSweepExec(Serial, n, wls)
}

// PlannerSweepExec is PlannerSweep with an explicit executor; each
// (workload, planner case) pair is one sweep point.
func PlannerSweepExec(ex Exec, n int, wls []*traffic.Workload) ([]NamedResult, error) {
	cases := []struct {
		label string
		cfg   tdm.Config
	}{
		{"preload/static", tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload}},
		{"preload/solstice", tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload, Planner: plan.Solstice{}}},
		{"preload/bvn", tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload, Planner: plan.BvN{}}},
		{"dynamic/reactive", tdm.Config{N: n, K: Fig4K,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) }}},
	}
	return sweep(ex, len(wls)*len(cases), func(i int) (NamedResult, error) {
		wl, c := wls[i/len(cases)], cases[i%len(cases)]
		nw, err := newTDM(c.cfg)
		if err != nil {
			return NamedResult{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return NamedResult{}, fmt.Errorf("experiments: %s on %s: %w", c.label, wl.Name, err)
		}
		return NamedResult{Label: fmt.Sprintf("%s: %s", wl.Name, c.label), Result: res}, nil
	})
}
