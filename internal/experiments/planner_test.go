package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// plannerRow pulls one labeled row out of the sweep's results.
func plannerRow(t *testing.T, rows []NamedResult, label string) NamedResult {
	t.Helper()
	for _, r := range rows {
		if r.Label == label {
			return r
		}
	}
	t.Fatalf("planner sweep has no row %q (have %d rows)", label, len(rows))
	return NamedResult{}
}

// TestPlannerSweepSolsticeWins pins the headline result of the planner
// subsystem: on the skewed demand matrix the solstice schedule strictly
// beats both the demand-blind static preloads and the reactive dynamic
// baseline on makespan and efficiency.
func TestPlannerSweepSolsticeWins(t *testing.T) {
	n := 16
	rows, err := PlannerSweep(n, PlannerDemandWorkloads(n, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("expected 2 workloads x 4 cases = 8 rows, got %d", len(rows))
	}
	sol := plannerRow(t, rows, "skewed: preload/solstice")
	static := plannerRow(t, rows, "skewed: preload/static")
	dynamic := plannerRow(t, rows, "skewed: dynamic/reactive")
	if sol.Result.Makespan >= static.Result.Makespan {
		t.Errorf("solstice makespan %v not better than static preload %v",
			sol.Result.Makespan, static.Result.Makespan)
	}
	if sol.Result.Efficiency <= static.Result.Efficiency {
		t.Errorf("solstice efficiency %.4f not better than static preload %.4f",
			sol.Result.Efficiency, static.Result.Efficiency)
	}
	if sol.Result.Makespan >= dynamic.Result.Makespan {
		t.Errorf("solstice makespan %v not better than reactive TDM %v",
			sol.Result.Makespan, dynamic.Result.Makespan)
	}
	if sol.Result.Efficiency <= dynamic.Result.Efficiency {
		t.Errorf("solstice efficiency %.4f not better than reactive TDM %.4f",
			sol.Result.Efficiency, dynamic.Result.Efficiency)
	}
	// Every planned row must carry its planner's fingerprint in the stats.
	for _, r := range rows {
		switch {
		case strings.Contains(r.Label, "solstice"):
			if r.Result.Stats.Planner != "solstice" {
				t.Errorf("%s: stats name %q", r.Label, r.Result.Stats.Planner)
			}
		case strings.Contains(r.Label, "bvn"):
			if r.Result.Stats.Planner != "bvn" {
				t.Errorf("%s: stats name %q", r.Label, r.Result.Stats.Planner)
			}
		default:
			if r.Result.Stats.Planner != "" {
				t.Errorf("%s: unexpected planner stats %q", r.Label, r.Result.Stats.Planner)
			}
		}
	}
}

func TestPlannerSweepParallelIdentity(t *testing.T) {
	wls := PlannerDemandWorkloads(16, 64)
	serial, err := PlannerSweep(16, wls)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := PlannerSweepExec(Parallel(4), 16, wls)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel planner-sweep rows differ from serial rows")
	}
}
