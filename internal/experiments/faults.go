package experiments

import (
	"fmt"

	"pmsnet/internal/circuit"
	"pmsnet/internal/fault"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/traffic"
	"pmsnet/internal/wormhole"
)

// FaultLevel is one point of the robustness sweep: a label and the fault
// plan it stands for.
type FaultLevel struct {
	Label string
	Plan  *fault.Plan
}

// FaultLevels is the default robustness sweep: no faults, rare and frequent
// payload corruption, transient link churn, and a combined stress level. The
// plans use only stochastic fault classes so the same level applies to any
// workload length.
func FaultLevels() []FaultLevel {
	return []FaultLevel{
		{"none", nil},
		{"corrupt 0.1%", &fault.Plan{Seed: 1, CorruptProb: 0.001}},
		{"corrupt 1%", &fault.Plan{Seed: 1, CorruptProb: 0.01}},
		{"link churn", &fault.Plan{Seed: 1, LinkMTBF: 200 * sim.Microsecond, LinkMTTR: 2 * sim.Microsecond}},
		{"ctrl loss 1%", &fault.Plan{Seed: 1, RequestLossProb: 0.01, GrantLossProb: 0.01}},
		{"combined", &fault.Plan{
			Seed:            1,
			CorruptProb:     0.005,
			RequestLossProb: 0.005,
			GrantLossProb:   0.005,
			LinkMTBF:        500 * sim.Microsecond,
			LinkMTTR:        2 * sim.Microsecond,
		}},
	}
}

// faultBuilders returns one constructor per paradigm of the robustness
// sweep (the paper's four Figure-4 paradigms) with the given fault plan
// attached. The plan is read-only configuration — each Run realizes it
// through its own seeded injector — so concurrently running points may
// share it.
func faultBuilders(n int, plan *fault.Plan) []func() (netmodel.Network, error) {
	return []func() (netmodel.Network, error){
		func() (netmodel.Network, error) { return wormhole.New(wormhole.Config{N: n, Faults: plan}) },
		func() (netmodel.Network, error) { return circuit.New(circuit.Config{N: n, Faults: plan}) },
		func() (netmodel.Network, error) {
			return newTDM(tdm.Config{
				N: n, K: Fig4K, Faults: plan,
				NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) },
			})
		},
		func() (netmodel.Network, error) {
			return newTDM(tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload, Faults: plan})
		},
	}
}

// FaultRow holds one sweep point: each network's result under one fault
// level, in faultNetworks order (wormhole, circuit, dynamic TDM, preload
// TDM).
type FaultRow struct {
	Level   FaultLevel
	Results []metrics.Result
}

// FaultSweep runs the workload through every network at every fault level.
// It verifies the exact message-accounting invariant on every run: each
// injected message must end up delivered or explicitly dropped. It is the
// serial reference for FaultSweepExec.
func FaultSweep(n int, wl *traffic.Workload, levels []FaultLevel) ([]FaultRow, error) {
	return FaultSweepExec(Serial, n, wl, levels)
}

// FaultSweepExec runs the robustness sweep with the points — one (fault
// level, network) pair each — fanned out through the executor.
func FaultSweepExec(ex Exec, n int, wl *traffic.Workload, levels []FaultLevel) ([]FaultRow, error) {
	if len(levels) == 0 {
		levels = FaultLevels()
	}
	netCount := len(faultBuilders(n, nil))
	results, err := sweep(ex, len(levels)*netCount, func(i int) (metrics.Result, error) {
		lv, net := levels[i/netCount], i%netCount
		nw, err := faultBuilders(n, lv.Plan)[net]()
		if err != nil {
			return metrics.Result{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return metrics.Result{}, fmt.Errorf("experiments: %s on %s under %q: %w", nw.Name(), wl.Name, lv.Label, err)
		}
		if !res.Stats.Faults.Reconciles() {
			f := res.Stats.Faults
			return metrics.Result{}, fmt.Errorf("experiments: %s under %q: accounting broken: %d injected != %d delivered + %d dropped",
				nw.Name(), lv.Label, f.Injected, f.Delivered, f.Dropped)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]FaultRow, len(levels))
	for li, lv := range levels {
		rows[li] = FaultRow{Level: lv, Results: results[li*netCount : (li+1)*netCount]}
	}
	return rows, nil
}

// FaultTable renders the sweep as the text table cmd/figures prints:
// efficiency per network per fault level, plus the recovery work of the
// paper's switch (dynamic TDM retries/reschedules).
func FaultTable(rows []FaultRow) *metrics.Table {
	t := metrics.NewTable("Robustness: efficiency under injected faults",
		"faults", "wormhole", "circuit", "tdm-dynamic", "tdm-preload", "retries", "resched", "dropped")
	for _, row := range rows {
		cells := []string{row.Level.Label}
		var retries, resched, dropped uint64
		for _, res := range row.Results {
			cells = append(cells, fmt.Sprintf("%.3f", res.Efficiency))
			retries += res.Stats.Faults.Retries
			resched += res.Stats.Faults.Reschedules
			dropped += res.Stats.Faults.Dropped
		}
		cells = append(cells,
			fmt.Sprintf("%d", retries),
			fmt.Sprintf("%d", resched),
			fmt.Sprintf("%d", dropped))
		t.AddRow(cells...)
	}
	return t
}
