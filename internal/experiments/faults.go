package experiments

import (
	"fmt"

	"pmsnet/internal/circuit"
	"pmsnet/internal/fault"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/traffic"
	"pmsnet/internal/wormhole"
)

// FaultLevel is one point of the robustness sweep: a label and the fault
// plan it stands for.
type FaultLevel struct {
	Label string
	Plan  *fault.Plan
}

// FaultLevels is the default robustness sweep: no faults, rare and frequent
// payload corruption, transient link churn, and a combined stress level. The
// plans use only stochastic fault classes so the same level applies to any
// workload length.
func FaultLevels() []FaultLevel {
	return []FaultLevel{
		{"none", nil},
		{"corrupt 0.1%", &fault.Plan{Seed: 1, CorruptProb: 0.001}},
		{"corrupt 1%", &fault.Plan{Seed: 1, CorruptProb: 0.01}},
		{"link churn", &fault.Plan{Seed: 1, LinkMTBF: 200 * sim.Microsecond, LinkMTTR: 2 * sim.Microsecond}},
		{"ctrl loss 1%", &fault.Plan{Seed: 1, RequestLossProb: 0.01, GrantLossProb: 0.01}},
		{"combined", &fault.Plan{
			Seed:            1,
			CorruptProb:     0.005,
			RequestLossProb: 0.005,
			GrantLossProb:   0.005,
			LinkMTBF:        500 * sim.Microsecond,
			LinkMTTR:        2 * sim.Microsecond,
		}},
	}
}

// faultNetworks builds the paper's four Figure-4 paradigms with the given
// fault plan attached.
func faultNetworks(n int, plan *fault.Plan) ([]netmodel.Network, error) {
	wh, err := wormhole.New(wormhole.Config{N: n, Faults: plan})
	if err != nil {
		return nil, err
	}
	cs, err := circuit.New(circuit.Config{N: n, Faults: plan})
	if err != nil {
		return nil, err
	}
	dyn, err := tdm.New(tdm.Config{
		N: n, K: Fig4K, Faults: plan,
		NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) },
	})
	if err != nil {
		return nil, err
	}
	pre, err := tdm.New(tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload, Faults: plan})
	if err != nil {
		return nil, err
	}
	return []netmodel.Network{wh, cs, dyn, pre}, nil
}

// FaultRow holds one sweep point: each network's result under one fault
// level, in faultNetworks order (wormhole, circuit, dynamic TDM, preload
// TDM).
type FaultRow struct {
	Level   FaultLevel
	Results []metrics.Result
}

// FaultSweep runs the workload through every network at every fault level.
// It verifies the exact message-accounting invariant on every run: each
// injected message must end up delivered or explicitly dropped.
func FaultSweep(n int, wl *traffic.Workload, levels []FaultLevel) ([]FaultRow, error) {
	if len(levels) == 0 {
		levels = FaultLevels()
	}
	rows := make([]FaultRow, 0, len(levels))
	for _, lv := range levels {
		nets, err := faultNetworks(n, lv.Plan)
		if err != nil {
			return nil, err
		}
		row := FaultRow{Level: lv}
		for _, nw := range nets {
			res, err := nw.Run(wl)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s under %q: %w", nw.Name(), wl.Name, lv.Label, err)
			}
			if !res.Stats.Faults.Reconciles() {
				f := res.Stats.Faults
				return nil, fmt.Errorf("experiments: %s under %q: accounting broken: %d injected != %d delivered + %d dropped",
					nw.Name(), lv.Label, f.Injected, f.Delivered, f.Dropped)
			}
			row.Results = append(row.Results, res)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FaultTable renders the sweep as the text table cmd/figures prints:
// efficiency per network per fault level, plus the recovery work of the
// paper's switch (dynamic TDM retries/reschedules).
func FaultTable(rows []FaultRow) *metrics.Table {
	t := metrics.NewTable("Robustness: efficiency under injected faults",
		"faults", "wormhole", "circuit", "tdm-dynamic", "tdm-preload", "retries", "resched", "dropped")
	for _, row := range rows {
		cells := []string{row.Level.Label}
		var retries, resched, dropped uint64
		for _, res := range row.Results {
			cells = append(cells, fmt.Sprintf("%.3f", res.Efficiency))
			retries += res.Stats.Faults.Retries
			resched += res.Stats.Faults.Reschedules
			dropped += res.Stats.Faults.Dropped
		}
		cells = append(cells,
			fmt.Sprintf("%d", retries),
			fmt.Sprintf("%d", resched),
			fmt.Sprintf("%d", dropped))
		t.AddRow(cells...)
	}
	return t
}
