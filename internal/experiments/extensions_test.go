package experiments

import (
	"testing"

	"pmsnet/internal/metrics"
	"pmsnet/internal/traffic"
)

func TestAmplifyAblationHelpsHotspot(t *testing.T) {
	wl := traffic.Hotspot(16, 64, 10, 2048, 20, seed)
	rows, err := AmplifyAblation(16, wl)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	off, on := rows[0].Result, rows[1].Result
	if on.Stats.Amplifications == 0 {
		t.Fatal("amplification never engaged on the hotspot workload")
	}
	if on.Makespan > off.Makespan {
		t.Fatalf("amplification (%v) should not slow the hotspot down vs off (%v)",
			on.Makespan, off.Makespan)
	}
}

func TestPrefetchAblationHelpsCyclicTraffic(t *testing.T) {
	wl := CyclicWorkload(16, 8, 6, 1200)
	rows, err := PrefetchAblation(16, wl)
	if err != nil {
		t.Fatal(err)
	}
	timeout, markov := rows[0].Result, rows[1].Result
	if markov.Stats.HitRate() <= timeout.Stats.HitRate() {
		t.Fatalf("markov hit rate %.3f should exceed timeout %.3f",
			markov.Stats.HitRate(), timeout.Stats.HitRate())
	}
}

func TestCyclicWorkloadValid(t *testing.T) {
	wl := CyclicWorkload(16, 8, 3, 500)
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiny n")
		}
	}()
	CyclicWorkload(4, 8, 1, 100)
}

func TestPayloadSweepMonotonic(t *testing.T) {
	wl := traffic.OrderedMesh(16, 64, 10)
	rows, err := PayloadSweep(16, []int{32, 48, 64, 80}, wl)
	if err != nil {
		t.Fatal(err)
	}
	// More usable payload per slot can only help the fully preloaded mesh.
	prev := 0.0
	for _, r := range rows {
		if r.Result.Efficiency < prev {
			t.Fatalf("%s: efficiency %.3f dropped below %.3f", r.Label, r.Result.Efficiency, prev)
		}
		prev = r.Result.Efficiency
	}
	// An 80-byte payload needs the whole raw slot: there is no guard band
	// left, so efficiency approaches the pattern's packing bound.
	if rows[len(rows)-1].Result.Efficiency < rows[0].Result.Efficiency*1.5 {
		t.Fatalf("doubling the payload (32->80B) should raise efficiency substantially: %v", rows)
	}
}

func TestSeedSweepStats(t *testing.T) {
	st, err := SeedSweep([]int64{1, 2, 3}, func(s int64) (metrics.Result, error) {
		return metrics.Result{Efficiency: float64(s)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeds != 3 || st.Mean != 2 || st.Min != 1 || st.Max != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.StdDev < 0.99 || st.StdDev > 1.01 {
		t.Fatalf("stddev = %v, want 1", st.StdDev)
	}
	if _, err := SeedSweep(nil, nil); err == nil {
		t.Fatal("empty seeds should error")
	}
}

func TestFig4RandomMeshRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed robustness check")
	}
	// The Figure-4b claim (TDM beats wormhole) must hold on average across
	// seeds, not just for the seed the figure uses.
	type pair struct{ dyn, wh float64 }
	var pairs []pair
	for _, s := range []int64{1, 2, 3} {
		rows, err := Fig4Panel(RandomMesh, N, []int{64}, s)
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, pair{
			dyn: rows[0].Results[iDynamic].Efficiency,
			wh:  rows[0].Results[iWormhole].Efficiency,
		})
	}
	for i, p := range pairs {
		if p.dyn <= p.wh {
			t.Errorf("seed %d: dynamic %.3f should beat wormhole %.3f", i+1, p.dyn, p.wh)
		}
	}
}

func TestFabricComparison(t *testing.T) {
	wls := []*traffic.Workload{
		traffic.OrderedMesh(16, 64, 1),
		traffic.AllToAll(16, 8),
	}
	rows, err := FabricComparison(16, wls)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CrossbarSlots != r.Degree {
			t.Errorf("%s: crossbar slots %d != degree %d", r.Workload, r.CrossbarSlots, r.Degree)
		}
		if r.OmegaSlots < r.CrossbarSlots {
			t.Errorf("%s: omega slots %d below crossbar %d", r.Workload, r.OmegaSlots, r.CrossbarSlots)
		}
		if r.BenesStages != 7 || r.OmegaStages != 4 {
			t.Errorf("%s: stages omega=%d benes=%d, want 4 and 7 for 16 ports",
				r.Workload, r.OmegaStages, r.BenesStages)
		}
	}
	if FabricTable(rows).Rows() != len(rows) {
		t.Fatal("fabric table lost rows")
	}
	if _, err := FabricComparison(12, wls); err == nil {
		t.Fatal("non-power-of-two should error")
	}
}

func TestOmegaFabricStudySeparatesPermutations(t *testing.T) {
	const n = 16
	wls := []*traffic.Workload{
		traffic.Shift(n, 64, 20, 1),
		traffic.BitReverse(n, 64, 20),
	}
	rows, err := OmegaFabricStudy(n, wls)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// rows: shift/crossbar, shift/omega, bitrev/crossbar, bitrev/omega.
	shiftXbar, shiftOmega := rows[0].Result, rows[1].Result
	brXbar, brOmega := rows[2].Result, rows[3].Result
	// The crossbar treats both permutations identically (same structure).
	if ratio := shiftXbar.Efficiency / brXbar.Efficiency; ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("crossbar should treat shift (%.3f) and bit-reverse (%.3f) alike",
			shiftXbar.Efficiency, brXbar.Efficiency)
	}
	// The omega must pay for bit reversal but not (much) for the shift.
	if brOmega.Efficiency >= brXbar.Efficiency {
		t.Fatalf("omega bit-reverse (%.3f) should trail the crossbar (%.3f)",
			brOmega.Efficiency, brXbar.Efficiency)
	}
	if brOmega.Efficiency >= shiftOmega.Efficiency {
		t.Fatalf("omega bit-reverse (%.3f) should trail omega shift (%.3f)",
			brOmega.Efficiency, shiftOmega.Efficiency)
	}
}

func TestFabricBackendSweepCoversPanelsAndFabrics(t *testing.T) {
	const n = 16
	rows, err := FabricBackendSweep(n, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 4 panels x 4 fabrics", len(rows))
	}
	// Rows are grouped per panel: crossbar, omega, clos, benes. The
	// rearrangeable fabrics must reproduce the crossbar's figures exactly;
	// the blocking omega may only be slower.
	for p := 0; p < len(rows); p += 4 {
		xbar, omega, clos, benes := rows[p], rows[p+1], rows[p+2], rows[p+3]
		if clos.Result.Makespan != xbar.Result.Makespan || benes.Result.Makespan != xbar.Result.Makespan {
			t.Fatalf("%s: rearrangeable fabrics diverge from crossbar (%v / %v / %v)",
				xbar.Label, xbar.Result.Makespan, clos.Result.Makespan, benes.Result.Makespan)
		}
		if omega.Result.Makespan < xbar.Result.Makespan {
			t.Fatalf("%s: blocking omega (%v) beats the crossbar (%v)",
				omega.Label, omega.Result.Makespan, xbar.Result.Makespan)
		}
	}
}

func TestJainFairnessInRotationAblation(t *testing.T) {
	rows, err := RotationAblation(16, traffic.RandomMesh(16, 64, 30, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Result.FairnessJain <= 0 || r.Result.FairnessJain > 1 {
			t.Fatalf("%s: Jain index %v out of range", r.Label, r.Result.FairnessJain)
		}
	}
	// Rotation must not make fairness worse.
	if rows[1].Result.FairnessJain < rows[0].Result.FairnessJain-0.02 {
		t.Fatalf("rotation (%v) should not be less fair than fixed priority (%v)",
			rows[1].Result.FairnessJain, rows[0].Result.FairnessJain)
	}
}

func TestMultiHopLatencyAdvantage(t *testing.T) {
	// Saturated transpose: whole-path slot reservation costs the TDM mesh;
	// sparse transpose: the analog end-to-end pipe must win on latency.
	const n = 100 // 10x10 grid
	base := traffic.Transpose(n, 64, 10)
	sparse := SparsePermutation(base, 2000)
	if err := sparse.Validate(); err != nil {
		t.Fatal(err)
	}
	if sparse.MessageCount() != base.MessageCount() {
		t.Fatal("sparse variant lost messages")
	}
	rows, err := MultiHopStudy(n, []*traffic.Workload{sparse})
	if err != nil {
		t.Fatal(err)
	}
	wormhole, tdmMesh := rows[0].Result, rows[1].Result
	if tdmMesh.LatencyMean >= wormhole.LatencyMean {
		t.Fatalf("under light load, TDM circuits (%v) must beat per-hop wormhole (%v) on mean latency",
			tdmMesh.LatencyMean, wormhole.LatencyMean)
	}
}

// TestDegreeSweepSparseShowsWorkingSetOptimum: on sparse fully-deterministic
// traffic with a degree-2 working set, the multiplexing degree K=2 must beat
// both K=1 (the cache is too small: every other message re-establishes) and
// K=8 (each connection gets only 1/8 of the slots: §2's bandwidth dilution)
// — the paper's "keep k as small as possible, but large enough to cache the
// working set" in one sweep.
func TestDegreeSweepSparseShowsWorkingSetOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale sweep")
	}
	wl := traffic.Mix(N, 64, Fig5Msgs, 1.0, Fig5Think, 7)
	rows, err := DegreeSweep(N, []int{1, 2, 8}, wl)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k8 := rows[0].Result, rows[1].Result, rows[2].Result
	if k2.Efficiency <= k1.Efficiency {
		t.Errorf("K=2 (%.3f) must beat K=1 (%.3f): the working set has degree 2",
			k2.Efficiency, k1.Efficiency)
	}
	if k2.Efficiency <= k8.Efficiency {
		t.Errorf("K=2 (%.3f) must beat K=8 (%.3f): excess degree dilutes bandwidth",
			k2.Efficiency, k8.Efficiency)
	}
}
