// Package experiments defines the harnesses that regenerate every table and
// figure of the paper's evaluation (Section 5), plus the ablation studies
// DESIGN.md calls out. cmd/figures, the repository benchmarks and the shape
// tests all run through this package so the published configuration lives in
// exactly one place.
package experiments

import (
	"fmt"
	"strconv"

	"pmsnet/internal/circuit"
	"pmsnet/internal/metrics"
	"pmsnet/internal/netmodel"
	"pmsnet/internal/predictor"
	"pmsnet/internal/sim"
	"pmsnet/internal/tdm"
	"pmsnet/internal/traffic"
	"pmsnet/internal/wormhole"
)

// SchedCacheOverride, when non-nil, forces the scheduler's memoized-pass
// cache on or off for every TDM network the harnesses build. The cache is
// exact — results are bit-identical either way — so the override exists for
// the cache-identity tests and for A/B benchmarking of the raw scheduling
// array. Set it only between sweeps: the parallel runner reads it from
// worker goroutines while a sweep is in flight.
var SchedCacheOverride *bool

// newTDM builds a TDM network, applying SchedCacheOverride.
func newTDM(cfg tdm.Config) (*tdm.Network, error) {
	if SchedCacheOverride != nil {
		v := *SchedCacheOverride
		cfg.SchedCache = &v
	}
	return tdm.New(cfg)
}

// Published experiment configuration (paper §5).
const (
	// N is the simulated processor count.
	N = 128
	// Fig4K is Figure 4's multiplexing degree ("Preload and Dynamic TDM
	// utilize a multiplexing degree of four").
	Fig4K = 4
	// Fig4Timeout is the time-out predictor period used by Figure 4's
	// Dynamic TDM ("we will use in our experiments a simple time-out
	// predictor"): five TDM slots.
	Fig4Timeout sim.Time = 500
	// Fig5K is Figure 5's multiplexing degree ("a multiplexing degree of
	// three was used, with k slots preloaded").
	Fig5K = 3
	// Fig5Timeout is the hybrid experiment's predictor period.
	Fig5Timeout sim.Time = 250
	// Fig5Think is the compute time between a processor's blocking sends in
	// the determinism-mix workload.
	Fig5Think sim.Time = 150
	// Fig5Msgs is the number of messages per processor in Figure 5.
	Fig5Msgs = 40
	// Fig5Bytes is Figure 5's message size.
	Fig5Bytes = 64
	// MeshMsgs is the per-processor message count of the mesh workloads.
	MeshMsgs = 50
)

// Fig4Sizes are the message sizes of Figure 4 ("message sizes from 8 to
// 2048 bytes").
func Fig4Sizes() []int { return []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048} }

// Fig5Determinism is Figure 5's x-axis (fraction of statically-known
// traffic, 50% to 100%).
func Fig5Determinism() []float64 { return []float64{0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 1.0} }

// Panel names Figure 4's four test patterns.
type Panel string

// Figure 4 panels.
const (
	Scatter     Panel = "scatter"
	RandomMesh  Panel = "random-mesh"
	OrderedMesh Panel = "ordered-mesh"
	TwoPhase    Panel = "two-phase"
)

// Panels lists Figure 4's panels in paper order.
func Panels() []Panel { return []Panel{Scatter, RandomMesh, OrderedMesh, TwoPhase} }

// Workload builds the panel's workload for one message size through the
// generator registry — panel names are registry family names, so Figure 4
// shares the CLIs' pattern vocabulary.
func (p Panel) Workload(n, bytes int, seed int64) (*traffic.Workload, error) {
	spec, err := traffic.ParseSpec(string(p))
	if err != nil {
		return nil, fmt.Errorf("experiments: unknown panel %q: %w", p, err)
	}
	if err := spec.Default("bytes", strconv.Itoa(bytes)); err != nil {
		return nil, err
	}
	if err := spec.Default("msgs", strconv.Itoa(MeshMsgs)); err != nil {
		return nil, err
	}
	// ~MeshMsgs messages per interior node (4 per round).
	if err := spec.Default("rounds", strconv.Itoa(MeshMsgs/4)); err != nil {
		return nil, err
	}
	return spec.Generate(n, seed)
}

// fig4Builders returns one constructor per Figure-4 network, in legend
// order: wormhole, circuit switching, dynamic TDM (K=4, time-out predictor)
// and preload TDM (K=4). Sweep points build only their own network, so
// nothing is shared between concurrently running points.
func fig4Builders(n int) []func() (netmodel.Network, error) {
	return []func() (netmodel.Network, error){
		func() (netmodel.Network, error) { return wormhole.New(wormhole.Config{N: n}) },
		func() (netmodel.Network, error) { return circuit.New(circuit.Config{N: n}) },
		func() (netmodel.Network, error) {
			return newTDM(tdm.Config{
				N: n, K: Fig4K,
				NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig4Timeout) },
			})
		},
		func() (netmodel.Network, error) { return newTDM(tdm.Config{N: n, K: Fig4K, Mode: tdm.Preload}) },
	}
}

// Fig4Networks returns the four networks of Figure 4 in legend order:
// wormhole, circuit switching, dynamic TDM (K=4, time-out predictor) and
// preload TDM (K=4).
func Fig4Networks(n int) ([]netmodel.Network, error) {
	builders := fig4Builders(n)
	out := make([]netmodel.Network, 0, len(builders))
	for _, build := range builders {
		nw, err := build()
		if err != nil {
			return nil, err
		}
		out = append(out, nw)
	}
	return out, nil
}

// SizeRow holds one Figure 4 x-axis point: the efficiency of each network at
// one message size, in Fig4Networks order.
type SizeRow struct {
	Bytes   int
	Results []metrics.Result
}

// Fig4Panel regenerates one panel of Figure 4: for every message size, the
// efficiency of each network. It is the serial reference for
// Fig4PanelExec.
func Fig4Panel(p Panel, n int, sizes []int, seed int64) ([]SizeRow, error) {
	return Fig4PanelExec(Serial, p, n, sizes, seed)
}

// Fig4PanelExec regenerates one Figure 4 panel with the sweep's points —
// one (message size, network) pair each — fanned out through the executor.
// Every point rebuilds its own workload and network from (p, n, size, seed),
// so points share nothing and the assembled rows are bit-identical to a
// serial run at any parallelism.
func Fig4PanelExec(ex Exec, p Panel, n int, sizes []int, seed int64) ([]SizeRow, error) {
	if len(sizes) == 0 {
		sizes = Fig4Sizes()
	}
	netCount := len(fig4Builders(n))
	results, err := sweep(ex, len(sizes)*netCount, func(i int) (metrics.Result, error) {
		size, net := sizes[i/netCount], i%netCount
		wl, err := p.Workload(n, size, seed)
		if err != nil {
			return metrics.Result{}, err
		}
		nw, err := fig4Builders(n)[net]()
		if err != nil {
			return metrics.Result{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return metrics.Result{}, fmt.Errorf("experiments: %s on %s: %w", nw.Name(), wl.Name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SizeRow, len(sizes))
	for si, size := range sizes {
		rows[si] = SizeRow{Bytes: size, Results: results[si*netCount : (si+1)*netCount]}
	}
	return rows, nil
}

// Fig4Table renders a panel's rows as the text table cmd/figures prints.
func Fig4Table(p Panel, rows []SizeRow) *metrics.Table {
	headers := []string{"bytes"}
	if len(rows) > 0 {
		for _, r := range rows[0].Results {
			headers = append(headers, r.Network)
		}
	}
	t := metrics.NewTable(fmt.Sprintf("Figure 4 (%s): link efficiency vs message size", p), headers...)
	for _, row := range rows {
		cells := []any{row.Bytes}
		for _, r := range row.Results {
			cells = append(cells, r.Efficiency)
		}
		t.AddRowf(cells...)
	}
	return t
}

// Fig5Row holds one Figure 5 x-axis point: the efficiency of the k=0,1,2
// hybrid schemes at one determinism level.
type Fig5Row struct {
	Determinism float64
	Results     []metrics.Result // index = preloaded slot count k
}

// Fig5Networks returns the hybrid networks of Figure 5: multiplexing degree
// three with k = 0, 1, 2 preloaded slots.
func Fig5Networks(n int) ([]netmodel.Network, error) {
	var out []netmodel.Network
	for k := 0; k <= 2; k++ {
		nw, err := newTDM(tdm.Config{
			N: n, K: Fig5K, Mode: tdm.Hybrid, PreloadSlots: k,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig5Timeout) },
		})
		if err != nil {
			return nil, err
		}
		out = append(out, nw)
	}
	return out, nil
}

// Fig5 regenerates Figure 5: preload/dynamic slot splits against traffic
// determinism. It is the serial reference for Fig5Exec.
func Fig5(n int, dets []float64, seed int64) ([]Fig5Row, error) {
	return Fig5Exec(Serial, n, dets, seed)
}

// Fig5Exec regenerates Figure 5 with the sweep's points — one (determinism
// level, hybrid scheme) pair each — fanned out through the executor.
func Fig5Exec(ex Exec, n int, dets []float64, seed int64) ([]Fig5Row, error) {
	if len(dets) == 0 {
		dets = Fig5Determinism()
	}
	const netCount = 3 // hybrid k = 0, 1, 2
	results, err := sweep(ex, len(dets)*netCount, func(i int) (metrics.Result, error) {
		d, k := dets[i/netCount], i%netCount
		wl := traffic.Mix(n, Fig5Bytes, Fig5Msgs, d, Fig5Think, seed)
		nw, err := newTDM(tdm.Config{
			N: n, K: Fig5K, Mode: tdm.Hybrid, PreloadSlots: k,
			NewPredictor: func() predictor.Predictor { return predictor.NewTimeout(Fig5Timeout) },
		})
		if err != nil {
			return metrics.Result{}, err
		}
		res, err := nw.Run(wl)
		if err != nil {
			return metrics.Result{}, fmt.Errorf("experiments: %s at d=%.2f: %w", nw.Name(), d, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, len(dets))
	for di, d := range dets {
		rows[di] = Fig5Row{Determinism: d, Results: results[di*netCount : (di+1)*netCount]}
	}
	return rows, nil
}

// Fig5Table renders Figure 5's rows.
func Fig5Table(rows []Fig5Row) *metrics.Table {
	headers := []string{"determinism"}
	if len(rows) > 0 {
		for _, r := range rows[0].Results {
			headers = append(headers, r.Network)
		}
	}
	t := metrics.NewTable("Figure 5: preload/dynamic slot split vs determinism (K=3)", headers...)
	for _, row := range rows {
		cells := []any{fmt.Sprintf("%.0f%%", row.Determinism*100)}
		for _, r := range row.Results {
			cells = append(cells, r.Efficiency)
		}
		t.AddRowf(cells...)
	}
	return t
}
