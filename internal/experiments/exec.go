package experiments

import (
	"pmsnet/internal/runner"
)

// Exec selects how a sweep's independent simulation points execute. Every
// harness in this package fans its points — one (network, workload, size,
// seed) run each — through internal/runner, so a sweep's output is a pure
// function of its inputs regardless of worker count: results are collected
// by point index, and the parallel rows are bit-identical to a serial run
// (asserted by the *Identity tests in parallel_test.go).
type Exec struct {
	// Parallelism is the worker count: 1 is the strict serial reference
	// path, <= 0 defaults to GOMAXPROCS.
	Parallelism int
	// OnPoint, when non-nil, observes every completed point (progress and
	// per-point wall time). Calls are serialized by the runner.
	OnPoint func(runner.Point)
}

// Serial is the reference executor: one point at a time, in order. The
// un-suffixed harness functions (Fig4Panel, Fig5, ...) use it, so existing
// callers keep the exact pre-parallelism semantics.
var Serial = Exec{Parallelism: 1}

// Parallel returns an executor with the given worker count (<= 0 means
// GOMAXPROCS).
func Parallel(j int) Exec { return Exec{Parallelism: j} }

func (ex Exec) options() runner.Options {
	return runner.Options{Parallelism: ex.Parallelism, OnPoint: ex.OnPoint}
}

// sweep runs fn over n points through the executor — the backbone every
// harness in this package is rewired through.
func sweep[T any](ex Exec, n int, fn func(i int) (T, error)) ([]T, error) {
	return runner.Map(ex.options(), n, fn)
}
