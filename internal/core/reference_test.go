package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmsnet/internal/bitmat"
)

// referencePass is a deliberately naive, cell-by-cell transcription of the
// paper's Tables 1 and 2, used to cross-validate the production
// ScheduleSlot implementation. It walks the SL array in plain row-major
// order (no priority rotation), carrying the A (output-occupied) and D
// (input-occupied) signals exactly as the hardware ripple would.
func referencePass(b, bstar, req *bitmat.Matrix, n int) (newB *bitmat.Matrix, est, rel [][2]int) {
	newB = b.Clone()
	occOut := make([]bool, n) // AO
	occIn := make([]bool, n)  // AI
	for p := 0; p < n; p++ {
		occOut[p] = b.ColAny(p)
		occIn[p] = b.RowAny(p)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			r := req.Get(u, v)
			inSlot := newB.Get(u, v)
			inAny := bstar.Get(u, v)
			// Table 1: L = (release) or (establish).
			l := (!r && inSlot) || (r && !inAny)
			if !l {
				continue
			}
			if inSlot {
				// Table 2, (L=1, A=1, D=1): release.
				newB.Clear(u, v)
				occOut[v] = false
				occIn[u] = false
				rel = append(rel, [2]int{u, v})
			} else if !occOut[v] && !occIn[u] {
				// Table 2, (L=1, A=0, D=0): establish.
				newB.Set(u, v)
				occOut[v] = true
				occIn[u] = true
				est = append(est, [2]int{u, v})
			}
		}
	}
	return newB, est, rel
}

// TestQuickScheduleSlotMatchesReference drives random scheduler states and
// request matrices through both implementations and demands identical
// results: same final configuration, same establish/release sets in the
// same scan order.
func TestQuickScheduleSlotMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		k := 1 + rng.Intn(3)
		s := MustScheduler(Params{N: n, K: k}) // no rotation: reference is row-major

		// Random pre-state: load disjoint-port partial permutations.
		for slot := 0; slot < k; slot++ {
			perm := rng.Perm(n)
			for i := range perm {
				if rng.Float64() < 0.6 || perm[i] == i {
					perm[i] = -1
				}
			}
			if err := s.LoadConfig(slot, bitmat.FromPermutation(perm), false); err != nil {
				return false
			}
		}

		slot := rng.Intn(k)
		req := bitmat.NewSquare(n)
		for e := 0; e < n*2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				req.Set(u, v)
			}
		}

		before := s.Config(slot)
		bstar := s.BStar()
		wantB, wantEst, wantRel := referencePass(before, bstar, req, n)

		est, rel := s.ScheduleSlot(req, slot)
		if !s.Config(slot).Equal(wantB) {
			return false
		}
		if len(est) != len(wantEst) || len(rel) != len(wantRel) {
			return false
		}
		for i, e := range est {
			if e.Src != wantEst[i][0] || e.Dst != wantEst[i][1] {
				return false
			}
		}
		for i, e := range rel {
			if e.Src != wantRel[i][0] || e.Dst != wantRel[i][1] {
				return false
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConstraintHookRespected: with a CanEstablish constraint, no
// establishment ever violates it and releases are unaffected.
func TestQuickConstraintHookRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		// Constraint: outputs in the top half are unreachable (a fabric
		// with a dead region) — configuration-independent so it can be
		// re-validated after the pass.
		constraint := func(_ *bitmat.Matrix, u, v int) bool {
			return v < n/2
		}
		s := MustScheduler(Params{N: n, K: 2, CanEstablish: constraint})
		for pass := 0; pass < 10; pass++ {
			req := bitmat.NewSquare(n)
			for e := 0; e < n; e++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					req.Set(u, v)
				}
			}
			res := s.Pass(req)
			for _, c := range res.Established {
				if c.Dst >= n/2 {
					return false
				}
			}
			if s.BStar().ColAny(n - 1) {
				return false
			}
			if err := s.CheckInvariants(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
