// Alternative matching algorithms behind the scheduler's algorithm switch.
//
// The paper's Tables 1–2 scheduling array is the default and the only
// bit-pinned algorithm; the two alternatives here are classic crossbar
// schedulers included for comparison:
//
//   - iSLIP (McKeown, "The iSLIP Scheduling Algorithm for Input-Queued
//     Switches", IEEE/ACM ToN 1999; deployed in the Tiny Tera prototype):
//     iterative request–grant–accept matching with per-output grant pointers
//     and per-input accept pointers that advance only on first-iteration
//     accepts, which desynchronizes the pointers and approaches a maximal
//     match in about log2(N) iterations.
//
//   - Wavefront matching (after the wavefront/wrapped-wavefront arbiter line
//     of Tamir & Chi, "Symmetric Crossbar Arbiters for VLSI Communication
//     Switches", IEEE TPDS 1993): cells on one anti-diagonal share no row or
//     column, so each diagonal is resolved conflict-free in a single step and
//     the diagonals sweep in rotated order for fairness.
//
// Both reuse the pass structure of the paper algorithm — release connections
// whose requests vanished, then match pending requests into the slot — so
// they plug into Pass, latching, eviction and the fabric CanEstablish hook
// unchanged. Neither is memoized: iSLIP's pointer state lives outside the
// pass-cache key (withDefaults forces Memoize off for them).
package core

import (
	"fmt"
	"math/bits"
	"strings"

	"pmsnet/internal/bitmat"
)

// Algorithm selects the matching algorithm a scheduling pass runs. The zero
// value is the paper-exact algorithm, so zero-valued configurations keep
// their meaning.
type Algorithm int

// Matching algorithms.
const (
	// AlgPaper is the paper-exact Tables 1–2 scheduling array (default).
	AlgPaper Algorithm = iota
	// AlgISLIP is iterative request–grant–accept matching with rotating
	// grant/accept pointers.
	AlgISLIP
	// AlgWavefront resolves requests along conflict-free anti-diagonals.
	AlgWavefront
)

// algorithmNames holds the canonical lower-case names, indexed by Algorithm.
var algorithmNames = [...]string{"paper", "islip", "wavefront"}

// algorithmValues lists every valid Algorithm, for validation.
var algorithmValues = [...]Algorithm{AlgPaper, AlgISLIP, AlgWavefront}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	if a >= 0 && int(a) < len(algorithmNames) {
		return algorithmNames[a]
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// AlgorithmNames returns the canonical algorithm vocabulary in declaration
// order.
func AlgorithmNames() []string {
	out := make([]string, len(algorithmNames))
	copy(out, algorithmNames[:])
	return out
}

// ParseAlgorithm is the inverse of Algorithm.String.
func ParseAlgorithm(s string) (Algorithm, error) {
	for i, name := range algorithmNames {
		if s == name {
			return Algorithm(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (valid: %s)", s, strings.Join(algorithmNames[:], ", "))
}

// matchState holds the alternative matchers' persistent pointers and
// per-evaluation scratch; nil on AlgPaper schedulers.
type matchState struct {
	// iSLIP pointers, persistent across passes. grantPtr[v] is the input the
	// output-v grant arbiter prefers; acceptPtr[u] is the output the input-u
	// accept arbiter prefers.
	grantPtr  []int
	acceptPtr []int
	// grantOf[v] is the input granted by output v in the current iteration,
	// or -1.
	grantOf []int32
	// maxIter bounds the request–grant–accept iterations: ceil(log2(N)),
	// at least 1 — iSLIP's convergence horizon.
	maxIter int
}

func newMatchState(p Params) *matchState {
	m := &matchState{
		grantPtr:  make([]int, p.N),
		acceptPtr: make([]int, p.N),
		grantOf:   make([]int32, p.N),
		maxIter:   bits.Len(uint(p.N - 1)),
	}
	if m.maxIter < 1 {
		m.maxIter = 1
	}
	return m
}

// releaseVanished releases every connection of the slot whose effective
// request is gone — the shared prologue of both alternative matchers,
// matching the paper algorithm's release term B(s) &^ Reff.
func (s *Scheduler) releaseVanished(eff *bitmat.Matrix, slot int) {
	mask := s.cfgRowMask[slot]
	for w, word := range mask {
		for word != 0 {
			u := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			v := int(s.rowDst[slot][u])
			if !eff.Get(u, v) {
				s.clearConn(slot, u, v)
				s.relBuf = append(s.relBuf, Change{Src: u, Dst: v, Slot: slot})
			}
		}
	}
}

// candidate reports whether u→v is pending for this slot: effectively
// requested, realized in no slot, with both ports free here. The slot
// occupancy masks are maintained live by setConn, so the test stays correct
// as the match grows.
func (s *Scheduler) candidate(eff *bitmat.Matrix, slot, u, v int) bool {
	return !maskTest(s.cfgRowMask[slot], u) && !maskTest(s.cfgColMask[slot], v) &&
		eff.Get(u, v) && !s.bstar.Get(u, v)
}

// scheduleSlotISLIP is one slot evaluation under iSLIP.
func (s *Scheduler) scheduleSlotISLIP(r *bitmat.Matrix, slot int) {
	s.checkSlot(slot)
	if s.pinned[slot] {
		panic(fmt.Sprintf("core: ScheduleSlot on pinned slot %d", slot))
	}
	eff := s.effectiveRequests(r)
	estStart, relStart := len(s.estBuf), len(s.relBuf)
	s.releaseVanished(eff, slot)

	m := s.match
	b := s.configs[slot]
	n := s.p.N
	for it := 0; it < m.maxIter; it++ {
		// Grant: each free output offers to the requesting free input closest
		// to its pointer.
		for v := 0; v < n; v++ {
			m.grantOf[v] = -1
			if maskTest(s.cfgColMask[slot], v) {
				continue
			}
			p := m.grantPtr[v]
			for k := 0; k < n; k++ {
				u := (p + k) % n
				if s.candidate(eff, slot, u, v) {
					m.grantOf[v] = int32(u)
					break
				}
			}
		}
		// Accept: each free input takes the offering output closest to its
		// pointer; pointers advance only on first-iteration accepts.
		accepted := false
		for u := 0; u < n; u++ {
			if maskTest(s.cfgRowMask[slot], u) {
				continue
			}
			p := m.acceptPtr[u]
			acc := -1
			for k := 0; k < n; k++ {
				v := (p + k) % n
				if int(m.grantOf[v]) == u && !maskTest(s.cfgColMask[slot], v) {
					acc = v
					break
				}
			}
			if acc < 0 {
				continue
			}
			if s.p.CanEstablish != nil && !s.p.CanEstablish(b, u, acc) {
				// Fabric constraint: the accept would make the slot
				// unrealizable; drop it without moving the pointers, leaving
				// the request for another slot.
				continue
			}
			s.setConn(slot, u, acc)
			s.estBuf = append(s.estBuf, Change{Src: u, Dst: acc, Slot: slot})
			accepted = true
			if it == 0 {
				m.grantPtr[acc] = (u + 1) % n
				m.acceptPtr[u] = (acc + 1) % n
			}
		}
		if !accepted {
			break
		}
	}
	s.finishSlot(slot, estStart, relStart)
}

// scheduleSlotWavefront is one slot evaluation under wavefront matching:
// anti-diagonal d holds the cells {(u,v): (u+v) mod N == d}, whose rows and
// columns are pairwise distinct, so a diagonal resolves without conflict.
// Diagonals sweep from the rotation origin for fairness.
func (s *Scheduler) scheduleSlotWavefront(r *bitmat.Matrix, slot int) {
	s.checkSlot(slot)
	if s.pinned[slot] {
		panic(fmt.Sprintf("core: ScheduleSlot on pinned slot %d", slot))
	}
	eff := s.effectiveRequests(r)
	estStart, relStart := len(s.estBuf), len(s.relBuf)
	s.releaseVanished(eff, slot)

	b := s.configs[slot]
	n := s.p.N
	off := 0
	if s.p.RotatePriority {
		off = s.rot % n
	}
	for i := 0; i < n; i++ {
		d := (off + i) % n
		for u := 0; u < n; u++ {
			if maskTest(s.cfgRowMask[slot], u) {
				continue
			}
			v := d - u
			if v < 0 {
				v += n
			}
			if !s.candidate(eff, slot, u, v) {
				continue
			}
			if s.p.CanEstablish != nil && !s.p.CanEstablish(b, u, v) {
				continue
			}
			s.setConn(slot, u, v)
			s.estBuf = append(s.estBuf, Change{Src: u, Dst: v, Slot: slot})
		}
	}
	s.finishSlot(slot, estStart, relStart)
}
