package core

import (
	"fmt"

	"pmsnet/internal/sim"
)

// Table 3 of the paper: latency of the scheduling circuit synthesized on an
// Altera Stratix FPGA (EP1S25F1020C-5), by system size. The delay grows
// linearly with N because the A and D availability signals ripple through
// the NxN SL array.
var fpgaLatencyTable = []struct {
	n  int
	ns sim.Time
}{
	{4, 34},
	{8, 49},
	{16, 76},
	{32, 120},
	{64, 213},
	{128, 385},
}

// FPGALatency returns the scheduling-pass latency for an NxN scheduler on
// the paper's FPGA. Exact table sizes return the published value; other
// sizes are linearly interpolated, and sizes beyond the table extrapolate
// with the last segment's slope (the paper states the delay is linear in N).
func FPGALatency(n int) sim.Time {
	if n <= 0 {
		panic(fmt.Sprintf("core: invalid system size %d", n))
	}
	t := fpgaLatencyTable
	if n <= t[0].n {
		// Scale the smallest entry down proportionally to its per-port cost.
		return sim.Time(int64(t[0].ns) * int64(n) / int64(t[0].n))
	}
	for i := 1; i < len(t); i++ {
		if n <= t[i].n {
			lo, hi := t[i-1], t[i]
			span := int64(hi.n - lo.n)
			return lo.ns + sim.Time(int64(hi.ns-lo.ns)*int64(n-lo.n)/span)
		}
	}
	// Extrapolate beyond 128 ports with the 64→128 slope.
	lo, hi := t[len(t)-2], t[len(t)-1]
	slope := int64(hi.ns-lo.ns) / int64(hi.n-lo.n)
	return hi.ns + sim.Time(slope*int64(n-hi.n))
}

// ASICLatency returns the conservative ASIC estimate the paper simulates
// with: 5x faster than the FPGA, rounded up to the next 10 ns ("we
// conservatively chose the ASIC performance to be 80 ns for a 128x128
// scheduler").
func ASICLatency(n int) sim.Time {
	f := FPGALatency(n)
	a := (f + 4) / 5 // ceil(f/5)
	return (a + 9) / 10 * 10
}

// PassLatency returns the simulated cost of one scheduling pass for this
// scheduler's port count, using the ASIC estimate. For the paper's 128-port
// system this is exactly 80 ns.
func (s *Scheduler) PassLatency() sim.Time {
	return ASICLatency(s.p.N)
}
