// Sparse-path slot evaluation for the paper algorithm.
//
// The dense path (scheduleSlot) materializes the full change matrix L and
// scans all N²/64 words of it per slot; at N ≥ 512 that scan dominates pass
// cost even when almost every word is zero. The sparse path computes the
// same L cells row by row, on the fly, touching only the rows that can hold
// one — cost proportional to the active rows and their nonzeros.
//
// Bit-identity with the dense path rests on row locality. L's row u is a
// function of row u of B(slot), Reff and B* only. During a slot scan the
// only mutations are setConn/clearConn on cells of the row being visited
// (latch updates are deferred to the finishSlot epilogue), so when the scan
// reaches row u, row u of every input matrix still holds its pre-scan value
// — computing the row's cells lazily at visit time yields exactly the L
// snapshot the dense path precomputed. The same argument makes the sharded
// variant exact: shards precompute their rows' cells from the pre-scan state
// (pure reads, disjoint outputs), and the serial merge applies them in the
// identical rotated row order with the identical live availability checks.
package core

import (
	"fmt"
	"math/bits"

	"pmsnet/internal/bitmat"
)

// wordRowThreshold is the adaptive row-occupancy cutoff: a row whose request
// (+latch) lists hold at least this many nonzeros computes its change cells
// with the dense word formula instead of per-cell probes. Per-cell costs one
// B* bit probe per nonzero; the word path costs N/64 word operations for the
// whole row regardless of occupancy — so dense rows (all-to-all phases) pay
// word-scan prices while genuinely sparse rows never touch a full word scan.
// The cutoff returns max(8, N/64): at least the break-even probe count, and
// proportional to the row's word count at large N.
func wordRowThreshold(n int) int {
	if t := n / 64; t > 8 {
		return t
	}
	return 8
}

// computePendingMask fills s.pendingMask with the rows holding at least one
// request realized nowhere (row of R &^ B* nonempty) — the only rows whose
// visit can yield an establish cell. pass calls it once before the slot loop;
// the mask stays a valid superset for the whole pass because establishes only
// grow B*, and a release removes a pair that is by definition unrequested at
// release time and — since R is fixed for the pass and latch bits are only
// minted for established (hence requested) pairs — stays out of Reff until
// the pass ends.
func (s *Scheduler) computePendingMask(sp *bitmat.Sparse) {
	pm := s.pendingMask
	for i := range pm {
		pm[i] = 0
	}
	for wi, w := range sp.RowMask() {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			u := wi*64 + b
			if row := sp.Row(u); len(row) >= s.wordRowMin {
				reqRow := sp.Matrix().RowWords(u)
				bsRow := s.bstar.RowWords(u)
				for k, rw := range reqRow {
					if rw&^bsRow[k] != 0 {
						pm[wi] |= 1 << uint(b)
						break
					}
				}
			} else {
				for _, v := range row {
					if !s.bstar.Get(u, int(v)) {
						pm[wi] |= 1 << uint(b)
						break
					}
				}
			}
		}
	}
}

// scheduleSlotSparse is scheduleSlot evaluated from a sparse request matrix:
// the same Table 1–2 semantics, restricted to the rows that can hold a change
// cell. It requires the pass to have called computePendingMask first. With
// Params.ShardBounds the per-row cell computation is precomputed per shard
// (in parallel under Params.ShardRun) before the serial merge.
func (s *Scheduler) scheduleSlotSparse(sp *bitmat.Sparse, slot int) {
	s.checkSlot(slot)
	if s.pinned[slot] {
		panic(fmt.Sprintf("core: ScheduleSlot on pinned slot %d", slot))
	}
	n := s.p.N

	// A row can hold an L cell only if it has an unserved request (the
	// pending mask — a row whose requests are all realized in B* cannot
	// yield an establish), a latched request, or a connection in this slot.
	// On a warm-prepared pass the incrementally-maintained masks give the
	// exact support instead: pending (over Reff, so latch rows are folded
	// in) plus this slot's stale rows (see warmpass.go).
	am := s.activeMask
	if w := s.warm; w != nil && w.passActive {
		st := w.stale[slot]
		for k := range am {
			am[k] = w.pending[k] | st[k]
		}
	} else if spMask, cfgMask := s.pendingMask, s.cfgRowMask[slot]; s.p.LatchRequests {
		lm := s.latch.RowMask()
		for w := range am {
			am[w] = spMask[w] | lm[w] | cfgMask[w]
		}
	} else {
		for w := range am {
			am[w] = spMask[w] | cfgMask[w]
		}
	}

	a, bo := 0, 0
	if s.p.RotatePriority {
		a, bo = s.rot%n, s.rot%n
	}
	s.rowsBuf = bitmat.AppendMaskOnesFrom(s.rowsBuf[:0], am, n, a)
	if len(s.rowsBuf) == 0 {
		return
	}
	estStart, relStart := len(s.estBuf), len(s.relBuf)
	b := s.configs[slot]

	if s.shardArena != nil {
		// Parallel phase: each shard computes its active rows' cells from the
		// pre-scan state into its own arena. Pure reads of shared state,
		// writes only to shard-owned storage and the per-row records of the
		// shard's own rows — race-free by construction.
		bounds := s.p.ShardBounds
		run := s.p.ShardRun
		if run == nil {
			run = func(k int, fn func(int)) {
				for i := 0; i < k; i++ {
					fn(i)
				}
			}
		}
		run(len(bounds)-1, func(sh int) {
			arena := s.shardArena[sh][:0]
			for u := bounds[sh]; u < bounds[sh+1]; u++ {
				if !maskTest(am, u) {
					continue
				}
				pos := len(arena)
				arena = s.appendRowCells(arena, sp, slot, u)
				s.rowCellPos[u] = int32(pos)
				s.rowCellLen[u] = int32(len(arena) - pos)
			}
			s.shardArena[sh] = arena
		})
		// Serial merge: exact rotated row order, live availability checks.
		for _, u := range s.rowsBuf {
			arena := s.shardArena[s.rowShard[u]]
			cells := arena[s.rowCellPos[u] : s.rowCellPos[u]+s.rowCellLen[u]]
			s.applyRowCells(cells, slot, u, bo, b)
		}
	} else {
		for _, u := range s.rowsBuf {
			s.cellBuf = s.appendRowCells(s.cellBuf[:0], sp, slot, u)
			s.applyRowCells(s.cellBuf, slot, u, bo, b)
		}
	}
	s.finishSlot(slot, estStart, relStart)
}

// appendRowCells appends row u's L cells — ascending column order — to dst
// and returns the extended slice. It reads only row-u state plus B*'s row u,
// so it is safe to run for many rows concurrently before any cell is
// applied. The release cell (the slot's connection, no longer requested) is
// merged into the establish candidates (requested, realized nowhere) at its
// column position; the two kinds never collide, since an establish candidate
// has its B* bit clear and the release cell has it set.
func (s *Scheduler) appendRowCells(dst []int32, sp *bitmat.Sparse, slot, u int) []int32 {
	nnz := len(sp.Row(u))
	if s.p.LatchRequests {
		nnz += len(s.latch.Row(u))
	}
	if nnz >= s.wordRowMin {
		return s.appendRowCellsWords(dst, sp, slot, u)
	}
	rel := int32(-1)
	if v := s.rowDst[slot][u]; v >= 0 {
		vv := int(v)
		if !sp.Get(u, vv) && !(s.p.LatchRequests && s.latch.Get(u, vv)) {
			rel = v
		}
	}
	reqRow := sp.Row(u)
	var latchRow []int32
	if s.p.LatchRequests {
		latchRow = s.latch.Row(u)
	}
	i, j := 0, 0
	for i < len(reqRow) || j < len(latchRow) {
		var v int32
		if j >= len(latchRow) || (i < len(reqRow) && reqRow[i] <= latchRow[j]) {
			v = reqRow[i]
			if j < len(latchRow) && latchRow[j] == v {
				j++
			}
			i++
		} else {
			v = latchRow[j]
			j++
		}
		if rel >= 0 && rel < v {
			dst = append(dst, rel)
			rel = -1
		}
		if !s.bstar.Get(u, int(v)) {
			dst = append(dst, v)
		}
	}
	if rel >= 0 {
		dst = append(dst, rel)
	}
	return dst
}

// appendRowCellsWords is appendRowCells for high-occupancy rows: it computes
// row u of the paper's change matrix L = (B(s) &^ Reff) | (Reff &^ B*) with
// word operations on the dense backings — exactly the dense path's formula,
// restricted to one row — and extracts the set bits in ascending column
// order. The release cell (B(s) minus Reff) and the establish candidates
// (Reff minus B*) are disjoint bit sets, so the word OR yields the same
// merged, ascending cell sequence the list merge produces.
func (s *Scheduler) appendRowCellsWords(dst []int32, sp *bitmat.Sparse, slot, u int) []int32 {
	bRow := s.configs[slot].RowWords(u)
	reqRow := sp.Matrix().RowWords(u)
	bsRow := s.bstar.RowWords(u)
	var latchRow []uint64
	if s.p.LatchRequests {
		latchRow = s.latch.Matrix().RowWords(u)
	}
	for w, eff := range reqRow {
		if latchRow != nil {
			eff |= latchRow[w]
		}
		l := (bRow[w] &^ eff) | (eff &^ bsRow[w])
		for l != 0 {
			b := bits.TrailingZeros64(l)
			dst = append(dst, int32(w*64+b))
			l &= l - 1
		}
	}
	return dst
}

// applyRowCells applies one row's cells in rotated column order — columns
// [bo, N) then [0, bo), matching the dense path's AppendRowOnesFrom scan —
// with the live Table 2 availability logic.
func (s *Scheduler) applyRowCells(cells []int32, slot, u, bo int, b *bitmat.Matrix) {
	split := len(cells)
	for k, v := range cells {
		if int(v) >= bo {
			split = k
			break
		}
	}
	s.applyCells(cells[split:], slot, u, b)
	s.applyCells(cells[:split], slot, u, b)
}

// applyCells is the sparse path's Table 2 cell loop, identical in effect to
// the dense scheduleSlot inner loop: the slot occupancy masks maintained by
// setConn/clearConn are the live AO/AI signals.
func (s *Scheduler) applyCells(cells []int32, slot, u int, b *bitmat.Matrix) {
	for _, vv := range cells {
		v := int(vv)
		if b.Get(u, v) {
			s.clearConn(slot, u, v)
			s.relBuf = append(s.relBuf, Change{Src: u, Dst: v, Slot: slot})
		} else if !maskTest(s.cfgColMask[slot], v) && !maskTest(s.cfgRowMask[slot], u) {
			if s.p.CanEstablish != nil && !s.p.CanEstablish(b, u, v) {
				continue
			}
			s.setConn(slot, u, v)
			s.estBuf = append(s.estBuf, Change{Src: u, Dst: v, Slot: slot})
		}
	}
}
