package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/runner"
)

// Identity suites for the scale-out machinery of the scheduler: the sparse
// request path and the per-leaf sharded pass are pure performance features,
// so the pinned property is bit-identity — same PassResults, same final
// state — against the dense unsharded scheduler, under every parameter the
// two paths interact with (rotation, latching, SL copies, the memo cache,
// and a fabric CanEstablish constraint).

// drivePair drives two schedulers through the same random request sequence,
// feeding sched a dense matrix and check the same requests through feed, and
// fails on the first divergence in PassResult or visible state.
func drivePair(t errorfer, rng *rand.Rand, n, passes int, dense, other *Scheduler,
	feed func(s *Scheduler, r *bitmat.Matrix, sp *bitmat.Sparse) PassResult) bool {
	r := bitmat.NewSquare(n)
	sp := bitmat.NewSparse(n, n)
	sp.EnableJournal() // consumed by the warm feed; inert for the others
	for pass := 0; pass < passes; pass++ {
		// Random occupancy per pass, biased low to exercise the sparse
		// fast path, with occasional dense bursts.
		edges := rng.Intn(n)
		if rng.Intn(4) == 0 {
			edges = n * 2
		}
		for e := 0; e < edges; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if rng.Intn(5) == 0 {
				r.Clear(u, v)
				sp.Clear(u, v)
			} else {
				r.Set(u, v)
				sp.Set(u, v)
			}
		}
		want := dense.Pass(r)
		got := feed(other, r, sp)
		if !passResultsEqual(want, got) {
			t.Errorf("pass %d: results diverge:\n dense %+v\n other %+v", pass, want, got)
			return false
		}
		if !schedStatesEqual(t, dense, other) {
			t.Errorf("pass %d: scheduler states diverge", pass)
			return false
		}
		// Exercise the mutators the index maintains, identically on both.
		if rng.Intn(3) == 0 && dense.Connections() > 0 {
			u, v := rng.Intn(n), rng.Intn(n)
			if dense.Connected(u, v) {
				dense.Evict(u, v)
				other.Evict(u, v)
				r.Clear(u, v)
				sp.Clear(u, v)
			}
		}
		if rng.Intn(7) == 0 {
			p := rng.Intn(n)
			dense.EvictPort(p)
			other.EvictPort(p)
			for q := 0; q < n; q++ {
				r.Clear(p, q)
				r.Clear(q, p)
				sp.Clear(p, q)
				sp.Clear(q, p)
			}
		}
		if err := other.CheckInvariants(); err != nil {
			t.Errorf("pass %d: invariants: %v", pass, err)
			return false
		}
	}
	return true
}

type errorfer interface {
	Errorf(format string, args ...any)
}

func passResultsEqual(a, b PassResult) bool {
	if len(a.Slots) != len(b.Slots) || len(a.Established) != len(b.Established) ||
		len(a.Released) != len(b.Released) {
		return false
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			return false
		}
	}
	for i := range a.Established {
		if a.Established[i] != b.Established[i] {
			return false
		}
	}
	for i := range a.Released {
		if a.Released[i] != b.Released[i] {
			return false
		}
	}
	return true
}

func schedStatesEqual(t errorfer, a, b *Scheduler) bool {
	if !a.BStar().Equal(b.BStar()) {
		t.Errorf("B* diverged:\n%v\nvs\n%v", a.BStar(), b.BStar())
		return false
	}
	for slot := 0; slot < a.Params().K; slot++ {
		if !a.Config(slot).Equal(b.Config(slot)) {
			t.Errorf("slot %d config diverged", slot)
			return false
		}
	}
	// Warm counters are pure telemetry, documented to differ between warm-on
	// and warm-off runs; everything else must match exactly.
	as, bs := a.Stats(), b.Stats()
	as.WarmHits, as.WarmMisses, as.DirtyRows = 0, 0, 0
	bs.WarmHits, bs.WarmMisses, bs.DirtyRows = 0, 0, 0
	if as != bs {
		t.Errorf("stats diverged: %+v vs %+v", as, bs)
		return false
	}
	return true
}

// evenDiagonal is a pure fabric constraint usable under Memoize: it only
// reads (b, u, v).
func evenDiagonal(b *bitmat.Matrix, u, v int) bool {
	return (u+v)%4 != 1 || b.RowCount(u%b.Rows()) == 0
}

func randomPairParams(rng *rand.Rand) (Params, int) {
	n := 4 + rng.Intn(20)
	p := Params{
		N:              n,
		K:              1 + rng.Intn(4),
		RotatePriority: rng.Intn(2) == 0,
		SkipEmptySlots: rng.Intn(2) == 0,
		LatchRequests:  rng.Intn(3) == 0,
		Memoize:        rng.Intn(2) == 0,
	}
	p.SLCopies = 1 + rng.Intn(p.K)
	if rng.Intn(3) == 0 {
		p.CanEstablish = evenDiagonal
	}
	return p, n
}

// TestQuickSparseDenseParity pins the sparse request path to the dense one:
// same pass results and same scheduler state at every step, across random
// parameter combinations including the memo cache and a fabric constraint.
func TestQuickSparseDenseParity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, n := randomPairParams(rng)
		dense := MustScheduler(p)
		sparse := MustScheduler(p)
		return drivePair(t, rng, n, 25, dense, sparse,
			func(s *Scheduler, _ *bitmat.Matrix, sp *bitmat.Sparse) PassResult {
				return s.PassSparse(sp)
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// randomBounds cuts [0, n) into 2..4 strictly ascending shard ranges.
func randomBounds(rng *rand.Rand, n int) []int {
	shards := 2 + rng.Intn(3)
	if shards > n {
		shards = n
	}
	bounds := []int{0}
	for i := 1; i < shards; i++ {
		next := bounds[len(bounds)-1] + 1 + rng.Intn(n-bounds[len(bounds)-1]-(shards-i))
		bounds = append(bounds, next)
	}
	return append(bounds, n)
}

// TestQuickShardedUnshardedParity pins the sharded sparse pass — serial and
// on a parallel worker pool — to the plain sparse pass.
func TestQuickShardedUnshardedParity(t *testing.T) {
	pool := runner.NewPool(3)
	defer pool.Close()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, n := randomPairParams(rng)
		sharded := p
		sharded.ShardBounds = randomBounds(rng, n)
		if rng.Intn(2) == 0 {
			sharded.ShardRun = pool.Run
		}
		dense := MustScheduler(p)
		shardedSched := MustScheduler(sharded)
		return drivePair(t, rng, n, 25, dense, shardedSched,
			func(s *Scheduler, _ *bitmat.Matrix, sp *bitmat.Sparse) PassResult {
				return s.PassSparse(sp)
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShardBoundsValidation(t *testing.T) {
	bad := [][]int{
		{0},           // too short
		{1, 8},        // must start at 0
		{0, 4},        // must end at N
		{0, 4, 4, 8},  // not strictly ascending
		{0, 8, 4, 16}, // descending in the middle
	}
	for _, b := range bad {
		p := Params{N: 8, K: 2, ShardBounds: b}
		if b[len(b)-1] == 16 {
			p.N = 16
		}
		if err := p.withDefaults().Validate(); err == nil {
			t.Errorf("bounds %v: expected a validation error", b)
		}
	}
	good := Params{N: 8, K: 2, ShardBounds: []int{0, 3, 8}}
	if err := good.withDefaults().Validate(); err != nil {
		t.Errorf("bounds %v rejected: %v", good.ShardBounds, err)
	}
}

// TestQuickAlternativeAlgorithmsValid drives iSLIP and wavefront matching
// under random requests and checks the structural guarantees every matching
// algorithm must keep: partial-permutation configurations, a coherent B*,
// no connection that was never requested, and full invariant checks.
func TestQuickAlternativeAlgorithmsValid(t *testing.T) {
	for _, alg := range []Algorithm{AlgISLIP, AlgWavefront} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				n := 2 + rng.Intn(14)
				s := MustScheduler(Params{
					N:              n,
					K:              1 + rng.Intn(4),
					Algorithm:      alg,
					RotatePriority: rng.Intn(2) == 0,
					SkipEmptySlots: rng.Intn(2) == 0,
				})
				ever := bitmat.NewSquare(n)
				for pass := 0; pass < 20; pass++ {
					r := bitmat.NewSquare(n)
					for e := 0; e < n; e++ {
						u, v := rng.Intn(n), rng.Intn(n)
						if u != v {
							r.Set(u, v)
							ever.Set(u, v)
						}
					}
					s.Pass(r)
					if err := s.CheckInvariants(); err != nil {
						t.Logf("seed %d pass %d: %v", seed, pass, err)
						return false
					}
					if !s.BStar().ContainedIn(ever) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAlternativeAlgorithmsServePermutation pins the matching quality both
// alternatives are known for: a full permutation request set is conflict-
// free, so it must be fully established within K passes and then stay put.
func TestAlternativeAlgorithmsServePermutation(t *testing.T) {
	for _, alg := range []Algorithm{AlgISLIP, AlgWavefront} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			const n, k = 16, 3
			s := MustScheduler(Params{N: n, K: k, Algorithm: alg, RotatePriority: true, SkipEmptySlots: true})
			rng := rand.New(rand.NewSource(5))
			r := bitmat.NewSquare(n)
			for u, v := range rng.Perm(n) {
				if u != v {
					r.Set(u, v)
				}
			}
			for pass := 0; pass < k; pass++ {
				s.Pass(r)
			}
			if !r.ContainedIn(s.BStar()) {
				t.Fatalf("%s: permutation not fully established after %d passes", alg, k)
			}
			res := s.Pass(r)
			if len(res.Established) != 0 || len(res.Released) != 0 {
				t.Fatalf("%s: stable requests churned: %+v", alg, res)
			}
		})
	}
}

// TestAlternativeAlgorithmsRespectCanEstablish pins the fabric hook on the
// alternative matchers: a constraint that rejects every connection must keep
// the fabric empty.
func TestAlternativeAlgorithmsRespectCanEstablish(t *testing.T) {
	for _, alg := range []Algorithm{AlgISLIP, AlgWavefront} {
		s := MustScheduler(Params{
			N: 8, K: 2, Algorithm: alg,
			CanEstablish: func(b *bitmat.Matrix, u, v int) bool { return false },
		})
		r := bitmat.NewSquare(8)
		for u := 0; u < 8; u++ {
			r.Set(u, (u+1)%8)
		}
		for pass := 0; pass < 4; pass++ {
			if res := s.Pass(r); len(res.Established) != 0 {
				t.Fatalf("%s: established %d connections past an all-deny constraint", alg, len(res.Established))
			}
		}
		if s.Connections() != 0 {
			t.Fatalf("%s: %d connections past an all-deny constraint", alg, s.Connections())
		}
	}
}

func TestAlgorithmStringAndParse(t *testing.T) {
	for _, alg := range algorithmValues {
		got, err := ParseAlgorithm(alg.String())
		if err != nil || got != alg {
			t.Errorf("round trip %v: got %v, err %v", alg, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("expected an error for an unknown algorithm name")
	}
	if got := Algorithm(99).String(); got != "Algorithm(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
	names := AlgorithmNames()
	if len(names) != len(algorithmValues) {
		t.Fatalf("AlgorithmNames() = %v, want %d names", names, len(algorithmValues))
	}
	p := Params{N: 4, K: 2, Algorithm: Algorithm(7)}
	if err := p.withDefaults().Validate(); err == nil {
		t.Error("unknown algorithm must fail validation")
	}
}

// TestNonPaperAlgorithmsDisableMemoize pins the withDefaults guard: the
// memo-cache key does not cover iSLIP's pointer state, so Memoize must be
// forced off for the alternative algorithms.
func TestNonPaperAlgorithmsDisableMemoize(t *testing.T) {
	for _, alg := range []Algorithm{AlgISLIP, AlgWavefront} {
		p := Params{N: 8, K: 2, Algorithm: alg, Memoize: true}.withDefaults()
		if p.Memoize {
			t.Errorf("%v: Memoize survived withDefaults", alg)
		}
	}
	p := Params{N: 8, K: 2, Algorithm: AlgPaper, Memoize: true}.withDefaults()
	if !p.Memoize {
		t.Error("paper algorithm must keep Memoize")
	}
}

// TestSlotIndexAccessors pins the incrementally-maintained per-pair slot
// index against a brute-force rescan of the K configuration matrices.
func TestSlotIndexAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, k = 12, 4
	s := MustScheduler(Params{N: n, K: k, RotatePriority: true})
	r := bitmat.NewSquare(n)
	for pass := 0; pass < 40; pass++ {
		for e := 0; e < n/2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				if rng.Intn(4) == 0 {
					r.Clear(u, v)
				} else {
					r.Set(u, v)
				}
			}
		}
		s.Pass(r)
		if pass%5 == 0 && s.Connections() > 0 {
			u, v := rng.Intn(n), rng.Intn(n)
			if s.Connected(u, v) {
				s.AddBandwidth(u, v, 1)
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				var want []int
				for slot := 0; slot < k; slot++ {
					if s.Config(slot).Get(u, v) {
						want = append(want, slot)
					}
				}
				got := s.SlotsOf(u, v)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("SlotsOf(%d,%d) = %v, want %v", u, v, got, want)
				}
				if s.Connected(u, v) != (len(want) > 0) {
					t.Fatalf("Connected(%d,%d) inconsistent with configs", u, v)
				}
			}
		}
	}
}
