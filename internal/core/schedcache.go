// Scheduling-pass memoization: the software analogue of the paper's
// working-set caching. The predictive switch keeps the hot communication
// pattern resident in its configuration registers; this cache keeps the hot
// *scheduling decisions* resident, so a request matrix the scheduler has
// already resolved from the current state replays its recorded grant set
// instead of re-running the O(N²) scheduling array.
//
// Soundness rests on the state-ID chain. A Scheduler's observable state is
// (configs, latch, pinned); stateID names it injectively over the
// scheduler's lifetime:
//
//   - Out-of-band mutators (Evict, EvictPort, AddBandwidth, LoadConfig,
//     PinSlot, Flush, FlushAll, a direct ScheduleSlot that changed
//     anything) mint a fresh, never-reused ID.
//   - A computed pass that changed state mints a fresh ID; a no-change pass
//     keeps its ID (only the SL/rotation cursors moved, and those are part
//     of the key).
//   - A replayed pass applies the exact recorded config/latch deltas —
//     reproducing the recorded post-state bit for bit — and adopts the
//     recorded post-state ID.
//
// A pass is a deterministic function of (state, slCursor, rot, R) — the
// CanEstablish hook is required to be pure — so a key match implies the
// recorded outcome is exactly what recomputation would produce. Entries are
// bucketed by a 64-bit FNV-1a hash but verified against an exact packed
// copy of R's set bits, so hash collisions cost a lookup, never
// correctness.
package core

import "pmsnet/internal/bitmat"

// maxCacheEntries bounds cache memory. When the cap is reached the cache
// stops recording (rather than evicting) so that behaviour stays a
// deterministic function of the run prefix and steady-state passes stay
// allocation-free.
const maxCacheEntries = 4096

// passKey identifies a pass's full input: scheduler state (by ID), both
// scheduling cursors, and the request matrix (by hash; verified exactly
// against passEntry.reqBits).
type passKey struct {
	stateID  uint64
	slCursor int
	rot      int
	reqHash  uint64
}

// passEntry is one recorded pass transition.
type passEntry struct {
	key     passKey
	reqBits []uint32 // exact packed set bits of R (AppendPacked order)

	// Recorded outcome: the PassResult slices (owned by the entry) double
	// as the config deltas — Established bits are set, Released bits
	// cleared, and under latching Established bits are latched.
	slots    []int
	est, rel []Change
	latchClr []uint32 // packed latch clears (released and gone everywhere)

	// Post-state.
	nextStateID uint64
	nextSL      int
	nextRot     int
}

type passCache struct {
	buckets map[uint64][]*passEntry
	n       int
}

func newPassCache() *passCache {
	return &passCache{buckets: make(map[uint64][]*passEntry)}
}

// passKey builds the lookup key for a pass over request matrix r from the
// scheduler's current state.
func (s *Scheduler) passKey(r *bitmat.Matrix) passKey {
	// Fold the state ID and cursors into the seed so the bucket hash
	// separates states as well as request patterns.
	seed := s.stateID*0x9e3779b97f4a7c15 ^ uint64(s.slCursor)<<32 ^ uint64(s.rot)
	return passKey{
		stateID:  s.stateID,
		slCursor: s.slCursor,
		rot:      s.rot,
		reqHash:  r.Hash64(seed),
	}
}

// lookup returns the recorded transition for (key, r), or nil. Candidates
// matching the hash are verified against the exact request bits.
func (c *passCache) lookup(key passKey, r *bitmat.Matrix) *passEntry {
	for _, e := range c.buckets[key.reqHash] {
		if e.key == key && r.MatchesPacked(e.reqBits) {
			return e
		}
	}
	return nil
}

// record stores the pass the scheduler just computed into its scratch
// buffers, copying them into entry-owned slices. It is a no-op once the
// cache is full.
func (c *passCache) record(key passKey, r *bitmat.Matrix, s *Scheduler) {
	if c.n >= maxCacheEntries {
		return
	}
	e := &passEntry{
		key:         key,
		reqBits:     r.AppendPacked(make([]uint32, 0, r.Count())),
		slots:       append([]int(nil), s.slotsBuf...),
		est:         append([]Change(nil), s.estBuf...),
		rel:         append([]Change(nil), s.relBuf...),
		latchClr:    append([]uint32(nil), s.latchClrBuf...),
		nextStateID: s.stateID,
		nextSL:      s.slCursor,
		nextRot:     s.rot,
	}
	c.buckets[key.reqHash] = append(c.buckets[key.reqHash], e)
	c.n++
}

// replay applies a recorded transition: the config and latch deltas, the
// cursor and state-ID advances, and the activity counters — everything a
// computed pass would have done, without touching the scheduling array.
// Every est/rel cell is distinct within one pass (a connection released in
// one slot cannot be re-established in another during the same pass, and
// vice versa), so the bit-level deltas are disjoint.
func (s *Scheduler) replay(e *passEntry) PassResult {
	// Deltas go through setConn/clearConn so the slot index, occupancy masks
	// and B* track the replayed state exactly as a computed pass would.
	// Releases apply first: an establish into a (slot, row) the pass also
	// released from always followed the release in scan order (the row was
	// occupied until then), and the index holds one destination per row, so
	// the release must free it before the establish refills it.
	for _, c := range e.rel {
		s.clearConn(c.Slot, c.Src, c.Dst)
	}
	for _, c := range e.est {
		s.setConn(c.Slot, c.Src, c.Dst)
	}
	if s.p.LatchRequests {
		// Through the latch funnels, so a replay dirties the warm-path rows
		// exactly like the computed pass it stands in for.
		for _, c := range e.est {
			s.latchSet(c.Src, c.Dst)
		}
		for _, p := range e.latchClr {
			s.latchClear(int(p>>16), int(p&0xffff))
		}
	}
	s.stats.Established += uint64(len(e.est))
	s.stats.Released += uint64(len(e.rel))
	s.slCursor = e.nextSL
	s.rot = e.nextRot
	s.stateID = e.nextStateID
	return PassResult{Slots: e.slots, Established: e.est, Released: e.rel}
}

// CacheSize returns the number of recorded pass transitions (zero unless
// Params.Memoize).
func (s *Scheduler) CacheSize() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.n
}
