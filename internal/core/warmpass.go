// Warm-started pass evaluation for the paper algorithm.
//
// A cold sparse pass (sparsepass.go) rebuilds its pending-row mask from the
// whole request matrix every time — O(occupied rows) per pass even when
// nothing changed since the previous one. The warm path seeds each pass from
// the state the previous pass left behind and re-derives only the dirty-row
// closure: rows whose requests changed since the last pass (reported by the
// request matrix's delta journal), plus rows whose scheduler-side state —
// grants, latches, per-pair slot index — was mutated by evictions, preloads,
// cache replays or the passes themselves (marked at the setConn/clearConn
// and latch funnels). Steady-state cost is O(changed rows), not O(N).
//
// The per-slot active mask it produces is exact, not a superset: row u of
// the change matrix L = (B(s) &^ Reff) | (Reff &^ B*) is nonempty iff
//
//   - pending(u): row u of Reff &^ B* is nonempty (the establish term), or
//   - stale(s,u): slot s connects u→v (rowDst, at most one per row in a
//     partial permutation) with (u,v) ∉ Reff (the release term).
//
// Note pending is defined over Reff = R | latch, not R alone: a preload can
// replace a slot's connections while their latches survive, stranding latch
// bits outside B* — the cold path covers those rows with a separate
// latch-row term in its active mask; the warm mask folds them into pending.
//
// Determinism argument. The masks are computed at pass entry, but a pass
// mutates state as it schedules (SLCopies slots in sequence). The pass-entry
// masks remain supersets of the true support at every later slot's
// evaluation: R is fixed for the pass; an establish adds a latch bit only
// alongside the matching B* bit (no new pending); a release (u,v) requires
// (u,v) ∉ Reff at release time and no in-pass mutation can re-add (u,v) to
// Reff, so the freed B* bit creates no pending either; and a slot's own
// rowDst is untouched until that slot is evaluated, while its latch bits
// cannot be cleared early (a latch clear requires the pair gone from every
// slot). Rows visited beyond the live support contribute zero change cells,
// and the shared sparse slot body visits rows in the identical rotated order
// with the identical live Table 2 checks — so a warm pass is bit-identical
// to the cold sparse pass, which is bit-identical to the dense one.
package core

import (
	"fmt"
	"math/bits"

	"pmsnet/internal/bitmat"
	"pmsnet/internal/probe"
)

// warmState is the cross-pass scheduler state of the warm path. The masks
// describe the scheduler+request state as of the last warm pass, except for
// rows flagged in dirty (scheduler-side mutations since) and rows flagged in
// the request matrix's journal (request-side mutations since).
type warmState struct {
	req        *bitmat.Sparse // matrix the masks were derived from
	valid      bool           // false until the first pass and after bulk resets
	passActive bool           // a warm-prepared pass is running; slot evals use the warm masks
	pending    []uint64       // rows of Reff with a request realized nowhere
	stale      [][]uint64     // [slot]: rows whose slot connection is no longer in Reff
	dirty      []uint64       // rows whose masks need recomputation at the next warm pass
}

// warmDirty flags a row for recomputation at the next warm pass. It sits on
// the setConn/clearConn/latch funnels, so every scheduler-side mutation of a
// row's B*, slot index or latch state lands here — including memo-cache
// replays and out-of-band mutations (Evict, AddBandwidth, LoadConfig).
func (s *Scheduler) warmDirty(u int) {
	if s.warm != nil {
		s.warm.dirty[u>>6] |= 1 << (uint(u) & 63)
	}
}

// warmInvalidate discards the warm masks entirely; the next warm pass does a
// full rebuild. Flush paths use it: latch.Reset clears rows the dirty mask
// never saw.
func (s *Scheduler) warmInvalidate() {
	if s.warm != nil {
		s.warm.valid = false
	}
}

// PassWarm is PassSparse evaluated through the warm-started incremental path
// when Params.WarmStart is on (without it, it degrades to PassSparse). The
// request matrix should carry a delta journal (bitmat.Sparse.EnableJournal);
// without one — or after a bulk mutation voided it, or when sp is not the
// matrix of the previous warm pass — the pass falls back to a full mask
// rebuild and warm-starts from there. Results are bit-identical to Pass and
// PassSparse either way, memo cache included: the cache (tier 1, exact
// replay) is consulted first, and the warm path only replaces the cold
// mask computation of a computed pass (tier 2).
func (s *Scheduler) PassWarm(sp *bitmat.Sparse) PassResult {
	return s.passProbed(sp.Matrix(), sp, true)
}

// warmPrepare brings the warm masks up to date with the current scheduler
// and request state, consuming (and resetting) the request journal. After it
// returns, pending and stale[slot] are exact and dirty is clear.
func (s *Scheduler) warmPrepare(sp *bitmat.Sparse) {
	w := s.warm
	jr := sp.Journal()
	if !w.valid || w.req != sp || jr == nil || !jr.Complete() {
		s.warmRebuild(sp)
		if jr != nil {
			sp.ResetJournal()
		}
		s.stats.WarmMisses++
		if s.probe != nil {
			s.probe.Emit(probe.Event{Kind: probe.SchedWarmPass, At: s.now(), Aux: -1})
		}
		return
	}
	dirty := w.dirty
	for i, dw := range jr.DirtyRows() {
		dirty[i] |= dw
	}
	sp.ResetJournal()
	rows := 0
	for wi := range dirty {
		word := dirty[wi]
		if word == 0 {
			continue
		}
		dirty[wi] = 0
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			s.warmRefreshRow(sp, wi*64+b)
			rows++
		}
	}
	s.stats.WarmHits++
	s.stats.DirtyRows += uint64(rows)
	if s.probe != nil {
		s.probe.Emit(probe.Event{Kind: probe.SchedWarmPass, At: s.now(), Aux: int64(rows), ID: 1})
	}
}

// warmRebuild recomputes every mask from scratch: pending over the occupied
// rows of R (and the latch), stale over each slot's connected rows.
func (s *Scheduler) warmRebuild(sp *bitmat.Sparse) {
	w := s.warm
	for i := range w.pending {
		w.pending[i] = 0
		w.dirty[i] = 0
	}
	for _, st := range w.stale {
		for i := range st {
			st[i] = 0
		}
	}
	rm := sp.RowMask()
	var lm []uint64
	if s.p.LatchRequests {
		lm = s.latch.RowMask()
	}
	for wi := range rm {
		word := rm[wi]
		if lm != nil {
			word |= lm[wi]
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			u := wi*64 + b
			if s.warmPendingRow(sp, u) {
				maskSet(w.pending, u)
			}
		}
	}
	for slot := 0; slot < s.p.K; slot++ {
		for wi, word := range s.cfgRowMask[slot] {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &= word - 1
				u := wi*64 + b
				if s.warmStaleRow(sp, slot, u) {
					maskSet(w.stale[slot], u)
				}
			}
		}
	}
	w.req = sp
	w.valid = true
}

// warmRefreshRow recomputes one dirty row's pending bit and its stale bit in
// every slot. O(row nonzeros + K).
func (s *Scheduler) warmRefreshRow(sp *bitmat.Sparse, u int) {
	w := s.warm
	if s.warmPendingRow(sp, u) {
		maskSet(w.pending, u)
	} else {
		maskClear(w.pending, u)
	}
	for slot := 0; slot < s.p.K; slot++ {
		if s.warmStaleRow(sp, slot, u) {
			maskSet(w.stale[slot], u)
		} else {
			maskClear(w.stale[slot], u)
		}
	}
}

// warmPendingRow reports whether row u of Reff &^ B* is nonempty, with the
// same adaptive list/word split as the cold computePendingMask.
func (s *Scheduler) warmPendingRow(sp *bitmat.Sparse, u int) bool {
	nnz := len(sp.Row(u))
	if s.p.LatchRequests {
		nnz += len(s.latch.Row(u))
	}
	if nnz >= s.wordRowMin {
		reqRow := sp.Matrix().RowWords(u)
		bsRow := s.bstar.RowWords(u)
		var latchRow []uint64
		if s.p.LatchRequests {
			latchRow = s.latch.Matrix().RowWords(u)
		}
		for k, rw := range reqRow {
			if latchRow != nil {
				rw |= latchRow[k]
			}
			if rw&^bsRow[k] != 0 {
				return true
			}
		}
		return false
	}
	for _, v := range sp.Row(u) {
		if !s.bstar.Get(u, int(v)) {
			return true
		}
	}
	if s.p.LatchRequests {
		for _, v := range s.latch.Row(u) {
			if !s.bstar.Get(u, int(v)) {
				return true
			}
		}
	}
	return false
}

// warmStaleRow reports whether slot `slot` connects u to a destination no
// longer in Reff. Maintained for pinned slots too — pinning is a scheduling
// gate, not a row-state change, so PinSlot needs no warm bookkeeping.
func (s *Scheduler) warmStaleRow(sp *bitmat.Sparse, slot, u int) bool {
	v := s.rowDst[slot][u]
	if v < 0 {
		return false
	}
	vv := int(v)
	return !sp.Get(u, vv) && !(s.p.LatchRequests && s.latch.Get(u, vv))
}

// checkWarmInvariants verifies the warm masks against a fresh recomputation
// for every row not awaiting a recompute (scheduler-dirty or journal-dirty
// rows are allowed to lag by construction). Called from CheckInvariants; the
// check is skipped while the masks are invalid, unbuilt, or the journal
// cannot vouch for the request matrix.
func (s *Scheduler) checkWarmInvariants() error {
	w := s.warm
	if w == nil || !w.valid || w.req == nil {
		return nil
	}
	jr := w.req.Journal()
	if jr == nil || !jr.Complete() {
		return nil
	}
	for u := 0; u < s.p.N; u++ {
		if maskTest(w.dirty, u) || bitmat.MaskTest(jr.DirtyRows(), u) {
			continue
		}
		if got, want := maskTest(w.pending, u), s.warmPendingRow(w.req, u); got != want {
			return fmt.Errorf("core: warm pending mask row %d is %v, want %v", u, got, want)
		}
		for slot := 0; slot < s.p.K; slot++ {
			if got, want := maskTest(w.stale[slot], u), s.warmStaleRow(w.req, slot, u); got != want {
				return fmt.Errorf("core: warm stale mask slot %d row %d is %v, want %v", slot, u, got, want)
			}
		}
	}
	return nil
}
