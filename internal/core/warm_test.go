package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmsnet/internal/bitmat"
)

// Warm-start identity suite: PassWarm is a pure performance feature, so the
// pinned property is bit-identity — same PassResults, same final state —
// against the dense cold pass, under every parameter the warm masks interact
// with (rotation, latching, SL copies, the memo cache, fabric constraints,
// evictions, preloads and flushes).

// TestQuickWarmColdParity drives a warm-started scheduler and a dense cold
// one through the same random request churn and eviction sequence.
func TestQuickWarmColdParity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, n := randomPairParams(rng)
		warm := p
		warm.WarmStart = true
		dense := MustScheduler(p)
		warmSched := MustScheduler(warm)
		return drivePair(t, rng, n, 25, dense, warmSched,
			func(s *Scheduler, _ *bitmat.Matrix, sp *bitmat.Sparse) PassResult {
				return s.PassWarm(sp)
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWarmShardedParity composes the two scale-out features: the warm
// masks feed the sharded slot evaluation unchanged.
func TestQuickWarmShardedParity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, n := randomPairParams(rng)
		warm := p
		warm.WarmStart = true
		warm.ShardBounds = randomBounds(rng, n)
		dense := MustScheduler(p)
		warmSched := MustScheduler(warm)
		return drivePair(t, rng, n, 25, dense, warmSched,
			func(s *Scheduler, _ *bitmat.Matrix, sp *bitmat.Sparse) PassResult {
				return s.PassWarm(sp)
			})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmStartCounters pins the telemetry semantics: the first warm pass is
// a full rebuild (miss), stable traffic converges to incremental hits with
// zero dirty rows, and request churn re-dirties exactly the touched rows.
func TestWarmStartCounters(t *testing.T) {
	const n = 32
	s := MustScheduler(Params{N: n, K: 4, WarmStart: true, RotatePriority: true})
	sp := bitmat.NewSparse(n, n)
	sp.EnableJournal()
	for i := 0; i < n; i++ {
		if v := (i + 1) % n; v != i {
			sp.Set(i, v)
		}
	}
	s.PassWarm(sp)
	if st := s.Stats(); st.WarmMisses != 1 || st.WarmHits != 0 {
		t.Fatalf("first pass: %+v, want one rebuild", st)
	}
	// The first pass established connections (dirtying their rows); drive to
	// steady state, then expect hits with zero new dirty rows.
	for i := 0; i < 4; i++ {
		s.PassWarm(sp)
	}
	before := s.Stats()
	if before.WarmHits != 4 || before.WarmMisses != 1 {
		t.Fatalf("after settle: %+v", before)
	}
	s.PassWarm(sp)
	after := s.Stats()
	if after.WarmHits != before.WarmHits+1 || after.DirtyRows != before.DirtyRows {
		t.Fatalf("steady pass re-evaluated rows: before %+v after %+v", before, after)
	}
	// One toggled request dirties exactly one row.
	sp.Clear(0, 1)
	s.PassWarm(sp)
	final := s.Stats()
	if final.DirtyRows != after.DirtyRows+1 {
		t.Fatalf("one-cell churn: dirty rows %d -> %d, want +1", after.DirtyRows, final.DirtyRows)
	}
}

// TestWarmStartRebuildTriggers pins every fallback to a full rebuild: a
// request matrix without a journal, a bulk mutation voiding the journal, a
// different matrix pointer, and a flush.
func TestWarmStartRebuildTriggers(t *testing.T) {
	const n = 16
	newReq := func(journal bool) *bitmat.Sparse {
		sp := bitmat.NewSparse(n, n)
		if journal {
			sp.EnableJournal()
		}
		for i := 0; i < n-1; i++ {
			sp.Set(i, i+1)
		}
		return sp
	}
	misses := func(s *Scheduler) uint64 { return s.Stats().WarmMisses }

	s := MustScheduler(Params{N: n, K: 2, WarmStart: true})
	bare := newReq(false)
	s.PassWarm(bare)
	s.PassWarm(bare)
	if got := misses(s); got != 2 {
		t.Errorf("journal-less matrix: %d rebuilds over 2 passes, want 2", got)
	}

	s = MustScheduler(Params{N: n, K: 2, WarmStart: true})
	sp := newReq(true)
	s.PassWarm(sp)
	sp.Reset() // bulk: journal incomplete
	s.PassWarm(sp)
	if got := misses(s); got != 2 {
		t.Errorf("bulk reset: %d rebuilds, want 2", got)
	}

	s = MustScheduler(Params{N: n, K: 2, WarmStart: true})
	s.PassWarm(newReq(true))
	s.PassWarm(newReq(true)) // different matrix identity
	if got := misses(s); got != 2 {
		t.Errorf("matrix swap: %d rebuilds, want 2", got)
	}

	s = MustScheduler(Params{N: n, K: 2, WarmStart: true})
	sp = newReq(true)
	s.PassWarm(sp)
	s.Flush() // latch bulk reset invalidates the warm masks
	s.PassWarm(sp)
	if got := misses(s); got != 2 {
		t.Errorf("flush: %d rebuilds, want 2", got)
	}
}

// TestPassWarmWithoutWarmStartDegrades pins the graceful path: PassWarm on a
// scheduler built without Params.WarmStart behaves exactly like PassSparse
// and keeps the warm counters at zero.
func TestPassWarmWithoutWarmStartDegrades(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, n := randomPairParams(rng)
		dense := MustScheduler(p)
		cold := MustScheduler(p)
		ok := drivePair(t, rng, n, 10, dense, cold,
			func(s *Scheduler, _ *bitmat.Matrix, sp *bitmat.Sparse) PassResult {
				return s.PassWarm(sp)
			})
		st := cold.Stats()
		return ok && st.WarmHits == 0 && st.WarmMisses == 0 && st.DirtyRows == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestNonPaperAlgorithmsDisableWarmStart pins the withDefaults guard, the
// warm twin of the Memoize one.
func TestNonPaperAlgorithmsDisableWarmStart(t *testing.T) {
	for _, alg := range []Algorithm{AlgISLIP, AlgWavefront} {
		p := Params{N: 8, K: 2, Algorithm: alg, WarmStart: true}.withDefaults()
		if p.WarmStart {
			t.Errorf("%v: WarmStart survived withDefaults", alg)
		}
	}
	p := Params{N: 8, K: 2, Algorithm: AlgPaper, WarmStart: true}.withDefaults()
	if !p.WarmStart {
		t.Error("paper algorithm must keep WarmStart")
	}
}

// FuzzWarmStartParity drives a warm scheduler and a cold dense one through a
// fuzzer-chosen sequence of request churn, evictions, port evictions,
// bandwidth amplification, preloads and flushes, requiring lockstep pass
// results, identical visible state and clean invariants (which include the
// warm-mask coherence check) at every step.
func FuzzWarmStartParity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 40, 5, 6, 0x80, 9}, uint8(12), uint8(3), uint8(0))
	f.Add([]byte{0xff, 0x00, 0x80, 0x7f, 0x22, 0x11}, uint8(20), uint8(4), uint8(7))
	f.Add([]byte{}, uint8(4), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, ops []byte, n8, k8, flags uint8) {
		n := 2 + int(n8)%30
		k := 1 + int(k8)%4
		p := Params{
			N:              n,
			K:              k,
			SLCopies:       1 + int(flags)%k,
			RotatePriority: flags&4 != 0,
			SkipEmptySlots: flags&8 != 0,
			LatchRequests:  flags&16 != 0,
			Memoize:        flags&32 != 0,
		}
		warm := p
		warm.WarmStart = true
		dense := MustScheduler(p)
		ws := MustScheduler(warm)
		r := bitmat.NewSquare(n)
		sp := bitmat.NewSparse(n, n)
		sp.EnableJournal()
		for i := 0; i+2 < len(ops); i += 3 {
			u, v := int(ops[i])%n, int(ops[i+1])%n
			switch op := ops[i+2] % 16; {
			case op < 6: // raise request
				r.Set(u, v)
				sp.Set(u, v)
			case op < 9: // drop request
				r.Clear(u, v)
				sp.Clear(u, v)
			case op < 13: // scheduling pass
				want := dense.Pass(r)
				got := ws.PassWarm(sp)
				if !passResultsEqual(want, got) {
					t.Fatalf("op %d: pass diverged:\n cold %+v\n warm %+v", i, want, got)
				}
			case op == 13: // predictor eviction
				dense.Evict(u, v)
				ws.Evict(u, v)
			case op == 14: // fault-style port eviction or amplification
				if ops[i]&1 == 0 {
					dense.EvictPort(u)
					ws.EvictPort(u)
				} else if dense.Connected(u, v) {
					dense.AddBandwidth(u, v, 1)
					ws.AddBandwidth(u, v, 1)
				}
			default: // phase flush
				dense.Flush()
				ws.Flush()
			}
			if err := ws.CheckInvariants(); err != nil {
				t.Fatalf("op %d: warm invariants: %v", i, err)
			}
		}
		if !schedStatesEqual(t, dense, ws) {
			t.Fatal("final states diverged")
		}
	})
}

// --- warm-path scaling benches (BENCH_5 additions) ---

// benchPassWarm measures the steady-state warm pass: after the working set
// settles, a fixed pool of churn cells is toggled each iteration (0 = fully
// idle steady state) and one warm pass runs. The pool is fixed so the live
// request set stays bounded at any benchtime — the scenario is "few rows
// change per pass", not "requests accumulate forever". The cold sparse
// equivalents of these scenarios are the BenchmarkPassNSparse entries.
func benchPassWarm(b *testing.B, n, churn int) {
	b.Helper()
	s := MustScheduler(Params{N: n, K: 4, RotatePriority: true, SkipEmptySlots: true, WarmStart: true})
	_, sp := benchSparseRequests(n)
	sp.EnableJournal()
	for pass := 0; pass < 4; pass++ {
		s.PassWarm(sp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < churn; c++ {
			u := (c * 37) % n
			v := (u + 2) % n
			if sp.Get(u, v) {
				sp.Clear(u, v)
			} else {
				sp.Set(u, v)
			}
		}
		s.PassWarm(sp)
	}
}

func BenchmarkPass512Warm(b *testing.B)        { benchPassWarm(b, 512, 0) }
func BenchmarkPass1024Warm(b *testing.B)       { benchPassWarm(b, 1024, 0) }
func BenchmarkPass2048Warm(b *testing.B)       { benchPassWarm(b, 2048, 0) }
func BenchmarkPass1024WarmChurn4(b *testing.B) { benchPassWarm(b, 1024, 4) }
func BenchmarkPass2048WarmChurn4(b *testing.B) { benchPassWarm(b, 2048, 4) }
